package scfs_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"scfs"
	"scfs/internal/cloudsim"
	"scfs/internal/coord"
	"scfs/internal/depspace"
)

// namedStores builds four zero-latency simulated clouds named c0..c3 so
// telemetry label values are predictable.
func namedStores() []scfs.ObjectStore {
	stores := make([]scfs.ObjectStore, 4)
	for i := range stores {
		p := cloudsim.NewProvider(cloudsim.Options{Name: fmt.Sprintf("c%d", i)})
		stores[i] = p.MustClient(p.CreateAccount("user"))
	}
	return stores
}

// namedMount mounts over namedStores.
func namedMount(t *testing.T, opts ...scfs.Option) *scfs.FS {
	t.Helper()
	return mount(t, append([]scfs.Option{scfs.WithClouds(namedStores()...)}, opts...)...)
}

// sharedCoord is an in-process coordination service two mounts can share,
// so the second mount sees the first one's files and must fetch their data
// from the clouds (its caches are cold).
func sharedCoord() coord.Service {
	return coord.NewDepSpaceService(
		depspace.NewClient(&depspace.LocalInvoker{Space: depspace.NewSpace()}, "user", nil))
}

// TestStatsTelemetry: a metered mount must answer — from Stats() alone —
// which cloud served which op class, how often, and at what dollar cost.
// The writer and reader are two mounts sharing clouds and coordination so
// the read cannot be served from the writer's whole-file cache.
func TestStatsTelemetry(t *testing.T) {
	stores := namedStores()
	svc := sharedCoord()
	common := []scfs.Option{
		scfs.WithClouds(stores...), scfs.WithCoordination(svc),
		scfs.WithMetrics(), scfs.WithTracing(16),
	}
	writer := mount(t, common...)
	reader := mount(t, common...)

	data := bytes.Repeat([]byte("telemetry"), 1000)
	if err := scfs.WriteFile(bg, writer, "/t.bin", data); err != nil {
		t.Fatal(err)
	}
	got, err := scfs.ReadFile(bg, reader, "/t.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}

	ws, rs := writer.Stats(), reader.Stats()
	// Fully qualified names answer the per-cloud, per-class question.
	if ws.Telemetry.Counter(`rpc_total{cloud="c0",op="put",outcome="ok"}`) == 0 {
		t.Errorf("c0 put counter empty; counters: %v", ws.Telemetry.Counters)
	}
	if rs.Telemetry.Counter(`rpc_total{cloud="c0",op="get",outcome="ok"}`) == 0 {
		t.Errorf("c0 get counter empty; counters: %v", rs.Telemetry.Counters)
	}
	// Latency histograms accompany successful RPCs.
	h, ok := ws.Telemetry.Histograms[`rpc_latency_ns{cloud="c0",op="put"}`]
	if !ok || h.Count == 0 {
		t.Errorf("c0 put latency histogram missing or empty")
	} else if h.Mean() <= 0 {
		t.Errorf("histogram mean = %v, want > 0", h.Mean())
	}
	// The agent's own pull gauges are in the same snapshot.
	if ws.Telemetry.Gauge(`agent_cloud_writes_total`) == 0 {
		t.Errorf("agent_cloud_writes_total gauge empty; gauges: %v", ws.Telemetry.Gauges)
	}

	// Metered spend: the simulated providers meter, PUTs cost money. The
	// n-f quorum may cancel the last cloud's PUT before it is metered, so
	// only n-f providers are guaranteed a metered PUT.
	if len(ws.Spend) != 4 {
		t.Fatalf("Spend has %d providers, want 4", len(ws.Spend))
	}
	var dollars float64
	metered := 0
	for _, ps := range ws.Spend {
		if ps.Usage.PutRequests > 0 {
			metered++
		}
		dollars += ps.Dollars
	}
	if metered < 3 {
		t.Errorf("only %d providers metered PUTs, want >= 3 (n-f)", metered)
	}
	if dollars <= 0 {
		t.Fatalf("total spend = %v, want > 0", dollars)
	}
	// The same spend is exported as registry gauges (microdollars).
	if ws.Telemetry.Gauge(`spend_microdollars{cloud="c0"}`) <= 0 {
		t.Errorf("spend gauge empty; gauges: %v", ws.Telemetry.Gauges)
	}

	// Traces: one per client op, spans covering the quorum fan-out.
	check := func(m *scfs.FS, op string) {
		t.Helper()
		var tr *scfs.Trace
		for _, c := range m.Traces(0) {
			if c.Op == op {
				tr = c
				break
			}
		}
		if tr == nil {
			t.Fatalf("no %q trace", op)
		}
		if len(tr.Spans()) == 0 {
			t.Errorf("%q trace has no spans", op)
		}
		if tr.VerdictLatency() <= 0 {
			t.Errorf("%q trace has no quorum verdict", op)
		}
	}
	check(writer, "write")
	check(reader, "read")
}

// memHandler is a minimal slog.Handler collecting records.
type memHandler struct {
	mu   sync.Mutex
	recs []slog.Record
}

func (h *memHandler) Enabled(context.Context, slog.Level) bool { return true }
func (h *memHandler) Handle(_ context.Context, r slog.Record) error {
	h.mu.Lock()
	h.recs = append(h.recs, r)
	h.mu.Unlock()
	return nil
}
func (h *memHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *memHandler) WithGroup(string) slog.Handler      { return h }

func (h *memHandler) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.recs)
}

// TestEventLog: WithEventLog streams one structured record per completed
// operation trace.
func TestEventLog(t *testing.T) {
	h := &memHandler{}
	m := namedMount(t, scfs.WithEventLog(h))
	if err := scfs.WriteFile(bg, m, "/a.txt", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if err := scfs.WriteFile(bg, m, "/b.txt", []byte("ho")); err != nil {
		t.Fatal(err)
	}
	if n := h.count(); n < 2 {
		t.Fatalf("event log got %d records, want >= 2", n)
	}
}

// TestDebugServer: the introspection endpoint serves Prometheus metrics,
// JSON stats, traces and pprof, and dies with the mount.
func TestDebugServer(t *testing.T) {
	m := namedMount(t, scfs.WithDebugServer("127.0.0.1:0"))
	addr := m.DebugAddr()
	if addr == "" {
		t.Fatal("DebugAddr empty")
	}
	if err := scfs.WriteFile(bg, m, "/dbg.txt", []byte("observable")); err != nil {
		t.Fatal(err)
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: reading body: %v", path, err)
		}
		return string(b)
	}

	if body := get("/metrics"); !strings.Contains(body, "rpc_total") {
		t.Errorf("/metrics missing rpc_total:\n%.500s", body)
	}
	var stats struct {
		Telemetry struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"Telemetry"`
	}
	if err := json.Unmarshal([]byte(get("/debug/stats")), &stats); err != nil {
		t.Fatalf("/debug/stats is not JSON: %v", err)
	}
	if len(stats.Telemetry.Counters) == 0 {
		t.Error("/debug/stats has no telemetry counters")
	}
	if body := get("/debug/traces"); !strings.Contains(body, "write") {
		t.Errorf("/debug/traces missing the write trace:\n%.500s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index looks wrong:\n%.200s", body)
	}

	if err := m.Close(bg); err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 2 * time.Second}
	if resp, err := client.Get("http://" + addr + "/metrics"); err == nil {
		resp.Body.Close()
		t.Fatal("debug server still serving after Close")
	}
}

// TestTelemetryDisabledByDefault: a plain mount records nothing and pays
// nothing — no snapshot, no spend, no traces.
func TestTelemetryDisabledByDefault(t *testing.T) {
	m := namedMount(t)
	if err := scfs.WriteFile(bg, m, "/p.txt", []byte("plain")); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if len(s.Telemetry.Counters) != 0 || len(s.Spend) != 0 {
		t.Fatalf("telemetry populated without WithMetrics: %+v", s.Telemetry)
	}
	if got := m.Traces(0); len(got) != 0 {
		t.Fatalf("traces recorded without WithTracing: %d", len(got))
	}
}
