package scfs_test

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"scfs"
)

// TestCoordShardsMount: a mount whose namespace is partitioned across
// coordination shards behaves exactly like an unsharded one — including
// cross-directory renames, which may move metadata between shards.
func TestCoordShardsMount(t *testing.T) {
	m := mount(t, scfs.WithCoordShards(4))
	for _, dir := range []string{"/a", "/b"} {
		if err := m.Mkdir(bg, dir); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := scfs.WriteFile(bg, m, fmt.Sprintf("/a/f%d.txt", i), []byte(fmt.Sprintf("file %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := m.ReadDir(bg, "/a")
	if err != nil || len(infos) != 10 {
		t.Fatalf("ReadDir /a = %d entries, %v", len(infos), err)
	}
	// Rename across directories: with hash sharding the records move between
	// backends and nothing may be lost.
	if err := m.Rename(bg, "/a", "/b/sub"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		got, err := scfs.ReadFile(bg, m, fmt.Sprintf("/b/sub/f%d.txt", i))
		if err != nil || string(got) != fmt.Sprintf("file %d", i) {
			t.Fatalf("post-rename read f%d = %q, %v", i, got, err)
		}
	}
	if _, err := m.Stat(bg, "/a"); err == nil {
		t.Fatal("/a still present after rename")
	}
	if s := m.Stats(); s.CoordAccesses == 0 {
		t.Fatal("sharded mount reported zero coordination accesses")
	}
}

// TestPipelinedReplicatedMount: WithMaxInflight mounts over BFT-replicated
// coordination shards behind pipelined clients; concurrent sessions must not
// interfere, and unmounting must not leak the replica groups' goroutines.
func TestPipelinedReplicatedMount(t *testing.T) {
	before := runtime.NumGoroutine()
	m, err := scfs.New(bg,
		scfs.WithDiskCache(t.TempDir(), 0),
		scfs.WithCoordShards(2),
		scfs.WithMaxInflight(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Mkdir(bg, "/p"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := fmt.Sprintf("/p/s%02d.txt", i)
			if err := scfs.WriteFile(bg, m, path, []byte(fmt.Sprintf("session %d", i))); err != nil {
				errs <- fmt.Errorf("write %s: %w", path, err)
				return
			}
			got, err := scfs.ReadFile(bg, m, path)
			if err != nil || string(got) != fmt.Sprintf("session %d", i) {
				errs <- fmt.Errorf("read %s = %q, %v", path, got, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := m.Close(bg); err != nil {
		t.Fatal(err)
	}
	// The replica groups and pipelined clients must be gone after unmount.
	deadline := time.After(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+3 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("goroutines: %d before mount, %d after unmount", before, runtime.NumGoroutine())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestCoordTelemetryCounters: with metrics on, every coordination access is
// exported as coord_ops_total{backend,op} and surfaces in Stats().Telemetry.
func TestCoordTelemetryCounters(t *testing.T) {
	m := mount(t, scfs.WithMetrics())
	if err := m.Mkdir(bg, "/tele"); err != nil {
		t.Fatal(err)
	}
	if err := scfs.WriteFile(bg, m, "/tele/x.txt", []byte("counted")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadDir(bg, "/tele"); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	var coordTotal int64
	for name, v := range s.Telemetry.Counters {
		if strings.HasPrefix(name, "coord_ops_total{") {
			if !strings.Contains(name, `backend="depspace"`) {
				t.Errorf("counter %q missing the backend label", name)
			}
			coordTotal += v
		}
	}
	if coordTotal == 0 {
		t.Fatalf("no coord_ops_total counters; counters: %v", s.Telemetry.Counters)
	}
	// The registry view and the paper's §4 access counter agree.
	if coordTotal != s.CoordAccesses {
		t.Fatalf("coord_ops_total sum %d != CoordAccesses %d", coordTotal, s.CoordAccesses)
	}
	if _, ok := s.Telemetry.Counters[`coord_ops_total{backend="depspace",op="list"}`]; !ok {
		t.Errorf("list op counter missing; counters: %v", s.Telemetry.Counters)
	}
}

// TestCoordTelemetryShardedBackend: the sharded plane is labeled metashard.
func TestCoordTelemetryShardedBackend(t *testing.T) {
	m := mount(t, scfs.WithMetrics(), scfs.WithCoordShards(2))
	if err := scfs.WriteFile(bg, m, "/s.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	found := false
	for name := range s.Telemetry.Counters {
		if strings.HasPrefix(name, "coord_ops_total{") && strings.Contains(name, `backend="metashard"`) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no metashard-labeled coord counters; counters: %v", s.Telemetry.Counters)
	}
}
