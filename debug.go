package scfs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// debugServer is the HTTP introspection endpoint started by
// WithDebugServer. It serves the mount's metrics (Prometheus text and
// JSON), its recent operation traces, and the standard pprof profiles. The
// handlers are read-only: they snapshot, they never mutate mount state.
type debugServer struct {
	addr string
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// startDebugServer binds addr (":0" picks an ephemeral port) and serves
// until shutdown.
func startDebugServer(addr string, m *FS) (*debugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("scfs: debug server listen %q: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "scfs debug server")
		fmt.Fprintln(w, "  /metrics       Prometheus text exposition")
		fmt.Fprintln(w, "  /debug/stats   mount stats as JSON (counters, telemetry, spend)")
		fmt.Fprintln(w, "  /debug/traces  recent operation traces (?n=32)")
		fmt.Fprintln(w, "  /debug/slow    slowest retained traces per operation class")
		fmt.Fprintln(w, "  /debug/flight  flight recorder stats and fault-flagged traces")
		fmt.Fprintln(w, "  /debug/pprof/  runtime profiles")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = m.metrics.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(m.Stats())
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		n := 32
		if q := r.URL.Query().Get("n"); q != "" {
			if _, err := fmt.Sscanf(q, "%d", &n); err != nil {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, t := range m.Traces(n) {
			fmt.Fprintf(w, "%s %s dur=%s verdict=%s\n", t.Op, t.Unit, t.Duration(), t.VerdictLatency())
			for _, line := range t.Describe() {
				fmt.Fprintf(w, "  %s\n", line)
			}
		}
	})
	writeTrace := func(w http.ResponseWriter, t *Trace) {
		verdict := ""
		if v := t.VerdictLatency(); v > 0 {
			verdict = fmt.Sprintf(" verdict=%s", v)
		}
		suffix := ""
		if err := t.Err(); err != nil {
			suffix += " err=" + err.Error()
		}
		if n := t.Dropped(); n > 0 {
			suffix += fmt.Sprintf(" dropped=%d", n)
		}
		fmt.Fprintf(w, "%s %s %s dur=%s%s%s\n", t.ID, t.Op, t.Unit, t.Duration(), verdict, suffix)
		for _, line := range t.Describe() {
			fmt.Fprintf(w, "  %s\n", line)
		}
	}
	mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if m.flight == nil {
			fmt.Fprintln(w, "flight recorder disabled (mount WithFlightRecorder)")
			return
		}
		for _, class := range m.flight.Classes() {
			fmt.Fprintf(w, "== %s (slowest first)\n", class)
			for _, t := range m.flight.Slowest(class) {
				writeTrace(w, t)
			}
		}
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if m.flight == nil {
			fmt.Fprintln(w, "flight recorder disabled (mount WithFlightRecorder)")
			return
		}
		st := m.flight.Stats()
		fmt.Fprintf(w, "seen=%d admitted=%d evicted=%d retained=%d spans=%d/%d\n",
			st.Seen, st.Admitted, st.Evicted, st.Retained, st.Spans, st.SpanBudget)
		for _, class := range m.flight.Classes() {
			flagged := m.flight.Flagged(class)
			if len(flagged) == 0 {
				continue
			}
			fmt.Fprintf(w, "== %s (flagged, newest first)\n", class)
			for _, t := range flagged {
				writeTrace(w, t)
			}
		}
	})
	// Explicit pprof routes: the mount must not depend on (or pollute)
	// http.DefaultServeMux.
	mux.HandleFunc("/debug/pprof/", func(w http.ResponseWriter, r *http.Request) {
		switch strings.TrimPrefix(r.URL.Path, "/debug/pprof/") {
		case "cmdline":
			pprof.Cmdline(w, r)
		case "profile":
			pprof.Profile(w, r)
		case "symbol":
			pprof.Symbol(w, r)
		case "trace":
			pprof.Trace(w, r)
		default:
			pprof.Index(w, r)
		}
	})

	d := &debugServer{
		addr: ln.Addr().String(),
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(d.done)
		_ = d.srv.Serve(ln)
	}()
	return d, nil
}

// shutdown stops the server, waiting for in-flight requests until ctx is
// done (then closing them forcefully). Safe to call more than once.
func (d *debugServer) shutdown(ctx context.Context) {
	if err := d.srv.Shutdown(ctx); err != nil {
		_ = d.srv.Close()
	}
	<-d.done
}
