// Command scfslint runs the repo's project-invariant analyzers — the
// review checklist the PR 8 bugs were caught with, mechanized (see
// internal/lint). Usage:
//
//	go run ./cmd/scfslint ./...
//	go run ./cmd/scfslint -analyzers untrustedalloc,ctxdiscipline ./internal/smr
//	go run ./cmd/scfslint -list
//
// Exit status is 1 when any diagnostic is reported, 2 on driver errors.
// Suppress a deliberate violation at its site with
//
//	//scfslint:ignore <analyzer> <reason>
//
// on the flagged line or the line above it; the reason is part of the
// directive on purpose.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"scfs/internal/lint/analysis"
	"scfs/internal/lint/ctxdiscipline"
	"scfs/internal/lint/goroutinecancel"
	"scfs/internal/lint/loader"
	"scfs/internal/lint/metriclabels"
	"scfs/internal/lint/sentinelwrap"
	"scfs/internal/lint/untrustedalloc"
)

// all registers every analyzer in the suite.
var all = []*analysis.Analyzer{
	untrustedalloc.Analyzer,
	ctxdiscipline.Analyzer,
	sentinelwrap.Analyzer,
	goroutinecancel.Analyzer,
	metriclabels.Analyzer,
}

func main() {
	var (
		list   = flag.Bool("list", false, "list analyzers and exit")
		names  = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		modDir = flag.String("C", "", "run as if invoked from this directory (module root)")
	)
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected, err := selectAnalyzers(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scfslint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(*modDir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scfslint:", err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	found := 0
	for _, pkg := range pkgs {
		if strings.HasPrefix(pkg.ImportPath, "scfs/internal/lint") || strings.HasPrefix(pkg.ImportPath, "scfs/cmd/scfslint") {
			// The analyzers' own fixtures deliberately violate the
			// invariants; the suite does not lint itself beyond go vet.
			continue
		}
		for _, a := range selected {
			diags, err := analysis.Run(a, pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo)
			if err != nil {
				fmt.Fprintln(os.Stderr, "scfslint:", err)
				os.Exit(2)
			}
			for _, d := range diags {
				pos := d.Position(pkg.Fset)
				file := pos.Filename
				if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = rel
				}
				fmt.Printf("%s:%d:%d: %s (%s)\n", file, pos.Line, pos.Column, d.Message, d.Analyzer)
				found++
			}
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "scfslint: %d invariant violation(s)\n", found)
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -analyzers flag against the registry.
func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	if names == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			known := make([]string, 0, len(byName))
			for k := range byName {
				known = append(known, k)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", name, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}
