package scfs_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"scfs"
	"scfs/internal/cloudsim"
)

// skewedMount mounts over four explicit simulated clouds, one of which is a
// straggler, and returns the providers for request accounting.
func skewedMount(t *testing.T, stragglerRTT time.Duration, opts ...scfs.Option) (*scfs.FS, []*cloudsim.Provider) {
	t.Helper()
	providers := make([]*cloudsim.Provider, 4)
	stores := make([]scfs.ObjectStore, 4)
	for i := range providers {
		o := cloudsim.Options{Name: fmt.Sprintf("c%d", i)}
		if i == 3 {
			o.Latency = cloudsim.LatencyProfile{RTT: stragglerRTT}
		}
		providers[i] = cloudsim.NewProvider(o)
		stores[i] = providers[i].MustClient(providers[i].CreateAccount("user"))
	}
	m := mount(t, append([]scfs.Option{scfs.WithClouds(stores...)}, opts...)...)
	return m, providers
}

// TestCallOptionsRoundTrip: per-call options must not change results — only
// how they are obtained. A hedged, readahead-tuned read returns the same
// bytes as a plain one.
func TestCallOptionsRoundTrip(t *testing.T) {
	m := mount(t, scfs.WithStreamThreshold(8<<10))
	data := bytes.Repeat([]byte("policy!"), 20<<10/7)
	if err := scfs.WriteFile(bg, m, "/f.bin", data); err != nil {
		t.Fatal(err)
	}
	got, err := scfs.ReadFile(bg, m, "/f.bin",
		scfs.WithHedge(0.95),
		scfs.WithHedgeDelayBounds(time.Millisecond, 100*time.Millisecond),
		scfs.WithReadahead(2),
		scfs.WithLimits(scfs.IOLimits{MaxParallelChunks: 2}),
		scfs.WithReadPreference(scfs.PreferFastest()),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("hedged read returned different bytes")
	}
	// Context-carried policy is equivalent to variadic options.
	ctx := scfs.WithPolicy(bg, scfs.WithHedge(0.9), scfs.WithReadahead(3))
	got, err = scfs.ReadFile(ctx, m, "/f.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("WithPolicy read returned different bytes")
	}
}

// TestHedgedReadAvoidsStragglerThroughFacade drives the full stack: after a
// warm-up read taught the tracker who the straggler is, a hedged ReadFile
// completes without waiting for — or even contacting — the slow cloud. A
// cold large file is used so the read leaves the local caches and actually
// fans out.
func TestHedgedReadAvoidsStragglerThroughFacade(t *testing.T) {
	const straggler = 250 * time.Millisecond
	m, providers := skewedMount(t, straggler, scfs.WithStreamThreshold(8<<10))
	data := bytes.Repeat([]byte{0xBD}, 64<<10)
	if err := scfs.WriteFile(bg, m, "/hot.bin", data); err != nil {
		t.Fatal(err)
	}
	// The write observed all four clouds, teaching the tracker the
	// straggler's RTT; wait out its in-flight stragglers.
	time.Sleep(straggler + 100*time.Millisecond)

	before := providers[3].TotalRequests()
	start := time.Now()
	got, err := scfs.ReadFile(bg, m, "/hot.bin", scfs.WithHedge(0.95), scfs.WithReadahead(2))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("wrong data")
	}
	if elapsed > straggler/2 {
		t.Fatalf("hedged facade read took %v; straggler RTT leaked in", elapsed)
	}
	time.Sleep(50 * time.Millisecond)
	if extra := providers[3].TotalRequests() - before; extra != 0 {
		t.Fatalf("straggler served %d requests during hedged read, want 0", extra)
	}
}

// TestDefaultIOPolicyMountOption: WithDefaultIOPolicy makes hedging the
// mount default, and per-call options overlay it.
func TestDefaultIOPolicyMountOption(t *testing.T) {
	const straggler = 250 * time.Millisecond
	m, providers := skewedMount(t, straggler,
		scfs.WithStreamThreshold(8<<10),
		scfs.WithDefaultIOPolicy(scfs.WithHedge(0.95)),
	)
	data := bytes.Repeat([]byte{0x2F}, 32<<10)
	if err := scfs.WriteFile(bg, m, "/d.bin", data); err != nil {
		t.Fatal(err)
	}
	time.Sleep(straggler + 100*time.Millisecond)

	before := providers[3].TotalRequests()
	start := time.Now()
	// No per-call options: the mount default applies.
	got, err := scfs.ReadFile(bg, m, "/d.bin")
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("wrong data")
	}
	if elapsed > straggler/2 {
		t.Fatalf("default-hedged read took %v", elapsed)
	}
	time.Sleep(50 * time.Millisecond)
	if extra := providers[3].TotalRequests() - before; extra != 0 {
		t.Fatalf("straggler served %d requests under the mount-default hedge policy", extra)
	}
}

// TestIOFSWithPolicyContext: the io/fs adapter applies the policy carried
// by the context it was built with.
func TestIOFSWithPolicyContext(t *testing.T) {
	m := mount(t, scfs.WithStreamThreshold(4<<10))
	data := bytes.Repeat([]byte{0x9C}, 40<<10)
	if err := scfs.WriteFile(bg, m, "/served.bin", data); err != nil {
		t.Fatal(err)
	}
	fsys := m.IOFS(scfs.WithPolicy(bg, scfs.WithHedge(0.9), scfs.WithReadahead(2)))
	f, err := fsys.Open("served.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got := make([]byte, len(data))
	n := 0
	for n < len(got) {
		k, err := f.Read(got[n:])
		n += k
		if err != nil {
			break
		}
	}
	if n != len(data) || !bytes.Equal(got[:n], data) {
		t.Fatalf("io/fs read under policy context returned %d/%d correct bytes", n, len(data))
	}
}

// TestWithRetryMasksTransientFaultsThroughFacade: two clouds flake on their
// first Put each — one more simultaneous fault than the write quorum
// tolerates — and WithRetry rides the write through where a budget-less
// write fails. The full option path is exercised: facade → context policy →
// quorum engine → per-cloud retry loop.
func TestWithRetryMasksTransientFaultsThroughFacade(t *testing.T) {
	m, providers := skewedMount(t, 0)
	data := bytes.Repeat([]byte{0x5A}, 16<<10)

	flake := func() {
		providers[0].SetFaults(cloudsim.FaultSpec{Mode: cloudsim.FaultThrottle, Ops: cloudsim.MaskPut, FirstN: 1})
		providers[1].SetFaults(cloudsim.FaultSpec{Mode: cloudsim.FaultUnavailable, Ops: cloudsim.MaskPut, FirstN: 1})
	}
	flake()
	if err := scfs.WriteFile(bg, m, "/no-retry.bin", data); err == nil {
		t.Fatal("write facing 2 transient faults without a retry budget should fail (sanity check)")
	}
	providers[0].ClearFaults()
	providers[1].ClearFaults()

	flake()
	err := scfs.WriteFile(bg, m, "/retried.bin", data,
		scfs.WithRetry(3),
		scfs.WithRetryBackoff(time.Millisecond, 4*time.Millisecond),
		scfs.WithBreaker(scfs.BreakerDemote),
	)
	if err != nil {
		t.Fatalf("retried write failed: %v", err)
	}
	got, err := scfs.ReadFile(bg, m, "/retried.bin", scfs.WithRetry(3))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("retried write round-trip returned different bytes")
	}
}
