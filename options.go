package scfs

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"scfs/internal/cloudsim"
	"scfs/internal/coord"
	"scfs/internal/core"
	"scfs/internal/depsky"
	"scfs/internal/depspace"
	"scfs/internal/iopolicy"
	"scfs/internal/metashard"
	"scfs/internal/pricing"
	"scfs/internal/resilience"
	"scfs/internal/smr"
	"scfs/internal/storage"
	"scfs/internal/telemetry"
)

// Pricing types, re-exported so mounts can bring their own price tables.
type (
	// PriceTable maps provider names to their rate cards; it drives the
	// cost-aware placement objective, the garbage collector's
	// dollars-per-byte ranking and CostReport.
	PriceTable = pricing.Table
	// CloudRates is the price card of one provider.
	CloudRates = pricing.Rates
)

// DefaultPriceTable returns the bundled price table for the simulated
// providers (realistic list prices for the paper's four clouds; see
// internal/pricing).
func DefaultPriceTable() PriceTable { return pricing.DefaultTable() }

// Option configures a mount created by New.
type Option func(*config)

// config collects the functional options before build assembles the stack.
type config struct {
	user   string
	mode   Mode
	f      int
	gc     GCPolicy
	usePNS bool

	clouds       []ObjectStore
	simLatency   float64
	coordination coord.Service
	coordShards  int
	maxInflight  int

	memCacheBytes   int64
	diskCacheBytes  int64
	diskCacheDir    string
	metadataTTL     time.Duration
	streamThreshold int64
	lockTTL         time.Duration
	ioPolicy        iopolicy.Policy
	breakers        resilience.BreakerPolicy
	pricing         pricing.Table
	pricingSet      bool

	metrics   bool
	tracing   bool
	traceCap  int
	flight    bool
	eventLog  slog.Handler
	debugAddr string
	debugSet  bool
}

func defaultConfig() config {
	return config{
		user:            "user",
		mode:            Blocking,
		f:               1,
		simLatency:      0,
		streamThreshold: 0, // 0 = core default (1 MiB)
	}
}

// WithUser sets the SCFS principal mounting the file system (default
// "user").
func WithUser(user string) Option { return func(c *config) { c.user = user } }

// WithMode selects blocking, non-blocking or non-sharing operation (default
// Blocking).
func WithMode(mode Mode) Option { return func(c *config) { c.mode = mode } }

// WithClouds mounts over the given object stores instead of simulated
// providers. One store selects the single-cloud backend; 3f+1 or more select
// the DepSky cloud-of-clouds.
func WithClouds(stores ...ObjectStore) Option {
	return func(c *config) { c.clouds = append([]ObjectStore(nil), stores...) }
}

// WithFaultTolerance sets f, the number of arbitrarily faulty clouds the
// cloud-of-clouds tolerates (default 1, requiring 3f+1 clouds).
func WithFaultTolerance(f int) Option { return func(c *config) { c.f = f } }

// WithSimulatedLatency scales the simulated providers' network latency:
// 0 (the default) mounts instant in-process clouds, 1.0 reproduces the
// paper's measured RTT magnitudes. Ignored when WithClouds is used.
func WithSimulatedLatency(scale float64) Option { return func(c *config) { c.simLatency = scale } }

// WithCoordination replaces the default in-process DepSpace coordination
// service (ignored in NonSharing mode, which uses none).
func WithCoordination(svc coord.Service) Option { return func(c *config) { c.coordination = svc } }

// WithCoordShards partitions the metadata namespace across n coordination
// service instances by stable key hash — the scale-out the paper proposes
// for going beyond one coordination service. Single-key operations route to
// one shard, listings fan out and merge deterministically, and concurrent
// updates of one key keep hitting the same shard, preserving conditional
// update semantics. Applies to the default in-process coordination stack;
// ignored when WithCoordination supplies a custom service (shard externally
// with internal/metashard in that case) and in NonSharing mode.
func WithCoordShards(n int) Option { return func(c *config) { c.coordShards = n } }

// WithMaxInflight backs each coordination shard with a BFT-replicated
// DepSpace instance (the paper's four-replica configuration) reached through
// a pipelined client: up to window invocations are outstanding at once,
// completing out of order, with concurrently submitted tuple operations
// coalesced into batched invocations. window <= 0 selects the default
// (smr.DefaultMaxInflight, 64); window == 1 serializes, reproducing the
// pre-pipelining behavior. Applies to the default coordination stack, like
// WithCoordShards.
func WithMaxInflight(window int) Option { return func(c *config) { c.maxInflight = window } }

// WithGC configures the multi-version garbage collector.
func WithGC(policy GCPolicy) Option { return func(c *config) { c.gc = policy } }

// WithPrivateNameSpaces keeps the metadata of non-shared files in the user's
// private name space (§2.7 of the paper) instead of the coordination
// service.
func WithPrivateNameSpaces() Option { return func(c *config) { c.usePNS = true } }

// WithMemoryCache bounds the in-memory cache of open files.
func WithMemoryCache(bytes int64) Option { return func(c *config) { c.memCacheBytes = bytes } }

// WithDiskCache places the local disk cache in dir with the given size
// bound. An empty dir uses a temporary directory.
func WithDiskCache(dir string, bytes int64) Option {
	return func(c *config) { c.diskCacheDir, c.diskCacheBytes = dir, bytes }
}

// WithMetadataCacheTTL sets the expiry of the short-lived metadata cache
// (0 disables it; the paper's experiments use 500ms).
func WithMetadataCacheTTL(ttl time.Duration) Option { return func(c *config) { c.metadataTTL = ttl } }

// WithStreamThreshold sets the size above which file data moves through the
// streaming data plane (ranged reads, chunked uploads). Negative disables
// streaming; 0 keeps the default (1 MiB).
func WithStreamThreshold(bytes int64) Option { return func(c *config) { c.streamThreshold = bytes } }

// WithLockTTL sets the lease attached to ephemeral write locks.
func WithLockTTL(ttl time.Duration) Option { return func(c *config) { c.lockTTL = ttl } }

// WithPriceTable replaces the bundled per-provider price table (matched by
// ObjectStore.Provider() name). The table prices the cost-aware placement
// objective (WithPlacement), the garbage collector's dollars-per-byte
// ranking, and CostReport. Mounts without this option use
// DefaultPriceTable.
func WithPriceTable(t PriceTable) Option {
	return func(c *config) { c.pricing, c.pricingSet = t, true }
}

// WithDefaultIOPolicy sets the mount-wide default I/O policy from the same
// CallOptions used per call: every operation behaves as if the options were
// passed to it, and per-call options (or a WithPolicy context) are overlaid
// on top. Use it to make hedged reads or readahead the mount's default:
//
//	mount, _ := scfs.New(ctx, scfs.WithDefaultIOPolicy(scfs.WithHedge(0.95)))
func WithDefaultIOPolicy(opts ...CallOption) Option {
	return func(c *config) { c.ioPolicy = applyCallOptions(c.ioPolicy, opts) }
}

// BreakerPolicy tunes the cloud-of-clouds' per-(cloud, op-class) circuit
// breakers: how many consecutive transient failures mark a cloud suspected
// and how long it stays demoted before a recovery probe. The zero value
// keeps the defaults (4 failures, 2s cooldown); Disable mounts without
// breakers. How a given operation treats suspected clouds is the per-call
// WithBreaker option.
type BreakerPolicy = resilience.BreakerPolicy

// WithBreakerPolicy tunes (or disables) the mount's circuit breakers.
func WithBreakerPolicy(pol BreakerPolicy) Option {
	return func(c *config) { c.breakers = pol }
}

// WithMetrics gives the mount a metrics registry. Every layer of the stack
// instruments itself against it — per-cloud RPC counts and latency
// histograms, hedge fires and suppressions, retries, breaker transitions,
// readahead pipeline activity, cache hits, upload queue depth, and each
// provider's metered usage priced in dollars. Stats().Telemetry carries a
// full snapshot; a disabled mount (the default) pays nothing beyond a nil
// check on the hot path.
func WithMetrics() Option { return func(c *config) { c.metrics = true } }

// WithTracing gives the mount a request tracer: every client operation
// (read, write, open, delete) gets a trace recording one span per per-cloud
// RPC of its quorum fan-outs — which clouds were contacted, which were
// hedged, which answered, which were cancelled as losers — plus the quorum
// verdict latency. The last capacity completed traces are kept in a ring
// (capacity <= 0 keeps 64); read them with FS.Traces.
func WithTracing(capacity int) Option {
	return func(c *config) { c.tracing, c.traceCap = true, capacity }
}

// WithFlightRecorder keeps exemplar traces past the tracer's recency ring:
// the slowest traces of every operation class plus every errored,
// breaker-skipped or view-change-crossing operation, within a bounded span
// budget — so when a tail-latency spike is noticed minutes later, the traces
// explaining it are still there. Latency histograms gain exemplar trace IDs
// linking their tail buckets to the retained traces. Implies WithTracing;
// read it back with FS.FlightRecorder, or over HTTP via /debug/slow and
// /debug/flight on mounts that also use WithDebugServer.
func WithFlightRecorder() Option {
	return func(c *config) {
		c.flight = true
		c.tracing = true
	}
}

// WithEventLog streams one structured record per completed operation trace
// to the given slog handler (op, unit, duration, verdict latency, spans).
// Implies WithTracing if no capacity was set.
func WithEventLog(h slog.Handler) Option {
	return func(c *config) {
		c.eventLog = h
		c.tracing = true
	}
}

// WithDebugServer serves the mount's runtime introspection over HTTP on
// addr (use ":0" for an ephemeral port, read it back with FS.DebugAddr):
// GET /metrics in Prometheus text format, /debug/stats as JSON,
// /debug/traces as recent operation traces, /debug/slow and /debug/flight
// as the flight recorder's retained exemplars, and the net/http/pprof
// profiles under /debug/pprof/. Implies WithMetrics, WithTracing and
// WithFlightRecorder. The server is shut down by Close/Unmount.
func WithDebugServer(addr string) Option {
	return func(c *config) {
		c.debugAddr, c.debugSet = addr, true
		c.metrics = true
		c.tracing = true
		c.flight = true
	}
}

// mountTelemetry bundles the observability handles build assembles so the
// facade can serve them (FS.Traces, the debug server).
type mountTelemetry struct {
	metrics *telemetry.Registry
	tracer  *telemetry.Tracer
	flight  *telemetry.FlightRecorder
}

// build assembles the provider, coordination and storage stack and mounts
// the agent. The returned cleanup (which may be nil) releases resources the
// agent does not own — the in-process coordination replica groups — and must
// run after the agent unmounts.
func (c *config) build(ctx context.Context) (*core.Agent, mountTelemetry, func(), error) {
	var tel mountTelemetry
	if c.metrics {
		tel.metrics = telemetry.NewRegistry()
	}
	if c.tracing {
		tel.tracer = telemetry.NewTracer(c.traceCap)
		if c.eventLog != nil {
			tel.tracer.SetHandler(c.eventLog)
		}
		if c.flight {
			tel.flight = telemetry.NewFlightRecorder(0, 0, 0)
			tel.tracer.SetRecorder(tel.flight)
		}
	}
	if c.f < 1 {
		c.f = 1
	}
	clouds := c.clouds
	if len(clouds) == 0 {
		// Fully simulated deployment: the paper's four-cloud setup, extended
		// with additional generic providers when f > 1 asks for more than
		// 3*1+1 clouds.
		for _, p := range cloudsim.NewCoCProviders(c.simLatency, nil, 1) {
			clouds = append(clouds, p.MustClient(p.CreateAccount(c.user)))
		}
		for i := len(clouds); i < 3*c.f+1; i++ {
			p := cloudsim.NewProviderKind(cloudsim.ProviderKind(fmt.Sprintf("sim-extra-%d", i)), c.simLatency, nil, int64(i))
			clouds = append(clouds, p.MustClient(p.CreateAccount(c.user)))
		}
	}

	prices := c.pricing
	if !c.pricingSet {
		prices = pricing.DefaultTable()
	}

	var (
		store   storage.VersionedStore
		pns     storage.PNSStore
		metered func() []core.ProviderSpend
	)
	switch {
	case len(clouds) == 1:
		sc, err := storage.NewSingleCloud(clouds[0], true)
		if err != nil {
			return nil, tel, nil, fmt.Errorf("scfs: building single-cloud backend: %w", err)
		}
		sc.SetRates(prices.For(clouds[0].Provider()))
		store = sc
		pns = storage.NewSingleCloudPNS(clouds[0])
	case len(clouds) >= 3*c.f+1:
		mgr, err := depsky.New(depsky.Options{
			Clouds:   clouds,
			F:        c.f,
			Policy:   c.ioPolicy,
			Pricing:  prices,
			Breakers: c.breakers,
			Metrics:  tel.metrics,
			Tracer:   tel.tracer,
		})
		if err != nil {
			return nil, tel, nil, fmt.Errorf("scfs: building cloud-of-clouds backend: %w", err)
		}
		store = storage.NewCloudOfClouds(mgr)
		pns = storage.NewCoCPNS(mgr)
		// Spend only surfaces on metered mounts: keeping Stats() free of
		// meter polling is part of the "disabled telemetry costs nothing"
		// contract (plain mounts still have CostReport).
		if c.metrics {
			metered = func() []core.ProviderSpend {
				usage := mgr.MeteredUsage()
				out := make([]core.ProviderSpend, len(usage))
				for i, u := range usage {
					out[i] = core.ProviderSpend{Provider: u.Provider, Usage: u.Usage, Dollars: u.Dollars}
				}
				return out
			}
		}
	default:
		return nil, tel, nil, fmt.Errorf("scfs: need 1 cloud or at least %d (3f+1 with f=%d), have %d", 3*c.f+1, c.f, len(clouds))
	}

	coordination := c.coordination
	var cleanup func()
	if coordination == nil && c.mode != NonSharing {
		var err error
		coordination, cleanup, err = c.buildCoordination()
		if err != nil {
			return nil, tel, nil, err
		}
	}

	agent, err := core.New(ctx, core.Options{
		User:                 c.user,
		Mode:                 c.mode,
		Coordination:         coordination,
		Storage:              store,
		PNSStorage:           pns,
		UsePNS:               c.usePNS,
		GC:                   c.gc,
		MemoryCacheBytes:     c.memCacheBytes,
		DiskCacheDir:         c.diskCacheDir,
		DiskCacheBytes:       c.diskCacheBytes,
		MetadataCacheTTL:     c.metadataTTL,
		StreamThresholdBytes: c.streamThreshold,
		LockTTL:              c.lockTTL,
		Telemetry:            tel.metrics,
		Metered:              metered,
	})
	if err != nil {
		if cleanup != nil {
			cleanup()
		}
		return nil, tel, nil, err
	}
	return agent, tel, cleanup, nil
}

// buildCoordination assembles the default in-process coordination stack:
// one local DepSpace by default, metashard-partitioned across WithCoordShards
// instances, each backed by a BFT-replicated DepSpace group behind a
// pipelined, coalescing client when WithMaxInflight asks for pipelining.
func (c *config) buildCoordination() (coord.Service, func(), error) {
	n := c.coordShards
	if n < 1 {
		n = 1
	}
	if n == 1 && c.maxInflight == 0 {
		return coord.NewDepSpaceService(
			depspace.NewClient(&depspace.LocalInvoker{Space: depspace.NewSpace()}, c.user, nil)), nil, nil
	}
	shards := make([]coord.Service, n)
	var stops []func()
	for i := range shards {
		if c.maxInflight != 0 {
			svc, stop, err := replicatedCoordShard(c.user, i, c.maxInflight)
			if err != nil {
				for _, s := range stops {
					s()
				}
				return nil, nil, err
			}
			shards[i] = svc
			stops = append(stops, stop)
		} else {
			shards[i] = coord.NewDepSpaceService(
				depspace.NewClient(&depspace.LocalInvoker{Space: depspace.NewSpace()}, c.user, nil))
		}
	}
	var cleanup func()
	if len(stops) > 0 {
		var once sync.Once
		cleanup = func() {
			once.Do(func() {
				for _, s := range stops {
					s()
				}
			})
		}
	}
	if n == 1 {
		return shards[0], cleanup, nil
	}
	sharded, err := metashard.New(shards)
	if err != nil {
		if cleanup != nil {
			cleanup()
		}
		return nil, nil, err
	}
	return sharded, cleanup, nil
}

// replicatedCoordShard assembles one BFT-replicated DepSpace shard: four
// in-process replicas (the paper's BFT-SMaRt configuration, f=1 Byzantine)
// executing batched tuple commands, reached through a pipelined smr client
// with a coalescing layer on top. The returned stop function closes the
// client, stops the replicas and shuts the shard's network.
func replicatedCoordShard(user string, shard, window int) (coord.Service, func(), error) {
	ids := []int{0, 1, 2, 3}
	cfg := smr.Config{ReplicaIDs: ids, Model: smr.ByzantineFaults}
	net := smr.NewNetwork()
	replicas := make([]*smr.Replica, 0, len(ids))
	stop := func() {
		for _, r := range replicas {
			r.Stop()
		}
		net.Close()
	}
	for _, id := range ids {
		r, err := smr.NewReplica(id, cfg, smr.NewBatchApplication(depspace.NewSpace()), net)
		if err != nil {
			stop()
			return nil, nil, fmt.Errorf("scfs: building coordination shard %d: %w", shard, err)
		}
		r.Start()
		replicas = append(replicas, r)
	}
	cli := smr.NewClient(fmt.Sprintf("%s-coord-%d", user, shard), cfg, net)
	if window > 0 {
		cli.MaxInflight = window
	}
	svc := coord.NewDepSpaceService(depspace.NewClient(smr.NewCoalescer(cli), user, nil))
	return svc, func() { cli.Close(); stop() }, nil
}
