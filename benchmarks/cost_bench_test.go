package benchmarks

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"scfs/internal/cloud"
	"scfs/internal/cloudsim"
	"scfs/internal/depsky"
	"scfs/internal/iopolicy"
	"scfs/internal/pricing"
)

// writeBenchManager builds a balanced four-cloud deployment (equal RTT, no
// jitter) named after the paper's providers, so the bundled price table
// applies and the only thing separating the dispatch disciplines is how
// many clouds they upload to.
func writeBenchManager(b testing.TB, disableCancel bool) (*depsky.Manager, []*cloudsim.Provider, []string, *atomic.Int64) {
	b.Helper()
	const rtt = 2 * time.Millisecond
	kinds := cloudsim.CoCKinds()
	issued := &atomic.Int64{}
	providers := make([]*cloudsim.Provider, len(kinds))
	clients := make([]cloud.ObjectStore, len(kinds))
	accounts := make([]string, len(kinds))
	for i, kind := range kinds {
		providers[i] = cloudsim.NewProvider(cloudsim.Options{
			Name:    string(kind),
			Latency: cloudsim.LatencyProfile{RTT: rtt},
		})
		accounts[i] = providers[i].CreateAccount("bench")
		clients[i] = countingStore{ObjectStore: providers[i].MustClient(accounts[i]), n: issued}
	}
	m, err := depsky.New(depsky.Options{
		Clouds:              clients,
		F:                   1,
		DisableQuorumCancel: disableCancel,
		Pricing:             pricing.DefaultTable(),
	})
	if err != nil {
		b.Fatal(err)
	}
	return m, providers, accounts, issued
}

// BenchmarkDepSkyHedgedWrite compares three upload disciplines for a
// 256 KiB DepSky-CA write against a balanced four-cloud deployment:
//
//   - NoCancel: the pre-PR-3 baseline — shards fan out to all n clouds and
//     every upload runs (and bills ingress) to completion.
//   - Immediate: full fan-out with first-quorum-wins cancellation (the
//     default). On a balanced deployment the spare's upload finishes with
//     the quorum, so the cancellation saves essentially nothing: all n
//     shards are shipped.
//   - Hedged: preferred-quorum-first (WithWriteHedge + cost-first
//     placement) — shards go to the cheapest n-f clouds, and the spare is
//     parked behind the hedge delay it never reaches. Only n-f shards (and
//     n-f metadata copies) are ever uploaded.
//
// Durability is equal in all three legs: the protocol only ever promises
// the n-f quorum (a version on it survives f faults: n-2f = f+1 shards
// remain), and the metadata union certifies quorum-only versions.
//
// Tracked by benchguard: the Hedged leg must ship <= ~0.78x the ingress
// bytes (cloudB/op; the exact quorum fraction is (n-f)/n = 0.75) and issue
// fewer RPCs (cloudReq/op) than the Immediate fan-out, at comparable
// latency (ns/op). The estimated $/op — the request and transfer fees of
// one write, priced per provider by the bundled table — is reported for
// the ROADMAP's cost trajectory (cost-first placement parks the priciest
// per-op cloud, so the dollar ratio beats the byte ratio).
func BenchmarkDepSkyHedgedWrite(b *testing.B) {
	for _, mode := range []struct {
		name          string
		disableCancel bool
		hedged        bool
	}{
		{"Hedged", false, true},
		{"Immediate", false, false},
		{"NoCancel", true, false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			m, providers, accounts, issued := writeBenchManager(b, mode.disableCancel)
			data := bytes.Repeat([]byte{0x5C}, 256<<10)
			ctx := bg
			if mode.hedged {
				ctx = iopolicy.With(bg, iopolicy.Policy{
					// A high floor keeps the spare parked through upload
					// jitter; the preferred quorum acks in ~1 RTT, long
					// before the delay could fire.
					WriteHedge: iopolicy.Hedge{Percentile: 0.95, MinDelay: 250 * time.Millisecond},
					Placement:  iopolicy.Placement{Strategy: iopolicy.PlaceCost},
				})
			}
			table := pricing.DefaultTable()
			snapshot := func() []cloud.Usage {
				out := make([]cloud.Usage, len(providers))
				for i, p := range providers {
					out[i] = p.Usage(accounts[i])
				}
				return out
			}
			// Price the request and transfer fees of the delta between two
			// snapshots (storage byte-hours accrue with wall time, not per
			// write, so they are excluded from the per-op dollars).
			delta := func(before, after []cloud.Usage) (in int64, dollars float64) {
				for i := range providers {
					d := cloud.Usage{
						PutRequests:    after[i].PutRequests - before[i].PutRequests,
						GetRequests:    after[i].GetRequests - before[i].GetRequests,
						DeleteRequests: after[i].DeleteRequests - before[i].DeleteRequests,
						BytesIn:        after[i].BytesIn - before[i].BytesIn,
						BytesOut:       after[i].BytesOut - before[i].BytesOut,
					}
					in += d.BytesIn
					dollars += table.For(providers[i].Name()).UsageCost(d)
				}
				return in, dollars
			}
			// One throwaway write per mode to warm the code paths, then
			// settle the stragglers. Each measured iteration writes a
			// FRESH data unit: re-writing one unit would grow its metadata
			// object linearly with b.N, which skews bytes/op by iteration
			// count and lets two legs with different b.N drift apart; with
			// fresh units every write ships identical bytes and the
			// hedged/full ratio is exactly the quorum fraction (n-f)/n.
			if _, err := m.Write(ctx, "warm", data); err != nil {
				b.Fatal(err)
			}
			time.Sleep(50 * time.Millisecond)
			before := snapshot()
			beforeReqs := issued.Load()
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Write(ctx, fmt.Sprintf("u%d", i), data); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			// Un-cancelled stragglers from the last iterations may still be
			// sleeping out their RTT before billing; wait them out so every
			// mode is charged everything it issued.
			time.Sleep(100 * time.Millisecond)
			in, dollars := delta(before, snapshot())
			b.ReportMetric(float64(in)/float64(b.N), "cloudB/op")
			b.ReportMetric(float64(issued.Load()-beforeReqs)/float64(b.N), "cloudReq/op")
			b.ReportMetric(dollars/float64(b.N), "$/op")
		})
	}
}
