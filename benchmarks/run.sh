#!/usr/bin/env sh
# Runs the data-plane benchmarks and emits a BENCH_<utc-timestamp>.json in
# the repo root, in the shape tracked across PRs (see BENCH_BASELINE.json).
#
# Usage: ./benchmarks/run.sh [extra go test args...]
set -eu

cd "$(dirname "$0")/.."
stamp=$(date -u +%Y%m%dT%H%M%SZ)
out="BENCH_${stamp}.json"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench . -benchmem "$@" \
	./internal/gf256 ./internal/erasure ./internal/secretshare \
	./internal/depsky ./benchmarks | tee "$raw"

awk -v go_version="$(go version | awk '{print $3}')" -v stamp="$stamp" '
BEGIN { print "{"; printf "  \"captured\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": {", stamp, go_version }
/^Benchmark/ {
	name = $1; sub(/-[0-9]+$/, "", name)
	iters = $2
	ns = ""; mbs = ""; bop = ""; allocs = ""; cloudb = ""; cloudreq = ""; dollar = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i-1)
		if ($i == "MB/s") mbs = $(i-1)
		if ($i == "B/op") bop = $(i-1)
		if ($i == "allocs/op") allocs = $(i-1)
		if ($i == "cloudB/op") cloudb = $(i-1)
		if ($i == "cloudReq/op") cloudreq = $(i-1)
		if ($i == "$/op") dollar = $(i-1)
	}
	if (ns == "") next
	if (n++) printf ","
	printf "\n    \"%s\": {\"n\": %s, \"ns_op\": %s", name, iters, ns
	if (mbs != "") printf ", \"mb_s\": %s", mbs
	if (bop != "") printf ", \"b_op\": %s", bop
	if (allocs != "") printf ", \"allocs_op\": %s", allocs
	if (cloudb != "") printf ", \"cloud_b_op\": %s", cloudb
	if (cloudreq != "") printf ", \"cloud_req_op\": %s", cloudreq
	if (dollar != "") printf ", \"dollar_op\": %s", dollar
	printf "}"
}
END { print "\n  }\n}" }
' "$raw" > "$out"

echo "wrote $out"
