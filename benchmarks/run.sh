#!/usr/bin/env sh
# Runs the data-plane benchmarks and emits a BENCH_<utc-timestamp>.json in
# the repo root, in the shape tracked across PRs (see BENCH_BASELINE.json).
#
# Usage: ./benchmarks/run.sh [extra go test args...]
set -eu

cd "$(dirname "$0")/.."
stamp=$(date -u +%Y%m%dT%H%M%SZ)
out="BENCH_${stamp}.json"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench . -benchmem "$@" \
	./internal/gf256 ./internal/erasure ./internal/secretshare \
	./internal/depsky ./benchmarks | tee "$raw"

# The telemetry-overhead guard compares the ns/op of two near-identical
# legs (HedgedTelemetry vs Hedged) at a 5% tolerance — far below the
# scheduler noise of a handful of iterations. Re-measure that pair at a
# fixed high iteration count; in the merge below the later measurement of
# a benchmark wins.
go test -run '^$' -bench 'BenchmarkDepSkyHedgedRead/(Hedged|HedgedTelemetry)$' \
	-benchmem -benchtime 800x ./benchmarks | tee -a "$raw"

# The metadata-plane guards compare legs whose interesting behavior only
# shows under real concurrency: the storm needs its full 1024 sessions (b.N
# is the session count, capped at 1024) and enough operations per session
# for the coalescer to reach steady state, and the pipelining pair needs the
# serialized leg to run long enough to amortize group startup. Re-measure
# both at fixed iteration counts. The storm pattern also covers the
# Sharded4Telemetry leg, whose 1.05x ns/op benchguard ceiling pins the cost
# of full metadata-plane instrumentation (tracing + flight recorder).
go test -run '^$' -bench 'BenchmarkSMRPipeline' -benchmem -benchtime 2000x ./benchmarks | tee -a "$raw"
go test -run '^$' -bench 'BenchmarkMetadataStorm' -benchmem -benchtime 20000x ./benchmarks | tee -a "$raw"

awk -v go_version="$(go version | awk '{print $3}')" -v stamp="$stamp" '
/^Benchmark/ {
	name = $1; sub(/-[0-9]+$/, "", name)
	iters = $2
	ns = ""; mbs = ""; bop = ""; allocs = ""; cloudb = ""; cloudreq = ""; dollar = ""
	coordrt = ""; coordrtmax = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i-1)
		if ($i == "MB/s") mbs = $(i-1)
		if ($i == "B/op") bop = $(i-1)
		if ($i == "allocs/op") allocs = $(i-1)
		if ($i == "cloudB/op") cloudb = $(i-1)
		if ($i == "cloudReq/op") cloudreq = $(i-1)
		if ($i == "$/op") dollar = $(i-1)
		if ($i == "coordRT/op") coordrt = $(i-1)
		if ($i == "coordRTshardMax/op") coordrtmax = $(i-1)
	}
	if (ns == "") next
	entry = sprintf("\"%s\": {\"n\": %s, \"ns_op\": %s", name, iters, ns)
	if (mbs != "") entry = entry sprintf(", \"mb_s\": %s", mbs)
	if (bop != "") entry = entry sprintf(", \"b_op\": %s", bop)
	if (allocs != "") entry = entry sprintf(", \"allocs_op\": %s", allocs)
	if (cloudb != "") entry = entry sprintf(", \"cloud_b_op\": %s", cloudb)
	if (cloudreq != "") entry = entry sprintf(", \"cloud_req_op\": %s", cloudreq)
	if (dollar != "") entry = entry sprintf(", \"dollar_op\": %s", dollar)
	if (coordrt != "") entry = entry sprintf(", \"coord_rt_op\": %s", coordrt)
	if (coordrtmax != "") entry = entry sprintf(", \"coord_rt_shard_max_op\": %s", coordrtmax)
	entry = entry "}"
	if (!(name in entries)) order[++count] = name
	entries[name] = entry  # later measurements of a name win
}
END {
	print "{"
	printf "  \"captured\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": {", stamp, go_version
	for (i = 1; i <= count; i++) {
		if (i > 1) printf ","
		printf "\n    %s", entries[order[i]]
	}
	print "\n  }\n}"
}
' "$raw" > "$out"

echo "wrote $out"
