package benchmarks

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"scfs/internal/cloud"
	"scfs/internal/cloudsim"
	"scfs/internal/depsky"
)

// skewedManager builds the skewed cloud-of-clouds the cancellation
// benchmarks run against: three instant clouds and one straggler with a
// real (small, so benchmarks stay fast) round-trip time. This is the shape
// where first-quorum-wins cancellation pays: the quorum answers immediately
// and the straggler's fetch is pure waste.
func skewedManager(b testing.TB, disableCancel bool) (*depsky.Manager, []*cloudsim.Provider, []string) {
	b.Helper()
	const stragglerRTT = 5 * time.Millisecond
	providers := make([]*cloudsim.Provider, 4)
	clients := make([]cloud.ObjectStore, 4)
	accounts := make([]string, 4)
	for i := range providers {
		opts := cloudsim.Options{Name: fmt.Sprintf("c%d", i)}
		if i == 3 {
			opts.Latency = cloudsim.LatencyProfile{RTT: stragglerRTT}
		}
		providers[i] = cloudsim.NewProvider(opts)
		accounts[i] = providers[i].CreateAccount("bench")
		clients[i] = providers[i].MustClient(accounts[i])
	}
	m, err := depsky.New(depsky.Options{Clouds: clients, F: 1, DisableQuorumCancel: disableCancel})
	if err != nil {
		b.Fatal(err)
	}
	return m, providers, accounts
}

// BenchmarkDepSkySkewedRead measures a 256 KiB read against the skewed
// deployment in both modes. Two signals are tracked by the benchguard:
//
//   - ns/op: without cancellation every metadata read waits for all four
//     clouds, so the straggler's RTT lands on every operation's tail; with
//     first-quorum-wins the read returns at the quorum.
//   - cloudB/op: the total bytes the clouds shipped per read. Without
//     cancellation the straggler's redundant block fetch runs (and bills)
//     to completion; with it the fetch is aborted before the payload moves.
func BenchmarkDepSkySkewedRead(b *testing.B) {
	for _, mode := range []struct {
		name          string
		disableCancel bool
	}{
		{"FirstQuorumCancel", false},
		{"NoCancel", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			m, providers, accounts := skewedManager(b, mode.disableCancel)
			data := bytes.Repeat([]byte{0x42}, 256<<10)
			if _, err := m.Write(bg, "u", data); err != nil {
				b.Fatal(err)
			}
			// Let the write's own stragglers drain so the read measurement
			// starts from a quiet system.
			time.Sleep(50 * time.Millisecond)
			bytesOut := func() int64 {
				var total int64
				for i, p := range providers {
					total += p.Usage(accounts[i]).BytesOut
				}
				return total
			}
			before := bytesOut()
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, _, err := m.Read(bg, "u")
				if err != nil {
					b.Fatal(err)
				}
				if len(got) != len(data) {
					b.Fatal("short read")
				}
			}
			b.StopTimer()
			// Un-cancelled stragglers from the last iterations may still be
			// sleeping out their RTT before billing; wait them out so the
			// no-cancel mode is charged everything it fetched.
			time.Sleep(100 * time.Millisecond)
			b.ReportMetric(float64(bytesOut()-before)/float64(b.N), "cloudB/op")
		})
	}
}
