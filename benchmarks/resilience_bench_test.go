package benchmarks

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"scfs/internal/cloud"
	"scfs/internal/cloudsim"
	"scfs/internal/depsky"
	"scfs/internal/iopolicy"
)

// BenchmarkDepSkyDegradedRead prices graceful degradation: the same
// retry-budgeted 256 KiB read against a healthy deployment and against one
// where a cloud throttles 30% of requests at random (the classic flaky
// provider). The quorum fan-out must absorb the flake — the verdict comes
// from the healthy clouds while the flaky one retries off the critical
// path — and the retry budget must bound the extra traffic.
//
// Tracked by benchguard: Degraded ns/op stays within 3x of Healthy (the
// flake must not land on the latency path), and Degraded cloudReq/op stays
// within 2x of Healthy (a 30% flake retried inside a 3-attempt budget adds
// ~15% requests; 2x is the run-away ceiling).
func BenchmarkDepSkyDegradedRead(b *testing.B) {
	for _, mode := range []struct {
		name  string
		flaky bool
	}{
		{"Healthy", false},
		{"Degraded", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			issued := &atomic.Int64{}
			providers := make([]*cloudsim.Provider, 4)
			clients := make([]cloud.ObjectStore, 4)
			for i := range providers {
				providers[i] = cloudsim.NewProvider(cloudsim.Options{
					Name: fmt.Sprintf("c%d", i),
					Seed: int64(i + 1),
				})
				clients[i] = countingStore{ObjectStore: providers[i].MustClient(providers[i].CreateAccount("bench")), n: issued}
			}
			m, err := depsky.New(depsky.Options{Clouds: clients, F: 1})
			if err != nil {
				b.Fatal(err)
			}
			data := bytes.Repeat([]byte{0x7E}, 256<<10)
			if _, err := m.Write(bg, "u", data); err != nil {
				b.Fatal(err)
			}
			if mode.flaky {
				providers[1].SetFaults(cloudsim.FaultSpec{
					Mode:        cloudsim.FaultThrottle,
					Ops:         cloudsim.MaskReads,
					Probability: 0.30,
				})
			}
			ctx := iopolicy.With(bg, iopolicy.Policy{
				Retry: iopolicy.Retry{
					MaxAttempts: 3,
					BackoffBase: 200 * time.Microsecond,
					BackoffMax:  time.Millisecond,
				},
			})
			beforeReqs := issued.Load()
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, _, err := m.Read(ctx, "u")
				if err != nil {
					b.Fatal(err)
				}
				if len(got) != len(data) {
					b.Fatal("short read")
				}
			}
			b.StopTimer()
			// Cancelled retries from the last iterations settle instantly
			// (instant clouds), but give stragglers a beat before counting.
			time.Sleep(50 * time.Millisecond)
			b.ReportMetric(float64(issued.Load()-beforeReqs)/float64(b.N), "cloudReq/op")
		})
	}
}
