// Package benchmarks holds the end-to-end data-plane benchmarks tracked
// across PRs: DepSky write and read round-trips against the in-process cloud
// simulator (zero latency, so the numbers isolate the local coding,
// serialization and hashing cost that this repo optimizes). Run them with
//
//	./benchmarks/run.sh
//
// which emits a BENCH_<timestamp>.json alongside the committed
// BENCH_BASELINE.json, or directly with
//
//	go test -bench . -benchmem ./benchmarks ./internal/gf256 ./internal/erasure
package benchmarks

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"scfs/internal/cloud"
	"scfs/internal/cloudsim"
	"scfs/internal/depsky"
)

var bg = context.Background()

func benchManager(b testing.TB, f int, protocol depsky.Protocol) (*depsky.Manager, []*cloudsim.Provider) {
	b.Helper()
	n := 3*f + 1
	providers := make([]*cloudsim.Provider, n)
	clients := make([]cloud.ObjectStore, n)
	for i := range clients {
		providers[i] = cloudsim.NewProvider(cloudsim.Options{Name: fmt.Sprintf("c%d", i)})
		clients[i] = providers[i].MustClient(providers[i].CreateAccount("bench"))
	}
	m, err := depsky.New(depsky.Options{Clouds: clients, F: f, Protocol: protocol})
	if err != nil {
		b.Fatal(err)
	}
	return m, providers
}

var rtSizes = []struct {
	name string
	n    int
}{
	{"64KiB", 1 << 16},
	{"1MiB", 1 << 20},
}

func BenchmarkDepSkyWriteCA(b *testing.B) {
	for _, s := range rtSizes {
		b.Run(s.name, func(b *testing.B) {
			m, _ := benchManager(b, 1, depsky.ProtocolCA)
			data := bytes.Repeat([]byte{0xAB}, s.n)
			b.SetBytes(int64(s.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Write(bg, fmt.Sprintf("u-%d", i), data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDepSkyReadCA(b *testing.B) {
	for _, s := range rtSizes {
		b.Run(s.name, func(b *testing.B) {
			m, _ := benchManager(b, 1, depsky.ProtocolCA)
			data := bytes.Repeat([]byte{0xCD}, s.n)
			if _, err := m.Write(bg, "u", data); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(s.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, _, err := m.Read(bg, "u")
				if err != nil {
					b.Fatal(err)
				}
				if len(got) != s.n {
					b.Fatal("short read")
				}
			}
		})
	}
}

// BenchmarkDepSkyWriteReadRoundTrip measures a full write-then-read cycle,
// the unit of work SCFS performs per closed-then-reopened file.
func BenchmarkDepSkyWriteReadRoundTrip(b *testing.B) {
	for _, s := range rtSizes {
		b.Run(s.name, func(b *testing.B) {
			m, _ := benchManager(b, 1, depsky.ProtocolCA)
			data := bytes.Repeat([]byte{0xEF}, s.n)
			b.SetBytes(int64(s.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				unit := fmt.Sprintf("u-%d", i)
				if _, err := m.Write(bg, unit, data); err != nil {
					b.Fatal(err)
				}
				if _, _, err := m.Read(bg, unit); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDepSkyDegradedReadCA reads with f clouds unavailable; the stable
// failure pattern means the erasure coder serves the inverted decode matrix
// from its LRU instead of re-running Gaussian elimination per read.
func BenchmarkDepSkyDegradedReadCA(b *testing.B) {
	m, providers := benchManager(b, 1, depsky.ProtocolCA)
	data := bytes.Repeat([]byte{0x42}, 1<<20)
	if _, err := m.Write(bg, "u", data); err != nil {
		b.Fatal(err)
	}
	providers[0].SetFault(cloudsim.FaultUnavailable)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, _, err := m.Read(bg, "u")
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != 1<<20 {
			b.Fatal("short read")
		}
	}
}
