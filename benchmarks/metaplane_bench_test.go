package benchmarks

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scfs"
	"scfs/internal/cloudsim"
	"scfs/internal/coord"
	"scfs/internal/depspace"
	"scfs/internal/metashard"
	"scfs/internal/smr"
)

// The metadata-plane benchmarks: client pipelining against a replicated
// group, and a many-session metadata storm against the sharded coordination
// plane. Both carry benchguard pair rules — see benchmarks/cmd/benchguard.

// noopApp is the cheapest possible replicated application, so the pipeline
// benchmark measures protocol round trips, not execution.
type noopApp struct{}

func (noopApp) Execute(cmd []byte) []byte { return cmd }
func (noopApp) Snapshot() []byte          { return nil }
func (noopApp) Restore([]byte) error      { return nil }

// benchGroup starts a four-replica Byzantine group (the paper's BFT-SMaRt
// configuration — both legs use the same f+1 reply quorum) over a network
// with a small per-message delay, so round trips cost something to overlap.
func benchGroup(b *testing.B, app func() smr.Application, delay time.Duration) (*smr.Network, smr.Config, []*smr.Replica) {
	b.Helper()
	ids := []int{0, 1, 2, 3}
	cfg := smr.Config{ReplicaIDs: ids, Model: smr.ByzantineFaults}
	net := smr.NewNetwork()
	net.SetDelay(delay)
	reps := make([]*smr.Replica, 0, len(ids))
	for _, id := range ids {
		r, err := smr.NewReplica(id, cfg, app(), net)
		if err != nil {
			b.Fatal(err)
		}
		r.Start()
		b.Cleanup(r.Stop)
		reps = append(reps, r)
	}
	b.Cleanup(net.Close)
	return net, cfg, reps
}

// BenchmarkSMRPipeline drives 64 concurrent sessions through ONE smr client.
// The Serialized leg caps the in-flight window at 1 (the pre-pipelining
// behavior: every session queues behind one outstanding request); the
// Pipelined leg uses the default 64-slot window. Acceptance (benchguard):
// pipelined sustains >= 5x the serialized throughput, i.e. ns/op <= 0.2x.
func BenchmarkSMRPipeline(b *testing.B) {
	const sessions = 64
	for _, leg := range []struct {
		name   string
		window int
	}{
		{"Serialized", 1},
		{"Pipelined", smr.DefaultMaxInflight},
	} {
		b.Run(leg.name, func(b *testing.B) {
			net, cfg, _ := benchGroup(b, func() smr.Application { return noopApp{} }, 100*time.Microsecond)
			cli := smr.NewClient("bench", cfg, net)
			cli.MaxInflight = leg.window
			b.Cleanup(cli.Close)
			var next atomic.Int64
			b.ResetTimer()
			var wg sync.WaitGroup
			for s := 0; s < sessions; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					op := []byte(fmt.Sprintf("session-%02d", s))
					for next.Add(1) <= int64(b.N) {
						if _, err := cli.Invoke(bg, op); err != nil {
							b.Error(err)
							return
						}
					}
				}(s)
			}
			wg.Wait()
		})
	}
}

// countingInvoker counts actual wire invocations below the coalescer: one
// count per ordered round trip to the replica group, however many tuple
// commands it carries. Each shard counts separately, so the benchmark can
// report both the plane-wide total and the load on the busiest instance.
type countingInvoker struct {
	inner *smr.Client
	n     *atomic.Int64
}

func (c *countingInvoker) Invoke(ctx context.Context, op []byte) ([]byte, error) {
	c.n.Add(1)
	return c.inner.Invoke(ctx, op)
}

// InvokeWithStats keeps the counting shim transparent to the coalescer's
// stats path, so the instrumented storm leg exercises the full consensus
// span pipeline rather than the Invoke fallback.
func (c *countingInvoker) InvokeWithStats(ctx context.Context, op []byte, st *smr.InvokeStats) ([]byte, error) {
	c.n.Add(1)
	return c.inner.InvokeWithStats(ctx, op, st)
}

// stormPlane builds the coordination plane of the metadata storm: `shards`
// BFT-replicated DepSpace instances, each reached through a pipelined client
// with a coalescing layer, partitioned by top path segment so per-directory
// listings stay single-shard. The returned counter holds the total wire
// round trips across all shards.
func stormPlane(b *testing.B, shards int) (coord.Service, []*atomic.Int64, [][]*smr.Replica) {
	b.Helper()
	rts := make([]*atomic.Int64, shards)
	services := make([]coord.Service, shards)
	groups := make([][]*smr.Replica, shards)
	for i := range services {
		net, cfg, reps := benchGroup(b, func() smr.Application {
			return smr.NewBatchApplication(depspace.NewSpace())
		}, 50*time.Microsecond)
		groups[i] = reps
		cli := smr.NewClient(fmt.Sprintf("storm-%d", i), cfg, net)
		b.Cleanup(cli.Close)
		rts[i] = new(atomic.Int64)
		co := smr.NewCoalescer(&countingInvoker{inner: cli, n: rts[i]})
		// The requester must be the mount's user ("user" by default): metadata
		// tuples are ACL'd to their owner, so a mismatched principal is denied.
		services[i] = coord.NewDepSpaceService(depspace.NewClient(co, "user", nil))
	}
	if shards == 1 {
		return services[0], rts, groups
	}
	svc, err := metashard.New(services, metashard.WithSubtreePartition())
	if err != nil {
		b.Fatal(err)
	}
	return svc, rts, groups
}

// stormMount mounts an scfs agent over zero-latency simulated clouds and the
// given coordination plane; extra options instrument the mount.
func stormMount(b *testing.B, svc coord.Service, opts ...scfs.Option) *scfs.FS {
	b.Helper()
	stores := make([]scfs.ObjectStore, 4)
	for i := range stores {
		p := cloudsim.NewProvider(cloudsim.Options{Name: fmt.Sprintf("c%d", i)})
		stores[i] = p.MustClient(p.CreateAccount("bench"))
	}
	m, err := scfs.New(bg, append([]scfs.Option{
		scfs.WithClouds(stores...),
		scfs.WithCoordination(svc),
		scfs.WithDiskCache(b.TempDir(), 0)}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = m.Close(bg) })
	return m
}

// BenchmarkMetadataStorm drives hundreds of concurrent sessions (scaled by
// b.N up to 1024) through a mount whose coordination is the pipelined,
// sharded metadata plane. The blend is metadata-intensive, the regime where
// the paper measures coordination accesses dominating: ~81% stat, ~12%
// readdir, ~6% create. Two custom metrics count wire round trips to the
// replica groups per file-system operation: coordRT/op totals them across
// the plane, and coordRTshardMax/op is the busiest single instance's share.
// The per-instance figure is what sharding is accountable for — acceptance
// (benchguard): no instance of the 4-shard plane serves more round trips
// per op than the unsharded single instance (<= 1.0x), i.e. the namespace
// spread really divides the coordination load instead of fanning every op
// to every shard. The plane-wide total is reported (not gated) because it
// tracks coalescer batch depth, which is a function of per-shard queueing,
// not of the sharding itself.
//
// The Sharded4Telemetry leg reruns the sharded storm fully instrumented —
// metrics registry, per-operation tracing through smr/shard spans, and the
// flight recorder retaining slow-tail exemplars. Acceptance (benchguard):
// always-on instrumentation costs at most 5% ns/op over the uninstrumented
// sharded leg.
func BenchmarkMetadataStorm(b *testing.B) {
	const dirs = 16
	for _, leg := range []struct {
		name   string
		shards int
		opts   []scfs.Option
	}{
		{"Single", 1, nil},
		{"Sharded4", 4, nil},
		{"Sharded4Telemetry", 4, []scfs.Option{
			scfs.WithMetrics(), scfs.WithTracing(256), scfs.WithFlightRecorder()}},
	} {
		b.Run(leg.name, func(b *testing.B) {
			svc, rts, groups := stormPlane(b, leg.shards)
			rtTotal := func() int64 {
				var t int64
				for _, c := range rts {
					t += c.Load()
				}
				return t
			}
			m := stormMount(b, svc, leg.opts...)
			for d := 0; d < dirs; d++ {
				if err := m.Mkdir(bg, fmt.Sprintf("/d%02d", d)); err != nil {
					b.Fatal(err)
				}
				for f := 0; f < 4; f++ {
					path := fmt.Sprintf("/d%02d/seed%d.txt", d, f)
					if err := scfs.WriteFile(bg, m, path, []byte("seed")); err != nil {
						b.Fatal(err)
					}
				}
			}
			sessions := b.N
			if sessions > 1024 {
				sessions = 1024
			}
			var next atomic.Int64
			for _, c := range rts {
				c.Store(0)
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			for s := 0; s < sessions; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					for {
						i := next.Add(1)
						if i > int64(b.N) {
							return
						}
						dir := fmt.Sprintf("/d%02d", i%dirs)
						var err error
						switch {
						case i%16 == 0: // create
							err = scfs.WriteFile(bg, m, fmt.Sprintf("%s/s%d-%d.txt", dir, s, i), []byte("x"))
						case i%16 <= 2: // readdir
							_, err = m.ReadDir(bg, dir)
						default: // stat
							_, err = m.Stat(bg, fmt.Sprintf("%s/seed%d.txt", dir, i%4))
						}
						if err != nil {
							b.Error(err)
							return
						}
					}
				}(s)
			}
			wg.Wait()
			b.StopTimer()
			if b.Failed() {
				for si, reps := range groups {
					for _, r := range reps {
						view, exec := r.Progress()
						b.Logf("shard %d replica %d: view=%d lastExec=%d", si, r.ID(), view, exec)
					}
				}
			}
			var max int64
			for _, c := range rts {
				if v := c.Load(); v > max {
					max = v
				}
			}
			b.ReportMetric(float64(rtTotal())/float64(b.N), "coordRT/op")
			b.ReportMetric(float64(max)/float64(b.N), "coordRTshardMax/op")
		})
	}
}
