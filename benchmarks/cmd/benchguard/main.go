// Command benchguard compares a freshly produced BENCH_<stamp>.json against
// the committed BENCH_BASELINE.json and fails (exit 1) when a tracked
// metric regresses by more than the threshold (20%).
//
// Absolute wall-clock numbers are not comparable across machines, so the
// guard never compares ns/op between files. It tracks two machine-portable
// signals instead:
//
//  1. Allocation metrics (B/op, allocs/op) of benchmarks present in both
//     files — these are deterministic properties of the code.
//  2. Ratios between benchmark pairs measured within one run (the fast
//     path vs its reference implementation, the streamed write vs the
//     whole-object write). A pair's ratio in the new run is checked
//     against the same ratio in the baseline when the baseline has both
//     legs, and always against a hard floor that encodes the acceptance
//     criterion of the PR that introduced it.
//
// Usage: benchguard BASELINE.json NEW.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// threshold is the tolerated relative regression of any tracked metric.
const threshold = 0.20

type bench struct {
	N        int64   `json:"n"`
	NsOp     float64 `json:"ns_op"`
	MBs      float64 `json:"mb_s"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
	// CloudBOp is the custom cloudB/op metric of the quorum-cancellation
	// benchmarks: bytes the simulated clouds shipped per operation.
	CloudBOp float64 `json:"cloud_b_op"`
	// CloudReqOp is the custom cloudReq/op metric of the hedged-read and
	// hedged-write benchmarks: cloud RPCs issued by the client per
	// operation (issued is issued — requests cancelled mid-flight still
	// count, since hedging's fee saving comes from never issuing them).
	CloudReqOp float64 `json:"cloud_req_op"`
	// DollarOp is the custom $/op metric of the hedged-write benchmark:
	// the request and transfer fees of one operation priced per provider
	// by the bundled table (internal/pricing).
	DollarOp float64 `json:"dollar_op"`
	// CoordRTOp is the custom coordRT/op metric of the metadata-storm
	// benchmark: ordered wire round trips to the replica groups (below the
	// coalescers) per file-system operation, totaled across the plane.
	CoordRTOp float64 `json:"coord_rt_op"`
	// CoordRTShardMaxOp is the busiest single instance's share of the
	// same count — the figure sharding is accountable for.
	CoordRTShardMaxOp float64 `json:"coord_rt_shard_max_op"`
}

type report struct {
	Captured   string           `json:"captured"`
	Go         string           `json:"go"`
	Benchmarks map[string]bench `json:"benchmarks"`
}

// pairRule tracks the ratio metric(num)/metric(den) within one run.
// The ratio must stay below maxRatio (the acceptance floor), and below
// (1+threshold) times the baseline's ratio when the baseline has both legs.
type pairRule struct {
	num, den string
	metric   func(bench) float64
	what     string
	maxRatio float64
}

var pairRules = []pairRule{
	// PR 1 acceptance: the slice-kernel encode stays >= 5x faster than the
	// retained per-byte reference (ratio of ns/op <= 0.2).
	{
		num: "BenchmarkErasureEncode/1MiB", den: "BenchmarkErasureEncodeRef/1MiB",
		metric: func(b bench) float64 { return b.NsOp }, what: "ns/op",
		maxRatio: 0.2,
	},
	// PR 2 acceptance: a streamed 64 MiB write allocates a fraction of the
	// whole-object path. Against the cloud simulator (which itself copies
	// every uploaded payload, charged to both paths) the measured ratio is
	// ~0.37; the data-plane-only <0.25 bound is enforced by
	// TestStreamedWriteMemoryFootprint. The guard holds the end-to-end
	// ratio under 0.5 and watches it for drift against the baseline.
	{
		num: "BenchmarkDepSkyStreamWriteCA/64MiB", den: "BenchmarkDepSkyWholeWriteCA/64MiB",
		metric: func(b bench) float64 { return b.BOp }, what: "B/op",
		maxRatio: 0.5,
	},
	// PR 3 acceptance: first-quorum-wins cancellation. Against a skewed
	// deployment (one straggler cloud), a read must return at the quorum
	// instead of waiting for every cloud (measured ~0.1x the no-cancel
	// tail; the floor of 0.5 leaves headroom for scheduler noise at tiny
	// iteration counts)...
	{
		num: "BenchmarkDepSkySkewedRead/FirstQuorumCancel", den: "BenchmarkDepSkySkewedRead/NoCancel",
		metric: func(b bench) float64 { return b.NsOp }, what: "ns/op",
		maxRatio: 0.5,
	},
	// ...and must stop paying for the straggler's redundant block fetch:
	// the clouds ship fewer bytes per read than the run-to-completion mode
	// (measured ~0.51x — the straggler's whole shard plus its share of the
	// metadata object is never transferred).
	{
		num: "BenchmarkDepSkySkewedRead/FirstQuorumCancel", den: "BenchmarkDepSkySkewedRead/NoCancel",
		metric: func(b bench) float64 { return b.CloudBOp }, what: "cloudB/op",
		maxRatio: 0.8,
	},
	// PR 4 acceptance, hedged reads. A hedged read on the skewed profile
	// must keep at least 80% of first-quorum-wins cancellation's
	// tail-latency improvement over the run-to-completion baseline: the
	// cancellation leg measures ~0.09x, so keeping 80% of that improvement
	// allows at most ~0.27x; 0.35 is the enforced ceiling (measured ~0.09x
	// — hedging loses essentially none of the win)...
	{
		num: "BenchmarkDepSkyHedgedRead/Hedged", den: "BenchmarkDepSkyHedgedRead/NoCancel",
		metric: func(b bench) float64 { return b.NsOp }, what: "ns/op",
		maxRatio: 0.35,
	},
	// ...while issuing strictly fewer cloud RPCs than the immediate full
	// fan-out (measured ~0.82x: 5 issued — 3 metadata + 2 block — versus
	// ~6.1 for cancellation, which issues every RPC and aborts late)...
	{
		num: "BenchmarkDepSkyHedgedRead/Hedged", den: "BenchmarkDepSkyHedgedRead/Immediate",
		metric: func(b bench) float64 { return b.CloudReqOp }, what: "cloudReq/op",
		maxRatio: 0.95,
	},
	// ...and shipping no more bytes than the run-to-completion baseline
	// ships (measured ~0.50x).
	{
		num: "BenchmarkDepSkyHedgedRead/Hedged", den: "BenchmarkDepSkyHedgedRead/NoCancel",
		metric: func(b bench) float64 { return b.CloudBOp }, what: "cloudB/op",
		maxRatio: 0.8,
	},
	// PR 4 acceptance, readahead: a cold sequential scan with a prefetch
	// window must improve throughput by >= 1.5x, i.e. its ns/op stays
	// under 0.67x of the on-demand scan (measured ~0.50x on one core;
	// more parallelism only widens it).
	{
		num: "BenchmarkStreamSequentialScan/Readahead4", den: "BenchmarkStreamSequentialScan/NoReadahead",
		metric: func(b bench) float64 { return b.NsOp }, what: "ns/op",
		maxRatio: 0.67,
	},
	// PR 5 acceptance, hedged writes. At equal (n, f) durability a hedged
	// write ships only the preferred quorum's shards: >= 25% fewer ingress
	// bytes than the immediate full fan-out. The benchmark writes a fresh
	// unit per iteration, so the measured ratio is the quorum fraction
	// (n-f)/n = 0.750 exactly (n=4, f=1); the whisker above it only covers
	// the rare immediate-leg upload that is cancelled before billing,
	// which shrinks the denominator.
	{
		num: "BenchmarkDepSkyHedgedWrite/Hedged", den: "BenchmarkDepSkyHedgedWrite/Immediate",
		metric: func(b bench) float64 { return b.CloudBOp }, what: "cloudB/op",
		maxRatio: 0.76,
	},
	// ...while issuing fewer cloud RPCs (measured 10 — 4 metadata-read
	// GETs + 3 block PUTs + 3 metadata PUTs — versus 12 for the full
	// fan-out)...
	{
		num: "BenchmarkDepSkyHedgedWrite/Hedged", den: "BenchmarkDepSkyHedgedWrite/Immediate",
		metric: func(b bench) float64 { return b.CloudReqOp }, what: "cloudReq/op",
		maxRatio: 0.90,
	},
	// ...spending fewer dollars per write under the bundled price table
	// (measured ~0.81x: cost-first placement parks the per-op priciest
	// cloud)...
	{
		num: "BenchmarkDepSkyHedgedWrite/Hedged", den: "BenchmarkDepSkyHedgedWrite/Immediate",
		metric: func(b bench) float64 { return b.DollarOp }, what: "$/op",
		maxRatio: 0.90,
	},
	// ...and at comparable latency: parking the spare must not slow the
	// quorum down (both legs wait for the same n-f acks; headroom for
	// scheduler noise at small iteration counts).
	{
		num: "BenchmarkDepSkyHedgedWrite/Hedged", den: "BenchmarkDepSkyHedgedWrite/Immediate",
		metric: func(b bench) float64 { return b.NsOp }, what: "ns/op",
		maxRatio: 1.25,
	},
	// PR 6 acceptance, graceful degradation. A retry-budgeted read against
	// a deployment with one cloud throttling 30% of requests must stay off
	// the flake's latency path: the quorum verdict comes from the healthy
	// clouds while the flaky one retries in the background (measured ~1x;
	// 3.0 is the degradation ceiling)...
	{
		num: "BenchmarkDepSkyDegradedRead/Degraded", den: "BenchmarkDepSkyDegradedRead/Healthy",
		metric: func(b bench) float64 { return b.NsOp }, what: "ns/op",
		maxRatio: 3.0,
	},
	// ...and the retry budget must bound the extra traffic: a 30% flake
	// retried inside a 3-attempt budget adds ~15-20% requests (measured
	// ~1.2x); 2.0 is the run-away ceiling.
	{
		num: "BenchmarkDepSkyDegradedRead/Degraded", den: "BenchmarkDepSkyDegradedRead/Healthy",
		metric: func(b bench) float64 { return b.CloudReqOp }, what: "cloudReq/op",
		maxRatio: 2.0,
	},
	// PR 7 acceptance, telemetry overhead. A hedged read with the full
	// telemetry plane enabled — metrics registry and request tracing —
	// must cost at most 5% latency over the uninstrumented discipline
	// (measured ~1.00x: the hot path takes a handful of atomic adds and
	// span writes into a preallocated ring)...
	{
		num: "BenchmarkDepSkyHedgedRead/HedgedTelemetry", den: "BenchmarkDepSkyHedgedRead/Hedged",
		metric: func(b bench) float64 { return b.NsOp }, what: "ns/op",
		maxRatio: 1.05,
	},
	// ...and at most 2% allocations: the instruments are resolved at mount
	// time, so per read only the trace object and its context link
	// allocate (measured +2 allocs on ~174, ~1.01x).
	{
		num: "BenchmarkDepSkyHedgedRead/HedgedTelemetry", den: "BenchmarkDepSkyHedgedRead/Hedged",
		metric: func(b bench) float64 { return b.AllocsOp }, what: "allocs/op",
		maxRatio: 1.02,
	},
	// PR 8 acceptance, client pipelining. 64 concurrent sessions through one
	// smr client with the default 64-slot window must sustain >= 5x the
	// throughput of the same client with the window forced to 1 (the
	// pre-pipelining behavior), i.e. ns/op <= 0.2x. Measured ~0.03x: with
	// requests tagged and demultiplexed by ID, sessions overlap their round
	// trips instead of queuing behind one outstanding request.
	{
		num: "BenchmarkSMRPipeline/Pipelined", den: "BenchmarkSMRPipeline/Serialized",
		metric: func(b bench) float64 { return b.NsOp }, what: "ns/op",
		maxRatio: 0.2,
	},
	// PR 8 acceptance, namespace sharding. Under the 1024-session metadata
	// storm, no instance of the 4-shard plane may serve more coordination
	// round trips per file-system op than the unsharded single instance
	// serves: the partition must actually divide the load rather than fan
	// every op out to every shard (measured ~0.6x — below 1/4 of the
	// single-instance figure is impossible because coalescer batches get
	// shallower as each shard's queue shortens).
	{
		num: "BenchmarkMetadataStorm/Sharded4", den: "BenchmarkMetadataStorm/Single",
		metric: func(b bench) float64 { return b.CoordRTShardMaxOp }, what: "coordRTshardMax/op",
		maxRatio: 1.0,
	},
	// ...and spreading the namespace across shards must help wall-clock
	// latency under contention, not just divide the counters (measured
	// ~0.13x on one core; the ceiling leaves room for scheduler noise).
	{
		num: "BenchmarkMetadataStorm/Sharded4", den: "BenchmarkMetadataStorm/Single",
		metric: func(b bench) float64 { return b.NsOp }, what: "ns/op",
		maxRatio: 0.8,
	},
	// PR 10 acceptance, metadata-plane observability. The fully instrumented
	// storm — metrics, end-to-end tracing (facade, smr, shard spans), and
	// the always-on flight recorder — must cost at most 5% ns/op over the
	// identical uninstrumented sharded plane: the always-on tail recorder
	// only earns its keep if nobody ever wants to turn it off.
	{
		num: "BenchmarkMetadataStorm/Sharded4Telemetry", den: "BenchmarkMetadataStorm/Sharded4",
		metric: func(b bench) float64 { return b.NsOp }, what: "ns/op",
		maxRatio: 1.05,
	},
}

// load parses one BENCH_*.json report.
func load(path string) (report, error) {
	var r report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Benchmarks) == 0 {
		return r, fmt.Errorf("%s: no benchmarks", path)
	}
	return r, nil
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintf(os.Stderr, "usage: benchguard BASELINE.json NEW.json\n")
		os.Exit(2)
	}
	base, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	cur, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}

	failures := 0
	fail := func(format string, args ...any) {
		failures++
		fmt.Printf("FAIL  "+format+"\n", args...)
	}

	// 1. Allocation metrics across files (machine-independent). Entries
	// measured with very few iterations carry un-amortized one-time setup
	// allocations and are skipped (a missing "n" means a steady-state run
	// from before the field existed).
	checked := 0
	for name, c := range cur.Benchmarks {
		b, ok := base.Benchmarks[name]
		if !ok {
			continue
		}
		if (c.N > 0 && c.N < 10) || (b.N > 0 && b.N < 10) {
			continue
		}
		checked++
		// Tiny allocation counts jitter by a few bytes; only benchmarks
		// with a meaningful footprint are compared.
		if b.BOp >= 1024 && c.BOp > b.BOp*(1+threshold) {
			fail("%s: B/op %.0f -> %.0f (>%.0f%% regression)", name, b.BOp, c.BOp, threshold*100)
		}
		if b.AllocsOp >= 8 && c.AllocsOp > b.AllocsOp*(1+threshold)+2 {
			fail("%s: allocs/op %.0f -> %.0f (>%.0f%% regression)", name, b.AllocsOp, c.AllocsOp, threshold*100)
		}
	}
	fmt.Printf("benchguard: compared allocation metrics of %d shared benchmarks\n", checked)

	// 2. Tracked within-run ratios.
	for _, rule := range pairRules {
		cn, okN := cur.Benchmarks[rule.num]
		cd, okD := cur.Benchmarks[rule.den]
		if !okN || !okD {
			fmt.Printf("SKIP  ratio %s / %s: missing from the new run\n", rule.num, rule.den)
			continue
		}
		den := rule.metric(cd)
		if den == 0 {
			fmt.Printf("SKIP  ratio %s / %s: zero denominator\n", rule.num, rule.den)
			continue
		}
		ratio := rule.metric(cn) / den
		limit := rule.maxRatio
		source := "acceptance floor"
		if bn, ok := base.Benchmarks[rule.num]; ok {
			if bd, ok := base.Benchmarks[rule.den]; ok && rule.metric(bd) != 0 {
				baseRatio := rule.metric(bn) / rule.metric(bd)
				if l := baseRatio * (1 + threshold); l < limit {
					limit = l
					source = fmt.Sprintf("baseline ratio %.3f +%.0f%%", baseRatio, threshold*100)
				}
			}
		}
		status := "ok  "
		if ratio > limit {
			status = "FAIL"
			failures++
		}
		fmt.Printf("%s  %s: %s/%s = %.3f (limit %.3f, %s)\n", status, rule.what, rule.num, rule.den, ratio, limit, source)
	}

	if failures > 0 {
		fmt.Printf("benchguard: %d regression(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("benchguard: no tracked regressions")
}
