//go:build race

package benchmarks

// raceEnabled reports whether the race detector instruments this build;
// allocation-footprint assertions are gated on it because detector shadow
// memory skews per-path allocation totals.
const raceEnabled = true
