package benchmarks

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"scfs/internal/cloud"
	"scfs/internal/depsky"
)

// streamSize is the payload the ISSUE tracks for the streaming data plane:
// a 64 MiB write must peak at a few chunk-windows of resident memory
// instead of ~2.5x the file size.
const streamSize = 64 << 20

// BenchmarkDepSkyStreamWriteCA streams a 64 MiB value through the chunked
// pipeline (WriteFrom): bounded-memory encode/hash/upload overlap.
func BenchmarkDepSkyStreamWriteCA(b *testing.B) {
	b.Run("64MiB", func(b *testing.B) {
		m, _ := benchManager(b, 1, depsky.ProtocolCA)
		data := bytes.Repeat([]byte{0xAB}, streamSize)
		b.SetBytes(streamSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.WriteFrom(bg, fmt.Sprintf("u-%d", i), bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDepSkyWholeWriteCA is the whole-object baseline for the same
// payload: the benchguard tracks the streamed/whole B/op ratio.
func BenchmarkDepSkyWholeWriteCA(b *testing.B) {
	b.Run("64MiB", func(b *testing.B) {
		m, _ := benchManager(b, 1, depsky.ProtocolCA)
		data := bytes.Repeat([]byte{0xAB}, streamSize)
		b.SetBytes(streamSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Write(bg, fmt.Sprintf("u-%d", i), data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDepSkyRangedReadCA reads a 64 KiB range out of a 64 MiB chunked
// unit: only the covering chunk is fetched and decoded.
func BenchmarkDepSkyRangedReadCA(b *testing.B) {
	m, _ := benchManager(b, 1, depsky.ProtocolCA)
	data := bytes.Repeat([]byte{0x5C}, streamSize)
	if _, err := m.WriteFrom(bg, "u", bytes.NewReader(data)); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64<<10)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, _, err := m.OpenRange(bg, "u", int64(i%977)*(64<<10)%streamSize, int64(len(buf)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(r, buf); err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
}

// discardStore is an ObjectStore that acknowledges writes without keeping
// the payload. The memory-footprint test uses it so the measurement
// isolates the data plane's own allocations (the simulator copies every
// uploaded payload into its object map, which would charge both write paths
// ~2x the payload and drown the comparison).
type discardStore struct{ name string }

func (d *discardStore) Provider() string                          { return d.name }
func (d *discardStore) Account() string                           { return "bench" }
func (d *discardStore) Put(context.Context, string, []byte) error { return nil }
func (d *discardStore) Get(context.Context, string) ([]byte, error) {
	return nil, cloud.ErrNotFound
}
func (d *discardStore) Head(context.Context, string) (cloud.ObjectInfo, error) {
	return cloud.ObjectInfo{}, cloud.ErrNotFound
}
func (d *discardStore) Delete(context.Context, string) error { return nil }
func (d *discardStore) List(context.Context, string) ([]cloud.ObjectInfo, error) {
	return nil, nil
}
func (d *discardStore) SetACL(context.Context, string, []cloud.Grant) error { return nil }
func (d *discardStore) GetACL(context.Context, string) ([]cloud.Grant, error) {
	return nil, nil
}

// discardManager builds a DepSky manager over discarding clouds.
func discardManager(t testing.TB) *depsky.Manager {
	t.Helper()
	clients := make([]cloud.ObjectStore, 4)
	for i := range clients {
		clients[i] = &discardStore{name: fmt.Sprintf("null-%d", i)}
	}
	m, err := depsky.New(depsky.Options{Clouds: clients, F: 1, Protocol: depsky.ProtocolCA})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// measureWrite runs fn once and reports (total bytes allocated, sampled
// peak heap growth) during the call.
func measureWrite(b testing.TB, fn func() error) (totalAlloc, peak uint64) {
	b.Helper()
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	var stop atomic.Bool
	peakCh := make(chan uint64, 1)
	go func() {
		var ms runtime.MemStats
		var maxHeap uint64
		for !stop.Load() {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > maxHeap {
				maxHeap = ms.HeapAlloc
			}
			time.Sleep(200 * time.Microsecond)
		}
		peakCh <- maxHeap
	}()
	err := fn()
	stop.Store(true)
	if err != nil {
		b.Fatal(err)
	}
	maxHeap := <-peakCh
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	totalAlloc = after.TotalAlloc - before.TotalAlloc
	if maxHeap > before.HeapAlloc {
		peak = maxHeap - before.HeapAlloc
	}
	return totalAlloc, peak
}

// TestStreamedWriteMemoryFootprint is the acceptance check of the streaming
// data plane: a 64 MiB streamed write must allocate less than 25% of what
// the whole-object path allocates for the same payload (the whole path
// materializes ciphertext + shards + frames — ~4x the value — while the
// pipeline keeps ~3 chunk-windows resident and recycles them through the
// shared pool).
func TestStreamedWriteMemoryFootprint(t *testing.T) {
	data := bytes.Repeat([]byte{0xEE}, streamSize)

	mWhole := discardManager(t)
	wholeAlloc, wholePeak := measureWrite(t, func() error {
		_, err := mWhole.Write(bg, "u", data)
		return err
	})

	mStream := discardManager(t)
	streamAlloc, streamPeak := measureWrite(t, func() error {
		_, err := mStream.WriteFrom(bg, "u", bytes.NewReader(data))
		return err
	})

	t.Logf("whole-object: %.1f MiB allocated, ~%.1f MiB peak heap growth", mib(wholeAlloc), mib(wholePeak))
	t.Logf("streamed:     %.1f MiB allocated, ~%.1f MiB peak heap growth", mib(streamAlloc), mib(streamPeak))

	if raceEnabled {
		// The race detector instruments every allocation with shadow
		// state, inflating the streamed path (many small pooled buffers
		// crossing goroutines) far more than the whole-object path (a few
		// large slabs) — the 25% ratio measures the allocator, not the
		// pipeline, under -race. Both paths still ran above, so the
		// pipeline itself stays race-checked; only the ratio assertion is
		// meaningless here.
		t.Skipf("skipping allocation-ratio assertion under -race (ratio %.1f%% reflects detector shadow memory)",
			100*float64(streamAlloc)/float64(wholeAlloc))
	}

	if ratio := float64(streamAlloc) / float64(wholeAlloc); ratio >= 0.25 {
		t.Fatalf("streamed write allocated %.1f%% of the whole-object path (%.1f of %.1f MiB), want < 25%%",
			100*ratio, mib(streamAlloc), mib(wholeAlloc))
	}
}

func mib(n uint64) float64 { return float64(n) / (1 << 20) }
