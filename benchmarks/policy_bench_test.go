package benchmarks

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"scfs/internal/cloud"
	"scfs/internal/cloudsim"
	"scfs/internal/depsky"
	"scfs/internal/iopolicy"
	"scfs/internal/telemetry"
)

// countingStore wraps an ObjectStore and counts the requests actually
// issued by the client — the denominator of per-request cloud fees. Unlike
// the provider-side counter it also sees requests that are cancelled
// mid-flight (issued is issued: hedging saves fees by never issuing, not by
// aborting earlier).
type countingStore struct {
	cloud.ObjectStore
	n *atomic.Int64
}

func (c countingStore) Put(ctx context.Context, name string, data []byte) error {
	c.n.Add(1)
	return c.ObjectStore.Put(ctx, name, data)
}

func (c countingStore) Get(ctx context.Context, name string) ([]byte, error) {
	c.n.Add(1)
	return c.ObjectStore.Get(ctx, name)
}

// hedgedBenchManager builds the skewed deployment of the hedged-read
// benchmark — three instant clouds, one straggler — with request counting
// on every client.
func hedgedBenchManager(b testing.TB, disableCancel, instrumented bool) (*depsky.Manager, []*cloudsim.Provider, []string, *atomic.Int64) {
	b.Helper()
	const stragglerRTT = 5 * time.Millisecond
	issued := &atomic.Int64{}
	providers := make([]*cloudsim.Provider, 4)
	clients := make([]cloud.ObjectStore, 4)
	accounts := make([]string, 4)
	for i := range providers {
		opts := cloudsim.Options{Name: fmt.Sprintf("c%d", i)}
		if i == 3 {
			opts.Latency = cloudsim.LatencyProfile{RTT: stragglerRTT}
		}
		providers[i] = cloudsim.NewProvider(opts)
		accounts[i] = providers[i].CreateAccount("bench")
		clients[i] = countingStore{ObjectStore: providers[i].MustClient(accounts[i]), n: issued}
	}
	opts := depsky.Options{Clouds: clients, F: 1, DisableQuorumCancel: disableCancel}
	if instrumented {
		opts.Metrics = telemetry.NewRegistry()
		opts.Tracer = telemetry.NewTracer(64)
	}
	m, err := depsky.New(opts)
	if err != nil {
		b.Fatal(err)
	}
	return m, providers, accounts, issued
}

// BenchmarkDepSkyHedgedRead compares three dispatch disciplines for a
// 256 KiB read against the skewed deployment (one straggler cloud):
//
//   - NoCancel: the pre-PR-3 baseline — full fan-out, losers run (and bill)
//     to completion; the straggler's RTT lands on every read's tail.
//   - Immediate: full fan-out with first-quorum-wins cancellation (the
//     default) — the tail is gone but every RPC is still issued.
//   - Hedged: preferred-set-first dispatch (WithHedge-style policy) — the
//     straggler is only contacted if the tracked delay percentile elapses,
//     which on this profile it never does.
//   - HedgedTelemetry: the Hedged discipline with the full telemetry plane
//     enabled (metrics registry + request tracing) — the observability
//     overhead benchmark.
//
// Tracked by benchguard: the Hedged leg must keep the tail-latency win
// (ns/op vs NoCancel) while issuing fewer requests than the Immediate
// fan-out (cloudReq/op) and shipping no more bytes (cloudB/op); the
// HedgedTelemetry leg must stay within 5% ns/op and 2% allocs/op of Hedged.
func BenchmarkDepSkyHedgedRead(b *testing.B) {
	for _, mode := range []struct {
		name          string
		disableCancel bool
		hedged        bool
		instrumented  bool
	}{
		{"Hedged", false, true, false},
		{"HedgedTelemetry", false, true, true},
		{"Immediate", false, false, false},
		{"NoCancel", true, false, false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			m, providers, accounts, issued := hedgedBenchManager(b, mode.disableCancel, mode.instrumented)
			data := bytes.Repeat([]byte{0x42}, 256<<10)
			if _, err := m.Write(bg, "u", data); err != nil {
				b.Fatal(err)
			}
			// Let the write's own stragglers drain, then make the tracker's
			// view of the deployment deterministic (the write already
			// observed all four clouds; the explicit warm-up removes
			// dependence on its timing).
			time.Sleep(50 * time.Millisecond)
			for i := 0; i < 4; i++ {
				rtt := time.Microsecond
				if i == 3 {
					rtt = 5 * time.Millisecond
				}
				for k := 0; k < 32; k++ {
					m.Tracker().Observe(i, iopolicy.GetOp(0), rtt)
					m.Tracker().Observe(i, iopolicy.GetOp(256<<10), rtt)
				}
			}
			ctx := bg
			if mode.hedged {
				// The explicit MinDelay keeps the hedge release strictly
				// after the preferred quorum's verdict: without it the
				// tracked-percentile delay rides the 1ms floor, right at
				// this profile's quorum latency, and scheduler noise
				// occasionally fires the hedge into the 5ms straggler —
				// which at small CI iteration counts dominates the ns/op
				// ratios tracked between the hedged legs.
				ctx = iopolicy.With(bg, iopolicy.Policy{
					Hedge:      iopolicy.Hedge{Percentile: 0.95, MinDelay: 50 * time.Millisecond},
					Preference: iopolicy.Preference{Fastest: true},
				})
			}
			bytesOut := func() int64 {
				var total int64
				for i, p := range providers {
					total += p.Usage(accounts[i]).BytesOut
				}
				return total
			}
			beforeBytes := bytesOut()
			beforeReqs := issued.Load()
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, _, err := m.Read(ctx, "u")
				if err != nil {
					b.Fatal(err)
				}
				if len(got) != len(data) {
					b.Fatal("short read")
				}
			}
			b.StopTimer()
			// Un-cancelled stragglers from the last iterations may still be
			// sleeping out their RTT before billing; wait them out so every
			// mode is charged everything it issued.
			time.Sleep(100 * time.Millisecond)
			b.ReportMetric(float64(bytesOut()-beforeBytes)/float64(b.N), "cloudB/op")
			b.ReportMetric(float64(issued.Load()-beforeReqs)/float64(b.N), "cloudReq/op")
		})
	}
}

// BenchmarkStreamSequentialScan measures a cold sequential scan of a 16 MiB
// chunked value over clouds with a real (small) RTT, with and without the
// readahead prefetch pipeline. With readahead N the fetch+decode of up to N
// upcoming chunks overlaps consumption of the current one, so the scan
// costs ~chunks/(N+1) round trips instead of one per chunk. Tracked by
// benchguard: Readahead4 must stay well below NoReadahead (the >= 1.5x
// throughput acceptance floor).
func BenchmarkStreamSequentialScan(b *testing.B) {
	const (
		chunkRTT = 5 * time.Millisecond
		scanSize = 16 << 20
	)
	for _, mode := range []struct {
		name      string
		readahead int
	}{
		{"NoReadahead", 0},
		{"Readahead4", 4},
	} {
		b.Run(mode.name, func(b *testing.B) {
			providers := make([]*cloudsim.Provider, 4)
			clients := make([]cloud.ObjectStore, 4)
			for i := range providers {
				providers[i] = cloudsim.NewProvider(cloudsim.Options{
					Name:    fmt.Sprintf("c%d", i),
					Latency: cloudsim.LatencyProfile{RTT: chunkRTT},
				})
				clients[i] = providers[i].MustClient(providers[i].CreateAccount("bench"))
			}
			m, err := depsky.New(depsky.Options{Clouds: clients, F: 1})
			if err != nil {
				b.Fatal(err)
			}
			data := bytes.Repeat([]byte{0x6B}, scanSize)
			if _, err := m.WriteFrom(bg, "u", bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
			ctx := bg
			if mode.readahead > 0 {
				ctx = iopolicy.With(bg, iopolicy.Policy{Readahead: mode.readahead})
			}
			buf := make([]byte, 256<<10)
			b.SetBytes(scanSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, _, err := m.Open(ctx, "u")
				if err != nil {
					b.Fatal(err)
				}
				n, err := io.CopyBuffer(io.Discard, r, buf)
				if err != nil {
					b.Fatal(err)
				}
				if n != scanSize {
					b.Fatalf("scanned %d bytes, want %d", n, scanSize)
				}
				r.Close()
			}
		})
	}
}
