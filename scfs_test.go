package scfs_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"testing"
	"testing/fstest"

	"scfs"
	"scfs/internal/cloudsim"
)

var bg = context.Background()

// newSimClient builds one zero-latency simulated cloud client.
func newSimClient(t *testing.T) scfs.ObjectStore {
	t.Helper()
	p := cloudsim.NewProvider(cloudsim.Options{Name: "solo"})
	return p.MustClient(p.CreateAccount("user"))
}

// mount creates a fully simulated blocking-mode mount and registers its
// teardown.
func mount(t *testing.T, opts ...scfs.Option) *scfs.FS {
	t.Helper()
	m, err := scfs.New(bg, append([]scfs.Option{scfs.WithDiskCache(t.TempDir(), 0)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close(bg) })
	return m
}

func TestFacadeRoundTrip(t *testing.T) {
	m := mount(t)
	if err := m.Mkdir(bg, "/docs"); err != nil {
		t.Fatal(err)
	}
	data := []byte("hello from the cloud-of-clouds")
	if err := scfs.WriteFile(bg, m, "/docs/hello.txt", data); err != nil {
		t.Fatal(err)
	}
	got, err := scfs.ReadFile(bg, m, "/docs/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %q", got)
	}
	infos, err := m.ReadDir(bg, "/docs")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "hello.txt" {
		t.Fatalf("ReadDir = %+v", infos)
	}
}

// TestFacadeErrorsMatchStdlib pins the acceptance criterion that facade
// users only need the standard library to classify errors.
func TestFacadeErrorsMatchStdlib(t *testing.T) {
	m := mount(t)
	_, err := scfs.ReadFile(bg, m, "/no/such/file")
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file err = %v, want errors.Is(err, fs.ErrNotExist)", err)
	}
	if !errors.Is(err, scfs.ErrNotExist) {
		t.Fatalf("missing file err = %v, want errors.Is(err, scfs.ErrNotExist)", err)
	}
	if err := scfs.WriteFile(bg, m, "/f", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open(bg, "/f", scfs.ReadWrite|scfs.Create|scfs.Exclusive); !errors.Is(err, fs.ErrExist) {
		t.Fatalf("exclusive create err = %v, want fs.ErrExist", err)
	}
}

// TestIOFSPassesFstest runs the standard library's file-system conformance
// suite against a cloudsim-backed mount through the io/fs adapter — the
// acceptance criterion of the io/fs interop work.
func TestIOFSPassesFstest(t *testing.T) {
	m := mount(t)
	want := map[string][]byte{
		"hello.txt":          []byte("hello"),
		"docs/report.txt":    bytes.Repeat([]byte("report "), 1000),
		"docs/sub/deep.bin":  {0x00, 0x01, 0x02, 0xFF},
		"pics/logo.png":      bytes.Repeat([]byte{0x89, 0x50}, 300),
		"empty-but-real.txt": nil,
	}
	for _, dir := range []string{"/docs", "/docs/sub", "/pics"} {
		if err := m.Mkdir(bg, dir); err != nil {
			t.Fatal(err)
		}
	}
	expected := make([]string, 0, len(want))
	for name, data := range want {
		if err := scfs.WriteFile(bg, m, "/"+name, data); err != nil {
			t.Fatal(err)
		}
		expected = append(expected, name)
	}
	if err := fstest.TestFS(m.IOFS(bg), expected...); err != nil {
		t.Fatal(err)
	}
}

// TestIOFSWalkDir exercises fs.WalkDir over a mount, the canonical
// ecosystem integration.
func TestIOFSWalkDir(t *testing.T) {
	m := mount(t)
	if err := m.Mkdir(bg, "/a"); err != nil {
		t.Fatal(err)
	}
	if err := m.Mkdir(bg, "/a/b"); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/a/x.txt", "/a/b/y.txt", "/z.txt"} {
		if err := scfs.WriteFile(bg, m, p, []byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	var visited []string
	err := fs.WalkDir(m.IOFS(bg), ".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		visited = append(visited, path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []string{".", "a", "a/b", "a/b/y.txt", "a/x.txt", "z.txt"}
	if len(visited) != len(wantOrder) {
		t.Fatalf("visited %v, want %v", visited, wantOrder)
	}
	for i := range wantOrder {
		if visited[i] != wantOrder[i] {
			t.Fatalf("visited %v, want %v", visited, wantOrder)
		}
	}
}

// TestIOFSServesHTTP serves a mount through http.FileServer: the adapter's
// Seek/ReadAt support is what makes range requests and content sniffing
// work.
func TestIOFSServesHTTP(t *testing.T) {
	m := mount(t)
	body := bytes.Repeat([]byte("0123456789"), 500)
	if err := scfs.WriteFile(bg, m, "/data.txt", body); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.FileServer(http.FS(m.IOFS(bg))))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/data.txt")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || !bytes.Equal(got, body) {
		t.Fatalf("full GET: %v, %d bytes", err, len(got))
	}

	req, _ := http.NewRequest("GET", srv.URL+"/data.txt", nil)
	req.Header.Set("Range", "bytes=100-199")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusPartialContent || !bytes.Equal(got, body[100:200]) {
		t.Fatalf("range GET: status %d, %d bytes", resp.StatusCode, len(got))
	}
}

// TestIOFSContextCancellation: the adapter's captured context bounds its
// operations.
func TestIOFSContextCancellation(t *testing.T) {
	m := mount(t)
	if err := scfs.WriteFile(bg, m, "/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(bg)
	fsys := m.IOFS(ctx)
	cancel()
	if _, err := fsys.Open("f"); !errors.Is(err, context.Canceled) {
		t.Fatalf("open under cancelled ctx: %v, want context.Canceled", err)
	}
}

// TestNonBlockingMode exercises the facade over the asynchronous mode:
// close queues the upload, WaitForUploads drains it.
func TestNonBlockingMode(t *testing.T) {
	m := mount(t, scfs.WithMode(scfs.NonBlocking))
	if err := scfs.WriteFile(bg, m, "/f", []byte("async")); err != nil {
		t.Fatal(err)
	}
	if err := m.WaitForUploads(bg); err != nil {
		t.Fatal(err)
	}
	got, err := scfs.ReadFile(bg, m, "/f")
	if err != nil || string(got) != "async" {
		t.Fatalf("%q, %v", got, err)
	}
}

// TestFacadeStreaming moves a multi-chunk payload through the streaming
// helpers.
func TestFacadeStreaming(t *testing.T) {
	m := mount(t)
	big := bytes.Repeat([]byte("stream me "), 300000) // ~3 MiB
	n, err := scfs.WriteFileFrom(bg, m, "/big", bytes.NewReader(big))
	if err != nil || n != int64(len(big)) {
		t.Fatalf("WriteFileFrom = %d, %v", n, err)
	}
	var out bytes.Buffer
	if _, err := scfs.ReadFileTo(bg, m, "/big", &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), big) {
		t.Fatal("streamed round trip mismatch")
	}
}

func TestSingleCloudBackend(t *testing.T) {
	// One provided cloud selects the single-cloud backend.
	m := mount(t, scfs.WithClouds(newSimClient(t)))
	if err := scfs.WriteFile(bg, m, "/f", []byte("single")); err != nil {
		t.Fatal(err)
	}
	if got, err := scfs.ReadFile(bg, m, "/f"); err != nil || string(got) != "single" {
		t.Fatalf("%q, %v", got, err)
	}
}

func TestBadCloudCount(t *testing.T) {
	if _, err := scfs.New(bg, scfs.WithClouds(newSimClient(t), newSimClient(t))); err == nil {
		t.Fatal("2 clouds accepted (need 1 or 3f+1)")
	}
}

// Example_walkDir demonstrates the io/fs interop: a cloud-of-clouds mount
// walked with the standard library.
func Example_walkDir() {
	ctx := context.Background()
	m, err := scfs.New(ctx)
	if err != nil {
		panic(err)
	}
	defer m.Close(ctx)

	_ = m.Mkdir(ctx, "/docs")
	_ = scfs.WriteFile(ctx, m, "/docs/a.txt", []byte("alpha"))
	_ = scfs.WriteFile(ctx, m, "/docs/b.txt", []byte("beta"))

	_ = fs.WalkDir(m.IOFS(ctx), ".", func(path string, d fs.DirEntry, err error) error {
		fmt.Println(path)
		return err
	})
	// Output:
	// .
	// docs
	// docs/a.txt
	// docs/b.txt
}

// TestHigherFaultToleranceDefaultSim: the default simulated deployment
// scales to 3f+1 providers when a higher f is requested.
func TestHigherFaultToleranceDefaultSim(t *testing.T) {
	m := mount(t, scfs.WithFaultTolerance(2))
	if err := scfs.WriteFile(bg, m, "/f", []byte("seven clouds")); err != nil {
		t.Fatal(err)
	}
	if got, err := scfs.ReadFile(bg, m, "/f"); err != nil || string(got) != "seven clouds" {
		t.Fatalf("%q, %v", got, err)
	}
}
