package scfs

import (
	"context"
	"io"
	"io/fs"
	"path"
	"time"

	"scfs/internal/fsapi"
)

// IOFS adapts the mount to the standard io/fs interfaces. The returned
// file system implements fs.FS, fs.ReadDirFS and fs.StatFS, its regular
// files additionally implement io.ReaderAt and io.Seeker, and its
// directories implement fs.ReadDirFile — enough for fs.WalkDir,
// testing/fstest.TestFS and http.FileServer (via http.FS) to work against a
// cloud-backed mount.
//
// The ctx is captured by the adapter and bounds every operation performed
// through it (the io/fs method set has no context parameters): serving an
// HTTP request from a mount, pass the request context and the transfer is
// cancelled when the client goes away.
//
// io/fs names are unrooted ("docs/report.txt", "." for the root); the
// adapter maps them onto the mount's absolute paths.
func (m *FS) IOFS(ctx context.Context) fs.FS {
	return &ioFS{ctx: ctx, m: m}
}

// ioFS is the io/fs adapter over a mount.
type ioFS struct {
	ctx context.Context
	m   *FS
}

var (
	_ fs.FS        = (*ioFS)(nil)
	_ fs.ReadDirFS = (*ioFS)(nil)
	_ fs.StatFS    = (*ioFS)(nil)
)

// mountPath converts an io/fs name to an absolute mount path.
func mountPath(name string) (string, bool) {
	if !fs.ValidPath(name) {
		return "", false
	}
	if name == "." {
		return "/", true
	}
	return "/" + name, true
}

// Open implements fs.FS.
func (f *ioFS) Open(name string) (fs.File, error) {
	p, ok := mountPath(name)
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrInvalid}
	}
	info, err := f.m.Stat(f.ctx, p)
	if err != nil {
		return nil, &fs.PathError{Op: "open", Path: name, Err: err}
	}
	if info.IsDir() {
		entries, err := f.m.ReadDir(f.ctx, p)
		if err != nil {
			return nil, &fs.PathError{Op: "open", Path: name, Err: err}
		}
		return &ioDir{name: name, info: info, entries: entries}, nil
	}
	h, err := f.m.Open(f.ctx, p, fsapi.ReadOnly)
	if err != nil {
		return nil, &fs.PathError{Op: "open", Path: name, Err: err}
	}
	return &ioFile{ctx: f.ctx, name: name, h: h, size: info.Size}, nil
}

// ReadDir implements fs.ReadDirFS.
func (f *ioFS) ReadDir(name string) ([]fs.DirEntry, error) {
	p, ok := mountPath(name)
	if !ok {
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: fs.ErrInvalid}
	}
	infos, err := f.m.ReadDir(f.ctx, p)
	if err != nil {
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: err}
	}
	entries := make([]fs.DirEntry, len(infos))
	for i, fi := range infos {
		entries[i] = fs.FileInfoToDirEntry(ioInfo{fi: fi})
	}
	return entries, nil
}

// Stat implements fs.StatFS.
func (f *ioFS) Stat(name string) (fs.FileInfo, error) {
	p, ok := mountPath(name)
	if !ok {
		return nil, &fs.PathError{Op: "stat", Path: name, Err: fs.ErrInvalid}
	}
	info, err := f.m.Stat(f.ctx, p)
	if err != nil {
		return nil, &fs.PathError{Op: "stat", Path: name, Err: err}
	}
	return ioInfo{fi: info}, nil
}

// ioInfo adapts fsapi.FileInfo to fs.FileInfo.
type ioInfo struct {
	fi fsapi.FileInfo
}

var _ fs.FileInfo = ioInfo{}

// Name implements fs.FileInfo.
func (i ioInfo) Name() string {
	if i.fi.Path == "/" || i.fi.Path == "" {
		return "."
	}
	return path.Base(i.fi.Path)
}

// Size implements fs.FileInfo.
func (i ioInfo) Size() int64 { return i.fi.Size }

// Mode implements fs.FileInfo.
func (i ioInfo) Mode() fs.FileMode {
	switch i.fi.Type {
	case fsapi.TypeDir:
		return fs.ModeDir | 0o755
	case fsapi.TypeSymlink:
		return fs.ModeSymlink | 0o644
	default:
		return 0o644
	}
}

// ModTime implements fs.FileInfo.
func (i ioInfo) ModTime() time.Time { return i.fi.ModTime }

// IsDir implements fs.FileInfo.
func (i ioInfo) IsDir() bool { return i.fi.IsDir() }

// Sys implements fs.FileInfo: the underlying fsapi.FileInfo (owner, sharing
// status).
func (i ioInfo) Sys() any { return i.fi }

// ioFile is an open regular file.
type ioFile struct {
	ctx  context.Context
	name string
	h    fsapi.Handle
	size int64
	off  int64
}

var (
	_ fs.File     = (*ioFile)(nil)
	_ io.ReaderAt = (*ioFile)(nil)
	_ io.Seeker   = (*ioFile)(nil)
)

// Stat implements fs.File.
func (f *ioFile) Stat() (fs.FileInfo, error) {
	info, err := f.h.Stat(f.ctx)
	if err != nil {
		return nil, &fs.PathError{Op: "stat", Path: f.name, Err: err}
	}
	return ioInfo{fi: info}, nil
}

// Read implements fs.File.
func (f *ioFile) Read(p []byte) (int, error) {
	n, err := f.h.ReadAt(f.ctx, p, f.off)
	f.off += int64(n)
	if err == io.EOF {
		if n > 0 {
			return n, nil
		}
		return 0, io.EOF
	}
	if err != nil {
		return n, &fs.PathError{Op: "read", Path: f.name, Err: err}
	}
	return n, nil
}

// ReadAt implements io.ReaderAt.
func (f *ioFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.h.ReadAt(f.ctx, p, off)
	if err != nil && err != io.EOF {
		return n, &fs.PathError{Op: "read", Path: f.name, Err: err}
	}
	return n, err
}

// Seek implements io.Seeker (http.FS needs it to serve ranges and sniff
// content types).
func (f *ioFile) Seek(offset int64, whence int) (int64, error) {
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.off
	case io.SeekEnd:
		base = f.size
	default:
		return 0, &fs.PathError{Op: "seek", Path: f.name, Err: fs.ErrInvalid}
	}
	if base+offset < 0 {
		return 0, &fs.PathError{Op: "seek", Path: f.name, Err: fs.ErrInvalid}
	}
	f.off = base + offset
	return f.off, nil
}

// Close implements fs.File.
func (f *ioFile) Close() error { return f.h.Close(f.ctx) }

// ioDir is an open directory; its entries are materialized at open time.
type ioDir struct {
	name    string
	info    fsapi.FileInfo
	entries []fsapi.FileInfo
	pos     int
}

var _ fs.ReadDirFile = (*ioDir)(nil)

// Stat implements fs.File.
func (d *ioDir) Stat() (fs.FileInfo, error) { return ioInfo{fi: d.info}, nil }

// Read implements fs.File (reading a directory is an error, like os.File).
func (d *ioDir) Read([]byte) (int, error) {
	return 0, &fs.PathError{Op: "read", Path: d.name, Err: fsapi.ErrIsDir}
}

// Close implements fs.File.
func (d *ioDir) Close() error { return nil }

// ReadDir implements fs.ReadDirFile with the usual paging semantics: n <= 0
// returns all remaining entries, n > 0 returns at most n and io.EOF once
// exhausted.
func (d *ioDir) ReadDir(n int) ([]fs.DirEntry, error) {
	remaining := len(d.entries) - d.pos
	if n <= 0 {
		out := make([]fs.DirEntry, 0, remaining)
		for ; d.pos < len(d.entries); d.pos++ {
			out = append(out, fs.FileInfoToDirEntry(ioInfo{fi: d.entries[d.pos]}))
		}
		return out, nil
	}
	if remaining == 0 {
		return nil, io.EOF
	}
	if n > remaining {
		n = remaining
	}
	out := make([]fs.DirEntry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fs.FileInfoToDirEntry(ioInfo{fi: d.entries[d.pos]}))
		d.pos++
	}
	return out, nil
}
