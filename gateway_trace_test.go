package scfs_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"scfs"
	"scfs/internal/gateway"
)

// TestGatewayEndToEndTrace: one HTTP request through the gateway must yield
// exactly one trace spanning the whole metadata plane — the gateway's HTTP
// span, the smr invocations its coordination lookups turned into, the shard
// routing decisions, and the per-cloud RPCs of the data fetch — joined to
// the caller's W3C traceparent identity and echoed back in X-SCFS-Trace.
func TestGatewayEndToEndTrace(t *testing.T) {
	m, err := scfs.New(bg,
		scfs.WithClouds(namedStores()...),
		scfs.WithDiskCache(t.TempDir(), 1), // ~no cache: force cloud RPCs
		scfs.WithMemoryCache(1),
		scfs.WithCoordShards(2),
		scfs.WithMaxInflight(8),
		scfs.WithTracing(128),
		scfs.WithFlightRecorder())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close(bg) })

	if err := m.Mkdir(bg, "/docs"); err != nil {
		t.Fatal(err)
	}
	if err := scfs.WriteFile(bg, m, "/docs/f.txt", []byte("end to end")); err != nil {
		t.Fatal(err)
	}

	gw, err := gateway.New(m, []gateway.Tenant{{Name: "acme"}},
		gateway.WithTracer(m.Tracer()))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(gw)
	defer srv.Close()

	const traceID = "0123456789abcdef0123456789abcdef"
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/acme/docs/f.txt", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET = status %d, err %v", resp.StatusCode, err)
	}
	if string(body) != "end to end" {
		t.Fatalf("body = %q", body)
	}
	// The response names the trace it produced — the caller's identity.
	if got := resp.Header.Get("X-SCFS-Trace"); got != traceID {
		t.Fatalf("X-SCFS-Trace = %q, want %q", got, traceID)
	}

	// Exactly one trace carries the propagated ID, and it spans every layer.
	var tr *scfs.Trace
	for _, c := range m.Traces(0) {
		if c.ID.String() != traceID {
			continue
		}
		if tr != nil {
			t.Fatal("more than one trace with the propagated ID")
		}
		tr = c
	}
	if tr == nil {
		t.Fatalf("no trace with ID %s in the ring", traceID)
	}
	if tr.Op != "http.get" {
		t.Fatalf("trace op = %q, want http.get", tr.Op)
	}
	names := make(map[string]bool)
	for _, s := range tr.Spans() {
		names[s.Name] = true
	}
	for _, want := range []string{"http.get", "smr.invoke", "shard.route"} {
		if !names[want] {
			t.Errorf("trace missing a %q span; spans:\n%v", want, tr.Describe())
		}
	}
	if !names["meta.get"] && !names["block.get"] && !names["chunk.get"] {
		t.Errorf("trace has no per-cloud RPC span; spans:\n%v", tr.Describe())
	}
}
