module scfs

go 1.24
