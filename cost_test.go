package scfs_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"scfs"
	"scfs/internal/cloudsim"
)

// TestCostReportAndDollarGC drives the full cost surface through the
// facade: writes accumulate a priced footprint, CostReport sees it, and a
// garbage collection reclaims measured dollars.
func TestCostReportAndDollarGC(t *testing.T) {
	// Explicit zero-latency providers: instant and read-after-write
	// consistent, so the GC sweep deterministically resolves every doomed
	// version (the default simulated deployment has eventual-consistency
	// windows that can hide the newest metadata from a sweep).
	stores := make([]scfs.ObjectStore, 4)
	for i := range stores {
		p := cloudsim.NewProvider(cloudsim.Options{Name: fmt.Sprintf("c%d", i)})
		stores[i] = p.MustClient(p.CreateAccount("user"))
	}
	m := mount(t, scfs.WithClouds(stores...), scfs.WithGC(scfs.GCPolicy{KeepVersions: 1}))
	if err := m.Mkdir(bg, "/pay"); err != nil {
		t.Fatal(err)
	}

	data := bytes.Repeat([]byte{0xCD}, 64<<10)
	for i := 0; i < 3; i++ { // three distinct versions of one file
		version := append(bytes.Repeat([]byte{byte(i)}, 64<<10-1), byte(i))
		if err := scfs.WriteFile(bg, m, "/pay/me.bin", version); err != nil {
			t.Fatal(err)
		}
	}
	if err := scfs.WriteFile(bg, m, "/pay/too.bin", data); err != nil {
		t.Fatal(err)
	}

	before, err := m.CostReport(bg)
	if err != nil {
		t.Fatal(err)
	}
	if before.Files != 2 || before.Versions != 4 {
		t.Fatalf("report saw %d files / %d versions, want 2 / 4", before.Files, before.Versions)
	}
	if before.LogicalBytes != 4*64<<10 {
		t.Fatalf("logical bytes = %d", before.LogicalBytes)
	}
	// DepSky-CA with f=1 stores ~1.5x the plaintext across the quorum.
	if before.CloudBytes <= before.LogicalBytes || before.CloudBytes >= 2*before.LogicalBytes {
		t.Fatalf("cloud bytes = %d for %d logical (want ~1.5x)", before.CloudBytes, before.LogicalBytes)
	}
	if before.StorageDollarsPerMonth <= 0 || before.ReadOnceDollars <= 0 {
		t.Fatalf("dollars missing from report: %+v", before)
	}

	report, err := m.Collect(bg)
	if err != nil {
		t.Fatal(err)
	}
	if report.VersionsDeleted != 2 {
		t.Fatalf("GC deleted %d versions, want the 2 old ones", report.VersionsDeleted)
	}
	if report.ReclaimedDollars <= 0 {
		t.Fatalf("GC attributed no dollars: %+v", report)
	}
	after, err := m.CostReport(bg)
	if err != nil {
		t.Fatal(err)
	}
	wantAfter := before.StorageDollarsPerMonth - report.ReclaimedDollars
	if diff := after.StorageDollarsPerMonth - wantAfter; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("post-GC storage spend %.12f, want %.12f (before %.12f minus reclaimed %.12f)",
			after.StorageDollarsPerMonth, wantAfter, before.StorageDollarsPerMonth, report.ReclaimedDollars)
	}
}

// TestWriteHedgeThroughFacade: WithWriteHedge on a facade write keeps the
// spare cloud untouched by uploads, and the file reads back intact.
func TestWriteHedgeThroughFacade(t *testing.T) {
	providers := make([]*cloudsim.Provider, 4)
	stores := make([]scfs.ObjectStore, 4)
	accounts := make([]string, 4)
	for i := range providers {
		providers[i] = cloudsim.NewProvider(cloudsim.Options{Name: fmt.Sprintf("c%d", i)})
		accounts[i] = providers[i].CreateAccount("user")
		stores[i] = providers[i].MustClient(accounts[i])
	}
	m := mount(t, scfs.WithClouds(stores...))

	data := bytes.Repeat([]byte{0x4F}, 32<<10)
	err := scfs.WriteFile(bg, m, "/hedged.bin", data,
		scfs.WithWriteHedge(0.95),
		scfs.WithWriteHedgeDelayBounds(10*time.Second, 0),
		scfs.WithReadPreference(scfs.PreferClouds(0, 1, 2)),
	)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if u := providers[3].Usage(accounts[3]); u.PutRequests != 0 {
		t.Fatalf("spare cloud served %d PUTs through a hedged facade write", u.PutRequests)
	}
	got, err := scfs.ReadFile(bg, m, "/hedged.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("hedged facade write read back wrong data")
	}
}

// TestPlacementThroughFacade: a cost-first placement with a custom price
// table steers a hedged write away from the expensive provider.
func TestPlacementThroughFacade(t *testing.T) {
	providers := make([]*cloudsim.Provider, 4)
	stores := make([]scfs.ObjectStore, 4)
	accounts := make([]string, 4)
	for i := range providers {
		providers[i] = cloudsim.NewProvider(cloudsim.Options{Name: fmt.Sprintf("c%d", i)})
		accounts[i] = providers[i].CreateAccount("user")
		stores[i] = providers[i].MustClient(accounts[i])
	}
	table := scfs.PriceTable{
		ByProvider: map[string]scfs.CloudRates{
			"c0": {StorageGBMonth: 0.02, EgressPerGB: 0.1},
			"c1": {StorageGBMonth: 5.00, EgressPerGB: 0.1}, // the one to avoid
			"c2": {StorageGBMonth: 0.02, EgressPerGB: 0.1},
			"c3": {StorageGBMonth: 0.02, EgressPerGB: 0.1},
		},
	}
	m := mount(t, scfs.WithClouds(stores...), scfs.WithPriceTable(table),
		scfs.WithDefaultIOPolicy(scfs.WithWriteHedge(0.95), scfs.WithWriteHedgeDelayBounds(10*time.Second, 0), scfs.WithPlacement(scfs.PlaceCheapest())))

	data := bytes.Repeat([]byte{0x88}, 64<<10)
	if err := scfs.WriteFile(bg, m, "/cheap.bin", data); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if u := providers[1].Usage(accounts[1]); u.PutRequests != 0 {
		t.Fatalf("expensive cloud served %d PUTs under cost-first placement", u.PutRequests)
	}
	got, err := scfs.ReadFile(bg, m, "/cheap.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cost-placed write read back wrong data")
	}
}
