// Package iopolicy defines the request-scoped I/O policy that travels with
// every SCFS operation, and the latency bookkeeping that makes the policy
// actionable.
//
// A Policy says how one operation should spend the cloud-of-clouds'
// redundancy: whether to fan a read out to every cloud immediately (the
// pre-policy behaviour, still the zero value) or to dispatch to a preferred
// subset first and hedge the stragglers only after a tracked latency
// percentile elapses (Basil-style hedged reads); how many chunks a
// sequential scan should prefetch ahead of the consumer; which clouds to
// prefer; and what per-call limits bound the extra work.
//
// Policies are carried by context.Context (With/FromContext) so they flow
// through every layer — facade, fs API, agent, quorum engine, storage —
// without widening each signature. The companion Tracker is fed a latency
// sample by every per-cloud RPC and answers the two questions hedged
// dispatch asks: which clouds are currently fastest, and how long is the
// p-th latency percentile of a preferred set.
package iopolicy

import (
	"context"
	"time"
)

// Hedge configures hedged fan-outs: a read is first dispatched to the
// preferred quorum only, and the remaining clouds are contacted when either
// the hedge delay elapses or a preferred cloud fails. The zero value
// disables hedging (immediate full fan-out).
type Hedge struct {
	// Percentile in (0, 1] selects the observed per-cloud latency quantile
	// used as the hedge delay: the extra requests launch only after the
	// preferred clouds had that fraction of their recent requests complete.
	// 0 disables hedging.
	Percentile float64
	// MinDelay and MaxDelay clamp the tracked delay. MaxDelay of 0 means
	// uncapped. With no samples yet the delay falls back to MinDelay, so a
	// cold tracker hedges (almost) immediately rather than stalling.
	MinDelay time.Duration
	MaxDelay time.Duration
}

// Enabled reports whether the hedge configuration is active.
func (h Hedge) Enabled() bool { return h.Percentile > 0 }

// Preference orders the clouds an operation's fan-outs dispatch to first —
// quorum reads and, when WriteHedge is enabled, the preferred write quorum
// alike. An explicit Order is the strongest placement signal: it takes
// precedence over the Placement objective, so a call that pins clouds
// (e.g. for an egress contract) also pins where its hedged writes land.
type Preference struct {
	// Fastest ranks clouds by their tracked latency, fastest first. This is
	// the default whenever hedging is enabled.
	Fastest bool
	// Order lists cloud indices to prefer, in order; clouds not listed are
	// ranked after the listed ones. Takes precedence over Fastest and over
	// the Placement objective.
	Order []int
}

// IsZero reports whether the preference is unset.
func (p Preference) IsZero() bool { return !p.Fastest && len(p.Order) == 0 }

// PlacementStrategy selects the objective a dispatch ranks clouds by.
type PlacementStrategy int

const (
	// PlaceDefault is the unset strategy: it ranks like PlaceLatency but,
	// being the zero value, is overridden by any mount-wide default when
	// policies merge. An explicit PlaceLatency survives the merge instead,
	// so a latency-critical call can opt out of a cost-first mount.
	PlaceDefault PlacementStrategy = iota
	// PlaceLatency ranks clouds by tracked latency, fastest first (the
	// same ranking a zero placement uses, but explicit: it overrides a
	// mount-wide cost objective when merged).
	PlaceLatency
	// PlaceCost ranks clouds by the estimated dollars the operation costs
	// at each of them (request fee + transfer + storage for uploads),
	// cheapest first.
	PlaceCost
	// PlaceBalanced blends the two normalized objectives with CostWeight.
	PlaceBalanced
)

// Placement is the per-operation placement objective: which clouds should
// serve this request, ranked by cost, latency, or a weighted blend. The
// ranking decides the preferred quorum of hedged reads and writes — under a
// cost objective a hedged write sends its shards to the cheapest n-f clouds
// and contacts the expensive spares only if the preferred set stalls or
// fails. The zero value keeps the latency-first default. The dollar side of
// the objective is evaluated by internal/placement, which owns the price
// tables; this spec only travels with the policy.
type Placement struct {
	// Strategy selects the objective.
	Strategy PlacementStrategy
	// CostWeight in [0, 1] sets the cost share under PlaceBalanced
	// (0 = pure latency, 1 = pure cost). Ignored by the other strategies.
	CostWeight float64
}

// IsZero reports whether the placement objective is unset.
func (p Placement) IsZero() bool { return p == Placement{} }

// Retry is the per-RPC retry budget an operation grants each cloud: how
// many attempts one logical RPC may spend on transient failures (outage,
// throttle) and how the jittered exponential backoff between them grows.
// The zero value disables retries — one attempt per cloud, the
// pre-resilience behaviour — because the quorum layer already masks f
// failed clouds without retrying anyone; retries are for riding out
// transient weather when redundancy alone is not enough (e.g. more than f
// clouds flaking at once, or a single-cloud backend).
type Retry struct {
	// MaxAttempts is the total attempts per RPC (first try included); 0 and
	// 1 both mean a single attempt.
	MaxAttempts int
	// BackoffBase caps the first retry delay (full jitter draws uniformly
	// below the cap); 0 with MaxAttempts > 1 retries without delay.
	BackoffBase time.Duration
	// BackoffMax caps the exponential growth; 0 means 16x BackoffBase.
	BackoffMax time.Duration
}

// IsZero reports whether the retry budget is unset.
func (r Retry) IsZero() bool { return r == Retry{} }

// Enabled reports whether the budget grants any retries.
func (r Retry) Enabled() bool { return r.MaxAttempts > 1 }

// BreakerMode selects how an operation consumes the per-(cloud, op-class)
// circuit-breaker scoreboard.
type BreakerMode int

const (
	// BreakerDemote (the default) keeps suspected clouds reachable but
	// deprioritized: they move to the back of every dispatch ranking (last
	// hedge tier) and receive no retry budget, yet a fan-out that needs them
	// for its quorum still contacts them. Availability is never traded away.
	BreakerDemote BreakerMode = iota
	// BreakerBypass ignores breaker state entirely for this operation (it is
	// still recorded): the pre-resilience dispatch order.
	BreakerBypass
	// BreakerFailFast additionally skips suspected clouds outright instead
	// of queueing them behind the hedge gate — latency-critical reads would
	// rather fail a cloud silently than wait on it. Quorum math still counts
	// the skipped cloud as failed, so writes needing n-f acks should prefer
	// BreakerDemote.
	BreakerFailFast
)

// Limits bounds the extra work a policy may spend on one call.
type Limits struct {
	// MaxParallelChunks bounds the number of chunk fetches a readahead
	// pipeline keeps in flight concurrently. 0 means the readahead window
	// itself is the bound.
	MaxParallelChunks int
	// MaxHedges bounds how many extra clouds launch at the first hedge
	// firing; clouds beyond the bound wait a further multiple of the hedge
	// delay (so availability is never sacrificed, only staggered). 0 means
	// all remaining clouds launch at the first firing.
	MaxHedges int
}

// Policy is the per-operation I/O policy. The zero value reproduces the
// pre-policy behaviour exactly: immediate full fan-out for reads and
// writes, no readahead, latency-neutral placement.
type Policy struct {
	// Hedge configures hedged (delayed-straggler) fan-outs for reads.
	Hedge Hedge
	// WriteHedge configures hedged quorum writes: uploads go to the
	// preferred n-f quorum immediately and the spare clouds launch only
	// after the tracked delay percentile elapses or a preferred upload
	// fails. On a stable deployment the spares are never contacted, cutting
	// the write's ingress bytes and PUT fees to the quorum the paper's cost
	// model charges for. The zero value keeps the immediate full fan-out.
	WriteHedge Hedge
	// Readahead is the maximum number of chunks a sequential scan prefetches
	// ahead of the consumer (0 = no prefetch). The actual window ramps up
	// only while the access pattern stays sequential.
	Readahead int
	// Preference orders the clouds dispatched to first.
	Preference Preference
	// Placement ranks the clouds of a fan-out by cost, latency or a blend;
	// an explicit Preference order takes precedence over it.
	Placement Placement
	// Retry grants each per-cloud RPC a budget of backoff retries against
	// transient provider failures.
	Retry Retry
	// Breaker selects how the operation consumes the circuit-breaker
	// scoreboard (demote suspected clouds, bypass it, or fail fast).
	Breaker BreakerMode
	// Limits bounds the extra work.
	Limits Limits
}

// IsZero reports whether the policy requests nothing beyond the defaults.
func (p Policy) IsZero() bool {
	return !p.Hedge.Enabled() && !p.WriteHedge.Enabled() && p.Readahead == 0 &&
		p.Preference.IsZero() && p.Placement.IsZero() && p.Retry.IsZero() &&
		p.Breaker == BreakerDemote && p.Limits == Limits{}
}

// Merge overlays override on p: fields set in override win, unset fields
// keep p's value. It implements the mount-default / per-call layering: the
// mount's default policy is p, the call's options are override. The hedge
// configuration merges field-wise, so a call may retune just the delay
// bounds of an inherited hedge (WithHedgeDelayBounds without WithHedge),
// or just the percentile without losing the mount's bounds.
func (p Policy) Merge(override Policy) Policy {
	out := p
	if override.Hedge.Percentile != 0 {
		out.Hedge.Percentile = override.Hedge.Percentile
	}
	if override.Hedge.MinDelay != 0 {
		out.Hedge.MinDelay = override.Hedge.MinDelay
	}
	if override.Hedge.MaxDelay != 0 {
		out.Hedge.MaxDelay = override.Hedge.MaxDelay
	}
	if override.WriteHedge.Percentile != 0 {
		out.WriteHedge.Percentile = override.WriteHedge.Percentile
	}
	if override.WriteHedge.MinDelay != 0 {
		out.WriteHedge.MinDelay = override.WriteHedge.MinDelay
	}
	if override.WriteHedge.MaxDelay != 0 {
		out.WriteHedge.MaxDelay = override.WriteHedge.MaxDelay
	}
	if override.Readahead != 0 {
		out.Readahead = override.Readahead
	}
	if !override.Preference.IsZero() {
		out.Preference = override.Preference
	}
	if !override.Placement.IsZero() {
		out.Placement = override.Placement
	}
	if !override.Retry.IsZero() {
		out.Retry = override.Retry
	}
	if override.Breaker != BreakerDemote {
		out.Breaker = override.Breaker
	}
	if override.Limits.MaxParallelChunks != 0 {
		out.Limits.MaxParallelChunks = override.Limits.MaxParallelChunks
	}
	if override.Limits.MaxHedges != 0 {
		out.Limits.MaxHedges = override.Limits.MaxHedges
	}
	return out
}

// ctxKey is the context key carrying a Policy.
type ctxKey struct{}

// With returns a context carrying pol; every SCFS layer below the call
// reads it back with FromContext.
func With(ctx context.Context, pol Policy) context.Context {
	return context.WithValue(ctx, ctxKey{}, pol)
}

// FromContext returns the policy carried by ctx, if any.
func FromContext(ctx context.Context) (Policy, bool) {
	pol, ok := ctx.Value(ctxKey{}).(Policy)
	return pol, ok
}
