package iopolicy

import "sync"

// governorStreams is how many concurrent sequential streams one Governor
// distinguishes within a single open file. Several handles (or goroutines
// splitting one handle) routinely scan disjoint regions of the same file;
// one global next-offset would see their interleaved reads as perpetual
// seeking and never open a window. Four streams cover the common fan-outs
// (a pair of scans, a scan plus a tailer) without letting a random reader
// accumulate state.
const governorStreams = 4

// streamState is one tracked sequential stream: where its next read is
// expected and how wide its window has ramped.
type streamState struct {
	nextOff int64
	window  int
	stamp   int64 // last-use tick for LRU replacement
}

// Governor sizes the readahead window of one open file. It watches the
// byte-offset stream of reads and grows a window multiplicatively while the
// pattern stays sequential — 1, 2, 4, ... up to the configured maximum.
//
// Sequentiality is detected per stream, not per file: reads are clustered
// by offset (a read continuing exactly where a tracked stream left off
// belongs to that stream), so two interleaved sequential scans of the same
// open file each ramp their own window instead of collapsing each other's.
// A read matching no stream starts a new one with a zero window (evicting
// the least recently used when all slots are taken), so random readers
// never pay for speculative chunk fetches.
type Governor struct {
	mu      sync.Mutex
	max     int
	tick    int64
	streams []streamState
}

// NewGovernor creates a governor whose per-stream window never exceeds max
// chunks. A max of 0 or less disables readahead (Observe always returns 0).
func NewGovernor(max int) *Governor {
	// Seed one stream expecting offset 0, so a cold scan from the start of
	// the file counts as sequential from its very first read.
	return &Governor{max: max, streams: []streamState{{}}}
}

// Max returns the configured window bound.
func (g *Governor) Max() int {
	if g == nil {
		return 0
	}
	return g.max
}

// Observe records a read of n bytes at offset off and returns the readahead
// window to use after it: how many chunks past the read's end are worth
// prefetching on the stream this read belongs to.
func (g *Governor) Observe(off, n int64) int {
	if g == nil || g.max <= 0 {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.tick++
	for i := range g.streams {
		s := &g.streams[i]
		if s.nextOff != off {
			continue
		}
		// The read continues this stream: ramp its window and advance it.
		switch {
		case s.window == 0:
			s.window = 1
		case s.window*2 > g.max:
			s.window = g.max
		default:
			s.window *= 2
		}
		s.nextOff = off + n
		s.stamp = g.tick
		return s.window
	}
	// A re-read of a block some stream just consumed (a hot header fetched
	// repeatedly during a scan) would otherwise mint a duplicate stream
	// with the same nextOff on every re-read, churning the LRU slots until
	// genuine scans lose their windows. Refresh the existing stream
	// instead; the re-read itself earns no window (it is not an advance).
	for i := range g.streams {
		if g.streams[i].nextOff == off+n {
			g.streams[i].stamp = g.tick
			return 0
		}
	}
	// No tracked stream continues here: start a new one (it earns its first
	// window only once a second read follows it), evicting the least
	// recently used stream when the slots are full.
	ns := streamState{nextOff: off + n, stamp: g.tick}
	lru := -1
	for i := range g.streams {
		if lru < 0 || g.streams[i].stamp < g.streams[lru].stamp {
			lru = i
		}
	}
	if len(g.streams) < governorStreams {
		g.streams = append(g.streams, ns)
	} else {
		g.streams[lru] = ns
	}
	return 0
}
