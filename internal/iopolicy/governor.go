package iopolicy

import "sync"

// Governor sizes the readahead window of one open file. It watches the
// byte-offset stream of reads and grows the window multiplicatively while
// the pattern stays sequential — 1, 2, 4, ... up to the configured maximum —
// and collapses it to zero on the first non-sequential access, so random
// readers never pay for speculative chunk fetches.
type Governor struct {
	mu      sync.Mutex
	max     int
	nextOff int64
	window  int
}

// NewGovernor creates a governor whose window never exceeds max chunks.
// A max of 0 or less disables readahead (Observe always returns 0).
func NewGovernor(max int) *Governor {
	return &Governor{max: max}
}

// Max returns the configured window bound.
func (g *Governor) Max() int {
	if g == nil {
		return 0
	}
	return g.max
}

// Observe records a read of n bytes at offset off and returns the readahead
// window to use after it: how many chunks past the read's end are worth
// prefetching. The first read of a file (offset 0) counts as sequential, so
// a cold scan starts prefetching from its first chunk onward.
func (g *Governor) Observe(off, n int64) int {
	if g == nil || g.max <= 0 {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if off == g.nextOff {
		switch {
		case g.window == 0:
			g.window = 1
		case g.window*2 > g.max:
			g.window = g.max
		default:
			g.window *= 2
		}
	} else {
		g.window = 0
	}
	g.nextOff = off + n
	return g.window
}
