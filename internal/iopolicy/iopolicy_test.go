package iopolicy

import (
	"context"
	"testing"
	"time"
)

func TestPolicyContextRoundTrip(t *testing.T) {
	if _, ok := FromContext(context.Background()); ok {
		t.Fatal("background context should carry no policy")
	}
	pol := Policy{Hedge: Hedge{Percentile: 0.95}, Readahead: 3}
	ctx := With(context.Background(), pol)
	got, ok := FromContext(ctx)
	if !ok {
		t.Fatal("policy not found on context")
	}
	if got.Hedge.Percentile != 0.95 || got.Readahead != 3 {
		t.Fatalf("got %+v", got)
	}
}

func TestPolicyMerge(t *testing.T) {
	base := Policy{
		Hedge:     Hedge{Percentile: 0.9, MaxDelay: time.Second},
		Readahead: 2,
		Limits:    Limits{MaxParallelChunks: 4},
	}
	merged := base.Merge(Policy{Readahead: 8})
	if merged.Readahead != 8 {
		t.Fatalf("override readahead lost: %+v", merged)
	}
	if merged.Hedge.Percentile != 0.9 || merged.Limits.MaxParallelChunks != 4 {
		t.Fatalf("base fields lost: %+v", merged)
	}
	merged = base.Merge(Policy{Hedge: Hedge{Percentile: 0.5, MinDelay: time.Millisecond}})
	if merged.Hedge.Percentile != 0.5 || merged.Hedge.MinDelay != time.Millisecond {
		t.Fatalf("hedge override fields lost: %+v", merged)
	}
	if merged.Hedge.MaxDelay != time.Second {
		t.Fatalf("hedge merge must be field-wise (inherited MaxDelay lost): %+v", merged)
	}
	// Delay bounds alone retune an inherited hedge without re-enabling it.
	merged = base.Merge(Policy{Hedge: Hedge{MaxDelay: 5 * time.Millisecond}})
	if merged.Hedge.Percentile != 0.9 || merged.Hedge.MaxDelay != 5*time.Millisecond {
		t.Fatalf("delay-bounds-only override lost: %+v", merged)
	}
	if !(Policy{}).IsZero() {
		t.Fatal("zero policy should report IsZero")
	}
	if base.IsZero() {
		t.Fatal("non-zero policy should not report IsZero")
	}
}

func TestTrackerPercentileAndRank(t *testing.T) {
	tr := NewTracker(3)
	// Cloud 0: fast. Cloud 2: slow. Cloud 1: never observed.
	for i := 0; i < 50; i++ {
		tr.Observe(0, time.Millisecond)
		tr.Observe(2, 10*time.Millisecond)
	}
	if d, ok := tr.Percentile(0, 0.95); !ok || d != time.Millisecond {
		t.Fatalf("cloud 0 p95 = %v, %v", d, ok)
	}
	if _, ok := tr.Percentile(1, 0.95); ok {
		t.Fatal("cloud 1 has no samples")
	}
	if d, ok := tr.EWMA(2); !ok || d < 9*time.Millisecond {
		t.Fatalf("cloud 2 ewma = %v, %v", d, ok)
	}
	rank := tr.Rank()
	if len(rank) != 3 || rank[2] != 2 {
		t.Fatalf("slow cloud should rank last: %v", rank)
	}
	// Unseen cloud 1 ranks before the observed ones (explored optimistically).
	if rank[0] != 1 {
		t.Fatalf("unseen cloud should rank first: %v", rank)
	}
}

func TestTrackerPercentileSpread(t *testing.T) {
	tr := NewTracker(1)
	// 90 fast samples, 10 slow: p50 must be fast, p99 slow.
	for i := 0; i < 90; i++ {
		tr.Observe(0, time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		tr.Observe(0, 100*time.Millisecond)
	}
	if d, _ := tr.Percentile(0, 0.5); d != time.Millisecond {
		t.Fatalf("p50 = %v", d)
	}
	if d, _ := tr.Percentile(0, 0.99); d != 100*time.Millisecond {
		t.Fatalf("p99 = %v", d)
	}
}

func TestHedgeDelayClamp(t *testing.T) {
	tr := NewTracker(2)
	h := Hedge{Percentile: 0.9, MinDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond}
	// Cold tracker: MinDelay.
	if d := tr.HedgeDelay(h, []int{0, 1}); d != 2*time.Millisecond {
		t.Fatalf("cold delay = %v", d)
	}
	for i := 0; i < 50; i++ {
		tr.Observe(0, 50*time.Millisecond)
	}
	// Tracked p90 of 50ms is clamped by MaxDelay.
	if d := tr.HedgeDelay(h, []int{0}); d != 20*time.Millisecond {
		t.Fatalf("clamped delay = %v", d)
	}
}

func TestGovernorRampAndReset(t *testing.T) {
	g := NewGovernor(4)
	// Sequential reads ramp 1, 2, 4, 4...
	want := []int{1, 2, 4, 4}
	off := int64(0)
	for i, w := range want {
		if got := g.Observe(off, 100); got != w {
			t.Fatalf("read %d: window = %d, want %d", i, got, w)
		}
		off += 100
	}
	// A seek collapses the window.
	if got := g.Observe(10_000, 100); got != 0 {
		t.Fatalf("random read window = %d, want 0", got)
	}
	// Resuming sequentially from the new position ramps again.
	if got := g.Observe(10_100, 100); got != 1 {
		t.Fatalf("resumed window = %d, want 1", got)
	}
	// Disabled governor never prefetches.
	if got := NewGovernor(0).Observe(0, 1); got != 0 {
		t.Fatalf("disabled governor window = %d", got)
	}
	var nilG *Governor
	if got := nilG.Observe(0, 1); got != 0 {
		t.Fatal("nil governor must be a no-op")
	}
}
