package iopolicy

import (
	"context"
	"testing"
	"time"
)

func TestPolicyContextRoundTrip(t *testing.T) {
	if _, ok := FromContext(context.Background()); ok {
		t.Fatal("background context should carry no policy")
	}
	pol := Policy{Hedge: Hedge{Percentile: 0.95}, Readahead: 3}
	ctx := With(context.Background(), pol)
	got, ok := FromContext(ctx)
	if !ok {
		t.Fatal("policy not found on context")
	}
	if got.Hedge.Percentile != 0.95 || got.Readahead != 3 {
		t.Fatalf("got %+v", got)
	}
}

func TestPolicyMerge(t *testing.T) {
	base := Policy{
		Hedge:     Hedge{Percentile: 0.9, MaxDelay: time.Second},
		Readahead: 2,
		Limits:    Limits{MaxParallelChunks: 4},
	}
	merged := base.Merge(Policy{Readahead: 8})
	if merged.Readahead != 8 {
		t.Fatalf("override readahead lost: %+v", merged)
	}
	if merged.Hedge.Percentile != 0.9 || merged.Limits.MaxParallelChunks != 4 {
		t.Fatalf("base fields lost: %+v", merged)
	}
	merged = base.Merge(Policy{Hedge: Hedge{Percentile: 0.5, MinDelay: time.Millisecond}})
	if merged.Hedge.Percentile != 0.5 || merged.Hedge.MinDelay != time.Millisecond {
		t.Fatalf("hedge override fields lost: %+v", merged)
	}
	if merged.Hedge.MaxDelay != time.Second {
		t.Fatalf("hedge merge must be field-wise (inherited MaxDelay lost): %+v", merged)
	}
	// Delay bounds alone retune an inherited hedge without re-enabling it.
	merged = base.Merge(Policy{Hedge: Hedge{MaxDelay: 5 * time.Millisecond}})
	if merged.Hedge.Percentile != 0.9 || merged.Hedge.MaxDelay != 5*time.Millisecond {
		t.Fatalf("delay-bounds-only override lost: %+v", merged)
	}
	if !(Policy{}).IsZero() {
		t.Fatal("zero policy should report IsZero")
	}
	if base.IsZero() {
		t.Fatal("non-zero policy should not report IsZero")
	}
}

func TestTrackerPercentileAndRank(t *testing.T) {
	tr := NewTracker(3)
	op := GetOp(0)
	// Cloud 0: fast. Cloud 2: slow. Cloud 1: never observed.
	for i := 0; i < 50; i++ {
		tr.Observe(0, op, time.Millisecond)
		tr.Observe(2, op, 10*time.Millisecond)
	}
	if d, ok := tr.Percentile(0, op, 0.95); !ok || d != time.Millisecond {
		t.Fatalf("cloud 0 p95 = %v, %v", d, ok)
	}
	if _, ok := tr.Percentile(1, op, 0.95); ok {
		t.Fatal("cloud 1 has no samples")
	}
	if d, ok := tr.EWMA(2, op); !ok || d < 9*time.Millisecond {
		t.Fatalf("cloud 2 ewma = %v, %v", d, ok)
	}
	rank := tr.Rank(op)
	if len(rank) != 3 || rank[2] != 2 {
		t.Fatalf("slow cloud should rank last: %v", rank)
	}
	// Unseen cloud 1 ranks before the observed ones (explored optimistically).
	if rank[0] != 1 {
		t.Fatalf("unseen cloud should rank first: %v", rank)
	}
}

func TestTrackerPercentileSpread(t *testing.T) {
	tr := NewTracker(1)
	op := GetOp(0)
	// 90 fast samples, 10 slow: p50 must be fast, p99 slow.
	for i := 0; i < 90; i++ {
		tr.Observe(0, op, time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		tr.Observe(0, op, 100*time.Millisecond)
	}
	if d, _ := tr.Percentile(0, op, 0.5); d != time.Millisecond {
		t.Fatalf("p50 = %v", d)
	}
	if d, _ := tr.Percentile(0, op, 0.99); d != 100*time.Millisecond {
		t.Fatalf("p99 = %v", d)
	}
}

// TestTrackerSplitsByClassAndSize pins the ROADMAP fix: GETs and PUTs (and
// different payload-size buckets) form separate series, so a cloud that
// serves fast point reads but slow bulk uploads is ranked per operation,
// and a cold series borrows the nearest populated one instead of reporting
// nothing.
func TestTrackerSplitsByClassAndSize(t *testing.T) {
	tr := NewTracker(2)
	smallGet := GetOp(100)
	bigPut := PutOp(4 << 20)
	// Cloud 0: instant point GETs, terrible bulk PUTs. Cloud 1: the reverse.
	for i := 0; i < 40; i++ {
		tr.Observe(0, smallGet, time.Millisecond)
		tr.Observe(0, bigPut, 200*time.Millisecond)
		tr.Observe(1, smallGet, 50*time.Millisecond)
		tr.Observe(1, bigPut, 20*time.Millisecond)
	}
	if rank := tr.Rank(smallGet); rank[0] != 0 {
		t.Fatalf("GET rank = %v, cloud 0 should lead", rank)
	}
	if rank := tr.Rank(bigPut); rank[0] != 1 {
		t.Fatalf("bulk PUT rank = %v, cloud 1 should lead", rank)
	}
	// The PUT series must not be polluted by the 1ms GETs: cloud 0's bulk
	// PUT percentile stays at its own 200ms.
	if d, ok := tr.Percentile(0, bigPut, 0.9); !ok || d != 200*time.Millisecond {
		t.Fatalf("bulk PUT p90 = %v, %v (want the PUT series, not the GET one)", d, ok)
	}
	// A cold series (medium-sized GET) falls back to the nearest populated
	// bucket of the same class rather than reporting "no samples".
	if d, ok := tr.EWMA(0, GetOp(1<<20)); !ok || d > 2*time.Millisecond {
		t.Fatalf("cold-bucket fallback = %v, %v (want the small-GET series)", d, ok)
	}
	// A class with no samples at all falls back to the other class.
	tr2 := NewTracker(1)
	for i := 0; i < 10; i++ {
		tr2.Observe(0, smallGet, 3*time.Millisecond)
	}
	if d, ok := tr2.EWMA(0, PutOp(100)); !ok || d != 3*time.Millisecond {
		t.Fatalf("cross-class fallback = %v, %v", d, ok)
	}
}

func TestHedgeDelayClamp(t *testing.T) {
	tr := NewTracker(2)
	op := GetOp(0)
	h := Hedge{Percentile: 0.9, MinDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond}
	// Cold tracker: MinDelay.
	if d := tr.HedgeDelay(op, h, []int{0, 1}); d != 2*time.Millisecond {
		t.Fatalf("cold delay = %v", d)
	}
	for i := 0; i < 50; i++ {
		tr.Observe(0, op, 50*time.Millisecond)
	}
	// Tracked p90 of 50ms is clamped by MaxDelay.
	if d := tr.HedgeDelay(op, h, []int{0}); d != 20*time.Millisecond {
		t.Fatalf("clamped delay = %v", d)
	}
}

func TestGovernorRampAndReset(t *testing.T) {
	g := NewGovernor(4)
	// Sequential reads ramp 1, 2, 4, 4...
	want := []int{1, 2, 4, 4}
	off := int64(0)
	for i, w := range want {
		if got := g.Observe(off, 100); got != w {
			t.Fatalf("read %d: window = %d, want %d", i, got, w)
		}
		off += 100
	}
	// A seek collapses the window.
	if got := g.Observe(10_000, 100); got != 0 {
		t.Fatalf("random read window = %d, want 0", got)
	}
	// Resuming sequentially from the new position ramps again.
	if got := g.Observe(10_100, 100); got != 1 {
		t.Fatalf("resumed window = %d, want 1", got)
	}
	// Disabled governor never prefetches.
	if got := NewGovernor(0).Observe(0, 1); got != 0 {
		t.Fatalf("disabled governor window = %d", got)
	}
	var nilG *Governor
	if got := nilG.Observe(0, 1); got != 0 {
		t.Fatal("nil governor must be a no-op")
	}
}

// TestGovernorInterleavedStreams pins the ROADMAP fix: two sequential scans
// interleaving their reads on one open file must each ramp their own
// window instead of defeating the sequentiality detector.
func TestGovernorInterleavedStreams(t *testing.T) {
	g := NewGovernor(8)
	offA, offB := int64(0), int64(1<<20)
	want := []int{1, 2, 4, 8, 8}
	for i, w := range want {
		if got := g.Observe(offA, 100); got != w {
			// Stream B's first read creates its stream (window 0), so its
			// ramp trails A's by one read.
			t.Fatalf("stream A read %d: window = %d, want %d", i, got, w)
		}
		wantB := 0
		if i > 0 {
			wantB = want[i-1]
		}
		if got := g.Observe(offB, 100); got != wantB {
			t.Fatalf("stream B read %d: window = %d, want %d", i, got, wantB)
		}
		offA += 100
		offB += 100
	}
	// Random reads occupy the remaining stream slots without evicting the
	// two live scans, so a continuing scan keeps its window.
	for i := int64(0); i < 2; i++ {
		g.Observe(5<<20+i*7777, 10)
	}
	if got := g.Observe(offA, 100); got != 8 {
		t.Fatalf("stream A lost its window to random churn: %d", got)
	}
	offA += 100
	if got := g.Observe(offB, 100); got != 8 {
		t.Fatalf("stream B lost its window to random churn: %d", got)
	}
	offB += 100
	// A hot block re-read repeatedly during the scans must refresh one
	// stream, not mint a duplicate per re-read: the first re-read takes
	// one (LRU) slot, the rest reuse it, and both scans keep their windows.
	for i := 0; i < 10; i++ {
		if got := g.Observe(9<<20, 100); got != 0 {
			t.Fatalf("hot re-read %d got window %d, want 0", i, got)
		}
	}
	if got := g.Observe(offA, 100); got != 8 {
		t.Fatalf("stream A lost its window to hot re-read churn: %d", got)
	}
	if got := g.Observe(offB, 100); got != 8 {
		t.Fatalf("stream B lost its window to hot re-read churn: %d", got)
	}
}

func TestPlacementMerge(t *testing.T) {
	base := Policy{WriteHedge: Hedge{Percentile: 0.9, MaxDelay: time.Second}}
	merged := base.Merge(Policy{Placement: Placement{Strategy: PlaceCost}})
	if merged.Placement.Strategy != PlaceCost {
		t.Fatalf("placement override lost: %+v", merged)
	}
	if merged.WriteHedge.Percentile != 0.9 {
		t.Fatalf("write hedge lost: %+v", merged)
	}
	// An explicit latency placement must override a cost-first default —
	// PlaceLatency is deliberately not the zero value so the merge can see
	// it.
	costFirst := Policy{Placement: Placement{Strategy: PlaceCost}}
	merged = costFirst.Merge(Policy{Placement: Placement{Strategy: PlaceLatency}})
	if merged.Placement.Strategy != PlaceLatency {
		t.Fatalf("explicit latency placement lost under a cost default: %+v", merged)
	}
	// The zero (unset) placement inherits the default.
	merged = costFirst.Merge(Policy{})
	if merged.Placement.Strategy != PlaceCost {
		t.Fatalf("unset placement must inherit the default: %+v", merged)
	}
	merged = base.Merge(Policy{WriteHedge: Hedge{MinDelay: 5 * time.Millisecond}})
	if merged.WriteHedge.Percentile != 0.9 || merged.WriteHedge.MinDelay != 5*time.Millisecond || merged.WriteHedge.MaxDelay != time.Second {
		t.Fatalf("write hedge must merge field-wise: %+v", merged)
	}
	if (Policy{WriteHedge: Hedge{Percentile: 0.5}}).IsZero() {
		t.Fatal("write-hedged policy must not report IsZero")
	}
	if (Policy{Placement: Placement{Strategy: PlaceBalanced, CostWeight: 0.5}}).IsZero() {
		t.Fatal("placed policy must not report IsZero")
	}
}

func TestRetryAndBreakerMerge(t *testing.T) {
	base := Policy{Retry: Retry{MaxAttempts: 3, BackoffBase: time.Millisecond}}
	if got := base.Merge(Policy{}); got.Retry != base.Retry {
		t.Fatalf("empty override clobbered retry: %+v", got.Retry)
	}
	override := Policy{Retry: Retry{MaxAttempts: 5}}
	if got := base.Merge(override); got.Retry != override.Retry {
		t.Fatalf("override retry did not replace: %+v", got.Retry)
	}
	if base.Merge(Policy{Breaker: BreakerFailFast}).Breaker != BreakerFailFast {
		t.Fatal("breaker mode override lost")
	}
	ff := Policy{Breaker: BreakerFailFast}
	if ff.Merge(Policy{Breaker: BreakerBypass}).Breaker != BreakerBypass {
		t.Fatal("bypass must override a fail-fast default")
	}
	if ff.Merge(Policy{}).Breaker != BreakerFailFast {
		t.Fatal("unset breaker mode must keep the default")
	}
	if (Policy{Retry: Retry{MaxAttempts: 2}}).IsZero() {
		t.Fatal("retry policy must not report IsZero")
	}
	if (Policy{Breaker: BreakerFailFast}).IsZero() {
		t.Fatal("breaker policy must not report IsZero")
	}
	if !(Retry{}).IsZero() || (Retry{}).Enabled() || !(Retry{MaxAttempts: 2}).Enabled() {
		t.Fatal("Retry zero/enabled predicates wrong")
	}
}

func TestTrackerDecayRestoresSilentClouds(t *testing.T) {
	now := time.Unix(1000, 0)
	tr := NewTracker(2)
	tr.SetNow(func() time.Time { return now })

	// Cloud 0 was measured slow, cloud 1 fast.
	for i := 0; i < 10; i++ {
		tr.Observe(0, GetOp(100), 500*time.Millisecond)
		tr.Observe(1, GetOp(100), 10*time.Millisecond)
	}
	if order := tr.Rank(GetOp(100)); order[0] != 1 {
		t.Fatalf("rank = %v, want fast cloud first", order)
	}
	slow, _ := tr.EWMA(0, GetOp(100))

	// Within the grace period nothing changes.
	now = now.Add(5 * time.Second)
	if d, _ := tr.EWMA(0, GetOp(100)); d != slow {
		t.Fatalf("EWMA decayed within grace: %v -> %v", slow, d)
	}

	// Cloud 0 goes silent (demoted) while cloud 1 keeps serving traffic.
	for i := 0; i < 90; i++ {
		now = now.Add(time.Second)
		tr.Observe(1, GetOp(100), 10*time.Millisecond)
	}
	d0, _ := tr.EWMA(0, GetOp(100))
	d1, _ := tr.EWMA(1, GetOp(100))
	if d0 >= slow {
		t.Fatalf("stale EWMA did not decay: %v", d0)
	}
	if d0 >= d1 {
		t.Fatalf("after sustained silence the stale cloud (%v) should rank below the active one (%v)", d0, d1)
	}
	if order := tr.Rank(GetOp(100)); order[0] != 0 {
		t.Fatalf("rank = %v, want the silent cloud re-promoted for exploration", order)
	}

	// A fresh sample resumes from the true (undecayed) average.
	tr.Observe(0, GetOp(100), 500*time.Millisecond)
	if d, _ := tr.EWMA(0, GetOp(100)); d < 400*time.Millisecond {
		t.Fatalf("fresh sample should restore the true EWMA, got %v", d)
	}
}
