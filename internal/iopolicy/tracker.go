package iopolicy

import (
	"sort"
	"sync"
	"time"
)

// trackerWindow is how many recent samples each cloud's percentile estimate
// is computed over. 64 samples keep the estimate responsive to provider
// weather while smoothing per-request jitter; sorting 64 int64s on demand
// is far cheaper than any RPC the answer gates.
const trackerWindow = 64

// ewmaAlpha weighs the newest sample in the exponentially weighted moving
// average used for ranking clouds.
const ewmaAlpha = 0.2

// series is one cloud's latency history.
type series struct {
	samples [trackerWindow]int64 // nanoseconds, ring buffer
	next    int
	count   int64 // total observations (ring holds min(count, trackerWindow))
	ewma    float64
}

// Tracker records per-cloud RPC latencies and answers the dispatch-time
// questions of hedged reads: how clouds rank by recent latency, and what
// delay corresponds to a latency percentile of a preferred set. It is fed
// by every quorum RPC (reads and writes) and is safe for concurrent use.
//
// Only successful RPCs are recorded: a failing provider answers quickly
// with an error, and recording that would make a broken cloud look fast.
// Failures instead release hedges immediately at the dispatch layer.
type Tracker struct {
	mu     sync.Mutex
	clouds []series
}

// NewTracker creates a tracker for n clouds.
func NewTracker(n int) *Tracker {
	return &Tracker{clouds: make([]series, n)}
}

// Observe records one successful RPC against cloud i taking d.
func (t *Tracker) Observe(i int, d time.Duration) {
	if i < 0 || d < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if i >= len(t.clouds) {
		return
	}
	s := &t.clouds[i]
	ns := float64(d)
	if s.count == 0 {
		s.ewma = ns
	} else {
		s.ewma = ewmaAlpha*ns + (1-ewmaAlpha)*s.ewma
	}
	s.samples[s.next] = int64(d)
	s.next = (s.next + 1) % trackerWindow
	s.count++
}

// EWMA returns cloud i's exponentially weighted moving average latency and
// whether any sample has been observed.
func (t *Tracker) EWMA(i int) (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i < 0 || i >= len(t.clouds) || t.clouds[i].count == 0 {
		return 0, false
	}
	return time.Duration(t.clouds[i].ewma), true
}

// Percentile returns the p-th (0 < p <= 1) latency quantile of cloud i's
// recent samples and whether any sample has been observed.
func (t *Tracker) Percentile(i int, p float64) (time.Duration, bool) {
	if p <= 0 {
		return 0, false
	}
	if p > 1 {
		p = 1
	}
	t.mu.Lock()
	if i < 0 || i >= len(t.clouds) || t.clouds[i].count == 0 {
		t.mu.Unlock()
		return 0, false
	}
	s := &t.clouds[i]
	n := int(s.count)
	if n > trackerWindow {
		n = trackerWindow
	}
	window := make([]int64, n)
	copy(window, s.samples[:n])
	t.mu.Unlock()

	sort.Slice(window, func(a, b int) bool { return window[a] < window[b] })
	idx := int(float64(n)*p+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return time.Duration(window[idx]), true
}

// Rank returns all cloud indices ordered fastest first by EWMA. Clouds with
// no samples yet rank first (optimistically, so they get explored and
// sampled), ties break by index for determinism.
func (t *Tracker) Rank() []int {
	t.mu.Lock()
	ewmas := make([]float64, len(t.clouds))
	for i := range t.clouds {
		if t.clouds[i].count > 0 {
			ewmas[i] = t.clouds[i].ewma
		}
	}
	t.mu.Unlock()

	order := make([]int, len(ewmas))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return ewmas[order[a]] < ewmas[order[b]] })
	return order
}

// DefaultMinDelay is the hedge-delay floor applied when a policy sets no
// MinDelay of its own. A tracked percentile measures the RPC alone; the
// quorum verdict additionally needs scheduling and decoding time, so
// against very fast (same-region, simulated, cached) clouds a raw
// sub-millisecond percentile would fire the hedge before the preferred
// responses can possibly be processed, silently degrading hedged dispatch
// to full fan-out. One millisecond is negligible against any cross-provider
// RTT while keeping near-instant backends honestly hedged.
const DefaultMinDelay = time.Millisecond

// HedgeDelay computes the hedge delay for a fan-out whose preferred set is
// the given cloud indices: the largest of the preferred clouds' h.Percentile
// quantiles, clamped to [max(h.MinDelay, DefaultMinDelay), h.MaxDelay].
// With no samples at all the delay is the floor — a cold tracker hedges
// almost immediately, which is safe: it degrades toward the pre-policy full
// fan-out rather than stalling.
func (t *Tracker) HedgeDelay(h Hedge, preferred []int) time.Duration {
	var d time.Duration
	for _, i := range preferred {
		if q, ok := t.Percentile(i, h.Percentile); ok && q > d {
			d = q
		}
	}
	min := h.MinDelay
	if min <= 0 {
		min = DefaultMinDelay
	}
	if d < min {
		d = min
	}
	if h.MaxDelay > 0 && d > h.MaxDelay {
		d = h.MaxDelay
	}
	return d
}
