package iopolicy

import (
	"math"
	"sort"
	"sync"
	"time"
)

// trackerWindow is how many recent samples each latency series' percentile
// estimate is computed over. 64 samples keep the estimate responsive to
// provider weather while smoothing per-request jitter; sorting 64 int64s on
// demand is far cheaper than any RPC the answer gates.
const trackerWindow = 64

// ewmaAlpha weighs the newest sample in the exponentially weighted moving
// average used for ranking clouds.
const ewmaAlpha = 0.2

// OpClass distinguishes the direction of one cloud RPC. Downloads and
// uploads move through different bottlenecks (egress vs ingress bandwidth,
// read vs write amplification at the provider), so their latency series are
// tracked separately: a hedge delay for a shard upload must not be computed
// from point-GET latencies.
type OpClass int

const (
	// OpGet is a download (metadata, block or chunk fetch).
	OpGet OpClass = iota
	// OpPut is an upload (block, chunk or metadata write).
	OpPut

	opClasses = 2
)

// sizeBuckets is how many payload-size buckets each class is split into: a
// 64-byte metadata object and a 1 MiB shard share a cloud but not a latency
// distribution. Buckets are coarse on purpose — enough to separate "request
// dominated" from "transfer dominated" without starving any series of
// samples.
const sizeBuckets = 3

// sizeBucket buckets a payload size: requests up to 128 KiB are
// RTT-dominated, up to 2 MiB they are mixed (one default chunk and its
// erasure shards land here), beyond that transfer time dominates.
func sizeBucket(bytes int) int {
	switch {
	case bytes <= 128<<10:
		return 0
	case bytes <= 2<<20:
		return 1
	default:
		return 2
	}
}

// Op identifies the latency series one RPC belongs to: its direction and
// payload size. Construct with GetOp/PutOp.
type Op struct {
	Class OpClass
	Bytes int
}

// GetOp is the Op of a download of the given payload size.
func GetOp(bytes int) Op { return Op{Class: OpGet, Bytes: bytes} }

// PutOp is the Op of an upload of the given payload size.
func PutOp(bytes int) Op { return Op{Class: OpPut, Bytes: bytes} }

// Staleness decay: a series that stops receiving samples says less and less
// about the cloud's present. Only successful RPCs are recorded, so a cloud
// that turns slow or broken gets demoted — and then stops producing samples,
// which without decay would freeze its bad EWMA forever ("slow once during
// warmup, ranked slow for the rest of the mount"). After decayGrace of
// silence the read-side EWMA decays toward zero with half-life
// decayHalfLife, which ranks the silent cloud like an unexplored one:
// optimistically early, so it gets probed and re-measured instead of exiled.
const (
	// decayGrace is how long a series stays fully trusted after its last
	// sample. Long enough that ordinary request spacing (and fast-running
	// tests) see no decay at all.
	decayGrace = 10 * time.Second
	// decayHalfLife halves the stale EWMA per interval past the grace
	// period; ~30s of silence discounts a cloud to an eighth of its last
	// known latency, enough to re-enter most preferred sets.
	decayHalfLife = 10 * time.Second
)

// series is one (cloud, class, size-bucket) latency history.
type series struct {
	samples [trackerWindow]int64 // nanoseconds, ring buffer
	next    int
	count   int64 // total observations (ring holds min(count, trackerWindow))
	ewma    float64
	last    int64 // unix nanoseconds of the latest observation
}

func (s *series) observe(d time.Duration, now time.Time) {
	ns := float64(d)
	if s.count == 0 {
		s.ewma = ns
	} else {
		s.ewma = ewmaAlpha*ns + (1-ewmaAlpha)*s.ewma
	}
	s.samples[s.next] = int64(d)
	s.next = (s.next + 1) % trackerWindow
	s.count++
	s.last = now.UnixNano()
}

// decayedEWMA returns the EWMA discounted for staleness as of now. The
// stored value is never mutated — a fresh sample resumes from the true
// average, not the discounted one.
func (s *series) decayedEWMA(now time.Time) float64 {
	idle := now.Sub(time.Unix(0, s.last)) - decayGrace
	if idle <= 0 {
		return s.ewma
	}
	return s.ewma * math.Pow(0.5, float64(idle)/float64(decayHalfLife))
}

// cloudSeries is one cloud's latency histories, one series per (operation
// class, payload-size bucket).
type cloudSeries struct {
	s [opClasses][sizeBuckets]series
}

// lookup returns the series for op, falling back — when that exact series
// has no samples yet — to the nearest populated bucket of the same class,
// then to the other class (same-bucket-first). A cold (class, bucket) pair
// thus borrows the best available signal instead of reporting "unknown"
// until its own traffic arrives; the fallback result is read-only.
func (c *cloudSeries) lookup(op Op) *series {
	class := op.Class
	if class < 0 || class >= opClasses {
		class = OpGet
	}
	b := sizeBucket(op.Bytes)
	for _, cl := range [2]OpClass{class, (class + 1) % opClasses} {
		if s := &c.s[cl][b]; s.count > 0 {
			return s
		}
		for dist := 1; dist < sizeBuckets; dist++ {
			for _, nb := range []int{b - dist, b + dist} {
				if nb >= 0 && nb < sizeBuckets && c.s[cl][nb].count > 0 {
					return &c.s[cl][nb]
				}
			}
		}
	}
	return nil
}

// Tracker records per-cloud RPC latencies and answers the dispatch-time
// questions of hedged reads and writes: how clouds rank by recent latency,
// and what delay corresponds to a latency percentile of a preferred set.
// It is fed by every quorum RPC and is safe for concurrent use.
//
// Latencies are tracked per (cloud, operation class, payload-size bucket):
// GETs and PUTs form separate series, further split by payload size, so the
// hedge delay of a 1 MiB shard upload is computed from comparable uploads
// and not polluted by sub-millisecond metadata GETs (or vice versa).
// Queries for a series with no samples yet fall back to the nearest
// populated series of the same cloud.
//
// Only successful RPCs are recorded: a failing provider answers quickly
// with an error, and recording that would make a broken cloud look fast.
// Failures instead release hedges immediately at the dispatch layer.
type Tracker struct {
	mu     sync.Mutex
	now    func() time.Time
	clouds []cloudSeries
	// obsCount, when set, counts every accepted observation (telemetry). It
	// is a nil-safe *telemetry.Counter kept as a minimal interface to avoid
	// the import.
	obsCount interface{ Inc() }
}

// SetObservationCounter installs a counter incremented on every accepted
// Observe (telemetry: how many samples the ranking and hedge-delay answers
// rest on). Pass nil to remove it.
func (t *Tracker) SetObservationCounter(c interface{ Inc() }) {
	t.mu.Lock()
	t.obsCount = c
	t.mu.Unlock()
}

// NewTracker creates a tracker for n clouds.
func NewTracker(n int) *Tracker {
	return &Tracker{now: time.Now, clouds: make([]cloudSeries, n)}
}

// SetNow replaces the tracker's clock (tests exercising staleness decay).
func (t *Tracker) SetNow(now func() time.Time) {
	t.mu.Lock()
	t.now = now
	t.mu.Unlock()
}

// Observe records one successful RPC of class/size op against cloud i
// taking d.
func (t *Tracker) Observe(i int, op Op, d time.Duration) {
	if i < 0 || d < 0 {
		return
	}
	class := op.Class
	if class < 0 || class >= opClasses {
		class = OpGet
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if i >= len(t.clouds) {
		return
	}
	t.clouds[i].s[class][sizeBucket(op.Bytes)].observe(d, t.now())
	if t.obsCount != nil {
		t.obsCount.Inc()
	}
}

// EWMA returns cloud i's exponentially weighted moving average latency for
// op (with the cold-series fallback, discounted for staleness) and whether
// any sample was available.
func (t *Tracker) EWMA(i int, op Op) (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i < 0 || i >= len(t.clouds) {
		return 0, false
	}
	s := t.clouds[i].lookup(op)
	if s == nil {
		return 0, false
	}
	return time.Duration(s.decayedEWMA(t.now())), true
}

// Percentile returns the p-th (0 < p <= 1) latency quantile of cloud i's
// recent samples for op (with the cold-series fallback) and whether any
// sample was available.
func (t *Tracker) Percentile(i int, op Op, p float64) (time.Duration, bool) {
	if p <= 0 {
		return 0, false
	}
	if p > 1 {
		p = 1
	}
	t.mu.Lock()
	if i < 0 || i >= len(t.clouds) {
		t.mu.Unlock()
		return 0, false
	}
	s := t.clouds[i].lookup(op)
	if s == nil {
		t.mu.Unlock()
		return 0, false
	}
	n := int(s.count)
	if n > trackerWindow {
		n = trackerWindow
	}
	window := make([]int64, n)
	copy(window, s.samples[:n])
	t.mu.Unlock()

	sort.Slice(window, func(a, b int) bool { return window[a] < window[b] })
	idx := int(float64(n)*p+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return time.Duration(window[idx]), true
}

// Rank returns all cloud indices ordered fastest first by the
// staleness-discounted EWMA of op's series. Clouds with no samples yet rank
// first (optimistically, so they get explored and sampled) — and so,
// increasingly, do clouds whose series have gone silent, which is how a
// breaker-recovered cloud re-enters preferred sets. Ties break by index for
// determinism.
func (t *Tracker) Rank(op Op) []int {
	t.mu.Lock()
	now := t.now()
	ewmas := make([]float64, len(t.clouds))
	for i := range t.clouds {
		if s := t.clouds[i].lookup(op); s != nil {
			ewmas[i] = s.decayedEWMA(now)
		}
	}
	t.mu.Unlock()

	order := make([]int, len(ewmas))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return ewmas[order[a]] < ewmas[order[b]] })
	return order
}

// DefaultMinDelay is the hedge-delay floor applied when a policy sets no
// MinDelay of its own. A tracked percentile measures the RPC alone; the
// quorum verdict additionally needs scheduling and decoding time, so
// against very fast (same-region, simulated, cached) clouds a raw
// sub-millisecond percentile would fire the hedge before the preferred
// responses can possibly be processed, silently degrading hedged dispatch
// to full fan-out. One millisecond is negligible against any cross-provider
// RTT while keeping near-instant backends honestly hedged.
const DefaultMinDelay = time.Millisecond

// HedgeDelay computes the hedge delay for a fan-out of op whose preferred
// set is the given cloud indices: the largest of the preferred clouds'
// h.Percentile quantiles, clamped to [max(h.MinDelay, DefaultMinDelay),
// h.MaxDelay]. With no samples at all the delay is the floor — a cold
// tracker hedges almost immediately, which is safe: it degrades toward the
// pre-policy full fan-out rather than stalling.
func (t *Tracker) HedgeDelay(op Op, h Hedge, preferred []int) time.Duration {
	var d time.Duration
	for _, i := range preferred {
		if q, ok := t.Percentile(i, op, h.Percentile); ok && q > d {
			d = q
		}
	}
	min := h.MinDelay
	if min <= 0 {
		min = DefaultMinDelay
	}
	if d < min {
		d = min
	}
	if h.MaxDelay > 0 && d > h.MaxDelay {
		d = h.MaxDelay
	}
	return d
}
