package coord

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"scfs/internal/clock"
	"scfs/internal/depspace"
	"scfs/internal/zkcoord"
)

// backends returns one instance of every coordination backend under test,
// each bound to the principal "alice".
var bg = context.Background()

func backends(t *testing.T) map[string]Service {
	t.Helper()
	ds := NewDepSpaceService(depspace.NewClient(&depspace.LocalInvoker{Space: depspace.NewSpace()}, "alice", nil))
	zk, err := NewZKService(bg, zkcoord.NewClient(&zkcoord.LocalInvoker{Tree: zkcoord.NewTree()}, "alice", nil))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Service{"depspace": ds, "zookeeper": zk}
}

func TestMetadataCRUDAllBackends(t *testing.T) {
	for name, svc := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := svc.GetMetadata(bg, "/f"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("missing key err = %v, want ErrNotFound", err)
			}
			v1, err := svc.PutMetadata(bg, "/f", []byte("meta-v1"), ACL{Owner: "alice"})
			if err != nil {
				t.Fatal(err)
			}
			rec, err := svc.GetMetadata(bg, "/f")
			if err != nil {
				t.Fatal(err)
			}
			if string(rec.Value) != "meta-v1" || rec.Version != v1 {
				t.Fatalf("rec = %+v, want value meta-v1 version %d", rec, v1)
			}
			v2, err := svc.PutMetadata(bg, "/f", []byte("meta-v2"), ACL{Owner: "alice"})
			if err != nil {
				t.Fatal(err)
			}
			if v2 <= v1 {
				t.Fatalf("version did not advance: %d -> %d", v1, v2)
			}
			if err := svc.DeleteMetadata(bg, "/f"); err != nil {
				t.Fatal(err)
			}
			if _, err := svc.GetMetadata(bg, "/f"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("after delete err = %v, want ErrNotFound", err)
			}
			if err := svc.DeleteMetadata(bg, "/f"); err != nil {
				t.Fatalf("deleting a missing record must be a no-op, got %v", err)
			}
		})
	}
}

func TestCasMetadataAllBackends(t *testing.T) {
	for name, svc := range backends(t) {
		t.Run(name, func(t *testing.T) {
			// Create-if-absent.
			v, err := svc.CasMetadata(bg, "/f", []byte("first"), 0, ACL{Owner: "alice"})
			if err != nil {
				t.Fatal(err)
			}
			// A second create-if-absent must conflict.
			if _, err := svc.CasMetadata(bg, "/f", []byte("second"), 0, ACL{Owner: "alice"}); !errors.Is(err, ErrConflict) {
				t.Fatalf("err = %v, want ErrConflict", err)
			}
			// Conditional update with correct version succeeds.
			v2, err := svc.CasMetadata(bg, "/f", []byte("third"), v, ACL{Owner: "alice"})
			if err != nil {
				t.Fatal(err)
			}
			// Stale version conflicts.
			if _, err := svc.CasMetadata(bg, "/f", []byte("fourth"), v, ACL{Owner: "alice"}); !errors.Is(err, ErrConflict) {
				t.Fatalf("stale cas err = %v, want ErrConflict", err)
			}
			rec, err := svc.GetMetadata(bg, "/f")
			if err != nil {
				t.Fatal(err)
			}
			if string(rec.Value) != "third" || rec.Version != v2 {
				t.Fatalf("rec = %+v", rec)
			}
		})
	}
}

func TestListMetadataAllBackends(t *testing.T) {
	for name, svc := range backends(t) {
		t.Run(name, func(t *testing.T) {
			keys := []string{"/docs/a", "/docs/b", "/pics/c"}
			for _, k := range keys {
				if _, err := svc.PutMetadata(bg, k, []byte(k), ACL{Owner: "alice"}); err != nil {
					t.Fatal(err)
				}
			}
			recs, err := svc.ListMetadata(bg, "/docs/")
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 2 {
				t.Fatalf("ListMetadata(/docs/) returned %d records, want 2", len(recs))
			}
			all, err := svc.ListMetadata(bg, "/")
			if err != nil {
				t.Fatal(err)
			}
			if len(all) != 3 {
				t.Fatalf("ListMetadata(/) returned %d records, want 3", len(all))
			}
		})
	}
}

func TestRenamePrefixAllBackends(t *testing.T) {
	for name, svc := range backends(t) {
		t.Run(name, func(t *testing.T) {
			for _, k := range []string{"/dir/a", "/dir/sub/b", "/dirx/c"} {
				if _, err := svc.PutMetadata(bg, k, []byte(k), ACL{Owner: "alice"}); err != nil {
					t.Fatal(err)
				}
			}
			n, err := svc.RenamePrefix(bg, "/dir", "/renamed")
			if err != nil {
				t.Fatal(err)
			}
			if n != 2 {
				t.Fatalf("renamed %d records, want 2", n)
			}
			if _, err := svc.GetMetadata(bg, "/renamed/a"); err != nil {
				t.Fatalf("renamed record missing: %v", err)
			}
			if _, err := svc.GetMetadata(bg, "/dirx/c"); err != nil {
				t.Fatalf("sibling with similar prefix must be untouched: %v", err)
			}
			if _, err := svc.GetMetadata(bg, "/dir/a"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("old key still present: %v", err)
			}
		})
	}
}

func TestLockingAllBackends(t *testing.T) {
	for name, svc := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if err := svc.TryLock(bg, "/f", "agent-a", time.Minute); err != nil {
				t.Fatal(err)
			}
			// A different owner must be rejected.
			if err := svc.TryLock(bg, "/f", "agent-b", time.Minute); !errors.Is(err, ErrLockHeld) {
				t.Fatalf("second owner err = %v, want ErrLockHeld", err)
			}
			// Re-entrant acquisition by the holder renews the lock.
			if err := svc.TryLock(bg, "/f", "agent-a", time.Minute); err != nil {
				t.Fatalf("re-entrant lock err = %v", err)
			}
			// Unlock by a non-holder must not release it.
			if err := svc.Unlock(bg, "/f", "agent-b"); err == nil {
				if err2 := svc.TryLock(bg, "/f", "agent-b", time.Minute); !errors.Is(err2, ErrLockHeld) {
					t.Fatal("non-holder unlock released the lock")
				}
			}
			// Holder releases; other agent can now lock.
			if err := svc.Unlock(bg, "/f", "agent-a"); err != nil {
				t.Fatal(err)
			}
			if err := svc.TryLock(bg, "/f", "agent-b", time.Minute); err != nil {
				t.Fatalf("after release err = %v", err)
			}
			// Unlocking a never-held lock is a no-op.
			if err := svc.Unlock(bg, "/never", "agent-a"); err != nil {
				t.Fatalf("unlock of unknown lock err = %v", err)
			}
		})
	}
}

func TestEphemeralLockExpiresAfterCrash(t *testing.T) {
	// A crashed SCFS agent must not hold its locks forever (§2.5.1): the
	// ephemeral tuple expires after its TTL and another agent can lock.
	clk := clock.NewSim(time.Unix(0, 0))
	space := depspace.NewSpace()
	crashed := NewDepSpaceService(depspace.NewClient(&depspace.LocalInvoker{Space: space}, "crashed", clk))
	survivor := NewDepSpaceService(depspace.NewClient(&depspace.LocalInvoker{Space: space}, "survivor", clk))

	if err := crashed.TryLock(bg, "/f", "crashed-agent", 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := survivor.TryLock(bg, "/f", "survivor-agent", 30*time.Second); !errors.Is(err, ErrLockHeld) {
		t.Fatalf("err = %v, want ErrLockHeld", err)
	}
	// The crashed agent never unlocks; time passes beyond the TTL.
	clk.Advance(31 * time.Second)
	if err := survivor.TryLock(bg, "/f", "survivor-agent", 30*time.Second); err != nil {
		t.Fatalf("lock not acquirable after holder crash: %v", err)
	}
}

func TestDepSpaceACLEnforcedThroughService(t *testing.T) {
	space := depspace.NewSpace()
	alice := NewDepSpaceService(depspace.NewClient(&depspace.LocalInvoker{Space: space}, "alice", nil))
	bob := NewDepSpaceService(depspace.NewClient(&depspace.LocalInvoker{Space: space}, "bob", nil))

	if _, err := alice.PutMetadata(bg, "/private", []byte("x"), ACL{Owner: "alice"}); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.GetMetadata(bg, "/private"); !errors.Is(err, ErrDenied) {
		t.Fatalf("bob read err = %v, want ErrDenied", err)
	}
	if _, err := alice.PutMetadata(bg, "/shared", []byte("y"), ACL{Owner: "alice", Readers: []string{"bob"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.GetMetadata(bg, "/shared"); err != nil {
		t.Fatalf("bob read of shared record: %v", err)
	}
}

func TestStatsCountAccesses(t *testing.T) {
	svc := NewDepSpaceService(depspace.NewClient(&depspace.LocalInvoker{Space: depspace.NewSpace()}, "alice", nil))
	if _, err := svc.PutMetadata(bg, "/f", []byte("v"), ACL{}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.GetMetadata(bg, "/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.ListMetadata(bg, "/"); err != nil {
		t.Fatal(err)
	}
	if err := svc.TryLock(bg, "/f", "a", time.Minute); err != nil {
		t.Fatal(err)
	}
	s := svc.Stats()
	if s.MetadataReads != 1 || s.MetadataWrites != 1 || s.MetadataLists != 1 || s.LockOps != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Total() != 4 {
		t.Fatalf("Total = %d, want 4", s.Total())
	}
}

func TestWithLatencyChargesEveryAccess(t *testing.T) {
	clk := clock.NewSim(time.Unix(0, 0))
	inner := NewDepSpaceService(depspace.NewClient(&depspace.LocalInvoker{Space: depspace.NewSpace()}, "alice", clk))
	svc := WithLatency(inner, LatencyOptions{MinRTT: 80 * time.Millisecond, MaxRTT: 80 * time.Millisecond, Clock: clk})

	done := make(chan error, 1)
	go func() {
		_, err := svc.PutMetadata(bg, "/f", []byte("v"), ACL{})
		done <- err
	}()
	// The call must be parked on the simulated clock.
	deadline := time.Now().Add(5 * time.Second)
	for clk.Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("latency wrapper did not sleep")
		}
		time.Sleep(100 * time.Microsecond)
	}
	select {
	case <-done:
		t.Fatal("call completed before latency elapsed")
	default:
	}
	clk.Advance(100 * time.Millisecond)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Stats pass through the wrapper.
	if svc.Stats().MetadataWrites != 1 {
		t.Fatalf("stats through wrapper = %+v", svc.Stats())
	}
}

func TestLatencyProfilesAreSane(t *testing.T) {
	aws := DefaultAWSLatency()
	coc := DefaultCoCLatency()
	if aws.MinRTT < 50*time.Millisecond || aws.MaxRTT > 150*time.Millisecond {
		t.Fatalf("AWS latency profile out of the paper's 60-100ms band: %+v", aws)
	}
	if coc.MinRTT < aws.MinRTT {
		t.Fatalf("CoC coordination latency should not be below AWS: %+v vs %+v", coc, aws)
	}
}

func TestConcurrentLockersSingleWinner(t *testing.T) {
	svc := NewDepSpaceService(depspace.NewClient(&depspace.LocalInvoker{Space: depspace.NewSpace()}, "agent", nil))
	const contenders = 16
	winners := make(chan int, contenders)
	doneCh := make(chan struct{})
	for i := 0; i < contenders; i++ {
		go func(i int) {
			if err := svc.TryLock(bg, "/f", fmt.Sprintf("agent-%d", i), time.Minute); err == nil {
				winners <- i
			}
			doneCh <- struct{}{}
		}(i)
	}
	for i := 0; i < contenders; i++ {
		<-doneCh
	}
	close(winners)
	count := 0
	for range winners {
		count++
	}
	if count != 1 {
		t.Fatalf("%d agents acquired the lock, want exactly 1", count)
	}
}
