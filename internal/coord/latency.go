package coord

import (
	"math/rand"
	"sync"
	"time"

	"scfs/internal/clock"
)

// LatencyOptions describes the network path between an SCFS agent and the
// coordination service. The paper measures 60–100 ms per coordination-service
// access for the cloud-hosted deployments; the non-sharing mode pays nothing
// because it never contacts the service.
type LatencyOptions struct {
	// MinRTT and MaxRTT bound the per-access latency (uniformly sampled).
	MinRTT time.Duration
	MaxRTT time.Duration
	// Scale multiplies the sampled latency (0 means 1.0), mirroring the
	// cloudsim latency scale so whole experiments shrink uniformly.
	Scale float64
	// Clock defaults to the real clock.
	Clock clock.Clock
	// Seed seeds the sampler.
	Seed int64
}

// DefaultAWSLatency models the single-EC2-instance DepSpace deployment.
func DefaultAWSLatency() LatencyOptions {
	return LatencyOptions{MinRTT: 60 * time.Millisecond, MaxRTT: 80 * time.Millisecond}
}

// DefaultCoCLatency models the four-cloud replicated DepSpace deployment,
// whose client-observed latency is slightly higher because the BFT protocol
// needs a quorum of geographically spread replicas.
func DefaultCoCLatency() LatencyOptions {
	return LatencyOptions{MinRTT: 70 * time.Millisecond, MaxRTT: 100 * time.Millisecond}
}

// latencyService wraps a Service and sleeps for a sampled network round trip
// before every call.
type latencyService struct {
	inner Service
	opts  LatencyOptions
	clk   clock.Clock

	mu  sync.Mutex
	rng *rand.Rand
}

// WithLatency returns a Service identical to inner but charging the given
// access latency on every operation.
func WithLatency(inner Service, opts LatencyOptions) Service {
	if opts.Clock == nil {
		opts.Clock = clock.Real()
	}
	if opts.Scale == 0 {
		opts.Scale = 1.0
	}
	return &latencyService{
		inner: inner,
		opts:  opts,
		clk:   opts.Clock,
		rng:   rand.New(rand.NewSource(opts.Seed)),
	}
}

func (l *latencyService) sleep() {
	min, max := l.opts.MinRTT, l.opts.MaxRTT
	if max < min {
		max = min
	}
	var d time.Duration
	l.mu.Lock()
	if max > min {
		d = min + time.Duration(l.rng.Int63n(int64(max-min)))
	} else {
		d = min
	}
	l.mu.Unlock()
	d = time.Duration(float64(d) * l.opts.Scale)
	if d > 0 {
		l.clk.Sleep(d)
	}
}

func (l *latencyService) GetMetadata(key string) (Record, error) {
	l.sleep()
	return l.inner.GetMetadata(key)
}

func (l *latencyService) PutMetadata(key string, value []byte, acl ACL) (uint64, error) {
	l.sleep()
	return l.inner.PutMetadata(key, value, acl)
}

func (l *latencyService) CasMetadata(key string, value []byte, expectedVersion uint64, acl ACL) (uint64, error) {
	l.sleep()
	return l.inner.CasMetadata(key, value, expectedVersion, acl)
}

func (l *latencyService) DeleteMetadata(key string) error {
	l.sleep()
	return l.inner.DeleteMetadata(key)
}

func (l *latencyService) ListMetadata(prefix string) ([]Record, error) {
	l.sleep()
	return l.inner.ListMetadata(prefix)
}

func (l *latencyService) RenamePrefix(oldPrefix, newPrefix string) (int, error) {
	l.sleep()
	return l.inner.RenamePrefix(oldPrefix, newPrefix)
}

func (l *latencyService) TryLock(name, owner string, ttl time.Duration) error {
	l.sleep()
	return l.inner.TryLock(name, owner, ttl)
}

func (l *latencyService) Unlock(name, owner string) error {
	l.sleep()
	return l.inner.Unlock(name, owner)
}

func (l *latencyService) Stats() Stats { return l.inner.Stats() }
