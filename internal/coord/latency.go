package coord

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"scfs/internal/clock"
)

// LatencyOptions describes the network path between an SCFS agent and the
// coordination service. The paper measures 60–100 ms per coordination-service
// access for the cloud-hosted deployments; the non-sharing mode pays nothing
// because it never contacts the service.
type LatencyOptions struct {
	// MinRTT and MaxRTT bound the per-access latency (uniformly sampled).
	MinRTT time.Duration
	MaxRTT time.Duration
	// Scale multiplies the sampled latency (0 means 1.0), mirroring the
	// cloudsim latency scale so whole experiments shrink uniformly.
	Scale float64
	// Clock defaults to the real clock.
	Clock clock.Clock
	// Seed seeds the sampler.
	Seed int64
}

// DefaultAWSLatency models the single-EC2-instance DepSpace deployment.
func DefaultAWSLatency() LatencyOptions {
	return LatencyOptions{MinRTT: 60 * time.Millisecond, MaxRTT: 80 * time.Millisecond}
}

// DefaultCoCLatency models the four-cloud replicated DepSpace deployment,
// whose client-observed latency is slightly higher because the BFT protocol
// needs a quorum of geographically spread replicas.
func DefaultCoCLatency() LatencyOptions {
	return LatencyOptions{MinRTT: 70 * time.Millisecond, MaxRTT: 100 * time.Millisecond}
}

// latencyService wraps a Service and sleeps for a sampled network round trip
// before every call.
type latencyService struct {
	inner Service
	opts  LatencyOptions
	clk   clock.Clock

	mu  sync.Mutex
	rng *rand.Rand
}

// WithLatency returns a Service identical to inner but charging the given
// access latency on every operation.
func WithLatency(inner Service, opts LatencyOptions) Service {
	if opts.Clock == nil {
		opts.Clock = clock.Real()
	}
	if opts.Scale == 0 {
		opts.Scale = 1.0
	}
	return &latencyService{
		inner: inner,
		opts:  opts,
		clk:   opts.Clock,
		rng:   rand.New(rand.NewSource(opts.Seed)),
	}
}

// sleep charges one sampled network round trip, returning early with
// ctx.Err() when the caller cancels mid-flight.
func (l *latencyService) sleep(ctx context.Context) error {
	min, max := l.opts.MinRTT, l.opts.MaxRTT
	if max < min {
		max = min
	}
	var d time.Duration
	l.mu.Lock()
	if max > min {
		d = min + time.Duration(l.rng.Int63n(int64(max-min)))
	} else {
		d = min
	}
	l.mu.Unlock()
	d = time.Duration(float64(d) * l.opts.Scale)
	return clock.SleepCtx(ctx, l.clk, d)
}

func (l *latencyService) GetMetadata(ctx context.Context, key string) (Record, error) {
	if err := l.sleep(ctx); err != nil {
		return Record{}, err
	}
	return l.inner.GetMetadata(ctx, key)
}

func (l *latencyService) PutMetadata(ctx context.Context, key string, value []byte, acl ACL) (uint64, error) {
	if err := l.sleep(ctx); err != nil {
		return 0, err
	}
	return l.inner.PutMetadata(ctx, key, value, acl)
}

func (l *latencyService) CasMetadata(ctx context.Context, key string, value []byte, expectedVersion uint64, acl ACL) (uint64, error) {
	if err := l.sleep(ctx); err != nil {
		return 0, err
	}
	return l.inner.CasMetadata(ctx, key, value, expectedVersion, acl)
}

func (l *latencyService) DeleteMetadata(ctx context.Context, key string) error {
	if err := l.sleep(ctx); err != nil {
		return err
	}
	return l.inner.DeleteMetadata(ctx, key)
}

func (l *latencyService) ListMetadata(ctx context.Context, prefix string) ([]Record, error) {
	if err := l.sleep(ctx); err != nil {
		return nil, err
	}
	return l.inner.ListMetadata(ctx, prefix)
}

func (l *latencyService) RenamePrefix(ctx context.Context, oldPrefix, newPrefix string) (int, error) {
	if err := l.sleep(ctx); err != nil {
		return 0, err
	}
	return l.inner.RenamePrefix(ctx, oldPrefix, newPrefix)
}

func (l *latencyService) TryLock(ctx context.Context, name, owner string, ttl time.Duration) error {
	if err := l.sleep(ctx); err != nil {
		return err
	}
	return l.inner.TryLock(ctx, name, owner, ttl)
}

func (l *latencyService) Unlock(ctx context.Context, name, owner string) error {
	if err := l.sleep(ctx); err != nil {
		return err
	}
	return l.inner.Unlock(ctx, name, owner)
}

func (l *latencyService) Stats() Stats { return l.inner.Stats() }

// Backend forwards the wrapped backend's telemetry label.
func (l *latencyService) Backend() string { return BackendName(l.inner) }
