package coord

import (
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"strings"
	"time"

	"scfs/internal/depspace"
)

// Tuple layout used in the DepSpace backend. Metadata tuples are
// <"meta", key, payload>; lock tuples are <"lock", name, owner>.
const (
	tagMeta = "meta"
	tagLock = "lock"
)

// DepSpaceService adapts a DepSpace tuple-space client to the coordination
// Service interface. This is the configuration evaluated in the paper
// (DepSpace replicated with BFT-SMaRt).
type DepSpaceService struct {
	cli *depspace.Client
	statsCounter
}

var _ Service = (*DepSpaceService)(nil)

// NewDepSpaceService wraps a tuple-space client.
func NewDepSpaceService(cli *depspace.Client) *DepSpaceService {
	return &DepSpaceService{cli: cli}
}

func dsACL(a ACL) depspace.ACL {
	return depspace.ACL{Owner: a.Owner, Readers: a.Readers, Writers: a.Writers}
}

func fromDSACL(a depspace.ACL) ACL {
	return ACL{Owner: a.Owner, Readers: a.Readers, Writers: a.Writers}
}

func encodePayload(v []byte) string { return base64.StdEncoding.EncodeToString(v) }

func decodePayload(s string) ([]byte, error) { return base64.StdEncoding.DecodeString(s) }

func mapDepSpaceError(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, depspace.ErrNotFound):
		return ErrNotFound
	case errors.Is(err, depspace.ErrExists), errors.Is(err, depspace.ErrVersion):
		return ErrConflict
	case errors.Is(err, depspace.ErrDenied):
		return ErrDenied
	default:
		return err
	}
}

// GetMetadata implements Service.
func (d *DepSpaceService) GetMetadata(ctx context.Context, key string) (Record, error) {
	d.addRead()
	e, err := d.cli.Rdp(ctx, depspace.Tuple{tagMeta, key, depspace.Wildcard})
	if err != nil {
		return Record{}, mapDepSpaceError(err)
	}
	val, err := decodePayload(e.Tuple[2])
	if err != nil {
		return Record{}, fmt.Errorf("coord: corrupt metadata payload for %q: %w", key, err)
	}
	return Record{Key: key, Value: val, Version: e.Version, ACL: fromDSACL(e.ACL)}, nil
}

// PutMetadata implements Service.
func (d *DepSpaceService) PutMetadata(ctx context.Context, key string, value []byte, acl ACL) (uint64, error) {
	d.addWrite()
	v, err := d.cli.Replace(ctx,
		depspace.Tuple{tagMeta, key, depspace.Wildcard},
		depspace.Tuple{tagMeta, key, encodePayload(value)},
		dsACL(acl))
	return v, mapDepSpaceError(err)
}

// CasMetadata implements Service.
func (d *DepSpaceService) CasMetadata(ctx context.Context, key string, value []byte, expectedVersion uint64, acl ACL) (uint64, error) {
	d.addWrite()
	v, _, err := d.cli.Cas(ctx,
		depspace.Tuple{tagMeta, key, depspace.Wildcard},
		depspace.Tuple{tagMeta, key, encodePayload(value)},
		expectedVersion, dsACL(acl), 0)
	return v, mapDepSpaceError(err)
}

// DeleteMetadata implements Service.
func (d *DepSpaceService) DeleteMetadata(ctx context.Context, key string) error {
	d.addWrite()
	_, err := d.cli.Inp(ctx, depspace.Tuple{tagMeta, key, depspace.Wildcard})
	if errors.Is(err, depspace.ErrNotFound) {
		return nil
	}
	return mapDepSpaceError(err)
}

// ListMetadata implements Service.
func (d *DepSpaceService) ListMetadata(ctx context.Context, prefix string) ([]Record, error) {
	d.addList()
	entries, err := d.cli.RdAll(ctx, depspace.Tuple{tagMeta, depspace.Wildcard, depspace.Wildcard})
	if err != nil {
		return nil, mapDepSpaceError(err)
	}
	var out []Record
	for _, e := range entries {
		key := e.Tuple[1]
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		val, err := decodePayload(e.Tuple[2])
		if err != nil {
			continue
		}
		out = append(out, Record{Key: key, Value: val, Version: e.Version, ACL: fromDSACL(e.ACL)})
	}
	return out, nil
}

// RenamePrefix implements Service using the DepSpace trigger extension.
func (d *DepSpaceService) RenamePrefix(ctx context.Context, oldPrefix, newPrefix string) (int, error) {
	d.addWrite()
	n, err := d.cli.Rename(ctx, 1, oldPrefix, newPrefix)
	return n, mapDepSpaceError(err)
}

// TryLock implements Service: a conditional insertion of an ephemeral tuple.
func (d *DepSpaceService) TryLock(ctx context.Context, name, owner string, ttl time.Duration) error {
	d.addLock()
	_, existing, err := d.cli.Cas(ctx,
		depspace.Tuple{tagLock, name, depspace.Wildcard},
		depspace.Tuple{tagLock, name, owner},
		0, depspace.ACL{}, ttl)
	if err == nil {
		return nil
	}
	if errors.Is(err, depspace.ErrExists) {
		if existing != nil && len(existing.Tuple) == 3 && existing.Tuple[2] == owner {
			// Re-entrant acquisition by the same owner: renew the lease.
			d.addLock()
			if _, _, casErr := d.cli.Cas(ctx,
				depspace.Tuple{tagLock, name, owner},
				depspace.Tuple{tagLock, name, owner},
				existing.Version, depspace.ACL{}, ttl); casErr == nil {
				return nil
			}
		}
		return ErrLockHeld
	}
	return mapDepSpaceError(err)
}

// Unlock implements Service.
func (d *DepSpaceService) Unlock(ctx context.Context, name, owner string) error {
	d.addLock()
	_, err := d.cli.Inp(ctx, depspace.Tuple{tagLock, name, owner})
	if errors.Is(err, depspace.ErrNotFound) {
		return nil // already released or expired
	}
	return mapDepSpaceError(err)
}
