package coord

import (
	"context"
	"time"

	"scfs/internal/telemetry"
)

// backendNamer is implemented by coordination services that can name their
// backend for telemetry labels.
type backendNamer interface {
	Backend() string
}

// Backend implements backendNamer for the DepSpace adapter.
func (d *DepSpaceService) Backend() string { return "depspace" }

// Backend implements backendNamer for the znode adapter.
func (z *ZKService) Backend() string { return "zk" }

// BackendName returns a stable telemetry label for a coordination service:
// the service's own Backend() when it has one, "custom" otherwise.
func BackendName(s Service) string {
	if n, ok := s.(backendNamer); ok {
		return n.Backend()
	}
	return "custom"
}

// instrumented counts every coordination access into a telemetry registry as
// coord_ops_total{backend,op} counters, one per operation class. The
// instruments are resolved once at construction; the per-call cost is one
// atomic add.
type instrumented struct {
	inner   Service
	backend string

	get, put, cas, del *telemetry.Counter
	list, rename       *telemetry.Counter
	trylock, unlock    *telemetry.Counter
}

var _ Service = (*instrumented)(nil)

// Instrument wraps a coordination service so every access increments
// coord_ops_total{backend,op} in reg. A nil registry returns s unchanged.
// The wrapper forwards Stats (the paper's §4 access counters) untouched:
// the registry counters are the exported view of the same traffic, labeled
// by backend and operation.
func Instrument(s Service, reg *telemetry.Registry) Service {
	if reg == nil || s == nil {
		return s
	}
	b := BackendName(s)
	c := func(op string) *telemetry.Counter {
		return reg.Counter(telemetry.Name("coord_ops_total", "backend", b, "op", op))
	}
	return &instrumented{
		inner: s, backend: b,
		get: c("get"), put: c("put"), cas: c("cas"), del: c("delete"),
		list: c("list"), rename: c("rename"),
		trylock: c("trylock"), unlock: c("unlock"),
	}
}

// Backend implements backendNamer, preserving the label across wrapping.
func (i *instrumented) Backend() string { return i.backend }

// GetMetadata implements Service.
func (i *instrumented) GetMetadata(ctx context.Context, key string) (Record, error) {
	i.get.Inc()
	return i.inner.GetMetadata(ctx, key)
}

// PutMetadata implements Service.
func (i *instrumented) PutMetadata(ctx context.Context, key string, value []byte, acl ACL) (uint64, error) {
	i.put.Inc()
	return i.inner.PutMetadata(ctx, key, value, acl)
}

// CasMetadata implements Service.
func (i *instrumented) CasMetadata(ctx context.Context, key string, value []byte, expectedVersion uint64, acl ACL) (uint64, error) {
	i.cas.Inc()
	return i.inner.CasMetadata(ctx, key, value, expectedVersion, acl)
}

// DeleteMetadata implements Service.
func (i *instrumented) DeleteMetadata(ctx context.Context, key string) error {
	i.del.Inc()
	return i.inner.DeleteMetadata(ctx, key)
}

// ListMetadata implements Service.
func (i *instrumented) ListMetadata(ctx context.Context, prefix string) ([]Record, error) {
	i.list.Inc()
	return i.inner.ListMetadata(ctx, prefix)
}

// RenamePrefix implements Service.
func (i *instrumented) RenamePrefix(ctx context.Context, oldPrefix, newPrefix string) (int, error) {
	i.rename.Inc()
	return i.inner.RenamePrefix(ctx, oldPrefix, newPrefix)
}

// TryLock implements Service.
func (i *instrumented) TryLock(ctx context.Context, name, owner string, ttl time.Duration) error {
	i.trylock.Inc()
	return i.inner.TryLock(ctx, name, owner, ttl)
}

// Unlock implements Service.
func (i *instrumented) Unlock(ctx context.Context, name, owner string) error {
	i.unlock.Inc()
	return i.inner.Unlock(ctx, name, owner)
}

// Stats implements Service.
func (i *instrumented) Stats() Stats { return i.inner.Stats() }
