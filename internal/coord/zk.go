package coord

import (
	"context"
	"errors"
	"net/url"
	"strings"
	"time"

	"scfs/internal/zkcoord"
)

// Znode layout used by the Zookeeper-like backend.
const (
	zkMetaRoot = "/scfs/meta"
	zkLockRoot = "/scfs/locks"
)

// ZKService adapts the Zookeeper-like coordination service to the Service
// interface. ACLs are not enforced by this backend (as with plain Zookeeper
// deployments that rely on network perimeter security); the DepSpace backend
// is the one providing the paper's full security model.
type ZKService struct {
	cli *zkcoord.Client
	statsCounter
}

var _ Service = (*ZKService)(nil)

// NewZKService wraps a znode client and creates the SCFS root znodes.
func NewZKService(ctx context.Context, cli *zkcoord.Client) (*ZKService, error) {
	s := &ZKService{cli: cli}
	for _, p := range []string{"/scfs", zkMetaRoot, zkLockRoot} {
		if _, err := cli.Create(ctx, p, nil); err != nil && !errors.Is(err, zkcoord.ErrExists) {
			return nil, err
		}
	}
	return s, nil
}

// encodeKey flattens an SCFS key (a slash-separated path) into a single znode
// name so the metadata table stays one level deep.
func encodeKey(key string) string { return url.PathEscape(key) }

func decodeKey(name string) string {
	k, err := url.PathUnescape(name)
	if err != nil {
		return name
	}
	return k
}

func mapZKError(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, zkcoord.ErrNotFound):
		return ErrNotFound
	case errors.Is(err, zkcoord.ErrExists), errors.Is(err, zkcoord.ErrVersion):
		return ErrConflict
	default:
		return err
	}
}

// GetMetadata implements Service.
func (z *ZKService) GetMetadata(ctx context.Context, key string) (Record, error) {
	z.addRead()
	data, st, err := z.cli.Get(ctx, zkMetaRoot+"/"+encodeKey(key))
	if err != nil {
		return Record{}, mapZKError(err)
	}
	return Record{Key: key, Value: data, Version: st.Version}, nil
}

// PutMetadata implements Service.
func (z *ZKService) PutMetadata(ctx context.Context, key string, value []byte, acl ACL) (uint64, error) {
	z.addWrite()
	p := zkMetaRoot + "/" + encodeKey(key)
	if _, err := z.cli.Create(ctx, p, value); err == nil {
		return 1, nil
	} else if !errors.Is(err, zkcoord.ErrExists) {
		return 0, mapZKError(err)
	}
	st, err := z.cli.Set(ctx, p, value, zkcoord.AnyVersion)
	if err != nil {
		return 0, mapZKError(err)
	}
	return st.Version, nil
}

// CasMetadata implements Service.
func (z *ZKService) CasMetadata(ctx context.Context, key string, value []byte, expectedVersion uint64, acl ACL) (uint64, error) {
	z.addWrite()
	p := zkMetaRoot + "/" + encodeKey(key)
	if expectedVersion == 0 {
		if _, err := z.cli.Create(ctx, p, value); err != nil {
			return 0, mapZKError(err)
		}
		return 1, nil
	}
	st, err := z.cli.Set(ctx, p, value, int64(expectedVersion))
	if err != nil {
		return 0, mapZKError(err)
	}
	return st.Version, nil
}

// DeleteMetadata implements Service.
func (z *ZKService) DeleteMetadata(ctx context.Context, key string) error {
	z.addWrite()
	err := z.cli.Delete(ctx, zkMetaRoot+"/"+encodeKey(key), zkcoord.AnyVersion)
	if errors.Is(err, zkcoord.ErrNotFound) {
		return nil
	}
	return mapZKError(err)
}

// ListMetadata implements Service.
func (z *ZKService) ListMetadata(ctx context.Context, prefix string) ([]Record, error) {
	z.addList()
	names, err := z.cli.Children(ctx, zkMetaRoot)
	if err != nil {
		return nil, mapZKError(err)
	}
	var out []Record
	for _, name := range names {
		key := decodeKey(name)
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		data, st, err := z.cli.Get(ctx, zkMetaRoot+"/"+name)
		if err != nil {
			continue
		}
		out = append(out, Record{Key: key, Value: data, Version: st.Version})
	}
	return out, nil
}

// RenamePrefix implements Service. The znode backend has no server-side
// trigger, so the rewrite is performed record by record (the reason the paper
// added triggers to DepSpace).
func (z *ZKService) RenamePrefix(ctx context.Context, oldPrefix, newPrefix string) (int, error) {
	records, err := z.ListMetadata(ctx, oldPrefix)
	if err != nil {
		return 0, err
	}
	count := 0
	for _, r := range records {
		if r.Key != oldPrefix && !strings.HasPrefix(r.Key, oldPrefix+"/") {
			continue
		}
		newKey := newPrefix + strings.TrimPrefix(r.Key, oldPrefix)
		if _, err := z.PutMetadata(ctx, newKey, r.Value, r.ACL); err != nil {
			return count, err
		}
		if err := z.DeleteMetadata(ctx, r.Key); err != nil {
			return count, err
		}
		count++
	}
	return count, nil
}

// TryLock implements Service with an ephemeral znode per lock.
func (z *ZKService) TryLock(ctx context.Context, name, owner string, ttl time.Duration) error {
	z.addLock()
	prevTTL := z.cli.SessionTTL
	z.cli.SessionTTL = ttl
	defer func() { z.cli.SessionTTL = prevTTL }()
	p := zkLockRoot + "/" + encodeKey(name)
	if _, err := z.cli.CreateEphemeral(ctx, p, []byte(owner)); err == nil {
		return nil
	} else if !errors.Is(err, zkcoord.ErrExists) {
		return mapZKError(err)
	}
	data, _, err := z.cli.Get(ctx, p)
	if err == nil && string(data) == owner {
		// Same owner: renew by touching the node.
		if _, err := z.cli.Set(ctx, p, data, zkcoord.AnyVersion); err == nil {
			return nil
		}
	}
	return ErrLockHeld
}

// Unlock implements Service.
func (z *ZKService) Unlock(ctx context.Context, name, owner string) error {
	z.addLock()
	p := zkLockRoot + "/" + encodeKey(name)
	data, _, err := z.cli.Get(ctx, p)
	if errors.Is(err, zkcoord.ErrNotFound) {
		return nil
	}
	if err != nil {
		return mapZKError(err)
	}
	if string(data) != owner {
		return ErrLockHeld
	}
	if err := z.cli.Delete(ctx, p, zkcoord.AnyVersion); err != nil && !errors.Is(err, zkcoord.ErrNotFound) {
		return mapZKError(err)
	}
	return nil
}
