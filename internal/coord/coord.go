// Package coord defines the coordination-service facade used by the SCFS
// agent ("modular coordination" in the paper): a small, strongly consistent
// metadata table with conditional updates, plus an ephemeral lock service.
// Two backends are provided — the DepSpace tuple space (internal/depspace)
// and the Zookeeper-like znode tree (internal/zkcoord) — along with wrappers
// that add the client-to-coordination-service network latency and count
// accesses (the dominant cost of metadata-intensive workloads in §4).
package coord

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ACL controls who may read or overwrite a metadata record. The coordination
// service enforces it; the SCFS agent is not trusted to (§2.6).
type ACL struct {
	Owner   string
	Readers []string
	Writers []string
}

// Record is one stored metadata entry. ACL is the access policy stored with
// the record, populated by backends that enforce ACLs (DepSpace); backends
// without server-side ACLs (the znode backend) leave it zero. Carrying it in
// reads lets record-by-record moves — the sharded router's cross-shard
// RenamePrefix — re-store each record under its original policy instead of
// silently widening access.
type Record struct {
	Key     string
	Value   []byte
	Version uint64
	ACL     ACL
}

// Sentinel errors shared by all coordination backends.
var (
	// ErrNotFound means no record (or lock) with that key exists.
	ErrNotFound = errors.New("coord: not found")
	// ErrConflict means a conditional update lost a race (version mismatch
	// or concurrent creation).
	ErrConflict = errors.New("coord: conflict")
	// ErrDenied means the backend's access control rejected the operation.
	ErrDenied = errors.New("coord: access denied")
	// ErrLockHeld means the lock is currently owned by another client.
	ErrLockHeld = errors.New("coord: lock held by another client")
)

// Stats counts coordination-service accesses, the quantity that dominates the
// latency of metadata-intensive SCFS workloads.
type Stats struct {
	MetadataReads  int64
	MetadataWrites int64
	MetadataLists  int64
	LockOps        int64
}

// Total returns the total number of accesses.
func (s Stats) Total() int64 {
	return s.MetadataReads + s.MetadataWrites + s.MetadataLists + s.LockOps
}

// Service is the coordination-service interface consumed by the SCFS agent.
// Implementations must be safe for concurrent use. Every RPC takes a
// context: cancelling it abandons the request promptly with ctx.Err() (the
// request may still execute at the service, exactly as a request whose reply
// was lost would).
type Service interface {
	// GetMetadata returns the record stored under key.
	GetMetadata(ctx context.Context, key string) (Record, error)
	// PutMetadata unconditionally replaces (or creates) the record under
	// key, returning the new version.
	PutMetadata(ctx context.Context, key string, value []byte, acl ACL) (uint64, error)
	// CasMetadata replaces the record only if its current version matches
	// expectedVersion (0 = the record must not exist). On conflict it
	// returns ErrConflict.
	CasMetadata(ctx context.Context, key string, value []byte, expectedVersion uint64, acl ACL) (uint64, error)
	// DeleteMetadata removes the record under key (no error if absent).
	DeleteMetadata(ctx context.Context, key string) error
	// ListMetadata returns all records whose key starts with prefix and
	// which the caller may read.
	ListMetadata(ctx context.Context, prefix string) ([]Record, error)
	// RenamePrefix atomically rewrites oldPrefix to newPrefix in the keys of
	// matching records and returns how many were rewritten.
	RenamePrefix(ctx context.Context, oldPrefix, newPrefix string) (int, error)

	// TryLock acquires the named ephemeral lock for owner with the given
	// TTL. It returns ErrLockHeld when another owner holds it. Re-acquiring
	// a lock already held by the same owner renews it.
	TryLock(ctx context.Context, name, owner string, ttl time.Duration) error
	// Unlock releases the named lock if held by owner.
	Unlock(ctx context.Context, name, owner string) error

	// Stats returns a snapshot of the access counters.
	Stats() Stats
}

// statsCounter provides the shared Stats implementation for backends.
type statsCounter struct {
	mu sync.Mutex
	s  Stats
}

func (c *statsCounter) addRead()  { c.mu.Lock(); c.s.MetadataReads++; c.mu.Unlock() }
func (c *statsCounter) addWrite() { c.mu.Lock(); c.s.MetadataWrites++; c.mu.Unlock() }
func (c *statsCounter) addList()  { c.mu.Lock(); c.s.MetadataLists++; c.mu.Unlock() }
func (c *statsCounter) addLock()  { c.mu.Lock(); c.s.LockOps++; c.mu.Unlock() }

func (c *statsCounter) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s
}
