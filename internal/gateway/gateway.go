// Package gateway serves many tenants over one SCFS mount through HTTP —
// the "serving" half of the scale-out metadata plane. The paper's agent is a
// per-user FUSE mount; at service scale one agent (one cache, one
// coordination pipeline) is instead shared by many tenants, each confined to
// its own namespace root, each with its own in-flight request cap and its own
// telemetry instruments.
//
// Files are served through the mount's io/fs adapter, so range requests,
// If-Modified-Since and directory listings come from net/http's file server
// while every byte still flows through the SCFS cache and cloud-of-clouds
// quorum stack. A request's context bounds its reads: a tenant disconnecting
// cancels its transfers without disturbing other tenants.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"strings"
	"time"

	"scfs/internal/telemetry"
)

// Mount is the slice of the scfs mount facade the gateway consumes
// (*scfs.FS implements it). Taking the interface keeps this package
// import-cycle-free with the facade.
type Mount interface {
	IOFS(ctx context.Context) fs.FS
}

// DefaultMaxInflight is the per-tenant concurrent request cap used when a
// Tenant does not set its own.
const DefaultMaxInflight = 64

// Tenant is one namespace served by the gateway.
type Tenant struct {
	// Name is the tenant identifier and the first path segment of the
	// tenant's URLs: GET /{name}/{path} serves {Root}/{path}.
	Name string
	// Root is the io/fs-rooted directory the tenant is confined to
	// ("docs/public"; empty or "." serves the whole mount).
	Root string
	// MaxInflight caps the tenant's concurrently served requests; excess
	// requests are rejected with 429 rather than queued, so one tenant's
	// burst cannot monopolize the shared agent (0 = DefaultMaxInflight).
	MaxInflight int
}

// tenantState is a Tenant plus its runtime artifacts: the admission
// semaphore and the telemetry instruments, resolved once at construction.
// Error responses are split by cause: errCanceled counts 5xx responses
// whose request context was already dead (the client hung up mid-read —
// not the backend's fault), errBackend the genuine backend failures.
type tenantState struct {
	cfg         Tenant
	sem         chan struct{}
	requests    *telemetry.Counter
	rejected    *telemetry.Counter
	errCanceled *telemetry.Counter
	errBackend  *telemetry.Counter
	inflight    *telemetry.Gauge
	latency     *telemetry.Histogram
}

// Gateway is an http.Handler multiplexing tenants over one mount.
type Gateway struct {
	mnt     Mount
	reg     *telemetry.Registry
	tracer  *telemetry.Tracer
	tenants map[string]*tenantState
}

// Option configures a Gateway.
type Option func(*Gateway)

// WithTelemetry records per-tenant instruments into reg:
// gateway_requests_total{tenant}, gateway_rejected_total{tenant},
// gateway_errors_total{tenant,cause} (cause="canceled" for client
// disconnects, "backend" for genuine failures), gateway_inflight{tenant}
// and gateway_latency_ns{tenant}.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(g *Gateway) { g.reg = reg }
}

// WithTracer gives the gateway a request tracer: every admitted request
// starts (or, with an incoming W3C traceparent header, joins) a trace that
// the mount's layers fill with smr, shard-routing and per-cloud RPC spans,
// and the response carries the trace's ID in an X-SCFS-Trace header so a
// tenant can quote the exact trace its slow request produced.
func WithTracer(tr *telemetry.Tracer) Option {
	return func(g *Gateway) { g.tracer = tr }
}

// errBackendFailure is the operation-level error recorded on the trace of
// a 5xx response the backend caused (file server errors surface as status
// codes, not error values).
var errBackendFailure = errors.New("gateway: backend failure")

// New builds a gateway serving the given tenants over mnt.
func New(mnt Mount, tenants []Tenant, opts ...Option) (*Gateway, error) {
	if mnt == nil {
		return nil, errors.New("gateway: nil mount")
	}
	if len(tenants) == 0 {
		return nil, errors.New("gateway: at least one tenant is required")
	}
	g := &Gateway{mnt: mnt, tenants: make(map[string]*tenantState, len(tenants))}
	for _, o := range opts {
		o(g)
	}
	for _, t := range tenants {
		if t.Name == "" || strings.ContainsAny(t.Name, "/\\") {
			return nil, fmt.Errorf("gateway: invalid tenant name %q", t.Name)
		}
		if _, dup := g.tenants[t.Name]; dup {
			return nil, fmt.Errorf("gateway: duplicate tenant %q", t.Name)
		}
		n := t.MaxInflight
		if n <= 0 {
			n = DefaultMaxInflight
		}
		g.tenants[t.Name] = &tenantState{
			cfg:         t,
			sem:         make(chan struct{}, n),
			requests:    g.reg.Counter(telemetry.Name("gateway_requests_total", "tenant", t.Name)),
			rejected:    g.reg.Counter(telemetry.Name("gateway_rejected_total", "tenant", t.Name)),
			errCanceled: g.reg.Counter(telemetry.Name("gateway_errors_total", "tenant", t.Name, "cause", "canceled")),
			errBackend:  g.reg.Counter(telemetry.Name("gateway_errors_total", "tenant", t.Name, "cause", "backend")),
			inflight:    g.reg.Gauge(telemetry.Name("gateway_inflight", "tenant", t.Name)),
			latency:     g.reg.Histogram(telemetry.Name("gateway_latency_ns", "tenant", t.Name)),
		}
	}
	return g, nil
}

// ServeHTTP implements http.Handler: GET/HEAD /{tenant}/{path}.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	name, rest, ok := splitTenantPath(r.URL.Path)
	t := g.tenants[name]
	if t == nil {
		http.NotFound(w, r)
		return
	}
	if !ok {
		// "/{tenant}" without the trailing slash: canonicalize so the file
		// server's relative directory links work.
		http.Redirect(w, r, "/"+name+"/", http.StatusMovedPermanently)
		return
	}

	// Admission: reject over-cap rather than queue, so a runaway tenant
	// degrades itself, not the shared mount.
	select {
	case t.sem <- struct{}{}:
	default:
		t.rejected.Inc()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "tenant request cap exceeded", http.StatusTooManyRequests)
		return
	}
	defer func() { <-t.sem }()

	t.requests.Inc()
	t.inflight.Add(1)
	defer t.inflight.Add(-1)
	start := time.Now()

	// One trace per admitted request, joining the caller's distributed
	// trace when the request carries a W3C traceparent header; the mount's
	// layers (smr invocations, shard routing, per-cloud RPCs) fill it
	// through the request context. The ID goes back in a response header
	// (set now: headers cannot follow the first body byte).
	op := "http.get"
	if r.Method == http.MethodHead {
		op = "http.head"
	}
	tid, _ := telemetry.ParseTraceparent(r.Header.Get("traceparent"))
	ctx, trace := g.tracer.StartID(r.Context(), op, r.URL.Path, tid)
	if trace != nil {
		w.Header().Set("X-SCFS-Trace", trace.ID.String())
	}
	defer func() { t.latency.ObserveExemplar(time.Since(start), trace.ExemplarID()) }()
	defer trace.Finish()

	fsys := g.mnt.IOFS(ctx)
	if root := t.cfg.Root; root != "" && root != "." {
		sub, err := fs.Sub(fsys, root)
		if err != nil {
			t.errBackend.Inc()
			trace.SetError(err)
			http.Error(w, "tenant root unavailable", http.StatusInternalServerError)
			return
		}
		fsys = sub
	}

	// Strip the tenant segment and let net/http do the heavy lifting:
	// http.FS exposes the adapter's io.Seeker/io.ReaderAt files, which is
	// what makes Range requests and 206 responses work.
	r2 := r.Clone(ctx)
	r2.URL.Path = "/" + rest
	sw := &statusWriter{ResponseWriter: w}
	http.FileServer(http.FS(fsys)).ServeHTTP(sw, r2)
	if sw.status >= 500 {
		// Split the error cause: a request whose own context died mid-serve
		// is the client disconnecting, not a backend failure — alerting on
		// the two together pages operators for tenants' flaky networks.
		if cerr := r.Context().Err(); cerr != nil {
			t.errCanceled.Inc()
			trace.SetError(cerr)
		} else {
			t.errBackend.Inc()
			trace.SetError(errBackendFailure)
		}
	}
	if trace != nil {
		outc := telemetry.SpanOK
		if sw.status >= 500 {
			outc = telemetry.SpanError
		}
		trace.Record(telemetry.Span{
			Name:    op,
			Target:  t.cfg.Name,
			Start:   start,
			Dur:     time.Since(start),
			Outcome: outc,
		})
	}
}

// splitTenantPath splits "/tenant/rest" into ("tenant", "rest", true);
// "/tenant" (no slash) returns ok=false so the caller can redirect.
func splitTenantPath(p string) (tenant, rest string, ok bool) {
	p = strings.TrimPrefix(p, "/")
	if i := strings.IndexByte(p, '/'); i >= 0 {
		return p[:i], p[i+1:], true
	}
	return p, "", false
}

// statusWriter records the response status for error accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (s *statusWriter) WriteHeader(code int) {
	s.status = code
	s.ResponseWriter.WriteHeader(code)
}
