package gateway_test

import (
	"context"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"scfs"
	"scfs/internal/cloudsim"
	"scfs/internal/gateway"
	"scfs/internal/telemetry"
)

var bg = context.Background()

func newMount(t *testing.T, opts ...scfs.Option) *scfs.FS {
	t.Helper()
	stores := make([]scfs.ObjectStore, 4)
	for i := range stores {
		p := cloudsim.NewProvider(cloudsim.Options{Name: fmt.Sprintf("c%d", i)})
		stores[i] = p.MustClient(p.CreateAccount("user"))
	}
	m, err := scfs.New(bg, append([]scfs.Option{scfs.WithClouds(stores...)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := m.Close(bg); err != nil {
			t.Errorf("unmount: %v", err)
		}
	})
	return m
}

func seed(t *testing.T, m *scfs.FS) {
	t.Helper()
	for _, dir := range []string{"/ta", "/tb"} {
		if err := m.Mkdir(bg, dir); err != nil {
			t.Fatal(err)
		}
	}
	if err := scfs.WriteFile(bg, m, "/ta/hello.txt", []byte("hello from tenant a")); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 64<<10)
	for i := range big {
		big[i] = byte(i % 251)
	}
	if err := scfs.WriteFile(bg, m, "/ta/big.bin", big); err != nil {
		t.Fatal(err)
	}
	if err := scfs.WriteFile(bg, m, "/tb/secret.txt", []byte("tenant b only")); err != nil {
		t.Fatal(err)
	}
}

func newGateway(t *testing.T, m gateway.Mount, reg *telemetry.Registry) *httptest.Server {
	t.Helper()
	g, err := gateway.New(m, []gateway.Tenant{
		{Name: "alice", Root: "ta"},
		{Name: "bob", Root: "tb"},
	}, gateway.WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g)
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string, hdr ...string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestServesTenantFiles(t *testing.T) {
	m := newMount(t)
	seed(t, m)
	srv := newGateway(t, m, nil)

	resp, body := get(t, srv.URL+"/alice/hello.txt")
	if resp.StatusCode != http.StatusOK || string(body) != "hello from tenant a" {
		t.Fatalf("GET /alice/hello.txt = %d %q", resp.StatusCode, body)
	}
	resp, body = get(t, srv.URL+"/bob/secret.txt")
	if resp.StatusCode != http.StatusOK || string(body) != "tenant b only" {
		t.Fatalf("GET /bob/secret.txt = %d %q", resp.StatusCode, body)
	}
	// Directory listings work too (the io/fs adapter serves ReadDirFile).
	if resp, body = get(t, srv.URL+"/alice/"); resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "hello.txt") {
		t.Fatalf("GET /alice/ = %d, body %.200q", resp.StatusCode, body)
	}
}

func TestRangeReads(t *testing.T) {
	m := newMount(t)
	seed(t, m)
	srv := newGateway(t, m, nil)

	resp, body := get(t, srv.URL+"/alice/big.bin", "Range", "bytes=1000-1999")
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("range GET status = %d, want 206", resp.StatusCode)
	}
	if len(body) != 1000 {
		t.Fatalf("range GET returned %d bytes, want 1000", len(body))
	}
	for i, b := range body {
		if b != byte((1000+i)%251) {
			t.Fatalf("range byte %d = %d, want %d", i, b, byte((1000+i)%251))
		}
	}
	if cr := resp.Header.Get("Content-Range"); !strings.HasPrefix(cr, "bytes 1000-1999/") {
		t.Fatalf("Content-Range = %q", cr)
	}
}

func TestTenantIsolation(t *testing.T) {
	m := newMount(t)
	seed(t, m)
	srv := newGateway(t, m, nil)

	// Alice cannot see bob's root, by name or by traversal.
	for _, path := range []string{"/alice/secret.txt", "/alice/../tb/secret.txt", "/alice/..%2f..%2ftb%2fsecret.txt"} {
		resp, body := get(t, srv.URL+path)
		if resp.StatusCode == http.StatusOK && strings.Contains(string(body), "tenant b only") {
			t.Fatalf("GET %s leaked tenant b data", path)
		}
	}
	// Unknown tenant is a 404, not a fallthrough to the mount root.
	if resp, _ := get(t, srv.URL+"/mallory/hello.txt"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant status = %d, want 404", resp.StatusCode)
	}
	// Bare tenant path redirects to the canonical directory URL.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/alice", nil)
	noRedirect := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse }}
	resp, err := noRedirect.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMovedPermanently || resp.Header.Get("Location") != "/alice/" {
		t.Fatalf("GET /alice = %d, Location %q", resp.StatusCode, resp.Header.Get("Location"))
	}
	// Writes are not accepted.
	postResp, err := http.Post(srv.URL+"/alice/hello.txt", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	postResp.Body.Close()
	if postResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d, want 405", postResp.StatusCode)
	}
}

// blockingMount is a Mount whose files block until released, to make the
// per-tenant cap observable.
type blockingMount struct {
	gate chan struct{}
}

type blockingFS struct{ gate chan struct{} }

type blockingFile struct{ gate chan struct{} }

func (m *blockingMount) IOFS(ctx context.Context) fs.FS { return &blockingFS{gate: m.gate} }

func (f *blockingFS) Open(name string) (fs.File, error) {
	return &blockingFile{gate: f.gate}, nil
}

func (f *blockingFile) Stat() (fs.FileInfo, error) { return blockInfo{}, nil }
func (f *blockingFile) Read(p []byte) (int, error) { <-f.gate; return 0, io.EOF }
func (f *blockingFile) Close() error               { return nil }

type blockInfo struct{}

func (blockInfo) Name() string       { return "slow.bin" }
func (blockInfo) Size() int64        { return 1 }
func (blockInfo) Mode() fs.FileMode  { return 0o444 }
func (blockInfo) ModTime() time.Time { return time.Time{} }
func (blockInfo) IsDir() bool        { return false }
func (blockInfo) Sys() any           { return nil }

func TestPerTenantRequestCap(t *testing.T) {
	reg := telemetry.NewRegistry()
	bm := &blockingMount{gate: make(chan struct{})}
	g, err := gateway.New(bm, []gateway.Tenant{
		{Name: "capped", MaxInflight: 2},
		{Name: "other", MaxInflight: 2},
	}, gateway.WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g)
	defer srv.Close()

	// Fill capped's window with 2 requests parked in Read.
	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			resp, err := http.Get(srv.URL + "/capped/slow.bin")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	waitInflight := func(tenant string, want int64) {
		t.Helper()
		deadline := time.After(5 * time.Second)
		for {
			s := reg.Snapshot()
			if s.Gauges[`gateway_inflight{tenant="`+tenant+`"}`] == want {
				return
			}
			select {
			case <-deadline:
				t.Fatalf("tenant %s never reached %d in-flight; gauges: %v", tenant, want, s.Gauges)
			case <-time.After(5 * time.Millisecond):
			}
		}
	}
	waitInflight("capped", 2)

	// The third capped request is rejected immediately...
	resp, _ := get(t, srv.URL+"/capped/slow.bin")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap status = %d, want 429", resp.StatusCode)
	}
	// ...while the other tenant is admitted (parked, not rejected).
	otherDone := make(chan struct{})
	go func() {
		defer close(otherDone)
		resp, err := http.Get(srv.URL + "/other/slow.bin")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	waitInflight("other", 1)

	close(bm.gate)
	<-done
	<-done
	<-otherDone

	s := reg.Snapshot()
	if n := s.Counters[`gateway_rejected_total{tenant="capped"}`]; n != 1 {
		t.Fatalf("rejected counter = %d, want 1; counters: %v", n, s.Counters)
	}
	if n := s.Counters[`gateway_requests_total{tenant="capped"}`]; n != 2 {
		t.Fatalf("requests counter = %d, want 2 (rejections are not requests)", n)
	}
	if n := s.Counters[`gateway_requests_total{tenant="other"}`]; n != 1 {
		t.Fatalf("other tenant requests = %d, want 1", n)
	}
}

func TestPerTenantTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := newMount(t)
	seed(t, m)
	srv := newGateway(t, m, reg)

	for i := 0; i < 3; i++ {
		if resp, _ := get(t, srv.URL+"/alice/hello.txt"); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %d failed: %d", i, resp.StatusCode)
		}
	}
	if resp, _ := get(t, srv.URL+"/bob/secret.txt"); resp.StatusCode != http.StatusOK {
		t.Fatal("bob GET failed")
	}
	s := reg.Snapshot()
	if n := s.Counters[`gateway_requests_total{tenant="alice"}`]; n != 3 {
		t.Fatalf("alice requests = %d, want 3", n)
	}
	if n := s.Counters[`gateway_requests_total{tenant="bob"}`]; n != 1 {
		t.Fatalf("bob requests = %d, want 1", n)
	}
	h, ok := s.Histograms[`gateway_latency_ns{tenant="alice"}`]
	if !ok || h.Count != 3 {
		t.Fatalf("alice latency histogram missing or wrong count: %+v", h)
	}
}

func TestNewValidation(t *testing.T) {
	m := &blockingMount{gate: make(chan struct{})}
	if _, err := gateway.New(nil, []gateway.Tenant{{Name: "a"}}); err == nil {
		t.Fatal("nil mount accepted")
	}
	if _, err := gateway.New(m, nil); err == nil {
		t.Fatal("empty tenant list accepted")
	}
	if _, err := gateway.New(m, []gateway.Tenant{{Name: "a/b"}}); err == nil {
		t.Fatal("slash in tenant name accepted")
	}
	if _, err := gateway.New(m, []gateway.Tenant{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Fatal("duplicate tenant accepted")
	}
}
