package cache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"scfs/internal/clock"
)

func TestMemoryPutGet(t *testing.T) {
	m := NewMemory(1 << 20)
	if _, ok := m.Get("missing"); ok {
		t.Fatal("Get on empty cache returned a value")
	}
	m.Put("a", []byte("value-a"))
	got, ok := m.Get("a")
	if !ok || string(got) != "value-a" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	// Replacing updates the value and the accounting.
	m.Put("a", []byte("longer value a"))
	got, _ = m.Get("a")
	if string(got) != "longer value a" {
		t.Fatalf("Get after replace = %q", got)
	}
	if m.Used() != int64(len("longer value a")) {
		t.Fatalf("Used = %d", m.Used())
	}
	hits, misses := m.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
}

func TestMemoryReturnsCopies(t *testing.T) {
	m := NewMemory(1 << 20)
	orig := []byte("original")
	m.Put("k", orig)
	orig[0] = 'X' // mutating the caller's slice must not affect the cache
	got, _ := m.Get("k")
	if string(got) != "original" {
		t.Fatal("cache shares the caller's buffer")
	}
	got[1] = 'Y' // mutating the returned slice must not affect the cache
	got2, _ := m.Get("k")
	if string(got2) != "original" {
		t.Fatal("cache returned a shared buffer")
	}
}

func TestMemoryEvictsLRU(t *testing.T) {
	m := NewMemory(100)
	var evicted []string
	m.OnEvict = func(key string, value []byte) { evicted = append(evicted, key) }
	m.Put("a", make([]byte, 40))
	m.Put("b", make([]byte, 40))
	// Touch "a" so "b" becomes the LRU entry.
	if _, ok := m.Get("a"); !ok {
		t.Fatal("a missing")
	}
	m.Put("c", make([]byte, 40)) // exceeds 100 bytes, evicts b
	if _, ok := m.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := m.Get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted = %v", evicted)
	}
}

func TestMemoryOversizedValueNotCached(t *testing.T) {
	m := NewMemory(10)
	m.Put("huge", make([]byte, 100))
	if _, ok := m.Get("huge"); ok {
		t.Fatal("value larger than capacity should not be cached")
	}
	if m.Used() != 0 {
		t.Fatalf("Used = %d, want 0", m.Used())
	}
}

func TestMemoryRemove(t *testing.T) {
	m := NewMemory(1 << 10)
	m.Put("k", []byte("v"))
	m.Remove("k")
	if _, ok := m.Get("k"); ok {
		t.Fatal("entry still present after Remove")
	}
	if m.Len() != 0 || m.Used() != 0 {
		t.Fatalf("Len=%d Used=%d after remove", m.Len(), m.Used())
	}
	m.Remove("never") // removing a missing key is a no-op
}

func TestMemoryPropertyNeverExceedsCapacity(t *testing.T) {
	f := func(ops []uint16) bool {
		m := NewMemory(1000)
		for i, op := range ops {
			key := fmt.Sprintf("k%d", int(op)%20)
			m.Put(key, make([]byte, int(op)%300))
			if i%3 == 0 {
				m.Get(key)
			}
			if m.Used() > 1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDiskPutGetPersistence(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 1000)
	if err := d.Put("fid/hash1", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Get("fid/hash1")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatal("disk cache round trip failed")
	}
	// A new Disk over the same directory sees the entry (long-term cache).
	d2, err := NewDisk(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d2.Get("fid/hash1"); !ok {
		t.Fatal("entry lost after re-opening the disk cache")
	}
	if d2.Used() == 0 || d2.Len() != 1 {
		t.Fatalf("rescan accounting: used=%d len=%d", d2.Used(), d2.Len())
	}
}

// TestDiskRestartKeyRoundTrip pins down the key-encoding regression: keys
// that only differ in characters a lossy sanitizer would collapse ('/', '\',
// ':') must stay distinct across a restart, and rehydrated entries must be
// retrievable under their exact original keys.
func TestDiskRestartKeyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// All of these collapse to the same name under the old replacer.
	keys := []string{"a/b-c", "a\\b-c", "a_b-c", "a/b:c", "a_b_c", "f-123@sha:0/1"}
	for i, k := range keys {
		if err := d.Put(k, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// A legacy entry from the old lossy sanitizer (not valid base64): the
	// rescan must purge it instead of leaving it untracked on disk forever.
	legacy := filepath.Join(dir, "a_b-c!")
	if err := os.WriteFile(legacy, []byte("orphan"), 0o644); err != nil {
		t.Fatal(err)
	}
	reopened, err := NewDisk(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != len(keys) {
		t.Fatalf("reopened cache tracks %d entries, want %d (colliding keys?)", reopened.Len(), len(keys))
	}
	if _, err := os.Stat(legacy); !os.IsNotExist(err) {
		t.Fatalf("legacy undecodable file not purged on rescan (stat err = %v)", err)
	}
	for i, k := range keys {
		got, ok := reopened.Get(k)
		if !ok {
			t.Fatalf("key %q lost across restart", k)
		}
		if len(got) != 1 || got[0] != byte(i) {
			t.Fatalf("key %q returned another entry's value %v", k, got)
		}
	}
	// Remove must delete the on-disk file so yet another restart agrees.
	reopened.Remove(keys[0])
	final, err := NewDisk(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := final.Get(keys[0]); ok {
		t.Fatal("removed entry resurrected after restart")
	}
	if final.Len() != len(keys)-1 {
		t.Fatalf("final cache tracks %d entries, want %d", final.Len(), len(keys)-1)
	}
}

func TestDiskEvictionRespectsBudget(t *testing.T) {
	d, err := NewDisk(t.TempDir(), 2500)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := d.Put(fmt.Sprintf("f%d", i), make([]byte, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	if d.Used() > 2500 {
		t.Fatalf("disk cache over budget: %d", d.Used())
	}
	if d.Len() > 2 {
		t.Fatalf("too many entries kept: %d", d.Len())
	}
	// The most recently inserted file must still be there.
	if _, ok := d.Get("f4"); !ok {
		t.Fatal("most recent entry evicted")
	}
}

func TestDiskRemoveAndMissingGet(t *testing.T) {
	d, err := NewDisk(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("nope"); ok {
		t.Fatal("missing entry reported present")
	}
	if err := d.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("k"); !ok {
		t.Fatal("entry missing right after Put")
	}
	d.Remove("k")
	if _, ok := d.Get("k"); ok {
		t.Fatal("entry present after Remove")
	}
	hits, misses := d.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
}

func TestDiskOversizedSkipped(t *testing.T) {
	d, err := NewDisk(t.TempDir(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("big", make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatal("oversized entry stored")
	}
}

func TestMetadataCacheExpiry(t *testing.T) {
	clk := clock.NewSim(time.Unix(0, 0))
	c := NewMetadata(500*time.Millisecond, clk)
	if c.TTL() != 500*time.Millisecond {
		t.Fatal("TTL accessor broken")
	}
	c.Put("/f", []byte("meta"))
	if got, ok := c.Get("/f"); !ok || string(got) != "meta" {
		t.Fatal("fresh entry missing")
	}
	clk.Advance(400 * time.Millisecond)
	if _, ok := c.Get("/f"); !ok {
		t.Fatal("entry expired too early")
	}
	clk.Advance(200 * time.Millisecond)
	if _, ok := c.Get("/f"); ok {
		t.Fatal("entry survived past its TTL")
	}
}

func TestMetadataCacheZeroTTLDisables(t *testing.T) {
	c := NewMetadata(0, clock.Real())
	c.Put("/f", []byte("meta"))
	if _, ok := c.Get("/f"); ok {
		t.Fatal("zero-TTL cache returned a value")
	}
	_, misses := c.Stats()
	if misses != 1 {
		t.Fatalf("misses = %d", misses)
	}
}

func TestMetadataCacheInvalidate(t *testing.T) {
	clk := clock.NewSim(time.Unix(0, 0))
	c := NewMetadata(time.Minute, clk)
	c.Put("/a", []byte("1"))
	c.Put("/b", []byte("2"))
	c.Invalidate("/a")
	if _, ok := c.Get("/a"); ok {
		t.Fatal("/a survived Invalidate")
	}
	if _, ok := c.Get("/b"); !ok {
		t.Fatal("/b lost by Invalidate of /a")
	}
	c.InvalidateAll()
	if _, ok := c.Get("/b"); ok {
		t.Fatal("/b survived InvalidateAll")
	}
}

func TestMetadataCacheReturnsCopies(t *testing.T) {
	c := NewMetadata(time.Minute, clock.Real())
	c.Put("/f", []byte("orig"))
	got, _ := c.Get("/f")
	got[0] = 'X'
	got2, _ := c.Get("/f")
	if string(got2) != "orig" {
		t.Fatal("metadata cache shares buffers")
	}
}
