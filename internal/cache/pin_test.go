package cache

import (
	"bytes"
	"fmt"
	"io"
	"testing"
)

// TestDiskPinBlocksEviction: pinned entries survive budget pressure that
// evicts everything else; after Unpin they become evictable again.
func TestDiskPinBlocksEviction(t *testing.T) {
	d, err := NewDisk(t.TempDir(), 3000)
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{0x5A}, 1000)
	if err := d.Put("keep", val); err != nil {
		t.Fatal(err)
	}
	if !d.Pin("keep") {
		t.Fatal("Pin of a present key returned false")
	}
	if d.Pin("absent") {
		t.Fatal("Pin of an absent key returned true")
	}
	// Pressure: push the cache well past its budget.
	for i := 0; i < 6; i++ {
		if err := d.Put(fmt.Sprintf("filler-%d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	if got, ok := d.Get("keep"); !ok || !bytes.Equal(got, val) {
		t.Fatal("pinned entry was evicted under pressure")
	}
	d.Unpin("keep")
	// More pressure; now "keep" is fair game. Touch the fillers so the
	// unpinned key is the LRU victim.
	for i := 0; i < 6; i++ {
		if err := d.Put(fmt.Sprintf("filler2-%d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := d.Get("keep"); ok {
		t.Fatal("unpinned entry survived eviction pressure that should have reclaimed it")
	}
}

// TestDiskOpenStreams: Open returns a file-backed reader with the entry's
// size, suitable for streaming a spilled upload without loading it.
func TestDiskOpenStreams(t *testing.T) {
	d, err := NewDisk(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("stream me "), 1000)
	if err := d.Put("k", val); err != nil {
		t.Fatal(err)
	}
	f, size, ok := d.Open("k")
	if !ok {
		t.Fatal("Open missed a present entry")
	}
	defer f.Close()
	if size != int64(len(val)) {
		t.Fatalf("Open size = %d, want %d", size, len(val))
	}
	got, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val) {
		t.Fatal("Open streamed wrong bytes")
	}
	if _, _, ok := d.Open("missing"); ok {
		t.Fatal("Open of a missing key reported success")
	}
}
