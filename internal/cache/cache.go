// Package cache implements the three caches of the SCFS agent (§2.5.1):
//
//   - a main-memory LRU cache holding the contents of open files (hundreds of
//     MBs in the paper),
//   - a local-disk LRU cache acting as a large, long-term cache of whole
//     files (GBs), validated against the coordination service before use, and
//   - a short-lived metadata cache (hundreds of milliseconds) that absorbs
//     the bursts of metadata calls applications issue around a single
//     high-level action.
package cache

import (
	"container/list"
	"encoding/base64"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"scfs/internal/clock"
)

// --- memory LRU ---

// Memory is a byte-budgeted LRU cache from string keys to byte slices. The
// zero value is not usable; use NewMemory.
type Memory struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	order    *list.List // front = most recently used
	items    map[string]*list.Element
	// OnEvict, if set, is called (without the lock held) with each evicted
	// entry; the SCFS agent uses it to push evicted open files to the disk
	// cache.
	OnEvict func(key string, value []byte)

	hits, misses int64
}

type memEntry struct {
	key   string
	value []byte
}

// NewMemory creates a memory cache bounded to capacity bytes.
func NewMemory(capacity int64) *Memory {
	if capacity <= 0 {
		capacity = 1
	}
	return &Memory{capacity: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached value and whether it was present.
func (m *Memory) Get(key string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.items[key]
	if !ok {
		m.misses++
		return nil, false
	}
	m.hits++
	m.order.MoveToFront(el)
	val := el.Value.(*memEntry).value
	out := make([]byte, len(val))
	copy(out, val)
	return out, true
}

// Put inserts or replaces the value under key, evicting least recently used
// entries as needed to stay within the byte budget. Values larger than the
// whole budget are not cached.
func (m *Memory) Put(key string, value []byte) {
	var evicted []memEntry
	m.mu.Lock()
	if el, ok := m.items[key]; ok {
		old := el.Value.(*memEntry)
		m.used -= int64(len(old.value))
		m.order.Remove(el)
		delete(m.items, key)
		_ = old
	}
	if int64(len(value)) <= m.capacity {
		val := make([]byte, len(value))
		copy(val, value)
		el := m.order.PushFront(&memEntry{key: key, value: val})
		m.items[key] = el
		m.used += int64(len(val))
	}
	for m.used > m.capacity {
		back := m.order.Back()
		if back == nil {
			break
		}
		entry := back.Value.(*memEntry)
		m.order.Remove(back)
		delete(m.items, entry.key)
		m.used -= int64(len(entry.value))
		evicted = append(evicted, *entry)
	}
	onEvict := m.OnEvict
	m.mu.Unlock()
	if onEvict != nil {
		for _, e := range evicted {
			onEvict(e.key, e.value)
		}
	}
}

// Remove drops the entry under key if present.
func (m *Memory) Remove(key string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.items[key]; ok {
		entry := el.Value.(*memEntry)
		m.used -= int64(len(entry.value))
		m.order.Remove(el)
		delete(m.items, key)
	}
}

// Clear drops every entry without invoking the eviction callback (an
// explicit drop, not a capacity eviction).
func (m *Memory) Clear() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.items = make(map[string]*list.Element)
	m.order.Init()
	m.used = 0
}

// Len returns the number of cached entries.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items)
}

// Used returns the number of cached bytes.
func (m *Memory) Used() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

// Stats returns hit/miss counters.
func (m *Memory) Stats() (hits, misses int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses
}

// --- disk LRU ---

// Disk is a byte-budgeted LRU cache of whole files stored under a local
// directory. Keys are encoded reversibly (url-safe base64) into file names;
// entries survive process restarts (a fresh Disk rescans the directory and
// recovers the original keys from the file names).
type Disk struct {
	mu       sync.Mutex
	dir      string
	capacity int64
	used     int64
	// lastUse orders keys for eviction.
	lastUse map[string]time.Time
	sizes   map[string]int64
	// pins counts outstanding Pin calls per key; pinned entries are never
	// evicted by the byte budget (the background uploader pins the dirty
	// versions it streams out of the cache until they reach the cloud).
	pins map[string]int
	seq  int64

	hits, misses int64
}

// NewDisk creates (and if necessary scans) a disk cache rooted at dir bounded
// to capacity bytes.
func NewDisk(dir string, capacity int64) (*Disk, error) {
	if capacity <= 0 {
		capacity = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: creating disk cache dir: %w", err)
	}
	d := &Disk{dir: dir, capacity: capacity, lastUse: make(map[string]time.Time), sizes: make(map[string]int64), pins: make(map[string]int)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cache: scanning disk cache dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		key, ok := decodeKey(e.Name())
		if !ok {
			// Not a valid encoding: a legacy entry from the old lossy
			// sanitizer or a stray file. It can never be served (its original
			// key is unrecoverable), so delete it rather than letting it
			// occupy the budget untracked and unevictable forever.
			_ = os.Remove(filepath.Join(dir, e.Name()))
			continue
		}
		d.lastUse[key] = info.ModTime()
		d.sizes[key] = info.Size()
		d.used += info.Size()
	}
	return d, nil
}

// encodeKey turns an arbitrary cache key into a safe file name. The encoding
// must be injective and reversible: entries rehydrated by NewDisk after a
// restart have to map back to the exact original key, so lossy sanitizing
// (collapsing '/' and ':' into '_') is not an option — colliding keys would
// silently serve each other's contents.
func encodeKey(key string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(key))
}

// decodeKey reverses encodeKey; ok is false for file names that are not a
// valid encoding.
func decodeKey(name string) (key string, ok bool) {
	b, err := base64.RawURLEncoding.DecodeString(name)
	if err != nil {
		return "", false
	}
	return string(b), true
}

func (d *Disk) path(key string) string { return filepath.Join(d.dir, encodeKey(key)) }

// Get reads a cached file. The lastUse/sizes maps are keyed by the original
// (decoded) key, matching what NewDisk rehydrates.
func (d *Disk) Get(key string) ([]byte, bool) {
	d.mu.Lock()
	_, ok := d.lastUse[key]
	if ok {
		d.hits++
		d.lastUse[key] = time.Now().Add(time.Duration(d.seq))
		d.seq++
	} else {
		d.misses++
	}
	d.mu.Unlock()
	if !ok {
		return nil, false
	}
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		return nil, false
	}
	return data, true
}

// Put writes a file to the cache, evicting the least recently used entries to
// respect the byte budget. The file is written to a temporary name and
// renamed into place: a same-key rewrite replaces the entry atomically, so
// a concurrent streaming reader of the old entry (the background uploader
// holds Open()'d pinned entries while it drains its queue) keeps reading
// the complete old bytes from its inode instead of observing an in-place
// truncation.
func (d *Disk) Put(key string, value []byte) error {
	if int64(len(value)) > d.capacity {
		return nil // larger than the whole cache: skip silently
	}
	tmp, err := os.CreateTemp(d.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("cache: writing disk cache entry: %w", err)
	}
	if _, err := tmp.Write(value); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: writing disk cache entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: writing disk cache entry: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: writing disk cache entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), d.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: writing disk cache entry: %w", err)
	}
	d.mu.Lock()
	if old, ok := d.sizes[key]; ok {
		d.used -= old
	}
	d.sizes[key] = int64(len(value))
	d.lastUse[key] = time.Now().Add(time.Duration(d.seq))
	d.seq++
	d.used += int64(len(value))
	var evict []string
	for d.used > d.capacity {
		oldestKey := ""
		var oldest time.Time
		for k, t := range d.lastUse {
			if k == key || d.pins[k] > 0 {
				continue
			}
			if oldestKey == "" || t.Before(oldest) {
				oldestKey, oldest = k, t
			}
		}
		if oldestKey == "" {
			break
		}
		d.used -= d.sizes[oldestKey]
		delete(d.sizes, oldestKey)
		delete(d.lastUse, oldestKey)
		evict = append(evict, oldestKey)
	}
	d.mu.Unlock()
	for _, k := range evict {
		_ = os.Remove(d.path(k))
	}
	return nil
}

// Remove deletes a cached file.
func (d *Disk) Remove(key string) {
	d.mu.Lock()
	if sz, ok := d.sizes[key]; ok {
		d.used -= sz
		delete(d.sizes, key)
		delete(d.lastUse, key)
		delete(d.pins, key)
	}
	d.mu.Unlock()
	_ = os.Remove(d.path(key))
}

// Pin marks a cached entry as non-evictable and reports whether the entry
// is present (an absent key is not pinned). Pins nest: each Pin needs a
// matching Unpin. The background uploader pins the dirty version it is
// about to stream to the cloud so the byte budget cannot evict it while it
// waits in the upload queue.
func (d *Disk) Pin(key string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.sizes[key]; !ok {
		return false
	}
	d.pins[key]++
	return true
}

// Unpin releases one Pin on key.
func (d *Disk) Unpin(key string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n, ok := d.pins[key]; ok {
		if n <= 1 {
			delete(d.pins, key)
		} else {
			d.pins[key] = n - 1
		}
	}
}

// Open returns a streaming reader over a cached entry together with its
// size, without loading the contents into memory — the background uploader
// streams queued dirty files straight from the cache to the cloud. The
// caller must close the returned file; a concurrent eviction (the entry
// should be pinned to prevent one) surfaces as a read error, never partial
// silence, because the file is opened before the entry is re-checked.
func (d *Disk) Open(key string) (io.ReadSeekCloser, int64, bool) {
	d.mu.Lock()
	size, ok := d.sizes[key]
	if ok {
		d.hits++
		d.lastUse[key] = time.Now().Add(time.Duration(d.seq))
		d.seq++
	} else {
		d.misses++
	}
	d.mu.Unlock()
	if !ok {
		return nil, 0, false
	}
	f, err := os.Open(d.path(key))
	if err != nil {
		return nil, 0, false
	}
	return f, size, true
}

// Clear drops every cached file.
func (d *Disk) Clear() {
	d.mu.Lock()
	keys := make([]string, 0, len(d.sizes))
	for k := range d.sizes {
		keys = append(keys, k)
	}
	d.sizes = make(map[string]int64)
	d.lastUse = make(map[string]time.Time)
	d.pins = make(map[string]int)
	d.used = 0
	d.mu.Unlock()
	for _, k := range keys {
		_ = os.Remove(d.path(k))
	}
}

// Len returns the number of cached files.
func (d *Disk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.sizes)
}

// Used returns the cached byte total.
func (d *Disk) Used() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// Stats returns hit/miss counters.
func (d *Disk) Stats() (hits, misses int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hits, d.misses
}

// --- short-lived metadata cache ---

// Metadata is the short-term metadata cache: entries expire after a
// configurable duration (500 ms by default in the paper's experiments) so
// that bursts of stat calls triggered by a single application action reuse
// the value fetched from the coordination service without compromising
// strong consistency for longer.
type Metadata struct {
	mu      sync.Mutex
	ttl     time.Duration
	clk     clock.Clock
	entries map[string]metaEntry

	hits, misses int64
}

type metaEntry struct {
	value   []byte
	expires time.Time
}

// NewMetadata creates a metadata cache with the given expiration time. A TTL
// of zero disables caching entirely (every Get misses).
func NewMetadata(ttl time.Duration, clk clock.Clock) *Metadata {
	if clk == nil {
		clk = clock.Real()
	}
	return &Metadata{ttl: ttl, clk: clk, entries: make(map[string]metaEntry)}
}

// TTL returns the configured expiration time.
func (c *Metadata) TTL() time.Duration { return c.ttl }

// Get returns the cached value if present and not expired.
func (c *Metadata) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ttl <= 0 {
		c.misses++
		return nil, false
	}
	e, ok := c.entries[key]
	if !ok || c.clk.Now().After(e.expires) {
		if ok {
			delete(c.entries, key)
		}
		c.misses++
		return nil, false
	}
	c.hits++
	out := make([]byte, len(e.value))
	copy(out, e.value)
	return out, true
}

// Put caches a value until the TTL elapses.
func (c *Metadata) Put(key string, value []byte) {
	if c.ttl <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	val := make([]byte, len(value))
	copy(val, value)
	c.entries[key] = metaEntry{value: val, expires: c.clk.Now().Add(c.ttl)}
}

// Invalidate drops a cached entry (used after local updates so subsequent
// reads observe the new metadata immediately).
func (c *Metadata) Invalidate(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, key)
}

// InvalidateAll clears the cache.
func (c *Metadata) InvalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]metaEntry)
}

// Stats returns hit/miss counters.
func (c *Metadata) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
