package smr

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// slowApp delays commands carrying a "slow:" prefix, so a test can park one
// invocation at the replicas while later ones complete.
type slowApp struct {
	logApp
	delay time.Duration
}

func (a *slowApp) Execute(cmd []byte) []byte {
	if bytes.HasPrefix(cmd, []byte("slow:")) {
		time.Sleep(a.delay)
	}
	return a.logApp.Execute(cmd)
}

func TestPipelinedInvocationsCompleteConcurrently(t *testing.T) {
	c := newCluster(t, 3, CrashFaults)
	c.net.SetDelay(2 * time.Millisecond)
	cl := c.client("pipe")
	defer cl.Close()

	// 32 concurrent sessions over ONE client. Serialized, 32 round trips at
	// >=6ms each would take ~200ms; pipelined they overlap.
	const sessions = 32
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := cl.Invoke(bg, []byte(fmt.Sprintf("op-%d", i)))
			if err != nil {
				errs <- err
				return
			}
			if !bytes.HasSuffix(res, []byte(fmt.Sprintf("op-%d", i))) {
				errs <- fmt.Errorf("reply %q does not match op-%d", res, i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// The serialized lower bound is sessions * 3 one-way hops * delay.
	serializedFloor := time.Duration(sessions) * 3 * 2 * time.Millisecond
	if elapsed >= serializedFloor {
		t.Fatalf("32 pipelined invocations took %v, not faster than the serialized floor %v", elapsed, serializedFloor)
	}
}

func TestOutOfOrderCompletion(t *testing.T) {
	app0 := &slowApp{delay: 100 * time.Millisecond}
	ids := []int{0, 1, 2}
	cfg := Config{ReplicaIDs: ids, Model: CrashFaults}
	net := NewNetwork()
	for _, id := range ids {
		r, err := NewReplica(id, cfg, &slowApp{delay: app0.delay}, net)
		if err != nil {
			t.Fatal(err)
		}
		r.Start()
		defer r.Stop()
	}
	cl := NewClient("ooo", cfg, net)
	defer cl.Close()

	slowDone := make(chan time.Time, 1)
	go func() {
		if _, err := cl.Invoke(bg, []byte("slow:one")); err != nil {
			t.Errorf("slow invoke: %v", err)
		}
		slowDone <- time.Now()
	}()
	time.Sleep(10 * time.Millisecond) // let the slow command get ordered first

	// A fast command submitted after the slow one must not wait for it...
	// except that replicas execute in order, so what out-of-order completion
	// buys is the *submission* overlapping: the fast command is already
	// ordered and executes immediately after the slow one finishes, instead
	// of its request only being sent once the slow reply returned.
	start := time.Now()
	if _, err := cl.Invoke(bg, []byte("fast")); err != nil {
		t.Fatalf("fast invoke: %v", err)
	}
	fastElapsed := time.Since(start)
	<-slowDone
	// Serialized clients pay slow (100ms) + fast back to back; pipelined,
	// the fast command completes within roughly the slow command's window.
	if fastElapsed > 300*time.Millisecond {
		t.Fatalf("fast invocation took %v behind a slow one; pipelining is not overlapping", fastElapsed)
	}
}

func TestMaxInflightBoundsOutstandingRequests(t *testing.T) {
	c := newCluster(t, 3, CrashFaults)
	cl := c.client("windowed")
	cl.MaxInflight = 2
	defer cl.Close()

	// With a window of 2 and 8 concurrent invocations, everything still
	// completes (the window queues, it does not reject).
	var wg sync.WaitGroup
	var failures atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := cl.Invoke(bg, []byte(fmt.Sprintf("w-%d", i))); err != nil {
				failures.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d invocations failed under a small in-flight window", failures.Load())
	}
}

func TestPipelinedClientCloseFailsWaiters(t *testing.T) {
	c := newCluster(t, 3, CrashFaults)
	for _, id := range c.cfg.ReplicaIDs {
		c.net.Disconnect(id) // nobody will answer
	}
	cl := c.client("closing")
	cl.RequestTimeout = 10 * time.Second
	started := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		close(started)
		_, err := cl.Invoke(bg, []byte("never-answered"))
		errCh <- err
	}()
	<-started
	time.Sleep(20 * time.Millisecond)
	cl.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("Invoke succeeded after Close with no replicas reachable")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Invoke did not return after Close")
	}
}

func TestPipelinedRetransmissionSurvivesMessageLoss(t *testing.T) {
	c := newCluster(t, 3, CrashFaults)
	cl := c.client("retrans")
	cl.RetryInterval = 20 * time.Millisecond
	defer cl.Close()

	// Pound the group with concurrent invocations while the leader flaps:
	// per-request retransmission must recover each one individually.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.net.Disconnect(0)
			time.Sleep(5 * time.Millisecond)
			c.net.Reconnect(0)
			time.Sleep(15 * time.Millisecond)
		}
	}()
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := cl.Invoke(bg, []byte(fmt.Sprintf("flap-%d", i))); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	close(errs)
	for err := range errs {
		t.Fatalf("invocation lost under a flapping leader: %v", err)
	}
}

func TestBatchEnvelopeRoundTrip(t *testing.T) {
	ops := [][]byte{[]byte(`{"op":"a"}`), []byte(``), []byte(`{"op":"c","x":1}`)}
	env := EncodeBatch(ops)
	got, isBatch := DecodeBatch(env)
	if !isBatch {
		t.Fatal("envelope not recognized as a batch")
	}
	if len(got) != len(ops) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if !bytes.Equal(got[i], ops[i]) {
			t.Fatalf("op %d = %q, want %q", i, got[i], ops[i])
		}
	}
	if _, isBatch := DecodeBatch([]byte(`{"op":"plain"}`)); isBatch {
		t.Fatal("plain JSON misdetected as a batch envelope")
	}
	if ops, isBatch := DecodeBatch(append(append([]byte{}, batchMagic...), 0xFF)); !isBatch || ops != nil {
		t.Fatal("malformed envelope must decode as (nil, true)")
	}
}

func TestBatchApplicationExecutesSubOpsInOrder(t *testing.T) {
	app := &logApp{}
	b := NewBatchApplication(app)
	reply := b.Execute(EncodeBatch([][]byte{[]byte("x"), []byte("y")}))
	replies, isBatch := DecodeBatch(reply)
	if !isBatch || len(replies) != 2 {
		t.Fatalf("batch reply = %q (isBatch=%v)", reply, isBatch)
	}
	if string(replies[0]) != "1:x" || string(replies[1]) != "2:y" {
		t.Fatalf("sub-replies = %q, %q", replies[0], replies[1])
	}
	if res := b.Execute([]byte("z")); string(res) != "3:z" {
		t.Fatalf("plain command through BatchApplication = %q", res)
	}
}

// countingInvoker counts round trips and delegates to an inner function.
type countingInvoker struct {
	n     atomic.Int64
	inner func(ctx context.Context, op []byte) ([]byte, error)
}

func (ci *countingInvoker) Invoke(ctx context.Context, op []byte) ([]byte, error) {
	ci.n.Add(1)
	return ci.inner(ctx, op)
}

func TestCoalescerPacksConcurrentOps(t *testing.T) {
	app := NewBatchApplication(&logApp{})
	inv := &countingInvoker{inner: func(ctx context.Context, op []byte) ([]byte, error) {
		return app.Execute(op), nil
	}}
	co := NewCoalescer(inv)
	co.MaxDelay = 20 * time.Millisecond

	const ops = 24
	var wg sync.WaitGroup
	results := make([][]byte, ops)
	for i := 0; i < ops; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := co.Invoke(bg, []byte(fmt.Sprintf("op%02d", i)))
			if err != nil {
				t.Errorf("coalesced invoke %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	// Every op got its own correct reply.
	for i, res := range results {
		if !bytes.HasSuffix(res, []byte(fmt.Sprintf("op%02d", i))) {
			t.Fatalf("reply %d = %q, want suffix op%02d", i, res, i)
		}
	}
	// ...and the 24 ops used far fewer round trips than 24.
	if rt := inv.n.Load(); rt >= ops {
		t.Fatalf("coalescer used %d round trips for %d ops", rt, ops)
	}
}

func TestCoalescerAgainstReplicatedGroup(t *testing.T) {
	ids := []int{0, 1, 2, 3}
	cfg := Config{ReplicaIDs: ids, Model: ByzantineFaults}
	net := NewNetwork()
	apps := make([]*logApp, len(ids))
	for i, id := range ids {
		apps[i] = &logApp{}
		r, err := NewReplica(id, cfg, NewBatchApplication(apps[i]), net)
		if err != nil {
			t.Fatal(err)
		}
		r.Start()
		defer r.Stop()
	}
	cl := NewClient("co", cfg, net)
	defer cl.Close()
	co := NewCoalescer(cl)
	co.MaxDelay = 5 * time.Millisecond

	const ops = 40
	var wg sync.WaitGroup
	errs := make(chan error, ops)
	for i := 0; i < ops; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := co.Invoke(bg, []byte(fmt.Sprintf("b-%02d", i)))
			if err != nil {
				errs <- err
				return
			}
			if !bytes.HasSuffix(res, []byte(fmt.Sprintf("b-%02d", i))) {
				errs <- fmt.Errorf("reply %q mismatched for b-%02d", res, i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestReplyWindowDedup(t *testing.T) {
	rec := &clientRecord{}
	rec.record(1, []byte("one"))
	if res, ok := rec.recall(1); !ok || string(res) != "one" {
		t.Fatal("recall of a recorded reply failed")
	}
	if rec.stale(1) {
		t.Fatal("fresh request marked stale")
	}
	// A delayed-but-active request must NOT go stale, no matter how many
	// later requests complete or arrive: only the client's own cumulative
	// ack (LowID) advances the resolution floor.
	lag := &clientRecord{}
	for id := uint64(2); id < 10*pruneStride; id++ {
		lag.record(id, []byte("later"))
		lag.observeLow(1) // request 1 still unresolved at the client
	}
	if lag.stale(1) {
		t.Fatal("in-flight request marked stale by later completions")
	}
	// Once the client acknowledges everything below an ID, earlier requests
	// become stale and (past the prune stride) their replies are reclaimed.
	lag.observeLow(10 * pruneStride)
	if !lag.stale(1) {
		t.Fatal("request below the client's ack floor not marked stale")
	}
	if _, ok := lag.recall(5); ok {
		t.Fatal("reply below the pruned floor still retained")
	}
	if len(lag.results) != 0 {
		t.Fatalf("reply map holds %d entries after full acknowledgement", len(lag.results))
	}
	// A nil record recalls nothing and is never stale.
	var nilRec *clientRecord
	if _, ok := nilRec.recall(5); ok || nilRec.stale(5) {
		t.Fatal("nil clientRecord misbehaves")
	}
}

func TestPipelinedDuplicatesExecuteOnce(t *testing.T) {
	c := newCluster(t, 3, CrashFaults)
	cl := c.client("dup")
	cl.RetryInterval = 5 * time.Millisecond // aggressive retransmission
	defer cl.Close()
	c.net.SetDelay(2 * time.Millisecond) // make retransmits overlap replies

	const ops = 20
	var wg sync.WaitGroup
	for i := 0; i < ops; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := cl.Invoke(bg, []byte(fmt.Sprintf("d-%d", i))); err != nil {
				t.Errorf("invoke %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	waitForAll(t, c, ops)
	time.Sleep(50 * time.Millisecond) // let stray retransmissions drain
	for i, app := range c.apps {
		if n := len(app.Log()); n != ops {
			t.Fatalf("replica %d executed %d commands, want exactly %d", i, n, ops)
		}
	}
}
