package smr

import (
	"sync"
	"time"
)

// Transport moves protocol messages between replicas and back to clients. The
// implementation used in this repository is the in-memory Network below; a
// TCP transport can implement the same interface for multi-process
// deployments (cmd/coordserver).
type Transport interface {
	// SendToReplica delivers a message to one replica (best effort).
	SendToReplica(id int, m message)
	// Broadcast delivers a message to every replica except the sender
	// (identified by m.From when it is a replica). A replica's loopback does
	// not traverse the network: replicas process their own copy of a
	// broadcast synchronously and reliably (Replica.broadcast), because a
	// protocol vote that can be dropped on the way to its own caster breaks
	// quorum accounting in ways no retransmission repairs. Client broadcasts
	// (From < 0) go to every replica.
	Broadcast(m message)
	// SendToClient delivers a reply to a client by ID (best effort).
	SendToClient(clientID string, r Reply)
}

// Network is an in-memory transport connecting a replica group and its
// clients. It supports fault injection: disconnecting replicas, dropping a
// fraction of messages, and adding delivery delay.
type Network struct {
	mu           sync.Mutex
	replicas     map[int]chan message
	clients      map[string]chan Reply
	disconnected map[int]bool
	delay        time.Duration
	closed       bool
}

var _ Transport = (*Network)(nil)

// NewNetwork creates an empty network.
func NewNetwork() *Network {
	return &Network{
		replicas:     make(map[int]chan message),
		clients:      make(map[string]chan Reply),
		disconnected: make(map[int]bool),
	}
}

// registerReplica attaches a replica inbox to the network.
func (n *Network) registerReplica(id int, inbox chan message) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.replicas[id] = inbox
}

// RegisterClient attaches a client inbox and returns it.
func (n *Network) RegisterClient(clientID string) chan Reply {
	n.mu.Lock()
	defer n.mu.Unlock()
	// Sized for a full pipelining window of replies from every replica, with
	// headroom for re-driven duplicates; overflow is dropped and repaired by
	// client retransmission against the replicas' reply records.
	ch := make(chan Reply, 1024)
	n.clients[clientID] = ch
	return ch
}

// UnregisterClient detaches a client inbox.
func (n *Network) UnregisterClient(clientID string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.clients, clientID)
}

// Disconnect isolates a replica: messages to and from it are dropped.
func (n *Network) Disconnect(id int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.disconnected[id] = true
}

// Reconnect restores a previously disconnected replica.
func (n *Network) Reconnect(id int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.disconnected, id)
}

// SetDelay adds a fixed delivery delay to every message (simulated WAN).
func (n *Network) SetDelay(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.delay = d
}

// Close shuts the network down; subsequent sends are dropped.
func (n *Network) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.closed = true
}

func (n *Network) deliverReplica(id int, m message, delay time.Duration) {
	send := func() {
		n.mu.Lock()
		ch, ok := n.replicas[id]
		blocked := n.disconnected[id] || n.disconnected[m.From] || n.closed
		n.mu.Unlock()
		if !ok || blocked {
			return
		}
		select {
		case ch <- m:
		default:
			// Inbox full: drop. The protocols tolerate message loss via
			// retransmission at the client and leader timeouts.
		}
	}
	if delay > 0 {
		time.AfterFunc(delay, send)
		return
	}
	send()
}

// SendToReplica implements Transport.
func (n *Network) SendToReplica(id int, m message) {
	n.mu.Lock()
	delay := n.delay
	n.mu.Unlock()
	n.deliverReplica(id, m, delay)
}

// Broadcast implements Transport.
func (n *Network) Broadcast(m message) {
	n.mu.Lock()
	ids := make([]int, 0, len(n.replicas))
	for id := range n.replicas {
		ids = append(ids, id)
	}
	delay := n.delay
	n.mu.Unlock()
	for _, id := range ids {
		if m.From >= 0 && id == m.From {
			continue // replica loopback is handled locally, not via the network
		}
		n.deliverReplica(id, m, delay)
	}
}

// SendToClient implements Transport.
func (n *Network) SendToClient(clientID string, r Reply) {
	n.mu.Lock()
	ch, ok := n.clients[clientID]
	closed := n.closed
	n.mu.Unlock()
	if !ok || closed {
		return
	}
	select {
	case ch <- r:
	default:
	}
}
