package smr

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"scfs/internal/telemetry"
)

// Batching lets the metadata plane amortize coordination round trips:
// concurrently submitted operations are packed into one ordered invocation
// and executed back to back at the replicas. The envelope below frames a
// batch; BatchApplication unpacks it replica-side; Coalescer packs it
// client-side. The three pieces are application-agnostic — any Application
// whose commands never begin with a 0x00 byte (JSON commands, as both
// depspace and zkcoord use, never do) can be wrapped.

// batchMagic prefixes a batch envelope. The leading 0x00 byte cannot start a
// JSON document, so plain commands and envelopes are unambiguous.
var batchMagic = []byte{0x00, 'S', 'B', '1'}

// EncodeBatch frames a list of operations into one envelope.
func EncodeBatch(ops [][]byte) []byte {
	size := len(batchMagic) + binary.MaxVarintLen64
	for _, op := range ops {
		size += binary.MaxVarintLen64 + len(op)
	}
	out := make([]byte, 0, size)
	out = append(out, batchMagic...)
	out = binary.AppendUvarint(out, uint64(len(ops)))
	for _, op := range ops {
		out = binary.AppendUvarint(out, uint64(len(op)))
		out = append(out, op...)
	}
	return out
}

// DecodeBatch unpacks an envelope produced by EncodeBatch. The second return
// is false when b is not an envelope (a plain command); a malformed envelope
// returns (nil, true).
func DecodeBatch(b []byte) ([][]byte, bool) {
	if len(b) < len(batchMagic) || string(b[:len(batchMagic)]) != string(batchMagic) {
		return nil, false
	}
	b = b[len(batchMagic):]
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, true
	}
	b = b[sz:]
	// The count is untrusted until checked against the payload: every op
	// needs at least its one-byte length varint, so a count exceeding the
	// remaining bytes is malformed. Rejecting it here also bounds the
	// preallocation below — a forged count must not panic make() inside
	// Application.Execute, where every replica would crash on the same
	// ordered command.
	if n > uint64(len(b)) {
		return nil, true
	}
	ops := make([][]byte, 0, n)
	for i := uint64(0); i < n; i++ {
		l, sz := binary.Uvarint(b)
		if sz <= 0 || uint64(len(b)-sz) < l {
			return nil, true
		}
		b = b[sz:]
		ops = append(ops, b[:l:l])
		b = b[l:]
	}
	return ops, true
}

// BatchApplication wraps a deterministic Application so that a batch
// envelope executes as its sub-operations in order, replying with an
// envelope of the sub-replies. Plain commands pass through untouched, so
// batching and non-batching clients interoperate against the same replicas.
type BatchApplication struct {
	App Application
}

var _ Application = (*BatchApplication)(nil)

// NewBatchApplication wraps app.
func NewBatchApplication(app Application) *BatchApplication {
	return &BatchApplication{App: app}
}

// Execute implements Application.
func (b *BatchApplication) Execute(cmd []byte) []byte {
	ops, isBatch := DecodeBatch(cmd)
	if !isBatch {
		return b.App.Execute(cmd)
	}
	replies := make([][]byte, len(ops))
	for i, op := range ops {
		replies[i] = b.App.Execute(op)
	}
	return EncodeBatch(replies)
}

// Snapshot implements Application.
func (b *BatchApplication) Snapshot() []byte { return b.App.Snapshot() }

// Restore implements Application.
func (b *BatchApplication) Restore(snapshot []byte) error { return b.App.Restore(snapshot) }

// Invoker submits a serialized command for totally ordered execution and
// returns the serialized result (the same shape depspace.Invoker and
// zkcoord.Invoker declare). Client implements it.
type Invoker interface {
	Invoke(ctx context.Context, op []byte) ([]byte, error)
}

// Coalescer packs concurrently submitted operations into batch invocations
// against replicas wrapped in BatchApplication. The first submitter of a
// generation becomes its flusher: it waits up to MaxDelay for concurrent
// submitters to pile in (or until MaxBatch operations are queued), then
// issues the whole batch as one ordered invocation and distributes the
// replies. A lone operation is invoked directly with no envelope and no
// delay beyond MaxDelay.
//
// Combined with a pipelined Client, multiple batches are in flight at once:
// the coalescer bounds round trips per operation, the pipeline overlaps the
// round trips that remain.
type Coalescer struct {
	// Inv is the underlying invoker (typically a pipelined *Client).
	Inv Invoker
	// MaxBatch is the largest batch packed into one invocation (default 32).
	MaxBatch int
	// MaxDelay is how long the flusher waits for concurrent submitters
	// (default 200µs). Zero after NewCoalescer means the default; negative
	// disables the wait (batching then only captures ops submitted in the
	// same instant).
	MaxDelay time.Duration

	mu       sync.Mutex
	queue    []*batchItem
	flushing bool
	full     chan struct{} // signaled when the queue reaches MaxBatch
}

// batchItem is one queued operation and its reply slot. ctx is the
// submitter's context; the flush aborts only when every item's context is
// done (see flush), so it must be retained past the submitter's return.
// trace/enq carry the submitter's telemetry trace and enqueue time: the
// flush runs under a detached context the trace cannot ride, so batch and
// consensus spans are recorded onto each participant's trace explicitly.
type batchItem struct {
	op []byte
	//scfslint:ignore ctxdiscipline request-carrier: flush aborts only when every participant's ctx is done
	ctx    context.Context
	done   chan struct{}
	result []byte
	err    error
	trace  *telemetry.Trace
	enq    time.Time
}

// NewCoalescer creates a coalescing layer over inv.
func NewCoalescer(inv Invoker) *Coalescer {
	return &Coalescer{Inv: inv, MaxBatch: 32, MaxDelay: 200 * time.Microsecond}
}

func (c *Coalescer) maxBatch() int {
	if c.MaxBatch <= 0 {
		return 32
	}
	return c.MaxBatch
}

// Invoke implements the invoker shape shared by the coordination clients.
// Cancelling ctx abandons the wait for the reply; as with a lost reply, the
// operation may still execute. The batch itself is invoked under a context
// detached from any single caller — one caller's cancellation (flusher or
// follower) never fails the other queued operations; the invocation is
// abandoned only once every participant's context is done.
func (c *Coalescer) Invoke(ctx context.Context, op []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	item := &batchItem{op: op, ctx: ctx, done: make(chan struct{})}
	if tr := telemetry.FromContext(ctx); tr != nil {
		item.trace, item.enq = tr, time.Now()
	}
	c.mu.Lock()
	c.queue = append(c.queue, item)
	leader := !c.flushing
	if leader {
		c.flushing = true
		c.full = make(chan struct{})
	} else if len(c.queue) >= c.maxBatch() && c.full != nil {
		// Wake the flusher early: the batch is full.
		close(c.full)
		c.full = nil
	}
	full := c.full
	c.mu.Unlock()

	if !leader {
		select {
		case <-item.done:
			return item.result, item.err
		case <-ctx.Done():
			// The batch will carry the op anyway; its reply is discarded.
			return nil, ctx.Err()
		}
	}

	// Flusher: linger briefly so concurrent submitters coalesce. The chosen
	// wakeup is the batch's flush trigger, surfaced on its telemetry spans.
	trigger := "immediate"
	if d := c.MaxDelay; d >= 0 {
		if d == 0 {
			d = 200 * time.Microsecond
		}
		timer := time.NewTimer(d)
		select {
		case <-timer.C:
			trigger = "timer"
		case <-full:
			timer.Stop()
			trigger = "full"
		case <-ctx.Done():
			timer.Stop()
			trigger = "abort"
		}
	}

	c.mu.Lock()
	batch := c.queue
	c.queue = nil
	c.flushing = false
	c.full = nil
	c.mu.Unlock()

	// The flush runs in its own goroutine so a flusher whose ctx is already
	// cancelled (or cancels mid-invocation) abandons its wait like any
	// follower, while the batch completes for the other submitters.
	go c.flush(batch, trigger)
	select {
	case <-item.done:
		return item.result, item.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// flush issues one generation of queued operations and distributes replies.
// The invocation runs under a context detached from every individual caller,
// cancelled only once all batch items' contexts are done — at that point
// nobody is waiting for the replies and the invocation may be abandoned.
//
// Because the flush context carries no trace, the flush records telemetry
// for its participants directly: every traced participant gets an
// "smr.batch" span (how the batch flushed, how many ops it carried, how
// long this op lingered in the queue) and — when the underlying invoker is
// a StatsInvoker — an "smr.invoke" span with the consensus round trip's
// pipeline statistics. Spans are recorded before the reply is published,
// so a participant still waiting sees them on its trace before it finishes.
func (c *Coalescer) flush(batch []*batchItem, trigger string) {
	if len(batch) == 0 {
		return
	}
	// Detached on purpose (the PR 8 review fix): tying the flush to any one
	// caller's ctx cancelled every participant's op when that caller quit.
	//scfslint:ignore ctxdiscipline batch flush must outlive individual callers; cancelled when all participants are done
	fctx, cancel := context.WithCancel(context.Background())
	stop := make(chan struct{})
	go func() {
		defer cancel()
		for _, it := range batch {
			select {
			case <-it.ctx.Done():
			case <-stop:
				return
			}
		}
	}()
	defer close(stop)

	traced := false
	for _, it := range batch {
		if it.trace != nil {
			traced = true
			break
		}
	}
	var (
		fstart time.Time
		st     *InvokeStats
	)
	if traced {
		fstart = time.Now()
	}
	invoke := func(op []byte) ([]byte, error) {
		if traced {
			if si, ok := c.Inv.(StatsInvoker); ok {
				st = &InvokeStats{}
				return si.InvokeWithStats(fctx, op, st)
			}
		}
		return c.Inv.Invoke(fctx, op)
	}
	record := func(err error) {
		if !traced {
			return
		}
		rtt := time.Since(fstart)
		out := invokeOutcome(err)
		for _, it := range batch {
			if it.trace == nil {
				continue
			}
			it.trace.Record(telemetry.Span{
				Name:    "smr.batch",
				Target:  trigger,
				Start:   fstart,
				Dur:     rtt,
				Outcome: out,
				Err:     err,
				Ops:     len(batch),
				Wait:    fstart.Sub(it.enq),
			})
			if st != nil {
				it.trace.Record(telemetry.Span{
					Name:       "smr.invoke",
					Start:      fstart,
					Dur:        rtt,
					Outcome:    out,
					Err:        err,
					Wait:       st.Window,
					Vote:       st.Vote,
					Retries:    st.Retries,
					ViewChange: st.ViewChange,
				})
			}
		}
	}

	if len(batch) == 1 {
		batch[0].result, batch[0].err = invoke(batch[0].op)
		record(batch[0].err)
		close(batch[0].done)
		return
	}
	ops := make([][]byte, len(batch))
	for i, it := range batch {
		ops[i] = it.op
	}
	reply, err := invoke(EncodeBatch(ops))
	if err == nil {
		replies, isBatch := DecodeBatch(reply)
		if !isBatch || len(replies) != len(batch) {
			err = fmt.Errorf("smr: malformed batch reply (%d ops, %d replies; replicas must wrap their application in BatchApplication)", len(batch), len(replies))
		} else {
			for i, it := range batch {
				it.result = cloneBytes(replies[i])
			}
		}
	}
	if err != nil {
		for _, it := range batch {
			it.err = err
		}
	}
	record(err)
	for _, it := range batch {
		close(it.done)
	}
}
