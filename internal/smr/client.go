package smr

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"scfs/internal/telemetry"
)

// DefaultMaxInflight is the pipelining window of a client that does not set
// MaxInflight explicitly: up to this many invocations may be outstanding at
// the replica group concurrently.
const DefaultMaxInflight = 64

// Client invokes commands on a replica group and waits for the reply quorum
// required by the fault model (1 reply for crash faults, f+1 matching replies
// for Byzantine faults).
//
// A Client is safe for concurrent use and *pipelines* concurrent
// invocations: each in-flight request is tagged with its request ID, a
// single receiver goroutine demultiplexes replies back to their waiters, and
// invocations complete out of order — a slow command does not block the
// replies of the commands submitted after it. At most MaxInflight
// invocations are outstanding at once; excess Invoke calls queue for a
// window slot. Retransmission and reply-vote tracking are per request, not
// per client.
type Client struct {
	id    string
	cfg   Config
	net   *Network
	inbox chan Reply

	// RequestTimeout bounds one invocation; RetryInterval is the
	// retransmission period within an invocation. MaxInflight is the
	// pipelining window (0 selects DefaultMaxInflight; 1 serializes
	// invocations exactly like the pre-pipelining client). All three must be
	// set before the first Invoke.
	RequestTimeout time.Duration
	RetryInterval  time.Duration
	MaxInflight    int

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]*pendingCall

	// maxView is the highest replica view any reply has reported — the
	// client's monotonic observation of the group's view changes. An
	// invocation that sees it grow while in flight crossed a view change.
	maxView atomic.Int64

	windowOnce sync.Once
	window     chan struct{}

	recvOnce sync.Once
	closed   atomic.Bool
	closeCh  chan struct{}
	recvDone chan struct{}
}

// pendingCall is one in-flight invocation. votes and results are owned by
// the receiver goroutine; result/err are published to the waiter by the
// close of done. The vote-timing fields (first, voteDur) are written by
// the receiver only while the call is pending and read by the waiter only
// after done closes, so the close is their publication barrier; they are
// only tracked when stats is set, keeping the untraced path clock-free.
type pendingCall struct {
	done  chan struct{}
	stats bool
	// votes maps result digests to the set of replicas that reported them.
	votes   map[string]map[int]bool
	result  []byte
	first   time.Time
	voteDur time.Duration
}

// InvokeStats reports how one invocation moved through the pipeline:
// where it waited, how often it retransmitted, how long the reply vote
// took, and whether the replica group changed views while it was in
// flight. Filled by InvokeWithStats; the Coalescer uses it to record
// consensus spans on behalf of batch participants whose contexts never
// reach the client.
type InvokeStats struct {
	// Window is how long the invocation waited for a pipelining slot.
	Window time.Duration
	// Vote is the latency from the first reply to the reply quorum.
	Vote time.Duration
	// Retries counts retransmissions of the request.
	Retries int
	// ViewChange reports whether the group's view advanced while the
	// invocation was in flight (a leader was suspected and replaced).
	ViewChange bool
}

// StatsInvoker is an Invoker that can report per-invocation pipeline
// statistics. *Client implements it; wrappers that cannot (test doubles,
// counting shims) are used via plain Invoke.
type StatsInvoker interface {
	InvokeWithStats(ctx context.Context, op []byte, st *InvokeStats) ([]byte, error)
}

// ErrTimeout is returned when the group does not answer in time.
var ErrTimeout = errors.New("smr: request timed out")

// ErrClosed is returned by Invoke on a closed client.
var ErrClosed = errors.New("smr: client is closed")

// NewClient registers a client with the network.
func NewClient(id string, cfg Config, net *Network) *Client {
	cfg = cfg.withDefaults()
	return &Client{
		id:             id,
		cfg:            cfg,
		net:            net,
		inbox:          net.RegisterClient(id),
		RequestTimeout: 10 * time.Second,
		RetryInterval:  100 * time.Millisecond,
		pending:        make(map[uint64]*pendingCall),
		closeCh:        make(chan struct{}),
		recvDone:       make(chan struct{}),
	}
}

// Close unregisters the client, stops the receiver goroutine and fails every
// in-flight invocation with ErrClosed.
func (c *Client) Close() {
	if c.closed.CompareAndSwap(false, true) {
		close(c.closeCh)
		c.net.UnregisterClient(c.id)
	}
}

// initWindow sizes the in-flight window on first use, so MaxInflight can be
// assigned field-style after NewClient (like RequestTimeout).
func (c *Client) initWindow() {
	c.windowOnce.Do(func() {
		n := c.MaxInflight
		if n <= 0 {
			n = DefaultMaxInflight
		}
		c.window = make(chan struct{}, n)
	})
}

// register tags a new invocation and makes it visible to the receiver.
func (c *Client) register(stats bool) (uint64, *pendingCall) {
	call := &pendingCall{done: make(chan struct{}), stats: stats}
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.pending[id] = call
	c.mu.Unlock()
	return id, call
}

// forget removes an invocation from the demux table; idempotent (both the
// waiter's deferred cleanup and the receiver's completion path call it).
func (c *Client) forget(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// lowID returns the client's lowest unresolved request ID — the cumulative
// acknowledgement piggybacked on every request so replicas can prune their
// reply records. With nothing in flight, everything ever issued is resolved.
func (c *Client) lowID() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.pending) == 0 {
		return c.nextID + 1
	}
	low := uint64(0)
	for id := range c.pending {
		if low == 0 || id < low {
			low = id
		}
	}
	return low
}

// lookup returns the in-flight call for a request ID, or nil when the
// invocation already completed or was abandoned.
func (c *Client) lookup(id uint64) *pendingCall {
	c.mu.Lock()
	call := c.pending[id]
	c.mu.Unlock()
	return call
}

// receive is the single receiver goroutine: it demultiplexes every reply to
// its in-flight invocation by request ID and tallies the per-request vote.
// Replies for completed or abandoned requests are dropped without touching
// any other invocation — concurrent sessions never see each other's replies.
func (c *Client) receive() {
	defer close(c.recvDone)
	needed := c.cfg.Model.ReplyQuorum(c.cfg.N())
	for {
		select {
		case <-c.closeCh:
			return
		case r := <-c.inbox:
			// Track the highest view any reply reports, monotonically: in-flight
			// invocations compare against it to detect crossed view changes.
			for {
				cur := c.maxView.Load()
				if int64(r.View) <= cur || c.maxView.CompareAndSwap(cur, int64(r.View)) {
					break
				}
			}
			call := c.lookup(r.ReqID)
			if call == nil {
				continue // stale reply for a completed or abandoned request
			}
			if call.stats && call.first.IsZero() {
				call.first = time.Now()
			}
			key := string(r.Result)
			if call.votes == nil {
				call.votes = make(map[string]map[int]bool)
			}
			if call.votes[key] == nil {
				call.votes[key] = make(map[int]bool)
			}
			call.votes[key][r.Replica] = true
			if len(call.votes[key]) >= needed {
				call.result = cloneBytes(r.Result)
				if call.stats {
					call.voteDur = time.Since(call.first)
				}
				c.forget(r.ReqID)
				close(call.done)
			}
		}
	}
}

// Invoke submits op for total ordering and returns the agreed result.
// Cancelling ctx abandons the invocation promptly with ctx.Err(); the
// command may still execute at the replicas (an abandoned request is
// indistinguishable from a lost reply). A context carrying a telemetry
// trace gets an "smr.invoke" span recording the invocation's pipeline
// statistics — window wait, retransmissions, vote latency, crossed view
// changes (direct callers only; the Coalescer invokes under a detached
// context and records spans for its participants itself, via
// InvokeWithStats).
func (c *Client) Invoke(ctx context.Context, op []byte) ([]byte, error) {
	tr := telemetry.FromContext(ctx)
	if tr == nil {
		return c.invoke(ctx, op, nil)
	}
	var st InvokeStats
	start := time.Now()
	out, err := c.invoke(ctx, op, &st)
	tr.Record(telemetry.Span{
		Name:       "smr.invoke",
		Target:     c.id,
		Start:      start,
		Dur:        time.Since(start),
		Outcome:    invokeOutcome(err),
		Err:        err,
		Wait:       st.Window,
		Vote:       st.Vote,
		Retries:    st.Retries,
		ViewChange: st.ViewChange,
	})
	return out, err
}

// InvokeWithStats is Invoke, filling st (when non-nil) with the
// invocation's pipeline statistics instead of recording a span. It
// implements StatsInvoker.
func (c *Client) InvokeWithStats(ctx context.Context, op []byte, st *InvokeStats) ([]byte, error) {
	return c.invoke(ctx, op, st)
}

// invokeOutcome classifies an invocation error for its span.
func invokeOutcome(err error) telemetry.SpanOutcome {
	switch {
	case err == nil:
		return telemetry.SpanOK
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return telemetry.SpanCanceled
	default:
		return telemetry.SpanError
	}
}

func (c *Client) invoke(ctx context.Context, op []byte, st *InvokeStats) ([]byte, error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("%w (%s)", ErrClosed, c.id)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.initWindow()
	c.recvOnce.Do(func() { go c.receive() })

	// Acquire a pipelining window slot.
	var acquire time.Time
	if st != nil {
		acquire = time.Now()
	}
	select {
	case c.window <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.closeCh:
		return nil, fmt.Errorf("%w (%s)", ErrClosed, c.id)
	}
	defer func() { <-c.window }()

	reqID, call := c.register(st != nil)
	defer c.forget(reqID)

	retries := 0
	if st != nil {
		st.Window = time.Since(acquire)
		viewStart := c.maxView.Load()
		defer func() {
			st.Retries = retries
			st.ViewChange = c.maxView.Load() > viewStart
		}()
	}

	msg := message{Type: msgRequest, From: -1, FromCli: c.id,
		Req: request{ClientID: c.id, ReqID: reqID, LowID: c.lowID(), Op: op}}
	c.net.Broadcast(msg)

	// One deadline timer and one retransmission timer per invocation, both
	// reused across wakeups — no per-iteration timer allocation. Retries back
	// off exponentially (capped at 16x): with a full pipelining window every
	// outstanding request retransmits, and a fixed cadence under a loaded
	// group adds exactly the flood that keeps it loaded.
	deadline := time.NewTimer(c.RequestTimeout)
	defer deadline.Stop()
	interval := c.RetryInterval
	retry := time.NewTimer(interval)
	defer retry.Stop()

	for {
		select {
		case <-call.done:
			if st != nil {
				st.Vote = call.voteDur
			}
			return call.result, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-retry.C:
			retries++
			msg.Req.LowID = c.lowID() // refresh the cumulative ack
			c.net.Broadcast(msg)
			if interval < 16*c.RetryInterval {
				interval *= 2
			}
			retry.Reset(interval)
		case <-deadline.C:
			return nil, fmt.Errorf("%w after %v (request %d)", ErrTimeout, c.RequestTimeout, reqID)
		case <-c.closeCh:
			return nil, fmt.Errorf("%w (%s)", ErrClosed, c.id)
		}
	}
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// equalResults reports whether two replies carry the same payload. Exposed
// for tests of the voting logic.
func equalResults(a, b []byte) bool { return bytes.Equal(a, b) }
