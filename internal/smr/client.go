package smr

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Client invokes commands on a replica group and waits for the reply quorum
// required by the fault model (1 reply for crash faults, f+1 matching replies
// for Byzantine faults). A Client is safe for concurrent use; concurrent
// invocations are serialized.
type Client struct {
	id    string
	cfg   Config
	net   *Network
	inbox chan Reply

	// RequestTimeout bounds one attempt; RetryInterval is the retransmission
	// period within an attempt.
	RequestTimeout time.Duration
	RetryInterval  time.Duration

	mu     sync.Mutex
	nextID uint64
	closed atomic.Bool
}

// ErrTimeout is returned when the group does not answer in time.
var ErrTimeout = errors.New("smr: request timed out")

// NewClient registers a client with the network.
func NewClient(id string, cfg Config, net *Network) *Client {
	cfg = cfg.withDefaults()
	return &Client{
		id:             id,
		cfg:            cfg,
		net:            net,
		inbox:          net.RegisterClient(id),
		RequestTimeout: 10 * time.Second,
		RetryInterval:  100 * time.Millisecond,
	}
}

// Close unregisters the client.
func (c *Client) Close() {
	if c.closed.CompareAndSwap(false, true) {
		c.net.UnregisterClient(c.id)
	}
}

// Invoke submits op for total ordering and returns the agreed result.
// Cancelling ctx abandons the invocation promptly with ctx.Err(); the
// command may still execute at the replicas (an abandoned request is
// indistinguishable from a lost reply).
func (c *Client) Invoke(ctx context.Context, op []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return nil, fmt.Errorf("smr: client %s is closed", c.id)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.nextID++
	reqID := c.nextID
	req := request{ClientID: c.id, ReqID: reqID, Op: op}
	msg := message{Type: msgRequest, From: -1, FromCli: c.id, Req: req}

	needed := c.cfg.Model.ReplyQuorum(c.cfg.N())
	deadline := time.Now().Add(c.RequestTimeout)

	// Drain stale replies from previous invocations.
	for {
		select {
		case <-c.inbox:
			continue
		default:
		}
		break
	}

	c.net.Broadcast(msg)
	retry := time.NewTicker(c.RetryInterval)
	defer retry.Stop()

	// votes maps result digests to the set of replicas that reported them.
	votes := make(map[string]map[int]bool)
	results := make(map[string][]byte)
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, fmt.Errorf("%w after %v (request %d)", ErrTimeout, c.RequestTimeout, reqID)
		}
		select {
		case r := <-c.inbox:
			if r.ReqID != reqID {
				continue
			}
			key := string(r.Result)
			if votes[key] == nil {
				votes[key] = make(map[int]bool)
			}
			votes[key][r.Replica] = true
			results[key] = r.Result
			if len(votes[key]) >= needed {
				return cloneBytes(results[key]), nil
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-retry.C:
			c.net.Broadcast(msg)
		case <-time.After(remaining):
			return nil, fmt.Errorf("%w after %v (request %d)", ErrTimeout, c.RequestTimeout, reqID)
		}
	}
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// equalResults reports whether two replies carry the same payload. Exposed
// for tests of the voting logic.
func equalResults(a, b []byte) bool { return bytes.Equal(a, b) }
