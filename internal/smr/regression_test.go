package smr

import (
	"context"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"scfs/internal/seccrypto"
)

// The tests in this file pin down protocol-safety fixes. They drive replicas
// manually — NewReplica without Start — so the exact message interleavings
// that trigger the bugs can be reproduced deterministically: handle() runs
// protocol steps synchronously, drain() delivers a replica's queued messages,
// and pumpAll() runs the network to quiescence.

// manualCluster builds a replica group whose event loops are NOT started;
// every message is delivered by the test via drain/pumpAll.
func manualCluster(t *testing.T, n int, model FaultModel) ([]*Replica, []*logApp, *Network) {
	t.Helper()
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	cfg := Config{ReplicaIDs: ids, Model: model, LeaderTimeout: time.Hour, CheckpointInterval: 1024}
	net := NewNetwork()
	replicas := make([]*Replica, n)
	apps := make([]*logApp, n)
	for _, id := range ids {
		apps[id] = &logApp{}
		r, err := NewReplica(id, cfg, apps[id], net)
		if err != nil {
			t.Fatalf("NewReplica(%d): %v", id, err)
		}
		replicas[id] = r
	}
	t.Cleanup(net.Close)
	return replicas, apps, net
}

// drain synchronously processes every message queued for r.
func drain(r *Replica) {
	for {
		select {
		case m := <-r.inbox:
			r.handle(m)
		default:
			return
		}
	}
}

// pumpAll delivers queued messages round-robin until the network is quiescent.
func pumpAll(replicas []*Replica) {
	for {
		idle := true
		for _, r := range replicas {
			select {
			case m := <-r.inbox:
				r.handle(m)
				idle = false
			default:
			}
		}
		if idle {
			return
		}
	}
}

func clientRequest(client string, id uint64, op string) message {
	return message{Type: msgRequest, From: -1, FromCli: client,
		Req: request{ClientID: client, ReqID: id, LowID: 1, Op: []byte(op)}}
}

// TestNewViewPreservesPreparedAssignments reproduces the view-change safety
// bug: request X commits and executes at sequence 1 on one replica, then a
// view change elects a leader holding another pending request Y. A leader
// that fills the seq-1 hole with an arbitrary pending request (Y sorts before
// X) diverges the group — the executed replica ignores the conflicting
// proposal while everyone else applies Y. The PBFT new-view rule re-proposes
// the prepared certificate (X) at its original sequence number, so all four
// replicas must converge to the same log.
func TestNewViewPreservesPreparedAssignments(t *testing.T) {
	replicas, apps, _ := manualCluster(t, 4, ByzantineFaults)
	r0, r1, r2, r3 := replicas[0], replicas[1], replicas[2], replicas[3]

	// X is proposed at seq 1 by the view-0 leader (r0). Deliver selectively so
	// that r0 and r3 reach prepared-but-not-executed, r1 stays unprepared, and
	// r2 alone collects a commit quorum and executes X at seq 1.
	r0.handle(clientRequest("zz", 1, "X"))
	drain(r1)
	drain(r3)
	drain(r0)
	drain(r2)
	if got := apps[2].Log(); len(got) != 1 || got[0] != "X" {
		t.Fatalf("choreography broken: r2 log = %v, want [X]", got)
	}
	if apps[0].Log() != nil || apps[1].Log() != nil || apps[3].Log() != nil {
		t.Fatalf("choreography broken: only r2 may have executed (r0=%v r1=%v r3=%v)",
			apps[0].Log(), apps[1].Log(), apps[3].Log())
	}

	// Y (client "aa" sorts before "zz") is pending at r1, the view-1 leader.
	r1.handle(clientRequest("aa", 1, "Y"))

	// View change to view 1 with vote quorum {0, 1, 3} — the executed replica
	// r2 is not consulted, so only the prepared certificates of r0/r3 tell the
	// new leader that seq 1 belongs to X.
	m0 := r0.viewChangeMsg(1)
	m3 := r3.viewChangeMsg(1)
	r1.handle(m0)
	r1.handle(m3)

	pumpAll(replicas)

	for i, app := range apps {
		got := app.Log()
		if len(got) != 2 || got[0] != "X" || got[1] != "Y" {
			t.Fatalf("replica %d log = %v, want [X Y] — new-view gap filling reassigned a committed sequence number", i, got)
		}
	}
}

// TestExecutionIgnoresReplyFloorTiming reproduces the determinism bug: a
// replica that learns a client's advanced resolution floor (via a later
// request's piggybacked LowID) before executing an earlier committed command
// must still execute it — all other replicas did, and skipping based on
// per-replica message timing forks the application state.
func TestExecutionIgnoresReplyFloorTiming(t *testing.T) {
	replicas, apps, _ := manualCluster(t, 3, CrashFaults)
	r0, r1 := replicas[0], replicas[1]

	// A commits at seq 1 and executes at r0 (replica 2's votes made that
	// possible) while r1 has everything still queued.
	r0.handle(clientRequest("c", 1, "A"))
	drain(replicas[2])
	drain(r0)
	if got := apps[0].Log(); len(got) != 1 || got[0] != "A" {
		t.Fatalf("choreography broken: r0 log = %v, want [A]", got)
	}

	// The client resolved A from r0's reply and issues request 2 advertising
	// LowID 2 ("everything below 2 is resolved"). It reaches r1 BEFORE r1 has
	// processed seq 1 — the floor advances ahead of execution there.
	req2 := clientRequest("c", 2, "B")
	req2.Req.LowID = 2
	r1.handle(req2)

	// Now r1 catches up on the ordered log. It must execute A at seq 1 even
	// though A is below the client's advertised floor.
	drain(r1)
	if got := apps[1].Log(); len(got) != 1 || got[0] != "A" {
		t.Fatalf("r1 log = %v, want [A] — committed command skipped because a retransmission advanced the reply floor first", got)
	}
}

// echoApp is a trivial deterministic application for batch tests.
type echoApp struct{}

func (echoApp) Execute(cmd []byte) []byte { return append([]byte("r:"), cmd...) }
func (echoApp) Snapshot() []byte          { return nil }
func (echoApp) Restore([]byte) error      { return nil }

// delayedBatchInvoker emulates a replica group wrapped in BatchApplication,
// with a fixed invocation latency and context sensitivity.
type delayedBatchInvoker struct {
	app   *BatchApplication
	delay time.Duration
}

func (d *delayedBatchInvoker) Invoke(ctx context.Context, op []byte) ([]byte, error) {
	select {
	case <-time.After(d.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return d.app.Execute(op), nil
}

// TestCoalescerFlusherCancellationDoesNotFailBatch pins the flush-context
// fix: the flusher's own cancellation (mid-linger) must not fail the other
// queued operations with the flusher's context error — the batch flushes
// under a context detached from any single caller.
func TestCoalescerFlusherCancellationDoesNotFailBatch(t *testing.T) {
	inv := &delayedBatchInvoker{app: NewBatchApplication(echoApp{}), delay: 20 * time.Millisecond}
	c := NewCoalescer(inv)
	c.MaxDelay = 300 * time.Millisecond

	flusherCtx, cancel := context.WithCancel(bg)
	flusherErr := make(chan error, 1)
	go func() {
		_, err := c.Invoke(flusherCtx, []byte("op-flusher"))
		flusherErr <- err
	}()
	time.Sleep(50 * time.Millisecond) // flusher is lingering

	type res struct {
		out []byte
		err error
	}
	followerRes := make(chan res, 1)
	go func() {
		out, err := c.Invoke(bg, []byte("op-follower"))
		followerRes <- res{out, err}
	}()
	time.Sleep(50 * time.Millisecond) // follower has joined the batch
	cancel()

	if err := <-flusherErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled flusher returned %v, want context.Canceled", err)
	}
	select {
	case r := <-followerRes:
		if r.err != nil {
			t.Fatalf("follower failed with %v — the flusher's cancellation must not abort the batch", r.err)
		}
		if string(r.out) != "r:op-follower" {
			t.Fatalf("follower result = %q, want %q", r.out, "r:op-follower")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower never completed after the flusher was cancelled")
	}
}

// TestDecodeBatchRejectsForgedCount pins the preallocation bound: a forged
// envelope advertising more operations than the payload could possibly hold
// must decode as malformed, not panic (or allocate gigabytes) inside
// Application.Execute on every replica at once.
func TestDecodeBatchRejectsForgedCount(t *testing.T) {
	forged := append([]byte(nil), batchMagic...)
	forged = binary.AppendUvarint(forged, 1<<40)
	forged = append(forged, 0x01, 'x')

	ops, isBatch := DecodeBatch(forged)
	if !isBatch {
		t.Fatal("envelope with batch magic not recognized as a batch")
	}
	if ops != nil {
		t.Fatalf("forged count decoded into %d ops, want malformed (nil)", len(ops))
	}
	// Replica side: executing the forged command must return, not crash.
	if out := NewBatchApplication(echoApp{}).Execute(forged); out == nil {
		t.Fatal("BatchApplication.Execute returned nil for a malformed envelope")
	}
}

// TestViewChangeCertificatesSurviveVoteReset checks the sticky prepared flag:
// after a new view resets an instance's vote maps, a subsequent view change
// must still certify the instance, or back-to-back view changes would lose
// the assignment a committed request depends on.
func TestViewChangeCertificatesSurviveVoteReset(t *testing.T) {
	replicas, _, _ := manualCluster(t, 4, ByzantineFaults)
	r0 := replicas[0]

	r0.handle(clientRequest("c", 1, "X"))
	// Prepares from the two peers complete r0's prepare quorum (with its own).
	digest := seccrypto.Hash([]byte("X"))
	r0.handle(message{Type: msgPrepare, From: 1, View: 0, Seq: 1, Digest: digest})
	r0.handle(message{Type: msgPrepare, From: 2, View: 0, Seq: 1, Digest: digest})

	certsOf := func(m message) int { return len(m.Prepared) }
	if got := certsOf(r0.viewChangeMsg(1)); got != 1 {
		t.Fatalf("prepared instance produced %d certificates, want 1", got)
	}
	// A new view resets the retained instance's votes; the certificate must
	// survive into the next view change.
	r0.handle(message{Type: msgNewView, From: 1, View: 1, LastExec: 0})
	inst := r0.instances[1]
	if inst == nil || len(inst.prepares) != 0 || !inst.prepared {
		t.Fatalf("retained instance votes not reset or prepared flag lost: %+v", inst)
	}
	if got := certsOf(r0.viewChangeMsg(2)); got != 1 {
		t.Fatalf("certificate lost after vote reset: %d certificates in second view change, want 1", got)
	}
}
