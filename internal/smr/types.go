// Package smr implements a leader-based state machine replication engine in
// the spirit of BFT-SMaRt, the replication library underlying DepSpace in the
// SCFS paper. It supports two fault models:
//
//   - Crash faults: 2f+1 replicas tolerate f crashes (the Zookeeper-like
//     configuration of the paper).
//   - Byzantine faults: 3f+1 replicas tolerate f arbitrary faults (the
//     DepSpace/BFT-SMaRt configuration), with clients accepting a result only
//     after f+1 matching replies.
//
// The engine totally orders client commands through a leader, executes them
// on a deterministic Application, and supports checkpointing and a simple
// view change to survive leader failure. Transports are pluggable; the
// in-memory transport in transport.go connects replicas within a process and
// can drop, delay, or corrupt messages for fault-injection tests.
package smr

import (
	"fmt"
	"time"
)

// FaultModel selects the replication protocol variant.
type FaultModel int

const (
	// CrashFaults requires n >= 2f+1 replicas.
	CrashFaults FaultModel = iota
	// ByzantineFaults requires n >= 3f+1 replicas.
	ByzantineFaults
)

// String implements fmt.Stringer.
func (m FaultModel) String() string {
	switch m {
	case CrashFaults:
		return "crash"
	case ByzantineFaults:
		return "byzantine"
	default:
		return fmt.Sprintf("FaultModel(%d)", int(m))
	}
}

// QuorumSize returns the number of matching votes needed to make progress for
// n replicas under this fault model.
func (m FaultModel) QuorumSize(n int) int {
	switch m {
	case ByzantineFaults:
		f := (n - 1) / 3
		return 2*f + 1
	default:
		return n/2 + 1
	}
}

// MaxFaults returns the number of replica failures tolerated with n replicas.
func (m FaultModel) MaxFaults(n int) int {
	switch m {
	case ByzantineFaults:
		return (n - 1) / 3
	default:
		return (n - 1) / 2
	}
}

// ReplyQuorum returns the number of matching replies a client must collect.
func (m FaultModel) ReplyQuorum(n int) int {
	if m == ByzantineFaults {
		return m.MaxFaults(n) + 1
	}
	return 1
}

// Application is the deterministic service replicated by the engine. All
// methods are invoked from a single goroutine per replica.
type Application interface {
	// Execute applies a totally ordered command and returns its reply.
	Execute(cmd []byte) []byte
	// Snapshot serializes the full application state for checkpoint transfer.
	Snapshot() []byte
	// Restore replaces the application state with a snapshot.
	Restore(snapshot []byte) error
}

// Config describes a replica group.
type Config struct {
	// ReplicaIDs lists the members; order is significant (leader rotation).
	ReplicaIDs []int
	// Model is the fault model.
	Model FaultModel
	// LeaderTimeout is how long a follower waits for a pending request to be
	// ordered before suspecting the leader. Zero selects a default.
	LeaderTimeout time.Duration
	// CheckpointInterval is the number of executed commands between
	// checkpoints. Zero selects a default.
	CheckpointInterval int
}

func (c Config) withDefaults() Config {
	if c.LeaderTimeout == 0 {
		c.LeaderTimeout = 250 * time.Millisecond
	}
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = 128
	}
	return c
}

// N returns the group size.
func (c Config) N() int { return len(c.ReplicaIDs) }

// Validate checks the configuration against the fault model requirements.
func (c Config) Validate() error {
	n := c.N()
	if n == 0 {
		return fmt.Errorf("smr: empty replica group")
	}
	switch c.Model {
	case ByzantineFaults:
		if n < 4 {
			return fmt.Errorf("smr: byzantine model needs at least 4 replicas, got %d", n)
		}
	case CrashFaults:
		if n < 1 {
			return fmt.Errorf("smr: crash model needs at least 1 replica, got %d", n)
		}
	default:
		return fmt.Errorf("smr: unknown fault model %v", c.Model)
	}
	return nil
}

// LeaderFor returns the replica ID acting as leader in the given view.
func (c Config) LeaderFor(view int) int {
	return c.ReplicaIDs[view%len(c.ReplicaIDs)]
}

// msgType enumerates protocol messages.
type msgType int

const (
	msgRequest msgType = iota
	msgPrePrepare
	msgPrepare
	msgCommit
	msgReply
	msgViewChange
	msgNewView
	msgStateRequest
	msgStateReply
)

func (t msgType) String() string {
	switch t {
	case msgRequest:
		return "REQUEST"
	case msgPrePrepare:
		return "PRE-PREPARE"
	case msgPrepare:
		return "PREPARE"
	case msgCommit:
		return "COMMIT"
	case msgReply:
		return "REPLY"
	case msgViewChange:
		return "VIEW-CHANGE"
	case msgNewView:
		return "NEW-VIEW"
	case msgStateRequest:
		return "STATE-REQUEST"
	case msgStateReply:
		return "STATE-REPLY"
	default:
		return fmt.Sprintf("msgType(%d)", int(t))
	}
}

// request uniquely identifies a client command.
type request struct {
	ClientID string
	ReqID    uint64
	// LowID is the client's lowest unresolved request ID when this message
	// was sent — a piggybacked cumulative acknowledgement that every ID below
	// it is resolved (completed or abandoned) and will never be retransmitted.
	// Replicas prune their reply records below it; it is advisory for
	// ordering (not part of the command digest, since retransmissions carry
	// fresher values).
	LowID uint64
	Op    []byte
}

func (r request) key() string { return fmt.Sprintf("%s/%d", r.ClientID, r.ReqID) }

// message is the single envelope exchanged between replicas and clients.
type message struct {
	Type    msgType
	From    int    // replica ID, or -1 for clients
	FromCli string // client ID for requests
	View    int
	Seq     uint64
	Digest  string
	Req     request
	Result  []byte
	// View change support.
	LastExec   uint64
	HighestSeq uint64
	Checkpoint []byte
	Pending    []request
	// Prepared carries the sender's prepared certificates in a VIEW-CHANGE
	// message, so the new leader re-proposes certified requests at their
	// original sequence numbers (the PBFT new-view rule) instead of guessing
	// an assignment that could contradict what other replicas committed.
	Prepared []preparedCert
	// State transfer support: the sender's client reply records as of the
	// checkpoint, so the receiver can keep deduplicating retransmissions after
	// jumping over the executions it missed.
	ClientReplies map[string]clientReplySnapshot
}

// preparedCert certifies that an instance reached the prepare quorum at the
// sender: a pre-prepare plus matching prepares for (Seq, Digest). Any request
// that committed anywhere was prepared at a quorum, so every view-change
// quorum intersects that prepare quorum in at least one correct replica —
// collecting the certificates of a view-change quorum is enough for the new
// leader to learn every sequence-number assignment it must preserve.
type preparedCert struct {
	Seq    uint64
	Digest string
	Req    request
}

// clientReplySnapshot carries one client's reply record in a state transfer.
type clientReplySnapshot struct {
	Results map[uint64][]byte
	Floor   uint64
}

// Reply is delivered to clients.
type Reply struct {
	ReqID   uint64
	Replica int
	View    int
	Result  []byte
}
