package smr

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// logApp is a deterministic test application: it appends every command to a
// log and returns "<index>:<command>".
type logApp struct {
	mu  sync.Mutex
	log []string
}

var bg = context.Background()

func (a *logApp) Execute(cmd []byte) []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.log = append(a.log, string(cmd))
	return []byte(fmt.Sprintf("%d:%s", len(a.log), cmd))
}

func (a *logApp) Snapshot() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	b, _ := json.Marshal(a.log)
	return b
}

func (a *logApp) Restore(snapshot []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return json.Unmarshal(snapshot, &a.log)
}

func (a *logApp) Log() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.log...)
}

type cluster struct {
	cfg      Config
	net      *Network
	replicas []*Replica
	apps     []*logApp
}

func newCluster(t *testing.T, n int, model FaultModel) *cluster {
	t.Helper()
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	cfg := Config{ReplicaIDs: ids, Model: model, LeaderTimeout: 150 * time.Millisecond, CheckpointInterval: 16}
	net := NewNetwork()
	c := &cluster{cfg: cfg, net: net}
	for _, id := range ids {
		app := &logApp{}
		r, err := NewReplica(id, cfg, app, net)
		if err != nil {
			t.Fatalf("NewReplica(%d): %v", id, err)
		}
		c.replicas = append(c.replicas, r)
		c.apps = append(c.apps, app)
		r.Start()
	}
	t.Cleanup(func() {
		for _, r := range c.replicas {
			r.Stop()
		}
		net.Close()
	})
	return c
}

func (c *cluster) client(id string) *Client {
	cl := NewClient(id, c.cfg, c.net)
	cl.RequestTimeout = 5 * time.Second
	cl.RetryInterval = 50 * time.Millisecond
	return cl
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{ReplicaIDs: []int{0, 1, 2}, Model: CrashFaults}).Validate(); err != nil {
		t.Errorf("3-replica crash config rejected: %v", err)
	}
	if err := (Config{ReplicaIDs: []int{0, 1, 2}, Model: ByzantineFaults}).Validate(); err == nil {
		t.Error("3-replica byzantine config accepted, want error")
	}
	if err := (Config{Model: CrashFaults}).Validate(); err == nil {
		t.Error("empty config accepted, want error")
	}
	if _, err := NewReplica(9, Config{ReplicaIDs: []int{0, 1, 2}, Model: CrashFaults}, &logApp{}, NewNetwork()); err == nil {
		t.Error("replica not in configuration accepted, want error")
	}
}

func TestQuorumSizes(t *testing.T) {
	cases := []struct {
		model  FaultModel
		n      int
		quorum int
		faults int
		reply  int
	}{
		{CrashFaults, 3, 2, 1, 1},
		{CrashFaults, 5, 3, 2, 1},
		{ByzantineFaults, 4, 3, 1, 2},
		{ByzantineFaults, 7, 5, 2, 3},
	}
	for _, c := range cases {
		if got := c.model.QuorumSize(c.n); got != c.quorum {
			t.Errorf("%v QuorumSize(%d) = %d, want %d", c.model, c.n, got, c.quorum)
		}
		if got := c.model.MaxFaults(c.n); got != c.faults {
			t.Errorf("%v MaxFaults(%d) = %d, want %d", c.model, c.n, got, c.faults)
		}
		if got := c.model.ReplyQuorum(c.n); got != c.reply {
			t.Errorf("%v ReplyQuorum(%d) = %d, want %d", c.model, c.n, got, c.reply)
		}
	}
}

func TestFaultModelString(t *testing.T) {
	if CrashFaults.String() != "crash" || ByzantineFaults.String() != "byzantine" {
		t.Fatal("unexpected FaultModel string values")
	}
}

func TestCrashModeBasicOrdering(t *testing.T) {
	c := newCluster(t, 3, CrashFaults)
	cl := c.client("client-1")
	defer cl.Close()
	for i := 0; i < 10; i++ {
		cmd := fmt.Sprintf("cmd-%d", i)
		res, err := cl.Invoke(bg, []byte(cmd))
		if err != nil {
			t.Fatalf("Invoke(%s): %v", cmd, err)
		}
		want := fmt.Sprintf("%d:%s", i+1, cmd)
		if string(res) != want {
			t.Fatalf("result = %q, want %q", res, want)
		}
	}
	waitForConvergence(t, c, 10)
}

func TestByzantineModeBasicOrdering(t *testing.T) {
	c := newCluster(t, 4, ByzantineFaults)
	cl := c.client("client-1")
	defer cl.Close()
	for i := 0; i < 5; i++ {
		res, err := cl.Invoke(bg, []byte(fmt.Sprintf("op%d", i)))
		if err != nil {
			t.Fatalf("Invoke: %v", err)
		}
		if string(res) != fmt.Sprintf("%d:op%d", i+1, i) {
			t.Fatalf("unexpected result %q", res)
		}
	}
	waitForConvergence(t, c, 5)
}

func TestByzantineReplicaRepliesAreOutvoted(t *testing.T) {
	c := newCluster(t, 4, ByzantineFaults)
	// Replica 2 lies in its replies; with f=1 the client needs 2 matching
	// replies, which the 3 correct replicas provide.
	c.replicas[2].SetByzantine(true)
	cl := c.client("client-1")
	defer cl.Close()
	res, err := cl.Invoke(bg, []byte("important"))
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if string(res) != "1:important" {
		t.Fatalf("client accepted a corrupted result: %q", res)
	}
}

func TestCrashOfFollowerDoesNotBlockProgress(t *testing.T) {
	c := newCluster(t, 3, CrashFaults)
	cl := c.client("client-1")
	defer cl.Close()
	if _, err := cl.Invoke(bg, []byte("before")); err != nil {
		t.Fatal(err)
	}
	// Disconnect a follower (replica 1; leader of view 0 is replica 0).
	c.net.Disconnect(1)
	for i := 0; i < 5; i++ {
		if _, err := cl.Invoke(bg, []byte(fmt.Sprintf("after-%d", i))); err != nil {
			t.Fatalf("Invoke with one follower down: %v", err)
		}
	}
}

func TestLeaderFailureTriggersViewChange(t *testing.T) {
	c := newCluster(t, 3, CrashFaults)
	cl := c.client("client-1")
	defer cl.Close()
	if _, err := cl.Invoke(bg, []byte("warmup")); err != nil {
		t.Fatal(err)
	}
	// Kill the leader of view 0 (replica 0).
	c.net.Disconnect(0)
	start := time.Now()
	res, err := cl.Invoke(bg, []byte("after-leader-crash"))
	if err != nil {
		t.Fatalf("Invoke after leader crash: %v (took %v)", err, time.Since(start))
	}
	if string(res) != "2:after-leader-crash" {
		t.Fatalf("unexpected result %q", res)
	}
	// The surviving replicas must have moved past view 0.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if c.replicas[1].CurrentView() > 0 && c.replicas[2].CurrentView() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("view change not observed: views = %d, %d",
				c.replicas[1].CurrentView(), c.replicas[2].CurrentView())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestByzantineLeaderCrashViewChange(t *testing.T) {
	c := newCluster(t, 4, ByzantineFaults)
	cl := c.client("client-1")
	defer cl.Close()
	if _, err := cl.Invoke(bg, []byte("warmup")); err != nil {
		t.Fatal(err)
	}
	c.net.Disconnect(0)
	if _, err := cl.Invoke(bg, []byte("post-crash")); err != nil {
		t.Fatalf("Invoke after BFT leader crash: %v", err)
	}
}

func TestDuplicateRequestsExecuteOnce(t *testing.T) {
	c := newCluster(t, 3, CrashFaults)
	cl := c.client("client-1")
	cl.RetryInterval = 10 * time.Millisecond // force aggressive retransmission
	defer cl.Close()
	for i := 0; i < 5; i++ {
		if _, err := cl.Invoke(bg, []byte(fmt.Sprintf("x%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// All replicas are connected, so they must all converge to exactly 5
	// executions — no more (duplicates suppressed), no fewer.
	deadline := time.Now().Add(5 * time.Second)
	for {
		all := true
		for _, r := range c.replicas {
			if r.ExecutedCommands() < 5 {
				all = false
			}
		}
		if all || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i, app := range c.apps {
		if len(app.Log()) != 5 {
			t.Fatalf("replica %d executed %d commands, want exactly 5 (duplicates not suppressed)", i, len(app.Log()))
		}
	}
}

func TestConcurrentClientsConvergeToSameOrder(t *testing.T) {
	c := newCluster(t, 3, CrashFaults)
	const clients = 4
	const perClient = 10
	var wg sync.WaitGroup
	wg.Add(clients)
	for ci := 0; ci < clients; ci++ {
		go func(ci int) {
			defer wg.Done()
			cl := c.client(fmt.Sprintf("client-%d", ci))
			defer cl.Close()
			for i := 0; i < perClient; i++ {
				if _, err := cl.Invoke(bg, []byte(fmt.Sprintf("c%d-op%d", ci, i))); err != nil {
					t.Errorf("client %d invoke %d: %v", ci, i, err)
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	waitForAll(t, c, clients*perClient)
	// All replicas must have identical logs (total order).
	ref := c.apps[0].Log()
	for i := 1; i < len(c.apps); i++ {
		log := c.apps[i].Log()
		if len(log) != len(ref) {
			t.Fatalf("replica %d log length %d != %d", i, len(log), len(ref))
		}
		for j := range ref {
			if log[j] != ref[j] {
				t.Fatalf("replica %d diverges at %d: %q vs %q", i, j, log[j], ref[j])
			}
		}
	}
}

func TestClientTimeoutWhenGroupUnreachable(t *testing.T) {
	c := newCluster(t, 3, CrashFaults)
	for _, id := range c.cfg.ReplicaIDs {
		c.net.Disconnect(id)
	}
	cl := c.client("client-1")
	cl.RequestTimeout = 300 * time.Millisecond
	defer cl.Close()
	if _, err := cl.Invoke(bg, []byte("nobody-home")); err == nil {
		t.Fatal("Invoke succeeded with all replicas disconnected")
	}
}

func TestClientClosedRejectsInvoke(t *testing.T) {
	c := newCluster(t, 3, CrashFaults)
	cl := c.client("client-1")
	cl.Close()
	if _, err := cl.Invoke(bg, []byte("x")); err == nil {
		t.Fatal("Invoke on closed client succeeded")
	}
}

func TestNetworkDelayStillMakesProgress(t *testing.T) {
	c := newCluster(t, 3, CrashFaults)
	c.net.SetDelay(5 * time.Millisecond)
	cl := c.client("client-1")
	defer cl.Close()
	if _, err := cl.Invoke(bg, []byte("delayed")); err != nil {
		t.Fatalf("Invoke with network delay: %v", err)
	}
}

func TestEqualResultsHelper(t *testing.T) {
	if !equalResults([]byte("a"), []byte("a")) || equalResults([]byte("a"), []byte("b")) {
		t.Fatal("equalResults misbehaves")
	}
}

// waitForConvergence waits until a quorum of replicas have executed at least
// n commands. Disconnected replicas cannot converge so we only require a
// majority.
func waitForConvergence(t *testing.T, c *cluster, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		converged := 0
		for _, r := range c.replicas {
			if int(r.ExecutedCommands()) >= n {
				converged++
			}
		}
		if converged >= c.cfg.Model.QuorumSize(c.cfg.N()) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas did not converge to %d executed commands", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitForAll waits until every replica has executed at least n commands.
// Only use it when all replicas are connected.
func waitForAll(t *testing.T, c *cluster, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		all := true
		for _, r := range c.replicas {
			if int(r.ExecutedCommands()) < n {
				all = false
				break
			}
		}
		if all {
			return
		}
		if time.Now().After(deadline) {
			counts := make([]int64, len(c.replicas))
			for i, r := range c.replicas {
				counts[i] = r.ExecutedCommands()
			}
			t.Fatalf("replicas did not all reach %d executed commands: %v", n, counts)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func BenchmarkCrashInvoke(b *testing.B) {
	ids := []int{0, 1, 2}
	cfg := Config{ReplicaIDs: ids, Model: CrashFaults}
	net := NewNetwork()
	for _, id := range ids {
		r, err := NewReplica(id, cfg, &logApp{}, net)
		if err != nil {
			b.Fatal(err)
		}
		r.Start()
		defer r.Stop()
	}
	cl := NewClient("bench", cfg, net)
	defer cl.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Invoke(bg, []byte("op")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkByzantineInvoke(b *testing.B) {
	ids := []int{0, 1, 2, 3}
	cfg := Config{ReplicaIDs: ids, Model: ByzantineFaults}
	net := NewNetwork()
	for _, id := range ids {
		r, err := NewReplica(id, cfg, &logApp{}, net)
		if err != nil {
			b.Fatal(err)
		}
		r.Start()
		defer r.Stop()
	}
	cl := NewClient("bench", cfg, net)
	defer cl.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Invoke(bg, []byte("op")); err != nil {
			b.Fatal(err)
		}
	}
}
