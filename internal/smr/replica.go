package smr

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"scfs/internal/seccrypto"
)

// Replica is one member of a replicated state machine group. Protocol state
// is confined to the run goroutine; public methods communicate with it via
// the inbox or dedicated control channels.
type Replica struct {
	id  int
	cfg Config
	app Application
	net Transport

	inbox    chan message
	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}

	// Mutable protocol state, owned by run().
	view       int
	nextSeq    uint64
	lastExec   uint64
	highestSeq uint64
	instances  map[uint64]*instance
	pending    map[string]pendingReq
	lastReply  map[string]*clientRecord
	vcVotes    map[int]*viewChangeTally

	// Checkpointing.
	lastCheckpointSeq uint64
	lastCheckpoint    []byte
	// lastTickExec is lastExec as of the previous liveness tick; an unchanged
	// value with assigned sequence numbers ahead means execution is stalled
	// and needs repair (see checkStalled).
	lastTickExec uint64
	// lastStateReq throttles outgoing state requests: a full snapshot is
	// expensive to serve, so a stalled replica asks at most once a second.
	lastStateReq time.Time
	// lastLeaderSeen is when this replica last heard from the current view's
	// leader; leader suspicion is driven by leader silence, not by slow
	// progress (see checkLeaderLiveness). lastProgress is when lastExec last
	// advanced — the backstop for replacing a live but permanently stuck
	// leader.
	lastLeaderSeen time.Time
	lastProgress   time.Time
	// stateReplyCache and stateReplyClients memoize the marshaled snapshot
	// and reply-record copy served at stateReplySeq, so a burst of stalled
	// peers does not re-serialize the application (or re-copy every retained
	// reply) once per request.
	stateReplySeq     uint64
	stateReplyCache   []byte
	stateReplyClients map[string]clientReplySnapshot

	// Test hooks and observability, protected by statsMu.
	statsMu      sync.Mutex
	byzantine    bool
	executed     int64
	viewSnapshot int
	execSnapshot uint64
}

type pendingReq struct {
	req     request
	arrival time.Time
}

// pruneStride amortizes reply-record pruning: the results map is swept only
// after the client's resolution floor advances this far, so steady-state
// requests do not rescan it. Retained replies can be large (a coalesced
// batch reply holds every result in the batch), so the stride trades a
// slightly more frequent O(map) sweep for a much smaller retained set.
const pruneStride = 128

// clientRecord remembers the replies owed to one client. A pipelined client
// keeps many requests outstanding and they complete out of order -- a single
// delayed request can trail the client's newest completed ID by an unbounded
// distance while the other window slots recycle -- so no window heuristic
// over request IDs can say which replies are still needed. Instead the client
// piggybacks its lowest unresolved ID (request.LowID) on every request:
// everything below that floor is provably resolved and prunable, everything
// at or above it is retained for at-most-once dedup and reply retransmission.
type clientRecord struct {
	results  map[uint64][]byte
	floor    uint64 // lowest possibly-unresolved ID advertised by the client
	prunedTo uint64
}

// observeLow advances the resolution floor from a request's piggybacked
// cumulative ack and periodically prunes replies below it.
func (c *clientRecord) observeLow(low uint64) {
	if low <= c.floor {
		return
	}
	c.floor = low
	if c.floor-c.prunedTo >= pruneStride {
		for id := range c.results {
			if id < c.floor {
				delete(c.results, id)
			}
		}
		c.prunedTo = c.floor
	}
}

// recall returns the recorded reply for reqID, if the record still holds it.
func (c *clientRecord) recall(reqID uint64) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	res, ok := c.results[reqID]
	return res, ok
}

// stale reports whether reqID is resolved at the client: either its reply was
// recorded and since pruned, or the client abandoned it. Stale requests are
// dropped rather than executed -- re-executing would break at-most-once, and
// nobody is waiting for the reply.
func (c *clientRecord) stale(reqID uint64) bool {
	return c != nil && reqID < c.floor
}

// record stores a reply.
func (c *clientRecord) record(reqID uint64, result []byte) {
	if c.results == nil {
		c.results = make(map[uint64][]byte)
	}
	c.results[reqID] = result
}

type instance struct {
	req      request
	digest   string
	hasReq   bool
	prepares map[int]bool
	commits  map[int]bool
	sentPrep bool
	sentComm bool
	executed bool
	// prepared is sticky: it records that (seq, digest) once reached the
	// prepare quorum, and survives the vote-map reset at a view change. It is
	// what a VIEW-CHANGE message certifies — the request may have committed
	// somewhere, so its sequence-number assignment must be preserved.
	prepared bool
}

// viewChangeTally accumulates one prospective view's VIEW-CHANGE votes: who
// voted, the prepared certificates they carried, and the highest executed
// prefix any voter reported. The certificates and maxExec are what the new
// leader needs to fill the log without contradicting prior views (onNewView).
type viewChangeTally struct {
	votes   map[int]bool
	certs   map[uint64]preparedCert
	maxExec uint64
}

// NewReplica creates a replica and registers it with the network. Call Start
// to launch its event loop.
func NewReplica(id int, cfg Config, app Application, net *Network) (*Replica, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	found := false
	for _, rid := range cfg.ReplicaIDs {
		if rid == id {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("smr: replica %d not in configuration %v", id, cfg.ReplicaIDs)
	}
	r := &Replica{
		id:        id,
		cfg:       cfg,
		app:       app,
		net:       net,
		inbox:     make(chan message, 4096),
		stopCh:    make(chan struct{}),
		doneCh:    make(chan struct{}),
		nextSeq:   1,
		instances: make(map[uint64]*instance),
		pending:   make(map[string]pendingReq),
		lastReply: make(map[string]*clientRecord),
		vcVotes:   make(map[int]*viewChangeTally),
	}
	net.registerReplica(id, r.inbox)
	return r, nil
}

// ID returns the replica identifier.
func (r *Replica) ID() int { return r.id }

// Start launches the replica's event loop.
func (r *Replica) Start() { go r.run() }

// Stop terminates the event loop. It is idempotent, so a test that crashes
// a replica mid-scenario can still run the group's blanket teardown.
func (r *Replica) Stop() {
	r.stopOnce.Do(func() { close(r.stopCh) })
	<-r.doneCh
}

// SetByzantine makes the replica return corrupted results to clients (test
// hook exercising the BFT reply-voting path).
func (r *Replica) SetByzantine(b bool) {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	r.byzantine = b
}

func (r *Replica) isByzantine() bool {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	return r.byzantine
}

// ExecutedCommands reports how many commands this replica has executed.
func (r *Replica) ExecutedCommands() int64 {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	return r.executed
}

// CurrentView returns the replica's current view (test observability). It is
// safe to call concurrently but the value may be immediately stale.
func (r *Replica) CurrentView() int {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	return r.viewSnapshot
}

// Progress returns the replica's current view and the highest executed
// sequence number — the observability needed to tell a stalled group (no
// replica advances) from a diverged one (replicas advance but clients
// starve). Safe to call concurrently; values may be immediately stale.
func (r *Replica) Progress() (view int, lastExec uint64) {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	return r.viewSnapshot, r.execSnapshot
}

// setExecSnapshot mirrors lastExec for concurrent readers; called by run().
func (r *Replica) setExecSnapshot(seq uint64) {
	r.statsMu.Lock()
	r.execSnapshot = seq
	r.statsMu.Unlock()
}

// setViewSnapshot mirrors view for concurrent readers; called by run().
func (r *Replica) setViewSnapshot(v int) {
	r.statsMu.Lock()
	r.viewSnapshot = v
	r.statsMu.Unlock()
}

func (r *Replica) isLeader() bool { return r.cfg.LeaderFor(r.view) == r.id }

func (r *Replica) run() {
	defer close(r.doneCh)
	ticker := time.NewTicker(r.cfg.LeaderTimeout / 2)
	defer ticker.Stop()
	r.setViewSnapshot(r.view)
	r.lastLeaderSeen = time.Now()
	r.lastProgress = time.Now()
	for {
		select {
		case <-r.stopCh:
			return
		case m := <-r.inbox:
			r.handle(m)
		case <-ticker.C:
			r.checkLeaderLiveness()
			r.checkStalled()
		}
	}
}

// broadcast sends m to the peer replicas and processes the local copy
// synchronously. A replica's own proposals and votes must never be lost to
// transport drops — a prepare that fails to reach its own caster silently
// breaks quorum accounting in ways no retransmission repairs — so loopback
// does not traverse the (lossy) network. The inline self-handling recurses
// through handle (a pre-prepare triggers our prepare, which may complete a
// quorum and trigger our commit); the chain is bounded by the protocol's
// phase count.
func (r *Replica) broadcast(m message) {
	r.net.Broadcast(m)
	r.handle(m)
}

func (r *Replica) handle(m message) {
	switch m.Type {
	case msgRequest:
		r.onRequest(m)
	case msgPrePrepare:
		r.onPrePrepare(m)
	case msgPrepare:
		r.onPrepare(m)
	case msgCommit:
		r.onCommit(m)
	case msgViewChange:
		r.onViewChange(m)
	case msgNewView:
		r.onNewView(m)
	case msgStateRequest:
		r.onStateRequest(m)
	case msgStateReply:
		r.onStateReply(m)
	}
}

// --- normal case operation ---

func (r *Replica) onRequest(m message) {
	req := m.Req
	key := req.key()
	// At-most-once execution: if this request was already executed, resend
	// the recorded reply; ancient duplicates that fell out of the reply
	// window are dropped.
	rec := r.lastReply[req.ClientID]
	if rec == nil {
		rec = &clientRecord{}
		r.lastReply[req.ClientID] = rec
	}
	rec.observeLow(req.LowID)
	if result, ok := rec.recall(req.ReqID); ok {
		r.sendReply(req, result)
		return
	}
	if rec.stale(req.ReqID) {
		return
	}
	if _, ok := r.pending[key]; !ok {
		r.pending[key] = pendingReq{req: req, arrival: time.Now()}
	}
	if r.isLeader() {
		r.propose(req)
	}
}

func (r *Replica) propose(req request) {
	// Never propose a request twice: a second arrival is a client
	// retransmission, and the existing instance is repaired by the stall tick
	// (checkStalled), not here — re-driving per retransmission amplifies
	// repair traffic quadratically under load (every duplicate triggers a
	// pre-prepare broadcast, and every receiver re-affirms with two more).
	for _, inst := range r.instances {
		if inst.hasReq && inst.req.key() == req.key() && !inst.executed {
			return
		}
	}
	seq := r.nextSeq
	r.nextSeq++
	m := message{
		Type:   msgPrePrepare,
		From:   r.id,
		View:   r.view,
		Seq:    seq,
		Digest: seccrypto.Hash(req.Op),
		Req:    req,
	}
	r.broadcast(m)
}

func (r *Replica) getInstance(seq uint64) *instance {
	inst, ok := r.instances[seq]
	if !ok {
		inst = &instance{prepares: make(map[int]bool), commits: make(map[int]bool)}
		r.instances[seq] = inst
	}
	return inst
}

func (r *Replica) onPrePrepare(m message) {
	if m.View != r.view || m.From != r.cfg.LeaderFor(r.view) {
		return
	}
	r.lastLeaderSeen = time.Now()
	if seccrypto.Hash(m.Req.Op) != m.Digest {
		return // malformed or tampered proposal
	}
	if m.Seq <= r.lastExec {
		// Already executed here. The leader only re-sends a pre-prepare when
		// re-driving a stalled instance for some lagging replica, so re-affirm
		// our prepare and commit (recipients tolerate duplicates) — executed
		// instances are retained until the next checkpoint for exactly this.
		if inst, ok := r.instances[m.Seq]; ok && inst.executed && inst.digest == m.Digest {
			r.broadcast(message{Type: msgPrepare, From: r.id, View: r.view, Seq: m.Seq, Digest: m.Digest})
			r.broadcast(message{Type: msgCommit, From: r.id, View: r.view, Seq: m.Seq, Digest: m.Digest})
		}
		return
	}
	inst := r.getInstance(m.Seq)
	if inst.hasReq && inst.digest != m.Digest {
		return // conflicting proposal for the same sequence number
	}
	inst.req = m.Req
	inst.digest = m.Digest
	inst.hasReq = true
	if m.Seq > r.highestSeq {
		r.highestSeq = m.Seq
	}
	if m.Seq >= r.nextSeq {
		r.nextSeq = m.Seq + 1
	}
	// On the first pre-prepare this sends our prepare; on a re-driven
	// duplicate it re-sends it (and our commit, if any) in case the originals
	// were lost — vote maps make duplicates idempotent at the recipients.
	inst.sentPrep = true
	r.broadcast(message{Type: msgPrepare, From: r.id, View: r.view, Seq: m.Seq, Digest: m.Digest})
	if inst.sentComm {
		r.broadcast(message{Type: msgCommit, From: r.id, View: r.view, Seq: m.Seq, Digest: m.Digest})
	}
	r.maybeAdvance(m.Seq)
}

func (r *Replica) onPrepare(m message) {
	if m.View != r.view || m.Seq <= r.lastExec {
		return
	}
	inst := r.getInstance(m.Seq)
	inst.prepares[m.From] = true
	r.maybeAdvance(m.Seq)
}

func (r *Replica) onCommit(m message) {
	if m.View != r.view || m.Seq <= r.lastExec {
		return
	}
	inst := r.getInstance(m.Seq)
	inst.commits[m.From] = true
	r.maybeAdvance(m.Seq)
}

// maybeAdvance drives an instance through the prepare/commit phases and then
// executes committed instances in sequence order.
func (r *Replica) maybeAdvance(seq uint64) {
	inst := r.instances[seq]
	if inst == nil {
		return
	}
	quorum := r.cfg.Model.QuorumSize(r.cfg.N())
	if inst.hasReq && len(inst.prepares) >= quorum {
		inst.prepared = true
		if !inst.sentComm {
			inst.sentComm = true
			r.broadcast(message{Type: msgCommit, From: r.id, View: r.view, Seq: seq, Digest: inst.digest})
		}
	}
	r.executeReady()
}

// executeReady executes all committed instances whose predecessors have been
// executed.
func (r *Replica) executeReady() {
	quorum := r.cfg.Model.QuorumSize(r.cfg.N())
	start := r.lastExec
	defer func() {
		if r.lastExec != start {
			r.setExecSnapshot(r.lastExec)
		}
	}()
	for {
		next := r.lastExec + 1
		inst, ok := r.instances[next]
		if !ok || !inst.hasReq || inst.executed || len(inst.commits) < quorum || !inst.sentComm {
			return
		}
		inst.executed = true
		r.lastExec = next
		req := inst.req
		if req.ClientID == "" {
			// Null command filling a view-change gap: it advances the log and
			// nothing else — no execution, no reply.
			continue
		}
		key := req.key()
		delete(r.pending, key)

		rec := r.lastReply[req.ClientID]
		if rec == nil {
			rec = &clientRecord{}
			r.lastReply[req.ClientID] = rec
		}
		rec.observeLow(req.LowID)
		result, executedBefore := rec.recall(req.ReqID)
		if !executedBefore {
			// Apply unconditionally: whether a committed command executes must
			// be a pure function of the ordered log, never of the client's
			// resolution floor — the floor rides on retransmissions and
			// advances at different replicas at different times, so gating
			// execution on it would let replicas diverge on the same sequence
			// number. The floor's only jobs are pruning stored replies and
			// muting the reply send below; at-most-once across instances is
			// guarded at proposal time instead (onRequest, onViewChange and
			// onNewView all refuse to re-propose a resolved request).
			result = r.app.Execute(req.Op)
			rec.record(req.ReqID, result)
			r.statsMu.Lock()
			r.executed++
			r.statsMu.Unlock()
		}
		if !rec.stale(req.ReqID) {
			r.sendReply(req, result)
		}
		// Executed instances are retained until the next checkpoint: the
		// leader can re-drive them for lagging replicas (see onPrePrepare).
		if r.lastExec-r.lastCheckpointSeq >= uint64(r.cfg.CheckpointInterval) {
			r.lastCheckpointSeq = r.lastExec
			r.lastCheckpoint = r.app.Snapshot()
			for seq, inst := range r.instances {
				if inst.executed && seq <= r.lastCheckpointSeq {
					delete(r.instances, seq)
				}
			}
		}
	}
}

func (r *Replica) sendReply(req request, result []byte) {
	out := result
	if r.isByzantine() {
		out = append([]byte("corrupted:"), result...)
	}
	r.net.SendToClient(req.ClientID, Reply{ReqID: req.ReqID, Replica: r.id, View: r.view, Result: out})
}

// --- view change ---

// stuckLeaderFactor scales LeaderTimeout into the backstop deadline for
// replacing a leader that keeps talking but never makes progress. A view
// change destroys every in-flight instance, so while the leader is audibly
// re-driving repair it deserves several timeouts of patience; only persistent
// stagnation justifies the disruption.
const stuckLeaderFactor = 8

func (r *Replica) checkLeaderLiveness() {
	if r.isLeader() || len(r.pending) == 0 {
		return
	}
	// A loaded-but-live leader is not a faulty leader: when execution is
	// advancing, old pending requests mean queueing, not leader failure, and
	// a view change would only add disruption. Only suspect when the log has
	// stopped moving (lastTickExec is refreshed by checkStalled each tick).
	if r.lastExec != r.lastTickExec {
		return
	}
	oldest := time.Now()
	for _, p := range r.pending {
		if p.arrival.Before(oldest) {
			oldest = p.arrival
		}
	}
	if time.Since(oldest) < r.cfg.LeaderTimeout {
		return
	}
	// Suspicion is driven by leader *silence*, not slowness: a leader whose
	// pre-prepares are still arriving is alive and (with checkStalled)
	// re-driving repair, and deposing it resets that repair. A crashed or
	// partitioned leader goes quiet and is replaced after one LeaderTimeout,
	// exactly as before; a live-but-wedged leader is replaced only after the
	// stuckLeaderFactor backstop expires with no execution progress at all.
	if time.Since(r.lastLeaderSeen) < r.cfg.LeaderTimeout &&
		time.Since(r.lastProgress) < stuckLeaderFactor*r.cfg.LeaderTimeout {
		return
	}
	// Suspect the leader: vote to move to the next view.
	newView := r.view + 1
	r.broadcast(r.viewChangeMsg(newView))
	// Reset arrival times so we do not flood view changes every tick.
	for k, p := range r.pending {
		p.arrival = time.Now()
		r.pending[k] = p
	}
}

func (r *Replica) viewChangeMsg(newView int) message {
	pend := make([]request, 0, len(r.pending))
	for _, p := range r.pending {
		pend = append(pend, p.req)
	}
	sort.Slice(pend, func(i, j int) bool { return pend[i].key() < pend[j].key() })
	// Certify every unexecuted instance that reached the prepare quorum: its
	// request may have committed at other replicas, so the new leader must
	// re-propose it at this exact sequence number. Executed instances need no
	// certificate — LastExec tells the leader to leave that prefix alone.
	var certs []preparedCert
	for seq, inst := range r.instances {
		if inst.hasReq && !inst.executed && inst.prepared {
			certs = append(certs, preparedCert{Seq: seq, Digest: inst.digest, Req: inst.req})
		}
	}
	sort.Slice(certs, func(i, j int) bool { return certs[i].Seq < certs[j].Seq })
	return message{
		Type:       msgViewChange,
		From:       r.id,
		View:       newView,
		LastExec:   r.lastExec,
		HighestSeq: r.highestSeq,
		Pending:    pend,
		Prepared:   certs,
	}
}

func (r *Replica) onViewChange(m message) {
	if m.View <= r.view {
		// A laggard is still trying to assemble an older view. NEW-VIEW
		// announcements are not retransmitted, so if the one that moved us
		// here was dropped at that replica it would stay behind forever —
		// re-announce the current view to it if we lead it.
		if r.isLeader() && m.From != r.id {
			r.net.SendToReplica(m.From, message{Type: msgNewView, From: r.id, View: r.view, LastExec: r.lastExec})
		}
		return
	}
	tally, ok := r.vcVotes[m.View]
	if !ok {
		tally = &viewChangeTally{votes: make(map[int]bool), certs: make(map[uint64]preparedCert)}
		r.vcVotes[m.View] = tally
	}
	tally.votes[m.From] = true
	if m.LastExec > tally.maxExec {
		tally.maxExec = m.LastExec
	}
	// Collect the prepared certificates the vote carries. Correct replicas
	// cannot certify different digests for one sequence number (both would
	// need prepare quorums, which intersect in a correct replica that accepts
	// only one digest per instance), so first-seen wins.
	for _, cert := range m.Prepared {
		if _, ok := tally.certs[cert.Seq]; !ok {
			tally.certs[cert.Seq] = cert
		}
	}
	// Learn the highest sequence number assigned anywhere in the vote quorum,
	// so a new leader knows how far its gap filling must reach.
	if m.HighestSeq > r.highestSeq {
		r.highestSeq = m.HighestSeq
	}
	// Adopt the pending requests advertised by others so the new leader can
	// re-propose them even if the client request never reached it.
	for _, req := range m.Pending {
		key := req.key()
		rec := r.lastReply[req.ClientID]
		if _, ok := rec.recall(req.ReqID); ok || rec.stale(req.ReqID) {
			continue
		}
		if _, ok := r.pending[key]; !ok {
			r.pending[key] = pendingReq{req: req, arrival: time.Now()}
		}
	}
	// Echo our own vote once we have seen evidence that others want to move:
	// either the next view (we share the suspicion), or — the PBFT catch-up
	// rule — any higher view that more than f replicas already voted for,
	// which means at least one correct replica is ahead of us and views
	// would otherwise scatter without ever assembling a quorum in any one.
	f := r.cfg.Model.MaxFaults(r.cfg.N())
	if !tally.votes[r.id] && (m.View == r.view+1 || len(tally.votes) > f) {
		tally.votes[r.id] = true
		r.broadcast(r.viewChangeMsg(m.View))
	}
	quorum := r.cfg.Model.QuorumSize(r.cfg.N())
	if len(tally.votes) >= quorum && r.cfg.LeaderFor(m.View) == r.id {
		// We are the leader of the new view: announce it.
		r.broadcast(message{Type: msgNewView, From: r.id, View: m.View, LastExec: r.lastExec})
	}
}

func (r *Replica) onNewView(m message) {
	if m.View <= r.view || m.From != r.cfg.LeaderFor(m.View) {
		return
	}
	r.view = m.View
	r.setViewSnapshot(r.view)
	r.lastLeaderSeen = time.Now()
	// Drop unprepared in-flight instances — nothing can have committed at
	// their sequence numbers, so the new leader is free to reassign them.
	// Prepared instances are retained as local certificates (their request
	// may have committed elsewhere, and a later view change must still be
	// able to certify them), but their vote maps are reset: prepares and
	// commits are only comparable within one view's proposal, and the commits
	// a null fill at the same sequence number would attract must not count
	// toward a conflicting retained request.
	for seq, inst := range r.instances {
		switch {
		case inst.executed:
		case inst.prepared:
			inst.prepares = make(map[int]bool)
			inst.commits = make(map[int]bool)
			inst.sentPrep = false
			inst.sentComm = false
		default:
			delete(r.instances, seq)
		}
	}
	if r.nextSeq <= r.highestSeq {
		r.nextSeq = r.highestSeq + 1
	}
	tally := r.vcVotes[m.View]
	for v := range r.vcVotes {
		if v <= m.View {
			delete(r.vcVotes, v)
		}
	}
	if r.isLeader() {
		// Execution is strictly in sequence order, and the instances dropped
		// above leave holes between lastExec and the highest sequence number
		// the previous views assigned — holes nothing will ever fill, wedging
		// the log forever. Fill them by the PBFT new-view rule: a sequence
		// number with a prepared certificate in the view-change quorum gets
		// its certified request re-proposed (the request may have committed
		// there, so any other assignment could contradict an executed
		// replica); a genuinely unprepared hole gets a null command. Sequence
		// numbers at or below the highest executed prefix reported by the
		// quorum are left alone entirely — they were executed somewhere, this
		// replica may be behind, and state transfer (not re-proposal) is what
		// repairs an executed prefix.
		certs := map[uint64]preparedCert{}
		base := r.lastExec
		if tally != nil {
			certs = tally.certs
			if tally.maxExec > base {
				base = tally.maxExec
			}
		}
		for seq := base + 1; seq <= r.highestSeq; seq++ {
			var req request // null command unless a certificate pins this slot
			if cert, ok := certs[seq]; ok {
				req = cert.Req
			} else if inst, ok := r.instances[seq]; ok && inst.hasReq && !inst.executed && inst.prepared {
				// Our own retained certificate; it may predate our vote's
				// inclusion in the tally.
				req = inst.req
			}
			r.broadcast(message{
				Type:   msgPrePrepare,
				From:   r.id,
				View:   r.view,
				Seq:    seq,
				Digest: seccrypto.Hash(req.Op),
				Req:    req,
			})
		}
		// Whatever pending remains uncertified gets fresh sequence numbers —
		// except requests the client already resolved: their replies may be
		// pruned, so re-proposing them could re-execute a completed command
		// (propose skips the certified ones above via their live instances).
		keys := make([]string, 0, len(r.pending))
		for k := range r.pending {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p := r.pending[k]
			rec := r.lastReply[p.req.ClientID]
			if _, done := rec.recall(p.req.ReqID); done || rec.stale(p.req.ReqID) {
				delete(r.pending, k)
				continue
			}
			r.propose(p.req)
		}
	} else {
		// Restart liveness accounting in the new view.
		for k, p := range r.pending {
			p.arrival = time.Now()
			r.pending[k] = p
		}
	}
}

// --- state transfer ---

// redriveWindow bounds how many stalled instances the leader re-drives per
// liveness tick. Execution is strictly in-order, so repairing the instances
// right at the execution head is what unblocks progress; a wide window only
// multiplies repair traffic (every re-driven pre-prepare triggers re-affirm
// broadcasts at every receiver) without unblocking anything sooner.
const redriveWindow = 8

// checkStalled detects an execution stall — a full liveness tick with no
// execution progress while sequence numbers are known to be assigned ahead of
// us — and runs the two recovery paths that client retransmission cannot
// cover:
//
//   - The leader re-broadcasts the pre-prepares of the oldest unexecuted
//     instances. Client retransmission re-drives live requests, but a null
//     gap-filler or a request already resolved at the client has no
//     retransmission source; if its pre-prepare was lost (the in-memory
//     transport does not preserve ordering across its delivery timers, so a
//     gap fill can race the NEW-VIEW that precedes it and be dropped), only
//     the leader can revive the instance.
//
//   - Everyone broadcasts a state request, so a replica wedged behind an
//     instance its peers have executed and pruned past a checkpoint can adopt
//     a peer's state wholesale (see onStateRequest/onStateReply).
func (r *Replica) checkStalled() {
	if r.lastExec != r.lastTickExec {
		r.lastProgress = time.Now()
	}
	stalled := r.lastExec == r.lastTickExec && r.highestSeq > r.lastExec
	r.lastTickExec = r.lastExec
	if !stalled {
		return
	}
	if r.isLeader() {
		for seq := r.lastExec + 1; seq <= r.lastExec+redriveWindow; seq++ {
			if inst, ok := r.instances[seq]; ok && inst.hasReq && !inst.executed {
				r.broadcast(message{
					Type:   msgPrePrepare,
					From:   r.id,
					View:   r.view,
					Seq:    seq,
					Digest: inst.digest,
					Req:    inst.req,
				})
			}
		}
	}
	// A state transfer is a full snapshot per serving peer — too expensive to
	// solicit on every 125ms tick. One request a second is plenty: transfer
	// is the recovery of last resort behind re-drive repair.
	if time.Since(r.lastStateReq) >= time.Second {
		r.lastStateReq = time.Now()
		r.broadcast(message{Type: msgStateRequest, From: r.id, LastExec: r.lastExec})
	}
}

// onStateRequest answers a stalled replica with this replica's current state:
// an application snapshot, the executed prefix it covers, and the client
// reply records needed to keep deduplicating retransmissions past the jump.
// All three are captured together on the run goroutine, so they are mutually
// consistent. (A production BFT deployment would have the requester verify
// f+1 matching checkpoint digests before adopting one; the in-memory
// transport carries no signatures, so this implementation trusts the first
// usable reply — the Byzantine test hook corrupts client replies only.)
func (r *Replica) onStateRequest(m message) {
	if m.From == r.id || r.lastExec <= m.LastExec {
		return
	}
	// Serialization is the expensive part — the marshaled snapshot AND the
	// reply-record copy (retained replies can be large batch results) — so
	// both are memoized per executed prefix: a burst of stalled peers is
	// served one Snapshot call and one record copy. The cached values are
	// shared read-only with every receiver (Restore only unmarshals the
	// snapshot; onStateReply clones each result it merges). Results below a
	// client's resolution floor are omitted: the floor itself tells the
	// receiver they are stale, and under pipelining they are the bulk of the
	// record.
	if r.stateReplySeq != r.lastExec || r.stateReplyCache == nil {
		r.stateReplySeq = r.lastExec
		r.stateReplyCache = r.app.Snapshot()
		replies := make(map[string]clientReplySnapshot, len(r.lastReply))
		for id, rec := range r.lastReply {
			res := make(map[uint64][]byte)
			for reqID, result := range rec.results {
				if reqID < rec.floor {
					continue
				}
				res[reqID] = cloneBytes(result)
			}
			replies[id] = clientReplySnapshot{Results: res, Floor: rec.floor}
		}
		r.stateReplyClients = replies
	}
	r.net.SendToReplica(m.From, message{
		Type:          msgStateReply,
		From:          r.id,
		LastExec:      r.lastExec,
		Checkpoint:    r.stateReplyCache,
		ClientReplies: r.stateReplyClients,
	})
}

// onStateReply adopts a peer's state if it is ahead of ours: restore the
// application snapshot, jump the executed prefix, merge the reply records,
// and discard everything the jump made obsolete.
func (r *Replica) onStateReply(m message) {
	if m.LastExec <= r.lastExec {
		return
	}
	if err := r.app.Restore(m.Checkpoint); err != nil {
		return
	}
	r.lastExec = m.LastExec
	r.setExecSnapshot(r.lastExec)
	r.lastCheckpointSeq = m.LastExec
	r.lastCheckpoint = cloneBytes(m.Checkpoint)
	if r.highestSeq < m.LastExec {
		r.highestSeq = m.LastExec
	}
	if r.nextSeq <= m.LastExec {
		r.nextSeq = m.LastExec + 1
	}
	for id, snap := range m.ClientReplies {
		rec := r.lastReply[id]
		if rec == nil {
			rec = &clientRecord{}
			r.lastReply[id] = rec
		}
		for reqID, result := range snap.Results {
			rec.record(reqID, cloneBytes(result))
		}
		rec.observeLow(snap.Floor)
	}
	for seq := range r.instances {
		if seq <= r.lastExec {
			delete(r.instances, seq)
		}
	}
	// Requests the adopted state already resolved must leave pending, or they
	// would keep the leader-liveness timer suspicious forever.
	for key, p := range r.pending {
		rec := r.lastReply[p.req.ClientID]
		if _, ok := rec.recall(p.req.ReqID); ok || rec.stale(p.req.ReqID) {
			delete(r.pending, key)
		}
	}
	r.executeReady()
}
