package smr

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"scfs/internal/seccrypto"
)

// Replica is one member of a replicated state machine group. Protocol state
// is confined to the run goroutine; public methods communicate with it via
// the inbox or dedicated control channels.
type Replica struct {
	id  int
	cfg Config
	app Application
	net Transport

	inbox  chan message
	stopCh chan struct{}
	doneCh chan struct{}

	// Mutable protocol state, owned by run().
	view       int
	nextSeq    uint64
	lastExec   uint64
	highestSeq uint64
	instances  map[uint64]*instance
	pending    map[string]pendingReq
	lastReply  map[string]clientRecord
	vcVotes    map[int]map[int]bool

	// Checkpointing.
	lastCheckpointSeq uint64
	lastCheckpoint    []byte

	// Test hooks and observability, protected by statsMu.
	statsMu      sync.Mutex
	byzantine    bool
	executed     int64
	viewSnapshot int
}

type pendingReq struct {
	req     request
	arrival time.Time
}

type clientRecord struct {
	reqID  uint64
	result []byte
}

type instance struct {
	req      request
	digest   string
	hasReq   bool
	prepares map[int]bool
	commits  map[int]bool
	sentPrep bool
	sentComm bool
	executed bool
}

// NewReplica creates a replica and registers it with the network. Call Start
// to launch its event loop.
func NewReplica(id int, cfg Config, app Application, net *Network) (*Replica, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	found := false
	for _, rid := range cfg.ReplicaIDs {
		if rid == id {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("smr: replica %d not in configuration %v", id, cfg.ReplicaIDs)
	}
	r := &Replica{
		id:        id,
		cfg:       cfg,
		app:       app,
		net:       net,
		inbox:     make(chan message, 4096),
		stopCh:    make(chan struct{}),
		doneCh:    make(chan struct{}),
		nextSeq:   1,
		instances: make(map[uint64]*instance),
		pending:   make(map[string]pendingReq),
		lastReply: make(map[string]clientRecord),
		vcVotes:   make(map[int]map[int]bool),
	}
	net.registerReplica(id, r.inbox)
	return r, nil
}

// ID returns the replica identifier.
func (r *Replica) ID() int { return r.id }

// Start launches the replica's event loop.
func (r *Replica) Start() { go r.run() }

// Stop terminates the event loop.
func (r *Replica) Stop() {
	close(r.stopCh)
	<-r.doneCh
}

// SetByzantine makes the replica return corrupted results to clients (test
// hook exercising the BFT reply-voting path).
func (r *Replica) SetByzantine(b bool) {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	r.byzantine = b
}

func (r *Replica) isByzantine() bool {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	return r.byzantine
}

// ExecutedCommands reports how many commands this replica has executed.
func (r *Replica) ExecutedCommands() int64 {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	return r.executed
}

// CurrentView returns the replica's current view (test observability). It is
// safe to call concurrently but the value may be immediately stale.
func (r *Replica) CurrentView() int {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	return r.viewSnapshot
}

// setViewSnapshot mirrors view for concurrent readers; called by run().
func (r *Replica) setViewSnapshot(v int) {
	r.statsMu.Lock()
	r.viewSnapshot = v
	r.statsMu.Unlock()
}

func (r *Replica) isLeader() bool { return r.cfg.LeaderFor(r.view) == r.id }

func (r *Replica) run() {
	defer close(r.doneCh)
	ticker := time.NewTicker(r.cfg.LeaderTimeout / 2)
	defer ticker.Stop()
	r.setViewSnapshot(r.view)
	for {
		select {
		case <-r.stopCh:
			return
		case m := <-r.inbox:
			r.handle(m)
		case <-ticker.C:
			r.checkLeaderLiveness()
		}
	}
}

func (r *Replica) handle(m message) {
	switch m.Type {
	case msgRequest:
		r.onRequest(m)
	case msgPrePrepare:
		r.onPrePrepare(m)
	case msgPrepare:
		r.onPrepare(m)
	case msgCommit:
		r.onCommit(m)
	case msgViewChange:
		r.onViewChange(m)
	case msgNewView:
		r.onNewView(m)
	}
}

// --- normal case operation ---

func (r *Replica) onRequest(m message) {
	req := m.Req
	key := req.key()
	// At-most-once execution: if this request was already executed, resend
	// the recorded reply.
	if rec, ok := r.lastReply[req.ClientID]; ok && rec.reqID >= req.ReqID {
		if rec.reqID == req.ReqID {
			r.sendReply(req, rec.result)
		}
		return
	}
	if _, ok := r.pending[key]; !ok {
		r.pending[key] = pendingReq{req: req, arrival: time.Now()}
	}
	if r.isLeader() {
		r.propose(req)
	}
}

func (r *Replica) propose(req request) {
	// Avoid proposing a request twice in the same view.
	for _, inst := range r.instances {
		if inst.hasReq && inst.req.key() == req.key() && !inst.executed {
			return
		}
	}
	seq := r.nextSeq
	r.nextSeq++
	m := message{
		Type:   msgPrePrepare,
		From:   r.id,
		View:   r.view,
		Seq:    seq,
		Digest: seccrypto.Hash(req.Op),
		Req:    req,
	}
	r.net.Broadcast(m)
}

func (r *Replica) getInstance(seq uint64) *instance {
	inst, ok := r.instances[seq]
	if !ok {
		inst = &instance{prepares: make(map[int]bool), commits: make(map[int]bool)}
		r.instances[seq] = inst
	}
	return inst
}

func (r *Replica) onPrePrepare(m message) {
	if m.View != r.view || m.From != r.cfg.LeaderFor(r.view) {
		return
	}
	if m.Seq <= r.lastExec {
		return
	}
	if seccrypto.Hash(m.Req.Op) != m.Digest {
		return // malformed or tampered proposal
	}
	inst := r.getInstance(m.Seq)
	if inst.hasReq && inst.digest != m.Digest {
		return // conflicting proposal for the same sequence number
	}
	inst.req = m.Req
	inst.digest = m.Digest
	inst.hasReq = true
	if m.Seq > r.highestSeq {
		r.highestSeq = m.Seq
	}
	if m.Seq >= r.nextSeq {
		r.nextSeq = m.Seq + 1
	}
	if !inst.sentPrep {
		inst.sentPrep = true
		r.net.Broadcast(message{Type: msgPrepare, From: r.id, View: r.view, Seq: m.Seq, Digest: m.Digest})
	}
	r.maybeAdvance(m.Seq)
}

func (r *Replica) onPrepare(m message) {
	if m.View != r.view || m.Seq <= r.lastExec {
		return
	}
	inst := r.getInstance(m.Seq)
	inst.prepares[m.From] = true
	r.maybeAdvance(m.Seq)
}

func (r *Replica) onCommit(m message) {
	if m.View != r.view || m.Seq <= r.lastExec {
		return
	}
	inst := r.getInstance(m.Seq)
	inst.commits[m.From] = true
	r.maybeAdvance(m.Seq)
}

// maybeAdvance drives an instance through the prepare/commit phases and then
// executes committed instances in sequence order.
func (r *Replica) maybeAdvance(seq uint64) {
	inst := r.instances[seq]
	if inst == nil {
		return
	}
	quorum := r.cfg.Model.QuorumSize(r.cfg.N())
	if inst.hasReq && !inst.sentComm && len(inst.prepares) >= quorum {
		inst.sentComm = true
		r.net.Broadcast(message{Type: msgCommit, From: r.id, View: r.view, Seq: seq, Digest: inst.digest})
	}
	r.executeReady()
}

// executeReady executes all committed instances whose predecessors have been
// executed.
func (r *Replica) executeReady() {
	quorum := r.cfg.Model.QuorumSize(r.cfg.N())
	for {
		next := r.lastExec + 1
		inst, ok := r.instances[next]
		if !ok || !inst.hasReq || inst.executed || len(inst.commits) < quorum || !inst.sentComm {
			return
		}
		inst.executed = true
		r.lastExec = next
		req := inst.req
		key := req.key()
		delete(r.pending, key)

		var result []byte
		if rec, ok := r.lastReply[req.ClientID]; ok && rec.reqID >= req.ReqID {
			// Already executed in a previous view (re-proposed after a view
			// change): do not re-apply, reuse the recorded reply.
			result = rec.result
		} else {
			result = r.app.Execute(req.Op)
			r.lastReply[req.ClientID] = clientRecord{reqID: req.ReqID, result: result}
			r.statsMu.Lock()
			r.executed++
			r.statsMu.Unlock()
		}
		r.sendReply(req, result)
		delete(r.instances, next)
		if r.lastExec-r.lastCheckpointSeq >= uint64(r.cfg.CheckpointInterval) {
			r.lastCheckpointSeq = r.lastExec
			r.lastCheckpoint = r.app.Snapshot()
		}
	}
}

func (r *Replica) sendReply(req request, result []byte) {
	out := result
	if r.isByzantine() {
		out = append([]byte("corrupted:"), result...)
	}
	r.net.SendToClient(req.ClientID, Reply{ReqID: req.ReqID, Replica: r.id, View: r.view, Result: out})
}

// --- view change ---

func (r *Replica) checkLeaderLiveness() {
	if r.isLeader() || len(r.pending) == 0 {
		return
	}
	oldest := time.Now()
	for _, p := range r.pending {
		if p.arrival.Before(oldest) {
			oldest = p.arrival
		}
	}
	if time.Since(oldest) < r.cfg.LeaderTimeout {
		return
	}
	// Suspect the leader: vote to move to the next view.
	newView := r.view + 1
	r.net.Broadcast(r.viewChangeMsg(newView))
	// Reset arrival times so we do not flood view changes every tick.
	for k, p := range r.pending {
		p.arrival = time.Now()
		r.pending[k] = p
	}
}

func (r *Replica) viewChangeMsg(newView int) message {
	pend := make([]request, 0, len(r.pending))
	for _, p := range r.pending {
		pend = append(pend, p.req)
	}
	sort.Slice(pend, func(i, j int) bool { return pend[i].key() < pend[j].key() })
	return message{
		Type:     msgViewChange,
		From:     r.id,
		View:     newView,
		LastExec: r.lastExec,
		Pending:  pend,
	}
}

func (r *Replica) onViewChange(m message) {
	if m.View <= r.view {
		return
	}
	votes, ok := r.vcVotes[m.View]
	if !ok {
		votes = make(map[int]bool)
		r.vcVotes[m.View] = votes
	}
	votes[m.From] = true
	// Adopt the pending requests advertised by others so the new leader can
	// re-propose them even if the client request never reached it.
	for _, req := range m.Pending {
		key := req.key()
		if rec, ok := r.lastReply[req.ClientID]; ok && rec.reqID >= req.ReqID {
			continue
		}
		if _, ok := r.pending[key]; !ok {
			r.pending[key] = pendingReq{req: req, arrival: time.Now()}
		}
	}
	// Echo our own vote once we have seen evidence that others want to move.
	if !votes[r.id] && m.View == r.view+1 {
		votes[r.id] = true
		r.net.Broadcast(r.viewChangeMsg(m.View))
	}
	quorum := r.cfg.Model.QuorumSize(r.cfg.N())
	if len(votes) >= quorum && r.cfg.LeaderFor(m.View) == r.id {
		// We are the leader of the new view: announce it.
		r.net.Broadcast(message{Type: msgNewView, From: r.id, View: m.View, LastExec: r.lastExec})
	}
}

func (r *Replica) onNewView(m message) {
	if m.View <= r.view || m.From != r.cfg.LeaderFor(m.View) {
		return
	}
	r.view = m.View
	r.setViewSnapshot(r.view)
	// Drop in-flight instances above the last executed command; the new
	// leader re-proposes pending requests with fresh sequence numbers.
	for seq := range r.instances {
		if !r.instances[seq].executed {
			delete(r.instances, seq)
		}
	}
	if r.nextSeq <= r.highestSeq {
		r.nextSeq = r.highestSeq + 1
	}
	delete(r.vcVotes, m.View)
	if r.isLeader() {
		// Re-propose everything still pending, in a deterministic order.
		keys := make([]string, 0, len(r.pending))
		for k := range r.pending {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			r.propose(r.pending[k].req)
		}
	} else {
		// Restart liveness accounting in the new view.
		for k, p := range r.pending {
			p.arrival = time.Now()
			r.pending[k] = p
		}
	}
}
