package fsmeta

import (
	"testing"
	"time"

	"scfs/internal/fsapi"
)

var t0 = time.Date(2014, 6, 19, 12, 0, 0, 0, time.UTC)

func TestNewFileAndDir(t *testing.T) {
	f := NewFile("docs/report.odt", "alice", "fid-1", t0)
	if f.Path != "/docs/report.odt" {
		t.Fatalf("path = %q (should be normalized to absolute)", f.Path)
	}
	if f.Name() != "report.odt" || f.Parent() != "/docs" {
		t.Fatalf("Name=%q Parent=%q", f.Name(), f.Parent())
	}
	if f.IsDir() {
		t.Fatal("file reported as directory")
	}
	d := NewDir("/docs", "alice", t0)
	if !d.IsDir() || d.Type != fsapi.TypeDir {
		t.Fatal("NewDir did not produce a directory")
	}
}

func TestACLAndSharing(t *testing.T) {
	m := NewFile("/f", "alice", "fid", t0)
	if m.IsShared() {
		t.Fatal("fresh file must not be shared")
	}
	if !m.CanRead("alice") || !m.CanWrite("alice") {
		t.Fatal("owner must have full access")
	}
	if m.CanRead("bob") || m.CanWrite("bob") {
		t.Fatal("stranger must have no access")
	}
	m.SetACL("bob", fsapi.PermRead)
	if !m.IsShared() {
		t.Fatal("file with a grant must be shared")
	}
	if !m.CanRead("bob") || m.CanWrite("bob") {
		t.Fatal("read grant misbehaves")
	}
	m.SetACL("bob", fsapi.PermReadWrite)
	if !m.CanWrite("bob") {
		t.Fatal("read-write grant misbehaves")
	}
	if got := m.Writers(); len(got) != 1 || got[0] != "bob" {
		t.Fatalf("Writers = %v", got)
	}
	if got := m.Readers(); len(got) != 1 || got[0] != "bob" {
		t.Fatalf("Readers = %v", got)
	}
	m.SetACL("bob", fsapi.PermNone)
	if m.IsShared() || m.CanRead("bob") {
		t.Fatal("revocation did not work")
	}
}

func TestVersionsAndTrim(t *testing.T) {
	m := NewFile("/f", "alice", "fid", t0)
	for i := 1; i <= 5; i++ {
		m.AddVersion(string(rune('a'+i)), int64(i*100), t0.Add(time.Duration(i)*time.Minute))
	}
	if m.Size != 500 || len(m.Versions) != 5 {
		t.Fatalf("size=%d versions=%d", m.Size, len(m.Versions))
	}
	old := m.OldVersions()
	if len(old) != 4 {
		t.Fatalf("OldVersions = %d, want 4", len(old))
	}
	removed := m.TrimVersions(2)
	if len(removed) != 3 || len(m.Versions) != 2 {
		t.Fatalf("removed=%d kept=%d", len(removed), len(m.Versions))
	}
	if m.Versions[1].Hash != m.Hash {
		t.Fatal("current version must be kept by TrimVersions")
	}
	if r := m.TrimVersions(10); r != nil {
		t.Fatal("TrimVersions with large keep should remove nothing")
	}
	if r := m.TrimVersions(0); len(m.Versions) != 1 || len(r) != 1 {
		t.Fatal("TrimVersions(0) should behave as keep=1")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := NewFile("/docs/a.txt", "alice", "fid-9", t0)
	m.SetACL("bob", fsapi.PermReadWrite)
	m.AddVersion("hash1", 42, t0)
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Path != m.Path || got.Hash != m.Hash || got.Size != m.Size || len(got.ACL) != 1 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := Decode([]byte("not json")); err == nil {
		t.Fatal("Decode accepted garbage")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewFile("/f", "alice", "fid", t0)
	m.SetACL("bob", fsapi.PermRead)
	m.AddVersion("h1", 1, t0)
	c := m.Clone()
	c.SetACL("carol", fsapi.PermRead)
	c.AddVersion("h2", 2, t0)
	if len(m.ACL) != 1 || len(m.Versions) != 1 {
		t.Fatal("Clone shares slices with the original")
	}
}

func TestFileInfoConversion(t *testing.T) {
	m := NewFile("/docs/x", "alice", "fid", t0)
	m.AddVersion("h", 123, t0)
	m.SetACL("bob", fsapi.PermRead)
	fi := m.FileInfo()
	if fi.Path != "/docs/x" || fi.Name != "x" || fi.Size != 123 || !fi.Shared || fi.Owner != "alice" {
		t.Fatalf("FileInfo = %+v", fi)
	}
}

func TestPathHelpers(t *testing.T) {
	if Clean("a/b/../c") != "/a/c" || Clean("") != "/" || Clean("/") != "/" {
		t.Fatal("Clean misbehaves")
	}
	if !IsChildOf("/a/b", "/a") || IsChildOf("/ab", "/a") || IsChildOf("/a", "/a") {
		t.Fatal("IsChildOf misbehaves")
	}
	if !IsChildOf("/x", "/") || IsChildOf("/", "/") {
		t.Fatal("IsChildOf at root misbehaves")
	}
}

func TestApproxTupleSizeIsAboutOneKB(t *testing.T) {
	// The paper assumes ~1KB per metadata tuple with 100-byte names.
	name := "/" + string(make([]byte, 100))
	m := NewFile(name, "alice", "fid-123456", t0)
	m.AddVersion("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef", 1<<20, t0)
	size := m.ApproxTupleSize()
	if size < 300 || size > 2048 {
		t.Fatalf("tuple size = %d bytes, expected a few hundred bytes to ~1KB", size)
	}
}

func TestPNSBasicOperations(t *testing.T) {
	p := NewPNS("alice")
	if p.User() != "alice" || p.Len() != 0 {
		t.Fatal("fresh PNS misconfigured")
	}
	if p.Get("/missing") != nil {
		t.Fatal("Get on empty PNS should be nil")
	}
	m := NewFile("/docs/a", "alice", "fid-a", t0)
	p.Put(m)
	p.Put(NewFile("/docs/b", "alice", "fid-b", t0))
	p.Put(NewDir("/docs", "alice", t0))
	if p.Len() != 3 {
		t.Fatalf("Len = %d, want 3", p.Len())
	}
	got := p.Get("/docs/a")
	if got == nil || got.FileID != "fid-a" {
		t.Fatalf("Get = %+v", got)
	}
	// Mutating the returned copy must not affect the stored entry.
	got.FileID = "tampered"
	if p.Get("/docs/a").FileID != "fid-a" {
		t.Fatal("Get returned a shared reference")
	}
	kids := p.List("/docs")
	if len(kids) != 2 || kids[0].Path != "/docs/a" || kids[1].Path != "/docs/b" {
		t.Fatalf("List = %+v", kids)
	}
	all := p.ListPrefix("/docs")
	if len(all) != 3 {
		t.Fatalf("ListPrefix = %d entries, want 3", len(all))
	}
	if !p.Remove("/docs/a") || p.Remove("/docs/a") {
		t.Fatal("Remove misbehaves")
	}
}

func TestPNSRenamePrefix(t *testing.T) {
	p := NewPNS("alice")
	for _, pa := range []string{"/dir", "/dir/a", "/dir/sub/b", "/other"} {
		p.Put(NewFile(pa, "alice", "fid", t0))
	}
	n := p.RenamePrefix("/dir", "/moved")
	if n != 3 {
		t.Fatalf("renamed %d entries, want 3", n)
	}
	if p.Get("/moved/sub/b") == nil || p.Get("/dir/a") != nil || p.Get("/other") == nil {
		t.Fatal("rename left the namespace inconsistent")
	}
	if p.Get("/moved/sub/b").Path != "/moved/sub/b" {
		t.Fatal("entry path field not rewritten")
	}
}

func TestPNSEncodeDecodeRoundTrip(t *testing.T) {
	p := NewPNS("alice")
	for i := 0; i < 10; i++ {
		m := NewFile("/private/file"+string(rune('0'+i)), "alice", "fid", t0)
		m.AddVersion("h", int64(i), t0)
		p.Put(m)
	}
	b, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePNS(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.User() != "alice" || got.Len() != 10 {
		t.Fatalf("decoded PNS user=%q len=%d", got.User(), got.Len())
	}
	if got.Get("/private/file3") == nil {
		t.Fatal("entry lost in round trip")
	}
	if _, err := DecodePNS([]byte("{")); err == nil {
		t.Fatal("DecodePNS accepted garbage")
	}
}

func TestSizingEstimateMatchesPaperNumbers(t *testing.T) {
	// §2.7: 1M files, 5% shared, ~1KB tuples -> ~1GB without PNS, a little
	// more than 50MB with PNS.
	without, with := SizingEstimate(1_000_000, 0.05, 1024, 1000)
	if without != 1024*1_000_000 {
		t.Fatalf("without PNS = %d bytes", without)
	}
	if with < 50_000_000 || with > 60_000_000 {
		t.Fatalf("with PNS = %d bytes, expected a little over 50MB", with)
	}
	if ratio := float64(without) / float64(with); ratio < 15 {
		t.Fatalf("PNS saving ratio = %.1f, expected >15x", ratio)
	}
	// Clamping.
	w1, _ := SizingEstimate(10, -1, 1024, 1)
	if w1 != 10*1024 {
		t.Fatal("negative shared fraction not clamped")
	}
	_, w2 := SizingEstimate(10, 2, 1024, 1)
	if w2 != 10*1024+1024 {
		t.Fatalf("shared fraction above 1 not clamped: %d", w2)
	}
}
