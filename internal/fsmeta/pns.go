package fsmeta

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// PNS is a Private Name Space (§2.7): the serialized metadata of every
// non-shared file of one user, stored as a single object in the cloud storage
// instead of as individual tuples in the coordination service. Only a PNS
// tuple (user name + a reference to the cloud object) stays in the
// coordination service.
type PNS struct {
	mu sync.RWMutex
	// user owns this name space.
	user string
	// entries maps path -> metadata for the user's private objects.
	entries map[string]*Metadata
}

// NewPNS creates an empty private name space for a user.
func NewPNS(user string) *PNS {
	return &PNS{user: user, entries: make(map[string]*Metadata)}
}

// User returns the owning user.
func (p *PNS) User() string { return p.user }

// Get returns the metadata stored under path, or nil.
func (p *PNS) Get(path string) *Metadata {
	p.mu.RLock()
	defer p.mu.RUnlock()
	m, ok := p.entries[Clean(path)]
	if !ok {
		return nil
	}
	return m.Clone()
}

// Put inserts or replaces the metadata of a private object.
func (p *PNS) Put(m *Metadata) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.entries[Clean(m.Path)] = m.Clone()
}

// Remove deletes the metadata stored under path and reports whether it was
// present.
func (p *PNS) Remove(path string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := Clean(path)
	_, ok := p.entries[key]
	delete(p.entries, key)
	return ok
}

// Len returns the number of entries.
func (p *PNS) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.entries)
}

// List returns the metadata of entries directly inside dir, sorted by path.
func (p *PNS) List(dir string) []*Metadata {
	dir = Clean(dir)
	p.mu.RLock()
	defer p.mu.RUnlock()
	var out []*Metadata
	for path, m := range p.entries {
		if parentOf(path) == dir {
			out = append(out, m.Clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// ListPrefix returns every entry under prefix (inclusive), sorted by path.
func (p *PNS) ListPrefix(prefix string) []*Metadata {
	prefix = Clean(prefix)
	p.mu.RLock()
	defer p.mu.RUnlock()
	var out []*Metadata
	for path, m := range p.entries {
		if path == prefix || IsChildOf(path, prefix) {
			out = append(out, m.Clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// RenamePrefix rewrites every path under oldPrefix to live under newPrefix
// and returns how many entries moved.
func (p *PNS) RenamePrefix(oldPrefix, newPrefix string) int {
	oldPrefix, newPrefix = Clean(oldPrefix), Clean(newPrefix)
	p.mu.Lock()
	defer p.mu.Unlock()
	moved := 0
	for path, m := range p.entries {
		if path != oldPrefix && !IsChildOf(path, oldPrefix) {
			continue
		}
		newPath := newPrefix + strings.TrimPrefix(path, oldPrefix)
		m.Path = newPath
		delete(p.entries, path)
		p.entries[newPath] = m
		moved++
	}
	return moved
}

func parentOf(p string) string {
	c := Clean(p)
	idx := strings.LastIndex(c, "/")
	if idx <= 0 {
		return "/"
	}
	return c[:idx]
}

// pnsWire is the serialized representation stored in the cloud.
type pnsWire struct {
	User    string      `json:"user"`
	Entries []*Metadata `json:"entries"`
}

// Encode serializes the PNS for upload to the cloud storage.
func (p *PNS) Encode() ([]byte, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	wire := pnsWire{User: p.user}
	keys := make([]string, 0, len(p.entries))
	for k := range p.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		wire.Entries = append(wire.Entries, p.entries[k])
	}
	b, err := json.Marshal(wire)
	if err != nil {
		return nil, fmt.Errorf("fsmeta: encoding PNS of %q: %w", p.user, err)
	}
	return b, nil
}

// DecodePNS parses a serialized private name space.
func DecodePNS(b []byte) (*PNS, error) {
	var wire pnsWire
	if err := json.Unmarshal(b, &wire); err != nil {
		return nil, fmt.Errorf("fsmeta: decoding PNS: %w", err)
	}
	p := NewPNS(wire.User)
	for _, m := range wire.Entries {
		p.entries[Clean(m.Path)] = m
	}
	return p, nil
}

// SizingEstimate reports the coordination-service footprint with and without
// PNSs for a population of totalFiles of which sharedFraction (0..1) are
// shared, assuming tupleBytes per metadata tuple. It reproduces the sizing
// argument of §2.7 (1M files, 5% shared, 1KB tuples: ~1GB without PNS vs a
// little more than 50MB with PNS).
func SizingEstimate(totalFiles int, sharedFraction float64, tupleBytes int, users int) (withoutPNS, withPNS int64) {
	if sharedFraction < 0 {
		sharedFraction = 0
	}
	if sharedFraction > 1 {
		sharedFraction = 1
	}
	shared := int64(float64(totalFiles) * sharedFraction)
	withoutPNS = int64(totalFiles) * int64(tupleBytes)
	withPNS = shared*int64(tupleBytes) + int64(users)*int64(tupleBytes)
	return withoutPNS, withPNS
}
