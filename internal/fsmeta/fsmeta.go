// Package fsmeta defines the file-system metadata model of SCFS: the
// metadata tuple stored per file/directory in the coordination service
// (§2.5.1), the ACL representation used by setfacl/getfacl (§2.6), and the
// Private Name Space aggregate that groups the metadata of all non-shared
// files of a user into a single cloud object (§2.7).
package fsmeta

import (
	"encoding/json"
	"fmt"
	"path"
	"sort"
	"strings"
	"time"

	"scfs/internal/fsapi"
)

// Metadata is the per-object record SCFS keeps in the coordination service
// (or inside a PNS for private files). It mirrors the tuple described in the
// paper: name, type, parent, attributes, the opaque identifier referencing
// the file in the storage service and the hash of the current version.
type Metadata struct {
	// Path is the absolute path of the object in the SCFS namespace.
	Path string `json:"path"`
	// Type distinguishes files, directories and symlinks.
	Type fsapi.FileType `json:"type"`
	// Size is the length of the current version in bytes.
	Size int64 `json:"size"`
	// Ctime and Mtime are creation and last-modification times.
	Ctime time.Time `json:"ctime"`
	Mtime time.Time `json:"mtime"`
	// Owner is the SCFS user that created the object and pays for it.
	Owner string `json:"owner"`
	// ACL lists the permissions granted to other users.
	ACL []fsapi.ACLEntry `json:"acl,omitempty"`
	// FileID is the opaque identifier referencing the object's data in the
	// storage service (and therefore in the storage clouds).
	FileID string `json:"file_id,omitempty"`
	// Hash is the collision-resistant hash of the current version — the
	// value anchored in the consistency anchor.
	Hash string `json:"hash,omitempty"`
	// Versions records older versions for recovery until the garbage
	// collector reclaims them; the last entry is the current version.
	Versions []VersionRecord `json:"versions,omitempty"`
	// Deleted marks files removed by the user but not yet garbage collected
	// (multi-versioning principle).
	Deleted bool `json:"deleted,omitempty"`
	// LinkTarget holds the target path for symlinks.
	LinkTarget string `json:"link_target,omitempty"`
}

// VersionRecord identifies one stored version of a file.
type VersionRecord struct {
	Hash    string    `json:"hash"`
	Size    int64     `json:"size"`
	ModTime time.Time `json:"mod_time"`
}

// Name returns the final path element.
func (m *Metadata) Name() string { return path.Base(m.Path) }

// Parent returns the parent directory path.
func (m *Metadata) Parent() string { return path.Dir(m.Path) }

// IsDir reports whether the entry is a directory.
func (m *Metadata) IsDir() bool { return m.Type == fsapi.TypeDir }

// IsShared reports whether any user other than the owner has access. Shared
// entries must live in the coordination service; private ones may live in
// the owner's PNS.
func (m *Metadata) IsShared() bool {
	for _, e := range m.ACL {
		if e.User != m.Owner && e.Perm != fsapi.PermNone {
			return true
		}
	}
	return false
}

// CanRead reports whether user may read the object.
func (m *Metadata) CanRead(user string) bool {
	if user == m.Owner {
		return true
	}
	for _, e := range m.ACL {
		if e.User == user && (e.Perm == fsapi.PermRead || e.Perm == fsapi.PermReadWrite) {
			return true
		}
	}
	return false
}

// CanWrite reports whether user may modify the object.
func (m *Metadata) CanWrite(user string) bool {
	if user == m.Owner {
		return true
	}
	for _, e := range m.ACL {
		if e.User == user && e.Perm == fsapi.PermReadWrite {
			return true
		}
	}
	return false
}

// SetACL grants or revokes a user's permission, replacing any previous entry.
func (m *Metadata) SetACL(user string, perm fsapi.Permission) {
	out := m.ACL[:0]
	for _, e := range m.ACL {
		if e.User != user {
			out = append(out, e)
		}
	}
	if perm != fsapi.PermNone {
		out = append(out, fsapi.ACLEntry{User: user, Perm: perm})
	}
	m.ACL = out
}

// Readers returns every user with at least read access (excluding the owner).
func (m *Metadata) Readers() []string {
	var out []string
	for _, e := range m.ACL {
		if e.Perm == fsapi.PermRead || e.Perm == fsapi.PermReadWrite {
			out = append(out, e.User)
		}
	}
	sort.Strings(out)
	return out
}

// Writers returns every user with write access (excluding the owner).
func (m *Metadata) Writers() []string {
	var out []string
	for _, e := range m.ACL {
		if e.Perm == fsapi.PermReadWrite {
			out = append(out, e.User)
		}
	}
	sort.Strings(out)
	return out
}

// AddVersion records a new current version.
func (m *Metadata) AddVersion(hash string, size int64, modTime time.Time) {
	m.Hash = hash
	m.Size = size
	m.Mtime = modTime
	m.Versions = append(m.Versions, VersionRecord{Hash: hash, Size: size, ModTime: modTime})
}

// OldVersions returns the versions other than the current one, oldest first.
func (m *Metadata) OldVersions() []VersionRecord {
	if len(m.Versions) <= 1 {
		return nil
	}
	return m.Versions[:len(m.Versions)-1]
}

// TrimVersions keeps only the most recent keep versions and returns the
// removed ones (for the garbage collector to delete from the cloud).
func (m *Metadata) TrimVersions(keep int) []VersionRecord {
	if keep < 1 {
		keep = 1
	}
	if len(m.Versions) <= keep {
		return nil
	}
	removed := append([]VersionRecord(nil), m.Versions[:len(m.Versions)-keep]...)
	m.Versions = append([]VersionRecord(nil), m.Versions[len(m.Versions)-keep:]...)
	return removed
}

// FileInfo converts the metadata to the public FileInfo shape.
func (m *Metadata) FileInfo() fsapi.FileInfo {
	return fsapi.FileInfo{
		Path:    m.Path,
		Name:    m.Name(),
		Type:    m.Type,
		Size:    m.Size,
		ModTime: m.Mtime,
		Owner:   m.Owner,
		Shared:  m.IsShared(),
	}
}

// Encode serializes the metadata for storage in the coordination service.
func (m *Metadata) Encode() ([]byte, error) {
	b, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("fsmeta: encoding metadata for %q: %w", m.Path, err)
	}
	return b, nil
}

// Decode parses a metadata record.
func Decode(b []byte) (*Metadata, error) {
	var m Metadata
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("fsmeta: decoding metadata: %w", err)
	}
	return &m, nil
}

// Clone returns a deep copy.
func (m *Metadata) Clone() *Metadata {
	c := *m
	c.ACL = append([]fsapi.ACLEntry(nil), m.ACL...)
	c.Versions = append([]VersionRecord(nil), m.Versions...)
	return &c
}

// NewFile builds metadata for a fresh empty file.
func NewFile(p, owner, fileID string, now time.Time) *Metadata {
	return &Metadata{Path: clean(p), Type: fsapi.TypeFile, Owner: owner, FileID: fileID, Ctime: now, Mtime: now}
}

// NewDir builds metadata for a directory.
func NewDir(p, owner string, now time.Time) *Metadata {
	return &Metadata{Path: clean(p), Type: fsapi.TypeDir, Owner: owner, Ctime: now, Mtime: now}
}

// clean normalizes a path to the canonical absolute form.
func clean(p string) string {
	if p == "" {
		return "/"
	}
	return path.Clean("/" + strings.TrimPrefix(p, "/"))
}

// Clean exports the path normalization used across SCFS.
func Clean(p string) string { return clean(p) }

// IsChildOf reports whether p is directly or transitively under dir.
func IsChildOf(p, dir string) bool {
	p, dir = clean(p), clean(dir)
	if dir == "/" {
		return p != "/"
	}
	return strings.HasPrefix(p, dir+"/")
}

// ApproxTupleSize estimates the size in bytes of the coordination-service
// tuple for this metadata record; the paper's sizing argument (§2.7) assumes
// ~1KB per tuple with 100-byte file names.
func (m *Metadata) ApproxTupleSize() int {
	b, err := m.Encode()
	if err != nil {
		return 1024
	}
	// Tuple framing and ACL bookkeeping overhead in the coordination service.
	return len(b) + 128
}
