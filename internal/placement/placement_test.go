package placement

import (
	"testing"
	"time"

	"scfs/internal/iopolicy"
	"scfs/internal/pricing"
)

// fourRates builds a deployment where cloud 3 bills no request fees but the
// priciest storage, and cloud 1 is the cheapest store — the shape of the
// bundled table, reduced to what the tests pin.
func fourRates() []pricing.Rates {
	return []pricing.Rates{
		{StorageGBMonth: 0.023, PutRequest: 5e-6, GetRequest: 4e-7, EgressPerGB: 0.09},
		{StorageGBMonth: 0.018, PutRequest: 5e-6, GetRequest: 4e-7, EgressPerGB: 0.087},
		{StorageGBMonth: 0.020, PutRequest: 5e-6, GetRequest: 4e-7, EgressPerGB: 0.12},
		{StorageGBMonth: 0.100, PutRequest: 0, GetRequest: 0, EgressPerGB: 0.12},
	}
}

func TestRankCostFirstDependsOnOp(t *testing.T) {
	s := NewSelector(fourRates(), nil)
	spec := iopolicy.Placement{Strategy: iopolicy.PlaceCost}

	// Tiny upload: request fees dominate — the fee-free cloud 3 wins.
	order := s.Rank(spec, iopolicy.PutOp(64))
	if order[0] != 3 {
		t.Fatalf("small PUT should go to the fee-free cloud first: %v", order)
	}
	// Bulk upload: a month of storage dwarfs the fee — the cheap stores win
	// and the expensive cloud 3 ranks last.
	order = s.Rank(spec, iopolicy.PutOp(8<<20))
	if order[0] != 1 || order[len(order)-1] != 3 {
		t.Fatalf("bulk PUT should go to cheap storage first: %v", order)
	}
	// Bulk download: egress dominates — cheapest egress first.
	order = s.Rank(spec, iopolicy.GetOp(8<<20))
	if order[0] != 1 {
		t.Fatalf("bulk GET should prefer cheap egress: %v", order)
	}
}

func TestRankLatencyDelegatesToTracker(t *testing.T) {
	tr := iopolicy.NewTracker(4)
	op := iopolicy.GetOp(0)
	for i := 0; i < 20; i++ {
		tr.Observe(0, op, 50*time.Millisecond)
		tr.Observe(1, op, time.Millisecond)
		tr.Observe(2, op, 10*time.Millisecond)
		tr.Observe(3, op, 20*time.Millisecond)
	}
	s := NewSelector(fourRates(), tr)
	order := s.Rank(iopolicy.Placement{}, op)
	if order[0] != 1 || order[3] != 0 {
		t.Fatalf("zero spec must rank by latency: %v", order)
	}
	order = s.Rank(iopolicy.Placement{Strategy: iopolicy.PlaceLatency}, op)
	if order[0] != 1 || order[3] != 0 {
		t.Fatalf("latency-first must rank by latency: %v", order)
	}
}

func TestRankBalancedBlends(t *testing.T) {
	// Cloud 3 is free but slow; cloud 1 cheap-ish and fast; cloud 0 is both
	// expensive and slow.
	tr := iopolicy.NewTracker(4)
	op := iopolicy.PutOp(64)
	for i := 0; i < 20; i++ {
		tr.Observe(0, op, 100*time.Millisecond)
		tr.Observe(1, op, time.Millisecond)
		tr.Observe(2, op, 30*time.Millisecond)
		tr.Observe(3, op, 100*time.Millisecond)
	}
	s := NewSelector(fourRates(), tr)
	// Pure cost: the free-but-slow cloud leads.
	if order := s.Rank(iopolicy.Placement{Strategy: iopolicy.PlaceCost}, op); order[0] != 3 {
		t.Fatalf("pure cost: %v", order)
	}
	// A latency-leaning blend flips the leader to the fast cheap cloud,
	// and the expensive slow cloud is last under any weight.
	order := s.Rank(iopolicy.Placement{Strategy: iopolicy.PlaceBalanced, CostWeight: 0.3}, op)
	if order[0] != 1 {
		t.Fatalf("balanced(0.3): %v", order)
	}
	if order[len(order)-1] != 0 {
		t.Fatalf("expensive+slow cloud must rank last: %v", order)
	}
}

func TestRankIdenticalRatesPreserveIndexOrder(t *testing.T) {
	rates := make([]pricing.Rates, 4)
	for i := range rates {
		rates[i] = pricing.DefaultRates
	}
	s := NewSelector(rates, nil)
	order := s.Rank(iopolicy.Placement{Strategy: iopolicy.PlaceCost}, iopolicy.PutOp(1<<20))
	for i, c := range order {
		if c != i {
			t.Fatalf("identical rate cards must keep index order: %v", order)
		}
	}
}
