// Package placement ranks the clouds of a cloud-of-clouds deployment per
// operation, by a pluggable objective: cost-first (priced by a
// pricing.Table), latency-first (fed by the iopolicy.Tracker), or a
// weighted blend of the two.
//
// DepSky's quorum protocols treat clouds as interchangeable — any n-f
// subset is a valid write quorum, any f+1 block holders serve a read. That
// freedom is worth money: providers differ by an order of magnitude in
// per-request fees and per-GB prices (see pricing.DefaultTable), so WHICH
// n-f subset serves a request decides what it costs. The Selector turns an
// iopolicy.Placement spec (carried by the operation's policy) plus the
// per-cloud price cards and latency tracker into a concrete dispatch order;
// the hedged-dispatch gate then launches the first n-f (or f+1) clouds of
// that order immediately and holds the rest back as spares.
package placement

import (
	"sort"

	"scfs/internal/iopolicy"
	"scfs/internal/pricing"
)

// Selector ranks cloud indices for one deployment. It is immutable and safe
// for concurrent use (the tracker it consults is itself concurrent).
type Selector struct {
	rates   []pricing.Rates
	tracker *iopolicy.Tracker
}

// NewSelector builds a selector over the per-cloud-index rate cards and the
// deployment's latency tracker. rates[i] prices the cloud at dispatch
// index i; a nil tracker disables the latency axis (cost ties then break by
// index).
func NewSelector(rates []pricing.Rates, tracker *iopolicy.Tracker) *Selector {
	return &Selector{rates: append([]pricing.Rates(nil), rates...), tracker: tracker}
}

// OpCost estimates the dollars cloud i charges for one RPC of op: an upload
// pays its PUT fee, ingress, and one month of storage for the payload (the
// horizon that makes "cheap to store" and "cheap to accept" comparable); a
// download pays its GET fee and egress.
func (s *Selector) OpCost(i int, op iopolicy.Op) float64 {
	if i < 0 || i >= len(s.rates) {
		return 0
	}
	r := s.rates[i]
	if op.Class == iopolicy.OpPut {
		return r.PutCost(int64(op.Bytes)) + r.StorageCost(int64(op.Bytes))
	}
	return r.GetCost(int64(op.Bytes))
}

// Rank orders all cloud indices for dispatching op under the given
// objective: the clouds a hedged fan-out should contact first come first.
// Latency-first (and the zero spec) delegates to the tracker's
// fastest-first ranking; cost-first sorts by OpCost; balanced normalizes
// both axes to [0, 1] across the clouds and sorts by the weighted sum.
// Ties (and a pure-cost ranking over identical rate cards) preserve index
// order, so the zero-value price table degrades to the pre-placement
// dispatch order.
func (s *Selector) Rank(spec iopolicy.Placement, op iopolicy.Op) []int {
	w := 0.0
	switch spec.Strategy {
	case iopolicy.PlaceCost:
		w = 1
	case iopolicy.PlaceBalanced:
		w = spec.CostWeight
		if w < 0 {
			w = 0
		}
		if w > 1 {
			w = 1
		}
	}
	if w == 0 && s.tracker != nil {
		return s.tracker.Rank(op)
	}

	n := len(s.rates)
	costs := make([]float64, n)
	lats := make([]float64, n)
	var maxCost, maxLat float64
	for i := 0; i < n; i++ {
		costs[i] = s.OpCost(i, op)
		if costs[i] > maxCost {
			maxCost = costs[i]
		}
		if w < 1 && s.tracker != nil {
			// Unobserved clouds keep latency 0: optimistically early, the
			// same exploration bias as the tracker's own ranking.
			if d, ok := s.tracker.EWMA(i, op); ok {
				lats[i] = float64(d)
			}
			if lats[i] > maxLat {
				maxLat = lats[i]
			}
		}
	}
	score := func(i int) float64 {
		sc := 0.0
		if maxCost > 0 {
			sc += w * costs[i] / maxCost
		}
		if maxLat > 0 {
			sc += (1 - w) * lats[i] / maxLat
		}
		return sc
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return score(order[a]) < score(order[b]) })
	return order
}
