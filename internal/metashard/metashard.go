// Package metashard shards the SCFS metadata namespace across N coordination
// backends, the scale-out the paper proposes for going beyond one
// coordination service (§4: "the namespace can be partitioned across several
// coordination service instances"). It implements coord.Service over a set of
// backends: single-key operations route to one shard by a stable partition
// function, ListMetadata fans out to every shard and merges deterministically,
// and RenamePrefix either delegates to one shard (when the partition function
// guarantees co-location) or falls back to a documented copy-then-delete move.
package metashard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"scfs/internal/coord"
	"scfs/internal/telemetry"
)

// Mode selects the partition function.
type Mode int

const (
	// HashMode routes each key independently by a stable hash of the whole
	// key. It balances best but scatters every directory across shards, so
	// RenamePrefix always takes the cross-shard move path.
	HashMode Mode = iota
	// SubtreeMode routes by the key's top path segment, co-locating a whole
	// subtree on one shard (the paper's partition-by-subtree suggestion).
	// RenamePrefix within a top segment — the common case: renames inside a
	// directory tree — delegates to that single shard and stays atomic.
	SubtreeMode
)

// Service multiplexes coord.Service over N shards. It is safe for concurrent
// use when its backends are.
type Service struct {
	shards []coord.Service
	mode   Mode
	// names are the per-shard span targets ("shard-0", ...), formatted once
	// at construction so the routing hot path never builds strings.
	names []string
}

var _ coord.Service = (*Service)(nil)

// Option configures the shard router.
type Option func(*Service)

// WithSubtreePartition switches the partition function from whole-key hashing
// to top-path-segment hashing.
func WithSubtreePartition() Option {
	return func(s *Service) { s.mode = SubtreeMode }
}

// New builds a sharded coordination service over the given backends. The
// backend order is the shard numbering and must be stable across agents
// sharing a namespace.
func New(shards []coord.Service, opts ...Option) (*Service, error) {
	if len(shards) == 0 {
		return nil, errors.New("metashard: at least one shard is required")
	}
	s := &Service{shards: shards, mode: HashMode, names: make([]string, len(shards))}
	for i := range shards {
		s.names[i] = fmt.Sprintf("shard-%d", i)
	}
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// routeSpan records the routing decision of one single-shard operation on
// the request's trace: which shard the key hashed to. A no-op for
// untraced requests (one context lookup).
func (s *Service) routeSpan(ctx context.Context, i int) {
	tr := telemetry.FromContext(ctx)
	if tr == nil {
		return
	}
	tr.Record(telemetry.Span{Name: "shard.route", Target: s.names[i], Outcome: telemetry.SpanOK})
}

// Shards returns the number of backends.
func (s *Service) Shards() int { return len(s.shards) }

// Backend names the sharded plane for telemetry labels (coord.BackendName).
func (s *Service) Backend() string { return "metashard" }

// topSegment returns the first path segment of a key ("" for keys with no
// segment, e.g. "/" or "").
func topSegment(key string) string {
	key = strings.TrimPrefix(key, "/")
	if i := strings.IndexByte(key, '/'); i >= 0 {
		return key[:i]
	}
	return key
}

// ShardFor returns the shard index a key routes to. Exported so tests (and
// operators debugging placement) can verify routing is stable.
func (s *Service) ShardFor(key string) int {
	h := fnv.New64a()
	switch s.mode {
	case SubtreeMode:
		h.Write([]byte(topSegment(key)))
	default:
		h.Write([]byte(key))
	}
	return int(h.Sum64() % uint64(len(s.shards)))
}

func (s *Service) shard(key string) coord.Service { return s.shards[s.ShardFor(key)] }

// GetMetadata implements coord.Service.
func (s *Service) GetMetadata(ctx context.Context, key string) (coord.Record, error) {
	i := s.ShardFor(key)
	s.routeSpan(ctx, i)
	return s.shards[i].GetMetadata(ctx, key)
}

// PutMetadata implements coord.Service.
func (s *Service) PutMetadata(ctx context.Context, key string, value []byte, acl coord.ACL) (uint64, error) {
	i := s.ShardFor(key)
	s.routeSpan(ctx, i)
	return s.shards[i].PutMetadata(ctx, key, value, acl)
}

// CasMetadata implements coord.Service. Because routing is a pure function of
// the key, every CAS on one key lands on the same shard, so the backend's
// compare-and-swap retains its linearizable conflict detection.
func (s *Service) CasMetadata(ctx context.Context, key string, value []byte, expectedVersion uint64, acl coord.ACL) (uint64, error) {
	i := s.ShardFor(key)
	s.routeSpan(ctx, i)
	return s.shards[i].CasMetadata(ctx, key, value, expectedVersion, acl)
}

// DeleteMetadata implements coord.Service.
func (s *Service) DeleteMetadata(ctx context.Context, key string) error {
	i := s.ShardFor(key)
	s.routeSpan(ctx, i)
	return s.shards[i].DeleteMetadata(ctx, key)
}

// listTargets returns the shards a prefix listing must consult. In
// SubtreeMode a prefix that pins its whole top segment (it extends past a
// '/') can only match keys on that segment's shard, so directory listings
// stay single-shard; every other case fans out to all shards.
func (s *Service) listTargets(prefix string) []coord.Service {
	if s.mode == SubtreeMode {
		trimmed := strings.TrimPrefix(prefix, "/")
		if i := strings.IndexByte(trimmed, '/'); i > 0 {
			return s.shards[s.ShardFor(prefix) : s.ShardFor(prefix)+1]
		}
	}
	return s.shards
}

// ListMetadata implements coord.Service: it fans out to the relevant shards
// concurrently and merges the results sorted by key, so the merge order is
// deterministic regardless of shard count or reply arrival order.
func (s *Service) ListMetadata(ctx context.Context, prefix string) ([]coord.Record, error) {
	targets := s.listTargets(prefix)
	if len(targets) == 1 {
		s.routeSpan(ctx, s.ShardFor(prefix))
		out, err := targets[0].ListMetadata(ctx, prefix)
		if err != nil {
			return nil, fmt.Errorf("metashard: list on shard %d: %w", s.ShardFor(prefix), err)
		}
		sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
		return out, nil
	}
	tr := telemetry.FromContext(ctx)
	var fanStart time.Time
	if tr != nil {
		fanStart = time.Now()
	}
	results := make([][]coord.Record, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, sh := range targets {
		wg.Add(1)
		go func(i int, sh coord.Service) {
			defer wg.Done()
			results[i], errs[i] = sh.ListMetadata(ctx, prefix)
		}(i, sh)
	}
	wg.Wait()
	var out []coord.Record
	merr := error(nil)
	for i := range targets {
		if errs[i] != nil {
			merr = fmt.Errorf("metashard: list on shard %d: %w", i, errs[i])
			break
		}
		out = append(out, results[i]...)
	}
	if tr != nil {
		outc := telemetry.SpanOK
		if merr != nil {
			outc = telemetry.SpanError
		}
		tr.Record(telemetry.Span{
			Name:    "shard.fanout",
			Start:   fanStart,
			Dur:     time.Since(fanStart),
			Outcome: outc,
			Err:     merr,
			Ops:     len(targets),
		})
	}
	if merr != nil {
		return nil, merr
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	return out, nil
}

// renameMatches applies the RenamePrefix matching rule shared by the
// backends: the exact key, or any key extending it past a path separator.
func renameMatches(key, oldPrefix string) bool {
	return key == oldPrefix || strings.HasPrefix(key, oldPrefix+"/")
}

// RenamePrefix implements coord.Service.
//
// In SubtreeMode, every key matching oldPrefix shares oldPrefix's top segment
// (the matching rule only extends a prefix past a '/'), so when source and
// destination route to the same shard the rename delegates to that backend
// and keeps whatever atomicity it provides.
//
// Otherwise — HashMode, or a cross-subtree rename — the records move one at a
// time: copy to the destination shard, then delete from the source shard, in
// ascending key order. The partial-failure contract: if the move fails after
// k records, the first k records exist only under their new keys, the failing
// record may exist under BOTH keys (copied but not yet deleted), and the rest
// are untouched under their old keys; the returned count is k. Re-issuing the
// same rename is safe and completes the move (already-moved records no longer
// match oldPrefix). Each copy re-stores the record under the ACL the source
// shard reported (coord.Record.ACL), so backend-enforced access policies
// survive the move on backends that expose them.
func (s *Service) RenamePrefix(ctx context.Context, oldPrefix, newPrefix string) (int, error) {
	if s.mode == SubtreeMode {
		src, dst := s.ShardFor(oldPrefix), s.ShardFor(newPrefix)
		if src == dst {
			s.routeSpan(ctx, src)
			return s.shards[src].RenamePrefix(ctx, oldPrefix, newPrefix)
		}
	}
	records, err := s.ListMetadata(ctx, oldPrefix)
	if err != nil {
		return 0, err
	}
	count := 0
	for _, r := range records {
		if !renameMatches(r.Key, oldPrefix) {
			continue
		}
		newKey := newPrefix + strings.TrimPrefix(r.Key, oldPrefix)
		if _, err := s.shard(newKey).PutMetadata(ctx, newKey, r.Value, r.ACL); err != nil {
			return count, fmt.Errorf("metashard: rename copy of %q: %w", r.Key, err)
		}
		if err := s.shard(r.Key).DeleteMetadata(ctx, r.Key); err != nil {
			return count, fmt.Errorf("metashard: rename delete of %q: %w", r.Key, err)
		}
		count++
	}
	return count, nil
}

// TryLock implements coord.Service; locks route by name like metadata keys,
// so one lock name always resolves to one backend.
func (s *Service) TryLock(ctx context.Context, name, owner string, ttl time.Duration) error {
	i := s.ShardFor(name)
	s.routeSpan(ctx, i)
	return s.shards[i].TryLock(ctx, name, owner, ttl)
}

// Unlock implements coord.Service.
func (s *Service) Unlock(ctx context.Context, name, owner string) error {
	i := s.ShardFor(name)
	s.routeSpan(ctx, i)
	return s.shards[i].Unlock(ctx, name, owner)
}

// Stats implements coord.Service, summing the access counters of every shard.
func (s *Service) Stats() coord.Stats {
	var total coord.Stats
	for _, sh := range s.shards {
		st := sh.Stats()
		total.MetadataReads += st.MetadataReads
		total.MetadataWrites += st.MetadataWrites
		total.MetadataLists += st.MetadataLists
		total.LockOps += st.LockOps
	}
	return total
}

// PerShardStats returns each shard's own counters, index-aligned with the
// backend order passed to New — the observability hook for spotting hot
// shards.
func (s *Service) PerShardStats() []coord.Stats {
	out := make([]coord.Stats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.Stats()
	}
	return out
}
