package metashard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"scfs/internal/coord"
	"scfs/internal/depspace"
)

var bg = context.Background()

func newShards(t *testing.T, n int) []coord.Service {
	t.Helper()
	shards := make([]coord.Service, n)
	for i := range shards {
		shards[i] = coord.NewDepSpaceService(
			depspace.NewClient(&depspace.LocalInvoker{Space: depspace.NewSpace()}, "agent", nil))
	}
	return shards
}

func newSharded(t *testing.T, n int, opts ...Option) *Service {
	t.Helper()
	s, err := New(newShards(t, n), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoutingIsStable(t *testing.T) {
	s := newSharded(t, 4)
	for _, key := range []string{"a/b/c", "", "/", "x", "dir/file.txt"} {
		first := s.ShardFor(key)
		for i := 0; i < 10; i++ {
			if got := s.ShardFor(key); got != first {
				t.Fatalf("ShardFor(%q) flapped: %d then %d", key, first, got)
			}
		}
	}
	// Subtree mode co-locates a whole subtree.
	sub := newSharded(t, 4, WithSubtreePartition())
	base := sub.ShardFor("tree")
	for _, key := range []string{"tree/a", "tree/a/b", "tree/zzz", "/tree/lead-slash"} {
		if got := sub.ShardFor(key); got != base {
			t.Fatalf("subtree key %q routed to shard %d, root to %d", key, got, base)
		}
	}
}

func TestBasicOpsRouteAndRoundTrip(t *testing.T) {
	s := newSharded(t, 3)
	acl := coord.ACL{Owner: "agent"}
	keys := make([]string, 20)
	for i := range keys {
		keys[i] = fmt.Sprintf("dir-%d/file-%d", i%5, i)
		if _, err := s.PutMetadata(bg, keys[i], []byte(fmt.Sprintf("v%d", i)), acl); err != nil {
			t.Fatalf("put %s: %v", keys[i], err)
		}
	}
	used := map[int]bool{}
	for i, key := range keys {
		rec, err := s.GetMetadata(bg, key)
		if err != nil || string(rec.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %s = %q, %v", key, rec.Value, err)
		}
		used[s.ShardFor(key)] = true
	}
	if len(used) < 2 {
		t.Fatalf("20 keys across 3 shards landed on %d shard(s); hash is not spreading", len(used))
	}
	if err := s.DeleteMetadata(bg, keys[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetMetadata(bg, keys[0]); !errors.Is(err, coord.ErrNotFound) {
		t.Fatalf("get after delete: %v, want ErrNotFound", err)
	}
}

func TestListMergeOrderIsDeterministic(t *testing.T) {
	acl := coord.ACL{Owner: "agent"}
	// Same data, different shard counts: the merged listing must be identical.
	var listings [][]string
	for _, n := range []int{1, 2, 5} {
		s := newSharded(t, n)
		for i := 0; i < 30; i++ {
			key := fmt.Sprintf("ls/%02d", (i*7)%30) // insertion order != key order
			if _, err := s.PutMetadata(bg, key, []byte("x"), acl); err != nil {
				t.Fatal(err)
			}
		}
		recs, err := s.ListMetadata(bg, "ls/")
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]string, len(recs))
		for i, r := range recs {
			keys[i] = r.Key
		}
		if !sort.StringsAreSorted(keys) {
			t.Fatalf("listing with %d shards is not key-sorted: %v", n, keys)
		}
		listings = append(listings, keys)
	}
	for i := 1; i < len(listings); i++ {
		if fmt.Sprint(listings[i]) != fmt.Sprint(listings[0]) {
			t.Fatalf("listing differs across shard counts:\n%v\nvs\n%v", listings[0], listings[i])
		}
	}
}

func TestConcurrentCasSameKeySameShard(t *testing.T) {
	s := newSharded(t, 4)
	acl := coord.ACL{Owner: "agent"}
	const key = "contended/key"
	ver, err := s.PutMetadata(bg, key, []byte("0"), acl)
	if err != nil {
		t.Fatal(err)
	}
	// 16 goroutines CAS the same key from the same observed version: exactly
	// one must win per round, which is only guaranteed if every CAS lands on
	// the same backend.
	const rounds = 8
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		var wins, conflicts int64
		var mu sync.Mutex
		var nextVer uint64
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				v, err := s.CasMetadata(bg, key, []byte(fmt.Sprintf("r%d-g%d", r, g)), ver, acl)
				mu.Lock()
				defer mu.Unlock()
				switch {
				case err == nil:
					wins++
					nextVer = v
				case errors.Is(err, coord.ErrConflict):
					conflicts++
				default:
					t.Errorf("cas: %v", err)
				}
			}(g)
		}
		wg.Wait()
		if wins != 1 || conflicts != 15 {
			t.Fatalf("round %d: %d winners, %d conflicts (want exactly 1 and 15)", r, wins, conflicts)
		}
		ver = nextVer
	}
}

func TestRenamePrefixAcrossShards(t *testing.T) {
	s := newSharded(t, 4)
	acl := coord.ACL{Owner: "agent"}
	for i := 0; i < 12; i++ {
		if _, err := s.PutMetadata(bg, fmt.Sprintf("src/f%02d", i), []byte(fmt.Sprintf("v%d", i)), acl); err != nil {
			t.Fatal(err)
		}
	}
	// "src-sibling" must NOT match the rename of "src" (separator rule).
	if _, err := s.PutMetadata(bg, "src-sibling", []byte("keep"), acl); err != nil {
		t.Fatal(err)
	}
	n, err := s.RenamePrefix(bg, "src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		t.Fatalf("renamed %d records, want 12", n)
	}
	for i := 0; i < 12; i++ {
		rec, err := s.GetMetadata(bg, fmt.Sprintf("dst/f%02d", i))
		if err != nil || string(rec.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("dst/f%02d = %q, %v", i, rec.Value, err)
		}
		if _, err := s.GetMetadata(bg, fmt.Sprintf("src/f%02d", i)); !errors.Is(err, coord.ErrNotFound) {
			t.Fatalf("src/f%02d still present after rename (err=%v)", i, err)
		}
	}
	if rec, err := s.GetMetadata(bg, "src-sibling"); err != nil || string(rec.Value) != "keep" {
		t.Fatalf("src-sibling disturbed by rename: %q, %v", rec.Value, err)
	}
}

func TestSubtreeRenameDelegatesToOneShard(t *testing.T) {
	s := newSharded(t, 4, WithSubtreePartition())
	acl := coord.ACL{Owner: "agent"}
	for i := 0; i < 6; i++ {
		if _, err := s.PutMetadata(bg, fmt.Sprintf("tree/a/f%d", i), []byte("x"), acl); err != nil {
			t.Fatal(err)
		}
	}
	before := s.PerShardStats()
	n, err := s.RenamePrefix(bg, "tree/a", "tree/b")
	if err != nil || n != 6 {
		t.Fatalf("rename = %d, %v (want 6, nil)", n, err)
	}
	after := s.PerShardStats()
	// A delegated rename is one write on the owning shard — no fan-out.
	touched := 0
	for i := range before {
		if after[i] != before[i] {
			touched++
		}
	}
	if touched != 1 {
		t.Fatalf("subtree rename touched %d shards, want exactly 1", touched)
	}
	recs, err := s.ListMetadata(bg, "tree/b/")
	if err != nil || len(recs) != 6 {
		t.Fatalf("post-rename listing = %d records, %v", len(recs), err)
	}
}

// failingShard wraps a backend and fails writes on demand, to exercise the
// partial-failure contract of the cross-shard move.
type failingShard struct {
	coord.Service
	mu   sync.Mutex
	fail bool
}

func (f *failingShard) setFail(v bool) { f.mu.Lock(); f.fail = v; f.mu.Unlock() }

func (f *failingShard) failing() bool { f.mu.Lock(); defer f.mu.Unlock(); return f.fail }

func (f *failingShard) PutMetadata(ctx context.Context, key string, value []byte, acl coord.ACL) (uint64, error) {
	if f.failing() {
		return 0, errors.New("injected shard outage")
	}
	return f.Service.PutMetadata(ctx, key, value, acl)
}

func TestRenamePartialFailureContract(t *testing.T) {
	inner := newShards(t, 2)
	flaky := &failingShard{Service: inner[1]}
	s, err := New([]coord.Service{inner[0], flaky})
	if err != nil {
		t.Fatal(err)
	}
	acl := coord.ACL{Owner: "agent"}
	const total = 16
	for i := 0; i < total; i++ {
		if _, err := s.PutMetadata(bg, fmt.Sprintf("mv/%02d", i), []byte("x"), acl); err != nil {
			t.Fatal(err)
		}
	}
	flaky.setFail(true)
	n, err := s.RenamePrefix(bg, "mv", "moved")
	if err == nil {
		t.Fatal("rename succeeded with a shard down")
	}
	// Contract: the first n records are fully moved; re-issuing the rename
	// after the outage completes the move, and nothing is lost.
	flaky.setFail(false)
	n2, err := s.RenamePrefix(bg, "mv", "moved")
	if err != nil {
		t.Fatalf("re-issued rename: %v", err)
	}
	recs, err := s.ListMetadata(bg, "moved/")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != total {
		t.Fatalf("after recovery %d records under moved/, want %d (first pass %d, second %d)", len(recs), total, n, n2)
	}
	if left, _ := s.ListMetadata(bg, "mv/"); len(left) != 0 {
		t.Fatalf("%d records stranded under mv/ after recovery", len(left))
	}
}

// TestCrossShardRenamePreservesACLs pins the access-policy fix: the
// record-by-record cross-shard move must re-store each record under the ACL
// the source shard reported, not a blank (world-accessible) one.
func TestCrossShardRenamePreservesACLs(t *testing.T) {
	spaces := []*depspace.Space{depspace.NewSpace(), depspace.NewSpace(), depspace.NewSpace()}
	asPrincipal := func(who string) *Service {
		shards := make([]coord.Service, len(spaces))
		for i, sp := range spaces {
			shards[i] = coord.NewDepSpaceService(depspace.NewClient(&depspace.LocalInvoker{Space: sp}, who, nil))
		}
		s, err := New(shards)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	owner := asPrincipal("agent")
	intruder := asPrincipal("mallory")

	acl := coord.ACL{Owner: "agent"}
	const total = 10
	for i := 0; i < total; i++ {
		if _, err := owner.PutMetadata(bg, fmt.Sprintf("sec/f%02d", i), []byte("v"), acl); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := owner.RenamePrefix(bg, "sec", "prot"); err != nil || n != total {
		t.Fatalf("rename = %d, %v (want %d, nil)", n, err, total)
	}
	for i := 0; i < total; i++ {
		key := fmt.Sprintf("prot/f%02d", i)
		rec, err := owner.GetMetadata(bg, key)
		if err != nil {
			t.Fatalf("owner get %s: %v", key, err)
		}
		if rec.ACL.Owner != "agent" {
			t.Fatalf("record %s lost its ACL in the move: owner = %q, want %q", key, rec.ACL.Owner, "agent")
		}
		if _, err := intruder.GetMetadata(bg, key); err == nil {
			t.Fatalf("record %s became readable by another principal after the cross-shard move", key)
		}
	}
}

func TestSubtreeListTargetsOneShard(t *testing.T) {
	s := newSharded(t, 4, WithSubtreePartition())
	acl := coord.ACL{Owner: "agent"}
	for i := 0; i < 5; i++ {
		if _, err := s.PutMetadata(bg, fmt.Sprintf("/dir/f%d", i), []byte("x"), acl); err != nil {
			t.Fatal(err)
		}
	}
	before := s.PerShardStats()
	recs, err := s.ListMetadata(bg, "/dir/")
	if err != nil || len(recs) != 5 {
		t.Fatalf("list = %d records, %v", len(recs), err)
	}
	if !sort.SliceIsSorted(recs, func(a, b int) bool { return recs[a].Key < recs[b].Key }) {
		t.Fatal("single-shard listing not key-sorted")
	}
	after := s.PerShardStats()
	listed := 0
	for i := range before {
		listed += int(after[i].MetadataLists - before[i].MetadataLists)
	}
	if listed != 1 {
		t.Fatalf("subtree-pinned listing hit %d shards, want 1", listed)
	}
	// An incomplete top segment must still fan out.
	before = s.PerShardStats()
	if _, err := s.ListMetadata(bg, "/di"); err != nil {
		t.Fatal(err)
	}
	after = s.PerShardStats()
	listed = 0
	for i := range before {
		listed += int(after[i].MetadataLists - before[i].MetadataLists)
	}
	if listed != 4 {
		t.Fatalf("unpinned listing hit %d shards, want 4", listed)
	}
}

func TestLocksRouteByName(t *testing.T) {
	s := newSharded(t, 3)
	if err := s.TryLock(bg, "locks/a", "alice", time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := s.TryLock(bg, "locks/a", "bob", time.Minute); !errors.Is(err, coord.ErrLockHeld) {
		t.Fatalf("second owner acquired the lock: %v", err)
	}
	if err := s.Unlock(bg, "locks/a", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := s.TryLock(bg, "locks/a", "bob", time.Minute); err != nil {
		t.Fatalf("lock not acquirable after unlock: %v", err)
	}
}

func TestStatsAggregation(t *testing.T) {
	s := newSharded(t, 3)
	acl := coord.ACL{Owner: "agent"}
	for i := 0; i < 9; i++ {
		if _, err := s.PutMetadata(bg, fmt.Sprintf("st/%d", i), []byte("x"), acl); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.ListMetadata(bg, "st/"); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.MetadataWrites != 9 {
		t.Fatalf("aggregated writes = %d, want 9", st.MetadataWrites)
	}
	if st.MetadataLists != 3 {
		t.Fatalf("aggregated lists = %d, want 3 (one per shard fan-out)", st.MetadataLists)
	}
	per := s.PerShardStats()
	var sum int64
	for _, p := range per {
		sum += p.Total()
	}
	if sum != st.Total() {
		t.Fatalf("per-shard totals sum %d != aggregate %d", sum, st.Total())
	}
}

func TestNewRejectsEmptyShardList(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("New(nil) succeeded")
	}
}
