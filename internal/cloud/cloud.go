// Package cloud defines the object-storage abstraction SCFS expects from a
// cloud provider: unmodified blob storage with per-object access control
// lists, exactly the "service-agnosticism" assumption of the paper (§2.1). It
// contains no implementation; see internal/cloudsim for the simulated
// providers used in tests and benchmarks.
package cloud

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Permission describes what a grantee may do with an object.
type Permission int

const (
	// PermNone revokes access.
	PermNone Permission = iota
	// PermRead allows reading the object.
	PermRead
	// PermWrite allows overwriting or deleting the object.
	PermWrite
	// PermReadWrite allows both.
	PermReadWrite
)

// String returns a human-readable permission name.
func (p Permission) String() string {
	switch p {
	case PermNone:
		return "none"
	case PermRead:
		return "read"
	case PermWrite:
		return "write"
	case PermReadWrite:
		return "read-write"
	default:
		return fmt.Sprintf("Permission(%d)", int(p))
	}
}

// CanRead reports whether the permission allows reads.
func (p Permission) CanRead() bool { return p == PermRead || p == PermReadWrite }

// CanWrite reports whether the permission allows writes.
func (p Permission) CanWrite() bool { return p == PermWrite || p == PermReadWrite }

// Grant gives an account a permission on an object.
type Grant struct {
	// Grantee is the provider-canonical account identifier.
	Grantee string
	// Perm is the granted permission.
	Perm Permission
}

// ObjectInfo describes a stored object.
type ObjectInfo struct {
	// Name is the object key.
	Name string
	// Size is the payload length in bytes.
	Size int64
	// Owner is the canonical identifier of the account that created it.
	Owner string
	// ModTime is the time of the last successful write.
	ModTime time.Time
}

// Usage summarizes the metered consumption of one account at one provider,
// which internal/pricing converts into dollars.
type Usage struct {
	// PutRequests, GetRequests, DeleteRequests, ListRequests count API calls.
	PutRequests    int64
	GetRequests    int64
	DeleteRequests int64
	ListRequests   int64
	// BytesIn is inbound (upload) traffic; BytesOut is outbound (download).
	BytesIn  int64
	BytesOut int64
	// StoredBytes is the current footprint; ByteHours integrates it over time.
	StoredBytes int64
	ByteHours   float64
}

// Meter is an optional interface an ObjectStore may implement to expose the
// provider-metered consumption of its account. The telemetry layer uses it
// to surface per-provider usage (and, priced through internal/pricing,
// dollar spend) in the mount's stats without instrumenting each RPC twice.
type Meter interface {
	// Usage returns the metered consumption so far.
	Usage() Usage
}

// Add accumulates other into u.
func (u *Usage) Add(other Usage) {
	u.PutRequests += other.PutRequests
	u.GetRequests += other.GetRequests
	u.DeleteRequests += other.DeleteRequests
	u.ListRequests += other.ListRequests
	u.BytesIn += other.BytesIn
	u.BytesOut += other.BytesOut
	u.StoredBytes += other.StoredBytes
	u.ByteHours += other.ByteHours
}

// Sentinel errors shared by all object-store implementations. They fall in
// two classes the resilience layer (internal/resilience) tells apart:
// transient errors describe the provider's moment (an outage passes, a
// throttle clears) and are worth retrying with backoff; permanent errors
// describe the request (the object is absent, the ACL forbids it) and no
// retry can change the answer. Implementations should wrap the sentinels
// (%w) with provider context rather than replace them, so errors.Is keeps
// classifying through the chain.
var (
	// ErrNotFound is returned when the object does not exist or is not yet
	// visible (eventual consistency). Permanent for the RPC: the read loop
	// of the consistency anchor retries at a higher layer, with its own
	// schedule.
	ErrNotFound = errors.New("cloud: object not found")
	// ErrAccessDenied is returned when the ACL forbids the operation
	// (permanent).
	ErrAccessDenied = errors.New("cloud: access denied")
	// ErrUnavailable is returned when the provider is unreachable (outage).
	// Transient: the defining property of a cloud-of-clouds is that
	// provider outages pass.
	ErrUnavailable = errors.New("cloud: provider unavailable")
	// ErrThrottled is returned when the provider rate-limits the request
	// (HTTP 429/503 slow-down responses). Transient, and the one error that
	// positively demands backoff: retrying a throttle immediately makes it
	// worse.
	ErrThrottled = errors.New("cloud: request throttled")
	// ErrCorrupted is returned when the returned payload fails integrity
	// verification performed by a higher layer. The simulator may also
	// return silently corrupted data without this error, which is exactly
	// why DepSky verifies hashes.
	ErrCorrupted = errors.New("cloud: object corrupted")
)

// ObjectStore is the per-account client view of one cloud provider. All
// operations are blocking and include the provider's (simulated) network
// latency; every operation honours its context, returning ctx.Err() promptly
// once the context is cancelled or past its deadline. DepSky's quorum fan-out
// relies on this to abort the losers of a quorum race instead of letting
// redundant RPCs run (and bill) to completion.
//
// A request abandoned mid-flight must behave like a lost message: a cancelled
// Put either took effect at the provider or it did not, and a cancelled Get
// transfers no payload. Implementations must not return partial data with a
// nil error.
type ObjectStore interface {
	// Provider returns the provider name (e.g. "amazon-s3").
	Provider() string
	// Account returns the canonical account identifier this client acts as.
	Account() string
	// Put stores data under name, overwriting any previous version. The
	// caller becomes the owner when the object is new.
	Put(ctx context.Context, name string, data []byte) error
	// Get returns the payload of name.
	Get(ctx context.Context, name string) ([]byte, error)
	// Head returns the metadata of name without transferring the payload.
	Head(ctx context.Context, name string) (ObjectInfo, error)
	// Delete removes name. Deleting a non-existent object is not an error
	// (mirrors S3 semantics).
	Delete(ctx context.Context, name string) error
	// List returns objects whose names begin with prefix, readable by this
	// account, in lexicographic order.
	List(ctx context.Context, prefix string) ([]ObjectInfo, error)
	// SetACL replaces the grants on an object (owner only).
	SetACL(ctx context.Context, name string, grants []Grant) error
	// GetACL returns the grants on an object (owner only).
	GetACL(ctx context.Context, name string) ([]Grant, error)
}
