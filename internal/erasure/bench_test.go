package erasure

import "testing"

// Benchmarks for the coding hot path at the sizes the ISSUE tracks (1 KiB,
// 64 KiB, 1 MiB) in the k=4, m=2 configuration, plus the seed's per-byte
// reference path (encodeParityRef) so the kernel speedup stays measurable.

var benchSizes = []struct {
	name string
	n    int
}{
	{"1KiB", 1 << 10},
	{"64KiB", 1 << 16},
	{"1MiB", 1 << 20},
}

func benchShards(b *testing.B, c *Coder, size int) ([][]byte, int) {
	b.Helper()
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 7)
	}
	shards, err := c.Split(data)
	if err != nil {
		b.Fatal(err)
	}
	return shards, len(shards[0])
}

func BenchmarkErasureEncode(b *testing.B) {
	for _, s := range benchSizes {
		b.Run(s.name, func(b *testing.B) {
			c, _ := New(4, 2)
			shards, shardSize := benchShards(b, c, s.n)
			b.SetBytes(int64(s.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.encodeParity(shards, shardSize)
			}
		})
	}
}

// BenchmarkErasureEncodeRef measures the seed's per-byte gf256.Mul encoding
// path on identical inputs; the committed baseline in BENCH_BASELINE.json is
// taken from this benchmark.
func BenchmarkErasureEncodeRef(b *testing.B) {
	for _, s := range benchSizes {
		b.Run(s.name, func(b *testing.B) {
			c, _ := New(4, 2)
			shards, shardSize := benchShards(b, c, s.n)
			b.SetBytes(int64(s.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.encodeParityRef(shards, shardSize)
			}
		})
	}
}

func BenchmarkErasureSplit(b *testing.B) {
	for _, s := range benchSizes {
		b.Run(s.name, func(b *testing.B) {
			c, _ := New(4, 2)
			data := make([]byte, s.n)
			b.SetBytes(int64(s.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Split(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkErasureReconstruct(b *testing.B) {
	for _, s := range benchSizes {
		b.Run(s.name, func(b *testing.B) {
			c, _ := New(4, 2)
			orig, _ := benchShards(b, c, s.n)
			work := make([][]byte, len(orig))
			b.SetBytes(int64(s.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Copy the surviving shards into reusable buffers; drop two.
				copy(work, orig)
				work[0], work[3] = nil, nil
				if err := c.Reconstruct(work); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkErasureVerify(b *testing.B) {
	for _, s := range benchSizes {
		b.Run(s.name, func(b *testing.B) {
			c, _ := New(4, 2)
			shards, _ := benchShards(b, c, s.n)
			b.SetBytes(int64(s.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ok, err := c.Verify(shards)
				if err != nil || !ok {
					b.Fatal("verify failed")
				}
			}
		})
	}
}
