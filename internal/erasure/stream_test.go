package erasure

import (
	"bytes"
	"crypto/rand"
	"testing"
)

func TestSplitIntoMatchesSplit(t *testing.T) {
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{0, 1, 7, 4096, 4099} {
		data := make([]byte, size)
		if _, err := rand.Read(data); err != nil {
			t.Fatal(err)
		}
		want, err := c.Split(data)
		if err != nil {
			t.Fatal(err)
		}
		shardSize := c.ShardSize(size)
		if shardSize == 0 {
			shardSize = 1
		}
		// Dirty backing: SplitInto must overwrite every byte it hands out.
		backing := bytes.Repeat([]byte{0xEE}, c.TotalShards()*shardSize)
		got, err := c.SplitInto(data, backing)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !bytes.Equal(want[i], got[i]) {
				t.Fatalf("size %d: shard %d differs", size, i)
			}
		}
	}
	if _, err := c.SplitInto(make([]byte, 100), make([]byte, 10)); err == nil {
		t.Fatal("expected error for undersized backing")
	}
}

func TestReconstructDataIntoSkipsParity(t *testing.T) {
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 10_000)
	if _, err := rand.Read(data); err != nil {
		t.Fatal(err)
	}
	shards, err := c.Split(data)
	if err != nil {
		t.Fatal(err)
	}
	// Drop one data shard and one parity shard.
	shardSize := len(shards[0])
	shards[1] = nil
	shards[5] = nil
	scratch := make([]byte, shardSize)
	if err := c.ReconstructDataInto(shards, scratch); err != nil {
		t.Fatal(err)
	}
	if shards[5] != nil {
		t.Fatal("parity shard was rebuilt by ReconstructDataInto")
	}
	got := make([]byte, len(data))
	if err := c.JoinInto(got, shards, len(data)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch after data-only reconstruction")
	}
}

func TestReconstructIntoWithScratch(t *testing.T) {
	c, err := New(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 5_000)
	if _, err := rand.Read(data); err != nil {
		t.Fatal(err)
	}
	shards, err := c.Split(data)
	if err != nil {
		t.Fatal(err)
	}
	shardSize := len(shards[0])
	shards[0] = nil
	shards[3] = nil
	shards[4] = nil
	scratch := make([]byte, 3*shardSize)
	if err := c.ReconstructInto(shards, scratch); err != nil {
		t.Fatal(err)
	}
	for i, s := range shards {
		if s == nil {
			t.Fatalf("shard %d still missing", i)
		}
	}
	ok, err := c.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("Verify = (%v, %v)", ok, err)
	}
	// Undersized scratch must still work (falls back to allocating).
	shards[1] = nil
	if err := c.ReconstructInto(shards, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestJoinIntoErrors(t *testing.T) {
	c, err := New(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := c.Split([]byte("hello world"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.JoinInto(make([]byte, 4), shards, 11); err == nil {
		t.Fatal("expected error for undersized destination")
	}
	shards[0] = nil
	if err := c.JoinInto(make([]byte, 11), shards, 11); err != ErrTooFewShards {
		t.Fatalf("err = %v, want ErrTooFewShards", err)
	}
}
