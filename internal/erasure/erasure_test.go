package erasure

import (
	"bytes"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCoder(t *testing.T, k, m int) *Coder {
	t.Helper()
	c, err := New(k, m)
	if err != nil {
		t.Fatalf("New(%d,%d): %v", k, m, err)
	}
	return c
}

func randomBytes(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	r.Read(b)
	return b
}

func TestNewRejectsBadParameters(t *testing.T) {
	cases := []struct{ k, m int }{{0, 1}, {-1, 2}, {1, -1}, {200, 100}}
	for _, c := range cases {
		if _, err := New(c.k, c.m); err == nil {
			t.Errorf("New(%d,%d) succeeded, want error", c.k, c.m)
		}
	}
	if _, err := New(2, 0); err != nil {
		t.Errorf("New(2,0) should be allowed (no parity): %v", err)
	}
}

func TestSplitJoinRoundTripNoLoss(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, size := range []int{0, 1, 2, 7, 16, 100, 1024, 4096, 10000} {
		c := mustCoder(t, 2, 2)
		data := randomBytes(r, size)
		shards, err := c.Split(data)
		if err != nil {
			t.Fatalf("Split(%d bytes): %v", size, err)
		}
		if len(shards) != 4 {
			t.Fatalf("expected 4 shards, got %d", len(shards))
		}
		got, err := c.Join(shards, len(data))
		if err != nil {
			t.Fatalf("Join: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip mismatch for size %d", size)
		}
	}
}

func TestReconstructFromAnyKShards(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	c := mustCoder(t, 2, 2) // DepSky config for f=1: any 2 of 4 shards suffice
	data := randomBytes(r, 5000)
	orig, err := c.Split(data)
	if err != nil {
		t.Fatal(err)
	}
	// Try every pair of surviving shards.
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			shards := make([][]byte, 4)
			shards[i] = append([]byte(nil), orig[i]...)
			shards[j] = append([]byte(nil), orig[j]...)
			if err := c.Reconstruct(shards); err != nil {
				t.Fatalf("Reconstruct with shards %d,%d: %v", i, j, err)
			}
			got, err := c.Join(shards, len(data))
			if err != nil {
				t.Fatalf("Join after reconstruct: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("data mismatch after reconstructing from shards %d,%d", i, j)
			}
		}
	}
}

func TestReconstructRebuildsParityToo(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	c := mustCoder(t, 3, 2)
	data := randomBytes(r, 999)
	orig, _ := c.Split(data)
	shards := make([][]byte, 5)
	// Keep only the 3 data shards; both parity shards must be rebuilt.
	for i := 0; i < 3; i++ {
		shards[i] = append([]byte(nil), orig[i]...)
	}
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 5; i++ {
		if !bytes.Equal(shards[i], orig[i]) {
			t.Fatalf("parity shard %d not rebuilt correctly", i)
		}
	}
}

func TestReconstructTooFewShards(t *testing.T) {
	c := mustCoder(t, 3, 2)
	data := make([]byte, 100)
	orig, _ := c.Split(data)
	shards := make([][]byte, 5)
	shards[0] = orig[0]
	shards[4] = orig[4]
	if err := c.Reconstruct(shards); err != ErrTooFewShards {
		t.Fatalf("err = %v, want ErrTooFewShards", err)
	}
}

func TestReconstructShardCountMismatch(t *testing.T) {
	c := mustCoder(t, 2, 2)
	if err := c.Reconstruct(make([][]byte, 3)); err != ErrShardCountMismatch {
		t.Fatalf("err = %v, want ErrShardCountMismatch", err)
	}
}

func TestReconstructSizeMismatch(t *testing.T) {
	c := mustCoder(t, 2, 2)
	shards := [][]byte{make([]byte, 4), make([]byte, 5), nil, nil}
	if err := c.Reconstruct(shards); err != ErrShardSizeMismatch {
		t.Fatalf("err = %v, want ErrShardSizeMismatch", err)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	c := mustCoder(t, 2, 2)
	data := randomBytes(r, 2048)
	shards, _ := c.Split(data)
	ok, err := c.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("Verify on pristine shards = %v, %v; want true, nil", ok, err)
	}
	shards[1][10] ^= 0xFF
	ok, err = c.Verify(shards)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Verify did not detect corrupted data shard")
	}
}

func TestJoinErrors(t *testing.T) {
	c := mustCoder(t, 2, 1)
	if _, err := c.Join(make([][]byte, 2), 10); err != ErrShardCountMismatch {
		t.Fatalf("err = %v, want ErrShardCountMismatch", err)
	}
	shards := [][]byte{nil, make([]byte, 4), make([]byte, 4)}
	if _, err := c.Join(shards, 8); err != ErrTooFewShards {
		t.Fatalf("err = %v, want ErrTooFewShards", err)
	}
	shards = [][]byte{make([]byte, 2), make([]byte, 2), make([]byte, 2)}
	if _, err := c.Join(shards, 100); err == nil {
		t.Fatal("Join with dataLen larger than capacity should fail")
	}
}

func TestJoinEmptyData(t *testing.T) {
	c := mustCoder(t, 3, 1)
	shards, err := c.Split(nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Join(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("expected empty output, got %d bytes", len(out))
	}
}

func TestShardSize(t *testing.T) {
	c := mustCoder(t, 4, 2)
	cases := []struct{ in, want int }{{0, 0}, {1, 1}, {4, 1}, {5, 2}, {1000, 250}, {1001, 251}}
	for _, tc := range cases {
		if got := c.ShardSize(tc.in); got != tc.want {
			t.Errorf("ShardSize(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestStorageOverheadForDepSkyConfig(t *testing.T) {
	// The paper stores ~1.5x the file size in the CoC (f=1: 2 data + 1 extra
	// coded block actually stored; our coder with k=2, m=2 produces 2x but
	// DepSky only uploads n-f=3 of them -> 1.5x).
	c := mustCoder(t, 2, 2)
	data := make([]byte, 1<<20)
	shards, _ := c.Split(data)
	perShard := len(shards[0])
	if perShard != 1<<19 {
		t.Fatalf("shard size = %d, want %d", perShard, 1<<19)
	}
	stored := 3 * perShard // DepSky preferred quorum stores n-f shards
	if float64(stored)/float64(len(data)) != 1.5 {
		t.Fatalf("storage overhead = %f, want 1.5", float64(stored)/float64(len(data)))
	}
}

func TestPropertyReconstructAfterRandomErasures(t *testing.T) {
	c := mustCoder(t, 3, 2)
	f := func(seed int64, sizeRaw uint16) bool {
		r := rand.New(rand.NewSource(seed))
		size := int(sizeRaw)%4096 + 1
		data := randomBytes(r, size)
		orig, err := c.Split(data)
		if err != nil {
			return false
		}
		// Erase up to ParityShards random shards.
		shards := make([][]byte, len(orig))
		for i := range orig {
			shards[i] = append([]byte(nil), orig[i]...)
		}
		erased := 0
		for erased < c.ParityShards {
			idx := r.Intn(len(shards))
			if shards[idx] != nil {
				shards[idx] = nil
				erased++
			}
		}
		if err := c.Reconstruct(shards); err != nil {
			return false
		}
		got, err := c.Join(shards, len(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeParityMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, cfg := range []struct{ k, m int }{{2, 2}, {4, 2}, {3, 2}, {5, 1}, {4, 3}} {
		c := mustCoder(t, cfg.k, cfg.m)
		for _, size := range []int{1, 31, 32, 33, 1000, 70000} {
			data := randomBytes(r, size)
			fast, err := c.Split(data)
			if err != nil {
				t.Fatal(err)
			}
			ref := make([][]byte, len(fast))
			shardSize := len(fast[0])
			for i := 0; i < cfg.k; i++ {
				ref[i] = append([]byte(nil), fast[i]...)
			}
			for i := cfg.k; i < len(ref); i++ {
				ref[i] = make([]byte, shardSize)
			}
			c.encodeParityRef(ref, shardSize)
			for i := cfg.k; i < len(ref); i++ {
				if !bytes.Equal(fast[i], ref[i]) {
					t.Fatalf("k=%d m=%d size=%d: parity shard %d differs from reference", cfg.k, cfg.m, size, i)
				}
			}
		}
	}
}

// TestReconstructAllErasureCombinations exercises every missing-shard
// combination of every (k, m) configuration with n = k+m <= 6: the degraded
// read patterns DepSky can encounter with f faulty clouds.
func TestReconstructAllErasureCombinations(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for n := 2; n <= 6; n++ {
		for k := 1; k < n; k++ {
			m := n - k
			c := mustCoder(t, k, m)
			data := randomBytes(r, 1021)
			orig, err := c.Split(data)
			if err != nil {
				t.Fatal(err)
			}
			// Every subset of at most m missing shards, via bitmask.
			for mask := 0; mask < 1<<n; mask++ {
				if bits.OnesCount(uint(mask)) > m {
					continue
				}
				shards := make([][]byte, n)
				for i := range shards {
					if mask&(1<<i) == 0 {
						shards[i] = append([]byte(nil), orig[i]...)
					}
				}
				if err := c.Reconstruct(shards); err != nil {
					t.Fatalf("k=%d m=%d mask=%b: %v", k, m, mask, err)
				}
				for i := range shards {
					if !bytes.Equal(shards[i], orig[i]) {
						t.Fatalf("k=%d m=%d mask=%b: shard %d reconstructed incorrectly", k, m, mask, i)
					}
				}
				got, err := c.Join(shards, len(data))
				if err != nil || !bytes.Equal(got, data) {
					t.Fatalf("k=%d m=%d mask=%b: join mismatch (%v)", k, m, mask, err)
				}
			}
		}
	}
}

func TestDecodeMatrixCacheReused(t *testing.T) {
	c := mustCoder(t, 2, 2)
	data := make([]byte, 4096)
	orig, _ := c.Split(data)
	for round := 0; round < 3; round++ {
		shards := [][]byte{nil, append([]byte(nil), orig[1]...), append([]byte(nil), orig[2]...), nil}
		if err := c.Reconstruct(shards); err != nil {
			t.Fatal(err)
		}
	}
	c.mu.Lock()
	entries := c.decodeOrder.Len()
	c.mu.Unlock()
	if entries != 1 {
		t.Fatalf("decode cache holds %d entries after identical degraded reads, want 1", entries)
	}
}

func BenchmarkSplit1MB(b *testing.B) {
	c, _ := New(2, 2)
	data := make([]byte, 1<<20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Split(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct1MB(b *testing.B) {
	c, _ := New(2, 2)
	data := make([]byte, 1<<20)
	orig, _ := c.Split(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards := [][]byte{nil, append([]byte(nil), orig[1]...), append([]byte(nil), orig[2]...), nil}
		if err := c.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}
