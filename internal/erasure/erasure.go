// Package erasure implements a systematic Reed-Solomon erasure code over
// GF(2^8), as used by the DepSky-CA protocol: a file is split into k data
// shards and m parity shards such that any k of the n = k+m shards suffice to
// reconstruct the original data. In the SCFS cloud-of-clouds configuration of
// the paper, n = 3f+1 providers and k = f+1, so each provider stores roughly
// 1/(f+1) of the file plus the erasure-coding overhead (~50% extra space for
// f=1 instead of the 300% extra of full replication).
package erasure

import (
	"errors"
	"fmt"

	"scfs/internal/gf256"
)

// Coder encodes and reconstructs data using Reed-Solomon coding with
// DataShards data shards and ParityShards parity shards.
type Coder struct {
	DataShards   int
	ParityShards int

	// encode is the (data+parity) x data coding matrix. Its top k rows are
	// the identity (systematic code), the remaining m rows generate parity.
	encode *gf256.Matrix
}

// Common parameter errors.
var (
	ErrInvalidShardCounts = errors.New("erasure: shard counts must be positive and total at most 256")
	ErrTooFewShards       = errors.New("erasure: not enough shards to reconstruct")
	ErrShardSizeMismatch  = errors.New("erasure: shards have inconsistent sizes")
	ErrShardCountMismatch = errors.New("erasure: wrong number of shards")
)

// New creates a Coder with the given number of data and parity shards.
func New(dataShards, parityShards int) (*Coder, error) {
	if dataShards <= 0 || parityShards < 0 || dataShards+parityShards > 256 {
		return nil, ErrInvalidShardCounts
	}
	n := dataShards + parityShards
	// Build a systematic coding matrix from a Vandermonde matrix: take the
	// n x k Vandermonde matrix V and normalize it to V * (V_top)^-1 so the
	// top k x k block becomes the identity. Any k rows of the result remain
	// invertible, so any k shards can reconstruct the data.
	v := gf256.Vandermonde(n, dataShards)
	top := v.SubMatrix(0, dataShards, 0, dataShards)
	topInv, err := top.Invert()
	if err != nil {
		return nil, fmt.Errorf("erasure: building coding matrix: %w", err)
	}
	return &Coder{
		DataShards:   dataShards,
		ParityShards: parityShards,
		encode:       v.Mul(topInv),
	}, nil
}

// TotalShards returns data+parity shard count.
func (c *Coder) TotalShards() int { return c.DataShards + c.ParityShards }

// ShardSize returns the size of each shard produced by Split for an input of
// dataLen bytes.
func (c *Coder) ShardSize(dataLen int) int {
	return (dataLen + c.DataShards - 1) / c.DataShards
}

// Split encodes data into TotalShards() shards: the first DataShards shards
// contain the (zero-padded) data, the remaining shards contain parity. The
// original length must be recorded separately (Join needs it) — DepSky keeps
// it in its metadata object.
func (c *Coder) Split(data []byte) ([][]byte, error) {
	shardSize := c.ShardSize(len(data))
	if shardSize == 0 {
		shardSize = 1 // allow empty payloads: one padding byte per shard
	}
	shards := make([][]byte, c.TotalShards())
	for i := range shards {
		shards[i] = make([]byte, shardSize)
	}
	for i := 0; i < c.DataShards; i++ {
		start := i * shardSize
		if start < len(data) {
			end := start + shardSize
			if end > len(data) {
				end = len(data)
			}
			copy(shards[i], data[start:end])
		}
	}
	c.encodeParity(shards, shardSize)
	return shards, nil
}

// encodeParity fills shards[DataShards:] from shards[:DataShards].
func (c *Coder) encodeParity(shards [][]byte, shardSize int) {
	for p := 0; p < c.ParityShards; p++ {
		row := c.encode.Row(c.DataShards + p)
		out := shards[c.DataShards+p]
		for i := range out {
			out[i] = 0
		}
		for d := 0; d < c.DataShards; d++ {
			coef := row[d]
			if coef == 0 {
				continue
			}
			in := shards[d]
			for i := 0; i < shardSize; i++ {
				out[i] ^= gf256.Mul(coef, in[i])
			}
		}
	}
}

// Reconstruct rebuilds missing shards in place. The shards slice must have
// TotalShards() entries; missing shards are nil. At least DataShards shards
// must be present. After a successful call every entry is non-nil.
func (c *Coder) Reconstruct(shards [][]byte) error {
	if len(shards) != c.TotalShards() {
		return ErrShardCountMismatch
	}
	shardSize := -1
	present := 0
	for _, s := range shards {
		if s == nil {
			continue
		}
		present++
		if shardSize == -1 {
			shardSize = len(s)
		} else if len(s) != shardSize {
			return ErrShardSizeMismatch
		}
	}
	if present < c.DataShards {
		return ErrTooFewShards
	}
	if present == c.TotalShards() {
		return nil
	}

	// Gather k present shards and the corresponding rows of the encode
	// matrix; invert to obtain a decode matrix that recovers the data shards.
	sub := gf256.NewMatrix(c.DataShards, c.DataShards)
	subShards := make([][]byte, 0, c.DataShards)
	rowsUsed := make([]int, 0, c.DataShards)
	for i := 0; i < c.TotalShards() && len(subShards) < c.DataShards; i++ {
		if shards[i] == nil {
			continue
		}
		copy(sub.Row(len(subShards)), c.encode.Row(i))
		subShards = append(subShards, shards[i])
		rowsUsed = append(rowsUsed, i)
	}
	_ = rowsUsed
	decode, err := sub.Invert()
	if err != nil {
		return fmt.Errorf("erasure: decode matrix: %w", err)
	}

	// Recover missing data shards.
	dataShards := make([][]byte, c.DataShards)
	for d := 0; d < c.DataShards; d++ {
		if shards[d] != nil {
			dataShards[d] = shards[d]
			continue
		}
		out := make([]byte, shardSize)
		row := decode.Row(d)
		for j := 0; j < c.DataShards; j++ {
			coef := row[j]
			if coef == 0 {
				continue
			}
			in := subShards[j]
			for i := 0; i < shardSize; i++ {
				out[i] ^= gf256.Mul(coef, in[i])
			}
		}
		shards[d] = out
		dataShards[d] = out
	}

	// Recompute any missing parity shards from the (now complete) data.
	for p := 0; p < c.ParityShards; p++ {
		idx := c.DataShards + p
		if shards[idx] != nil {
			continue
		}
		out := make([]byte, shardSize)
		row := c.encode.Row(idx)
		for d := 0; d < c.DataShards; d++ {
			coef := row[d]
			if coef == 0 {
				continue
			}
			in := dataShards[d]
			for i := 0; i < shardSize; i++ {
				out[i] ^= gf256.Mul(coef, in[i])
			}
		}
		shards[idx] = out
	}
	return nil
}

// Join reassembles the original data of length dataLen from the (complete)
// shard set. Call Reconstruct first if shards are missing.
func (c *Coder) Join(shards [][]byte, dataLen int) ([]byte, error) {
	if len(shards) != c.TotalShards() {
		return nil, ErrShardCountMismatch
	}
	if dataLen == 0 {
		return []byte{}, nil
	}
	var shardSize int
	for i := 0; i < c.DataShards; i++ {
		if shards[i] == nil {
			return nil, ErrTooFewShards
		}
		if i == 0 {
			shardSize = len(shards[i])
		} else if len(shards[i]) != shardSize {
			return nil, ErrShardSizeMismatch
		}
	}
	if shardSize*c.DataShards < dataLen {
		return nil, fmt.Errorf("erasure: shards hold %d bytes, need %d", shardSize*c.DataShards, dataLen)
	}
	out := make([]byte, 0, dataLen)
	for i := 0; i < c.DataShards && len(out) < dataLen; i++ {
		need := dataLen - len(out)
		if need > shardSize {
			need = shardSize
		}
		out = append(out, shards[i][:need]...)
	}
	return out, nil
}

// Verify reports whether the parity shards are consistent with the data
// shards. All shards must be present.
func (c *Coder) Verify(shards [][]byte) (bool, error) {
	if len(shards) != c.TotalShards() {
		return false, ErrShardCountMismatch
	}
	var shardSize int
	for i, s := range shards {
		if s == nil {
			return false, ErrTooFewShards
		}
		if i == 0 {
			shardSize = len(s)
		} else if len(s) != shardSize {
			return false, ErrShardSizeMismatch
		}
	}
	expected := make([][]byte, c.TotalShards())
	for i := 0; i < c.DataShards; i++ {
		expected[i] = shards[i]
	}
	for p := 0; p < c.ParityShards; p++ {
		expected[c.DataShards+p] = make([]byte, shardSize)
	}
	c.encodeParity(expected, shardSize)
	for p := 0; p < c.ParityShards; p++ {
		got := shards[c.DataShards+p]
		want := expected[c.DataShards+p]
		for i := range want {
			if got[i] != want[i] {
				return false, nil
			}
		}
	}
	return true, nil
}
