// Package erasure implements a systematic Reed-Solomon erasure code over
// GF(2^8), as used by the DepSky-CA protocol: a file is split into k data
// shards and m parity shards such that any k of the n = k+m shards suffice to
// reconstruct the original data. In the SCFS cloud-of-clouds configuration of
// the paper, n = 3f+1 providers and k = f+1, so each provider stores roughly
// 1/(f+1) of the file plus the erasure-coding overhead (~50% extra space for
// f=1 instead of the 300% extra of full replication).
//
// The coding hot path runs on the gf256 slice kernels (table-driven with SIMD
// backends where available) rather than per-byte field multiplications:
// encoding streams every data shard through one MulSlice/MulSliceXor pass per
// parity row, large encodes fan the parity rows out over a bounded set of
// goroutines, and degraded reads reuse inverted decode matrices from a small
// LRU keyed by the set of surviving shards, so repeated reads with the same
// failure pattern skip the Gaussian elimination entirely.
package erasure

import (
	"bytes"
	"container/list"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"scfs/internal/gf256"
)

// decodeCacheSize bounds the per-Coder LRU of inverted decode matrices. Each
// entry is a k×k matrix (≤64 KiB at the 256-shard maximum, tens of bytes for
// the DepSky configurations), and distinct failure patterns are few in
// practice: C(n, m) is 6 for the paper's n=4 configuration.
const decodeCacheSize = 64

// parallelThreshold is the per-shard size above which encodeParity spreads
// parity rows across goroutines. Below it the fan-out overhead exceeds the
// coding cost.
const parallelThreshold = 64 << 10

// Coder encodes and reconstructs data using Reed-Solomon coding with
// DataShards data shards and ParityShards parity shards.
type Coder struct {
	DataShards   int
	ParityShards int

	// encode is the (data+parity) x data coding matrix. Its top k rows are
	// the identity (systematic code), the remaining m rows generate parity.
	encode *gf256.Matrix

	// mu guards the decode-matrix LRU (Reconstruct may be called from
	// concurrent readers of different data units sharing one Coder).
	mu          sync.Mutex
	decodeCache map[string]*list.Element
	decodeOrder *list.List // front = most recently used
}

type decodeEntry struct {
	key    string
	matrix *gf256.Matrix
}

// Common parameter errors.
var (
	ErrInvalidShardCounts = errors.New("erasure: shard counts must be positive and total at most 256")
	ErrTooFewShards       = errors.New("erasure: not enough shards to reconstruct")
	ErrShardSizeMismatch  = errors.New("erasure: shards have inconsistent sizes")
	ErrShardCountMismatch = errors.New("erasure: wrong number of shards")
)

// New creates a Coder with the given number of data and parity shards.
func New(dataShards, parityShards int) (*Coder, error) {
	if dataShards <= 0 || parityShards < 0 || dataShards+parityShards > 256 {
		return nil, ErrInvalidShardCounts
	}
	n := dataShards + parityShards
	// Build a systematic coding matrix from a Vandermonde matrix: take the
	// n x k Vandermonde matrix V and normalize it to V * (V_top)^-1 so the
	// top k x k block becomes the identity. Any k rows of the result remain
	// invertible, so any k shards can reconstruct the data.
	v := gf256.Vandermonde(n, dataShards)
	top := v.SubMatrix(0, dataShards, 0, dataShards)
	topInv, err := top.Invert()
	if err != nil {
		return nil, fmt.Errorf("erasure: building coding matrix: %w", err)
	}
	return &Coder{
		DataShards:   dataShards,
		ParityShards: parityShards,
		encode:       v.Mul(topInv),
		decodeCache:  make(map[string]*list.Element),
		decodeOrder:  list.New(),
	}, nil
}

// TotalShards returns data+parity shard count.
func (c *Coder) TotalShards() int { return c.DataShards + c.ParityShards }

// ShardSize returns the size of each shard produced by Split for an input of
// dataLen bytes.
func (c *Coder) ShardSize(dataLen int) int {
	return (dataLen + c.DataShards - 1) / c.DataShards
}

// Split encodes data into TotalShards() shards: the first DataShards shards
// contain the (zero-padded) data, the remaining shards contain parity. The
// original length must be recorded separately (Join needs it) — DepSky keeps
// it in its metadata object. All shards share one backing allocation.
func (c *Coder) Split(data []byte) ([][]byte, error) {
	shardSize := c.ShardSize(len(data))
	if shardSize == 0 {
		shardSize = 1 // allow empty payloads: one padding byte per shard
	}
	// One contiguous buffer for all shards keeps Split at two allocations
	// regardless of the shard count.
	backing := make([]byte, c.TotalShards()*shardSize)
	return c.SplitInto(data, backing)
}

// encodeParity fills shards[DataShards:] from shards[:DataShards]. Parity
// rows are independent, so for large shards they are computed by up to
// min(ParityShards, GOMAXPROCS) goroutines.
func (c *Coder) encodeParity(shards [][]byte, shardSize int) {
	if c.ParityShards == 0 {
		return
	}
	workers := 1
	if shardSize >= parallelThreshold && c.ParityShards > 1 {
		workers = min(c.ParityShards, runtime.GOMAXPROCS(0))
	}
	if workers == 1 {
		for p := 0; p < c.ParityShards; p++ {
			c.encodeParityRow(p, shards)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for p := w; p < c.ParityShards; p += workers {
				c.encodeParityRow(p, shards)
			}
		}(w)
	}
	wg.Wait()
}

// encodeParityRow computes parity row p from the data shards.
func (c *Coder) encodeParityRow(p int, shards [][]byte) {
	mulRow(c.encode.Row(c.DataShards+p), shards[:c.DataShards], shards[c.DataShards+p])
}

// mulRow computes out = Σ coeffs[i]·inputs[i] with one slice-kernel pass per
// input. The first pass assigns (overwriting whatever out held), the rest
// accumulate.
func mulRow(coeffs []byte, inputs [][]byte, out []byte) {
	gf256.MulSlice(coeffs[0], inputs[0], out)
	for i := 1; i < len(inputs); i++ {
		gf256.MulSliceXor(coeffs[i], inputs[i], out)
	}
}

// decodeMatrix returns the inverted decode matrix for the given source rows
// (the first DataShards present shard indices), consulting the LRU cache
// before running Gauss-Jordan elimination.
func (c *Coder) decodeMatrix(rowsUsed []byte) (*gf256.Matrix, error) {
	key := string(rowsUsed)
	c.mu.Lock()
	if el, ok := c.decodeCache[key]; ok {
		c.decodeOrder.MoveToFront(el)
		m := el.Value.(*decodeEntry).matrix
		c.mu.Unlock()
		return m, nil
	}
	c.mu.Unlock()

	sub := gf256.NewMatrix(c.DataShards, c.DataShards)
	for i, r := range rowsUsed {
		copy(sub.Row(i), c.encode.Row(int(r)))
	}
	decode, err := sub.Invert()
	if err != nil {
		return nil, fmt.Errorf("erasure: decode matrix: %w", err)
	}

	c.mu.Lock()
	if _, ok := c.decodeCache[key]; !ok {
		c.decodeCache[key] = c.decodeOrder.PushFront(&decodeEntry{key: key, matrix: decode})
		for c.decodeOrder.Len() > decodeCacheSize {
			back := c.decodeOrder.Back()
			delete(c.decodeCache, back.Value.(*decodeEntry).key)
			c.decodeOrder.Remove(back)
		}
	}
	c.mu.Unlock()
	return decode, nil
}

// Reconstruct rebuilds missing shards in place. The shards slice must have
// TotalShards() entries; missing shards are nil. At least DataShards shards
// must be present. After a successful call every entry is non-nil.
func (c *Coder) Reconstruct(shards [][]byte) error {
	return c.reconstruct(shards, nil, true)
}

// Join reassembles the original data of length dataLen from the (complete)
// shard set. Call Reconstruct first if shards are missing.
func (c *Coder) Join(shards [][]byte, dataLen int) ([]byte, error) {
	if len(shards) != c.TotalShards() {
		return nil, ErrShardCountMismatch
	}
	if dataLen == 0 {
		return []byte{}, nil
	}
	out := make([]byte, dataLen)
	if err := c.JoinInto(out, shards, dataLen); err != nil {
		return nil, err
	}
	return out, nil
}

// Verify reports whether the parity shards are consistent with the data
// shards. All shards must be present.
func (c *Coder) Verify(shards [][]byte) (bool, error) {
	if len(shards) != c.TotalShards() {
		return false, ErrShardCountMismatch
	}
	var shardSize int
	for i, s := range shards {
		if s == nil {
			return false, ErrTooFewShards
		}
		if i == 0 {
			shardSize = len(s)
		} else if len(s) != shardSize {
			return false, ErrShardSizeMismatch
		}
	}
	// Recompute each parity row into one scratch buffer and compare.
	scratch := make([]byte, shardSize)
	for p := 0; p < c.ParityShards; p++ {
		mulRow(c.encode.Row(c.DataShards+p), shards[:c.DataShards], scratch)
		if !bytes.Equal(scratch, shards[c.DataShards+p]) {
			return false, nil
		}
	}
	return true, nil
}

// encodeParityRef is the seed's per-byte encoding path (scalar gf256.Mul in
// the inner loop). It is retained as the reference implementation: tests
// check the kernel path against it and the benchmarks report the speedup of
// the slice kernels over it.
func (c *Coder) encodeParityRef(shards [][]byte, shardSize int) {
	for p := 0; p < c.ParityShards; p++ {
		row := c.encode.Row(c.DataShards + p)
		out := shards[c.DataShards+p]
		for i := range out {
			out[i] = 0
		}
		for d := 0; d < c.DataShards; d++ {
			coef := row[d]
			if coef == 0 {
				continue
			}
			in := shards[d]
			for i := 0; i < shardSize; i++ {
				out[i] ^= gf256.Mul(coef, in[i])
			}
		}
	}
}
