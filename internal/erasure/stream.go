package erasure

// Streaming / allocation-free entry points layered on the slice kernels.
//
// The whole-object API (Split, Reconstruct, Join) allocates its outputs,
// which is fine for one-shot encodes but wasteful inside the chunked
// pipeline of internal/stream where every chunk runs through the coder: the
// *Into variants below take caller-provided backing so buffers can come
// from (and return to) a pool, and ReconstructDataInto skips the parity
// recompute that range reads never need.

import "fmt"

// SplitInto is Split with caller-provided backing for the shards. backing
// must hold at least TotalShards()*ShardSize(len(data)) bytes (one byte
// minimum per shard for empty inputs); the returned shards alias it.
func (c *Coder) SplitInto(data []byte, backing []byte) ([][]byte, error) {
	shardSize := c.ShardSize(len(data))
	if shardSize == 0 {
		shardSize = 1 // allow empty payloads: one padding byte per shard
	}
	need := c.TotalShards() * shardSize
	if len(backing) < need {
		return nil, fmt.Errorf("erasure: backing holds %d bytes, need %d", len(backing), need)
	}
	shards := make([][]byte, c.TotalShards())
	for i := range shards {
		shards[i] = backing[i*shardSize : (i+1)*shardSize : (i+1)*shardSize]
	}
	for i := 0; i < c.DataShards; i++ {
		start := i * shardSize
		end := start + shardSize
		if start >= len(data) {
			clearSlice(shards[i])
			continue
		}
		if end > len(data) {
			n := copy(shards[i], data[start:])
			clearSlice(shards[i][n:])
			continue
		}
		copy(shards[i], data[start:end])
	}
	c.encodeParity(shards, shardSize)
	return shards, nil
}

func clearSlice(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// ReconstructDataInto rebuilds only the missing data shards (parity entries
// stay nil), using scratch as the backing for rebuilt shards. It is the
// reconstruction the ranged read path wants: Join never touches parity, so
// recomputing it is wasted work. scratch must hold at least
// missingDataShards*shardSize bytes; pass nil to allocate.
func (c *Coder) ReconstructDataInto(shards [][]byte, scratch []byte) error {
	return c.reconstruct(shards, scratch, false)
}

// ReconstructInto is Reconstruct with caller-provided scratch backing for
// every rebuilt shard (data and parity). Pass nil to allocate.
func (c *Coder) ReconstructInto(shards [][]byte, scratch []byte) error {
	return c.reconstruct(shards, scratch, true)
}

// reconstruct implements Reconstruct/ReconstructDataInto. When withParity is
// false only data shards are rebuilt and missing parity entries are left
// nil.
func (c *Coder) reconstruct(shards [][]byte, scratch []byte, withParity bool) error {
	if len(shards) != c.TotalShards() {
		return ErrShardCountMismatch
	}
	shardSize := -1
	present := 0
	for _, s := range shards {
		if s == nil {
			continue
		}
		present++
		if shardSize == -1 {
			shardSize = len(s)
		} else if len(s) != shardSize {
			return ErrShardSizeMismatch
		}
	}
	if present < c.DataShards {
		return ErrTooFewShards
	}
	if present == c.TotalShards() {
		return nil
	}

	// Gather the first k present shards as reconstruction sources; the
	// matching rows of the encode matrix identify the cached (or fresh)
	// decode matrix.
	subShards := make([][]byte, 0, c.DataShards)
	rowsUsed := make([]byte, 0, c.DataShards)
	for i := 0; i < c.TotalShards() && len(subShards) < c.DataShards; i++ {
		if shards[i] == nil {
			continue
		}
		subShards = append(subShards, shards[i])
		rowsUsed = append(rowsUsed, byte(i))
	}
	decode, err := c.decodeMatrix(rowsUsed)
	if err != nil {
		return err
	}

	missing := 0
	for i, s := range shards {
		if s != nil {
			continue
		}
		if withParity || i < c.DataShards {
			missing++
		}
	}
	backing := scratch
	if len(backing) < missing*shardSize {
		backing = make([]byte, missing*shardSize)
	}
	nextBuf := func() []byte {
		buf := backing[:shardSize:shardSize]
		backing = backing[shardSize:]
		return buf
	}

	// Recover missing data shards.
	dataShards := make([][]byte, c.DataShards)
	for d := 0; d < c.DataShards; d++ {
		if shards[d] != nil {
			dataShards[d] = shards[d]
			continue
		}
		out := nextBuf()
		mulRow(decode.Row(d), subShards, out)
		shards[d] = out
		dataShards[d] = out
	}
	if !withParity {
		return nil
	}

	// Recompute any missing parity shards from the (now complete) data.
	for p := 0; p < c.ParityShards; p++ {
		idx := c.DataShards + p
		if shards[idx] != nil {
			continue
		}
		out := nextBuf()
		mulRow(c.encode.Row(idx), dataShards, out)
		shards[idx] = out
	}
	return nil
}

// JoinInto reassembles the original data of length dataLen into dst, which
// must hold at least dataLen bytes. Only the data shards are read; call a
// reconstruct variant first if any are missing.
func (c *Coder) JoinInto(dst []byte, shards [][]byte, dataLen int) error {
	if len(shards) < c.DataShards {
		return ErrShardCountMismatch
	}
	if len(dst) < dataLen {
		return fmt.Errorf("erasure: destination holds %d bytes, need %d", len(dst), dataLen)
	}
	if dataLen == 0 {
		return nil
	}
	var shardSize int
	for i := 0; i < c.DataShards; i++ {
		if shards[i] == nil {
			return ErrTooFewShards
		}
		if i == 0 {
			shardSize = len(shards[i])
		} else if len(shards[i]) != shardSize {
			return ErrShardSizeMismatch
		}
	}
	if shardSize*c.DataShards < dataLen {
		return fmt.Errorf("erasure: shards hold %d bytes, need %d", shardSize*c.DataShards, dataLen)
	}
	written := 0
	for i := 0; i < c.DataShards && written < dataLen; i++ {
		need := dataLen - written
		if need > shardSize {
			need = shardSize
		}
		copy(dst[written:], shards[i][:need])
		written += need
	}
	return nil
}
