// Fixture stand-in for scfs/internal/telemetry: the analyzer matches the
// package by name + path suffix, so this fake exercises the same code path
// as the real registry.
package telemetry

// Name composes a labeled metric name (fixture copy of the real signature).
func Name(base string, kv ...string) string { return base }

// Span is the fixture copy of the real trace span: Name is the span kind
// (a fixed vocabulary), Target carries the variable detail.
type Span struct {
	Name   string
	Target string
}
