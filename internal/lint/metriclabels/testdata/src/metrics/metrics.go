// Fixture for the metriclabels analyzer: telemetry.Name call sites must
// keep the registry's cardinality bounded.
package metrics

import (
	"fmt"

	"telemetry"
)

const constBase = "rpc_total"

func clean(cloudName string) {
	_ = telemetry.Name("rpc_total", "cloud", cloudName, "op", "get")
	_ = telemetry.Name(constBase, "outcome", "ok")
	_ = telemetry.Name("gateway_requests_total", "tenant", cloudName)
	_ = telemetry.Name("plain_counter")
	_ = telemetry.Name("pre" + "fix_total") // constant folding: still a fixed name
}

func throughHelper(base string) {
	// A helper parameter threading a literal is accepted; the vocabulary
	// check still applies at this site.
	_ = telemetry.Name(base, "result", "hit")
}

func flagged(cloudName, dynamicKey string) {
	_ = telemetry.Name("rpc_total", "cloud")                   // want `kv tail has 1 argument`
	_ = telemetry.Name("rpc_total", dynamicKey, "x")           // want `label key must be a compile-time constant`
	_ = telemetry.Name("rpc_total", "path", cloudName)         // want `label key "path" is not in the fixed vocabulary`
	_ = telemetry.Name(fmt.Sprintf("rpc_%s_total", cloudName)) // want `base name built by a function call`
	_ = telemetry.Name("rpc_" + cloudName + "_total")          // want `base name built by concatenation`
	name := fmt.Sprintf("rpc_%s", cloudName)
	_ = telemetry.Name(name, "op", "get") // want `base name assigned from fmt.Sprintf`
}

func spread(kv []string) {
	_ = telemetry.Name("rpc_total", kv...) // want `spread kv slice`
}

func justified(counter string) {
	//scfslint:ignore metriclabels fixture: migration shim, names validated upstream
	_ = telemetry.Name("rpc_total", "legacy_key", counter)
}
