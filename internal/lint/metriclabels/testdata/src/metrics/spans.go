// Fixture for the span-name half of the metriclabels analyzer: the Name of
// a telemetry.Span literal is the span kind and must be a fixed string;
// dynamic detail (shard numbers, cloud names, flush triggers) belongs in
// Target.
package metrics

import (
	"fmt"

	"telemetry"
)

const spanKind = "smr.invoke"

func cleanSpans(shardName string) {
	_ = telemetry.Span{Name: "shard.route", Target: shardName}
	_ = telemetry.Span{Name: spanKind}
	_ = telemetry.Span{Name: "smr." + "batch"} // constant folding: still fixed
	_ = telemetry.Span{Target: shardName}      // no name at all: nothing to check
}

func throughSpanHelper(kind string) {
	// A helper parameter threading a literal is accepted, like metric bases.
	_ = telemetry.Span{Name: kind, Target: "c0"}
}

func flaggedSpans(shard int, cloudName string) {
	_ = telemetry.Span{Name: fmt.Sprintf("shard-%d", shard)} // want `span name built by a function call`
	_ = telemetry.Span{Name: "rpc." + cloudName}             // want `span name built by concatenation`
	kind := fmt.Sprintf("shard-%d.route", shard)
	_ = telemetry.Span{Name: kind, Target: "x"} // want `span name assigned from fmt.Sprintf`
}
