package metriclabels_test

import (
	"testing"

	"scfs/internal/lint/analysistest"
	"scfs/internal/lint/metriclabels"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", metriclabels.Analyzer, "metrics")
}
