// Package metriclabels bounds the telemetry registry's cardinality at
// compile time.
//
// Every telemetry.Name(base, k, v, ...) call site mints metric names; the
// registry keeps one instrument per distinct name forever. Cardinality
// stays bounded only if (a) base names are fixed strings, never built with
// fmt.Sprintf, and (b) label keys come from a small deliberate vocabulary
// (values may be dynamic — they are bounded by configuration: cloud names,
// tenants, op classes). The analyzer enforces:
//
//  1. the kv tail has an even number of arguments (key/value pairs);
//  2. label keys are compile-time string constants drawn from AllowedKeys;
//  3. the base name is not built by a string-formatting call or by
//     concatenation with non-constant operands (a plain identifier is
//     accepted — threading a literal through a helper parameter is fine —
//     but an identifier assigned from fmt.Sprintf in the same function is
//     not).
//
// Growing the vocabulary is a one-line change to AllowedKeys made in code
// review, which is exactly the point.
//
// The same discipline applies to trace span names: telemetry.Span{Name: ...}
// composite literals must use fixed strings ("smr.invoke", "shard.route"),
// with the variable detail (shard number, cloud name, trigger) in the Target
// field — a Sprintf-built span name makes trace grouping and the flight
// recorder's per-class retention unbounded, exactly like a Sprintf-built
// metric name.
package metriclabels

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"scfs/internal/lint/analysis"
)

// AllowedKeys is the label-key vocabulary. Adding a key here is a reviewed
// decision: every key multiplies the registry's worst-case cardinality.
var AllowedKeys = map[string]bool{
	"cloud":   true, // provider name (bounded by mount configuration)
	"op":      true, // operation class: get / put / delete / list
	"outcome": true, // ok / error / canceled
	"backend": true, // coordination backend: depspace / zk / smr
	"tenant":  true, // gateway tenant (bounded by gateway configuration)
	"result":  true, // cache result: hit / miss
	"cause":   true, // gateway error cause: canceled / backend
}

// Analyzer bounds metric-name cardinality at telemetry.Name call sites.
var Analyzer = &analysis.Analyzer{
	Name: "metriclabels",
	Doc:  "telemetry.Name call sites: even kv tail, fixed label-key vocabulary, no Sprintf-built names",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isTelemetryName(pass, n) {
					checkCall(pass, n)
				}
			case *ast.CompositeLit:
				if isSpanLit(pass, n) {
					checkSpanLit(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	if call.Ellipsis.IsValid() {
		pass.Reportf(call.Pos(), "telemetry.Name called with a spread kv slice; pass literal key/value pairs so the key vocabulary is checkable")
		return
	}
	checkBase(pass, call.Args[0])
	kv := call.Args[1:]
	if len(kv)%2 != 0 {
		pass.Reportf(call.Pos(), "telemetry.Name kv tail has %d arguments; keys and values must pair up", len(kv))
		return
	}
	for i := 0; i < len(kv); i += 2 {
		key, ok := constantString(pass, kv[i])
		if !ok {
			pass.Reportf(kv[i].Pos(), "telemetry label key must be a compile-time constant string")
			continue
		}
		if !AllowedKeys[key] {
			pass.Reportf(kv[i].Pos(), "telemetry label key %q is not in the fixed vocabulary (%s); add it to metriclabels.AllowedKeys deliberately or reuse an existing key", key, keyList())
		}
	}
}

// checkBase rejects dynamically built metric base names.
func checkBase(pass *analysis.Pass, base ast.Expr) {
	if _, ok := constantString(pass, base); ok {
		return
	}
	switch b := base.(type) {
	case *ast.CallExpr:
		pass.Reportf(base.Pos(), "telemetry metric base name built by a function call; use a fixed name and put the dynamic part in a label value")
	case *ast.BinaryExpr:
		pass.Reportf(base.Pos(), "telemetry metric base name built by concatenation; use a fixed name and put the dynamic part in a label value")
	case *ast.Ident:
		// A plain identifier is accepted (a helper parameter threading a
		// literal), unless it was visibly assigned from a formatting call.
		if assignedFromSprintf(pass, b) {
			pass.Reportf(base.Pos(), "telemetry metric base name assigned from fmt.Sprintf; use a fixed name and put the dynamic part in a label value")
		}
	default:
		pass.Reportf(base.Pos(), "telemetry metric base name must be a fixed string")
	}
}

// assignedFromSprintf reports whether the identifier's object is assigned
// from a fmt.Sprintf/Sprint call anywhere in the package.
func assignedFromSprintf(pass *analysis.Pass, id *ast.Ident) bool {
	found := false
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || found {
				return !found
			}
			for i, lhs := range as.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok || i >= len(as.Rhs) {
					continue
				}
				lobj := pass.TypesInfo.Defs[lid]
				if lobj == nil {
					lobj = pass.TypesInfo.Uses[lid]
				}
				if lobj == nil || lobj != pass.TypesInfo.Uses[id] {
					continue
				}
				if call, ok := as.Rhs[i].(*ast.CallExpr); ok && isSprintf(pass, call) {
					found = true
				}
			}
			return !found
		})
	}
	return found
}

func isSprintf(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Sprintf", "Sprint", "Sprintln":
	default:
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt"
}

// isSpanLit matches composite literals of the telemetry package's Span type
// (the real scfs/internal/telemetry or a fixture package named telemetry).
func isSpanLit(pass *analysis.Pass, cl *ast.CompositeLit) bool {
	tv, ok := pass.TypesInfo.Types[cl]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Name() != "Span" {
		return false
	}
	return analysis.PkgIs(named.Obj().Pkg(), "telemetry")
}

// checkSpanLit enforces the span-name vocabulary on telemetry.Span
// literals: Name is the span *kind* and must be a fixed string; the flight
// recorder and trace grouping key on it, so a Sprintf-built name is the
// trace-side twin of a Sprintf-built metric name.
func checkSpanLit(pass *analysis.Pass, cl *ast.CompositeLit) {
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Name" {
			continue
		}
		if _, ok := constantString(pass, kv.Value); ok {
			return
		}
		switch v := kv.Value.(type) {
		case *ast.CallExpr:
			pass.Reportf(kv.Value.Pos(), "telemetry span name built by a function call; use a fixed name and put the dynamic part in Target")
		case *ast.BinaryExpr:
			pass.Reportf(kv.Value.Pos(), "telemetry span name built by concatenation; use a fixed name and put the dynamic part in Target")
		case *ast.Ident:
			if assignedFromSprintf(pass, v) {
				pass.Reportf(kv.Value.Pos(), "telemetry span name assigned from fmt.Sprintf; use a fixed name and put the dynamic part in Target")
			}
		default:
			pass.Reportf(kv.Value.Pos(), "telemetry span name must be a fixed string")
		}
		return
	}
}

// isTelemetryName matches calls to the telemetry package's Name function
// (the real scfs/internal/telemetry or a fixture package named telemetry).
func isTelemetryName(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Name" {
		return false
	}
	o := pass.TypesInfo.Uses[sel.Sel]
	return o != nil && analysis.PkgIs(o.Pkg(), "telemetry")
}

func constantString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func keyList() string {
	keys := make([]string, 0, len(AllowedKeys))
	for k := range AllowedKeys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}
