// Fixture for the ctxdiscipline analyzer: detached contexts, parameter
// order, and contexts stored in structs.
package ctx

import "context"

// detached conjures contexts out of thin air below the facade.
func detached() {
	ctx := context.Background() // want `context.Background\(\) below the facade`
	_ = ctx
	_ = context.TODO() // want `context.TODO\(\) below the facade`
}

// threaded receives and passes its context: clean.
func threaded(ctx context.Context) error {
	return blocking(ctx, "x")
}

func blocking(ctx context.Context, arg string) error {
	_ = arg
	return ctx.Err()
}

// ctxSecond takes its context in the wrong position.
func ctxSecond(name string, ctx context.Context) { // want `context.Context must be the first parameter`
	_ = name
	_ = ctx
}

// Iface methods follow the same contract.
type Iface interface {
	Good(ctx context.Context, path string) error
	Bad(path string, ctx context.Context) error // want `context.Context must be the first parameter`
}

// holder stores a context as state.
type holder struct {
	ctx context.Context // want `context.Context stored in a struct`
}

// carrier is an approved request carrier: the directive documents why.
type carrier struct {
	//scfslint:ignore ctxdiscipline fixture: request-carrier struct binding one call's ctx across an io seam
	ctx context.Context
}

// justifiedDetach is a documented lifecycle root.
func justifiedDetach() context.Context {
	//scfslint:ignore ctxdiscipline fixture: lifecycle root cancelled by Stop
	return context.Background()
}

var _ = holder{}
var _ = carrier{}
