// Fixture: the root scfs package IS the facade — it owns the root
// contexts, so the detached-context rule does not apply here.
package scfs

import "context"

func Mount() context.Context {
	return context.Background() // facade-exempt: no diagnostic expected
}
