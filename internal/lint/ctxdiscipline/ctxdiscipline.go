// Package ctxdiscipline enforces the repo's context contract below the
// scfs facade.
//
// The whole stack is context-first (PR 3): cancellation must flow from the
// caller down through every quorum fan-out, and a context conjured out of
// thin air in a library breaks that chain. The Coalescer bug from the PR 8
// review is the canonical failure: a batch flush tied to one caller's
// context cancelled every participant's operation when that one caller gave
// up. The few legitimate detached contexts (lifecycle roots held by an
// agent with a Stop method, a flush that must outlive its trigger) are
// exactly the places that deserve a written justification, which is what
// the //scfslint:ignore directive provides.
//
// Rules, applied to non-test files of every package below the facade (the
// root scfs package is the facade and is exempt):
//
//  1. no context.Background() / context.TODO() calls;
//  2. a function that takes a context.Context takes it as its first
//     parameter (interface methods included);
//  3. no context.Context fields in structs — contexts are arguments, not
//     state. A struct that genuinely is a request carrier (an inflight
//     table entry, a queued batch item) documents itself with an ignore
//     directive at the field.
package ctxdiscipline

import (
	"go/ast"
	"go/types"

	"scfs/internal/lint/analysis"
)

// Analyzer enforces the context contract.
var Analyzer = &analysis.Analyzer{
	Name: "ctxdiscipline",
	Doc:  "no detached contexts below the facade; ctx is the first parameter; no ctx struct fields",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == "scfs" {
		return nil // the facade owns the root contexts
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				checkDetached(pass, node)
			case *ast.FuncDecl:
				checkParamOrder(pass, node.Type)
			case *ast.InterfaceType:
				for _, m := range node.Methods.List {
					if ft, ok := m.Type.(*ast.FuncType); ok {
						checkParamOrder(pass, ft)
					}
				}
			case *ast.FuncLit:
				// Literals inherit their context from the enclosing scope;
				// a ctx parameter on a literal is unusual but legal in any
				// position (e.g. matching a callback signature).
			case *ast.StructType:
				checkCtxField(pass, node)
			}
			return true
		})
	}
	return nil
}

// checkDetached flags context.Background() and context.TODO().
func checkDetached(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return
	}
	pass.Reportf(call.Pos(), "context.%s() below the facade detaches this call chain from cancellation; thread the caller's ctx (or justify the detachment with a scfslint:ignore directive)", sel.Sel.Name)
}

// checkParamOrder flags context.Context parameters that are not first.
func checkParamOrder(pass *analysis.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isCtxType(pass, field.Type) && pos > 0 {
			pass.Reportf(field.Pos(), "context.Context must be the first parameter")
		}
		pos += n
	}
}

// checkCtxField flags context.Context struct fields.
func checkCtxField(pass *analysis.Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if isCtxType(pass, field.Type) {
			pass.Reportf(field.Pos(), "context.Context stored in a struct; pass ctx as an argument (request-carrier structs justify the field with a scfslint:ignore directive)")
		}
	}
}

// isCtxType reports whether the expression's type is context.Context.
func isCtxType(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
