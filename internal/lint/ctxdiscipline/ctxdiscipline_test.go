package ctxdiscipline_test

import (
	"testing"

	"scfs/internal/lint/analysistest"
	"scfs/internal/lint/ctxdiscipline"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", ctxdiscipline.Analyzer, "ctx")
}

// TestFacadeExempt pins the exemption: the root scfs package is the facade
// and may own root contexts (the fixture package is literally named scfs
// and calls context.Background with no expected diagnostics).
func TestFacadeExempt(t *testing.T) {
	analysistest.Run(t, "testdata", ctxdiscipline.Analyzer, "scfs")
}
