package untrustedalloc_test

import (
	"testing"

	"scfs/internal/lint/analysistest"
	"scfs/internal/lint/untrustedalloc"
)

// TestAnalyzer runs the fixture suite, including the regression fixture
// reproducing the PR 8 DecodeBatch forged-count bug (decodeBatchForged):
// the analyzer must flag the unbounded make and the append loop, and must
// stay quiet on the bounded rewrite that shipped as the fix.
func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", untrustedalloc.Analyzer, "untrusted")
}
