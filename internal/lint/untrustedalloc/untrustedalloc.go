// Package untrustedalloc flags allocations sized by wire-decoded data that
// were not bounded against the remaining payload first.
//
// This is the DecodeBatch bug class from the PR 8 review: a forged varint
// count in a batch envelope reached make() and panicked inside
// Application.Execute — on every replica at once, because the command was
// totally ordered. The paper's fault model (SCFS over untrusted clouds,
// BFT-replicated coordination) makes every decoder a trust boundary: any
// byte a peer or a cloud hands back may be adversarial, so a length or
// count read off the wire must be dominated by a bound check (typically
// against len(remaining payload)) before it sizes an allocation or drives
// an append loop.
//
// Detection is an intra-function taint walk:
//
//   - sources: encoding/binary reads (Uvarint, Varint, ReadUvarint,
//     ReadVarint, and the ByteOrder Uint16/32/64 accessors);
//   - propagation: assignments, conversions and arithmetic that mention a
//     tainted variable taint the destination;
//   - sanitizers: an if-condition comparing the tainted variable (against
//     anything — the reviewer checks the bound is meaningful, the analyzer
//     checks it exists), or a min() call at the use site;
//   - sinks: make() whose length or capacity mentions unsanitized taint,
//     and for-loops bounded by unsanitized taint whose body appends.
//
// The check is deliberately syntactic about what counts as a bound: any
// dominating comparison clears the variable. The invariant it enforces is
// "you cannot forget to think about the bound", not "the bound is right".
package untrustedalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"scfs/internal/lint/analysis"
)

// Analyzer flags unbounded allocations from wire-decoded sizes.
var Analyzer = &analysis.Analyzer{
	Name: "untrustedalloc",
	Doc:  "make/append sized by wire-decoded data must be bounded against the payload first",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
				return false // nested FuncLits are walked by checkFunc
			}
			return true
		})
	}
	return nil
}

// checkFunc runs the taint walk over one function body (function literals
// nested inside share the walk: their bodies are part of the same tree and
// close over the same variables).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	tainted := map[types.Object]bool{}

	// Seed + propagate to fixpoint. The loop re-walks assignments until no
	// new variable gains taint; bodies are small, so quadratic is fine.
	for {
		grew := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				grew = propagateAssign(pass, st.Lhs, st.Rhs, tainted) || grew
			case *ast.DeclStmt:
				if gd, ok := st.Decl.(*ast.GenDecl); ok {
					for _, spec := range gd.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
							lhs := make([]ast.Expr, len(vs.Names))
							for i, name := range vs.Names {
								lhs[i] = name
							}
							grew = propagateAssign(pass, lhs, vs.Values, tainted) || grew
						}
					}
				}
			}
			return true
		})
		if !grew {
			break
		}
	}
	if len(tainted) == 0 {
		return
	}

	// Sanitize positions: any if-condition mentioning a tainted variable in
	// a comparison clears it from that position on. Positions give a cheap
	// dominance approximation that matches the decoder idiom (check, then
	// allocate); a check in a dead branch below the make would not fool a
	// reviewer and is not worth flow analysis here.
	sanitizedAt := map[types.Object][]token.Pos{}
	ast.Inspect(body, func(n ast.Node) bool {
		ifst, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		ast.Inspect(ifst.Cond, func(c ast.Node) bool {
			be, ok := c.(*ast.BinaryExpr)
			if !ok || !isComparison(be.Op) {
				return true
			}
			for obj := range mentions(pass, be, tainted) {
				sanitizedAt[obj] = append(sanitizedAt[obj], ifst.Pos())
			}
			return true
		})
		return true
	})
	cleared := func(obj types.Object, use token.Pos) bool {
		for _, p := range sanitizedAt[obj] {
			if p < use {
				return true
			}
		}
		return false
	}
	dirty := func(e ast.Expr) types.Object {
		if inMinCall(e) {
			return nil
		}
		for obj := range mentions(pass, e, tainted) {
			if !cleared(obj, e.Pos()) {
				return obj
			}
		}
		return nil
	}

	// Sinks.
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.CallExpr:
			if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "make" && pass.TypesInfo.Uses[id] == types.Universe.Lookup("make") {
				for _, arg := range st.Args[1:] {
					if obj := dirty(arg); obj != nil {
						pass.Reportf(st.Pos(), "make sized by untrusted length %q decoded from the wire; bound it against the remaining payload first", obj.Name())
						break
					}
				}
			}
		case *ast.ForStmt:
			be, ok := st.Cond.(*ast.BinaryExpr)
			if !ok || !isComparison(be.Op) || !containsAppend(st.Body) {
				return true
			}
			if obj := dirty(be); obj != nil {
				pass.Reportf(st.Pos(), "loop appends up to untrusted count %q decoded from the wire; bound it against the remaining payload first", obj.Name())
			}
		}
		return true
	})
}

// propagateAssign taints LHS variables whose RHS is a wire-decode source or
// mentions already-tainted variables. Returns whether the taint set grew.
func propagateAssign(pass *analysis.Pass, lhs, rhs []ast.Expr, tainted map[types.Object]bool) bool {
	grew := false
	taintLhs := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj != nil && !tainted[obj] {
			tainted[obj] = true
			grew = true
		}
	}
	if len(lhs) > 1 && len(rhs) == 1 {
		// Tuple assignment from one call: n, sz := binary.Uvarint(b).
		// Only the decoded value (first result) is untrusted; the consumed
		// byte count is bounded by the varint encoding itself.
		if call, ok := rhs[0].(*ast.CallExpr); ok && isVarintSource(pass, call) {
			taintLhs(lhs[0])
		}
		return grew
	}
	for i, r := range rhs {
		if i >= len(lhs) {
			break
		}
		if isSource(pass, r) || len(mentions(pass, r, tainted)) > 0 {
			taintLhs(lhs[i])
		}
	}
	return grew
}

// mentions returns the tainted objects referenced anywhere inside e.
func mentions(pass *analysis.Pass, e ast.Expr, tainted map[types.Object]bool) map[types.Object]bool {
	found := map[types.Object]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && tainted[obj] {
				found[obj] = true
			}
		}
		return true
	})
	return found
}

// isSource reports whether e (or any subexpression) reads an integer off
// the wire via encoding/binary.
func isSource(pass *analysis.Pass, e ast.Expr) bool {
	src := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && (isVarintSource(pass, call) || isByteOrderRead(pass, call)) {
			src = true
			return false
		}
		return true
	})
	return src
}

// isVarintSource matches binary.Uvarint / Varint / ReadUvarint / ReadVarint.
func isVarintSource(pass *analysis.Pass, call *ast.CallExpr) bool {
	obj := calleeObj(pass, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "encoding/binary" {
		return false
	}
	switch obj.Name() {
	case "Uvarint", "Varint", "ReadUvarint", "ReadVarint":
		return true
	}
	return false
}

// isByteOrderRead matches fixed-width reads through a binary.ByteOrder
// (binary.BigEndian.Uint32(...) and friends).
func isByteOrderRead(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Uint16", "Uint32", "Uint64":
	default:
		return false
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return false
	}
	recv := selection.Recv()
	if named, ok := recv.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "encoding/binary" {
			return true
		}
	}
	// binary.ByteOrder interface values.
	if iface, ok := recv.Underlying().(*types.Interface); ok && iface.NumMethods() > 0 {
		if m := selection.Obj(); m.Pkg() != nil && m.Pkg().Path() == "encoding/binary" {
			return true
		}
	}
	return false
}

// calleeObj resolves the object a call's function expression names.
func calleeObj(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

// inMinCall reports whether e is an argument of a min() builtin call — a
// use-site clamp that bounds the value without an if statement.
func inMinCall(e ast.Expr) bool {
	clamped := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "min" {
				clamped = true
				return false
			}
		}
		return true
	})
	return clamped
}

func isComparison(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

func containsAppend(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
