// Fixture for the untrustedalloc analyzer. decodeBatchForged reproduces
// the exact PR 8 DecodeBatch bug: a forged varint count reaching make().
package untrusted

import "encoding/binary"

// decodeBatchForged is the original buggy DecodeBatch shape: the count n is
// wire-decoded and never bounded before it sizes the allocation and drives
// the append loop. A peer sending a forged count panics make() on every
// replica executing the ordered command.
func decodeBatchForged(b []byte) [][]byte {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil
	}
	b = b[sz:]
	ops := make([][]byte, 0, n)      // want `make sized by untrusted length "n"`
	for i := uint64(0); i < n; i++ { // want `loop appends up to untrusted count "n"`
		l, lsz := binary.Uvarint(b)
		if lsz <= 0 || uint64(len(b)-lsz) < l {
			return nil
		}
		b = b[lsz:]
		ops = append(ops, b[:l:l])
		b = b[l:]
	}
	return ops
}

// decodeBatchBounded is the fixed shape: the count is checked against the
// remaining payload before any allocation, so both sinks are clean.
func decodeBatchBounded(b []byte) [][]byte {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil
	}
	b = b[sz:]
	if n > uint64(len(b)) {
		return nil
	}
	ops := make([][]byte, 0, n)
	for i := uint64(0); i < n; i++ {
		l, lsz := binary.Uvarint(b)
		if lsz <= 0 || uint64(len(b)-lsz) < l {
			return nil
		}
		b = b[lsz:]
		ops = append(ops, b[:l:l])
		b = b[l:]
	}
	return ops
}

// fixedWidthUnbounded reads a frame-header length and allocates without a
// bound: the ByteOrder accessors are sources too.
func fixedWidthUnbounded(data []byte) []byte {
	if len(data) < 4 {
		return nil
	}
	payloadLen := int(binary.BigEndian.Uint32(data))
	buf := make([]byte, payloadLen) // want `make sized by untrusted length "payloadLen"`
	copy(buf, data[4:])
	return buf
}

// fixedWidthBounded checks the decoded length against the frame before
// allocating.
func fixedWidthBounded(data []byte) []byte {
	if len(data) < 4 {
		return nil
	}
	payloadLen := int(binary.BigEndian.Uint32(data))
	if payloadLen < 0 || payloadLen > len(data)-4 {
		return nil
	}
	buf := make([]byte, payloadLen)
	copy(buf, data[4:])
	return buf
}

// minClamped bounds the untrusted count at the use site with min().
func minClamped(b []byte) []int {
	n, _ := binary.Uvarint(b)
	return make([]int, min(int(n), len(b)))
}

// taintFlowsThroughArithmetic: deriving a size from a tainted value keeps
// the taint.
func taintFlowsThroughArithmetic(b []byte) []byte {
	count, _ := binary.Uvarint(b)
	total := int(count) * 8
	return make([]byte, total) // want `make sized by untrusted length "total"`
}

// justified is flagged logic with an explicit, audited suppression.
func justified(b []byte) []byte {
	n, _ := binary.Uvarint(b)
	//scfslint:ignore untrustedalloc fixture: demonstrates the suppression directive
	return make([]byte, n)
}

// trustedSizes never touches the wire; local lengths stay clean.
func trustedSizes(items []string) []string {
	out := make([]string, 0, len(items))
	for _, it := range items {
		out = append(out, it)
	}
	return out
}
