// Package analysis is a dependency-free miniature of the
// golang.org/x/tools/go/analysis framework: just enough surface (Analyzer,
// Pass, Diagnostic) to write this repo's project-invariant analyzers against,
// without pulling x/tools into the module. The shapes mirror x/tools
// deliberately — if the dependency ever becomes acceptable, each analyzer
// ports by swapping the import.
//
// An analyzer inspects one type-checked package at a time and reports
// diagnostics. Suppression is explicit and auditable: a comment of the form
//
//	//scfslint:ignore <analyzer> <reason>
//
// on the flagged line or the line above it silences that analyzer at that
// site. The reason is mandatory — a bare ignore is itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run applies the analyzer to one package. It reports findings via
	// pass.Reportf and returns an error only for internal failures (a
	// clean package returns nil with no diagnostics).
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked representation through
// an analyzer run, exactly like an x/tools analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Position resolves the diagnostic's file position.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	return fset.Position(d.Pos)
}

// Reportf records a finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies one analyzer to one package and returns its diagnostics with
// //scfslint:ignore suppressions already applied, sorted by position.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	ig := collectIgnores(fset, files)
	kept := pass.diags[:0]
	for _, d := range pass.diags {
		if !ig.matches(a.Name, fset.Position(d.Pos)) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}

// ignoreKey locates one directive: suppressing diagnostics of one analyzer
// on one line of one file.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

type ignoreSet map[ignoreKey]bool

// collectIgnores scans comments for //scfslint:ignore directives. A
// directive suppresses the named analyzer on its own line and the line
// directly below (so it can sit above the flagged statement).
func collectIgnores(fset *token.FileSet, files []*ast.File) ignoreSet {
	ig := ignoreSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "scfslint:ignore") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "scfslint:ignore"))
				if len(fields) == 0 {
					continue // malformed: no analyzer named; never matches
				}
				pos := fset.Position(c.Pos())
				ig[ignoreKey{pos.Filename, pos.Line, fields[0]}] = true
			}
		}
	}
	return ig
}

func (ig ignoreSet) matches(analyzer string, pos token.Position) bool {
	return ig[ignoreKey{pos.Filename, pos.Line, analyzer}] ||
		ig[ignoreKey{pos.Filename, pos.Line - 1, analyzer}]
}

// PkgIs reports whether pkg is the project package identified by name: its
// package name matches and its import path is either exactly name (fixture
// packages in analyzer tests) or ends in "/"+name (the real module layout,
// e.g. scfs/internal/telemetry). Analyzers use it so the same matching logic
// covers production packages and testdata fixtures.
func PkgIs(pkg *types.Package, name string) bool {
	if pkg == nil {
		return false
	}
	return pkg.Name() == name &&
		(pkg.Path() == name || strings.HasSuffix(pkg.Path(), "/"+name))
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// Most invariants bind library code only; tests may take shortcuts.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// FuncFor walks up the enclosing-node stack captured by WithStack and
// returns the innermost enclosing function node (FuncDecl or FuncLit).
func FuncFor(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// WithStack walks every node of every file, invoking fn with the node and
// the stack of its ancestors (outermost first, node last). Returning false
// from fn prunes the walk below the node.
func WithStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if !fn(n, stack) {
				stack = stack[:len(stack)-1]
				return false
			}
			return true
		})
	}
}
