package loader

import (
	"go/types"
	"path/filepath"
	"runtime"
	"testing"
)

// moduleRoot walks up from this file to the directory holding go.mod.
func moduleRoot(t *testing.T) string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	return filepath.Join(filepath.Dir(file), "..", "..", "..")
}

// TestLoadTypeChecks loads a real package of this module and verifies the
// loader produced fully type-checked ASTs: the analyzers depend on
// TypesInfo resolving identifiers through cross-package (and stdlib)
// imports, not just on parse trees.
func TestLoadTypeChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list -export")
	}
	pkgs, err := Load(moduleRoot(t), "scfs/internal/lint/analysis")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.ImportPath != "scfs/internal/lint/analysis" {
		t.Fatalf("ImportPath = %q", p.ImportPath)
	}
	if len(p.Files) == 0 || p.Types == nil || p.TypesInfo == nil {
		t.Fatal("package not fully loaded")
	}
	obj := p.Types.Scope().Lookup("Analyzer")
	if obj == nil {
		t.Fatal("Analyzer not found in package scope")
	}
	if _, ok := obj.Type().Underlying().(*types.Struct); !ok {
		t.Fatalf("Analyzer is %v, want struct", obj.Type().Underlying())
	}
	// Cross-package resolution: the package imports go/token et al.; the
	// type checker must have recorded uses for imported identifiers.
	if len(p.TypesInfo.Uses) == 0 {
		t.Fatal("TypesInfo.Uses empty — type checking did not run")
	}
}
