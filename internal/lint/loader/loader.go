// Package loader loads and type-checks the module's packages for the
// scfslint analyzers using only the standard library: `go list -deps
// -export` supplies the package graph (in dependency order) plus compiled
// export data for standard-library imports, module packages are parsed and
// type-checked from source, and the two are stitched together with a
// types.Importer that prefers source-checked packages and falls back to gc
// export data. This is the piece golang.org/x/tools/go/packages would
// otherwise provide; it is rebuilt here so the module stays dependency-free.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one parsed, type-checked module package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listEntry mirrors the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
}

// Load type-checks the packages matched by patterns (e.g. "./...") rooted at
// dir (the module root; "" means the current directory). Only non-DepOnly
// matches are returned; their imports — other module packages and the
// standard library — are resolved transitively.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	entries, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	exports := map[string]string{} // import path -> export data file
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	imp := &graphImporter{
		source: map[string]*types.Package{},
		gc:     importer.ForCompiler(fset, "gc", exportLookup(exports)),
	}

	var out []*Package
	// `go list -deps` emits dependencies before dependents, so checking in
	// order guarantees every module import is already in imp.source.
	for _, e := range entries {
		if e.Standard || len(e.GoFiles) == 0 {
			continue
		}
		pkg, err := checkFromSource(fset, e, imp)
		if err != nil {
			return nil, err
		}
		imp.source[e.ImportPath] = pkg.Types
		if !e.DepOnly {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// goList shells out to the go tool for the package graph. -export compiles
// (or pulls from the build cache) export data for every dependency so
// standard-library imports type-check without source.
func goList(dir string, patterns []string) ([]*listEntry, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Name,Export,Standard,DepOnly,GoFiles",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("scfslint: starting go list: %w", err)
	}
	var entries []*listEntry
	dec := json.NewDecoder(outPipe)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			_ = cmd.Wait()
			return nil, fmt.Errorf("scfslint: parsing go list output: %w", err)
		}
		entries = append(entries, &e)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("scfslint: go list %v: %w\n%s", patterns, err, stderr.String())
	}
	return entries, nil
}

// checkFromSource parses and type-checks one module package.
func checkFromSource(fset *token.FileSet, e *listEntry, imp types.Importer) (*Package, error) {
	files := make([]*ast.File, 0, len(e.GoFiles))
	for _, name := range e.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(e.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("scfslint: type-checking %s: %w", e.ImportPath, err)
	}
	return &Package{
		ImportPath: e.ImportPath,
		Dir:        e.Dir,
		Fset:       fset,
		Files:      files,
		Types:      pkg,
		TypesInfo:  info,
	}, nil
}

// NewInfo allocates a types.Info with every map analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// graphImporter resolves imports first against source-checked module
// packages, then against gc export data.
type graphImporter struct {
	source map[string]*types.Package
	gc     types.Importer
}

func (im *graphImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := im.source[path]; ok {
		return p, nil
	}
	return im.gc.Import(path)
}

// StdExports returns the import-path -> export-data-file map for the whole
// standard library (compiling any stale packages into the build cache). The
// analysistest fixture loader uses it to resolve stdlib imports from fixture
// files that are outside the module's package graph.
func StdExports() (map[string]string, error) {
	entries, err := goList("", []string{"std"})
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	return exports, nil
}

// ExportImporter returns a types.Importer over compiled export data files.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", exportLookup(exports))
}

// exportLookup adapts the path->file map from `go list -export` to the
// lookup shape importer.ForCompiler wants.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("scfslint: no export data for %q (not in the go list -deps graph)", path)
		}
		return os.Open(file)
	}
}
