package goroutinecancel_test

import (
	"testing"

	"scfs/internal/lint/analysistest"
	"scfs/internal/lint/goroutinecancel"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", goroutinecancel.Analyzer, "goroutines")
}
