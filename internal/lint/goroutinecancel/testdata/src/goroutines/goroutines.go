// Fixture for the goroutinecancel analyzer: every goroutine must be
// reachable from a cancellation or completion path.
package goroutines

import (
	"context"
	"sync"
)

type server struct {
	stop chan struct{}
	jobs chan int
}

// leakySend is the PR 3 leak class: parks forever on the send when the
// receiver gives up first, and nothing can cancel it.
func leakySend(ch chan int) {
	go func() { // want `goroutine has no reachable cancellation signal`
		ch <- compute()
	}()
}

// leakyCall spawns a cross-package callee with no context.
func leakyCall(s string) {
	go print(s) // want `goroutine has no reachable cancellation signal`
}

// selectWithCtx races the send against cancellation: clean.
func selectWithCtx(ctx context.Context, ch chan int) {
	go func() {
		select {
		case ch <- compute():
		case <-ctx.Done():
		}
	}()
}

// drainUntilClosed ranges over a channel closed by Stop: clean.
func (s *server) drainUntilClosed() {
	go func() {
		for j := range s.jobs {
			_ = j
		}
	}()
}

// waitsOnDone receives from a done channel: clean.
func (s *server) waitsOnDone() {
	go func() {
		<-s.stop
	}()
}

// ctxArg passes the context into the spawned call: clean.
func ctxArg(ctx context.Context) {
	go worker(ctx)
}

func worker(ctx context.Context) { <-ctx.Done() }

// samePackageBody: the callee has no ctx parameter, but its body blocks on
// the stop channel — found by the one-level-deep same-package lookup.
func (s *server) samePackageBody() {
	go s.loop()
}

func (s *server) loop() {
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.jobs:
			_ = j
		}
	}
}

// boundedJoin hands completion to a WaitGroup: clean.
func boundedJoin(parts []int) {
	var wg sync.WaitGroup
	for range parts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = compute()
		}()
	}
	wg.Wait()
}

// justified documents a deliberate fire-and-forget.
func justified() {
	//scfslint:ignore goroutinecancel fixture: process-lifetime goroutine by design
	go func() {
		_ = compute()
	}()
}

func compute() int { return 42 }
