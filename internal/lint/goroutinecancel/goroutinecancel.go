// Package goroutinecancel flags goroutines with no reachable cancellation
// or completion signal.
//
// The scenario harness hunts goroutine leaks dynamically (every chaos run
// settles the goroutine count before and after); this analyzer catches the
// same class statically at the spawn site. A goroutine in library code must
// be joinable or cancellable: it should either observe a context, select on
// a done/stop channel, hand completion to a WaitGroup, or call into a
// function that takes a context. A bare `go func() { ch <- compute() }()`
// is exactly the PR 3 leak class — it parks forever when the receiver gives
// up first.
//
// Accepted cancellation/completion evidence inside the spawned function
// (or, for a named same-package function, inside its body — one level
// deep):
//
//   - any reference to a context.Context value;
//   - any channel receive, range-over-channel, select, or close;
//   - any reference to a sync.WaitGroup (bounded fan-out joined by Wait);
//   - a call to a function whose first parameter is a context.Context.
//
// A goroutine with none of these has no path by which Stop, Unmount or a
// caller's cancellation can reach it; either thread a signal through it or
// justify it with a //scfslint:ignore directive.
package goroutinecancel

import (
	"go/ast"
	"go/types"

	"scfs/internal/lint/analysis"
)

// Analyzer flags goroutines unreachable from any cancellation path.
var Analyzer = &analysis.Analyzer{
	Name: "goroutinecancel",
	Doc:  "every goroutine in library code must be reachable from a ctx/done/Stop cancellation path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Bodies of same-package named functions, for one-level-deep lookup
	// when the go statement spawns `go c.flush(batch)` style calls.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			gostmt, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !cancellable(pass, gostmt.Call, decls, 2) {
				pass.Reportf(gostmt.Pos(), "goroutine has no reachable cancellation signal (no ctx, done channel, WaitGroup, or ctx-taking callee); Stop/Unmount cannot reclaim it")
			}
			return true
		})
	}
	return nil
}

// cancellable reports whether the spawned call exhibits any accepted
// cancellation/completion evidence. depth bounds same-package body lookups.
func cancellable(pass *analysis.Pass, call *ast.CallExpr, decls map[types.Object]*ast.FuncDecl, depth int) bool {
	// Evidence in the arguments (passing a ctx or channel into the call).
	for _, arg := range call.Args {
		if isCtx(pass, arg) || isChan(pass, arg) {
			return true
		}
	}
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return bodyHasSignal(pass, fun.Body, decls, depth)
	default:
		obj := calleeObj(pass, call)
		if obj == nil {
			return false
		}
		if fd, ok := decls[obj]; ok && depth > 0 {
			return bodyHasSignal(pass, fd.Body, decls, depth-1)
		}
		// Cross-package callee: accept it only if it takes a context.
		return calleeTakesCtx(obj)
	}
}

// bodyHasSignal scans a function body for cancellation evidence.
func bodyHasSignal(pass *analysis.Pass, body *ast.BlockStmt, decls map[types.Object]*ast.FuncDecl, depth int) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch node := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			// Channel receive <-ch (close-of-done and work-queue drain).
			if node.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if isChan(pass, node.X) {
				found = true
			}
		case *ast.Ident:
			if isCtx(pass, node) || isWaitGroupRef(pass, node) {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := node.Fun.(*ast.Ident); ok && id.Name == "close" && pass.TypesInfo.Uses[id] == types.Universe.Lookup("close") {
				found = true
				return false
			}
			if obj := calleeObj(pass, node); obj != nil {
				if calleeTakesCtx(obj) {
					found = true
					return false
				}
				if fd, ok := decls[obj]; ok && depth > 0 && bodyHasSignal(pass, fd.Body, decls, depth-1) {
					found = true
					return false
				}
			}
		}
		return !found
	})
	return found
}

// isCtx reports whether the expression is a context.Context value.
func isCtx(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isChan reports whether the expression has channel type.
func isChan(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Chan)
	return ok
}

// isWaitGroupRef reports whether the identifier denotes (or selects from) a
// sync.WaitGroup.
func isWaitGroupRef(pass *analysis.Pass, id *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	t := obj.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Name() == "WaitGroup" && o.Pkg() != nil && o.Pkg().Path() == "sync"
}

// calleeTakesCtx reports whether the callee's first parameter is a
// context.Context.
func calleeTakesCtx(obj types.Object) bool {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	named, ok := sig.Params().At(0).Type().(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Name() == "Context" && o.Pkg() != nil && o.Pkg().Path() == "context"
}

// calleeObj resolves the called function's object.
func calleeObj(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}
