// Package analysistest runs a scfslint analyzer over fixture packages and
// checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest without the dependency.
//
// Fixtures live under <testdata>/src/<importpath>/*.go. A fixture file marks
// expected diagnostics with a comment on the offending line:
//
//	ops := make([][]byte, 0, n) // want `untrusted length`
//
// The quoted string is a regular expression matched against the diagnostic
// message; several may follow one // want. Lines without a want comment must
// produce no diagnostics. Fixture imports resolve first against sibling
// fixture packages (so a fixture can declare a fake "telemetry" package),
// then against the real standard library via compiled export data.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"scfs/internal/lint/analysis"
	"scfs/internal/lint/loader"
)

// Run applies the analyzer to each named fixture package under
// testdata/src and reports mismatches against the // want comments through
// t.Errorf.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	src := filepath.Join(testdata, "src")
	ld := newFixtureLoader(src)
	for _, path := range pkgpaths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			continue
		}
		diags, err := analysis.Run(a, ld.fset, pkg.files, pkg.types, pkg.info)
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, path, err)
			continue
		}
		checkWants(t, ld.fset, pkg.files, diags)
	}
}

// checkWants compares diagnostics against the fixture's want comments.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]*wantExpect{}
	for _, f := range files {
		filename := fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, w := range parseWants(t, c.Text) {
					pos := fset.Position(c.Pos())
					wants[key{filename, pos.Line}] = append(wants[key{filename, pos.Line}], w)
				}
			}
		}
	}
	for _, d := range diags {
		pos := d.Position(fset)
		k := key{pos.Filename, pos.Line}
		matched := false
		for _, w := range wants[k] {
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(k.file), k.line, w.re)
			}
		}
	}
}

type wantExpect struct {
	re      *regexp.Regexp
	matched bool
}

// parseWants extracts the quoted regexes from a // want comment.
func parseWants(t *testing.T, comment string) []*wantExpect {
	t.Helper()
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	if !strings.HasPrefix(text, "want ") {
		return nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, "want "))
	var out []*wantExpect
	for rest != "" {
		if rest[0] != '"' && rest[0] != '`' {
			t.Errorf("malformed want comment: %s", comment)
			return out
		}
		lit, remainder, err := scanString(rest)
		if err != nil {
			t.Errorf("malformed want comment %q: %v", comment, err)
			return out
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			t.Errorf("bad want regexp %q: %v", lit, err)
		} else {
			out = append(out, &wantExpect{re: re})
		}
		rest = strings.TrimSpace(remainder)
	}
	return out
}

// scanString consumes one leading Go string literal (quoted or backquoted)
// and returns its value and the remainder.
func scanString(s string) (value, rest string, err error) {
	quote := s[0]
	for i := 1; i < len(s); i++ {
		switch {
		case quote == '"' && s[i] == '\\':
			i++
		case s[i] == quote:
			v, err := strconv.Unquote(s[:i+1])
			return v, s[i+1:], err
		}
	}
	return "", "", fmt.Errorf("unterminated string literal")
}

// fixturePkg is one parsed, type-checked fixture package.
type fixturePkg struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// fixtureLoader resolves fixture packages under a src root, with standard
// library imports served from compiled export data. Fixture packages may
// import each other by their path under src (e.g. "telemetry").
type fixtureLoader struct {
	src     string
	fset    *token.FileSet
	pkgs    map[string]*fixturePkg
	exports map[string]string
	gc      types.Importer
}

func newFixtureLoader(src string) *fixtureLoader {
	ld := &fixtureLoader{src: src, fset: token.NewFileSet(), pkgs: map[string]*fixturePkg{}}
	return ld
}

func (ld *fixtureLoader) load(path string) (*fixturePkg, error) {
	if p, ok := ld.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(ld.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := loader.NewInfo()
	conf := types.Config{
		Importer: importerFunc(func(ipath string) (*types.Package, error) { return ld.importPkg(ipath) }),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %w", path, err)
	}
	p := &fixturePkg{files: files, types: tpkg, info: info}
	ld.pkgs[path] = p
	return p, nil
}

// importPkg resolves one import from a fixture file: fixture-local packages
// win over the standard library so fixtures can fake project packages.
func (ld *fixtureLoader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if st, err := os.Stat(filepath.Join(ld.src, filepath.FromSlash(path))); err == nil && st.IsDir() {
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return p.types, nil
	}
	if ld.gc == nil {
		exp, err := loader.StdExports()
		if err != nil {
			return nil, err
		}
		ld.exports = exp
		ld.gc = loader.ExportImporter(ld.fset, exp)
	}
	return ld.gc.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
