// Package sentinelwrap enforces error-wrapping discipline at fmt.Errorf
// call sites.
//
// The resilience layer classifies per-cloud failures by unwrapping to the
// canonical internal/cloud sentinels (ErrUnavailable, ErrThrottled, ...),
// and the facade promises errors.Is(err, fs.ErrNotExist) works through
// every layer. Both break silently when an intermediate layer formats an
// error with %v or %s instead of %w: the text survives, the unwrap chain
// does not — retries stop firing, breakers stop opening, and callers start
// string-matching. The analyzer makes the chain mechanical: an error value
// given to fmt.Errorf must be wrapped with %w.
//
// A deliberate chain break (hiding an internal sentinel from a public
// boundary) is legitimate but rare enough to justify itself with a
// //scfslint:ignore directive.
package sentinelwrap

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"scfs/internal/lint/analysis"
)

// Analyzer enforces %w wrapping of error arguments to fmt.Errorf.
var Analyzer = &analysis.Analyzer{
	Name: "sentinelwrap",
	Doc:  "error values passed to fmt.Errorf must be wrapped with %w so errors.Is keeps working across layers",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isFmtErrorf(pass, call) || len(call.Args) == 0 {
				return true
			}
			format, ok := constantString(pass, call.Args[0])
			if !ok {
				// A non-constant format with error arguments cannot be
				// verified; demand a constant format at such sites.
				for _, arg := range call.Args[1:] {
					if isErrorArg(pass, arg, errType) {
						pass.Reportf(call.Pos(), "fmt.Errorf with a non-constant format and an error argument; use a constant format so %%w wrapping is checkable")
						break
					}
				}
				return true
			}
			checkVerbs(pass, call, format, errType)
			return true
		})
	}
	return nil
}

// checkVerbs walks the format string, pairing verbs with arguments, and
// flags error-typed arguments consumed by any verb other than %w.
func checkVerbs(pass *analysis.Pass, call *ast.CallExpr, format string, errType *types.Interface) {
	args := call.Args[1:]
	next := 0 // next implicit argument index
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		// Flags.
		for i < len(format) && strings.IndexByte("+-# 0", format[i]) >= 0 {
			i++
		}
		// Width (possibly '*', consuming an arg).
		for i < len(format) && (format[i] == '*' || isDigit(format[i])) {
			if format[i] == '*' {
				next++
			}
			i++
		}
		// Precision.
		if i < len(format) && format[i] == '.' {
			i++
			for i < len(format) && (format[i] == '*' || isDigit(format[i])) {
				if format[i] == '*' {
					next++
				}
				i++
			}
		}
		// Explicit argument index %[n].
		if i < len(format) && format[i] == '[' {
			j := i + 1
			num := 0
			for j < len(format) && isDigit(format[j]) {
				num = num*10 + int(format[j]-'0')
				j++
			}
			if j < len(format) && format[j] == ']' && num > 0 {
				next = num - 1
				i = j + 1
			}
		}
		if i >= len(format) {
			break
		}
		verb := format[i]
		argIdx := next
		next++
		if argIdx >= len(args) {
			continue // vet's business, not ours
		}
		if verb != 'w' && isErrorArg(pass, args[argIdx], errType) {
			pass.Reportf(args[argIdx].Pos(), "error formatted with %%%c breaks the errors.Is/As chain (resilience classification, facade sentinels); wrap it with %%w", verb)
		}
	}
}

func isFmtErrorf(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt"
}

// isErrorArg reports whether the argument's static type implements error.
func isErrorArg(pass *analysis.Pass, arg ast.Expr, errType *types.Interface) bool {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if basic, ok := t.Underlying().(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return false
	}
	return types.Implements(t, errType) || types.Implements(types.NewPointer(t), errType)
}

// constantString extracts a compile-time constant string value.
func constantString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }
