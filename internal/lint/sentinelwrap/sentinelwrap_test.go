package sentinelwrap_test

import (
	"testing"

	"scfs/internal/lint/analysistest"
	"scfs/internal/lint/sentinelwrap"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", sentinelwrap.Analyzer, "wrap")
}
