// Fixture for the sentinelwrap analyzer: error values through fmt.Errorf
// must use %w so errors.Is classification survives the layer.
package wrap

import (
	"errors"
	"fmt"
)

var ErrUnavailable = errors.New("cloud: provider unavailable")

type opError struct{ msg string }

func (e *opError) Error() string { return e.msg }

func flagged(err error, op *opError) {
	_ = fmt.Errorf("get failed: %v", err)         // want `error formatted with %v breaks the errors.Is/As chain`
	_ = fmt.Errorf("get failed: %s", err)         // want `error formatted with %s breaks the errors.Is/As chain`
	_ = fmt.Errorf("get failed: %+v", err)        // want `error formatted with %v breaks the errors.Is/As chain`
	_ = fmt.Errorf("%w: %v", ErrUnavailable, err) // want `error formatted with %v breaks the errors.Is/As chain`
	_ = fmt.Errorf("op: %v", op)                  // want `error formatted with %v breaks the errors.Is/As chain`
	_ = fmt.Errorf("%[2]v of %[1]s", "x", err)    // want `error formatted with %v breaks the errors.Is/As chain`
	_ = fmt.Errorf("%*d %v", 3, 7, err)           // want `error formatted with %v breaks the errors.Is/As chain`
}

func nonConstant(format string, err error) {
	_ = fmt.Errorf(format, err) // want `non-constant format`
}

func clean(err error, n int, name string) {
	_ = fmt.Errorf("get failed: %w", err)
	_ = fmt.Errorf("%w: shard %d of %s", err, n, name)
	_ = fmt.Errorf("%w: %w", ErrUnavailable, err)
	_ = fmt.Errorf("plain %d and %s, no errors involved", n, name)
	_ = fmt.Errorf("escaped %%v is not a verb: %w", err)
	// The message of an error is a string, not an error value; taking it
	// deliberately severs the chain and that is visible at the call site.
	_ = fmt.Errorf("detail: %s", err.Error())
}

func justified(err error) error {
	// Deliberately hiding an internal sentinel from a public boundary.
	//scfslint:ignore sentinelwrap fixture: public boundary must not expose the internal sentinel
	return fmt.Errorf("operation failed: %v", err)
}
