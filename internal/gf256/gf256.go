// Package gf256 implements arithmetic over the finite field GF(2^8) with the
// AES/Rijndael reducing polynomial x^8 + x^4 + x^3 + x + 1 (0x11b). It is the
// foundation for the Reed-Solomon erasure coding and Shamir secret sharing
// used by the DepSky cloud-of-clouds backend.
//
// Besides the scalar operations (Mul, Div, Inv, ...) and dense matrices, the
// package provides bulk slice kernels for the data-plane hot paths:
//
//	MulSlice(c, in, out)     // out[i] = c·in[i]
//	MulSliceXor(c, in, out)  // out[i] ^= c·in[i]
//	XorSlice(in, out)        // out[i] ^= in[i]
//
// The kernels are table-driven (see kernels.go) and dispatch at runtime to
// GFNI or AVX2 assembly on amd64; NibbleTables exposes the split low/high
// nibble product tables the SIMD implementations consume.
package gf256

import "fmt"

// polynomial is the irreducible polynomial used for reduction (0x11b without
// the leading x^8 term when working in bytes).
const polynomial = 0x1b

var (
	expTable [512]byte // exp[i] = generator^i, doubled to avoid mod 255 in Mul
	logTable [256]byte // log[exp[i]] = i
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		expTable[i] = x
		logTable[x] = byte(i)
		// multiply x by the generator 0x03 = x + 1.
		x = mulSlow(x, 3)
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
}

// mulSlow multiplies two field elements without tables (Russian peasant
// multiplication with reduction). Used only to build the tables and in tests.
func mulSlow(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		carry := a & 0x80
		a <<= 1
		if carry != 0 {
			a ^= polynomial
		}
		b >>= 1
	}
	return p
}

// Add returns a + b in GF(2^8) (which is XOR).
func Add(a, b byte) byte { return a ^ b }

// Sub returns a - b in GF(2^8) (identical to Add).
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a / b in GF(2^8). It panics if b == 0.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(logTable[a]) - int(logTable[b])
	if d < 0 {
		d += 255
	}
	return expTable[d]
}

// Inv returns the multiplicative inverse of a. It panics if a == 0.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return expTable[255-int(logTable[a])]
}

// Exp returns the generator raised to the power n (n may be any non-negative
// integer).
func Exp(n int) byte {
	if n < 0 {
		panic("gf256: negative exponent")
	}
	return expTable[n%255]
}

// Pow returns a raised to the power n.
func Pow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return expTable[(int(logTable[a])*n)%255]
}

// Matrix is a dense matrix over GF(2^8), stored row-major.
type Matrix struct {
	Rows, Cols int
	Data       []byte
}

// NewMatrix allocates a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("gf256: invalid matrix dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]byte, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) byte { return m.Data[r*m.Cols+c] }

// Set assigns the element at row r, column c.
func (m *Matrix) Set(r, c int, v byte) { m.Data[r*m.Cols+c] = v }

// Row returns a slice aliasing row r.
func (m *Matrix) Row(r int) []byte { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Mul returns the matrix product m × other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("gf256: dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := NewMatrix(m.Rows, other.Cols)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < other.Cols; c++ {
			var acc byte
			for k := 0; k < m.Cols; k++ {
				acc ^= Mul(m.At(r, k), other.At(k, c))
			}
			out.Set(r, c, acc)
		}
	}
	return out
}

// SubMatrix returns a copy of the rows [r0,r1) and columns [c0,c1).
func (m *Matrix) SubMatrix(r0, r1, c0, c1 int) *Matrix {
	out := NewMatrix(r1-r0, c1-c0)
	for r := r0; r < r1; r++ {
		for c := c0; c < c1; c++ {
			out.Set(r-r0, c-c0, m.At(r, c))
		}
	}
	return out
}

// Augment returns the matrix [m | other].
func (m *Matrix) Augment(other *Matrix) *Matrix {
	if m.Rows != other.Rows {
		panic("gf256: augment row mismatch")
	}
	out := NewMatrix(m.Rows, m.Cols+other.Cols)
	for r := 0; r < m.Rows; r++ {
		copy(out.Row(r)[:m.Cols], m.Row(r))
		copy(out.Row(r)[m.Cols:], other.Row(r))
	}
	return out
}

// SwapRows exchanges rows i and j in place.
func (m *Matrix) SwapRows(i, j int) {
	if i == j {
		return
	}
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// ErrSingular is returned by Invert when the matrix has no inverse.
var ErrSingular = fmt.Errorf("gf256: matrix is singular")

// Invert returns the inverse of the square matrix m using Gauss-Jordan
// elimination over GF(2^8). It returns ErrSingular when the matrix is not
// invertible.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("gf256: cannot invert non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	work := m.Augment(Identity(n))
	for col := 0; col < n; col++ {
		// Find a pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		work.SwapRows(col, pivot)
		// Scale pivot row to make the pivot 1.
		inv := Inv(work.At(col, col))
		row := work.Row(col)
		for k := range row {
			row[k] = Mul(row[k], inv)
		}
		// Eliminate the column from all other rows.
		for r := 0; r < n; r++ {
			if r == col || work.At(r, col) == 0 {
				continue
			}
			factor := work.At(r, col)
			target := work.Row(r)
			for k := range target {
				target[k] ^= Mul(factor, row[k])
			}
		}
	}
	return work.SubMatrix(0, n, n, 2*n), nil
}

// Vandermonde returns the rows×cols Vandermonde matrix with element (r,c) =
// r^c (using the field exponentiation). Any k rows of this matrix are
// linearly independent as long as the row indices are distinct, which makes
// it suitable for building erasure-coding matrices.
func Vandermonde(rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, Pow(byte(r), c))
		}
	}
	return m
}
