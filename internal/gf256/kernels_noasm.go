//go:build !amd64 || !gc

package gf256

// Stubs for platforms without assembly kernels: the slice kernels run the
// portable table-driven loops.

func mulSliceAsm(c byte, in, out []byte) int    { return 0 }
func mulSliceXorAsm(c byte, in, out []byte) int { return 0 }
