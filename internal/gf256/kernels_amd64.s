//go:build amd64 && gc

#include "textflag.h"

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func gfniMul(c byte, in, out []byte)
//
// out[i] = c * in[i] over GF(2^8) mod 0x11b, 32 bytes per iteration via
// VGF2P8MULB. len(in) must be a multiple of 32.
TEXT ·gfniMul(SB), NOSPLIT, $0-56
	MOVBLZX c+0(FP), AX
	MOVQ    in_base+8(FP), SI
	MOVQ    in_len+16(FP), CX
	MOVQ    out_base+32(FP), DI
	SHRQ    $5, CX
	JZ      gfnimul_done
	MOVQ    AX, X0
	VPBROADCASTB X0, Y0

gfnimul_loop:
	VMOVDQU    (SI), Y1
	VGF2P8MULB Y0, Y1, Y1
	VMOVDQU    Y1, (DI)
	ADDQ       $32, SI
	ADDQ       $32, DI
	DECQ       CX
	JNZ        gfnimul_loop
	VZEROUPPER

gfnimul_done:
	RET

// func gfniMulXor(c byte, in, out []byte)
//
// out[i] ^= c * in[i], 32 bytes per iteration. len(in) must be a multiple
// of 32.
TEXT ·gfniMulXor(SB), NOSPLIT, $0-56
	MOVBLZX c+0(FP), AX
	MOVQ    in_base+8(FP), SI
	MOVQ    in_len+16(FP), CX
	MOVQ    out_base+32(FP), DI
	SHRQ    $5, CX
	JZ      gfnixor_done
	MOVQ    AX, X0
	VPBROADCASTB X0, Y0

gfnixor_loop:
	VMOVDQU    (SI), Y1
	VGF2P8MULB Y0, Y1, Y1
	VPXOR      (DI), Y1, Y1
	VMOVDQU    Y1, (DI)
	ADDQ       $32, SI
	ADDQ       $32, DI
	DECQ       CX
	JNZ        gfnixor_loop
	VZEROUPPER

gfnixor_done:
	RET

// func avx2Mul(low, high *[16]byte, in, out []byte)
//
// out[i] = c * in[i] using the split low/high nibble product tables of the
// coefficient (see NibbleTables): c*x = low[x&0xf] ^ high[x>>4], evaluated 32
// bytes at a time with VPSHUFB. len(in) must be a multiple of 32.
TEXT ·avx2Mul(SB), NOSPLIT, $0-64
	MOVQ low+0(FP), AX
	MOVQ high+8(FP), BX
	MOVQ in_base+16(FP), SI
	MOVQ in_len+24(FP), CX
	MOVQ out_base+40(FP), DI
	SHRQ $5, CX
	JZ   avx2mul_done
	VBROADCASTI128 (AX), Y2 // low-nibble table in both lanes
	VBROADCASTI128 (BX), Y3 // high-nibble table in both lanes
	MOVQ $0x0f, AX
	MOVQ AX, X4
	VPBROADCASTB X4, Y4     // 0x0f mask

avx2mul_loop:
	VMOVDQU (SI), Y0
	VPSRLW  $4, Y0, Y1
	VPAND   Y4, Y0, Y0      // low nibbles
	VPAND   Y4, Y1, Y1      // high nibbles
	VPSHUFB Y0, Y2, Y0      // low table lookup
	VPSHUFB Y1, Y3, Y1      // high table lookup
	VPXOR   Y0, Y1, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     avx2mul_loop
	VZEROUPPER

avx2mul_done:
	RET

// func avx2MulXor(low, high *[16]byte, in, out []byte)
//
// out[i] ^= c * in[i] via the nibble tables. len(in) must be a multiple
// of 32.
TEXT ·avx2MulXor(SB), NOSPLIT, $0-64
	MOVQ low+0(FP), AX
	MOVQ high+8(FP), BX
	MOVQ in_base+16(FP), SI
	MOVQ in_len+24(FP), CX
	MOVQ out_base+40(FP), DI
	SHRQ $5, CX
	JZ   avx2xor_done
	VBROADCASTI128 (AX), Y2
	VBROADCASTI128 (BX), Y3
	MOVQ $0x0f, AX
	MOVQ AX, X4
	VPBROADCASTB X4, Y4

avx2xor_loop:
	VMOVDQU (SI), Y0
	VPSRLW  $4, Y0, Y1
	VPAND   Y4, Y0, Y0
	VPAND   Y4, Y1, Y1
	VPSHUFB Y0, Y2, Y0
	VPSHUFB Y1, Y3, Y1
	VPXOR   Y0, Y1, Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     avx2xor_loop
	VZEROUPPER

avx2xor_done:
	RET
