package gf256

import (
	"testing"
	"testing/quick"
)

func TestAddIsXor(t *testing.T) {
	if Add(0x53, 0xCA) != 0x53^0xCA {
		t.Fatalf("Add(0x53, 0xCA) = %#x, want %#x", Add(0x53, 0xCA), 0x53^0xCA)
	}
	if Sub(0x53, 0xCA) != Add(0x53, 0xCA) {
		t.Fatal("Sub must equal Add in GF(2^8)")
	}
}

func TestMulKnownValues(t *testing.T) {
	// Classic AES example: 0x53 * 0xCA = 0x01.
	if got := Mul(0x53, 0xCA); got != 0x01 {
		t.Fatalf("Mul(0x53, 0xCA) = %#x, want 0x01", got)
	}
	if got := Mul(0x57, 0x83); got != 0xC1 {
		t.Fatalf("Mul(0x57, 0x83) = %#x, want 0xC1", got)
	}
	if Mul(0, 0x37) != 0 || Mul(0x37, 0) != 0 {
		t.Fatal("multiplication by zero must be zero")
	}
	if Mul(1, 0x9f) != 0x9f {
		t.Fatal("multiplication by one must be identity")
	}
}

func TestMulMatchesSlowMul(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := Mul(byte(a), byte(b)), mulSlow(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestDivInvertsMul(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 1; b < 256; b++ {
			p := Mul(byte(a), byte(b))
			if got := Div(p, byte(b)); got != byte(a) {
				t.Fatalf("Div(Mul(%d,%d),%d) = %d, want %d", a, b, b, got, a)
			}
		}
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	Div(5, 0)
}

func TestInv(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := Mul(byte(a), Inv(byte(a))); got != 1 {
			t.Fatalf("a * Inv(a) = %d for a=%d, want 1", got, a)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestPow(t *testing.T) {
	if Pow(0x02, 0) != 1 {
		t.Fatal("x^0 must be 1")
	}
	if Pow(0, 5) != 0 {
		t.Fatal("0^5 must be 0")
	}
	// Pow via repeated multiplication.
	for _, a := range []byte{2, 3, 0x1d, 0xff} {
		acc := byte(1)
		for n := 0; n < 40; n++ {
			if got := Pow(a, n); got != acc {
				t.Fatalf("Pow(%d,%d) = %d, want %d", a, n, got, acc)
			}
			acc = Mul(acc, a)
		}
	}
}

func TestExpLogRoundTrip(t *testing.T) {
	for i := 0; i < 255; i++ {
		v := Exp(i)
		if int(logTable[v]) != i {
			t.Fatalf("log(exp(%d)) = %d", i, logTable[v])
		}
	}
}

func TestMulPropertyCommutativeAssociativeDistributive(t *testing.T) {
	comm := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(comm, nil); err != nil {
		t.Errorf("commutativity: %v", err)
	}
	assoc := func(a, b, c byte) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
	if err := quick.Check(assoc, nil); err != nil {
		t.Errorf("associativity: %v", err)
	}
	dist := func(a, b, c byte) bool { return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c)) }
	if err := quick.Check(dist, nil); err != nil {
		t.Errorf("distributivity: %v", err)
	}
}

func TestMatrixIdentityMul(t *testing.T) {
	m := NewMatrix(3, 3)
	vals := []byte{1, 2, 3, 4, 5, 6, 7, 8, 10}
	copy(m.Data, vals)
	id := Identity(3)
	got := m.Mul(id)
	for i, v := range vals {
		if got.Data[i] != v {
			t.Fatalf("m * I differs at %d: got %d want %d", i, got.Data[i], v)
		}
	}
	got = id.Mul(m)
	for i, v := range vals {
		if got.Data[i] != v {
			t.Fatalf("I * m differs at %d: got %d want %d", i, got.Data[i], v)
		}
	}
}

func TestMatrixInvertRoundTrip(t *testing.T) {
	m := NewMatrix(3, 3)
	copy(m.Data, []byte{56, 23, 98, 3, 100, 200, 45, 201, 123})
	inv, err := m.Invert()
	if err != nil {
		t.Fatalf("Invert: %v", err)
	}
	prod := m.Mul(inv)
	id := Identity(3)
	for i := range id.Data {
		if prod.Data[i] != id.Data[i] {
			t.Fatalf("m * m^-1 != I at index %d: got %d", i, prod.Data[i])
		}
	}
}

func TestMatrixInvertSingular(t *testing.T) {
	m := NewMatrix(2, 2)
	copy(m.Data, []byte{1, 2, 2, 4}) // rows are linearly dependent (row2 = 2*row1)
	if _, err := m.Invert(); err == nil {
		t.Fatal("expected error inverting singular matrix")
	}
}

func TestMatrixInvertNonSquare(t *testing.T) {
	m := NewMatrix(2, 3)
	if _, err := m.Invert(); err == nil {
		t.Fatal("expected error inverting non-square matrix")
	}
}

func TestVandermondeSubmatricesInvertible(t *testing.T) {
	// Any k distinct rows of a Vandermonde matrix must be invertible.
	const n, k = 8, 4
	v := Vandermonde(n, k)
	rowSets := [][]int{
		{0, 1, 2, 3}, {4, 5, 6, 7}, {0, 2, 4, 6}, {1, 3, 5, 7}, {0, 3, 5, 6},
	}
	for _, rows := range rowSets {
		m := NewMatrix(k, k)
		for i, r := range rows {
			copy(m.Row(i), v.Row(r))
		}
		if _, err := m.Invert(); err != nil {
			t.Fatalf("submatrix with rows %v not invertible: %v", rows, err)
		}
	}
}

func TestSubMatrixAndAugment(t *testing.T) {
	m := NewMatrix(2, 2)
	copy(m.Data, []byte{1, 2, 3, 4})
	a := m.Augment(Identity(2))
	if a.Cols != 4 || a.At(0, 2) != 1 || a.At(1, 3) != 1 {
		t.Fatalf("unexpected augment result: %+v", a)
	}
	s := a.SubMatrix(0, 2, 2, 4)
	if s.At(0, 0) != 1 || s.At(1, 1) != 1 || s.At(0, 1) != 0 {
		t.Fatalf("unexpected submatrix result: %+v", s)
	}
}

func TestMatrixSwapRows(t *testing.T) {
	m := NewMatrix(2, 2)
	copy(m.Data, []byte{1, 2, 3, 4})
	m.SwapRows(0, 1)
	if m.At(0, 0) != 3 || m.At(1, 0) != 1 {
		t.Fatal("SwapRows did not exchange rows")
	}
	m.SwapRows(1, 1) // no-op must not corrupt
	if m.At(1, 0) != 1 || m.At(1, 1) != 2 {
		t.Fatal("self swap corrupted the row")
	}
}

func TestNewMatrixPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMatrix(0, 3) did not panic")
		}
	}()
	NewMatrix(0, 3)
}
