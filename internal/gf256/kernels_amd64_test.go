//go:build amd64 && gc

package gf256

import (
	"bytes"
	"math/rand"
	"testing"
)

// The dispatch in MulSlice prefers GFNI, so the AVX2 kernels are exercised
// directly here (and vice versa on machines with only one of the features).

func testAsmKernel(t *testing.T, name string, mul, mulXor func(c byte, in, out []byte)) {
	t.Helper()
	r := rand.New(rand.NewSource(11))
	for _, size := range []int{32, 64, 256, 4096} {
		in := make([]byte, size)
		base := make([]byte, size)
		r.Read(in)
		r.Read(base)
		for _, c := range []byte{2, 0x1d, 0x8e, 0xff} {
			want := make([]byte, size)
			mulSliceRef(c, in, want)
			out := make([]byte, size)
			mul(c, in, out)
			if !bytes.Equal(out, want) {
				t.Fatalf("%s mul c=%#x size=%d mismatch", name, c, size)
			}
			wantXor := append([]byte(nil), base...)
			XorSlice(want, wantXor)
			outXor := append([]byte(nil), base...)
			mulXor(c, in, outXor)
			if !bytes.Equal(outXor, wantXor) {
				t.Fatalf("%s mulXor c=%#x size=%d mismatch", name, c, size)
			}
		}
	}
}

func TestGFNIKernels(t *testing.T) {
	if !hasGFNI {
		t.Skip("no GFNI on this CPU")
	}
	testAsmKernel(t, "gfni", gfniMul, gfniMulXor)
}

func TestAVX2Kernels(t *testing.T) {
	if !hasAVX2 {
		t.Skip("no AVX2 on this CPU")
	}
	testAsmKernel(t, "avx2",
		func(c byte, in, out []byte) { avx2Mul(&mulTableLow[c], &mulTableHigh[c], in, out) },
		func(c byte, in, out []byte) { avx2MulXor(&mulTableLow[c], &mulTableHigh[c], in, out) })
}

func BenchmarkMulSliceGFNI(b *testing.B) {
	if !hasGFNI {
		b.Skip("no GFNI on this CPU")
	}
	in, out := benchInput()
	b.SetBytes(benchLen)
	for i := 0; i < b.N; i++ {
		gfniMul(0x1d, in, out)
	}
}

func BenchmarkMulSliceAVX2(b *testing.B) {
	if !hasAVX2 {
		b.Skip("no AVX2 on this CPU")
	}
	in, out := benchInput()
	b.SetBytes(benchLen)
	for i := 0; i < b.N; i++ {
		avx2Mul(&mulTableLow[0x1d], &mulTableHigh[0x1d], in, out)
	}
}
