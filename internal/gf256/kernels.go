package gf256

import "encoding/binary"

// This file holds the table-driven bulk kernels used by the data-plane hot
// paths (erasure coding, Shamir sharing). The scalar Mul in gf256.go costs a
// function call, two zero-branches and three table lookups per byte; the
// kernels below amortize the coefficient across a whole slice:
//
//   - mulTable is the full 256×256 product table. The portable
//     MulSlice/MulSliceXor loops walk the 256-byte row of the active
//     coefficient, so the inner loop is a single L1-resident lookup per byte.
//   - mulTableLow/mulTableHigh are the split low/high-nibble tables
//     (mulTableLow[c][n] = c·n, mulTableHigh[c][n] = c·(n<<4), so
//     c·x = mulTableLow[c][x&15] ^ mulTableHigh[c][x>>4]). This is the
//     16-entry-per-coefficient layout consumed by the AVX2 VPSHUFB kernels in
//     kernels_amd64.s; it is also exposed through NibbleTables.
//
// On amd64 the kernels dispatch at runtime (CPUID) to assembly that processes
// 32 bytes per iteration: VGF2P8MULB where GFNI is available (the instruction
// multiplies bytewise in exactly this field, GF(2^8) mod 0x11b), otherwise
// the classic two-VPSHUFB nibble-table sequence on AVX2. The portable loops
// remain both as the fallback and as the reference the assembly is tested
// against.
//
// All tables are built at init time from the branch-free mulSlow, so the
// kernels do not depend on package init ordering with the log/exp tables.

var (
	mulTable     [256][256]byte
	mulTableLow  [256][16]byte
	mulTableHigh [256][16]byte
)

func init() {
	for c := 0; c < 256; c++ {
		row := &mulTable[c]
		for x := 0; x < 256; x++ {
			row[x] = mulSlow(byte(c), byte(x))
		}
		for n := 0; n < 16; n++ {
			mulTableLow[c][n] = row[n]
			mulTableHigh[c][n] = row[n<<4]
		}
	}
}

// NibbleTables returns the split low/high-nibble product tables for the
// coefficient c: c·x == low[x&0xf] ^ high[x>>4]. This is the layout SIMD
// shuffle kernels consume; the pure-Go kernels below use the full table row
// instead (one lookup per byte beats two).
func NibbleTables(c byte) (low, high *[16]byte) {
	return &mulTableLow[c], &mulTableHigh[c]
}

// MulSlice sets out[i] = c * in[i] for every i. in and out must have the same
// length; they may be the same slice (in-place scaling).
func MulSlice(c byte, in, out []byte) {
	switch c {
	case 0:
		clear(out)
	case 1:
		if len(in) > 0 && &in[0] != &out[0] {
			copy(out, in)
		}
	default:
		done := mulSliceAsm(c, in, out)
		mt := &mulTable[c]
		for i, v := range in[done:] {
			out[done+i] = mt[v]
		}
	}
}

// MulSliceXor sets out[i] ^= c * in[i] for every i. in and out must have the
// same length and must not overlap unless they are identical slices.
func MulSliceXor(c byte, in, out []byte) {
	switch c {
	case 0:
		return
	case 1:
		XorSlice(in, out)
	default:
		done := mulSliceXorAsm(c, in, out)
		mt := &mulTable[c]
		for i, v := range in[done:] {
			out[done+i] ^= mt[v]
		}
	}
}

// XorSlice sets out[i] ^= in[i], processing 32 bytes per iteration on SIMD
// hardware (an identity-coefficient multiply) and eight otherwise. The two
// slices must have the same length.
func XorSlice(in, out []byte) {
	done := mulSliceXorAsm(1, in, out)
	in, out = in[done:], out[done:]
	for len(in) >= 8 {
		binary.LittleEndian.PutUint64(out, binary.LittleEndian.Uint64(out)^binary.LittleEndian.Uint64(in))
		in, out = in[8:], out[8:]
	}
	for i := range in {
		out[i] ^= in[i]
	}
}

// mulSliceNibble is the nibble-table variant of MulSlice, kept as the
// reference for the SIMD layout (see NibbleTables) and exercised by tests and
// benchmarks against the full-table kernel.
func mulSliceNibble(c byte, in, out []byte) {
	low, high := &mulTableLow[c], &mulTableHigh[c]
	for i, v := range in {
		out[i] = low[v&0xf] ^ high[v>>4]
	}
}
