package gf256

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestMulTableMatchesMul(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := mulTable[a][b], Mul(byte(a), byte(b)); got != want {
				t.Fatalf("mulTable[%d][%d] = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestNibbleTablesMatchMul(t *testing.T) {
	for c := 0; c < 256; c++ {
		low, high := NibbleTables(byte(c))
		for x := 0; x < 256; x++ {
			got := low[x&0xf] ^ high[x>>4]
			if want := Mul(byte(c), byte(x)); got != want {
				t.Fatalf("nibble product %d*%d = %d, want %d", c, x, got, want)
			}
		}
	}
}

func TestMulSliceAgainstScalar(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, size := range []int{0, 1, 7, 8, 9, 63, 64, 1000} {
		in := make([]byte, size)
		r.Read(in)
		for _, c := range []byte{0, 1, 2, 0x1d, 0xff} {
			want := make([]byte, size)
			for i, v := range in {
				want[i] = Mul(c, v)
			}
			out := make([]byte, size)
			MulSlice(c, in, out)
			if !bytes.Equal(out, want) {
				t.Fatalf("MulSlice(%d) mismatch at size %d", c, size)
			}
			nib := make([]byte, size)
			mulSliceNibble(c, in, nib)
			if !bytes.Equal(nib, want) {
				t.Fatalf("mulSliceNibble(%d) mismatch at size %d", c, size)
			}
			// In-place scaling must agree with out-of-place.
			inPlace := append([]byte(nil), in...)
			MulSlice(c, inPlace, inPlace)
			if !bytes.Equal(inPlace, want) {
				t.Fatalf("in-place MulSlice(%d) mismatch at size %d", c, size)
			}
		}
	}
}

func TestMulSliceXorAgainstScalar(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for _, size := range []int{0, 1, 15, 16, 17, 1000} {
		in := make([]byte, size)
		base := make([]byte, size)
		r.Read(in)
		r.Read(base)
		for _, c := range []byte{0, 1, 3, 0x8e, 0xff} {
			want := append([]byte(nil), base...)
			for i, v := range in {
				want[i] ^= Mul(c, v)
			}
			out := append([]byte(nil), base...)
			MulSliceXor(c, in, out)
			if !bytes.Equal(out, want) {
				t.Fatalf("MulSliceXor(%d) mismatch at size %d", c, size)
			}
		}
	}
}

func TestXorSlice(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, size := range []int{0, 1, 7, 8, 9, 31, 32, 33, 4096} {
		a := make([]byte, size)
		b := make([]byte, size)
		r.Read(a)
		r.Read(b)
		want := make([]byte, size)
		for i := range a {
			want[i] = a[i] ^ b[i]
		}
		out := append([]byte(nil), b...)
		XorSlice(a, out)
		if !bytes.Equal(out, want) {
			t.Fatalf("XorSlice mismatch at size %d", size)
		}
	}
}

// --- benchmarks: scalar Mul loop vs the slice kernels ---

// mulSliceRef is the plain per-byte reference all kernels are tested against.
func mulSliceRef(c byte, in, out []byte) {
	for i, v := range in {
		out[i] = Mul(c, v)
	}
}

const benchLen = 64 << 10

func benchInput() (in, out []byte) {
	in = make([]byte, benchLen)
	rand.New(rand.NewSource(1)).Read(in)
	return in, make([]byte, benchLen)
}

func BenchmarkMulScalarLoop(b *testing.B) {
	in, out := benchInput()
	b.SetBytes(benchLen)
	for i := 0; i < b.N; i++ {
		for j, v := range in {
			out[j] = Mul(0x1d, v)
		}
	}
}

func BenchmarkMulSlice(b *testing.B) {
	in, out := benchInput()
	b.SetBytes(benchLen)
	for i := 0; i < b.N; i++ {
		MulSlice(0x1d, in, out)
	}
}

func BenchmarkMulSliceNibble(b *testing.B) {
	in, out := benchInput()
	b.SetBytes(benchLen)
	for i := 0; i < b.N; i++ {
		mulSliceNibble(0x1d, in, out)
	}
}

func BenchmarkMulSliceXor(b *testing.B) {
	in, out := benchInput()
	b.SetBytes(benchLen)
	for i := 0; i < b.N; i++ {
		MulSliceXor(0x1d, in, out)
	}
}

func BenchmarkXorSlice(b *testing.B) {
	in, out := benchInput()
	b.SetBytes(benchLen)
	for i := 0; i < b.N; i++ {
		XorSlice(in, out)
	}
}
