//go:build amd64 && gc

package gf256

// CPU feature flags for the SIMD kernels, set at init from CPUID. hasGFNI
// implies hasAVX2 (the GFNI kernels use VEX-encoded 256-bit operations and
// VPBROADCASTB).
var (
	hasAVX2 bool
	hasGFNI bool
)

// cpuid executes the CPUID instruction with the given EAX/ECX inputs.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (requires OSXSAVE).
func xgetbv() (eax, edx uint32)

func init() {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return
	}
	_, _, c1, _ := cpuid(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if c1&osxsave == 0 || c1&avx == 0 {
		return
	}
	// The OS must save/restore XMM and YMM state.
	if xeax, _ := xgetbv(); xeax&0x6 != 0x6 {
		return
	}
	_, b7, c7, _ := cpuid(7, 0)
	hasAVX2 = b7&(1<<5) != 0
	hasGFNI = hasAVX2 && c7&(1<<8) != 0
}

// The assembly kernels process len(in)/32*32 bytes; callers slice the inputs
// to a multiple of 32 and handle the tail with the scalar loop.

// gfniMul sets out[i] = c*in[i] using VGF2P8MULB (GF(2^8) mod 0x11b, the
// field this package implements).
func gfniMul(c byte, in, out []byte)

// gfniMulXor sets out[i] ^= c*in[i] using VGF2P8MULB.
func gfniMulXor(c byte, in, out []byte)

// avx2Mul sets out[i] = c*in[i] using the split nibble tables with VPSHUFB.
func avx2Mul(low, high *[16]byte, in, out []byte)

// avx2MulXor sets out[i] ^= c*in[i] using the split nibble tables with
// VPSHUFB.
func avx2MulXor(low, high *[16]byte, in, out []byte)

// mulSliceAsm dispatches to the widest available SIMD kernel; it reports
// how many leading bytes it processed (0 when no kernel is available).
func mulSliceAsm(c byte, in, out []byte) int {
	n := len(in) &^ 31
	if n == 0 {
		return 0
	}
	switch {
	case hasGFNI:
		gfniMul(c, in[:n], out[:n])
	case hasAVX2:
		avx2Mul(&mulTableLow[c], &mulTableHigh[c], in[:n], out[:n])
	default:
		return 0
	}
	return n
}

// mulSliceXorAsm is the xor-accumulating counterpart of mulSliceAsm.
func mulSliceXorAsm(c byte, in, out []byte) int {
	n := len(in) &^ 31
	if n == 0 {
		return 0
	}
	switch {
	case hasGFNI:
		gfniMulXor(c, in[:n], out[:n])
	case hasAVX2:
		avx2MulXor(&mulTableLow[c], &mulTableHigh[c], in[:n], out[:n])
	default:
		return 0
	}
	return n
}
