// Package depspace implements a DepSpace-like Byzantine fault-tolerant tuple
// space, the coordination service used by SCFS to store file-system metadata
// and to implement locking. It runs as a deterministic application on top of
// the replication engine in internal/smr (the paper's BFT-SMaRt), so it can
// be deployed with 3f+1 replicas tolerating f arbitrary faults or 2f+1
// replicas tolerating crashes.
//
// The tuple space supports the classic operations (out, rdp, inp), a
// conditional replace used for metadata updates, ephemeral (timed) tuples
// used for locks, and the trigger-like rename extension mentioned in §3.2 of
// the paper (renaming a prefix atomically rewrites matching tuples).
//
// Determinism: expiry of timed tuples is evaluated against the timestamp
// carried inside each command (set by the client when it issues the
// operation), never against the replica's local clock, so all replicas make
// identical decisions.
package depspace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Wildcard matches any field value in a template.
const Wildcard = "*"

// Tuple is an ordered list of string fields.
type Tuple []string

// Matches reports whether the tuple matches a template of the same length
// where Wildcard fields match anything.
func (t Tuple) Matches(template Tuple) bool {
	if len(t) != len(template) {
		return false
	}
	for i, f := range template {
		if f != Wildcard && f != t[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// String renders the tuple for debugging.
func (t Tuple) String() string { return "<" + strings.Join(t, ", ") + ">" }

// Less orders tuples field-wise lexicographically. It exists so sorts over
// large match sets (directory listings) do not allocate: a comparator built
// on String() materializes two joined strings per comparison, which turns an
// rdAll over a big directory into a multi-thousand-allocation sort — hot
// enough to dominate replica execution under metadata-heavy load.
func (t Tuple) Less(o Tuple) bool {
	for i := 0; i < len(t) && i < len(o); i++ {
		if t[i] != o[i] {
			return t[i] < o[i]
		}
	}
	return len(t) < len(o)
}

// ACL restricts who can read or overwrite a stored tuple. An empty ACL means
// the tuple is accessible to every client (used for bootstrap data).
type ACL struct {
	// Owner may always read, overwrite and remove the tuple, and is the only
	// principal allowed to change the ACL.
	Owner string `json:"owner,omitempty"`
	// Readers and Writers extend access to other principals.
	Readers []string `json:"readers,omitempty"`
	Writers []string `json:"writers,omitempty"`
}

func (a ACL) canRead(who string) bool {
	if a.Owner == "" || who == a.Owner {
		return true
	}
	for _, r := range a.Readers {
		if r == who {
			return true
		}
	}
	return a.canWrite(who) // writers may read
}

func (a ACL) canWrite(who string) bool {
	if a.Owner == "" || who == a.Owner {
		return true
	}
	for _, w := range a.Writers {
		if w == who {
			return true
		}
	}
	return false
}

// Entry is a stored tuple with its metadata.
type Entry struct {
	Tuple   Tuple `json:"tuple"`
	ACL     ACL   `json:"acl"`
	Version uint64 `json:"version"`
	// ExpiresAt is a unix-nano deadline for ephemeral tuples; 0 means the
	// tuple is permanent.
	ExpiresAt int64 `json:"expires_at,omitempty"`
}

// opcode values for commands.
const (
	opOut     = "out"
	opRdp     = "rdp"
	opRdAll   = "rdall"
	opInp     = "inp"
	opReplace = "replace"
	opCas     = "cas"
	opRename  = "rename"
	opClean   = "clean"
)

// Command is the serialized operation executed by the state machine.
type Command struct {
	Op string `json:"op"`
	// Requester is the principal performing the operation (enforced against
	// tuple ACLs by the replicas, not by the client).
	Requester string `json:"requester"`
	// Now is the client's timestamp (unix nanos) used for expiry decisions.
	Now int64 `json:"now"`

	Tuple    Tuple `json:"tuple,omitempty"`
	Template Tuple `json:"template,omitempty"`
	// Replacement is used by replace/cas.
	Replacement Tuple `json:"replacement,omitempty"`
	// ExpectedVersion is used by cas; 0 means "must not exist".
	ExpectedVersion uint64 `json:"expected_version,omitempty"`
	// ACL to attach on out/replace/cas.
	ACL ACL `json:"acl,omitempty"`
	// TTLNanos makes the tuple ephemeral (expires TTL after Now).
	TTLNanos int64 `json:"ttl_nanos,omitempty"`
	// Rename support: prefix rewrite of the field at index FieldIndex.
	FieldIndex int    `json:"field_index,omitempty"`
	OldPrefix  string `json:"old_prefix,omitempty"`
	NewPrefix  string `json:"new_prefix,omitempty"`
}

// Result is the reply produced by the state machine.
type Result struct {
	OK      bool    `json:"ok"`
	Err     string  `json:"err,omitempty"`
	Entry   *Entry  `json:"entry,omitempty"`
	Entries []Entry `json:"entries,omitempty"`
	Version uint64  `json:"version,omitempty"`
	Count   int     `json:"count,omitempty"`
}

// Well-known error strings carried inside Result.Err.
const (
	ErrNoMatch       = "depspace: no matching tuple"
	ErrAccessDenied  = "depspace: access denied"
	ErrVersionClash  = "depspace: version mismatch"
	ErrAlreadyExists = "depspace: tuple already exists"
	ErrBadCommand    = "depspace: malformed command"
)

// Space is the deterministic tuple-space state machine. It implements
// smr.Application.
type Space struct {
	mu      sync.Mutex
	entries []*Entry
	nextVer uint64
}

// NewSpace returns an empty tuple space.
func NewSpace() *Space { return &Space{nextVer: 1} }

// Execute implements smr.Application.
func (s *Space) Execute(cmdBytes []byte) []byte {
	var cmd Command
	if err := json.Unmarshal(cmdBytes, &cmd); err != nil {
		return marshalResult(Result{OK: false, Err: ErrBadCommand})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(cmd.Now)
	var res Result
	switch cmd.Op {
	case opOut:
		res = s.out(cmd)
	case opRdp:
		res = s.rdp(cmd)
	case opRdAll:
		res = s.rdAll(cmd)
	case opInp:
		res = s.inp(cmd)
	case opReplace:
		res = s.replace(cmd)
	case opCas:
		res = s.cas(cmd)
	case opRename:
		res = s.rename(cmd)
	case opClean:
		res = Result{OK: true, Count: s.cleanExpired(cmd.Now)}
	default:
		res = Result{OK: false, Err: ErrBadCommand}
	}
	return marshalResult(res)
}

func marshalResult(r Result) []byte {
	b, err := json.Marshal(r)
	if err != nil {
		// A Result is always marshalable; this is unreachable in practice.
		return []byte(`{"ok":false,"err":"depspace: internal marshal error"}`)
	}
	return b
}

// expireLocked removes nothing but is kept cheap: expiry is evaluated lazily
// during matching. Periodic cleanup happens through opClean.
func (s *Space) expireLocked(now int64) {}

func (s *Space) isExpired(e *Entry, now int64) bool {
	return e.ExpiresAt != 0 && now > e.ExpiresAt
}

func (s *Space) cleanExpired(now int64) int {
	kept := s.entries[:0]
	removed := 0
	for _, e := range s.entries {
		if s.isExpired(e, now) {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	s.entries = kept
	return removed
}

func (s *Space) findMatch(template Tuple, now int64) (int, *Entry) {
	for i, e := range s.entries {
		if s.isExpired(e, now) {
			continue
		}
		if e.Tuple.Matches(template) {
			return i, e
		}
	}
	return -1, nil
}

func (s *Space) out(cmd Command) Result {
	if len(cmd.Tuple) == 0 {
		return Result{OK: false, Err: ErrBadCommand}
	}
	e := &Entry{
		Tuple:   cmd.Tuple.Clone(),
		ACL:     cmd.ACL,
		Version: s.nextVer,
	}
	s.nextVer++
	if cmd.TTLNanos > 0 {
		e.ExpiresAt = cmd.Now + cmd.TTLNanos
	}
	s.entries = append(s.entries, e)
	return Result{OK: true, Version: e.Version, Entry: cloneEntry(e)}
}

func (s *Space) rdp(cmd Command) Result {
	_, e := s.findMatch(cmd.Template, cmd.Now)
	if e == nil {
		return Result{OK: false, Err: ErrNoMatch}
	}
	if !e.ACL.canRead(cmd.Requester) {
		return Result{OK: false, Err: ErrAccessDenied}
	}
	return Result{OK: true, Entry: cloneEntry(e), Version: e.Version}
}

func (s *Space) rdAll(cmd Command) Result {
	var out []Entry
	for _, e := range s.entries {
		if s.isExpired(e, cmd.Now) || !e.Tuple.Matches(cmd.Template) {
			continue
		}
		if !e.ACL.canRead(cmd.Requester) {
			continue
		}
		out = append(out, *cloneEntry(e))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tuple.Less(out[j].Tuple) })
	return Result{OK: true, Entries: out, Count: len(out)}
}

func (s *Space) inp(cmd Command) Result {
	i, e := s.findMatch(cmd.Template, cmd.Now)
	if e == nil {
		return Result{OK: false, Err: ErrNoMatch}
	}
	if !e.ACL.canWrite(cmd.Requester) {
		return Result{OK: false, Err: ErrAccessDenied}
	}
	s.entries = append(s.entries[:i], s.entries[i+1:]...)
	return Result{OK: true, Entry: cloneEntry(e), Version: e.Version}
}

// replace atomically removes the tuple matching Template (if any) and inserts
// Replacement. It is the workhorse of metadata updates: SCFS uses it to
// overwrite a file's metadata tuple on close.
func (s *Space) replace(cmd Command) Result {
	if len(cmd.Replacement) == 0 {
		return Result{OK: false, Err: ErrBadCommand}
	}
	i, e := s.findMatch(cmd.Template, cmd.Now)
	if e != nil {
		if !e.ACL.canWrite(cmd.Requester) {
			return Result{OK: false, Err: ErrAccessDenied}
		}
		s.entries = append(s.entries[:i], s.entries[i+1:]...)
	}
	newEntry := &Entry{
		Tuple:   cmd.Replacement.Clone(),
		ACL:     cmd.ACL,
		Version: s.nextVer,
	}
	s.nextVer++
	if cmd.TTLNanos > 0 {
		newEntry.ExpiresAt = cmd.Now + cmd.TTLNanos
	}
	s.entries = append(s.entries, newEntry)
	return Result{OK: true, Version: newEntry.Version, Entry: cloneEntry(newEntry)}
}

// cas performs a compare-and-swap keyed by version: it succeeds only if the
// matching tuple has ExpectedVersion (or, when ExpectedVersion is zero, if no
// tuple matches the template). Used for lock acquisition and PNS creation.
func (s *Space) cas(cmd Command) Result {
	i, e := s.findMatch(cmd.Template, cmd.Now)
	if cmd.ExpectedVersion == 0 {
		if e != nil {
			return Result{OK: false, Err: ErrAlreadyExists, Version: e.Version, Entry: cloneEntry(e)}
		}
	} else {
		if e == nil {
			return Result{OK: false, Err: ErrNoMatch}
		}
		if e.Version != cmd.ExpectedVersion {
			return Result{OK: false, Err: ErrVersionClash, Version: e.Version, Entry: cloneEntry(e)}
		}
		if !e.ACL.canWrite(cmd.Requester) {
			return Result{OK: false, Err: ErrAccessDenied}
		}
		s.entries = append(s.entries[:i], s.entries[i+1:]...)
	}
	newEntry := &Entry{
		Tuple:   cmd.Replacement.Clone(),
		ACL:     cmd.ACL,
		Version: s.nextVer,
	}
	s.nextVer++
	if cmd.TTLNanos > 0 {
		newEntry.ExpiresAt = cmd.Now + cmd.TTLNanos
	}
	s.entries = append(s.entries, newEntry)
	return Result{OK: true, Version: newEntry.Version, Entry: cloneEntry(newEntry)}
}

// rename rewrites the prefix OldPrefix into NewPrefix in field FieldIndex of
// every tuple the requester may write, mirroring the trigger extension added
// to DepSpace for efficient directory renames.
func (s *Space) rename(cmd Command) Result {
	if cmd.OldPrefix == "" {
		return Result{OK: false, Err: ErrBadCommand}
	}
	count := 0
	for _, e := range s.entries {
		if s.isExpired(e, cmd.Now) || cmd.FieldIndex >= len(e.Tuple) {
			continue
		}
		field := e.Tuple[cmd.FieldIndex]
		if field != cmd.OldPrefix && !strings.HasPrefix(field, cmd.OldPrefix+"/") {
			continue
		}
		if !e.ACL.canWrite(cmd.Requester) {
			return Result{OK: false, Err: ErrAccessDenied}
		}
		e.Tuple[cmd.FieldIndex] = cmd.NewPrefix + strings.TrimPrefix(field, cmd.OldPrefix)
		e.Version = s.nextVer
		s.nextVer++
		count++
	}
	return Result{OK: true, Count: count}
}

func cloneEntry(e *Entry) *Entry {
	c := *e
	c.Tuple = e.Tuple.Clone()
	return &c
}

// Snapshot implements smr.Application.
func (s *Space) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	state := struct {
		Entries []*Entry `json:"entries"`
		NextVer uint64   `json:"next_ver"`
	}{Entries: s.entries, NextVer: s.nextVer}
	b, _ := json.Marshal(state)
	return b
}

// Restore implements smr.Application.
func (s *Space) Restore(snapshot []byte) error {
	var state struct {
		Entries []*Entry `json:"entries"`
		NextVer uint64   `json:"next_ver"`
	}
	if err := json.Unmarshal(snapshot, &state); err != nil {
		return fmt.Errorf("depspace: restoring snapshot: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = state.Entries
	s.nextVer = state.NextVer
	if s.nextVer == 0 {
		s.nextVer = 1
	}
	return nil
}

// Len returns the number of stored (possibly expired) tuples; used by tests
// and by the PNS sizing experiment.
func (s *Space) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}
