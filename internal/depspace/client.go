package depspace

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"scfs/internal/clock"
)

// Invoker submits a serialized command for totally ordered execution and
// returns the serialized result. smr.Client satisfies this interface; a
// LocalInvoker runs against an in-process Space without replication (used by
// unit tests and by the non-sharing SCFS mode experiments). Cancelling ctx
// abandons the invocation with ctx.Err().
type Invoker interface {
	Invoke(ctx context.Context, cmd []byte) ([]byte, error)
}

// LocalInvoker executes commands directly on a Space.
type LocalInvoker struct {
	Space *Space
}

// Invoke implements Invoker.
func (l *LocalInvoker) Invoke(ctx context.Context, cmd []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.Space.Execute(cmd), nil
}

// Client is the typed interface to a (possibly replicated) tuple space.
type Client struct {
	inv       Invoker
	requester string
	clk       clock.Clock
}

// NewClient creates a tuple-space client acting as the given principal.
func NewClient(inv Invoker, requester string, clk clock.Clock) *Client {
	if clk == nil {
		clk = clock.Real()
	}
	return &Client{inv: inv, requester: requester, clk: clk}
}

// Requester returns the principal this client acts as.
func (c *Client) Requester() string { return c.requester }

// Errors mapped from Result.Err strings.
var (
	ErrNotFound     = errors.New(ErrNoMatch)
	ErrDenied       = errors.New(ErrAccessDenied)
	ErrVersion      = errors.New(ErrVersionClash)
	ErrExists       = errors.New(ErrAlreadyExists)
	ErrMalformed    = errors.New(ErrBadCommand)
	errUnknownReply = errors.New("depspace: unknown error reply")
)

func mapError(msg string) error {
	switch msg {
	case "":
		return nil
	case ErrNoMatch:
		return ErrNotFound
	case ErrAccessDenied:
		return ErrDenied
	case ErrVersionClash:
		return ErrVersion
	case ErrAlreadyExists:
		return ErrExists
	case ErrBadCommand:
		return ErrMalformed
	default:
		return fmt.Errorf("%w: %s", errUnknownReply, msg)
	}
}

func (c *Client) do(ctx context.Context, cmd Command) (Result, error) {
	cmd.Requester = c.requester
	cmd.Now = c.clk.Now().UnixNano()
	b, err := json.Marshal(cmd)
	if err != nil {
		return Result{}, fmt.Errorf("depspace: encoding command: %w", err)
	}
	reply, err := c.inv.Invoke(ctx, b)
	if err != nil {
		return Result{}, fmt.Errorf("depspace: invoking %s: %w", cmd.Op, err)
	}
	var res Result
	if err := json.Unmarshal(reply, &res); err != nil {
		return Result{}, fmt.Errorf("depspace: decoding reply: %w", err)
	}
	if !res.OK {
		return res, mapError(res.Err)
	}
	return res, nil
}

// Out inserts a tuple with the given ACL.
func (c *Client) Out(ctx context.Context, t Tuple, acl ACL) (uint64, error) {
	res, err := c.do(ctx, Command{Op: opOut, Tuple: t, ACL: acl})
	return res.Version, err
}

// OutTimed inserts an ephemeral tuple that expires after ttl.
func (c *Client) OutTimed(ctx context.Context, t Tuple, acl ACL, ttl time.Duration) (uint64, error) {
	res, err := c.do(ctx, Command{Op: opOut, Tuple: t, ACL: acl, TTLNanos: int64(ttl)})
	return res.Version, err
}

// Rdp reads (without removing) one tuple matching the template.
func (c *Client) Rdp(ctx context.Context, template Tuple) (*Entry, error) {
	res, err := c.do(ctx, Command{Op: opRdp, Template: template})
	if err != nil {
		return nil, err
	}
	return res.Entry, nil
}

// RdAll reads every tuple matching the template that the requester may read.
func (c *Client) RdAll(ctx context.Context, template Tuple) ([]Entry, error) {
	res, err := c.do(ctx, Command{Op: opRdAll, Template: template})
	if err != nil {
		return nil, err
	}
	return res.Entries, nil
}

// Inp removes and returns one tuple matching the template.
func (c *Client) Inp(ctx context.Context, template Tuple) (*Entry, error) {
	res, err := c.do(ctx, Command{Op: opInp, Template: template})
	if err != nil {
		return nil, err
	}
	return res.Entry, nil
}

// Replace atomically substitutes the tuple matching template (if any) with
// replacement.
func (c *Client) Replace(ctx context.Context, template, replacement Tuple, acl ACL) (uint64, error) {
	res, err := c.do(ctx, Command{Op: opReplace, Template: template, Replacement: replacement, ACL: acl})
	return res.Version, err
}

// ReplaceTimed is Replace for ephemeral tuples.
func (c *Client) ReplaceTimed(ctx context.Context, template, replacement Tuple, acl ACL, ttl time.Duration) (uint64, error) {
	res, err := c.do(ctx, Command{Op: opReplace, Template: template, Replacement: replacement, ACL: acl, TTLNanos: int64(ttl)})
	return res.Version, err
}

// Cas inserts replacement only if the tuple matching template has the
// expected version (0 = must not exist). On success it returns the new
// version; on a conflict it returns ErrExists or ErrVersion together with the
// conflicting entry (may be nil).
func (c *Client) Cas(ctx context.Context, template, replacement Tuple, expectedVersion uint64, acl ACL, ttl time.Duration) (uint64, *Entry, error) {
	res, err := c.do(ctx, Command{
		Op:              opCas,
		Template:        template,
		Replacement:     replacement,
		ExpectedVersion: expectedVersion,
		ACL:             acl,
		TTLNanos:        int64(ttl),
	})
	return res.Version, res.Entry, err
}

// Rename rewrites the prefix oldPrefix to newPrefix in field fieldIndex of
// every matching tuple (the DepSpace trigger extension for directory rename).
// It returns the number of rewritten tuples.
func (c *Client) Rename(ctx context.Context, fieldIndex int, oldPrefix, newPrefix string) (int, error) {
	res, err := c.do(ctx, Command{Op: opRename, FieldIndex: fieldIndex, OldPrefix: oldPrefix, NewPrefix: newPrefix})
	return res.Count, err
}

// Clean removes expired tuples and returns how many were reclaimed.
func (c *Client) Clean(ctx context.Context) (int, error) {
	res, err := c.do(ctx, Command{Op: opClean})
	return res.Count, err
}
