package depspace

import (
	"context"
	"errors"
	"testing"
	"time"

	"scfs/internal/clock"
	"scfs/internal/smr"
)

var bg = context.Background()

func newLocalClient(requester string) (*Client, *Space, *clock.Sim) {
	space := NewSpace()
	clk := clock.NewSim(time.Unix(1_000_000, 0))
	return NewClient(&LocalInvoker{Space: space}, requester, clk), space, clk
}

func TestTupleMatching(t *testing.T) {
	cases := []struct {
		tuple, template Tuple
		want            bool
	}{
		{Tuple{"meta", "/a", "x"}, Tuple{"meta", "/a", "x"}, true},
		{Tuple{"meta", "/a", "x"}, Tuple{"meta", "*", "*"}, true},
		{Tuple{"meta", "/a", "x"}, Tuple{"*", "*", "*"}, true},
		{Tuple{"meta", "/a", "x"}, Tuple{"meta", "/b", "*"}, false},
		{Tuple{"meta", "/a"}, Tuple{"meta", "/a", "*"}, false},
		{Tuple{}, Tuple{}, true},
	}
	for _, c := range cases {
		if got := c.tuple.Matches(c.template); got != c.want {
			t.Errorf("%v.Matches(%v) = %v, want %v", c.tuple, c.template, got, c.want)
		}
	}
}

func TestOutAndRdp(t *testing.T) {
	c, _, _ := newLocalClient("alice")
	v, err := c.Out(bg, Tuple{"meta", "/file1", "hash1"}, ACL{})
	if err != nil {
		t.Fatal(err)
	}
	if v == 0 {
		t.Fatal("version must be non-zero")
	}
	e, err := c.Rdp(bg, Tuple{"meta", "/file1", "*"})
	if err != nil {
		t.Fatal(err)
	}
	if e.Tuple[2] != "hash1" {
		t.Fatalf("got %v", e.Tuple)
	}
	if _, err := c.Rdp(bg, Tuple{"meta", "/other", "*"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestInpRemoves(t *testing.T) {
	c, space, _ := newLocalClient("alice")
	if _, err := c.Out(bg, Tuple{"lock", "/f"}, ACL{}); err != nil {
		t.Fatal(err)
	}
	e, err := c.Inp(bg, Tuple{"lock", "/f"})
	if err != nil || e == nil {
		t.Fatalf("Inp: %v", err)
	}
	if _, err := c.Rdp(bg, Tuple{"lock", "/f"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tuple still present after Inp: %v", err)
	}
	if space.Len() != 0 {
		t.Fatalf("space should be empty, has %d", space.Len())
	}
}

func TestRdAllFiltersAndSorts(t *testing.T) {
	c, _, _ := newLocalClient("alice")
	for _, name := range []string{"/b", "/a", "/c"} {
		if _, err := c.Out(bg, Tuple{"meta", name, "h"}, ACL{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Out(bg, Tuple{"lock", "/a"}, ACL{}); err != nil {
		t.Fatal(err)
	}
	entries, err := c.RdAll(bg, Tuple{"meta", "*", "*"})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("got %d entries, want 3", len(entries))
	}
	if entries[0].Tuple[1] != "/a" || entries[2].Tuple[1] != "/c" {
		t.Fatalf("entries not sorted: %v", entries)
	}
}

func TestReplaceSubstitutesAtomically(t *testing.T) {
	c, space, _ := newLocalClient("alice")
	if _, err := c.Out(bg, Tuple{"meta", "/f", "v1"}, ACL{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Replace(bg, Tuple{"meta", "/f", "*"}, Tuple{"meta", "/f", "v2"}, ACL{}); err != nil {
		t.Fatal(err)
	}
	e, err := c.Rdp(bg, Tuple{"meta", "/f", "*"})
	if err != nil {
		t.Fatal(err)
	}
	if e.Tuple[2] != "v2" {
		t.Fatalf("got %v, want v2", e.Tuple)
	}
	if space.Len() != 1 {
		t.Fatalf("replace left %d tuples, want 1", space.Len())
	}
	// Replace with no existing match behaves like out.
	if _, err := c.Replace(bg, Tuple{"meta", "/new", "*"}, Tuple{"meta", "/new", "v1"}, ACL{}); err != nil {
		t.Fatal(err)
	}
	if space.Len() != 2 {
		t.Fatalf("expected 2 tuples, got %d", space.Len())
	}
}

func TestCasCreateIfAbsentAndVersionCheck(t *testing.T) {
	c, _, _ := newLocalClient("alice")
	// Create if absent.
	v1, _, err := c.Cas(bg, Tuple{"pns", "alice", "*"}, Tuple{"pns", "alice", "ref1"}, 0, ACL{Owner: "alice"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Second create must conflict and return the existing entry.
	_, existing, err := c.Cas(bg, Tuple{"pns", "alice", "*"}, Tuple{"pns", "alice", "ref2"}, 0, ACL{Owner: "alice"}, 0)
	if !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v, want ErrExists", err)
	}
	if existing == nil || existing.Tuple[2] != "ref1" {
		t.Fatalf("conflicting entry = %+v", existing)
	}
	// Versioned swap with the right version succeeds.
	v2, _, err := c.Cas(bg, Tuple{"pns", "alice", "*"}, Tuple{"pns", "alice", "ref3"}, v1, ACL{Owner: "alice"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v2 <= v1 {
		t.Fatalf("new version %d not greater than %d", v2, v1)
	}
	// Swap with a stale version fails.
	if _, _, err := c.Cas(bg, Tuple{"pns", "alice", "*"}, Tuple{"pns", "alice", "ref4"}, v1, ACL{Owner: "alice"}, 0); !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestEphemeralTuplesExpire(t *testing.T) {
	c, _, clk := newLocalClient("alice")
	if _, err := c.OutTimed(bg, Tuple{"lock", "/f", "alice"}, ACL{}, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Rdp(bg, Tuple{"lock", "/f", "*"}); err != nil {
		t.Fatalf("lock should be visible before expiry: %v", err)
	}
	clk.Advance(11 * time.Second)
	if _, err := c.Rdp(bg, Tuple{"lock", "/f", "*"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expired lock still visible: %v", err)
	}
	// Clean removes the expired entry physically.
	n, err := c.Clean(bg)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Clean removed %d, want 1", n)
	}
}

func TestACLEnforcement(t *testing.T) {
	alice, space, clk := newLocalClient("alice")
	bob := NewClient(&LocalInvoker{Space: space}, "bob", clk)

	if _, err := alice.Out(bg, Tuple{"meta", "/private", "h"}, ACL{Owner: "alice"}); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Rdp(bg, Tuple{"meta", "/private", "*"}); !errors.Is(err, ErrDenied) {
		t.Fatalf("bob read err = %v, want ErrDenied", err)
	}
	if _, err := bob.Inp(bg, Tuple{"meta", "/private", "*"}); !errors.Is(err, ErrDenied) {
		t.Fatalf("bob take err = %v, want ErrDenied", err)
	}
	// Shared with read permission.
	if _, err := alice.Replace(bg, Tuple{"meta", "/private", "*"}, Tuple{"meta", "/private", "h2"},
		ACL{Owner: "alice", Readers: []string{"bob"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Rdp(bg, Tuple{"meta", "/private", "*"}); err != nil {
		t.Fatalf("bob should read shared tuple: %v", err)
	}
	if _, err := bob.Replace(bg, Tuple{"meta", "/private", "*"}, Tuple{"meta", "/private", "bobs"}, ACL{Owner: "bob"}); !errors.Is(err, ErrDenied) {
		t.Fatalf("bob write err = %v, want ErrDenied", err)
	}
	// Writers may both read and write.
	if _, err := alice.Replace(bg, Tuple{"meta", "/private", "*"}, Tuple{"meta", "/private", "h3"},
		ACL{Owner: "alice", Writers: []string{"bob"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Replace(bg, Tuple{"meta", "/private", "*"}, Tuple{"meta", "/private", "h4"},
		ACL{Owner: "alice", Writers: []string{"bob"}}); err != nil {
		t.Fatalf("bob write as writer: %v", err)
	}
	// RdAll must silently hide unreadable tuples.
	if _, err := alice.Out(bg, Tuple{"meta", "/alice-only", "h"}, ACL{Owner: "alice"}); err != nil {
		t.Fatal(err)
	}
	entries, err := bob.RdAll(bg, Tuple{"meta", "*", "*"})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Tuple[1] == "/alice-only" {
			t.Fatal("RdAll leaked an unreadable tuple")
		}
	}
}

func TestRenameTrigger(t *testing.T) {
	c, _, _ := newLocalClient("alice")
	paths := []string{"/dir/a", "/dir/b", "/dir/sub/c", "/other/d", "/dirx"}
	for _, p := range paths {
		if _, err := c.Out(bg, Tuple{"meta", p, "h"}, ACL{Owner: "alice"}); err != nil {
			t.Fatal(err)
		}
	}
	n, err := c.Rename(bg, 1, "/dir", "/renamed")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("renamed %d tuples, want 3", n)
	}
	for _, want := range []string{"/renamed/a", "/renamed/b", "/renamed/sub/c", "/other/d", "/dirx"} {
		if _, err := c.Rdp(bg, Tuple{"meta", want, "*"}); err != nil {
			t.Errorf("missing tuple for %s after rename: %v", want, err)
		}
	}
}

func TestMalformedCommandsRejected(t *testing.T) {
	space := NewSpace()
	res := space.Execute([]byte("not json"))
	if string(res) == "" {
		t.Fatal("empty reply for malformed command")
	}
	c, _, _ := newLocalClient("alice")
	if _, err := c.Out(bg, nil, ACL{}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("empty tuple err = %v, want ErrMalformed", err)
	}
	if _, err := c.Rename(bg, 0, "", "/x"); !errors.Is(err, ErrMalformed) {
		t.Fatalf("rename without prefix err = %v, want ErrMalformed", err)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	c, space, _ := newLocalClient("alice")
	for i := 0; i < 5; i++ {
		if _, err := c.Out(bg, Tuple{"meta", string(rune('a' + i)), "h"}, ACL{Owner: "alice"}); err != nil {
			t.Fatal(err)
		}
	}
	snap := space.Snapshot()
	restored := NewSpace()
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 5 {
		t.Fatalf("restored %d tuples, want 5", restored.Len())
	}
	// Version counter must continue past restored versions.
	rc := NewClient(&LocalInvoker{Space: restored}, "alice", clock.Real())
	v, err := rc.Out(bg, Tuple{"meta", "new", "h"}, ACL{})
	if err != nil {
		t.Fatal(err)
	}
	if v < 6 {
		t.Fatalf("version after restore = %d, want >= 6", v)
	}
	if err := restored.Restore([]byte("garbage")); err == nil {
		t.Fatal("Restore accepted garbage")
	}
}

func TestReplicatedTupleSpace(t *testing.T) {
	// DepSpace over the BFT replication engine: 4 replicas, one Byzantine.
	ids := []int{0, 1, 2, 3}
	cfg := smr.Config{ReplicaIDs: ids, Model: smr.ByzantineFaults}
	net := smr.NewNetwork()
	var replicas []*smr.Replica
	for _, id := range ids {
		r, err := smr.NewReplica(id, cfg, NewSpace(), net)
		if err != nil {
			t.Fatal(err)
		}
		r.Start()
		replicas = append(replicas, r)
	}
	defer func() {
		for _, r := range replicas {
			r.Stop()
		}
	}()
	replicas[3].SetByzantine(true)

	cli := NewClient(smr.NewClient("scfs-agent-1", cfg, net), "alice", clock.Real())
	if _, err := cli.Out(bg, Tuple{"meta", "/f", "hash"}, ACL{Owner: "alice"}); err != nil {
		t.Fatal(err)
	}
	e, err := cli.Rdp(bg, Tuple{"meta", "/f", "*"})
	if err != nil {
		t.Fatal(err)
	}
	if e.Tuple[2] != "hash" {
		t.Fatalf("replicated rdp returned %v", e.Tuple)
	}
	// Conditional write through the replicated path.
	if _, _, err := cli.Cas(bg, Tuple{"lock", "/f", "*"}, Tuple{"lock", "/f", "alice"}, 0, ACL{Owner: "alice"}, time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cli.Cas(bg, Tuple{"lock", "/f", "*"}, Tuple{"lock", "/f", "alice"}, 0, ACL{Owner: "alice"}, time.Minute); !errors.Is(err, ErrExists) {
		t.Fatalf("second lock acquisition err = %v, want ErrExists", err)
	}
}
