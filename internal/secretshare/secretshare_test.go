package secretshare

import (
	"bytes"
	"crypto/rand"
	"math"
	mrand "math/rand"
	"testing"
	"testing/quick"
)

func TestSplitCombineRoundTrip(t *testing.T) {
	secret := []byte("a 32-byte symmetric key material!")
	shares, err := Split(secret, 4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 4 {
		t.Fatalf("expected 4 shares, got %d", len(shares))
	}
	got, err := Combine(shares[:2], 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("combined secret differs from original")
	}
}

func TestCombineFromAnySubset(t *testing.T) {
	secret := make([]byte, 32)
	if _, err := rand.Read(secret); err != nil {
		t.Fatal(err)
	}
	const n, threshold = 4, 2
	shares, err := Split(secret, n, threshold, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			got, err := Combine([]Share{shares[i], shares[j]}, threshold)
			if err != nil {
				t.Fatalf("Combine(%d,%d): %v", i, j, err)
			}
			if !bytes.Equal(got, secret) {
				t.Fatalf("Combine(%d,%d) produced a different secret", i, j)
			}
		}
	}
}

func TestSingleShareRevealsNothingUseful(t *testing.T) {
	// With threshold 2, reconstructing from a single share must not be
	// possible through the API, and a single share must not equal the secret
	// (overwhelmingly likely with random coefficients).
	secret := make([]byte, 64)
	if _, err := rand.Read(secret); err != nil {
		t.Fatal(err)
	}
	shares, err := Split(secret, 4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Combine(shares[:1], 2); err != ErrTooFewShares {
		t.Fatalf("Combine with 1 share: err = %v, want ErrTooFewShares", err)
	}
	if bytes.Equal(shares[0].Data, secret) {
		t.Fatal("a single share leaked the secret verbatim")
	}
}

func TestSplitParameterValidation(t *testing.T) {
	secret := []byte("s")
	cases := []struct{ n, t int }{{1, 2}, {3, 1}, {2, 3}, {256, 2}, {300, 5}}
	for _, c := range cases {
		if _, err := Split(secret, c.n, c.t, nil); err == nil {
			t.Errorf("Split(n=%d,t=%d) succeeded, want error", c.n, c.t)
		}
	}
	if _, err := Split(nil, 3, 2, nil); err != ErrEmptySecret {
		t.Errorf("Split(empty) err = %v, want ErrEmptySecret", err)
	}
}

func TestCombineValidation(t *testing.T) {
	secret := []byte("hello world")
	shares, _ := Split(secret, 3, 2, nil)

	if _, err := Combine(shares, 1); err != ErrBadThreshold {
		t.Errorf("threshold 1: err = %v, want ErrBadThreshold", err)
	}
	dup := []Share{shares[0], shares[0]}
	if _, err := Combine(dup, 2); err != ErrDuplicateX {
		t.Errorf("duplicate shares: err = %v, want ErrDuplicateX", err)
	}
	bad := []Share{shares[0], {X: 0, Data: shares[1].Data}}
	if _, err := Combine(bad, 2); err != ErrInvalidShareX {
		t.Errorf("zero X: err = %v, want ErrInvalidShareX", err)
	}
	mixed := []Share{shares[0], {X: shares[1].X, Data: shares[1].Data[:3]}}
	if _, err := Combine(mixed, 2); err != ErrInconsistent {
		t.Errorf("inconsistent lengths: err = %v, want ErrInconsistent", err)
	}
	empty := []Share{{X: 1, Data: nil}, {X: 2, Data: nil}}
	if _, err := Combine(empty, 2); err != ErrEmptySecret {
		t.Errorf("empty shares: err = %v, want ErrEmptySecret", err)
	}
}

func TestDepSkyConfiguration(t *testing.T) {
	// DepSky for f=1: n = 3f+1 = 4 shares, threshold f+1 = 2.
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		t.Fatal(err)
	}
	shares, err := Split(key, 4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Any single cloud failing (or being malicious and withholding its
	// share) must not prevent recovery: drop one share at a time.
	for drop := 0; drop < 4; drop++ {
		remaining := make([]Share, 0, 3)
		for i, s := range shares {
			if i != drop {
				remaining = append(remaining, s)
			}
		}
		got, err := Combine(remaining, 2)
		if err != nil {
			t.Fatalf("drop %d: %v", drop, err)
		}
		if !bytes.Equal(got, key) {
			t.Fatalf("drop %d: key mismatch", drop)
		}
	}
}

func TestShareDistributionLooksRandom(t *testing.T) {
	// A crude sanity check that shares are not trivially structured: the
	// byte-value histogram of a large share should not be wildly skewed.
	secret := make([]byte, 4096)
	shares, err := Split(secret, 3, 2, nil) // all-zero secret: shares still random
	if err != nil {
		t.Fatal(err)
	}
	var hist [256]int
	for _, b := range shares[1].Data {
		hist[b]++
	}
	expected := float64(len(shares[1].Data)) / 256.0
	var chi2 float64
	for _, c := range hist {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 255 degrees of freedom; anything below ~400 is comfortably plausible.
	if chi2 > 400 || math.IsNaN(chi2) {
		t.Fatalf("share byte distribution is suspicious (chi2 = %f)", chi2)
	}
}

func TestPropertyRoundTripRandomSecrets(t *testing.T) {
	f := func(seed int64, sizeRaw uint8, nRaw, tRaw uint8) bool {
		r := mrand.New(mrand.NewSource(seed))
		size := int(sizeRaw)%128 + 1
		n := int(nRaw)%8 + 2      // 2..9
		thr := int(tRaw)%(n-1) + 2 // 2..n
		if thr > n {
			thr = n
		}
		secret := make([]byte, size)
		r.Read(secret)
		shares, err := Split(secret, n, thr, r)
		if err != nil {
			return false
		}
		// Shuffle and take the first thr shares.
		r.Shuffle(len(shares), func(i, j int) { shares[i], shares[j] = shares[j], shares[i] })
		got, err := Combine(shares[:thr], thr)
		return err == nil && bytes.Equal(got, secret)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSplit32ByteKey(b *testing.B) {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Split(key, 4, 2, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCombine32ByteKey(b *testing.B) {
	key := make([]byte, 32)
	shares, _ := Split(key, 4, 2, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Combine(shares[:2], 2); err != nil {
			b.Fatal(err)
		}
	}
}
