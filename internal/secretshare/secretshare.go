// Package secretshare implements Shamir secret sharing over GF(2^8). DepSky
// uses it to split the random file-encryption key into n shares so that no
// single cloud provider (holding one share) can decrypt the file, while any
// threshold t of the shares recover the key.
package secretshare

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"

	"scfs/internal/gf256"
)

// Share is one participant's share of a secret. X identifies the evaluation
// point (1..255) and Data holds one byte of share material per secret byte.
type Share struct {
	X    byte
	Data []byte
}

// Parameter and input errors.
var (
	ErrBadThreshold  = errors.New("secretshare: threshold must satisfy 2 <= t <= n <= 255")
	ErrEmptySecret   = errors.New("secretshare: secret must not be empty")
	ErrTooFewShares  = errors.New("secretshare: not enough shares to reconstruct")
	ErrInconsistent  = errors.New("secretshare: shares have inconsistent lengths")
	ErrDuplicateX    = errors.New("secretshare: duplicate share identifiers")
	ErrInvalidShareX = errors.New("secretshare: share identifier must be non-zero")
)

// Split divides secret into n shares such that any t of them reconstruct the
// secret and any t-1 reveal nothing. randSrc may be nil, in which case
// crypto/rand is used.
func Split(secret []byte, n, t int, randSrc io.Reader) ([]Share, error) {
	if t < 2 || n < t || n > 255 {
		return nil, ErrBadThreshold
	}
	if len(secret) == 0 {
		return nil, ErrEmptySecret
	}
	if randSrc == nil {
		randSrc = rand.Reader
	}

	shares := make([]Share, n)
	for i := range shares {
		shares[i] = Share{X: byte(i + 1), Data: make([]byte, len(secret))}
	}

	coeffs := make([]byte, t) // coeffs[0] = secret byte, rest random
	for byteIdx, s := range secret {
		coeffs[0] = s
		if _, err := io.ReadFull(randSrc, coeffs[1:]); err != nil {
			return nil, fmt.Errorf("secretshare: reading randomness: %w", err)
		}
		for i := range shares {
			shares[i].Data[byteIdx] = evalPoly(coeffs, shares[i].X)
		}
	}
	return shares, nil
}

// evalPoly evaluates the polynomial with the given coefficients (constant
// term first) at point x using Horner's rule in GF(2^8).
func evalPoly(coeffs []byte, x byte) byte {
	var y byte
	for i := len(coeffs) - 1; i >= 0; i-- {
		y = gf256.Add(gf256.Mul(y, x), coeffs[i])
	}
	return y
}

// Combine reconstructs the secret from at least t shares (any subset works as
// long as it has the threshold size used at Split time). Extra shares are
// accepted and improve nothing; inconsistent shares produce garbage (Shamir
// sharing is not error-detecting — DepSky detects corruption via hashes).
func Combine(shares []Share, t int) ([]byte, error) {
	if t < 2 {
		return nil, ErrBadThreshold
	}
	if len(shares) < t {
		return nil, ErrTooFewShares
	}
	use := shares[:t]
	length := len(use[0].Data)
	seen := make(map[byte]bool, t)
	for _, s := range use {
		if s.X == 0 {
			return nil, ErrInvalidShareX
		}
		if seen[s.X] {
			return nil, ErrDuplicateX
		}
		seen[s.X] = true
		if len(s.Data) != length {
			return nil, ErrInconsistent
		}
	}
	if length == 0 {
		return nil, ErrEmptySecret
	}

	// Lagrange interpolation at x = 0 for each byte position.
	secret := make([]byte, length)
	// Precompute the Lagrange basis coefficients l_i(0).
	basis := make([]byte, t)
	for i := 0; i < t; i++ {
		num := byte(1)
		den := byte(1)
		for j := 0; j < t; j++ {
			if j == i {
				continue
			}
			num = gf256.Mul(num, use[j].X)
			den = gf256.Mul(den, gf256.Add(use[i].X, use[j].X))
		}
		basis[i] = gf256.Div(num, den)
	}
	for b := 0; b < length; b++ {
		var acc byte
		for i := 0; i < t; i++ {
			acc = gf256.Add(acc, gf256.Mul(use[i].Data[b], basis[i]))
		}
		secret[b] = acc
	}
	return secret, nil
}
