// Package secretshare implements Shamir secret sharing over GF(2^8). DepSky
// uses it to split the random file-encryption key into n shares so that no
// single cloud provider (holding one share) can decrypt the file, while any
// threshold t of the shares recover the key.
package secretshare

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"

	"scfs/internal/gf256"
)

// Share is one participant's share of a secret. X identifies the evaluation
// point (1..255) and Data holds one byte of share material per secret byte.
type Share struct {
	X    byte
	Data []byte
}

// Parameter and input errors.
var (
	ErrBadThreshold  = errors.New("secretshare: threshold must satisfy 2 <= t <= n <= 255")
	ErrEmptySecret   = errors.New("secretshare: secret must not be empty")
	ErrTooFewShares  = errors.New("secretshare: not enough shares to reconstruct")
	ErrInconsistent  = errors.New("secretshare: shares have inconsistent lengths")
	ErrDuplicateX    = errors.New("secretshare: duplicate share identifiers")
	ErrInvalidShareX = errors.New("secretshare: share identifier must be non-zero")
)

// Split divides secret into n shares such that any t of them reconstruct the
// secret and any t-1 reveal nothing. randSrc may be nil, in which case
// crypto/rand is used.
func Split(secret []byte, n, t int, randSrc io.Reader) ([]Share, error) {
	if t < 2 || n < t || n > 255 {
		return nil, ErrBadThreshold
	}
	if len(secret) == 0 {
		return nil, ErrEmptySecret
	}
	if randSrc == nil {
		randSrc = rand.Reader
	}

	length := len(secret)
	shares := make([]Share, n)
	shareBacking := make([]byte, n*length)
	for i := range shares {
		shares[i] = Share{X: byte(i + 1), Data: shareBacking[i*length : (i+1)*length : (i+1)*length]}
	}

	// Coefficient slices: coeffs[j][b] is the degree-j coefficient of the
	// polynomial hiding secret byte b. coeffs[0] is the secret itself, the
	// higher degrees are uniformly random.
	coeffs := make([][]byte, t)
	coeffs[0] = secret
	randBacking := make([]byte, (t-1)*length)
	if _, err := io.ReadFull(randSrc, randBacking); err != nil {
		return nil, fmt.Errorf("secretshare: reading randomness: %w", err)
	}
	for j := 1; j < t; j++ {
		coeffs[j] = randBacking[(j-1)*length : j*length]
	}

	// Horner's rule over whole slices: every share evaluates all byte
	// positions per step through the gf256 slice kernels instead of a scalar
	// polynomial evaluation per byte.
	for i := range shares {
		data := shares[i].Data
		x := shares[i].X
		copy(data, coeffs[t-1])
		for j := t - 2; j >= 0; j-- {
			gf256.MulSlice(x, data, data)
			gf256.XorSlice(coeffs[j], data)
		}
	}
	return shares, nil
}

// Combine reconstructs the secret from at least t shares (any subset works as
// long as it has the threshold size used at Split time). Extra shares are
// accepted and improve nothing; inconsistent shares produce garbage (Shamir
// sharing is not error-detecting — DepSky detects corruption via hashes).
func Combine(shares []Share, t int) ([]byte, error) {
	if t < 2 {
		return nil, ErrBadThreshold
	}
	if len(shares) < t {
		return nil, ErrTooFewShares
	}
	use := shares[:t]
	length := len(use[0].Data)
	seen := make(map[byte]bool, t)
	for _, s := range use {
		if s.X == 0 {
			return nil, ErrInvalidShareX
		}
		if seen[s.X] {
			return nil, ErrDuplicateX
		}
		seen[s.X] = true
		if len(s.Data) != length {
			return nil, ErrInconsistent
		}
	}
	if length == 0 {
		return nil, ErrEmptySecret
	}

	// Lagrange interpolation at x = 0, applied to all byte positions at once.
	secret := make([]byte, length)
	// Precompute the Lagrange basis coefficients l_i(0).
	basis := make([]byte, t)
	for i := 0; i < t; i++ {
		num := byte(1)
		den := byte(1)
		for j := 0; j < t; j++ {
			if j == i {
				continue
			}
			num = gf256.Mul(num, use[j].X)
			den = gf256.Mul(den, gf256.Add(use[i].X, use[j].X))
		}
		basis[i] = gf256.Div(num, den)
	}
	// secret = Σ basis[i]·share[i], accumulated with the slice kernels.
	for i := 0; i < t; i++ {
		gf256.MulSliceXor(basis[i], use[i].Data, secret)
	}
	return secret, nil
}
