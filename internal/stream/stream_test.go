package stream

import (
	"bytes"
	"context"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
)

var bg = context.Background()

func TestPoolRoundTrip(t *testing.T) {
	p := &Pool{}
	sizes := []int{1, 100, 4096, 4097, 1 << 20, (1 << 20) + 1, 1 << 23}
	for _, n := range sizes {
		b := p.Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d) returned len %d", n, len(b))
		}
		p.Put(b)
	}
	// A pooled buffer should be reused for a same-class request.
	b := p.Get(5000)
	for i := range b {
		b[i] = 0xFF
	}
	p.Put(b)
	b2 := p.Get(4097) // same 8 KiB class
	if cap(b2) != 8<<10 {
		t.Fatalf("cap = %d, want %d", cap(b2), 8<<10)
	}
	p.Put(b2)
}

func TestPoolOversizedFallsBack(t *testing.T) {
	p := &Pool{}
	n := (8 << 20) + 1
	b := p.Get(n)
	if len(b) != n {
		t.Fatalf("len = %d", len(b))
	}
	p.Put(b) // must not panic; dropped
}

// memSink collects encoded chunks in order, for round-trip checks.
type memSink struct {
	mu     sync.Mutex
	chunks map[int][]byte
}

func TestRunRoundTripAndHash(t *testing.T) {
	for _, size := range []int{0, 1, 4095, 4096, 4097, 3*4096 + 17} {
		data := make([]byte, size)
		if _, err := rand.Read(data); err != nil {
			t.Fatal(err)
		}
		sink := &memSink{chunks: make(map[int][]byte)}
		res, err := Run(bg, bytes.NewReader(data), Config{ChunkSize: 4096, Window: 2},
			func(idx int, plain []byte) ([]byte, error) {
				return append([]byte(nil), plain...), nil
			},
			func(idx int, enc []byte) error {
				sink.mu.Lock()
				sink.chunks[idx] = enc
				sink.mu.Unlock()
				return nil
			})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if res.Size != int64(size) {
			t.Fatalf("size %d: res.Size = %d", size, res.Size)
		}
		wantChunks := (size + 4095) / 4096
		if res.Chunks != wantChunks {
			t.Fatalf("size %d: chunks = %d, want %d", size, res.Chunks, wantChunks)
		}
		if res.Sum256 != sha256.Sum256(data) {
			t.Fatalf("size %d: stream hash mismatch", size)
		}
		var got []byte
		for i := 0; i < res.Chunks; i++ {
			got = append(got, sink.chunks[i]...)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("size %d: reassembled bytes differ", size)
		}
	}
}

// TestRunWindowBound verifies at most Window chunks are in flight at once.
func TestRunWindowBound(t *testing.T) {
	const window = 3
	var inFlight, peak atomic.Int64
	data := make([]byte, 64*1024)
	_, err := Run(bg, bytes.NewReader(data), Config{ChunkSize: 1024, Window: window},
		func(idx int, plain []byte) (struct{}, error) {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			return struct{}{}, nil
		},
		func(idx int, _ struct{}) error {
			inFlight.Add(-1)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > window {
		t.Fatalf("peak in-flight chunks = %d, want <= %d", p, window)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	data := make([]byte, 10*1024)
	_, err := Run(bg, bytes.NewReader(data), Config{ChunkSize: 1024, Window: 2},
		func(idx int, plain []byte) (int, error) {
			if idx == 4 {
				return 0, boom
			}
			return idx, nil
		},
		func(idx int, _ int) error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}

	_, err = Run(bg, bytes.NewReader(data), Config{ChunkSize: 1024},
		func(idx int, plain []byte) (int, error) { return idx, nil },
		func(idx int, _ int) error {
			if idx == 2 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("store err = %v, want %v", err, boom)
	}
}

// chunkMap is a Fetcher over an in-memory byte slice.
type chunkMap struct {
	data      []byte
	chunkSize int
	fetches   atomic.Int64
	failIdx   int // fetch of this chunk fails (-1 = never)
	closed    bool
}

func (c *chunkMap) Size() int64    { return int64(len(c.data)) }
func (c *chunkMap) ChunkSize() int { return c.chunkSize }
func (c *chunkMap) Close() error   { c.closed = true; return nil }
func (c *chunkMap) Fetch(_ context.Context, idx int, dst []byte) error {
	c.fetches.Add(1)
	if idx == c.failIdx {
		return errors.New("fetch failure")
	}
	off := idx * c.chunkSize
	if n := copy(dst, c.data[off:]); n != len(dst) {
		return fmt.Errorf("short chunk %d: %d != %d", idx, n, len(dst))
	}
	return nil
}

func TestReaderReadAtAcrossChunks(t *testing.T) {
	data := make([]byte, 10*1000+123)
	if _, err := rand.Read(data); err != nil {
		t.Fatal(err)
	}
	f := &chunkMap{data: data, chunkSize: 1000, failIdx: -1}
	r := NewReader(f, nil)
	defer r.Close()

	cases := []struct{ off, n int }{
		{0, 10}, {990, 20}, {0, len(data)}, {len(data) - 5, 5}, {2500, 3000},
	}
	for _, c := range cases {
		got := make([]byte, c.n)
		n, err := r.ReadAt(got, int64(c.off))
		if err != nil && err != io.EOF {
			t.Fatalf("ReadAt(%d, %d): %v", c.n, c.off, err)
		}
		if n != c.n {
			t.Fatalf("ReadAt(%d, %d) = %d bytes", c.n, c.off, n)
		}
		if !bytes.Equal(got, data[c.off:c.off+c.n]) {
			t.Fatalf("ReadAt(%d, %d): bytes differ", c.n, c.off)
		}
	}
	// Reads past EOF.
	if _, err := r.ReadAt(make([]byte, 1), int64(len(data))); err != io.EOF {
		t.Fatalf("read at EOF: err = %v", err)
	}
	buf := make([]byte, 100)
	n, err := r.ReadAt(buf, int64(len(data)-40))
	if n != 40 || err != io.EOF {
		t.Fatalf("short tail read = (%d, %v), want (40, EOF)", n, err)
	}
}

func TestReaderSequentialAndSection(t *testing.T) {
	data := make([]byte, 5*512+7)
	if _, err := rand.Read(data); err != nil {
		t.Fatal(err)
	}
	f := &chunkMap{data: data, chunkSize: 512, failIdx: -1}
	r := NewReader(f, nil)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("sequential read mismatch")
	}
	// Sequential read of n chunks should fetch each chunk exactly once.
	if fetches := f.fetches.Load(); fetches != 6 {
		t.Fatalf("fetches = %d, want 6", fetches)
	}

	f2 := &chunkMap{data: data, chunkSize: 512, failIdx: -1}
	sec := NewReader(f2, nil).Section(bg, 600, 700)
	got, err = io.ReadAll(sec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[600:1300]) {
		t.Fatal("section read mismatch")
	}
	// The section covers chunks 1 and 2 only.
	if fetches := f2.fetches.Load(); fetches != 2 {
		t.Fatalf("section fetches = %d, want 2", fetches)
	}
	if err := sec.Close(); err != nil {
		t.Fatal(err)
	}
	if !f2.closed {
		t.Fatal("closing the section did not close the fetcher")
	}
}

func TestReaderFetchErrorAndClose(t *testing.T) {
	data := make([]byte, 4*256)
	f := &chunkMap{data: data, chunkSize: 256, failIdx: 2}
	r := NewReader(f, nil)
	buf := make([]byte, len(data))
	if _, err := r.ReadAt(buf, 0); err == nil {
		t.Fatal("expected fetch error")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadAt(buf, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("after close: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
