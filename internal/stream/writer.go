package stream

import (
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"sync"
)

// Config tunes a streaming pipeline run.
type Config struct {
	// ChunkSize is the plaintext bytes per chunk (default DefaultChunkSize).
	ChunkSize int
	// Window bounds the number of chunks simultaneously resident in the
	// pipeline — being read, encoded or uploaded (default DefaultWindow).
	Window int
	// Pool supplies the chunk buffers (default Buffers).
	Pool *Pool
}

func (c Config) withDefaults() Config {
	if c.ChunkSize <= 0 {
		c.ChunkSize = DefaultChunkSize
	}
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.Pool == nil {
		c.Pool = Buffers
	}
	return c
}

// Result summarizes a completed pipeline run.
type Result struct {
	// Size is the total number of plaintext bytes consumed from the reader.
	Size int64
	// Chunks is the number of chunks emitted (0 for an empty stream).
	Chunks int
	// Sum256 is the SHA-256 of the whole plaintext stream, computed
	// incrementally while chunks were in flight.
	Sum256 [sha256.Size]byte
}

// Run consumes r in cfg.ChunkSize chunks and pipes every chunk through
// encode and then store, with at most cfg.Window chunks resident at any
// moment. Chunks overlap: while chunk j is being stored, chunk j+1 is being
// encoded (this is what lets per-shard hashing run concurrently with uploads
// of earlier chunks) and chunk j+2 is being read.
//
// encode transforms the plaintext chunk into an opaque encoded value; it runs
// on a pipeline goroutine and must not retain plain after returning (the
// buffer goes back to the pool). store persists the encoded value; distinct
// chunks may be stored out of order, so store must only rely on idx for
// placement. Both may run concurrently for different chunks.
//
// The first error stops the intake of new chunks, and Run returns it after
// all in-flight chunks have drained. Cancelling ctx stops the intake the
// same way: no new chunks are read, in-flight chunks drain (their encode and
// store callbacks are expected to observe the same ctx and fail fast), and
// Run returns ctx.Err().
func Run[E any](ctx context.Context, r io.Reader, cfg Config, encode func(idx int, plain []byte) (E, error), store func(idx int, enc E) error) (Result, error) {
	cfg = cfg.withDefaults()
	var (
		res  Result
		wg   sync.WaitGroup
		mu   sync.Mutex
		fail error
	)
	setErr := func(err error) {
		mu.Lock()
		if fail == nil {
			fail = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return fail != nil
	}

	h := sha256.New()
	window := make(chan struct{}, cfg.Window)
	for idx := 0; !failed(); idx++ {
		if err := ctx.Err(); err != nil {
			setErr(err)
			break
		}
		window <- struct{}{} // count the chunk being read against the window
		buf := cfg.Pool.Get(cfg.ChunkSize)
		n, err := io.ReadFull(r, buf)
		if n == 0 {
			cfg.Pool.Put(buf)
			<-window
			if err != io.EOF && err != io.ErrUnexpectedEOF && err != nil {
				setErr(fmt.Errorf("stream: reading chunk %d: %w", idx, err))
			}
			break
		}
		plain := buf[:n]
		h.Write(plain)
		res.Size += int64(n)
		res.Chunks++
		wg.Add(1)
		go func(idx int, plain []byte) {
			defer wg.Done()
			defer func() { <-window }()
			enc, eerr := encode(idx, plain)
			cfg.Pool.Put(plain[:cap(plain)])
			if eerr == nil {
				eerr = store(idx, enc)
			}
			if eerr != nil {
				setErr(fmt.Errorf("stream: chunk %d: %w", idx, eerr))
			}
		}(idx, plain)
		if err == io.ErrUnexpectedEOF {
			break // short final chunk
		}
		if err != nil && err != io.EOF {
			setErr(fmt.Errorf("stream: reading chunk %d: %w", idx+1, err))
			break
		}
		if err == io.EOF {
			break
		}
	}
	wg.Wait()
	h.Sum(res.Sum256[:0])
	mu.Lock()
	defer mu.Unlock()
	return res, fail
}
