package stream

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// instrumentedFetcher serves a fixed payload chunk by chunk, recording how
// often each chunk was fetched, how many fetches ran concurrently, and
// optionally delaying (or blocking) each fetch.
type instrumentedFetcher struct {
	data      []byte
	chunkSize int
	delay     time.Duration

	mu sync.Mutex
	// block, when non-nil, makes every Fetch wait until the channel is
	// closed (or its ctx is cancelled). Guarded by mu (tests swap it
	// between phases).
	block        chan struct{}
	fetches      map[int]int
	inFlight     int
	maxInFlight  int
	ctxCancelled atomic.Int64
	totalFetches atomic.Int64
	closed       atomic.Bool
	fetchStarted chan struct{} // receives one token per fetch start
}

func newInstrumented(data []byte, chunkSize int) *instrumentedFetcher {
	return &instrumentedFetcher{
		data:         data,
		chunkSize:    chunkSize,
		fetches:      make(map[int]int),
		fetchStarted: make(chan struct{}, 1024),
	}
}

func (f *instrumentedFetcher) Size() int64    { return int64(len(f.data)) }
func (f *instrumentedFetcher) ChunkSize() int { return f.chunkSize }
func (f *instrumentedFetcher) Close() error   { f.closed.Store(true); return nil }

func (f *instrumentedFetcher) setBlock(ch chan struct{}) {
	f.mu.Lock()
	f.block = ch
	f.mu.Unlock()
}

func (f *instrumentedFetcher) Fetch(ctx context.Context, idx int, dst []byte) error {
	f.mu.Lock()
	f.fetches[idx]++
	f.inFlight++
	if f.inFlight > f.maxInFlight {
		f.maxInFlight = f.inFlight
	}
	block := f.block
	f.mu.Unlock()
	f.totalFetches.Add(1)
	select {
	case f.fetchStarted <- struct{}{}:
	default:
	}
	defer func() {
		f.mu.Lock()
		f.inFlight--
		f.mu.Unlock()
	}()
	if block != nil {
		select {
		case <-block:
		case <-ctx.Done():
			f.ctxCancelled.Add(1)
			return ctx.Err()
		}
	}
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			f.ctxCancelled.Add(1)
			return ctx.Err()
		}
	}
	start := idx * f.chunkSize
	copy(dst, f.data[start:start+len(dst)])
	return nil
}

func (f *instrumentedFetcher) stats() (perChunk map[int]int, maxInFlight int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[int]int, len(f.fetches))
	for k, v := range f.fetches {
		out[k] = v
	}
	return out, f.maxInFlight
}

// TestPrefetchOverlapsSequentialScan: with readahead enabled, a sequential
// scan fetches upcoming chunks concurrently with consumption, each chunk
// exactly once, and returns the right bytes.
func TestPrefetchOverlapsSequentialScan(t *testing.T) {
	const chunk = 1024
	data := bytes.Repeat([]byte("0123456789abcdef"), 8*chunk/16) // 8 chunks
	f := newInstrumented(data, chunk)
	f.delay = 2 * time.Millisecond
	r := NewReaderOpts(f, Buffers, ReaderOptions{Readahead: 3})
	defer r.Close()

	got := make([]byte, 0, len(data))
	buf := make([]byte, 512)
	for {
		n, err := r.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, data) {
		t.Fatal("sequential scan returned wrong bytes")
	}
	// Close before inspecting so all prefetches have finished.
	r.Close()
	perChunk, maxInFlight := f.stats()
	for idx, n := range perChunk {
		if n != 1 {
			t.Fatalf("chunk %d fetched %d times, want once", idx, n)
		}
	}
	if len(perChunk) != 8 {
		t.Fatalf("fetched %d distinct chunks, want 8", len(perChunk))
	}
	if maxInFlight < 2 {
		t.Fatalf("max concurrent fetches = %d; prefetch never overlapped the scan", maxInFlight)
	}
}

// TestPrefetchRespectsParallelBound: the MaxParallel limit caps concurrent
// prefetches.
func TestPrefetchRespectsParallelBound(t *testing.T) {
	const chunk = 512
	data := bytes.Repeat([]byte{0xAA}, 32*chunk)
	f := newInstrumented(data, chunk)
	f.delay = time.Millisecond
	r := NewReaderOpts(f, Buffers, ReaderOptions{Readahead: 8, MaxParallel: 2})
	defer r.Close()
	if _, err := io.Copy(io.Discard, r); err != nil {
		t.Fatal(err)
	}
	r.Close()
	_, maxInFlight := f.stats()
	// One foreground fetch + at most 2 prefetches.
	if maxInFlight > 3 {
		t.Fatalf("max concurrent fetches = %d, want <= 3", maxInFlight)
	}
}

// TestRandomReadsDoNotPrefetch: the governor collapses the window on
// non-sequential access, so random reads fetch only what they touch.
func TestRandomReadsDoNotPrefetch(t *testing.T) {
	const chunk = 1024
	data := bytes.Repeat([]byte{0x3C}, 16*chunk)
	f := newInstrumented(data, chunk)
	r := NewReaderOpts(f, Buffers, ReaderOptions{Readahead: 4})
	defer r.Close()

	buf := make([]byte, 64)
	// Far-apart offsets in descending order: never sequential.
	for _, off := range []int64{15 * chunk, 9 * chunk, 4 * chunk, 1 * chunk} {
		if _, err := r.ReadAt(buf, off); err != nil {
			t.Fatal(err)
		}
	}
	r.Close()
	perChunk, _ := f.stats()
	if len(perChunk) > 5 {
		t.Fatalf("random reads touched %d chunks (%v); readahead speculated", len(perChunk), perChunk)
	}
}

// TestPrefetchAbortsOnClose: Close cancels in-flight prefetches promptly
// and only returns once they have exited.
func TestPrefetchAbortsOnClose(t *testing.T) {
	const chunk = 1024
	data := bytes.Repeat([]byte{0x99}, 16*chunk)
	f := newInstrumented(data, chunk)
	firstGate := make(chan struct{})
	f.setBlock(firstGate)
	r := NewReaderOpts(f, Buffers, ReaderOptions{Readahead: 2})

	// Read chunk 0 in the foreground (blocked fetch released per-call is
	// not possible with one shared gate, so run it in a goroutine and
	// release it once the prefetches have started).
	readDone := make(chan error, 1)
	go func() {
		buf := make([]byte, 16)
		_, err := r.ReadAtContext(context.Background(), buf, 0)
		readDone <- err
	}()
	// Wait for the foreground fetch to start, then unblock everything the
	// moment the read returns and prefetches have spawned.
	<-f.fetchStarted
	close(firstGate)
	if err := <-readDone; err != nil {
		t.Fatal(err)
	}

	// Now block subsequent fetches again and trigger prefetches with a
	// second sequential read.
	f.setBlock(make(chan struct{})) // never closed: prefetches hang until cancelled
	buf := make([]byte, 16)
	if _, err := r.ReadAt(buf, 16); err != nil {
		t.Fatal(err) // chunk 0 is cached; this read only triggers prefetch
	}

	// Wait until at least one prefetch is actually in flight.
	select {
	case <-f.fetchStarted:
	case <-time.After(2 * time.Second):
		t.Fatal("prefetch never started")
	}

	done := make(chan struct{})
	go func() { r.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return; prefetch not aborted")
	}
	if f.ctxCancelled.Load() == 0 {
		t.Fatal("prefetch fetch was not cancelled")
	}
	if !f.closed.Load() {
		t.Fatal("fetcher not closed")
	}
}

// TestPrefetchAbortsOnContextCancel: cancelling the context of the read
// that triggered a prefetch aborts the prefetch too.
func TestPrefetchAbortsOnContextCancel(t *testing.T) {
	const chunk = 1024
	data := bytes.Repeat([]byte{0x42}, 16*chunk)
	f := newInstrumented(data, chunk)
	r := NewReaderOpts(f, Buffers, ReaderOptions{Readahead: 2})
	defer r.Close()

	ctx, cancel := context.WithCancel(context.Background())
	buf := make([]byte, 16)
	if _, err := r.ReadAtContext(ctx, buf, 0); err != nil {
		t.Fatal(err)
	}
	// Block the fetches the prefetch pipeline is about to issue.
	f.setBlock(make(chan struct{}))
	if _, err := r.ReadAtContext(ctx, buf, 16); err != nil {
		t.Fatal(err)
	}
	select {
	case <-f.fetchStarted:
	case <-time.After(2 * time.Second):
		t.Fatal("prefetch never started")
	}
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if f.ctxCancelled.Load() > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("prefetch survived the triggering context's cancellation")
}

// TestConcurrentReadersShareOneFetch: two goroutines reading the same cold
// chunk concurrently trigger exactly one fetch.
func TestConcurrentReadersShareOneFetch(t *testing.T) {
	const chunk = 4096
	data := bytes.Repeat([]byte{0x61}, chunk)
	f := newInstrumented(data, chunk)
	f.delay = 5 * time.Millisecond
	r := NewReader(f, Buffers)
	defer r.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 128)
			if _, err := r.ReadAt(buf, 0); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	perChunk, _ := f.stats()
	if perChunk[0] != 1 {
		t.Fatalf("chunk 0 fetched %d times by concurrent readers, want 1", perChunk[0])
	}
}

// TestReadAfterFailedSharedFetchRetries: a waiter joining an in-flight
// fetch that fails retries with its own context instead of inheriting the
// failure.
func TestReadAfterFailedSharedFetchRetries(t *testing.T) {
	const chunk = 1024
	data := bytes.Repeat([]byte{0x10}, chunk)
	f := newInstrumented(data, chunk)
	gate := make(chan struct{})
	f.setBlock(gate)
	r := NewReader(f, Buffers)
	defer r.Close()

	// First reader starts a fetch under a context we cancel.
	ctx1, cancel1 := context.WithCancel(context.Background())
	first := make(chan error, 1)
	go func() {
		buf := make([]byte, 16)
		_, err := r.ReadAtContext(ctx1, buf, 0)
		first <- err
	}()
	<-f.fetchStarted
	// Second reader joins the same in-flight fetch.
	second := make(chan error, 1)
	go func() {
		buf := make([]byte, 16)
		_, err := r.ReadAtContext(context.Background(), buf, 0)
		second <- err
	}()
	cancel1()
	if err := <-first; !errors.Is(err, context.Canceled) {
		t.Fatalf("first reader: %v, want context.Canceled", err)
	}
	// Unblock fetches: the second reader's retry succeeds.
	close(gate)
	if err := <-second; err != nil {
		t.Fatalf("second reader should have retried and succeeded: %v", err)
	}
}
