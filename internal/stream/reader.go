package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Fetcher yields decoded plaintext chunks of a chunked object. Implementations
// are expected to verify integrity per chunk and to reconstruct missing
// shards when sources are faulty; Reader only does the byte-range
// bookkeeping.
type Fetcher interface {
	// Size is the total plaintext length in bytes.
	Size() int64
	// ChunkSize is the plaintext bytes per chunk (every chunk but the last
	// holds exactly ChunkSize bytes).
	ChunkSize() int
	// Fetch decodes chunk idx into dst, which has exactly the chunk's
	// plaintext length. It must not retain dst. Cancelling ctx aborts the
	// fetch promptly with ctx.Err().
	Fetch(ctx context.Context, idx int, dst []byte) error
	// Close releases fetcher resources.
	Close() error
}

// ErrClosed is returned by Reader methods after Close.
var ErrClosed = errors.New("stream: reader is closed")

// readerCacheSlots is how many decoded chunks a Reader keeps. One slot
// serves a single sequential scan; a few more keep interleaved readers at
// different offsets (several handles share one Reader in the SCFS agent)
// from evicting each other's chunk on every alternation.
const readerCacheSlots = 4

// cachedChunk is one filled cache slot.
type cachedChunk struct {
	idx  int
	buf  []byte // pooled
	used int64  // access stamp for LRU eviction
}

// Reader provides io.Reader, io.ReaderAt and io.Closer over a Fetcher,
// caching the most recently used chunks so sequential reads and clustered
// random reads fetch each chunk once. It is safe for concurrent use.
type Reader struct {
	f    Fetcher
	pool *Pool

	mu     sync.Mutex
	slots  []cachedChunk
	tick   int64
	off    int64 // sequential position for Read
	closed bool
}

// NewReader wraps a fetcher. A nil pool uses the shared Buffers pool.
func NewReader(f Fetcher, pool *Pool) *Reader {
	if pool == nil {
		pool = Buffers
	}
	return &Reader{f: f, pool: pool}
}

// Size returns the total plaintext length.
func (r *Reader) Size() int64 { return r.f.Size() }

// chunkLen returns the plaintext length of chunk idx.
func (r *Reader) chunkLen(idx int) int {
	cs := int64(r.f.ChunkSize())
	rem := r.f.Size() - int64(idx)*cs
	if rem > cs {
		return int(cs)
	}
	return int(rem)
}

// load returns the contents of chunk idx, fetching into a new or recycled
// cache slot on a miss. Called with mu held.
func (r *Reader) load(ctx context.Context, idx int) ([]byte, error) {
	r.tick++
	for i := range r.slots {
		if r.slots[i].idx == idx {
			r.slots[i].used = r.tick
			return r.slots[i].buf, nil
		}
	}
	buf := r.pool.Get(r.chunkLen(idx))
	if err := r.f.Fetch(ctx, idx, buf); err != nil {
		r.pool.Put(buf[:cap(buf)])
		return nil, fmt.Errorf("stream: fetching chunk %d: %w", idx, err)
	}
	if len(r.slots) < readerCacheSlots {
		r.slots = append(r.slots, cachedChunk{idx: idx, buf: buf, used: r.tick})
		return buf, nil
	}
	victim := 0
	for i := range r.slots {
		if r.slots[i].used < r.slots[victim].used {
			victim = i
		}
	}
	r.pool.Put(r.slots[victim].buf[:cap(r.slots[victim].buf)])
	r.slots[victim] = cachedChunk{idx: idx, buf: buf, used: r.tick}
	return buf, nil
}

// ReadAt implements io.ReaderAt: it fetches only the chunks covering
// [off, off+len(p)). It is ReadAtContext with a background context; callers
// that can be cancelled should prefer ReadAtContext.
func (r *Reader) ReadAt(p []byte, off int64) (int, error) {
	return r.ReadAtContext(context.Background(), p, off)
}

// ReadAtContext is ReadAt bounded by ctx: chunk fetches triggered by the
// read observe the context and abort promptly when it is cancelled.
func (r *Reader) ReadAtContext(ctx context.Context, p []byte, off int64) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.readAtLocked(ctx, p, off)
}

// readAtLocked is ReadAtContext with mu held.
func (r *Reader) readAtLocked(ctx context.Context, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("stream: negative offset")
	}
	if r.closed {
		return 0, ErrClosed
	}
	size := r.f.Size()
	if off >= size {
		return 0, io.EOF
	}
	cs := int64(r.f.ChunkSize())
	n := 0
	for n < len(p) && off < size {
		idx := int(off / cs)
		chunk, err := r.load(ctx, idx)
		if err != nil {
			return n, err
		}
		within := int(off - int64(idx)*cs)
		c := copy(p[n:], chunk[within:])
		n += c
		off += int64(c)
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Read implements io.Reader with an internal sequential offset. The offset
// advance is atomic with the read, so concurrent Reads consume disjoint
// ranges.
func (r *Reader) Read(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, err := r.readAtLocked(context.Background(), p, r.off)
	r.off += int64(n)
	return n, err
}

// Close returns the cached chunks to the pool and closes the fetcher.
func (r *Reader) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	for _, s := range r.slots {
		r.pool.Put(s.buf[:cap(s.buf)])
	}
	r.slots = nil
	r.mu.Unlock()
	return r.f.Close()
}

// Section returns a ReadCloser over [off, off+length) of the reader whose
// reads are bounded by ctx. Closing the section closes the underlying
// reader. Requests beyond the end are truncated.
func (r *Reader) Section(ctx context.Context, off, length int64) io.ReadCloser {
	if off < 0 {
		off = 0
	}
	if max := r.Size() - off; length > max {
		length = max
	}
	if length < 0 {
		length = 0
	}
	bound := &ctxReaderAt{ctx: ctx, r: r}
	return &section{SectionReader: io.NewSectionReader(bound, off, length), r: r}
}

// ctxReaderAt binds a context to a Reader so io.SectionReader (whose ReadAt
// has no context parameter) still propagates cancellation to chunk fetches.
type ctxReaderAt struct {
	ctx context.Context
	r   *Reader
}

// ReadAt implements io.ReaderAt under the bound context.
func (c *ctxReaderAt) ReadAt(p []byte, off int64) (int, error) {
	return c.r.ReadAtContext(c.ctx, p, off)
}

// section is an io.SectionReader that forwards Close to its Reader.
type section struct {
	*io.SectionReader
	r *Reader
}

// Close implements io.Closer.
func (s *section) Close() error { return s.r.Close() }
