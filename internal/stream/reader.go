package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"scfs/internal/iopolicy"
	"scfs/internal/telemetry"
)

// Fetcher yields decoded plaintext chunks of a chunked object. Implementations
// are expected to verify integrity per chunk and to reconstruct missing
// shards when sources are faulty; Reader only does the byte-range
// bookkeeping.
type Fetcher interface {
	// Size is the total plaintext length in bytes.
	Size() int64
	// ChunkSize is the plaintext bytes per chunk (every chunk but the last
	// holds exactly ChunkSize bytes).
	ChunkSize() int
	// Fetch decodes chunk idx into dst, which has exactly the chunk's
	// plaintext length. It must not retain dst. Cancelling ctx aborts the
	// fetch promptly with ctx.Err(). Fetch may be called concurrently for
	// different chunks.
	Fetch(ctx context.Context, idx int, dst []byte) error
	// Close releases fetcher resources.
	Close() error
}

// ErrClosed is returned by Reader methods after Close.
var ErrClosed = errors.New("stream: reader is closed")

// readerCacheSlots is the minimum number of decoded chunks a Reader keeps.
// One slot serves a single sequential scan; a few more keep interleaved
// readers at different offsets (several handles share one Reader in the
// SCFS agent) from evicting each other's chunk on every alternation. A
// reader with readahead keeps at least its full prefetch window plus the
// chunk being consumed.
const readerCacheSlots = 4

// cachedChunk is one filled cache slot.
type cachedChunk struct {
	idx  int
	buf  []byte // pooled
	used int64  // access stamp for LRU eviction
	// prefetched marks a slot deposited by the readahead pipeline that no
	// foreground read has consumed yet; the first lookup counts it as a
	// prefetch hit and clears the mark.
	prefetched bool
}

// ReaderMetrics are the optional prefetch instruments of a Reader. Every
// field is a nil-safe telemetry instrument, so a zero ReaderMetrics (or any
// subset of fields) disables exactly that measurement.
type ReaderMetrics struct {
	// PrefetchLaunched counts background chunk fetches started.
	PrefetchLaunched *telemetry.Counter
	// PrefetchHits counts prefetched chunks later consumed by a foreground
	// read (each chunk at most once) — the wins of the speculation.
	PrefetchHits *telemetry.Counter
	// PrefetchAborted counts prefetches whose fetch failed or was cancelled
	// (reader closed, triggering read cancelled) — the speculation wasted.
	PrefetchAborted *telemetry.Counter
	// Window tracks the governor's latest readahead window decision.
	Window *telemetry.Gauge
	// Inflight tracks how many prefetches are running right now.
	Inflight *telemetry.Gauge
}

// inflightChunk tracks one chunk fetch in progress, so concurrent readers
// (and the prefetch pipeline) of the same chunk share a single fetch.
type inflightChunk struct {
	done chan struct{} // closed when the fetch finished (deposited or failed)
}

// ReaderOptions configures the optional readahead pipeline of a Reader.
type ReaderOptions struct {
	// Readahead is the maximum number of chunks prefetched ahead of a
	// sequential consumer (0 disables prefetch). The effective window ramps
	// up from 1 only while the access pattern stays sequential and collapses
	// on the first seek, so random readers never pay for speculation.
	Readahead int
	// MaxParallel bounds how many prefetches run concurrently
	// (default: Readahead).
	MaxParallel int
	// BaseContext is the context prefetches derive their values (e.g. the
	// I/O policy) from; their cancellation is governed by the reader's
	// lifetime and the triggering read's context. Defaults to
	// context.Background().
	//scfslint:ignore ctxdiscipline options struct carries the prefetch value-context by design
	BaseContext context.Context
	// Metrics instruments the readahead pipeline (zero value: unmetered).
	Metrics ReaderMetrics
}

// Reader provides io.Reader, io.ReaderAt and io.Closer over a Fetcher,
// caching the most recently used chunks so sequential reads and clustered
// random reads fetch each chunk once. Distinct chunks are fetched
// concurrently (callers touching the same chunk share one fetch), and with
// ReaderOptions.Readahead set a sequential scan prefetches upcoming chunks
// while the current one is being consumed, overlapping fetch+decode with
// consumption. It is safe for concurrent use.
type Reader struct {
	f     Fetcher
	pool  *Pool
	slotN int

	// Readahead pipeline (nil/zero when disabled).
	govern      *iopolicy.Governor
	maxParallel int
	//scfslint:ignore ctxdiscipline reader-lifetime context, cancelled by Close
	lifeCtx    context.Context
	lifeCancel context.CancelFunc
	prefetchWG sync.WaitGroup
	metrics    ReaderMetrics

	// seqMu serializes sequential Reads so concurrent Reads consume
	// disjoint ranges even though the fetches themselves run outside mu.
	seqMu sync.Mutex

	mu          sync.Mutex
	slots       []cachedChunk
	inflight    map[int]*inflightChunk
	prefetching int
	tick        int64
	off         int64 // sequential position for Read
	closed      bool
}

// NewReader wraps a fetcher with no readahead. A nil pool uses the shared
// Buffers pool.
func NewReader(f Fetcher, pool *Pool) *Reader {
	return NewReaderOpts(f, pool, ReaderOptions{})
}

// NewReaderOpts wraps a fetcher with the given readahead configuration.
func NewReaderOpts(f Fetcher, pool *Pool, opts ReaderOptions) *Reader {
	if pool == nil {
		pool = Buffers
	}
	r := &Reader{f: f, pool: pool, slotN: readerCacheSlots, inflight: make(map[int]*inflightChunk), metrics: opts.Metrics}
	if opts.Readahead > 0 {
		r.govern = iopolicy.NewGovernor(opts.Readahead)
		r.maxParallel = opts.MaxParallel
		if r.maxParallel <= 0 {
			r.maxParallel = opts.Readahead
		}
		// The cache must hold the whole prefetch window plus the chunk
		// being consumed, or prefetched chunks would evict each other.
		if want := opts.Readahead + 2; want > r.slotN {
			r.slotN = want
		}
		base := opts.BaseContext
		if base == nil {
			//scfslint:ignore ctxdiscipline value-context default; prefetch cancellation is lifeCtx + trigger ctx
			base = context.Background()
		}
		r.lifeCtx, r.lifeCancel = context.WithCancel(base)
	}
	return r
}

// Size returns the total plaintext length.
func (r *Reader) Size() int64 { return r.f.Size() }

// chunkLen returns the plaintext length of chunk idx.
func (r *Reader) chunkLen(idx int) int {
	cs := int64(r.f.ChunkSize())
	rem := r.f.Size() - int64(idx)*cs
	if rem > cs {
		return int(cs)
	}
	return int(rem)
}

// lookupLocked returns the cached buffer of chunk idx. Called with mu held.
func (r *Reader) lookupLocked(idx int) ([]byte, bool) {
	for i := range r.slots {
		if r.slots[i].idx == idx {
			r.tick++
			r.slots[i].used = r.tick
			if r.slots[i].prefetched {
				r.slots[i].prefetched = false
				r.metrics.PrefetchHits.Inc()
			}
			return r.slots[i].buf, true
		}
	}
	return nil, false
}

// touchLocked refreshes chunk idx's LRU stamp if cached, without counting a
// prefetch hit (the readahead pipeline peeks at the cache; only foreground
// lookups are hits). Called with mu held.
func (r *Reader) touchLocked(idx int) bool {
	for i := range r.slots {
		if r.slots[i].idx == idx {
			r.tick++
			r.slots[i].used = r.tick
			return true
		}
	}
	return false
}

// depositLocked installs a fetched chunk into the cache, evicting the least
// recently used slot if full. prefetched marks chunks the readahead pipeline
// deposited. Called with mu held.
func (r *Reader) depositLocked(idx int, buf []byte, prefetched bool) {
	r.tick++
	entry := cachedChunk{idx: idx, buf: buf, used: r.tick, prefetched: prefetched}
	if len(r.slots) < r.slotN {
		r.slots = append(r.slots, entry)
		return
	}
	victim := 0
	for i := range r.slots {
		if r.slots[i].used < r.slots[victim].used {
			victim = i
		}
	}
	r.pool.Put(r.slots[victim].buf[:cap(r.slots[victim].buf)])
	r.slots[victim] = entry
}

// withChunk makes chunk idx resident and calls use(buf) with the chunk's
// contents while the cache entry is pinned under mu (use must copy out and
// not retain buf). It joins an in-flight fetch of the same chunk when one
// exists, and starts its own otherwise.
func (r *Reader) withChunk(ctx context.Context, idx int, use func([]byte)) error {
	for {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return ErrClosed
		}
		if buf, ok := r.lookupLocked(idx); ok {
			if use != nil {
				use(buf)
			}
			r.mu.Unlock()
			return nil
		}
		if fl := r.inflight[idx]; fl != nil {
			r.mu.Unlock()
			select {
			case <-fl.done:
				// The fetch finished: loop to serve from the cache, or — if
				// it failed or its chunk was already evicted — fetch again
				// under our own context.
				continue
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		fl := &inflightChunk{done: make(chan struct{})}
		r.inflight[idx] = fl
		r.mu.Unlock()

		buf := r.pool.Get(r.chunkLen(idx))
		err := r.f.Fetch(ctx, idx, buf)
		r.mu.Lock()
		delete(r.inflight, idx)
		closed := r.closed
		if err == nil && !closed {
			r.depositLocked(idx, buf, false)
			if use != nil {
				use(buf)
			}
		} else {
			r.pool.Put(buf[:cap(buf)])
		}
		r.mu.Unlock()
		close(fl.done)
		if err != nil {
			return fmt.Errorf("stream: fetching chunk %d: %w", idx, err)
		}
		if closed {
			return ErrClosed
		}
		return nil
	}
}

// ReadAt implements io.ReaderAt: it fetches only the chunks covering
// [off, off+len(p)). It is ReadAtContext with a background context; callers
// that can be cancelled should prefer ReadAtContext.
func (r *Reader) ReadAt(p []byte, off int64) (int, error) {
	//scfslint:ignore ctxdiscipline io.ReaderAt adapter; cancellable callers use ReadAtContext
	return r.ReadAtContext(context.Background(), p, off)
}

// ReadAtContext is ReadAt bounded by ctx: chunk fetches triggered by the
// read observe the context and abort promptly when it is cancelled. When
// the reader was built with readahead, a sequential run of reads also
// prefetches upcoming chunks in the background.
func (r *Reader) ReadAtContext(ctx context.Context, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("stream: negative offset")
	}
	r.mu.Lock()
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return 0, ErrClosed
	}
	size := r.f.Size()
	if off >= size {
		return 0, io.EOF
	}
	cs := int64(r.f.ChunkSize())
	want := int64(len(p))
	if max := size - off; want > max {
		want = max
	}
	// Feed the governor and launch prefetches before fetching the covering
	// chunks: on a sequential scan the upcoming chunks' fetches then overlap
	// the foreground chunk's own fetch, not just its consumption.
	if r.govern != nil && want > 0 {
		r.triggerPrefetch(ctx, off, want, size, cs)
	}
	n := 0
	pos := off
	for n < len(p) && pos < size {
		idx := int(pos / cs)
		within := int(pos - int64(idx)*cs)
		var copied int
		err := r.withChunk(ctx, idx, func(chunk []byte) {
			copied = copy(p[n:], chunk[within:])
		})
		if err != nil {
			return n, err
		}
		n += copied
		pos += int64(copied)
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// triggerPrefetch feeds the governor with the read being served and starts
// background fetches for the chunks inside the resulting window.
func (r *Reader) triggerPrefetch(ctx context.Context, off, n, size int64, cs int64) {
	window := r.govern.Observe(off, n)
	r.metrics.Window.Set(int64(window))
	if window <= 0 {
		return
	}
	last := int((off + n - 1) / cs)
	maxIdx := int((size - 1) / cs)
	for j := last + 1; j <= last+window && j <= maxIdx; j++ {
		r.startPrefetch(ctx, j)
	}
}

// startPrefetch launches a background fetch of chunk idx unless it is
// cached, already being fetched, or the parallelism bound is reached. The
// fetch is cancelled when the reader closes or the triggering read's
// context is cancelled, and its result lands in the chunk cache for the
// consumer to pick up.
func (r *Reader) startPrefetch(ctx context.Context, idx int) {
	r.mu.Lock()
	if r.closed || r.prefetching >= r.maxParallel {
		r.mu.Unlock()
		return
	}
	if r.touchLocked(idx) {
		r.mu.Unlock()
		return
	}
	if r.inflight[idx] != nil {
		r.mu.Unlock()
		return
	}
	fl := &inflightChunk{done: make(chan struct{})}
	r.inflight[idx] = fl
	r.prefetching++
	r.prefetchWG.Add(1)
	r.mu.Unlock()
	r.metrics.PrefetchLaunched.Inc()
	r.metrics.Inflight.Add(1)

	// The prefetch runs under the reader's lifetime context (values come
	// from BaseContext, so the prefetch carries the open-time I/O policy)
	// and is additionally cancelled when the read that triggered it is.
	pctx, pcancel := context.WithCancel(r.lifeCtx)
	stop := context.AfterFunc(ctx, pcancel)
	go func() {
		defer r.prefetchWG.Done()
		defer stop()
		defer pcancel()
		buf := r.pool.Get(r.chunkLen(idx))
		err := r.f.Fetch(pctx, idx, buf)
		r.mu.Lock()
		delete(r.inflight, idx)
		r.prefetching--
		r.metrics.Inflight.Add(-1)
		if err == nil && !r.closed {
			r.depositLocked(idx, buf, true)
		} else {
			r.pool.Put(buf[:cap(buf)])
			r.metrics.PrefetchAborted.Inc()
		}
		r.mu.Unlock()
		close(fl.done)
	}()
}

// Read implements io.Reader with an internal sequential offset. The offset
// advance is atomic with the read, so concurrent Reads consume disjoint
// ranges.
func (r *Reader) Read(p []byte) (int, error) {
	r.seqMu.Lock()
	defer r.seqMu.Unlock()
	r.mu.Lock()
	off := r.off
	r.mu.Unlock()
	//scfslint:ignore ctxdiscipline io.Reader adapter; cancellable callers use ReadAtContext
	n, err := r.ReadAtContext(context.Background(), p, off)
	r.mu.Lock()
	r.off = off + int64(n)
	r.mu.Unlock()
	return n, err
}

// Close returns the cached chunks to the pool, aborts outstanding
// prefetches and closes the fetcher. It only returns after every prefetch
// goroutine has finished.
func (r *Reader) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	if r.lifeCancel != nil {
		r.lifeCancel()
	}
	for _, s := range r.slots {
		r.pool.Put(s.buf[:cap(s.buf)])
	}
	r.slots = nil
	r.mu.Unlock()
	r.prefetchWG.Wait()
	return r.f.Close()
}

// Section returns a ReadCloser over [off, off+length) of the reader whose
// reads are bounded by ctx. Closing the section closes the underlying
// reader. Requests beyond the end are truncated.
func (r *Reader) Section(ctx context.Context, off, length int64) io.ReadCloser {
	if off < 0 {
		off = 0
	}
	if max := r.Size() - off; length > max {
		length = max
	}
	if length < 0 {
		length = 0
	}
	bound := &ctxReaderAt{ctx: ctx, r: r}
	return &section{SectionReader: io.NewSectionReader(bound, off, length), r: r}
}

// ctxReaderAt binds a context to a Reader so io.SectionReader (whose ReadAt
// has no context parameter) still propagates cancellation to chunk fetches.
type ctxReaderAt struct {
	//scfslint:ignore ctxdiscipline request-carrier: binds one call's ctx across the ctx-less io.ReaderAt seam
	ctx context.Context
	r   *Reader
}

// ReadAt implements io.ReaderAt under the bound context.
func (c *ctxReaderAt) ReadAt(p []byte, off int64) (int, error) {
	return c.r.ReadAtContext(c.ctx, p, off)
}

// section is an io.SectionReader that forwards Close to its Reader.
type section struct {
	*io.SectionReader
	r *Reader
}

// Close implements io.Closer.
func (s *section) Close() error { return s.r.Close() }
