// Package stream implements the bounded-memory chunked data plane used by
// the DepSky backend: a write pipeline that consumes an io.Reader in
// fixed-size chunks and overlaps encrypt → erasure-encode → per-shard hash →
// quorum upload across a bounded window of in-flight chunks, and a random
// access reader that fetches (and, when clouds are faulty, reconstructs) only
// the chunks covering the requested byte range.
//
// The package is deliberately mechanism-only: it knows nothing about clouds,
// erasure codes or cryptography. Producers plug an encode and a store
// function into Run, and consumers implement Fetcher for Reader. All chunk
// and shard buffers are drawn from a shared size-classed Pool so the write
// and read paths (and DepSky's degraded-read decode attempts) recycle the
// same memory.
package stream

import "sync"

const (
	// DefaultChunkSize is the plaintext bytes per pipeline chunk (1 MiB).
	DefaultChunkSize = 1 << 20
	// DefaultWindow is the default bound on simultaneously resident chunks.
	DefaultWindow = 3
)

// Pool size classes are powers of two from 1<<minClassBits to
// 1<<maxClassBits. Requests above the top class fall back to plain make and
// are dropped on Put; below the bottom class they are served from the bottom
// class.
const (
	minClassBits = 12 // 4 KiB
	maxClassBits = 23 // 8 MiB
	numClasses   = maxClassBits - minClassBits + 1
)

// Pool recycles byte buffers across the streaming write pipeline, the ranged
// read path and DepSky's decode attempts. Buffers are grouped into
// power-of-two size classes; Get returns a buffer of exactly the requested
// length backed by its class capacity.
type Pool struct {
	classes [numClasses]sync.Pool
}

// Buffers is the process-wide pool shared by the stream writer, the stream
// reader and the DepSky read path.
var Buffers = &Pool{}

// classFor returns the class index serving n bytes, or -1 when n exceeds the
// largest class.
func classFor(n int) int {
	if n > 1<<maxClassBits {
		return -1
	}
	for c := 0; c < numClasses; c++ {
		if n <= 1<<(minClassBits+c) {
			return c
		}
	}
	return -1
}

// Get returns a buffer of length n. The contents are undefined (buffers are
// reused without clearing); callers must overwrite every byte they read back.
func (p *Pool) Get(n int) []byte {
	if n < 0 {
		panic("stream: negative buffer size")
	}
	c := classFor(n)
	if c < 0 {
		return make([]byte, n)
	}
	if b, ok := p.classes[c].Get().([]byte); ok {
		return b[:n]
	}
	return make([]byte, n, 1<<(minClassBits+c))
}

// Put returns a buffer obtained from Get to its size class. Buffers whose
// capacity does not match a class (e.g. allocated above the largest class)
// are dropped for the garbage collector.
func (p *Pool) Put(b []byte) {
	cp := cap(b)
	if cp == 0 {
		return
	}
	for c := 0; c < numClasses; c++ {
		if cp == 1<<(minClassBits+c) {
			p.classes[c].Put(b[:cp])
			return
		}
	}
}
