package zkcoord

import (
	"context"
	"errors"
	"testing"
	"time"

	"scfs/internal/clock"
	"scfs/internal/smr"
)

var bg = context.Background()

func newLocal(session string) (*Client, *Tree, *clock.Sim) {
	tree := NewTree()
	clk := clock.NewSim(time.Unix(1_000_000, 0))
	c := NewClient(&LocalInvoker{Tree: tree}, session, clk)
	c.SessionTTL = 10 * time.Second
	return c, tree, clk
}

func TestCreateGetSetDelete(t *testing.T) {
	c, _, _ := newLocal("s1")
	p, err := c.Create(bg, "/scfs", []byte("root"))
	if err != nil {
		t.Fatal(err)
	}
	if p != "/scfs" {
		t.Fatalf("created path = %q", p)
	}
	data, st, err := c.Get(bg, "/scfs")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "root" || st.Version != 1 {
		t.Fatalf("data=%q version=%d", data, st.Version)
	}
	st, err = c.Set(bg, "/scfs", []byte("updated"), int64(st.Version))
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != 2 {
		t.Fatalf("version after set = %d, want 2", st.Version)
	}
	if _, err := c.Set(bg, "/scfs", []byte("stale"), 1); !errors.Is(err, ErrVersion) {
		t.Fatalf("stale set err = %v, want ErrVersion", err)
	}
	if _, err := c.Set(bg, "/scfs", []byte("any"), AnyVersion); err != nil {
		t.Fatalf("Set AnyVersion: %v", err)
	}
	if err := c.Delete(bg, "/scfs", AnyVersion); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get(bg, "/scfs"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete err = %v, want ErrNotFound", err)
	}
}

func TestCreateRequiresParentAndRejectsDuplicates(t *testing.T) {
	c, _, _ := newLocal("s1")
	if _, err := c.Create(bg, "/a/b", nil); !errors.Is(err, ErrParent) {
		t.Fatalf("err = %v, want ErrParent", err)
	}
	if _, err := c.Create(bg, "/a", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create(bg, "/a", nil); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create err = %v, want ErrExists", err)
	}
	if _, err := c.Create(bg, "/a/b", nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteNonEmptyRejected(t *testing.T) {
	c, _, _ := newLocal("s1")
	if _, err := c.Create(bg, "/dir", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create(bg, "/dir/child", nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(bg, "/dir", AnyVersion); !errors.Is(err, ErrChildren) {
		t.Fatalf("err = %v, want ErrChildren", err)
	}
	if err := c.Delete(bg, "/dir/child", AnyVersion); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(bg, "/dir", AnyVersion); err != nil {
		t.Fatal(err)
	}
}

func TestChildrenListsDirectChildrenOnly(t *testing.T) {
	c, _, _ := newLocal("s1")
	for _, p := range []string{"/locks", "/locks/a", "/locks/b", "/locks/b/inner", "/meta"} {
		if _, err := c.Create(bg, p, nil); err != nil {
			t.Fatalf("create %s: %v", p, err)
		}
	}
	kids, err := c.Children(bg, "/locks")
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 2 || kids[0] != "a" || kids[1] != "b" {
		t.Fatalf("children = %v", kids)
	}
	rootKids, err := c.Children(bg, "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(rootKids) != 2 {
		t.Fatalf("root children = %v", rootKids)
	}
	if _, err := c.Children(bg, "/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestExists(t *testing.T) {
	c, _, _ := newLocal("s1")
	ok, _, err := c.Exists(bg, "/nope")
	if err != nil || ok {
		t.Fatalf("Exists(/nope) = %v, %v", ok, err)
	}
	if _, err := c.Create(bg, "/yes", []byte("data")); err != nil {
		t.Fatal(err)
	}
	ok, st, err := c.Exists(bg, "/yes")
	if err != nil || !ok {
		t.Fatalf("Exists(/yes) = %v, %v", ok, err)
	}
	if st.DataLen != 4 {
		t.Fatalf("stat = %+v", st)
	}
}

func TestSequentialNodes(t *testing.T) {
	c, _, _ := newLocal("s1")
	if _, err := c.Create(bg, "/queue", nil); err != nil {
		t.Fatal(err)
	}
	p1, err := c.CreateSequential(bg, "/queue/item-", nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.CreateSequential(bg, "/queue/item-", nil)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatalf("sequential nodes collided: %s", p1)
	}
	if p1 >= p2 {
		t.Fatalf("sequence not increasing: %s >= %s", p1, p2)
	}
}

func TestEphemeralNodesExpireWithoutHeartbeat(t *testing.T) {
	c, _, clk := newLocal("agent-1")
	if _, err := c.Create(bg, "/locks", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateEphemeral(bg, "/locks/file1", []byte("agent-1")); err != nil {
		t.Fatal(err)
	}
	ok, _, _ := c.Exists(bg, "/locks/file1")
	if !ok {
		t.Fatal("ephemeral node missing right after creation")
	}
	// Heartbeats keep it alive.
	clk.Advance(8 * time.Second)
	if n, err := c.Heartbeat(bg); err != nil || n != 1 {
		t.Fatalf("Heartbeat = %d, %v", n, err)
	}
	clk.Advance(8 * time.Second)
	ok, _, _ = c.Exists(bg, "/locks/file1")
	if !ok {
		t.Fatal("node expired despite heartbeat")
	}
	// Without heartbeats it expires (the crashed-client scenario that
	// motivates ephemeral locks in the paper).
	clk.Advance(11 * time.Second)
	ok, _, _ = c.Exists(bg, "/locks/file1")
	if ok {
		t.Fatal("ephemeral node survived session expiry")
	}
	if n, err := c.Clean(bg); err != nil || n != 1 {
		t.Fatalf("Clean = %d, %v", n, err)
	}
}

func TestSnapshotRestore(t *testing.T) {
	c, tree, _ := newLocal("s1")
	for _, p := range []string{"/a", "/a/b", "/c"} {
		if _, err := c.Create(bg, p, []byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	snap := tree.Snapshot()
	restored := NewTree()
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != tree.Len() {
		t.Fatalf("restored %d nodes, want %d", restored.Len(), tree.Len())
	}
	if err := restored.Restore([]byte("junk")); err == nil {
		t.Fatal("Restore accepted junk")
	}
}

func TestMalformedCommand(t *testing.T) {
	tree := NewTree()
	if res := tree.Execute([]byte("{bad")); len(res) == 0 {
		t.Fatal("no reply for malformed command")
	}
	c, _, _ := newLocal("s1")
	if err := c.Delete(bg, "/", AnyVersion); !errors.Is(err, ErrMalformed) {
		t.Fatalf("delete root err = %v, want ErrMalformed", err)
	}
}

func TestReplicatedZookeeperLikeService(t *testing.T) {
	// The Zookeeper-style deployment of the paper: 2f+1 = 3 replicas
	// tolerating one crash.
	ids := []int{0, 1, 2}
	cfg := smr.Config{ReplicaIDs: ids, Model: smr.CrashFaults}
	net := smr.NewNetwork()
	var replicas []*smr.Replica
	for _, id := range ids {
		r, err := smr.NewReplica(id, cfg, NewTree(), net)
		if err != nil {
			t.Fatal(err)
		}
		r.Start()
		replicas = append(replicas, r)
	}
	defer func() {
		for _, r := range replicas {
			r.Stop()
		}
	}()

	cli := NewClient(smr.NewClient("agent", cfg, net), "agent", clock.Real())
	if _, err := cli.Create(bg, "/scfs", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Create(bg, "/scfs/metadata", []byte("m")); err != nil {
		t.Fatal(err)
	}
	// One follower crashes; the service keeps working.
	net.Disconnect(2)
	data, _, err := cli.Get(bg, "/scfs/metadata")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "m" {
		t.Fatalf("got %q", data)
	}
}
