package zkcoord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"scfs/internal/clock"
)

// AnyVersion disables the version check on Set and Delete.
const AnyVersion = int64(-1)

// Invoker submits a serialized command for ordered execution (smr.Client or
// LocalInvoker). Cancelling ctx abandons the invocation with ctx.Err().
type Invoker interface {
	Invoke(ctx context.Context, cmd []byte) ([]byte, error)
}

// LocalInvoker executes commands directly on a Tree (no replication).
type LocalInvoker struct {
	Tree *Tree
}

// Invoke implements Invoker.
func (l *LocalInvoker) Invoke(ctx context.Context, cmd []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.Tree.Execute(cmd), nil
}

// Typed errors mapped from Result.Err.
var (
	ErrNotFound    = errors.New(ErrNoNode)
	ErrExists      = errors.New(ErrNodeExists)
	ErrVersion     = errors.New(ErrBadVersion)
	ErrParent      = errors.New(ErrNoParent)
	ErrChildren    = errors.New(ErrNotEmpty)
	ErrMalformed   = errors.New(ErrBadCommand)
	ErrNotTheOwner = errors.New(ErrNotOwner)
)

func mapError(msg string) error {
	switch msg {
	case "":
		return nil
	case ErrNoNode:
		return ErrNotFound
	case ErrNodeExists:
		return ErrExists
	case ErrBadVersion:
		return ErrVersion
	case ErrNoParent:
		return ErrParent
	case ErrNotEmpty:
		return ErrChildren
	case ErrNotOwner:
		return ErrNotTheOwner
	case ErrBadCommand:
		return ErrMalformed
	default:
		return fmt.Errorf("zkcoord: %s", msg)
	}
}

// Client is the typed interface to a (possibly replicated) znode tree. Each
// client represents one session; ephemeral znodes it creates disappear when
// the session stops heart-beating.
type Client struct {
	inv     Invoker
	session string
	clk     clock.Clock
	// SessionTTL is the expiry attached to ephemeral nodes and renewed by
	// Heartbeat.
	SessionTTL time.Duration
}

// NewClient creates a session-scoped client.
func NewClient(inv Invoker, session string, clk clock.Clock) *Client {
	if clk == nil {
		clk = clock.Real()
	}
	return &Client{inv: inv, session: session, clk: clk, SessionTTL: 30 * time.Second}
}

func (c *Client) do(ctx context.Context, cmd Command) (Result, error) {
	cmd.Session = c.session
	cmd.Now = c.clk.Now().UnixNano()
	b, err := json.Marshal(cmd)
	if err != nil {
		return Result{}, fmt.Errorf("zkcoord: encoding command: %w", err)
	}
	reply, err := c.inv.Invoke(ctx, b)
	if err != nil {
		return Result{}, fmt.Errorf("zkcoord: invoking %s: %w", cmd.Op, err)
	}
	var res Result
	if err := json.Unmarshal(reply, &res); err != nil {
		return Result{}, fmt.Errorf("zkcoord: decoding reply: %w", err)
	}
	if !res.OK {
		return res, mapError(res.Err)
	}
	return res, nil
}

// Create creates a persistent znode and returns its path.
func (c *Client) Create(ctx context.Context, p string, data []byte) (string, error) {
	res, err := c.do(ctx, Command{Op: opCreate, Path: p, Data: data, Version: AnyVersion})
	return res.Path, err
}

// CreateEphemeral creates an ephemeral znode owned by this session.
func (c *Client) CreateEphemeral(ctx context.Context, p string, data []byte) (string, error) {
	res, err := c.do(ctx, Command{Op: opCreate, Path: p, Data: data, Ephemeral: true, TTLNanos: int64(c.SessionTTL), Version: AnyVersion})
	return res.Path, err
}

// CreateSequential creates a persistent znode whose name gets a monotonically
// increasing suffix; it returns the final path.
func (c *Client) CreateSequential(ctx context.Context, p string, data []byte) (string, error) {
	res, err := c.do(ctx, Command{Op: opCreate, Path: p, Data: data, Sequential: true, Version: AnyVersion})
	return res.Path, err
}

// Get returns the data and stat of a znode.
func (c *Client) Get(ctx context.Context, p string) ([]byte, Stat, error) {
	res, err := c.do(ctx, Command{Op: opGet, Path: p, Version: AnyVersion})
	return res.Data, res.Stat, err
}

// Set overwrites a znode's data; version AnyVersion disables the check.
func (c *Client) Set(ctx context.Context, p string, data []byte, version int64) (Stat, error) {
	res, err := c.do(ctx, Command{Op: opSet, Path: p, Data: data, Version: version, TTLNanos: int64(c.SessionTTL)})
	return res.Stat, err
}

// Delete removes a leaf znode; version AnyVersion disables the check.
func (c *Client) Delete(ctx context.Context, p string, version int64) error {
	_, err := c.do(ctx, Command{Op: opDelete, Path: p, Version: version})
	return err
}

// Children lists the direct children names of a znode.
func (c *Client) Children(ctx context.Context, p string) ([]string, error) {
	res, err := c.do(ctx, Command{Op: opChildren, Path: p, Version: AnyVersion})
	return res.Children, err
}

// Exists reports whether a znode is present.
func (c *Client) Exists(ctx context.Context, p string) (bool, Stat, error) {
	res, err := c.do(ctx, Command{Op: opExists, Path: p, Version: AnyVersion})
	return res.Exists, res.Stat, err
}

// Heartbeat renews every ephemeral znode owned by this session and returns
// how many were renewed.
func (c *Client) Heartbeat(ctx context.Context) (int, error) {
	res, err := c.do(ctx, Command{Op: opHeartbeat, TTLNanos: int64(c.SessionTTL)})
	return res.Count, err
}

// Clean physically removes expired ephemeral znodes.
func (c *Client) Clean(ctx context.Context) (int, error) {
	res, err := c.do(ctx, Command{Op: opClean})
	return res.Count, err
}
