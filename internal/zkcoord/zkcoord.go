// Package zkcoord implements a Zookeeper-like coordination service: a
// hierarchical namespace of znodes with versioned conditional updates,
// ephemeral znodes (expiring with their owning session) and sequential
// znodes. It is the second coordination backend supported by SCFS (§3.2);
// like Zookeeper, it is replicated with the crash-fault configuration of the
// replication engine (2f+1 replicas), though nothing prevents running it in
// Byzantine mode.
//
// As with internal/depspace, expiry decisions are based on the timestamp
// carried inside each command so all replicas stay deterministic.
package zkcoord

import (
	"encoding/json"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
)

// Stat describes a znode.
type Stat struct {
	Version   uint64 `json:"version"`
	Ephemeral bool   `json:"ephemeral"`
	Owner     string `json:"owner,omitempty"`
	// ExpiresAt is a unix-nano deadline renewed by session heartbeats.
	ExpiresAt int64 `json:"expires_at,omitempty"`
	DataLen   int   `json:"data_len"`
}

type znode struct {
	Path      string `json:"path"`
	Data      []byte `json:"data"`
	Version   uint64 `json:"version"`
	Ephemeral bool   `json:"ephemeral"`
	Owner     string `json:"owner,omitempty"`
	ExpiresAt int64  `json:"expires_at,omitempty"`
	Seq       uint64 `json:"seq"` // counter for sequential children
}

// Command opcodes.
const (
	opCreate   = "create"
	opGet      = "get"
	opSet      = "set"
	opDelete   = "delete"
	opChildren = "children"
	opExists   = "exists"
	opHeartbeat = "heartbeat"
	opClean    = "clean"
)

// Command is the serialized operation applied by every replica.
type Command struct {
	Op        string `json:"op"`
	Session   string `json:"session"`
	Now       int64  `json:"now"`
	Path      string `json:"path,omitempty"`
	Data      []byte `json:"data,omitempty"`
	Version   int64  `json:"version,omitempty"` // -1 = any
	Ephemeral bool   `json:"ephemeral,omitempty"`
	Sequential bool  `json:"sequential,omitempty"`
	TTLNanos  int64  `json:"ttl_nanos,omitempty"`
}

// Result is the serialized reply.
type Result struct {
	OK       bool     `json:"ok"`
	Err      string   `json:"err,omitempty"`
	Path     string   `json:"path,omitempty"`
	Data     []byte   `json:"data,omitempty"`
	Stat     Stat     `json:"stat,omitempty"`
	Children []string `json:"children,omitempty"`
	Exists   bool     `json:"exists,omitempty"`
	Count    int      `json:"count,omitempty"`
}

// Error strings carried in Result.Err.
const (
	ErrNoNode      = "zkcoord: node does not exist"
	ErrNodeExists  = "zkcoord: node already exists"
	ErrBadVersion  = "zkcoord: version mismatch"
	ErrNoParent    = "zkcoord: parent does not exist"
	ErrNotEmpty    = "zkcoord: node has children"
	ErrBadCommand  = "zkcoord: malformed command"
	ErrNotOwner    = "zkcoord: not the ephemeral owner"
)

// Tree is the deterministic znode-tree state machine; it implements
// smr.Application.
type Tree struct {
	mu    sync.Mutex
	nodes map[string]*znode
}

// NewTree returns a tree containing only the root node "/".
func NewTree() *Tree {
	t := &Tree{nodes: make(map[string]*znode)}
	t.nodes["/"] = &znode{Path: "/", Version: 1}
	return t
}

// Execute implements smr.Application.
func (t *Tree) Execute(cmdBytes []byte) []byte {
	var cmd Command
	if err := json.Unmarshal(cmdBytes, &cmd); err != nil {
		return marshal(Result{OK: false, Err: ErrBadCommand})
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var res Result
	switch cmd.Op {
	case opCreate:
		res = t.create(cmd)
	case opGet:
		res = t.get(cmd)
	case opSet:
		res = t.set(cmd)
	case opDelete:
		res = t.delete(cmd)
	case opChildren:
		res = t.children(cmd)
	case opExists:
		res = t.exists(cmd)
	case opHeartbeat:
		res = t.heartbeat(cmd)
	case opClean:
		res = Result{OK: true, Count: t.cleanExpired(cmd.Now)}
	default:
		res = Result{OK: false, Err: ErrBadCommand}
	}
	return marshal(res)
}

func marshal(r Result) []byte {
	b, err := json.Marshal(r)
	if err != nil {
		return []byte(`{"ok":false,"err":"zkcoord: internal marshal error"}`)
	}
	return b
}

func (t *Tree) live(n *znode, now int64) bool {
	return n != nil && (n.ExpiresAt == 0 || now <= n.ExpiresAt)
}

func (t *Tree) cleanExpired(now int64) int {
	removed := 0
	for p, n := range t.nodes {
		if p == "/" {
			continue
		}
		if !t.live(n, now) {
			delete(t.nodes, p)
			removed++
		}
	}
	return removed
}

func cleanPath(p string) string {
	if p == "" {
		return "/"
	}
	return path.Clean("/" + strings.TrimPrefix(p, "/"))
}

func (t *Tree) statOf(n *znode) Stat {
	return Stat{Version: n.Version, Ephemeral: n.Ephemeral, Owner: n.Owner, ExpiresAt: n.ExpiresAt, DataLen: len(n.Data)}
}

func (t *Tree) create(cmd Command) Result {
	p := cleanPath(cmd.Path)
	if p == "/" {
		return Result{OK: false, Err: ErrNodeExists}
	}
	parent := path.Dir(p)
	pn, ok := t.nodes[parent]
	if !ok || !t.live(pn, cmd.Now) {
		return Result{OK: false, Err: ErrNoParent}
	}
	if cmd.Sequential {
		pn.Seq++
		p = fmt.Sprintf("%s%010d", p, pn.Seq)
	}
	if existing, ok := t.nodes[p]; ok && t.live(existing, cmd.Now) {
		return Result{OK: false, Err: ErrNodeExists, Path: p, Stat: t.statOf(existing)}
	}
	n := &znode{
		Path:      p,
		Data:      append([]byte(nil), cmd.Data...),
		Version:   1,
		Ephemeral: cmd.Ephemeral,
		Owner:     cmd.Session,
	}
	if cmd.Ephemeral && cmd.TTLNanos > 0 {
		n.ExpiresAt = cmd.Now + cmd.TTLNanos
	}
	t.nodes[p] = n
	return Result{OK: true, Path: p, Stat: t.statOf(n)}
}

func (t *Tree) get(cmd Command) Result {
	n, ok := t.nodes[cleanPath(cmd.Path)]
	if !ok || !t.live(n, cmd.Now) {
		return Result{OK: false, Err: ErrNoNode}
	}
	return Result{OK: true, Path: n.Path, Data: append([]byte(nil), n.Data...), Stat: t.statOf(n)}
}

func (t *Tree) set(cmd Command) Result {
	n, ok := t.nodes[cleanPath(cmd.Path)]
	if !ok || !t.live(n, cmd.Now) {
		return Result{OK: false, Err: ErrNoNode}
	}
	if cmd.Version >= 0 && uint64(cmd.Version) != n.Version {
		return Result{OK: false, Err: ErrBadVersion, Stat: t.statOf(n)}
	}
	n.Data = append([]byte(nil), cmd.Data...)
	n.Version++
	if n.Ephemeral && cmd.TTLNanos > 0 {
		n.ExpiresAt = cmd.Now + cmd.TTLNanos
	}
	return Result{OK: true, Path: n.Path, Stat: t.statOf(n)}
}

func (t *Tree) delete(cmd Command) Result {
	p := cleanPath(cmd.Path)
	if p == "/" {
		return Result{OK: false, Err: ErrBadCommand}
	}
	n, ok := t.nodes[p]
	if !ok || !t.live(n, cmd.Now) {
		return Result{OK: false, Err: ErrNoNode}
	}
	if cmd.Version >= 0 && uint64(cmd.Version) != n.Version {
		return Result{OK: false, Err: ErrBadVersion, Stat: t.statOf(n)}
	}
	// A node with live children cannot be removed.
	prefix := p + "/"
	for cp, cn := range t.nodes {
		if strings.HasPrefix(cp, prefix) && t.live(cn, cmd.Now) {
			return Result{OK: false, Err: ErrNotEmpty}
		}
	}
	delete(t.nodes, p)
	return Result{OK: true, Path: p}
}

func (t *Tree) children(cmd Command) Result {
	p := cleanPath(cmd.Path)
	n, ok := t.nodes[p]
	if !ok || !t.live(n, cmd.Now) {
		return Result{OK: false, Err: ErrNoNode}
	}
	prefix := p + "/"
	if p == "/" {
		prefix = "/"
	}
	var kids []string
	for cp, cn := range t.nodes {
		if cp == p || !strings.HasPrefix(cp, prefix) || !t.live(cn, cmd.Now) {
			continue
		}
		rest := strings.TrimPrefix(cp, prefix)
		if strings.Contains(rest, "/") {
			continue // not a direct child
		}
		kids = append(kids, rest)
	}
	sort.Strings(kids)
	return Result{OK: true, Path: p, Children: kids, Count: len(kids)}
}

func (t *Tree) exists(cmd Command) Result {
	n, ok := t.nodes[cleanPath(cmd.Path)]
	if !ok || !t.live(n, cmd.Now) {
		return Result{OK: true, Exists: false}
	}
	return Result{OK: true, Exists: true, Stat: t.statOf(n)}
}

// heartbeat renews the expiry of every ephemeral node owned by the session.
func (t *Tree) heartbeat(cmd Command) Result {
	count := 0
	for _, n := range t.nodes {
		if n.Ephemeral && n.Owner == cmd.Session && t.live(n, cmd.Now) && cmd.TTLNanos > 0 {
			n.ExpiresAt = cmd.Now + cmd.TTLNanos
			count++
		}
	}
	return Result{OK: true, Count: count}
}

// Snapshot implements smr.Application.
func (t *Tree) Snapshot() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, _ := json.Marshal(t.nodes)
	return b
}

// Restore implements smr.Application.
func (t *Tree) Restore(snapshot []byte) error {
	var nodes map[string]*znode
	if err := json.Unmarshal(snapshot, &nodes); err != nil {
		return fmt.Errorf("zkcoord: restoring snapshot: %w", err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nodes = nodes
	if _, ok := t.nodes["/"]; !ok {
		t.nodes["/"] = &znode{Path: "/", Version: 1}
	}
	return nil
}

// Len returns the number of znodes including the root.
func (t *Tree) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.nodes)
}
