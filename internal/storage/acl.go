package storage

import (
	"context"
	"fmt"

	"scfs/internal/cloud"
	"scfs/internal/fsapi"
)

// UserDirectory maps SCFS users to their canonical account identifiers at
// each cloud provider (§2.6: "SCFS needs to associate with every client a
// list of cloud canonical identifiers"). In the paper this association is
// kept in a tuple in the coordination service; here it is provided to the
// propagator at construction time (and can be refreshed).
type UserDirectory map[string]map[string]string

// CanonicalID returns the account identifier of user at provider.
func (d UserDirectory) CanonicalID(user, provider string) (string, bool) {
	accounts, ok := d[user]
	if !ok {
		return "", false
	}
	id, ok := accounts[provider]
	return id, ok
}

func toCloudPerm(p fsapi.Permission) cloud.Permission {
	switch p {
	case fsapi.PermRead:
		return cloud.PermRead
	case fsapi.PermReadWrite:
		return cloud.PermReadWrite
	default:
		return cloud.PermNone
	}
}

// CloudACLPropagator mirrors setfacl changes onto the objects that store a
// file's versions, across one or more providers. It implements the
// core.ACLPropagator interface without importing core (the method set is
// structural).
type CloudACLPropagator struct {
	// Stores are the owner's object-store clients, one per provider.
	Stores []cloud.ObjectStore
	// Directory resolves other users' canonical identifiers per provider.
	Directory UserDirectory
}

// PropagateACL grants (or revokes) user's permission on every stored version
// object of fileID at every provider.
func (p *CloudACLPropagator) PropagateACL(ctx context.Context, fileID string, hashes []string, user string, perm fsapi.Permission) error {
	cloudPerm := toCloudPerm(perm)
	for _, store := range p.Stores {
		grantee, ok := p.Directory.CanonicalID(user, store.Provider())
		if !ok {
			return fmt.Errorf("storage: no canonical identifier for user %q at provider %q", user, store.Provider())
		}
		objects, err := store.List(ctx, fileID+"/")
		if err != nil {
			return fmt.Errorf("storage: listing objects of %q at %q: %w", fileID, store.Provider(), err)
		}
		// Also cover DepSky-style object names, which live under a prefix
		// that embeds the file identifier.
		dsObjects, err := store.List(ctx, "dsky/"+fileID+"/")
		if err == nil {
			objects = append(objects, dsObjects...)
		}
		for _, o := range objects {
			current, err := store.GetACL(ctx, o.Name)
			if err != nil {
				return fmt.Errorf("storage: reading ACL of %q: %w", o.Name, err)
			}
			updated := make([]cloud.Grant, 0, len(current)+1)
			for _, g := range current {
				if g.Grantee != grantee {
					updated = append(updated, g)
				}
			}
			if cloudPerm != cloud.PermNone {
				updated = append(updated, cloud.Grant{Grantee: grantee, Perm: cloudPerm})
			}
			if err := store.SetACL(ctx, o.Name, updated); err != nil {
				return fmt.Errorf("storage: updating ACL of %q: %w", o.Name, err)
			}
		}
	}
	return nil
}
