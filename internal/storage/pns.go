package storage

import (
	"context"
	"errors"

	"scfs/internal/cloud"
	"scfs/internal/depsky"
)

// PNSStore persists a user's Private Name Space object in the cloud backend.
// Unlike file versions (which are content-addressed through the consistency
// anchor), the PNS is looked up by user name: the single-writer-per-PNS
// assumption (enforced by the PNS lock in the coordination service, or by the
// single-client assumption of the non-sharing mode) makes this safe.
type PNSStore interface {
	// WritePNS stores the serialized name space of user.
	WritePNS(ctx context.Context, user string, data []byte) error
	// ReadPNS returns the most recent stored name space of user, or
	// ErrPNSNotFound if none exists yet.
	ReadPNS(ctx context.Context, user string) ([]byte, error)
}

// ErrPNSNotFound is returned when the user has no stored PNS yet.
var ErrPNSNotFound = errors.New("storage: private name space not found")

func pnsObject(user string) string { return "pns/" + user }

// SingleCloudPNS stores the PNS as a single object in one provider.
type SingleCloudPNS struct {
	store cloud.ObjectStore
}

// NewSingleCloudPNS wraps an object store.
func NewSingleCloudPNS(store cloud.ObjectStore) *SingleCloudPNS {
	return &SingleCloudPNS{store: store}
}

// WritePNS implements PNSStore.
func (s *SingleCloudPNS) WritePNS(ctx context.Context, user string, data []byte) error {
	return s.store.Put(ctx, pnsObject(user), data)
}

// ReadPNS implements PNSStore.
func (s *SingleCloudPNS) ReadPNS(ctx context.Context, user string) ([]byte, error) {
	data, err := s.store.Get(ctx, pnsObject(user))
	if errors.Is(err, cloud.ErrNotFound) {
		return nil, ErrPNSNotFound
	}
	return data, err
}

// CoCPNS stores the PNS as a DepSky data unit (latest version wins).
type CoCPNS struct {
	mgr *depsky.Manager
}

// NewCoCPNS wraps a DepSky manager.
func NewCoCPNS(mgr *depsky.Manager) *CoCPNS { return &CoCPNS{mgr: mgr} }

// WritePNS implements PNSStore.
func (c *CoCPNS) WritePNS(ctx context.Context, user string, data []byte) error {
	_, err := c.mgr.Write(ctx, pnsObject(user), data)
	return err
}

// ReadPNS implements PNSStore.
func (c *CoCPNS) ReadPNS(ctx context.Context, user string) ([]byte, error) {
	data, _, err := c.mgr.Read(ctx, pnsObject(user))
	if errors.Is(err, depsky.ErrUnitNotFound) {
		return nil, ErrPNSNotFound
	}
	return data, err
}
