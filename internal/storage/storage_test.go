package storage

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"scfs/internal/cloud"
	"scfs/internal/cloudsim"
	"scfs/internal/depsky"
	"scfs/internal/seccrypto"
)

var bg = context.Background()

func newSingleCloudStore(t *testing.T, encrypt bool) (*cloudsim.Provider, *SingleCloud) {
	t.Helper()
	p := cloudsim.NewProvider(cloudsim.Options{Name: "s3"})
	c := p.MustClient(p.CreateAccount("alice"))
	sc, err := NewSingleCloud(c, encrypt)
	if err != nil {
		t.Fatal(err)
	}
	return p, sc
}

func newCoCStore(t *testing.T) ([]*cloudsim.Provider, *CloudOfClouds) {
	t.Helper()
	providers := make([]*cloudsim.Provider, 4)
	clients := make([]cloud.ObjectStore, 4)
	for i := range providers {
		p := cloudsim.NewProvider(cloudsim.Options{Name: fmt.Sprintf("c%d", i)})
		providers[i] = p
		clients[i] = p.MustClient(p.CreateAccount("alice"))
	}
	mgr, err := depsky.New(depsky.Options{Clouds: clients, F: 1})
	if err != nil {
		t.Fatal(err)
	}
	return providers, NewCloudOfClouds(mgr)
}

func testVersionedStore(t *testing.T, vs VersionedStore) {
	t.Helper()
	data1 := []byte("contents of version one")
	data2 := []byte("contents of version two, different")
	h1 := seccrypto.Hash(data1)
	h2 := seccrypto.Hash(data2)

	if err := vs.WriteVersion(bg, "file-1", h1, data1); err != nil {
		t.Fatalf("WriteVersion v1: %v", err)
	}
	if err := vs.WriteVersion(bg, "file-1", h2, data2); err != nil {
		t.Fatalf("WriteVersion v2: %v", err)
	}
	got, err := vs.ReadVersion(bg, "file-1", h1)
	if err != nil {
		t.Fatalf("ReadVersion v1: %v", err)
	}
	if !bytes.Equal(got, data1) {
		t.Fatal("v1 contents mismatch")
	}
	got, err = vs.ReadVersion(bg, "file-1", h2)
	if err != nil {
		t.Fatalf("ReadVersion v2: %v", err)
	}
	if !bytes.Equal(got, data2) {
		t.Fatal("v2 contents mismatch")
	}
	if _, err := vs.ReadVersion(bg, "file-1", seccrypto.Hash([]byte("never written"))); !errors.Is(err, ErrVersionNotFound) {
		t.Fatalf("missing version err = %v, want ErrVersionNotFound", err)
	}
	hashes, err := vs.ListVersions(bg, "file-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(hashes) != 2 {
		t.Fatalf("ListVersions = %v, want 2 entries", hashes)
	}
	if err := vs.DeleteVersion(bg, "file-1", h1); err != nil {
		t.Fatal(err)
	}
	if _, err := vs.ReadVersion(bg, "file-1", h1); !errors.Is(err, ErrVersionNotFound) {
		t.Fatalf("deleted version still readable: %v", err)
	}
	if _, err := vs.ReadVersion(bg, "file-1", h2); err != nil {
		t.Fatalf("remaining version unreadable after GC: %v", err)
	}
	if vs.Name() == "" {
		t.Fatal("backend must report a name")
	}
}

func TestSingleCloudVersionedStore(t *testing.T) {
	_, sc := newSingleCloudStore(t, false)
	testVersionedStore(t, sc)
}

func TestSingleCloudEncryptedVersionedStore(t *testing.T) {
	_, sc := newSingleCloudStore(t, true)
	testVersionedStore(t, sc)
}

func TestCloudOfCloudsVersionedStore(t *testing.T) {
	_, coc := newCoCStore(t)
	testVersionedStore(t, coc)
}

func TestSingleCloudEncryptionHidesPlaintext(t *testing.T) {
	p, sc := newSingleCloudStore(t, true)
	data := bytes.Repeat([]byte("SECRETDATA"), 50)
	h := seccrypto.Hash(data)
	if err := sc.WriteVersion(bg, "f", h, data); err != nil {
		t.Fatal(err)
	}
	c := p.MustClient(p.CreateAccount("alice"))
	objs, _ := c.List(bg, "")
	for _, o := range objs {
		raw, _ := c.Get(bg, o.Name)
		if bytes.Contains(raw, []byte("SECRETDATA")) {
			t.Fatal("plaintext stored despite encryption")
		}
	}
}

func TestSingleCloudDetectsCorruption(t *testing.T) {
	p, sc := newSingleCloudStore(t, false)
	data := []byte("important data")
	h := seccrypto.Hash(data)
	if err := sc.WriteVersion(bg, "f", h, data); err != nil {
		t.Fatal(err)
	}
	p.SetFault(cloudsim.FaultCorrupt)
	if _, err := sc.ReadVersion(bg, "f", h); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("err = %v, want ErrIntegrity (single cloud cannot mask corruption, only detect it)", err)
	}
}

func TestCoCMasksCorruption(t *testing.T) {
	providers, coc := newCoCStore(t)
	data := bytes.Repeat([]byte("resilient "), 500)
	h := seccrypto.Hash(data)
	if err := coc.WriteVersion(bg, "f", h, data); err != nil {
		t.Fatal(err)
	}
	providers[0].SetFault(cloudsim.FaultCorrupt)
	got, err := coc.ReadVersion(bg, "f", h)
	if err != nil {
		t.Fatalf("CoC read with a corrupting cloud: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("CoC returned corrupted data")
	}
}

func TestCoCExposesManager(t *testing.T) {
	_, coc := newCoCStore(t)
	if coc.Manager() == nil {
		t.Fatal("Manager() returned nil")
	}
	_, sc := newSingleCloudStore(t, false)
	if sc.Underlying() == nil {
		t.Fatal("Underlying() returned nil")
	}
}

// memAnchor is an in-memory linearizable anchor used to test the composite.
type memAnchor struct {
	mu sync.Mutex
	m  map[string]string
}

func newMemAnchor() *memAnchor { return &memAnchor{m: make(map[string]string)} }

func (a *memAnchor) ReadHash(_ context.Context, id string) (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	h, ok := a.m[id]
	if !ok {
		return "", ErrAnchorNotFound
	}
	return h, nil
}

func (a *memAnchor) WriteHash(_ context.Context, id, hash string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.m[id] = hash
	return nil
}

// delayedStore wraps a VersionedStore and hides freshly written versions for
// the first N reads, emulating eventual consistency at the API level so the
// composite's retry loop is exercised deterministically.
type delayedStore struct {
	VersionedStore
	mu      sync.Mutex
	hidden  map[string]int // key -> remaining reads that miss
	written map[string]bool
}

func newDelayedStore(inner VersionedStore, misses int) *delayedStore {
	return &delayedStore{VersionedStore: inner, hidden: map[string]int{}, written: map[string]bool{}}
}

func (d *delayedStore) hide(fileID, hash string, misses int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.hidden[fileID+"/"+hash] = misses
}

func (d *delayedStore) ReadVersion(ctx context.Context, fileID, hash string) ([]byte, error) {
	d.mu.Lock()
	key := fileID + "/" + hash
	if n, ok := d.hidden[key]; ok && n > 0 {
		d.hidden[key] = n - 1
		d.mu.Unlock()
		return nil, ErrVersionNotFound
	}
	d.mu.Unlock()
	return d.VersionedStore.ReadVersion(ctx, fileID, hash)
}

func TestCompositeWriteReadStrongConsistency(t *testing.T) {
	_, sc := newSingleCloudStore(t, false)
	anchor := newMemAnchor()
	comp := NewComposite(anchor, sc)
	comp.RetryInterval = time.Millisecond

	data := []byte("strongly consistent value")
	h, err := comp.Write(bg, "obj", data)
	if err != nil {
		t.Fatal(err)
	}
	if h != seccrypto.Hash(data) {
		t.Fatal("Write returned an unexpected hash")
	}
	got, err := comp.Read(bg, "obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("Read returned different data")
	}
}

func TestCompositeReadRetriesUntilVisible(t *testing.T) {
	// The hallmark of the Figure 3 algorithm: after a write completes, the
	// anchored hash is immediately visible but the data may take a while to
	// appear in the eventually consistent store; the reader loops until the
	// matching version shows up.
	_, sc := newSingleCloudStore(t, false)
	delayed := newDelayedStore(sc, 0)
	anchor := newMemAnchor()
	comp := NewComposite(anchor, delayed)
	comp.RetryInterval = 0
	slept := 0
	comp.Sleep = func(context.Context, time.Duration) error { slept++; return nil }

	data := []byte("eventually visible")
	h, err := comp.Write(bg, "obj", data)
	if err != nil {
		t.Fatal(err)
	}
	delayed.hide("obj", h, 3)
	got, err := comp.Read(bg, "obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("Read returned wrong data")
	}
	if slept != 3 {
		t.Fatalf("expected 3 retries, observed %d", slept)
	}
}

func TestCompositeReadGivesUpAfterMaxRetries(t *testing.T) {
	_, sc := newSingleCloudStore(t, false)
	delayed := newDelayedStore(sc, 0)
	anchor := newMemAnchor()
	comp := NewComposite(anchor, delayed)
	comp.MaxRetries = 5
	comp.Sleep = func(context.Context, time.Duration) error { return nil }

	data := []byte("never visible")
	h, err := comp.Write(bg, "obj", data)
	if err != nil {
		t.Fatal(err)
	}
	delayed.hide("obj", h, 1000)
	if _, err := comp.Read(bg, "obj"); !errors.Is(err, ErrVersionNotFound) {
		t.Fatalf("err = %v, want ErrVersionNotFound", err)
	}
}

func TestCompositeReadUnknownObject(t *testing.T) {
	_, sc := newSingleCloudStore(t, false)
	comp := NewComposite(newMemAnchor(), sc)
	if _, err := comp.Read(bg, "ghost"); !errors.Is(err, ErrAnchorNotFound) {
		t.Fatalf("err = %v, want ErrAnchorNotFound", err)
	}
}

func TestCompositeReadsLatestAnchoredVersion(t *testing.T) {
	// Overwrites anchor the newest hash; readers must never observe an older
	// version once the write completed (consistency-on-close in SCFS).
	_, sc := newSingleCloudStore(t, false)
	comp := NewComposite(newMemAnchor(), sc)
	comp.RetryInterval = time.Millisecond
	for i := 0; i < 5; i++ {
		payload := []byte(fmt.Sprintf("version-%d", i))
		if _, err := comp.Write(bg, "obj", payload); err != nil {
			t.Fatal(err)
		}
		got, err := comp.Read(bg, "obj")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("read %q after writing %q", got, payload)
		}
	}
}
