// Package storage implements the SCFS storage service (§2.5.1): the layer
// that saves and retrieves whole-file objects from the cloud backend, either
// a single cloud provider (the AWS backend of the paper) or a DepSky
// cloud-of-clouds, and the consistency-anchor composition of Figure 3 that
// turns an eventually consistent object store into a strongly consistent one.
package storage

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"scfs/internal/clock"
	"scfs/internal/cloud"
	"scfs/internal/depsky"
	"scfs/internal/pricing"
	"scfs/internal/resilience"
	"scfs/internal/seccrypto"
)

// Errors returned by backends.
var (
	// ErrVersionNotFound means the requested (fileID, hash) pair is not yet
	// visible; callers retry per the consistency-anchor read loop.
	ErrVersionNotFound = errors.New("storage: version not found")
	// ErrIntegrity means the fetched payload does not match the hash.
	ErrIntegrity = errors.New("storage: integrity check failed")
)

// VersionedStore is the storage-service (SS) abstraction used by SCFS: every
// write creates a new immutable version addressed by (fileID, hash of the
// contents). It corresponds to step w2/r2 of the Figure 3 algorithm. Every
// operation honours its context: cancellation propagates down to the
// individual cloud RPCs and surfaces as ctx.Err().
type VersionedStore interface {
	// WriteVersion durably stores data as the version of fileID whose
	// contents hash to hash.
	WriteVersion(ctx context.Context, fileID, hash string, data []byte) error
	// ReadVersion returns the data of the given version, or
	// ErrVersionNotFound if it is not (yet) visible.
	ReadVersion(ctx context.Context, fileID, hash string) ([]byte, error)
	// DeleteVersion removes the version (used by garbage collection).
	DeleteVersion(ctx context.Context, fileID, hash string) error
	// ListVersions lists the hashes currently stored for fileID.
	ListVersions(ctx context.Context, fileID string) ([]string, error)
	// Name identifies the backend for diagnostics ("aws", "coc", ...).
	Name() string
}

// StreamWriter is the optional streaming face of a VersionedStore: backends
// that implement it can consume a version's contents from a reader without
// materializing the encoded form, bounding the memory of large writes. The
// hash is the caller-computed SHA-256 of the full contents (SCFS computes it
// when the file is closed); implementations must fail, and clean up, if the
// streamed bytes do not match it.
type StreamWriter interface {
	WriteVersionFrom(ctx context.Context, fileID, hash string, r io.Reader) error
}

// ReaderAtCloser is the random-access view of one stored version served by
// a RangeOpener. ReadAt (the io.ReaderAt face, kept so the view composes
// with io.SectionReader and friends) runs under a background context;
// callers that can be cancelled use ReadAtContext.
type ReaderAtCloser interface {
	io.ReaderAt
	io.Closer
	// ReadAtContext is ReadAt bounded by ctx: the chunk fetches a read
	// triggers observe the context and abort promptly on cancellation.
	ReadAtContext(ctx context.Context, p []byte, off int64) (int, error)
	// Size is the version's total length in bytes.
	Size() int64
}

// RangeOpener is the optional ranged-read face of a VersionedStore:
// backends that implement it serve byte ranges by fetching only the chunks
// covering them, so large-file ReadAt does not pull whole objects.
// OpenVersionAt returns ErrVersionNotFound while the version is not yet
// visible (callers retry per the consistency-anchor loop).
type RangeOpener interface {
	OpenVersionAt(ctx context.Context, fileID, hash string) (ReaderAtCloser, error)
}

// SweepStats summarizes what a batched version sweep reclaimed, in the
// axes of the cloud cost model: bytes (storage fees), objects (the
// per-request fees every surviving object keeps incurring), and the dollars
// the two convert to under the backend's price table. Everything but
// Deleted is a best-effort estimate — a backend that cannot attribute them
// reports zero and only counts Deleted.
type SweepStats struct {
	// Deleted is how many versions were removed.
	Deleted int
	// ReclaimedBytes is the cloud storage freed across providers.
	ReclaimedBytes int64
	// ReclaimedObjects is how many cloud objects were removed; chunked
	// versions count one object per chunk per charged cloud, which is why a
	// byte count alone under-weighs them.
	ReclaimedObjects int64
	// ReclaimedDollars is the recurring storage spend, in $/month, the
	// deleted versions stop accruing (priced by the backend's rate table).
	ReclaimedDollars float64
}

// VersionSweeper is the optional batched delete face of a VersionedStore,
// used by the garbage collector: batch maps fileID to the version hashes to
// remove.
type VersionSweeper interface {
	DeleteVersionsBatch(ctx context.Context, batch map[string][]string) SweepStats
}

// VersionFootprint estimates the cloud-side cost of storing one version:
// bytes across the charged clouds, objects created, the request counts of
// its lifecycle, and the dollars those convert to under the backend's price
// table. It mirrors depsky.Footprint at the storage abstraction so the
// agent can meter cost pressure — and report spend — without knowing the
// backend.
type VersionFootprint struct {
	Bytes              int64
	Objects            int64
	PutRequests        int64
	GetRequestsPerRead int64
	DeleteRequests     int64
	// Dollars is the priced lifecycle of the version (recurring storage,
	// one-time upload, per-read and reclamation charges).
	Dollars pricing.Estimate
}

// VersionCoster is the optional cost-estimation face of a VersionedStore:
// it predicts the footprint a version of the given size would have,
// streamed selecting the chunked layout (one cloud object per chunk) versus
// the whole-object one. The agent feeds the estimate into its
// garbage-collection trigger so request-fee pressure (many small chunks)
// can start a collection even when byte pressure alone would not.
type VersionCoster interface {
	EstimateVersionFootprint(size int64, streamed bool) VersionFootprint
}

// --- single-cloud backend ---

// SingleCloud stores each version as one object named "<fileID>/<hash>" in a
// single provider (the S3 backend of SCFS-AWS, also used by the S3FS/S3QL
// baselines).
type SingleCloud struct {
	store cloud.ObjectStore
	// Encrypt enables client-side encryption with a per-agent key. The
	// paper's AWS backend stores plaintext (confidentiality requires the CoC
	// backend or trusting the provider); encryption is optional here.
	key []byte
	// rates prices the provider for footprint estimates; defaults to the
	// bundled table's card for the store's provider name.
	rates pricing.Rates
}

// NewSingleCloud creates a single-cloud backend. If encrypt is true a random
// agent key is generated and used for all versions.
func NewSingleCloud(store cloud.ObjectStore, encrypt bool) (*SingleCloud, error) {
	sc := &SingleCloud{store: store, rates: pricing.DefaultTable().For(store.Provider())}
	if encrypt {
		key, err := seccrypto.NewKey()
		if err != nil {
			return nil, err
		}
		sc.key = key
	}
	return sc, nil
}

// SetRates replaces the price card used for footprint estimates (mounts
// with a custom pricing table).
func (s *SingleCloud) SetRates(r pricing.Rates) { s.rates = r }

// Name implements VersionedStore.
func (s *SingleCloud) Name() string { return "single:" + s.store.Provider() }

func versionObject(fileID, hash string) string { return fileID + "/" + hash }

// WriteVersion implements VersionedStore.
func (s *SingleCloud) WriteVersion(ctx context.Context, fileID, hash string, data []byte) error {
	payload := data
	if s.key != nil {
		enc, err := seccrypto.Encrypt(s.key, data)
		if err != nil {
			return err
		}
		payload = enc
	}
	return s.store.Put(ctx, versionObject(fileID, hash), payload)
}

// ReadVersion implements VersionedStore.
func (s *SingleCloud) ReadVersion(ctx context.Context, fileID, hash string) ([]byte, error) {
	payload, err := s.store.Get(ctx, versionObject(fileID, hash))
	if errors.Is(err, cloud.ErrNotFound) {
		return nil, ErrVersionNotFound
	}
	if err != nil {
		return nil, err
	}
	data := payload
	if s.key != nil {
		dec, err := seccrypto.Decrypt(s.key, payload)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrIntegrity, err)
		}
		data = dec
	}
	if !seccrypto.VerifyHash(data, hash) {
		return nil, ErrIntegrity
	}
	return data, nil
}

// DeleteVersion implements VersionedStore.
func (s *SingleCloud) DeleteVersion(ctx context.Context, fileID, hash string) error {
	return s.store.Delete(ctx, versionObject(fileID, hash))
}

// ListVersions implements VersionedStore.
func (s *SingleCloud) ListVersions(ctx context.Context, fileID string) ([]string, error) {
	objs, err := s.store.List(ctx, fileID+"/")
	if err != nil {
		return nil, err
	}
	hashes := make([]string, 0, len(objs))
	for _, o := range objs {
		hashes = append(hashes, o.Name[len(fileID)+1:])
	}
	return hashes, nil
}

// DeleteVersionsBatch implements VersionSweeper: single-cloud versions are
// addressed directly by name, so the sweep is just bounded-parallel deletes
// (one object per version; reclaimed bytes are not attributed).
func (s *SingleCloud) DeleteVersionsBatch(ctx context.Context, batch map[string][]string) SweepStats {
	var stats SweepStats
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, sweepConcurrency)
	for fileID, hashes := range batch {
		for _, hash := range hashes {
			wg.Add(1)
			go func(fileID, hash string) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if s.store.Delete(ctx, versionObject(fileID, hash)) == nil {
					mu.Lock()
					stats.Deleted++
					stats.ReclaimedObjects++
					mu.Unlock()
				}
			}(fileID, hash)
		}
	}
	wg.Wait()
	return stats
}

// EstimateVersionFootprint implements VersionCoster: a single-cloud version
// is always one object, whatever its size.
func (s *SingleCloud) EstimateVersionFootprint(size int64, streamed bool) VersionFootprint {
	return VersionFootprint{
		Bytes: size, Objects: 1, PutRequests: 1, GetRequestsPerRead: 1, DeleteRequests: 1,
		Dollars: pricing.Estimate{
			StoragePerMonth: s.rates.StorageCost(size),
			UploadOnce:      s.rates.PutCost(size),
			ReadOnce:        s.rates.GetCost(size),
			DeleteOnce:      s.rates.DeleteRequest,
		},
	}
}

// Underlying exposes the wrapped object store (used by the ACL propagation
// path of setfacl).
func (s *SingleCloud) Underlying() cloud.ObjectStore { return s.store }

// --- cloud-of-clouds backend ---

// CloudOfClouds stores versions through a DepSky manager: each file is a
// DepSky data unit and each SCFS version is a DepSky version located via
// ReadMatching (read-by-hash).
type CloudOfClouds struct {
	mgr *depsky.Manager
}

// NewCloudOfClouds wraps a DepSky manager.
func NewCloudOfClouds(mgr *depsky.Manager) *CloudOfClouds {
	return &CloudOfClouds{mgr: mgr}
}

// Name implements VersionedStore.
func (c *CloudOfClouds) Name() string { return "coc" }

// Manager exposes the underlying DepSky manager.
func (c *CloudOfClouds) Manager() *depsky.Manager { return c.mgr }

// WriteVersion implements VersionedStore.
func (c *CloudOfClouds) WriteVersion(ctx context.Context, fileID, hash string, data []byte) error {
	info, err := c.mgr.Write(ctx, fileID, data)
	if err != nil {
		return err
	}
	if info.DataHash != hash {
		return fmt.Errorf("%w: wrote hash %s, expected %s", ErrIntegrity, info.DataHash, hash)
	}
	return nil
}

// ReadVersion implements VersionedStore.
func (c *CloudOfClouds) ReadVersion(ctx context.Context, fileID, hash string) ([]byte, error) {
	data, _, err := c.mgr.ReadMatching(ctx, fileID, hash)
	if errors.Is(err, depsky.ErrVersionNotFound) || errors.Is(err, depsky.ErrUnitNotFound) {
		return nil, ErrVersionNotFound
	}
	if err != nil {
		return nil, err
	}
	if !seccrypto.VerifyHash(data, hash) {
		return nil, ErrIntegrity
	}
	return data, nil
}

// DeleteVersion implements VersionedStore.
func (c *CloudOfClouds) DeleteVersion(ctx context.Context, fileID, hash string) error {
	versions, err := c.mgr.ListVersions(ctx, fileID)
	if err != nil {
		return err
	}
	for _, v := range versions {
		if v.DataHash == hash {
			return c.mgr.DeleteVersion(ctx, fileID, v.Number)
		}
	}
	return nil
}

// ListVersions implements VersionedStore.
func (c *CloudOfClouds) ListVersions(ctx context.Context, fileID string) ([]string, error) {
	versions, err := c.mgr.ListVersions(ctx, fileID)
	if err != nil {
		return nil, err
	}
	hashes := make([]string, 0, len(versions))
	for _, v := range versions {
		hashes = append(hashes, v.DataHash)
	}
	return hashes, nil
}

// WriteVersionFrom implements StreamWriter: the contents are chunked,
// encoded and uploaded through the DepSky streaming pipeline, so only a
// bounded window of chunks is resident regardless of the version size. The
// stream hash is computed on the fly; a mismatch with the caller's hash
// deletes the half-anchored version before failing.
func (c *CloudOfClouds) WriteVersionFrom(ctx context.Context, fileID, hash string, r io.Reader) error {
	info, err := c.mgr.WriteFrom(ctx, fileID, r)
	if err != nil {
		return err
	}
	if info.DataHash != hash {
		_ = c.mgr.DeleteVersion(ctx, fileID, info.Number)
		return fmt.Errorf("%w: wrote hash %s, expected %s", ErrIntegrity, info.DataHash, hash)
	}
	return nil
}

// OpenVersionAt implements RangeOpener: reads fetch (and under faults
// reconstruct) only the chunks covering the requested range. Versions that
// cannot be served by genuinely ranged fetches — the v1 whole-object
// layout, or chunked metadata that is not quorum-certified — return an
// error so the agent falls back to the whole-object path, which verifies
// the full value hash and populates its caches.
func (c *CloudOfClouds) OpenVersionAt(ctx context.Context, fileID, hash string) (ReaderAtCloser, error) {
	r, _, err := c.mgr.OpenRangedMatching(ctx, fileID, hash)
	if errors.Is(err, depsky.ErrVersionNotFound) || errors.Is(err, depsky.ErrUnitNotFound) {
		return nil, ErrVersionNotFound
	}
	if err != nil {
		return nil, err
	}
	return r, nil
}

// sweepConcurrency bounds the per-file fan-out of DeleteVersionsBatch.
const sweepConcurrency = 4

// DeleteVersionsBatch implements VersionSweeper: one batched metadata sweep
// resolves every hash to its version number, then each file's versions are
// deleted with a single metadata round trip. The reclaimed footprint is
// computed from the version metadata the sweep already fetched, so chunked
// versions are credited with every chunk object they free.
//
// The per-file deletions are issued in descending dollars-per-byte order:
// a version whose spend is dominated by per-object fees (many small chunks)
// reclaims more money per byte than a big cheap blob, so when the sweep is
// cut short — context cancelled, unmount, provider outage — the dollars
// already reclaimed are maximal for the work done.
func (c *CloudOfClouds) DeleteVersionsBatch(ctx context.Context, batch map[string][]string) SweepStats {
	fileIDs := make([]string, 0, len(batch))
	for fileID := range batch {
		fileIDs = append(fileIDs, fileID)
	}
	meta := c.mgr.ReadMetadataBatch(ctx, fileIDs)

	type sweepJob struct {
		fileID  string
		numbers []uint64
		doomed  depsky.Footprint
		dollars float64 // $/month the job stops accruing (reported)
		value   float64 // ranking value, see below
	}
	jobs := make([]sweepJob, 0, len(batch))
	for fileID, hashes := range batch {
		versions := meta[fileID]
		if len(versions) == 0 {
			continue
		}
		byHash := make(map[string]depsky.VersionInfo, len(versions))
		for _, v := range versions {
			byHash[v.DataHash] = v
		}
		job := sweepJob{fileID: fileID}
		for _, h := range hashes {
			if v, ok := byHash[h]; ok {
				job.numbers = append(job.numbers, v.Number)
				job.doomed.Add(c.mgr.VersionFootprint(v))
				est := c.mgr.VersionCost(v)
				job.dollars += est.StoragePerMonth
				// The ranking value needs an axis that is NOT simply
				// proportional to bytes (recurring storage alone is — every
				// job would tie). ReadOnce's per-object GET fees scale with
				// the chunk count, so a fee-heavy chunked version outranks
				// a big cheap blob of equal byte footprint.
				job.value += est.StoragePerMonth + est.ReadOnce
			}
		}
		if len(job.numbers) > 0 {
			jobs = append(jobs, job)
		}
	}
	// Rank by estimated reclaim value per byte, fee-dominated reclamations
	// first (zero bytes with nonzero value is pure request-fee relief).
	perByte := func(j sweepJob) float64 {
		if j.doomed.Bytes <= 0 {
			if j.value > 0 {
				return math.Inf(1)
			}
			return 0
		}
		return j.value / float64(j.doomed.Bytes)
	}
	sort.SliceStable(jobs, func(a, b int) bool { return perByte(jobs[a]) > perByte(jobs[b]) })

	var stats SweepStats
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, sweepConcurrency)
	for _, job := range jobs {
		if ctx.Err() != nil {
			break
		}
		// Acquire the slot before spawning so jobs are issued in rank order
		// even under the bounded concurrency.
		sem <- struct{}{}
		wg.Add(1)
		go func(job sweepJob) {
			defer wg.Done()
			defer func() { <-sem }()
			if n, err := c.mgr.DeleteVersions(ctx, job.fileID, job.numbers); err == nil {
				mu.Lock()
				stats.Deleted += n
				if n == len(job.numbers) {
					stats.ReclaimedBytes += job.doomed.Bytes
					stats.ReclaimedObjects += job.doomed.Objects
					stats.ReclaimedDollars += job.dollars
				}
				mu.Unlock()
			}
		}(job)
	}
	wg.Wait()
	return stats
}

// EstimateVersionFootprint implements VersionCoster by delegating to the
// DepSky cost model (see depsky.Footprint and the dollar view in
// depsky/cost.go).
func (c *CloudOfClouds) EstimateVersionFootprint(size int64, streamed bool) VersionFootprint {
	fp := c.mgr.EstimateFootprint(size, streamed)
	return VersionFootprint{
		Bytes:              fp.Bytes,
		Objects:            fp.Objects,
		PutRequests:        fp.PutRequests,
		GetRequestsPerRead: fp.GetRequestsPerRead,
		DeleteRequests:     fp.DeleteRequests,
		Dollars:            c.mgr.EstimateCost(size, streamed),
	}
}

// --- consistency anchor (Figure 3) ---

// AnchorStore is the narrow interface the consistency-anchor algorithm needs
// from the strongly consistent metadata store (the CA): a linearizable map
// from object id to the hash of its current value.
type AnchorStore interface {
	// ReadHash returns the hash currently anchored for id.
	ReadHash(ctx context.Context, id string) (string, error)
	// WriteHash anchors hash as the current version of id.
	WriteHash(ctx context.Context, id, hash string) error
}

// ErrAnchorNotFound is returned by AnchorStore implementations when the id
// has never been written.
var ErrAnchorNotFound = errors.New("storage: anchor not found")

// Composite implements the algorithm of Figure 3: a strongly consistent
// object store built from a consistency anchor (CA) and an
// eventually-consistent storage service (SS).
type Composite struct {
	CA AnchorStore
	SS VersionedStore
	// RetryInterval seeds the backoff between SS read attempts while waiting
	// for an eventually-consistent write to become visible: the pauses grow
	// exponentially from this base with full jitter (resilience.Backoff), so
	// a slow-to-converge SS is polled hard at first and gently later, and
	// concurrent readers waiting on the same write don't poll in lockstep.
	RetryInterval time.Duration
	// MaxRetries bounds the read loop (0 = 100 attempts).
	MaxRetries int
	// Sleep allows tests to intercept the retry pause; defaults to a
	// context-aware sleep that returns early (with ctx.Err()) on
	// cancellation.
	Sleep func(context.Context, time.Duration) error
}

// NewComposite builds a composite store with sensible defaults.
func NewComposite(ca AnchorStore, ss VersionedStore) *Composite {
	return &Composite{CA: ca, SS: ss, RetryInterval: 50 * time.Millisecond, MaxRetries: 100, Sleep: sleepCtx}
}

// sleepCtx is the default retry pause of the consistency-anchor read loop.
func sleepCtx(ctx context.Context, d time.Duration) error {
	return clock.SleepCtx(ctx, clock.Real(), d)
}

// Write implements the WRITE(id, v) algorithm: hash, push to SS, then anchor
// the hash in the CA.
func (c *Composite) Write(ctx context.Context, id string, value []byte) (string, error) {
	h := seccrypto.Hash(value)                                   // w1
	if err := c.SS.WriteVersion(ctx, id, h, value); err != nil { // w2
		return "", fmt.Errorf("storage: composite write to SS: %w", err)
	}
	if err := c.CA.WriteHash(ctx, id, h); err != nil { // w3
		return "", fmt.Errorf("storage: composite write to CA: %w", err)
	}
	return h, nil
}

// Read implements the READ(id) algorithm: get the anchored hash, then fetch
// from the SS until the matching version is visible, verifying integrity.
// Cancelling ctx stops the retry loop promptly with ctx.Err().
func (c *Composite) Read(ctx context.Context, id string) ([]byte, error) {
	h, err := c.CA.ReadHash(ctx, id) // r1
	if err != nil {
		return nil, err
	}
	maxRetries := c.MaxRetries
	if maxRetries <= 0 {
		maxRetries = 100
	}
	sleep := c.Sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	backoff := resilience.Backoff{Base: c.RetryInterval}
	for attempt := 0; attempt < maxRetries; attempt++ { // r2
		value, err := c.SS.ReadVersion(ctx, id, h)
		if err == nil {
			return value, nil // r3 (hash verified by the SS implementations)
		}
		if !errors.Is(err, ErrVersionNotFound) {
			return nil, err
		}
		if err := sleep(ctx, backoff.Delay(attempt)); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("storage: composite read of %q: %w after %d attempts", id, ErrVersionNotFound, maxRetries)
}
