package fsapi

import (
	"bytes"
	"context"
	"errors"
	"io"
	"io/fs"
	"testing"
)

var bg = context.Background()

func TestOpenFlagPredicates(t *testing.T) {
	cases := []struct {
		flags    OpenFlag
		writable bool
		readable bool
	}{
		{ReadOnly, false, true},
		{ReadWrite, true, true},
		{WriteOnly, true, false},
		{ReadWrite | Create, true, true},
		{ReadOnly | Create, true, true},
		{ReadWrite | Truncate, true, true},
	}
	for _, c := range cases {
		if got := c.flags.Writable(); got != c.writable {
			t.Errorf("Writable(%b) = %v, want %v", c.flags, got, c.writable)
		}
		if got := c.flags.Readable(); got != c.readable {
			t.Errorf("Readable(%b) = %v, want %v", c.flags, got, c.readable)
		}
	}
}

func TestFileTypeString(t *testing.T) {
	if TypeFile.String() != "file" || TypeDir.String() != "dir" || TypeSymlink.String() != "symlink" {
		t.Fatal("unexpected FileType strings")
	}
}

func TestFileInfoIsDir(t *testing.T) {
	if (FileInfo{Type: TypeFile}).IsDir() {
		t.Fatal("file reported as dir")
	}
	if !(FileInfo{Type: TypeDir}).IsDir() {
		t.Fatal("dir not reported as dir")
	}
}

// TestSentinelErrorsMapOntoStdlib pins the io/fs interop contract: the
// fsapi sentinels with a standard-library counterpart must satisfy
// errors.Is against it (so facade users never need to import fsapi), and
// the ones without a counterpart must not accidentally match any.
func TestSentinelErrorsMapOntoStdlib(t *testing.T) {
	stdlib := []error{fs.ErrNotExist, fs.ErrExist, fs.ErrPermission, fs.ErrClosed, fs.ErrInvalid}
	cases := []struct {
		name string
		err  error
		std  error // nil = must match no stdlib sentinel
	}{
		{"ErrNotExist", ErrNotExist, fs.ErrNotExist},
		{"ErrExist", ErrExist, fs.ErrExist},
		{"ErrPermission", ErrPermission, fs.ErrPermission},
		{"ErrClosed", ErrClosed, fs.ErrClosed},
		{"ErrInvalid", ErrInvalid, fs.ErrInvalid},
		{"ErrIsDir", ErrIsDir, nil},
		{"ErrNotDir", ErrNotDir, nil},
		{"ErrNotEmpty", ErrNotEmpty, nil},
		{"ErrLocked", ErrLocked, nil},
		{"ErrReadOnly", ErrReadOnly, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, std := range stdlib {
				want := c.std != nil && errors.Is(c.std, std)
				if got := errors.Is(c.err, std); got != want {
					t.Errorf("errors.Is(%v, %v) = %v, want %v", c.err, std, got, want)
				}
			}
			// Wrapping must survive another layer, as returned by real call
			// sites (fmt.Errorf with %w).
			if c.std != nil {
				wrapped := wrapFor(t, c.err)
				if !errors.Is(wrapped, c.std) {
					t.Errorf("wrapped %v does not match %v", c.err, c.std)
				}
				if !errors.Is(wrapped, c.err) {
					t.Errorf("wrapped %v does not match itself", c.err)
				}
			}
		})
	}
}

// wrapFor simulates a call site annotating a sentinel.
func wrapFor(t *testing.T, err error) error {
	t.Helper()
	return &wrapErr{inner: err}
}

type wrapErr struct{ inner error }

func (w *wrapErr) Error() string { return "op failed: " + w.inner.Error() }
func (w *wrapErr) Unwrap() error { return w.inner }

func TestSentinelErrorsAreDistinct(t *testing.T) {
	errs := []error{ErrNotExist, ErrExist, ErrIsDir, ErrNotDir, ErrNotEmpty, ErrPermission, ErrLocked, ErrReadOnly, ErrClosed, ErrInvalid}
	for i, a := range errs {
		for j, b := range errs {
			if i != j && errors.Is(a, b) {
				t.Fatalf("errors %d and %d are not distinct", i, j)
			}
		}
	}
}

// --- convenience-helper tests over a minimal in-memory file system ---

type fakeFS struct {
	files map[string][]byte
	// maxReadAt records the largest single ReadAt/WriteAt request observed,
	// so tests can assert the helpers chunk their IO.
	maxOp int
}

type fakeHandle struct {
	fs   *fakeFS
	path string
}

func (f *fakeFS) Open(_ context.Context, path string, flags OpenFlag) (Handle, error) {
	_, ok := f.files[path]
	if !ok {
		if flags&Create == 0 {
			return nil, ErrNotExist
		}
		f.files[path] = nil
	}
	if flags&Truncate != 0 {
		f.files[path] = nil
	}
	return &fakeHandle{fs: f, path: path}, nil
}

func (f *fakeFS) Mkdir(context.Context, string) error                       { return nil }
func (f *fakeFS) Rmdir(context.Context, string) error                       { return nil }
func (f *fakeFS) Unlink(context.Context, string) error                      { return nil }
func (f *fakeFS) Rename(context.Context, string, string) error              { return nil }
func (f *fakeFS) Stat(context.Context, string) (FileInfo, error)            { return FileInfo{}, ErrNotExist }
func (f *fakeFS) ReadDir(context.Context, string) ([]FileInfo, error)       { return nil, nil }
func (f *fakeFS) SetFacl(context.Context, string, string, Permission) error { return nil }
func (f *fakeFS) GetFacl(context.Context, string) ([]ACLEntry, error)       { return nil, nil }
func (f *fakeFS) Unmount(context.Context) error                             { return nil }

func (h *fakeHandle) ReadAt(_ context.Context, p []byte, off int64) (int, error) {
	if len(p) > h.fs.maxOp {
		h.fs.maxOp = len(p)
	}
	data := h.fs.files[h.path]
	if off >= int64(len(data)) {
		return 0, io.EOF
	}
	n := copy(p, data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *fakeHandle) WriteAt(_ context.Context, p []byte, off int64) (int, error) {
	if len(p) > h.fs.maxOp {
		h.fs.maxOp = len(p)
	}
	data := h.fs.files[h.path]
	if end := off + int64(len(p)); end > int64(len(data)) {
		grown := make([]byte, end)
		copy(grown, data)
		data = grown
	}
	copy(data[off:], p)
	h.fs.files[h.path] = data
	return len(p), nil
}

func (h *fakeHandle) Truncate(context.Context, int64) error { return nil }
func (h *fakeHandle) Fsync(context.Context) error           { return nil }
func (h *fakeHandle) Close(context.Context) error           { return nil }
func (h *fakeHandle) Stat(context.Context) (FileInfo, error) {
	return FileInfo{Path: h.path, Size: int64(len(h.fs.files[h.path]))}, nil
}

func TestHelpersChunkLargeFiles(t *testing.T) {
	fs := &fakeFS{files: make(map[string][]byte)}
	big := make([]byte, 2*StreamChunkSize+12345)
	for i := range big {
		big[i] = byte(i * 7)
	}
	if err := WriteFile(bg, fs, "/big", big); err != nil {
		t.Fatal(err)
	}
	if fs.maxOp > StreamChunkSize {
		t.Fatalf("WriteFile issued a %d-byte op, want <= %d", fs.maxOp, StreamChunkSize)
	}
	got, err := ReadFile(bg, fs, "/big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("chunked round trip mismatch")
	}
	if fs.maxOp > StreamChunkSize {
		t.Fatalf("ReadFile issued a %d-byte op, want <= %d", fs.maxOp, StreamChunkSize)
	}
	// Small files still round-trip.
	if err := WriteFile(bg, fs, "/small", []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadFile(bg, fs, "/small"); err != nil || string(got) != "tiny" {
		t.Fatalf("small round trip: %q, %v", got, err)
	}
	if got, err := ReadFile(bg, fs, "/empty-missing"); err == nil {
		t.Fatalf("missing file read returned %d bytes", len(got))
	}
	if err := WriteFile(bg, fs, "/empty", nil); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadFile(bg, fs, "/empty"); err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v, %v", got, err)
	}
}

func TestStreamingHelpers(t *testing.T) {
	fs := &fakeFS{files: make(map[string][]byte)}
	big := make([]byte, StreamChunkSize+999)
	for i := range big {
		big[i] = byte(i * 13)
	}
	n, err := WriteFileFrom(bg, fs, "/s", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(big)) {
		t.Fatalf("WriteFileFrom wrote %d bytes", n)
	}
	var out bytes.Buffer
	n, err = ReadFileTo(bg, fs, "/s", &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(big)) || !bytes.Equal(out.Bytes(), big) {
		t.Fatalf("ReadFileTo copied %d bytes, match=%v", n, bytes.Equal(out.Bytes(), big))
	}
	// Empty stream.
	if n, err := WriteFileFrom(bg, fs, "/e", bytes.NewReader(nil)); err != nil || n != 0 {
		t.Fatalf("empty WriteFileFrom: %d, %v", n, err)
	}
	var empty bytes.Buffer
	if n, err := ReadFileTo(bg, fs, "/e", &empty); err != nil || n != 0 {
		t.Fatalf("empty ReadFileTo: %d, %v", n, err)
	}
}
