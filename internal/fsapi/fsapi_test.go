package fsapi

import (
	"errors"
	"testing"
)

func TestOpenFlagPredicates(t *testing.T) {
	cases := []struct {
		flags    OpenFlag
		writable bool
		readable bool
	}{
		{ReadOnly, false, true},
		{ReadWrite, true, true},
		{WriteOnly, true, false},
		{ReadWrite | Create, true, true},
		{ReadOnly | Create, true, true},
		{ReadWrite | Truncate, true, true},
	}
	for _, c := range cases {
		if got := c.flags.Writable(); got != c.writable {
			t.Errorf("Writable(%b) = %v, want %v", c.flags, got, c.writable)
		}
		if got := c.flags.Readable(); got != c.readable {
			t.Errorf("Readable(%b) = %v, want %v", c.flags, got, c.readable)
		}
	}
}

func TestFileTypeString(t *testing.T) {
	if TypeFile.String() != "file" || TypeDir.String() != "dir" || TypeSymlink.String() != "symlink" {
		t.Fatal("unexpected FileType strings")
	}
}

func TestFileInfoIsDir(t *testing.T) {
	if (FileInfo{Type: TypeFile}).IsDir() {
		t.Fatal("file reported as dir")
	}
	if !(FileInfo{Type: TypeDir}).IsDir() {
		t.Fatal("dir not reported as dir")
	}
}

func TestSentinelErrorsAreDistinct(t *testing.T) {
	errs := []error{ErrNotExist, ErrExist, ErrIsDir, ErrNotDir, ErrNotEmpty, ErrPermission, ErrLocked, ErrReadOnly, ErrClosed, ErrInvalid}
	for i, a := range errs {
		for j, b := range errs {
			if i != j && errors.Is(a, b) {
				t.Fatalf("errors %d and %d are not distinct", i, j)
			}
		}
	}
}
