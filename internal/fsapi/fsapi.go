// Package fsapi defines the POSIX-like virtual file-system interface exposed
// by the SCFS agent and by the baseline file systems used in the evaluation
// (S3FS-like, S3QL-like, LocalFS). In the paper this boundary is the FUSE-J
// layer; here it is an in-process Go interface so workloads can replay the
// exact same system-call sequences against every file system under test.
package fsapi

import (
	"context"
	"errors"
	"io"
	"io/fs"
	"time"
)

// OpenFlag mirrors the subset of POSIX open(2) flags SCFS cares about.
type OpenFlag int

const (
	// ReadOnly opens the file for reading.
	ReadOnly OpenFlag = 1 << iota
	// WriteOnly opens the file for writing.
	WriteOnly
	// ReadWrite opens the file for reading and writing.
	ReadWrite
	// Create creates the file if it does not exist.
	Create
	// Truncate truncates the file to zero length on open.
	Truncate
	// Exclusive makes Create fail if the file already exists.
	Exclusive
)

// Writable reports whether the flag set requests write access.
func (f OpenFlag) Writable() bool {
	return f&(WriteOnly|ReadWrite|Create|Truncate) != 0
}

// Readable reports whether the flag set requests read access.
func (f OpenFlag) Readable() bool {
	return f&WriteOnly == 0 || f&ReadWrite != 0
}

// FileType distinguishes the kinds of namespace entries.
type FileType int

const (
	// TypeFile is a regular file.
	TypeFile FileType = iota
	// TypeDir is a directory.
	TypeDir
	// TypeSymlink is a symbolic link.
	TypeSymlink
)

// String implements fmt.Stringer.
func (t FileType) String() string {
	switch t {
	case TypeDir:
		return "dir"
	case TypeSymlink:
		return "symlink"
	default:
		return "file"
	}
}

// FileInfo describes a namespace entry, as returned by Stat and ReadDir.
type FileInfo struct {
	// Path is the absolute path inside the mount.
	Path string
	// Name is the final path element.
	Name string
	// Type tells files, directories and symlinks apart.
	Type FileType
	// Size is the file length in bytes (0 for directories).
	Size int64
	// ModTime is the last modification time.
	ModTime time.Time
	// Owner is the user that created the entry.
	Owner string
	// Shared reports whether the entry has ACL grants beyond its owner.
	Shared bool
}

// IsDir is a convenience accessor.
func (fi FileInfo) IsDir() bool { return fi.Type == TypeDir }

// Permission is what an ACL entry grants.
type Permission int

const (
	// PermNone revokes access.
	PermNone Permission = iota
	// PermRead grants read access.
	PermRead
	// PermReadWrite grants read and write access.
	PermReadWrite
)

// ACLEntry grants a permission to a user.
type ACLEntry struct {
	User string
	Perm Permission
}

// Sentinel errors returned by FileSystem implementations. The ones with a
// standard-library counterpart wrap it, so facade users can test with
// errors.Is(err, fs.ErrNotExist) (or os.IsNotExist-style helpers built on
// it) without importing this package.
var (
	ErrNotExist   error = &wrappedSentinel{msg: "fsapi: no such file or directory", std: fs.ErrNotExist}
	ErrExist      error = &wrappedSentinel{msg: "fsapi: file already exists", std: fs.ErrExist}
	ErrIsDir            = errors.New("fsapi: is a directory")
	ErrNotDir           = errors.New("fsapi: not a directory")
	ErrNotEmpty         = errors.New("fsapi: directory not empty")
	ErrPermission error = &wrappedSentinel{msg: "fsapi: permission denied", std: fs.ErrPermission}
	ErrLocked           = errors.New("fsapi: file is locked by another client")
	ErrReadOnly         = errors.New("fsapi: file opened read-only")
	ErrClosed     error = &wrappedSentinel{msg: "fsapi: handle already closed", std: fs.ErrClosed}
	ErrInvalid    error = &wrappedSentinel{msg: "fsapi: invalid argument", std: fs.ErrInvalid}
)

// wrappedSentinel is a sentinel error chained onto its io/fs counterpart:
// errors.Is matches both the fsapi identity and the standard one.
type wrappedSentinel struct {
	msg string
	std error
}

// Error implements error.
func (e *wrappedSentinel) Error() string { return e.msg }

// Unwrap chains the sentinel onto the standard-library error.
func (e *wrappedSentinel) Unwrap() error { return e.std }

// Handle is an open file. Reads and writes operate on the in-memory copy of
// the file (SCFS caches whole files while they are open); durability follows
// the level requested by the call, per Table 1 of the paper: Write is level
// 0 (memory), Fsync is level 1 (local disk), Close is level 2/3 (cloud).
//
// Every method takes a context. Most memory-backed operations never block,
// but the ones that can reach the network — ReadAt through a ranged cloud
// reader, Close flushing to the cloud in blocking mode — abort promptly
// with ctx.Err() when the context is cancelled, down to the individual
// per-cloud RPCs of a quorum fan-out.
type Handle interface {
	// ReadAt reads len(p) bytes starting at offset off.
	ReadAt(ctx context.Context, p []byte, off int64) (int, error)
	// WriteAt writes p at offset off, extending the file as needed.
	WriteAt(ctx context.Context, p []byte, off int64) (int, error)
	// Truncate resizes the open file.
	Truncate(ctx context.Context, size int64) error
	// Fsync flushes the current contents to the local disk (durability
	// level 1).
	Fsync(ctx context.Context) error
	// Close flushes to the cloud backend according to the file system's mode
	// (durability level 2 or 3) and releases any lock held. A cancelled
	// Close leaves the handle closed but the version unanchored: the
	// metadata visible to other clients never references a version whose
	// upload did not complete.
	Close(ctx context.Context) error
	// Stat returns the current metadata of the open file.
	Stat(ctx context.Context) (FileInfo, error)
}

// FileSystem is the POSIX-like API shared by SCFS and all baselines. All
// paths are absolute ("/docs/report.odt"). Implementations must be safe for
// concurrent use.
//
// The context passed to each call bounds that call only: cancelling it
// returns ctx.Err() promptly (even with a multi-second straggler cloud in
// the quorum) and aborts the per-cloud RPCs issued on the call's behalf.
type FileSystem interface {
	// Open opens (or with Create, creates) a file.
	Open(ctx context.Context, path string, flags OpenFlag) (Handle, error)
	// Mkdir creates a directory (parents must exist).
	Mkdir(ctx context.Context, path string) error
	// Rmdir removes an empty directory.
	Rmdir(ctx context.Context, path string) error
	// Unlink removes a file.
	Unlink(ctx context.Context, path string) error
	// Rename moves a file or directory (and its subtree).
	Rename(ctx context.Context, oldPath, newPath string) error
	// Stat returns metadata for a path.
	Stat(ctx context.Context, path string) (FileInfo, error)
	// ReadDir lists a directory.
	ReadDir(ctx context.Context, path string) ([]FileInfo, error)
	// SetFacl grants or revokes a user's permission on a path (setfacl).
	SetFacl(ctx context.Context, path, user string, perm Permission) error
	// GetFacl returns the ACL entries of a path (getfacl).
	GetFacl(ctx context.Context, path string) ([]ACLEntry, error)
	// Unmount flushes all state and releases resources.
	Unmount(ctx context.Context) error
}

// StreamChunkSize is the granularity at which the convenience helpers move
// data through a handle. Matching the streaming data plane's chunk size
// (1 MiB) means a helper read of a lazily-opened large file touches one
// cloud chunk per ReadAt instead of forcing a whole-object fetch.
const StreamChunkSize = 1 << 20

// ReadFile is a convenience helper that opens, reads fully and closes.
// Files larger than one chunk are read in StreamChunkSize pieces, so
// implementations serving ReadAt from ranged cloud reads never materialize
// the whole object on their side.
func ReadFile(ctx context.Context, fsys FileSystem, path string) ([]byte, error) {
	h, err := fsys.Open(ctx, path, ReadOnly)
	if err != nil {
		return nil, err
	}
	defer h.Close(ctx)
	info, err := h.Stat(ctx)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, info.Size)
	var off int64
	for off < info.Size {
		end := off + StreamChunkSize
		if end > info.Size {
			end = info.Size
		}
		n, err := h.ReadAt(ctx, buf[off:end], off)
		off += int64(n)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if n == 0 {
			break
		}
	}
	return buf[:off], nil
}

// WriteFile is a convenience helper that creates/truncates, writes and
// closes. Data larger than one chunk is written in StreamChunkSize pieces.
func WriteFile(ctx context.Context, fsys FileSystem, path string, data []byte) error {
	h, err := fsys.Open(ctx, path, ReadWrite|Create|Truncate)
	if err != nil {
		return err
	}
	for off := 0; off < len(data); off += StreamChunkSize {
		end := off + StreamChunkSize
		if end > len(data) {
			end = len(data)
		}
		if _, err := h.WriteAt(ctx, data[off:end], int64(off)); err != nil {
			h.Close(ctx)
			return err
		}
	}
	return h.Close(ctx)
}

// WriteFileFrom streams r into path in StreamChunkSize pieces and returns
// how many bytes were written. Only one chunk of the stream is buffered by
// the helper at a time.
func WriteFileFrom(ctx context.Context, fsys FileSystem, path string, r io.Reader) (int64, error) {
	h, err := fsys.Open(ctx, path, ReadWrite|Create|Truncate)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, StreamChunkSize)
	var off int64
	for {
		n, rerr := io.ReadFull(r, buf)
		if n > 0 {
			if _, werr := h.WriteAt(ctx, buf[:n], off); werr != nil {
				h.Close(ctx)
				return off, werr
			}
			off += int64(n)
		}
		if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
			break
		}
		if rerr != nil {
			h.Close(ctx)
			return off, rerr
		}
	}
	return off, h.Close(ctx)
}

// ReadFileTo streams the contents of path into w in StreamChunkSize pieces
// and returns how many bytes were copied.
func ReadFileTo(ctx context.Context, fsys FileSystem, path string, w io.Writer) (int64, error) {
	h, err := fsys.Open(ctx, path, ReadOnly)
	if err != nil {
		return 0, err
	}
	defer h.Close(ctx)
	buf := make([]byte, StreamChunkSize)
	var off int64
	for {
		n, rerr := h.ReadAt(ctx, buf, off)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return off, werr
			}
			off += int64(n)
		}
		if rerr == io.EOF {
			return off, nil
		}
		if rerr != nil {
			return off, rerr
		}
		if n == 0 {
			return off, nil
		}
	}
}
