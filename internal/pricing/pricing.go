// Package pricing holds per-cloud price tables and converts the byte/object
// footprints metered elsewhere (depsky.Footprint, storage.VersionFootprint,
// cloud.Usage) into dollar estimates.
//
// The paper's cost argument (§4.5) is that a cloud-of-clouds file system is
// only practical if its monetary cost stays comparable to a single cloud:
// DepSky-CA's erasure coding keeps the storage overhead at ~(n-f)/(f+1)x
// instead of nx, and the preferred-quorum machinery keeps the request and
// ingress overhead near the quorum size instead of n. Those arguments are
// about dollars, not bytes — and providers price the axes very differently
// (storage per GB-month, requests per call, egress per GB, ingress usually
// free). This package is the missing conversion layer: a Table of per-cloud
// Rates with realistic bundled defaults for the simulated providers, and the
// arithmetic that turns footprint axes into Estimates the placement engine,
// the garbage collector and the cost reports can rank by.
//
// All dollar amounts are plain float64 US dollars. Estimates are planning
// numbers, not invoices: providers bill with minimums, tiers and regional
// variations this table deliberately flattens.
package pricing

import "scfs/internal/cloud"

// GB is the unit the per-GB rates are quoted against.
const GB = float64(1 << 30)

// Rates is the price card of one cloud provider.
type Rates struct {
	// StorageGBMonth is the $/GB-month charge for resident bytes.
	StorageGBMonth float64
	// PutRequest, GetRequest, DeleteRequest and ListRequest are the $ fees
	// charged per API call (providers quote them per 1k or 10k requests;
	// these are the per-call equivalents).
	PutRequest    float64
	GetRequest    float64
	DeleteRequest float64
	ListRequest   float64
	// EgressPerGB is the $/GB charge for outbound (download) traffic.
	// IngressPerGB is the inbound equivalent — zero at every major provider,
	// kept as a field so asymmetric private deployments can model it.
	EgressPerGB  float64
	IngressPerGB float64
}

// IsZero reports whether the rate card is entirely unset.
func (r Rates) IsZero() bool { return r == Rates{} }

// StorageCost returns the $/month charge for keeping bytes resident.
func (r Rates) StorageCost(bytes int64) float64 {
	return float64(bytes) / GB * r.StorageGBMonth
}

// PutCost returns the one-time charge of uploading one object of the given
// size: the PUT fee plus ingress.
func (r Rates) PutCost(bytes int64) float64 {
	return r.PutRequest + float64(bytes)/GB*r.IngressPerGB
}

// GetCost returns the charge of downloading one object of the given size:
// the GET fee plus egress.
func (r Rates) GetCost(bytes int64) float64 {
	return r.GetRequest + float64(bytes)/GB*r.EgressPerGB
}

// UsageCost prices one account's metered consumption (cloud.Usage) at these
// rates: request fees, transfer charges, and the storage integrated by the
// meter (ByteHours, converted to GB-months).
func (r Rates) UsageCost(u cloud.Usage) float64 {
	const hoursPerMonth = 730
	return float64(u.PutRequests)*r.PutRequest +
		float64(u.GetRequests)*r.GetRequest +
		float64(u.DeleteRequests)*r.DeleteRequest +
		float64(u.ListRequests)*r.ListRequest +
		float64(u.BytesIn)/GB*r.IngressPerGB +
		float64(u.BytesOut)/GB*r.EgressPerGB +
		u.ByteHours/GB/hoursPerMonth*r.StorageGBMonth
}

// Table maps provider names (cloud.ObjectStore.Provider()) to their rate
// cards. The zero Table prices everything with DefaultRates.
type Table struct {
	// ByProvider holds per-provider rate cards.
	ByProvider map[string]Rates
	// Default prices providers absent from ByProvider; when it is zero too,
	// For falls back to DefaultRates so an unconfigured table still yields
	// plausible cross-provider numbers rather than zeros.
	Default Rates
}

// For returns the rate card of one provider.
func (t Table) For(provider string) Rates {
	if r, ok := t.ByProvider[provider]; ok {
		return r
	}
	if !t.Default.IsZero() {
		return t.Default
	}
	return DefaultRates
}

// Resolve returns the rate card of every store, in order. It is how the
// placement engine and the cost model obtain their per-cloud-index view.
func (t Table) Resolve(stores []cloud.ObjectStore) []Rates {
	out := make([]Rates, len(stores))
	for i, s := range stores {
		out[i] = t.For(s.Provider())
	}
	return out
}

// DefaultRates is the generic rate card used for providers with no entry:
// roughly the 2020s price of commodity object storage.
var DefaultRates = Rates{
	StorageGBMonth: 0.023,
	PutRequest:     5e-6,  // $5.00 / 1M
	GetRequest:     4e-7,  // $0.40 / 1M
	DeleteRequest:  0,     // free at every major provider
	ListRequest:    5e-6,  // billed like writes
	EgressPerGB:    0.09,
}

// DefaultTable returns the bundled price table for the simulated providers
// of internal/cloudsim (the paper's four-cloud setup), keyed by their
// profile names. The numbers are realistic publicly listed prices for the
// providers' standard storage classes, flattened to one region and no
// volume tiers; they are intended to preserve the ratios that make
// placement interesting (Rackspace bills no request fees but the highest
// per-GB storage; Azure is the cheapest store; egress is 10-300x the
// per-request cost for medium objects).
func DefaultTable() Table {
	return Table{
		ByProvider: map[string]Rates{
			"amazon-s3": {
				StorageGBMonth: 0.023,
				PutRequest:     5e-6,
				GetRequest:     4e-7,
				ListRequest:    5e-6,
				EgressPerGB:    0.09,
			},
			"azure-blob": {
				StorageGBMonth: 0.0184,
				PutRequest:     6.5e-6,
				GetRequest:     5e-7,
				ListRequest:    6.5e-6,
				EgressPerGB:    0.087,
			},
			"google-storage": {
				StorageGBMonth: 0.020,
				PutRequest:     5e-6, // class A op
				GetRequest:     4e-7, // class B op
				ListRequest:    5e-6,
				EgressPerGB:    0.12,
			},
			"rackspace-files": {
				StorageGBMonth: 0.10,
				// Rackspace Cloud Files billed no per-request fees.
				EgressPerGB: 0.12,
			},
			// The zero-latency test profile is free: unit tests that meter
			// dollars opt in with explicit rates.
			"local-null": {},
		},
		Default: DefaultRates,
	}
}

// Estimate is the dollar view of one stored version's lifecycle, the
// counterpart of the byte/object axes in depsky.Footprint.
type Estimate struct {
	// StoragePerMonth is the recurring $/month for keeping the version.
	StoragePerMonth float64
	// UploadOnce is the one-time cost of writing it (PUT fees + ingress
	// across the charged clouds, including the metadata update).
	UploadOnce float64
	// ReadOnce is the cost of one whole read (GET fees + egress at the
	// clouds a read contacts).
	ReadOnce float64
	// DeleteOnce is the cost of reclaiming it (DELETE fees; deletes are
	// best-effort against all clouds).
	DeleteOnce float64
}

// Add accumulates other into e.
func (e *Estimate) Add(other Estimate) {
	e.StoragePerMonth += other.StoragePerMonth
	e.UploadOnce += other.UploadOnce
	e.ReadOnce += other.ReadOnce
	e.DeleteOnce += other.DeleteOnce
}
