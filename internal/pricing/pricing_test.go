package pricing

import (
	"math"
	"testing"

	"scfs/internal/cloud"
	"scfs/internal/cloudsim"
)

func approx(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

func TestRatesArithmetic(t *testing.T) {
	r := Rates{
		StorageGBMonth: 0.02,
		PutRequest:     5e-6,
		GetRequest:     4e-7,
		EgressPerGB:    0.10,
	}
	if got := r.StorageCost(1 << 30); !approx(got, 0.02, 1e-12) {
		t.Fatalf("StorageCost(1GB) = %v", got)
	}
	if got := r.PutCost(1 << 30); !approx(got, 5e-6, 1e-12) {
		t.Fatalf("PutCost(1GB) = %v (ingress is free)", got)
	}
	if got := r.GetCost(1 << 30); !approx(got, 0.10+4e-7, 1e-12) {
		t.Fatalf("GetCost(1GB) = %v", got)
	}
	// A usage of 1000 PUTs, 1000 GETs, 1 GB out, 730 GB-hours resident.
	u := cloud.Usage{PutRequests: 1000, GetRequests: 1000, BytesOut: 1 << 30, ByteHours: 730 * float64(1<<30)}
	want := 1000*5e-6 + 1000*4e-7 + 0.10 + 0.02
	if got := r.UsageCost(u); !approx(got, want, 1e-9) {
		t.Fatalf("UsageCost = %v, want %v", got, want)
	}
}

func TestTableLookupAndFallback(t *testing.T) {
	var zero Table
	if got := zero.For("whatever"); got != DefaultRates {
		t.Fatalf("zero table must price with DefaultRates, got %+v", got)
	}
	tbl := Table{
		ByProvider: map[string]Rates{"a": {StorageGBMonth: 1}},
		Default:    Rates{StorageGBMonth: 2},
	}
	if got := tbl.For("a").StorageGBMonth; got != 1 {
		t.Fatalf("per-provider rate lost: %v", got)
	}
	if got := tbl.For("b").StorageGBMonth; got != 2 {
		t.Fatalf("table default lost: %v", got)
	}
}

// TestDefaultTableCoversSimProfiles keeps the bundled price table in sync
// with the simulated providers: every cloudsim profile name must have an
// explicit rate card (free for the zero-latency test profile, priced for
// the paper's four clouds).
func TestDefaultTableCoversSimProfiles(t *testing.T) {
	tbl := DefaultTable()
	for kind := range cloudsim.DefaultProfiles() {
		if _, ok := tbl.ByProvider[string(kind)]; !ok {
			t.Errorf("no bundled rates for simulated provider %q", kind)
		}
	}
	for _, kind := range cloudsim.CoCKinds() {
		r := tbl.For(string(kind))
		if r.StorageGBMonth <= 0 || r.EgressPerGB <= 0 {
			t.Errorf("%q must have nonzero storage and egress prices: %+v", kind, r)
		}
	}
	if r := tbl.For(string(cloudsim.LocalNull)); !r.IsZero() {
		t.Errorf("the local test profile should be free, got %+v", r)
	}
	// The ratios that make placement interesting: Rackspace bills no
	// request fees but the most expensive storage.
	rs := tbl.For("rackspace-files")
	if rs.PutRequest != 0 || rs.GetRequest != 0 {
		t.Errorf("rackspace-files should bill no request fees: %+v", rs)
	}
	for _, other := range []string{"amazon-s3", "azure-blob", "google-storage"} {
		if tbl.For(other).StorageGBMonth >= rs.StorageGBMonth {
			t.Errorf("%s storage should undercut rackspace-files", other)
		}
	}
}

func TestEstimateAdd(t *testing.T) {
	var e Estimate
	e.Add(Estimate{StoragePerMonth: 1, UploadOnce: 2, ReadOnce: 3, DeleteOnce: 4})
	e.Add(Estimate{StoragePerMonth: 1, UploadOnce: 2, ReadOnce: 3, DeleteOnce: 4})
	if e.StoragePerMonth != 2 || e.UploadOnce != 4 || e.ReadOnce != 6 || e.DeleteOnce != 8 {
		t.Fatalf("Add: %+v", e)
	}
}
