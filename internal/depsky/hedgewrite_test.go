package depsky

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"scfs/internal/cloudsim"
	"scfs/internal/iopolicy"
	"scfs/internal/pricing"
)

// writeHedgeCtx builds a context whose policy hedges writes behind a huge
// delay: with a healthy preferred quorum the spare clouds are never
// contacted, making "the spares got nothing" deterministic.
func writeHedgeCtx(order ...int) context.Context {
	return hedgeCtx(iopolicy.Policy{
		WriteHedge: iopolicy.Hedge{Percentile: 0.9, MinDelay: 10 * time.Second},
		Preference: iopolicy.Preference{Order: order},
	})
}

// TestHedgedWriteSkipsSpares is the headline saving: a hedged write ships
// its shards (and the metadata update) to the preferred n-f quorum only —
// the spare cloud receives no upload bytes and no PUT requests at all.
func TestHedgedWriteSkipsSpares(t *testing.T) {
	rtts := []time.Duration{0, 0, 0, 0}
	m, providers, accounts := hedgeManager(t, rtts, Options{})
	warmTracker(m, rtts)

	data := bytes.Repeat([]byte{0xB4}, 64<<10)
	if _, err := m.Write(writeHedgeCtx(0, 1, 2), "u", data); err != nil {
		t.Fatal(err)
	}
	// Give any stray spare upload a moment to surface.
	time.Sleep(50 * time.Millisecond)
	spare := providers[3].Usage(accounts[3])
	if spare.PutRequests != 0 || spare.BytesIn != 0 {
		t.Fatalf("spare cloud was uploaded to: %d PUTs, %d bytes in", spare.PutRequests, spare.BytesIn)
	}
	for i := 0; i < 3; i++ {
		if u := providers[i].Usage(accounts[i]); u.PutRequests == 0 {
			t.Fatalf("preferred cloud %d received no upload", i)
		}
	}
	// The quorum-only version reads back through the default full fan-out.
	got, _, err := m.Read(bg, "u")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("quorum-only version read back wrong data")
	}
}

// TestHedgedWriteQuorumVersionIsCertified pins the metadata-union math: a
// chunked version whose metadata reached only the preferred n-f clouds must
// still be quorum-certified — the ranged read path (which refuses
// uncertified entries outright) serves it.
func TestHedgedWriteQuorumVersionIsCertified(t *testing.T) {
	rtts := []time.Duration{0, 0, 0, 0}
	m, _, _ := hedgeManager(t, rtts, Options{ChunkSize: 4096})
	warmTracker(m, rtts)

	data := bytes.Repeat([]byte{0x9C}, 6*4096+33)
	info, err := m.WriteFrom(writeHedgeCtx(0, 1, 2), "u", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// OpenRangedMatching returns ErrWholeObjectOnly for anything the merge
	// did not certify; success means f+1 of the n-f metadata responders
	// vouched for the entry.
	r, _, err := m.OpenRangedMatching(bg, "u", info.DataHash)
	if err != nil {
		t.Fatalf("quorum-only version is not certified-readable: %v", err)
	}
	defer r.Close()
	buf := make([]byte, 2*4096)
	if _, err := r.ReadAt(buf, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[4096:3*4096]) {
		t.Fatal("ranged read of quorum-only version returned wrong bytes")
	}
}

// TestHedgedWriteSurvivesFaultWithoutSpares: even when the spares were
// never released, a version on the preferred n-f clouds tolerates f faults
// among them — n-2f = f+1 intact shards remain, which is exactly a decode
// quorum, and the surviving f+1 metadata copies keep the entry certified.
func TestHedgedWriteSurvivesFaultWithoutSpares(t *testing.T) {
	rtts := []time.Duration{0, 0, 0, 0}
	m, providers, _ := hedgeManager(t, rtts, Options{})
	warmTracker(m, rtts)

	data := bytes.Repeat([]byte{0x3D}, 32<<10)
	if _, err := m.Write(writeHedgeCtx(0, 1, 2), "u", data); err != nil {
		t.Fatal(err)
	}
	providers[0].SetFault(cloudsim.FaultUnavailable)
	got, _, err := m.Read(bg, "u")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("wrong data after f faults among the preferred set")
	}
}

// TestHedgedWriteSurvivesFaultAfterSpareRelease drives the full spare
// lifecycle: a slow preferred cloud stalls the quorum past the (clamped)
// hedge delay, the spare is released and completes the quorum, and the
// version then survives f faults among the original preferred set.
func TestHedgedWriteSurvivesFaultAfterSpareRelease(t *testing.T) {
	const slowRTT = 400 * time.Millisecond
	rtts := []time.Duration{0, 0, slowRTT, 0}
	m, providers, accounts := hedgeManager(t, rtts, Options{})
	warmTracker(m, rtts)

	pol := iopolicy.Policy{
		WriteHedge: iopolicy.Hedge{Percentile: 0.9, MaxDelay: 30 * time.Millisecond},
		Preference: iopolicy.Preference{Order: []int{0, 1, 2}},
	}
	data := bytes.Repeat([]byte{0x6E}, 32<<10)
	start := time.Now()
	if _, err := m.Write(hedgeCtx(pol), "u", data); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed >= slowRTT {
		t.Fatalf("write took %v — the spare was never released, the slow preferred cloud gated the quorum", elapsed)
	}
	if u := providers[3].Usage(accounts[3]); u.PutRequests == 0 {
		t.Fatal("spare cloud completed the quorum but received no upload")
	}
	// f faults among the original preferred set: the spare's copy plus the
	// surviving preferred ones must still decode.
	providers[0].SetFault(cloudsim.FaultUnavailable)
	got, _, err := m.Read(bg, "u")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("wrong data after spare release and a preferred fault")
	}
}

// TestHedgedWriteKicksOnPreferredFailure: a failed preferred upload must
// release a spare immediately instead of waiting out the (here enormous)
// hedge delay.
func TestHedgedWriteKicksOnPreferredFailure(t *testing.T) {
	rtts := []time.Duration{0, 0, 0, 0}
	m, providers, _ := hedgeManager(t, rtts, Options{})
	warmTracker(m, rtts)
	providers[1].SetFault(cloudsim.FaultUnavailable)

	data := bytes.Repeat([]byte{0x55}, 16<<10)
	start := time.Now()
	if _, err := m.Write(writeHedgeCtx(0, 1, 2), "u", data); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("write took %v despite the failure kick", elapsed)
	}
	got, _, err := m.Read(bg, "u")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("wrong data after a preferred upload failure")
	}
}

// TestCancelledHedgedWriteLeavesNothingVisible: cancelling a hedged write
// mid-upload must not anchor a version — the unit stays absent (or at its
// previous version) because the metadata is only written after every chunk
// reached its quorum.
func TestCancelledHedgedWriteLeavesNothingVisible(t *testing.T) {
	// Every cloud is slow, so the cancel lands while the preferred uploads
	// are still in flight.
	rtts := []time.Duration{200 * time.Millisecond, 200 * time.Millisecond, 200 * time.Millisecond, 200 * time.Millisecond}
	m, _, _ := hedgeManager(t, rtts, Options{})

	ctx, cancel := context.WithCancel(writeHedgeCtx(0, 1, 2))
	done := make(chan error, 1)
	go func() {
		_, err := m.Write(ctx, "u", bytes.Repeat([]byte{0xEE}, 32<<10))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled hedged write returned %v, want context.Canceled", err)
	}
	// No version may be visible.
	if _, _, err := m.Read(bg, "u"); !errors.Is(err, ErrUnitNotFound) {
		t.Fatalf("read after cancelled write: %v, want ErrUnitNotFound", err)
	}
	if versions, _ := m.ListVersions(bg, "u"); len(versions) != 0 {
		t.Fatalf("cancelled write left %d visible versions", len(versions))
	}
}

// TestCostPlacedHedgedWrite: under a cost-first placement the preferred
// write quorum is the cheapest n-f clouds for the payload — the most
// expensive cloud is the spare and receives nothing.
func TestCostPlacedHedgedWrite(t *testing.T) {
	rtts := []time.Duration{0, 0, 0, 0}
	m, providers, accounts := hedgeManager(t, rtts, Options{
		// Cloud 2 has by far the most expensive storage: a cost-first bulk
		// upload must park it as the spare.
		Pricing: testTable(map[int]float64{0: 0.02, 1: 0.03, 2: 5.0, 3: 0.025}),
	})
	warmTracker(m, rtts)

	pol := iopolicy.Policy{
		WriteHedge: iopolicy.Hedge{Percentile: 0.9, MinDelay: 10 * time.Second},
		Placement:  iopolicy.Placement{Strategy: iopolicy.PlaceCost},
	}
	data := bytes.Repeat([]byte{0xA1}, 256<<10)
	if _, err := m.Write(hedgeCtx(pol), "u", data); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if u := providers[2].Usage(accounts[2]); u.PutRequests != 0 {
		t.Fatalf("the expensive cloud received %d PUTs under cost-first placement", u.PutRequests)
	}
	got, _, err := m.Read(bg, "u")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("wrong data")
	}
}

// TestExplicitFastestBeatsMountPlacement: a per-call PreferFastest must
// override a manager-default cost placement — the preferred write quorum
// is then the tracked-fastest clouds, not the cheapest ones.
func TestExplicitFastestBeatsMountPlacement(t *testing.T) {
	rtts := []time.Duration{0, 0, 0, 40 * time.Millisecond}
	// Cloud 0 is wildly expensive: cost-first placement would park it.
	table := testTable(map[int]float64{0: 5.0, 1: 0.02, 2: 0.02, 3: 0.02})
	m, providers, accounts := hedgeManager(t, rtts, Options{
		Pricing: table,
		Policy: iopolicy.Policy{
			WriteHedge: iopolicy.Hedge{Percentile: 0.9, MinDelay: 10 * time.Second},
			Placement:  iopolicy.Placement{Strategy: iopolicy.PlaceCost},
		},
	})
	warmTracker(m, rtts)

	data := bytes.Repeat([]byte{0x29}, 64<<10)
	ctx := hedgeCtx(iopolicy.Policy{Preference: iopolicy.Preference{Fastest: true}})
	if _, err := m.Write(ctx, "u", data); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	// Fastest-first parks the slow cloud 3, and the expensive-but-fast
	// cloud 0 receives data despite the mount's cost objective.
	if u := providers[3].Usage(accounts[3]); u.PutRequests != 0 {
		t.Fatalf("slow cloud got %d PUTs — explicit Fastest lost to the mount placement", u.PutRequests)
	}
	if u := providers[0].Usage(accounts[0]); u.PutRequests == 0 {
		t.Fatal("fast cloud got nothing — the cost objective still parked it")
	}
}

// TestHedgedWriteZeroPolicyFullFanOut guards the compatibility contract:
// with no write-hedge policy every cloud is uploaded to immediately.
func TestHedgedWriteZeroPolicyFullFanOut(t *testing.T) {
	rtts := []time.Duration{0, 0, 0, 0}
	m, providers, accounts := hedgeManager(t, rtts, Options{DisableQuorumCancel: true})
	if _, err := m.Write(bg, "u", []byte("fan out everywhere")); err != nil {
		t.Fatal(err)
	}
	// Let the un-cancelled stragglers land.
	time.Sleep(50 * time.Millisecond)
	for i, p := range providers {
		// One block PUT + one metadata PUT per cloud.
		if u := p.Usage(accounts[i]); u.PutRequests != 2 {
			t.Fatalf("cloud %d served %d PUTs, want 2 (full fan-out)", i, u.PutRequests)
		}
	}
}

// testTable builds a price table whose per-index rates are applied via the
// providers' names (hedgeManager names them c0..c3): only storage price
// varies, which dominates the cost of a bulk upload.
func testTable(storageByIdx map[int]float64) pricing.Table {
	t := pricing.Table{ByProvider: map[string]pricing.Rates{}}
	for idx, gbMonth := range storageByIdx {
		t.ByProvider[fmt.Sprintf("c%d", idx)] = pricing.Rates{StorageGBMonth: gbMonth, EgressPerGB: 0.1}
	}
	return t
}

// TestHedgedWriteSpareReleaseOnMidUploadOutage: a preferred cloud accepts
// the first frames of a chunked hedged upload and then goes dark between
// frames. The failure kick must release the parked spare mid-write (not
// after the enormous hedge delay), the write must commit exactly one
// complete version, and the fan-out goroutines must all drain — an outage
// must not strand workers parked on hedge gates.
func TestHedgedWriteSpareReleaseOnMidUploadOutage(t *testing.T) {
	const cs = 4096
	rtts := []time.Duration{0, 0, 0, 0}
	m, providers, accounts := hedgeManager(t, rtts, Options{ChunkSize: cs})
	warmTracker(m, rtts)

	// c1 accepts two frame uploads, then every further PUT fails: an outage
	// landing between frame N and N+1 of the same logical write.
	providers[1].SetFaults(cloudsim.FaultSpec{
		Mode: cloudsim.FaultUnavailable, Ops: cloudsim.MaskPut, AfterN: 2,
	})

	baseline := runtime.NumGoroutine()
	data := bytes.Repeat([]byte{0xC7}, 6*cs+19)
	start := time.Now()
	info, err := m.WriteFrom(writeHedgeCtx(0, 1, 2), "u", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("hedged write across a mid-upload outage: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("write took %v — the spare was not kicked loose when the preferred upload died", elapsed)
	}
	// The spare completed the quorum for the frames c1 dropped.
	if u := providers[3].Usage(accounts[3]); u.PutRequests == 0 {
		t.Fatal("spare cloud received no uploads despite the mid-write outage")
	}

	// Exactly one complete version, readable while c1 is still dark.
	versions, err := m.ListVersions(bg, "u")
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 1 {
		t.Fatalf("outage left %d visible versions, want exactly 1", len(versions))
	}
	got, rinfo, err := m.Read(bg, "u")
	if err != nil {
		t.Fatal(err)
	}
	if rinfo.DataHash != info.DataHash || !bytes.Equal(got, data) {
		t.Fatal("read returned a different or partial version")
	}

	// All fan-out goroutines (including spares parked behind the 10s hedge
	// delay on healthy chunks) must have been cancelled and drained.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after mid-upload outage: %d, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
