package depsky

// Telemetry wiring for the dispatch hot path. All instruments are resolved
// once, at New: the per-RPC code indexes pre-built arrays of counter and
// histogram pointers instead of formatting names or taking registry locks,
// so a metered deployment pays a handful of atomic adds per RPC and a
// disabled one (Options.Metrics == nil) pays a single nil check.
//
// Instrument names carry their labels Prometheus-style, e.g.
//
//	rpc_total{cloud="c0",op="get",outcome="ok"}
//	hedge_suppressed_total{cloud="c2",op="put"}
//	breaker_open_total{cloud="c0",op="get"}
//
// so Snapshot.Total("rpc_total") sums across clouds and classes while the
// fully qualified name answers the per-provider question.

import (
	"fmt"
	"time"

	"scfs/internal/cloud"
	"scfs/internal/iopolicy"
	"scfs/internal/resilience"
	"scfs/internal/stream"
	"scfs/internal/telemetry"
)

// opClassNames maps an iopolicy op class index onto its label value.
var opClassNames = [...]string{iopolicy.OpGet: "get", iopolicy.OpPut: "put"}

// instruments is the pre-resolved instrument set of one manager. Outer
// index is the cloud, inner index the op class (breakerClass). A nil
// *instruments disables everything.
type instruments struct {
	rpcOK, rpcErr, rpcCancel [][]*telemetry.Counter
	rpcLat                   [][]*telemetry.Histogram
	retries                  [][]*telemetry.Counter
	breakerSkip              [][]*telemetry.Counter

	// Hedge counters are indexed [class][cloud]: the gate resolves its row
	// once per fan-out and indexes by cloud in enter.
	hedgeFired, hedgeKicked, hedgeSuppressed [][]*telemetry.Counter

	// breakerTo[cloud][class][state] counts transitions into state.
	breakerTo [][][3]*telemetry.Counter

	// stream instruments the readahead pipeline of every chunk reader this
	// manager opens (mount-wide, not per cloud).
	stream stream.ReaderMetrics
}

// newInstruments resolves every per-(cloud, class) instrument against reg.
func newInstruments(reg *telemetry.Registry, names []string) *instruments {
	if reg == nil {
		return nil
	}
	n := len(names)
	nc := len(opClassNames)
	ins := &instruments{
		rpcOK:           make([][]*telemetry.Counter, n),
		rpcErr:          make([][]*telemetry.Counter, n),
		rpcCancel:       make([][]*telemetry.Counter, n),
		rpcLat:          make([][]*telemetry.Histogram, n),
		retries:         make([][]*telemetry.Counter, n),
		breakerSkip:     make([][]*telemetry.Counter, n),
		hedgeFired:      make([][]*telemetry.Counter, nc),
		hedgeKicked:     make([][]*telemetry.Counter, nc),
		hedgeSuppressed: make([][]*telemetry.Counter, nc),
		breakerTo:       make([][][3]*telemetry.Counter, n),
	}
	for cl := 0; cl < nc; cl++ {
		ins.hedgeFired[cl] = make([]*telemetry.Counter, n)
		ins.hedgeKicked[cl] = make([]*telemetry.Counter, n)
		ins.hedgeSuppressed[cl] = make([]*telemetry.Counter, n)
	}
	ins.stream = stream.ReaderMetrics{
		PrefetchLaunched: reg.Counter("stream_prefetch_launched_total"),
		PrefetchHits:     reg.Counter("stream_prefetch_hits_total"),
		PrefetchAborted:  reg.Counter("stream_prefetch_aborted_total"),
		Window:           reg.Gauge("stream_readahead_window"),
		Inflight:         reg.Gauge("stream_prefetch_inflight"),
	}
	for i, cn := range names {
		ins.rpcOK[i] = make([]*telemetry.Counter, nc)
		ins.rpcErr[i] = make([]*telemetry.Counter, nc)
		ins.rpcCancel[i] = make([]*telemetry.Counter, nc)
		ins.rpcLat[i] = make([]*telemetry.Histogram, nc)
		ins.retries[i] = make([]*telemetry.Counter, nc)
		ins.breakerSkip[i] = make([]*telemetry.Counter, nc)
		ins.breakerTo[i] = make([][3]*telemetry.Counter, nc)
		for cl, op := range opClassNames {
			ins.rpcOK[i][cl] = reg.Counter(telemetry.Name("rpc_total", "cloud", cn, "op", op, "outcome", "ok"))
			ins.rpcErr[i][cl] = reg.Counter(telemetry.Name("rpc_total", "cloud", cn, "op", op, "outcome", "error"))
			ins.rpcCancel[i][cl] = reg.Counter(telemetry.Name("rpc_total", "cloud", cn, "op", op, "outcome", "canceled"))
			ins.rpcLat[i][cl] = reg.Histogram(telemetry.Name("rpc_latency_ns", "cloud", cn, "op", op))
			ins.retries[i][cl] = reg.Counter(telemetry.Name("rpc_retries_total", "cloud", cn, "op", op))
			ins.breakerSkip[i][cl] = reg.Counter(telemetry.Name("rpc_breaker_skipped_total", "cloud", cn, "op", op))
			ins.hedgeFired[cl][i] = reg.Counter(telemetry.Name("hedge_fired_total", "cloud", cn, "op", op))
			ins.hedgeKicked[cl][i] = reg.Counter(telemetry.Name("hedge_kicked_total", "cloud", cn, "op", op))
			ins.hedgeSuppressed[cl][i] = reg.Counter(telemetry.Name("hedge_suppressed_total", "cloud", cn, "op", op))
			ins.breakerTo[i][cl] = [3]*telemetry.Counter{
				resilience.BreakerClosed:   reg.Counter(telemetry.Name("breaker_recovered_total", "cloud", cn, "op", op)),
				resilience.BreakerOpen:     reg.Counter(telemetry.Name("breaker_open_total", "cloud", cn, "op", op)),
				resilience.BreakerHalfOpen: reg.Counter(telemetry.Name("breaker_half_open_total", "cloud", cn, "op", op)),
			}
		}
	}
	return ins
}

// counterAt indexes a possibly nil counter row; out-of-range or nil rows
// yield a nil (no-op) counter.
func counterAt(cs []*telemetry.Counter, i int) *telemetry.Counter {
	if i < 0 || i >= len(cs) {
		return nil
	}
	return cs[i]
}

// cloudName returns the label value of cloud i.
func (m *Manager) cloudName(i int) string {
	if i < 0 || i >= len(m.cloudNames) {
		return "?"
	}
	return m.cloudNames[i]
}

// cloudLabels derives the per-cloud label values: the provider name,
// de-duplicated by suffixing the cloud index when two providers share one
// (a deployment mounting two accounts at the same provider must not merge
// their counters).
func cloudLabels(clouds []cloud.ObjectStore) []string {
	names := make([]string, len(clouds))
	seen := make(map[string]bool, len(clouds))
	for i, c := range clouds {
		n := c.Provider()
		if seen[n] {
			n = fmt.Sprintf("%s#%d", n, i)
		}
		seen[n] = true
		names[i] = n
	}
	return names
}

// spanOutcome classifies one RPC attempt's error for its trace span.
func spanOutcome(err error) telemetry.SpanOutcome {
	switch {
	case err == nil:
		return telemetry.SpanOK
	case err == errBreakerSkipped:
		return telemetry.SpanBreakerSkipped
	case resilience.Ignorable(err):
		return telemetry.SpanCanceled
	default:
		return telemetry.SpanError
	}
}

// recordSpan files one per-cloud attempt on the operation's trace (no-op
// without one).
func (m *Manager) recordSpan(tr *telemetry.Trace, kind string, i int, start time.Time, hedged bool, err error) {
	if tr == nil {
		return
	}
	tr.Record(telemetry.Span{
		Name:    kind,
		Target:  m.cloudName(i),
		Start:   start,
		Dur:     time.Since(start),
		Outcome: spanOutcome(err),
		Hedged:  hedged,
		Err:     err,
	})
}

// recordGated files the span of a cloud whose RPC was never issued: the
// quorum verdict arrived while the hedge gate still held it (suppressed) or
// the fan-out was cancelled before an ungated cloud launched.
func (m *Manager) recordGated(tr *telemetry.Trace, kind string, i int, hedged bool) {
	if tr == nil {
		return
	}
	out := telemetry.SpanCanceled
	if hedged {
		out = telemetry.SpanSuppressed
	}
	tr.Record(telemetry.Span{Name: kind, Target: m.cloudName(i), Outcome: out, Hedged: hedged})
}

// ProviderUsage is one cloud's metered consumption priced under the
// manager's rate table. Only clouds whose client implements cloud.Meter
// appear (the simulator does; custom backends may).
type ProviderUsage struct {
	// Provider is the cloud's label (provider name, de-duplicated).
	Provider string
	// Usage is the provider-metered consumption of this mount's account.
	Usage cloud.Usage
	// Dollars prices Usage under the cloud's rate card.
	Dollars float64
}

// MeteredUsage reports the metered consumption and dollar spend of every
// cloud that exposes a meter. Safe on any manager; clouds without a meter
// are skipped.
func (m *Manager) MeteredUsage() []ProviderUsage {
	var out []ProviderUsage
	for i, c := range m.opts.Clouds {
		mt, ok := c.(cloud.Meter)
		if !ok {
			continue
		}
		u := mt.Usage()
		out = append(out, ProviderUsage{
			Provider: m.cloudName(i),
			Usage:    u,
			Dollars:  m.rates[i].UsageCost(u),
		})
	}
	return out
}

// registerUsageGauges publishes each metered cloud's consumption as pull
// gauges: the registry snapshot polls the provider's meter at read time, so
// the hot path never touches them. Dollar spend is exported in microdollars
// (gauges are integers).
func (m *Manager) registerUsageGauges(reg *telemetry.Registry) {
	for i, c := range m.opts.Clouds {
		mt, ok := c.(cloud.Meter)
		if !ok {
			continue
		}
		cn := m.cloudName(i)
		rates := m.rates[i]
		reg.RegisterGauge(telemetry.Name("usage_bytes_in", "cloud", cn), func() int64 { return mt.Usage().BytesIn })
		reg.RegisterGauge(telemetry.Name("usage_bytes_out", "cloud", cn), func() int64 { return mt.Usage().BytesOut })
		reg.RegisterGauge(telemetry.Name("usage_get_requests", "cloud", cn), func() int64 { return mt.Usage().GetRequests })
		reg.RegisterGauge(telemetry.Name("usage_put_requests", "cloud", cn), func() int64 { return mt.Usage().PutRequests })
		reg.RegisterGauge(telemetry.Name("spend_microdollars", "cloud", cn), func() int64 {
			return int64(rates.UsageCost(mt.Usage()) * 1e6)
		})
	}
}
