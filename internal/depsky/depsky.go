// Package depsky implements the DepSky cloud-of-clouds storage protocols used
// by the SCFS CoC backend (§3.2, Figure 6): each data unit is stored across
// n = 3f+1 independent cloud providers so that its confidentiality, integrity
// and availability survive f arbitrarily faulty providers.
//
// Two protocols are provided:
//
//   - DepSky-A: plain replication of the value on every cloud (availability
//     and integrity, no confidentiality).
//   - DepSky-CA: the value is encrypted with a fresh random key, the
//     ciphertext is erasure-coded into n blocks of which any f+1 reconstruct
//     it, and the key is split with secret sharing so that no single cloud
//     can decrypt the data. This is the protocol SCFS uses.
//
// Every version of a data unit is recorded in a metadata object replicated on
// all clouds. SCFS's consistency-anchor algorithm needs to read "the version
// with a given hash" rather than "the newest version", so the manager also
// implements ReadMatching, the extension described in §3.2 of the paper.
//
// Per-cloud blocks are stored in the length-prefixed binary frame documented
// in wire.go (magic/version/protocol/shard-index header followed by the key
// share and the shard payload); only the small metadata objects use JSON.
package depsky

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"scfs/internal/cloud"
	"scfs/internal/erasure"
	"scfs/internal/seccrypto"
	"scfs/internal/secretshare"
)

// Protocol selects how data is dispersed across the clouds.
type Protocol int

const (
	// ProtocolCA is encrypt + erasure-code + secret-share (the default).
	ProtocolCA Protocol = iota
	// ProtocolA is full replication on every cloud.
	ProtocolA
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	if p == ProtocolA {
		return "DepSky-A"
	}
	return "DepSky-CA"
}

// Errors returned by the manager.
var (
	ErrNotEnoughClouds = errors.New("depsky: need at least 3f+1 clouds")
	ErrQuorumWrite     = errors.New("depsky: could not write to a quorum of clouds")
	ErrQuorumRead      = errors.New("depsky: could not read from enough clouds")
	ErrVersionNotFound = errors.New("depsky: version not found")
	ErrUnitNotFound    = errors.New("depsky: data unit not found")
	ErrIntegrity       = errors.New("depsky: integrity verification failed")
)

// VersionInfo describes one stored version of a data unit.
type VersionInfo struct {
	// Number is the monotonically increasing version number.
	Number uint64 `json:"number"`
	// DataHash is the SHA-256 of the original (plaintext) value; it is the
	// hash SCFS stores in its consistency anchor.
	DataHash string `json:"data_hash"`
	// Size is the length of the original value.
	Size int `json:"size"`
	// BlockHashes[i] is the SHA-256 of the block stored on cloud i, allowing
	// the reader to discard corrupted blocks.
	BlockHashes []string `json:"block_hashes"`
	// Protocol records how the version was encoded.
	Protocol Protocol `json:"protocol"`
}

// unitMetadata is the metadata object replicated on every cloud.
type unitMetadata struct {
	Unit     string        `json:"unit"`
	Versions []VersionInfo `json:"versions"`
}

func (m *unitMetadata) find(hash string) *VersionInfo {
	for i := range m.Versions {
		if m.Versions[i].DataHash == hash {
			return &m.Versions[i]
		}
	}
	return nil
}

func (m *unitMetadata) newest() *VersionInfo {
	if len(m.Versions) == 0 {
		return nil
	}
	best := &m.Versions[0]
	for i := range m.Versions {
		if m.Versions[i].Number > best.Number {
			best = &m.Versions[i]
		}
	}
	return best
}

// block is what gets stored on one cloud for one version (CA protocol): an
// erasure-coded shard of the ciphertext plus this cloud's share of the key.
// It is serialized with the compact binary framing in wire.go, not JSON.
type block struct {
	Shard    []byte
	ShardIdx int
	KeyX     byte
	KeyShare []byte
	// Full holds the whole value for the replication protocol (DepSky-A).
	Full []byte
}

// Options configures a Manager.
type Options struct {
	// Clouds are the per-provider object-store clients (all owned by the
	// same principal). len(Clouds) must be >= 3F+1.
	Clouds []cloud.ObjectStore
	// F is the number of faulty clouds tolerated.
	F int
	// Protocol selects DepSky-CA (default) or DepSky-A.
	Protocol Protocol
	// Prefix namespaces every object written by this manager.
	Prefix string
}

// Manager reads and writes data units spread over the configured clouds.
// A Manager is safe for concurrent use by multiple goroutines as long as
// different goroutines operate on different data units (SCFS guarantees a
// single writer per file via its lock service).
type Manager struct {
	opts  Options
	coder *erasure.Coder
}

// New validates the options and creates a manager.
func New(opts Options) (*Manager, error) {
	if opts.F < 1 {
		opts.F = 1
	}
	need := 3*opts.F + 1
	if len(opts.Clouds) < need {
		return nil, fmt.Errorf("%w: have %d, need %d for f=%d", ErrNotEnoughClouds, len(opts.Clouds), need, opts.F)
	}
	coder, err := erasure.New(opts.F+1, len(opts.Clouds)-(opts.F+1))
	if err != nil {
		return nil, fmt.Errorf("depsky: building erasure coder: %w", err)
	}
	return &Manager{opts: opts, coder: coder}, nil
}

// N returns the number of clouds.
func (m *Manager) N() int { return len(m.opts.Clouds) }

// F returns the number of tolerated faulty clouds.
func (m *Manager) F() int { return m.opts.F }

// QuorumSize returns the write quorum n-f.
func (m *Manager) QuorumSize() int { return m.N() - m.opts.F }

func (m *Manager) metaName(unit string) string {
	return m.opts.Prefix + "dsky/" + unit + "/metadata"
}

func (m *Manager) blockName(unit string, version uint64) string {
	return fmt.Sprintf("%sdsky/%s/v%d/block", m.opts.Prefix, unit, version)
}

// --- metadata quorum operations ---

// readMetadataQuorum fetches the metadata object from all clouds and returns
// the per-cloud results (nil for clouds that failed or have no metadata).
func (m *Manager) readMetadataQuorum(unit string) []*unitMetadata {
	name := m.metaName(unit)
	results := make([]*unitMetadata, m.N())
	var wg sync.WaitGroup
	for i, c := range m.opts.Clouds {
		wg.Add(1)
		go func(i int, c cloud.ObjectStore) {
			defer wg.Done()
			data, err := c.Get(name)
			if err != nil {
				return
			}
			var md unitMetadata
			if json.Unmarshal(data, &md) == nil && md.Unit == unit {
				results[i] = &md
			}
		}(i, c)
	}
	wg.Wait()
	return results
}

// mergeMetadata combines per-cloud metadata copies, keeping the union of
// versions (a version written to a quorum appears in at least one correct
// copy; corrupted copies are filtered by consistency of the entries).
func mergeMetadata(unit string, copies []*unitMetadata) *unitMetadata {
	merged := &unitMetadata{Unit: unit}
	seen := make(map[uint64]VersionInfo)
	for _, c := range copies {
		if c == nil {
			continue
		}
		for _, v := range c.Versions {
			if existing, ok := seen[v.Number]; !ok || len(v.BlockHashes) > len(existing.BlockHashes) {
				seen[v.Number] = v
			}
		}
	}
	for _, v := range seen {
		merged.Versions = append(merged.Versions, v)
	}
	sort.Slice(merged.Versions, func(i, j int) bool { return merged.Versions[i].Number < merged.Versions[j].Number })
	return merged
}

// writeMetadataQuorum pushes the metadata object to all clouds and returns
// nil once n-f acknowledged.
func (m *Manager) writeMetadataQuorum(md *unitMetadata) error {
	payload, err := json.Marshal(md)
	if err != nil {
		return fmt.Errorf("depsky: encoding metadata: %w", err)
	}
	return m.writeQuorum(m.metaName(md.Unit), func(int) []byte { return payload })
}

// writeQuorum writes per-cloud payloads (payload(i) for cloud i) and waits
// for n-f successes. Remaining uploads continue in the background.
func (m *Manager) writeQuorum(name string, payload func(i int) []byte) error {
	type outcome struct{ err error }
	results := make(chan outcome, m.N())
	for i, c := range m.opts.Clouds {
		go func(i int, c cloud.ObjectStore) {
			results <- outcome{err: c.Put(name, payload(i))}
		}(i, c)
	}
	successes, failures := 0, 0
	for i := 0; i < m.N(); i++ {
		o := <-results
		if o.err == nil {
			successes++
		} else {
			failures++
		}
		if successes >= m.QuorumSize() {
			return nil
		}
		if failures > m.opts.F {
			return fmt.Errorf("%w: %d failures out of %d clouds", ErrQuorumWrite, failures, m.N())
		}
	}
	return fmt.Errorf("%w: only %d acks", ErrQuorumWrite, successes)
}

// --- public API ---

// Write stores data as the next version of unit and returns its version info.
// SCFS serializes writers per file (via locks), matching DepSky's
// single-writer register semantics.
func (m *Manager) Write(unit string, data []byte) (VersionInfo, error) {
	merged := mergeMetadata(unit, m.readMetadataQuorum(unit))
	var next uint64 = 1
	if newest := merged.newest(); newest != nil {
		next = newest.Number + 1
	}

	blocks, info, err := m.encode(data)
	if err != nil {
		return VersionInfo{}, err
	}
	info.Number = next

	blockPayloads := make([][]byte, m.N())
	for i := range blocks {
		b := encodeBlock(info.Protocol, &blocks[i])
		blockPayloads[i] = b
		info.BlockHashes[i] = seccrypto.Hash(b)
	}

	if err := m.writeQuorum(m.blockName(unit, next), func(i int) []byte { return blockPayloads[i] }); err != nil {
		return VersionInfo{}, err
	}
	merged.Versions = append(merged.Versions, info)
	if err := m.writeMetadataQuorum(merged); err != nil {
		return VersionInfo{}, err
	}
	return info, nil
}

// encode builds the per-cloud blocks for data according to the protocol.
func (m *Manager) encode(data []byte) ([]block, VersionInfo, error) {
	info := VersionInfo{
		DataHash:    seccrypto.Hash(data),
		Size:        len(data),
		BlockHashes: make([]string, m.N()),
		Protocol:    m.opts.Protocol,
	}
	blocks := make([]block, m.N())
	if m.opts.Protocol == ProtocolA {
		for i := range blocks {
			blocks[i] = block{Full: data, ShardIdx: i}
		}
		return blocks, info, nil
	}
	key, err := seccrypto.NewKey()
	if err != nil {
		return nil, info, err
	}
	ciphertext, err := seccrypto.Encrypt(key, data)
	if err != nil {
		return nil, info, err
	}
	shards, err := m.coder.Split(ciphertext)
	if err != nil {
		return nil, info, fmt.Errorf("depsky: erasure coding: %w", err)
	}
	shares, err := secretshare.Split(key, m.N(), m.opts.F+1, nil)
	if err != nil {
		return nil, info, fmt.Errorf("depsky: secret sharing: %w", err)
	}
	for i := range blocks {
		blocks[i] = block{
			Shard:    shards[i],
			ShardIdx: i,
			KeyX:     shares[i].X,
			KeyShare: shares[i].Data,
		}
	}
	// The ciphertext length is not stored explicitly: it is info.Size plus
	// the fixed IV prefix, which tryDecode uses to strip the shard padding.
	return blocks, info, nil
}

// Read returns the newest version of unit.
func (m *Manager) Read(unit string) ([]byte, VersionInfo, error) {
	merged := mergeMetadata(unit, m.readMetadataQuorum(unit))
	newest := merged.newest()
	if newest == nil {
		return nil, VersionInfo{}, ErrUnitNotFound
	}
	data, err := m.readVersion(unit, *newest)
	return data, *newest, err
}

// ReadMatching returns the version of unit whose plaintext hash equals hash.
// This is the operation added to DepSky for SCFS's consistency anchor.
func (m *Manager) ReadMatching(unit, hash string) ([]byte, VersionInfo, error) {
	merged := mergeMetadata(unit, m.readMetadataQuorum(unit))
	info := merged.find(hash)
	if info == nil {
		return nil, VersionInfo{}, ErrVersionNotFound
	}
	data, err := m.readVersion(unit, *info)
	return data, *info, err
}

// ListVersions returns all known versions of a unit, oldest first.
func (m *Manager) ListVersions(unit string) ([]VersionInfo, error) {
	merged := mergeMetadata(unit, m.readMetadataQuorum(unit))
	if len(merged.Versions) == 0 {
		return nil, nil
	}
	return merged.Versions, nil
}

// DeleteVersion removes the blocks of one version from all clouds and drops
// it from the metadata (used by the SCFS garbage collector).
func (m *Manager) DeleteVersion(unit string, number uint64) error {
	merged := mergeMetadata(unit, m.readMetadataQuorum(unit))
	idx := -1
	for i, v := range merged.Versions {
		if v.Number == number {
			idx = i
			break
		}
	}
	if idx < 0 {
		return ErrVersionNotFound
	}
	merged.Versions = append(merged.Versions[:idx], merged.Versions[idx+1:]...)
	if err := m.writeMetadataQuorum(merged); err != nil {
		return err
	}
	name := m.blockName(unit, number)
	var wg sync.WaitGroup
	for _, c := range m.opts.Clouds {
		wg.Add(1)
		go func(c cloud.ObjectStore) {
			defer wg.Done()
			_ = c.Delete(name) // best effort; failures only waste space
		}(c)
	}
	wg.Wait()
	return nil
}

// DeleteUnit removes every version and the metadata of the unit.
func (m *Manager) DeleteUnit(unit string) error {
	versions, err := m.ListVersions(unit)
	if err != nil {
		return err
	}
	for _, v := range versions {
		if err := m.DeleteVersion(unit, v.Number); err != nil && !errors.Is(err, ErrVersionNotFound) {
			return err
		}
	}
	name := m.metaName(unit)
	var wg sync.WaitGroup
	for _, c := range m.opts.Clouds {
		wg.Add(1)
		go func(c cloud.ObjectStore) {
			defer wg.Done()
			_ = c.Delete(name)
		}(c)
	}
	wg.Wait()
	return nil
}

// readVersion fetches blocks for the given version until it can reconstruct
// and verify the value.
func (m *Manager) readVersion(unit string, info VersionInfo) ([]byte, error) {
	name := m.blockName(unit, info.Number)
	type fetched struct {
		idx int
		blk *block
	}
	results := make(chan fetched, m.N())
	var wg sync.WaitGroup
	for i, c := range m.opts.Clouds {
		wg.Add(1)
		go func(i int, c cloud.ObjectStore) {
			defer wg.Done()
			data, err := c.Get(name)
			if err != nil {
				results <- fetched{idx: i}
				return
			}
			// Discard blocks whose hash does not match the metadata (this is
			// how silently corrupting clouds are tolerated).
			if i < len(info.BlockHashes) && info.BlockHashes[i] != "" && !seccrypto.VerifyHash(data, info.BlockHashes[i]) {
				results <- fetched{idx: i}
				return
			}
			b, err := decodeBlock(data)
			if err != nil {
				results <- fetched{idx: i}
				return
			}
			results <- fetched{idx: i, blk: b}
		}(i, c)
	}
	go func() { wg.Wait(); close(results) }()

	blocks := make([]*block, m.N())
	got := 0
	for f := range results {
		if f.blk == nil {
			continue
		}
		blocks[f.idx] = f.blk
		got++
		if data, err := m.tryDecode(blocks, info); err == nil {
			return data, nil
		}
	}
	if got == 0 {
		return nil, ErrQuorumRead
	}
	// All responses are in; one final attempt with everything we have.
	data, err := m.tryDecode(blocks, info)
	if err != nil {
		return nil, err
	}
	return data, nil
}

// tryDecode attempts to reconstruct and verify the value from the blocks
// collected so far.
func (m *Manager) tryDecode(blocks []*block, info VersionInfo) ([]byte, error) {
	if info.Protocol == ProtocolA {
		for _, b := range blocks {
			if b == nil || b.Full == nil {
				continue
			}
			if seccrypto.Hash(b.Full) == info.DataHash {
				return b.Full, nil
			}
		}
		return nil, ErrIntegrity
	}
	// DepSky-CA: need f+1 shards and f+1 key shares.
	needed := m.opts.F + 1
	shards := make([][]byte, m.coder.TotalShards())
	var shares []secretshare.Share
	present := 0
	for _, b := range blocks {
		if b == nil || b.Shard == nil {
			continue
		}
		if b.ShardIdx >= 0 && b.ShardIdx < len(shards) {
			shards[b.ShardIdx] = b.Shard
			present++
		}
		if b.KeyShare != nil {
			shares = append(shares, secretshare.Share{X: b.KeyX, Data: b.KeyShare})
		}
	}
	if present < needed || len(shares) < needed {
		return nil, ErrQuorumRead
	}
	if err := m.coder.Reconstruct(shards); err != nil {
		return nil, fmt.Errorf("depsky: reconstructing: %w", err)
	}
	key, err := secretshare.Combine(shares, needed)
	if err != nil {
		return nil, fmt.Errorf("depsky: recovering key: %w", err)
	}
	// The ciphertext length is the plaintext length plus the IV prefix.
	cipherLen := info.Size + 16
	ciphertext, err := m.coder.Join(shards, cipherLen)
	if err != nil {
		return nil, fmt.Errorf("depsky: joining shards: %w", err)
	}
	plaintext, err := seccrypto.Decrypt(key, ciphertext)
	if err != nil {
		return nil, fmt.Errorf("depsky: decrypting: %w", err)
	}
	if seccrypto.Hash(plaintext) != info.DataHash {
		return nil, ErrIntegrity
	}
	return plaintext, nil
}

// StorageFootprint returns how many bytes one version of the given size
// occupies across all clouds under the configured protocol (used by the cost
// model: ~1.5x for CA with f=1 versus 4x for replication).
func (m *Manager) StorageFootprint(size int) int {
	if m.opts.Protocol == ProtocolA {
		return size * m.N()
	}
	shard := m.coder.ShardSize(size + 16)
	// The preferred quorum stores n-f blocks (the paper's cost analysis).
	return shard * m.QuorumSize()
}
