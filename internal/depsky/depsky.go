// Package depsky implements the DepSky cloud-of-clouds storage protocols used
// by the SCFS CoC backend (§3.2, Figure 6): each data unit is stored across
// n = 3f+1 independent cloud providers so that its confidentiality, integrity
// and availability survive f arbitrarily faulty providers.
//
// Two protocols are provided:
//
//   - DepSky-A: plain replication of the value on every cloud (availability
//     and integrity, no confidentiality).
//   - DepSky-CA: the value is encrypted with a fresh random key, the
//     ciphertext is erasure-coded into n blocks of which any f+1 reconstruct
//     it, and the key is split with secret sharing so that no single cloud
//     can decrypt the data. This is the protocol SCFS uses.
//
// Every version of a data unit is recorded in a metadata object replicated on
// all clouds. SCFS's consistency-anchor algorithm needs to read "the version
// with a given hash" rather than "the newest version", so the manager also
// implements ReadMatching, the extension described in §3.2 of the paper.
//
// Per-cloud blocks are stored in the length-prefixed binary frame documented
// in wire.go (magic/version/protocol/shard-index header followed by the key
// share and the shard payload); only the small metadata objects use JSON.
package depsky

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"scfs/internal/cloud"
	"scfs/internal/erasure"
	"scfs/internal/iopolicy"
	"scfs/internal/placement"
	"scfs/internal/pricing"
	"scfs/internal/resilience"
	"scfs/internal/seccrypto"
	"scfs/internal/secretshare"
	"scfs/internal/stream"
	"scfs/internal/telemetry"
)

// Protocol selects how data is dispersed across the clouds.
type Protocol int

const (
	// ProtocolCA is encrypt + erasure-code + secret-share (the default).
	ProtocolCA Protocol = iota
	// ProtocolA is full replication on every cloud.
	ProtocolA
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	if p == ProtocolA {
		return "DepSky-A"
	}
	return "DepSky-CA"
}

// Errors returned by the manager.
var (
	ErrNotEnoughClouds = errors.New("depsky: need at least 3f+1 clouds")
	ErrQuorumWrite     = errors.New("depsky: could not write to a quorum of clouds")
	ErrQuorumRead      = errors.New("depsky: could not read from enough clouds")
	ErrVersionNotFound = errors.New("depsky: version not found")
	ErrUnitNotFound    = errors.New("depsky: data unit not found")
	ErrIntegrity       = errors.New("depsky: integrity verification failed")
)

// VersionInfo describes one stored version of a data unit.
type VersionInfo struct {
	// Number is the monotonically increasing version number.
	Number uint64 `json:"number"`
	// DataHash is the SHA-256 of the original (plaintext) value; it is the
	// hash SCFS stores in its consistency anchor.
	DataHash string `json:"data_hash"`
	// Size is the length of the original value.
	Size int `json:"size"`
	// BlockHashes[i] is the SHA-256 of the block stored on cloud i, allowing
	// the reader to discard corrupted blocks. Empty for chunked (v2)
	// versions, which record ChunkHashes instead.
	BlockHashes []string `json:"block_hashes"`
	// Protocol records how the version was encoded.
	Protocol Protocol `json:"protocol"`

	// ChunkSize is the plaintext bytes per chunk for versions written
	// through the streaming pipeline (the v2 chunked wire layout). Zero
	// means the whole-object v1 layout.
	ChunkSize int `json:"chunk_size,omitempty"`
	// ChunkCount is the number of chunks of a chunked version.
	ChunkCount int `json:"chunk_count,omitempty"`
	// ChunkHashes[j][i] is the SHA-256 of chunk j's frame on cloud i.
	ChunkHashes [][]string `json:"chunk_hashes,omitempty"`
}

// Chunked reports whether the version uses the v2 chunked layout.
func (v *VersionInfo) Chunked() bool { return v.ChunkSize > 0 }

// MaxChunkSize is the largest chunk a v2 version may declare (256 MiB); a
// wire-protocol constant, not a tuning knob. Writers clamp their configured
// chunk size to it; readers reject metadata beyond it. The cap is what
// bounds a reader's allocations against forged metadata: VersionInfo is
// JSON from possibly-corrupt clouds, and before certification or the
// end-to-end hash check its Size/ChunkSize fields are attacker-chosen. With
// the cap, reassembling a forged variant can allocate at most
// len(ChunkHashes) x MaxChunkSize — linear in metadata bytes the attacker
// must actually store — instead of any 17-byte JSON integer commanding a
// terabyte make().
const MaxChunkSize = 256 << 20

// validChunking reports whether the chunk geometry is internally
// consistent. Readers check it before slicing buffers by chunk arithmetic,
// so metadata from a corrupt cloud can fail a read but never panic it (nor
// size an unbounded allocation — see MaxChunkSize).
func (v *VersionInfo) validChunking() bool {
	if v.ChunkSize <= 0 || v.ChunkSize > MaxChunkSize || v.Size < 0 || v.ChunkCount < 0 {
		return false
	}
	wantChunks := (v.Size + v.ChunkSize - 1) / v.ChunkSize
	return v.ChunkCount == wantChunks && len(v.ChunkHashes) == v.ChunkCount
}

// chunkPlainLen returns the plaintext length of chunk idx.
func (v *VersionInfo) chunkPlainLen(idx int) int {
	rem := v.Size - idx*v.ChunkSize
	if rem > v.ChunkSize {
		return v.ChunkSize
	}
	return rem
}

// unitMetadata is the metadata object replicated on every cloud.
type unitMetadata struct {
	Unit     string        `json:"unit"`
	Versions []VersionInfo `json:"versions"`

	// certified marks version numbers whose entry was found byte-identical
	// on at least f+1 clouds during the merge (so at least one correct
	// cloud vouches for it). Populated by mergeMetadata, never serialized.
	certified map[uint64]bool
	// variants holds, per version number, every distinct copy seen during
	// the merge, best first (the certified or richest one — the same entry
	// that lands in Versions). The whole-object read path tries them in
	// order: its end-to-end hash check exposes a forged best variant, and
	// the next variant restores availability. Populated by mergeMetadata,
	// never serialized.
	variants map[uint64][]VersionInfo
}

func (m *unitMetadata) find(hash string) *VersionInfo {
	for i := range m.Versions {
		if m.Versions[i].DataHash == hash {
			return &m.Versions[i]
		}
	}
	// The best variant of a number may be a forged copy with a rewritten
	// hash; a read-by-hash must still find the version through the other
	// variants (the end-to-end hash check decides who was right).
	for _, vs := range m.variants {
		for i := range vs {
			if vs[i].DataHash == hash {
				return &vs[i]
			}
		}
	}
	return nil
}

// variantsOf returns every distinct copy of one version number seen during
// the merge, best first.
func (m *unitMetadata) variantsOf(number uint64) []VersionInfo {
	if vs := m.variants[number]; len(vs) > 0 {
		return vs
	}
	for i := range m.Versions {
		if m.Versions[i].Number == number {
			return m.Versions[i : i+1]
		}
	}
	return nil
}

func (m *unitMetadata) newest() *VersionInfo {
	if len(m.Versions) == 0 {
		return nil
	}
	best := &m.Versions[0]
	for i := range m.Versions {
		if m.Versions[i].Number > best.Number {
			best = &m.Versions[i]
		}
	}
	return best
}

// block is what gets stored on one cloud for one version (CA protocol): an
// erasure-coded shard of the ciphertext plus this cloud's share of the key.
// It is serialized with the compact binary framing in wire.go, not JSON.
type block struct {
	Shard    []byte
	ShardIdx int
	KeyX     byte
	KeyShare []byte
	// Full holds the whole value for the replication protocol (DepSky-A).
	Full []byte
	// ChunkIdx and ChunkPlainLen locate a v2 chunked frame within its
	// version: the chunk's index and how many plaintext bytes it carries.
	// ChunkIdx is -1 for whole-object v1 frames.
	ChunkIdx      int
	ChunkPlainLen int
}

// Options configures a Manager.
type Options struct {
	// Clouds are the per-provider object-store clients (all owned by the
	// same principal). len(Clouds) must be >= 3F+1.
	Clouds []cloud.ObjectStore
	// F is the number of faulty clouds tolerated.
	F int
	// Protocol selects DepSky-CA (default) or DepSky-A.
	Protocol Protocol
	// Prefix namespaces every object written by this manager.
	Prefix string
	// ChunkSize is the plaintext bytes per chunk for streamed writes
	// (WriteFrom). Defaults to stream.DefaultChunkSize (1 MiB); values
	// above MaxChunkSize are clamped to it (wire-protocol cap).
	ChunkSize int
	// WriteWindow bounds the number of chunks simultaneously resident in
	// the streaming write pipeline. Defaults to stream.DefaultWindow.
	WriteWindow int
	// DisableQuorumCancel preserves the pre-context behaviour where the
	// losers of every quorum race run to completion in the background
	// (wasting bandwidth and per-request fees, and leaving per-cloud
	// goroutines alive until the straggler finishes). It exists as an
	// experiment/benchmark hook so the cost of redundant RPCs can be
	// measured; production code should leave it false, which makes every
	// quorum operation cancel its redundant per-cloud RPCs the moment the
	// quorum verdict is known.
	DisableQuorumCancel bool
	// Policy is the manager-wide default I/O policy (hedged reads and
	// writes, readahead, cloud preference, placement objective). A
	// per-operation policy carried by the operation's context
	// (iopolicy.With) is overlaid on top of it. The zero value keeps the
	// immediate full fan-out and no readahead.
	Policy iopolicy.Policy
	// Pricing maps each cloud's provider name to its price card; the
	// placement engine ranks clouds by it and the cost model converts
	// footprints into dollars. The zero Table prices every provider with
	// pricing.DefaultRates (placement then treats them as equals).
	Pricing pricing.Table
	// Breakers tunes the per-(cloud, direction) circuit breakers fed by
	// every per-cloud RPC. The zero value enables them with the default
	// threshold and cooldown; see resilience.BreakerPolicy.
	Breakers resilience.BreakerPolicy
	// Metrics, when non-nil, receives the dispatch layer's counters and
	// latency histograms: per-(cloud, op-class) RPC outcomes, hedge
	// fire/suppress/kick, retry attempts, breaker skips and transitions,
	// plus pull gauges for each metered cloud's usage and dollar spend.
	// All instruments are resolved once here; nil disables metering with a
	// single nil check per RPC.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, records one trace per client operation: the
	// quorum fan-out tree of per-cloud attempts (timings, winners,
	// cancelled stragglers, suppressed hedges) and the quorum verdict
	// latency. nil disables tracing.
	Tracer *telemetry.Tracer
}

// Manager reads and writes data units spread over the configured clouds.
// A Manager is safe for concurrent use by multiple goroutines as long as
// different goroutines operate on different data units (SCFS guarantees a
// single writer per file via its lock service).
type Manager struct {
	opts       Options
	coder      *erasure.Coder
	tracker    *iopolicy.Tracker
	board      *resilience.Board
	rates      []pricing.Rates
	mean       pricing.Rates // rate card averaged across the clouds
	selector   *placement.Selector
	cloudNames []string
	ins        *instruments // nil when Options.Metrics is nil
}

// New validates the options and creates a manager.
func New(opts Options) (*Manager, error) {
	if opts.F < 1 {
		opts.F = 1
	}
	need := 3*opts.F + 1
	if len(opts.Clouds) < need {
		return nil, fmt.Errorf("%w: have %d, need %d for f=%d", ErrNotEnoughClouds, len(opts.Clouds), need, opts.F)
	}
	coder, err := erasure.New(opts.F+1, len(opts.Clouds)-(opts.F+1))
	if err != nil {
		return nil, fmt.Errorf("depsky: building erasure coder: %w", err)
	}
	tracker := iopolicy.NewTracker(len(opts.Clouds))
	rates := opts.Pricing.Resolve(opts.Clouds)
	names := cloudLabels(opts.Clouds)
	m := &Manager{
		opts:       opts,
		coder:      coder,
		tracker:    tracker,
		board:      resilience.NewBoard(len(opts.Clouds), opts.Breakers),
		rates:      rates,
		mean:       meanRates(rates),
		selector:   placement.NewSelector(rates, tracker),
		cloudNames: names,
		ins:        newInstruments(opts.Metrics, names),
	}
	if m.ins != nil {
		if m.board != nil {
			ins := m.ins
			m.board.SetObserver(func(cloud, class int, _, to resilience.BreakerState) {
				ins.breakerTo[cloud][class][to].Inc()
			})
		}
		m.tracker.SetObservationCounter(opts.Metrics.Counter("tracker_observations_total"))
		m.registerUsageGauges(opts.Metrics)
	}
	return m, nil
}

// N returns the number of clouds.
func (m *Manager) N() int { return len(m.opts.Clouds) }

// F returns the number of tolerated faulty clouds.
func (m *Manager) F() int { return m.opts.F }

// QuorumSize returns the write quorum n-f.
func (m *Manager) QuorumSize() int { return m.N() - m.opts.F }

func (m *Manager) metaName(unit string) string {
	return m.opts.Prefix + "dsky/" + unit + "/metadata"
}

func (m *Manager) blockName(unit string, version uint64) string {
	return fmt.Sprintf("%sdsky/%s/v%d/block", m.opts.Prefix, unit, version)
}

// --- metadata quorum operations ---

// quorumCtx derives the per-operation context under which one quorum
// fan-out's per-cloud RPCs run. Cancelling it is how first-quorum-wins
// semantics abort the losers of the race; when DisableQuorumCancel is set
// the cancel is a no-op and stragglers run to completion as before.
func (m *Manager) quorumCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if m.opts.DisableQuorumCancel {
		return ctx, func() {}
	}
	return context.WithCancel(ctx)
}

// readMetadataQuorum fetches the metadata object from the clouds and returns
// the per-cloud results (nil for clouds that failed, were never contacted,
// or have no metadata). Per the DepSky read protocol it waits for the first
// n-f responses — a quorum is all an asynchronous system may wait for — then
// cancels the remaining fetches: one straggling cloud no longer adds its
// full round trip to every metadata operation. Any version anchored by a
// write quorum overlaps any n-f responders in at least one correct cloud,
// so the merged union still contains everything a reader is entitled to see.
//
// Under a hedge policy the fan-out is preferred-set-first: only the n-f
// fastest clouds (per the latency tracker, or the policy's explicit order)
// are contacted immediately, and the rest only after the tracked delay
// percentile elapses or a preferred cloud fails — in the common case the
// straggler's RPC is never issued at all.
func (m *Manager) readMetadataQuorum(ctx context.Context, unit string) []*unitMetadata {
	name := m.metaName(unit)
	n := m.N()
	pol := m.policyFor(ctx)
	op := metadataOp()
	gate := m.newHedgeGate(pol, pol.Hedge, m.QuorumSize(), op)
	tr := telemetry.FromContext(ctx)
	opCtx, cancel := m.quorumCtx(ctx)
	defer cancel()
	type fetched struct {
		idx int
		md  *unitMetadata
	}
	results := make(chan fetched, n)
	for i, c := range m.opts.Clouds {
		go func(i int, c cloud.ObjectStore) {
			if !gate.enter(opCtx, i) {
				m.recordGated(tr, "meta.get", i, gate.hedged(i))
				results <- fetched{idx: i}
				return
			}
			start := time.Now()
			var data []byte
			err := m.timedCloudCall(opCtx, pol, i, op, func(ctx context.Context) error {
				var err error
				data, err = c.Get(ctx, name)
				return err
			})
			m.recordSpan(tr, "meta.get", i, start, gate.hedged(i), err)
			if err != nil {
				results <- fetched{idx: i}
				return
			}
			var md unitMetadata
			if json.Unmarshal(data, &md) == nil && md.Unit == unit {
				results <- fetched{idx: i, md: &md}
			} else {
				results <- fetched{idx: i}
			}
		}(i, c)
	}
	out := make([]*unitMetadata, n)
	for responded := 1; responded <= n; responded++ {
		f := <-results
		out[f.idx] = f.md
		if f.md == nil {
			// A failed (or absent) copy releases one gated cloud so the
			// quorum of responses can still be assembled promptly.
			gate.kick()
		}
		if responded >= m.QuorumSize() {
			cancel() // quorum of responses in hand: abort the stragglers
			if !m.opts.DisableQuorumCancel {
				break
			}
		}
	}
	return out
}

// mergeMetadata combines per-cloud metadata copies, keeping the union of
// versions (a version written to a quorum appears in at least one correct
// copy, so the union preserves the paper's availability: reads succeed as
// long as any correct copy plus f+1 block holders are reachable).
//
// Additionally, every version entry found byte-identical on at least f+1
// clouds is marked certified: a forged entry can live on at most the f
// faulty clouds, so f+1 identical copies imply at least one correct cloud
// vouches for it. Whole-object reads verify the final plaintext hash and
// do not need certification, but the ranged read path trusts the per-chunk
// frame hashes in the metadata with no end-to-end check — it only serves
// certified entries and falls back to the verified whole-object path
// otherwise (see openVersion). Among conflicting uncertified variants of
// one number, the copy carrying more integrity hashes wins (corrupted or
// truncated copies carry fewer).
func (m *Manager) mergeMetadata(unit string, copies []*unitMetadata) *unitMetadata {
	merged := &unitMetadata{Unit: unit, certified: make(map[uint64]bool), variants: make(map[uint64][]VersionInfo)}
	type candidate struct {
		info  VersionInfo
		votes int
	}
	// votes[number][canonical-encoding] counts identical copies.
	votes := make(map[uint64]map[string]*candidate)
	for _, c := range copies {
		if c == nil {
			continue
		}
		for _, v := range c.Versions {
			enc, err := json.Marshal(v)
			if err != nil {
				continue
			}
			byEnc := votes[v.Number]
			if byEnc == nil {
				byEnc = make(map[string]*candidate)
				votes[v.Number] = byEnc
			}
			if cand := byEnc[string(enc)]; cand != nil {
				cand.votes++
			} else {
				byEnc[string(enc)] = &candidate{info: v, votes: 1}
			}
		}
	}
	needed := m.opts.F + 1
	for number, byEnc := range votes {
		var best *candidate
		for _, cand := range byEnc {
			// A certified variant always wins; at most one can reach f+1
			// votes (two would require two correct clouds to disagree about
			// a single-writer register). Otherwise prefer the richest copy.
			switch {
			case cand.votes >= needed:
				best = cand
				merged.certified[number] = true
			case merged.certified[number]:
				// keep the certified best
			case best == nil || versionRichness(cand.info) > versionRichness(best.info):
				best = cand
			}
		}
		merged.Versions = append(merged.Versions, best.info)
		// Record every distinct copy, best first: an uncertified best may
		// turn out to be a forged copy (it fails the end-to-end hash
		// check), and readers then retry with the runners-up.
		vs := make([]VersionInfo, 0, len(byEnc))
		vs = append(vs, best.info)
		for _, cand := range byEnc {
			if cand != best {
				vs = append(vs, cand.info)
			}
		}
		sort.SliceStable(vs[1:], func(i, j int) bool {
			return versionRichness(vs[1+i]) > versionRichness(vs[1+j])
		})
		merged.variants[number] = vs
	}
	sort.Slice(merged.Versions, func(i, j int) bool { return merged.Versions[i].Number < merged.Versions[j].Number })
	return merged
}

// versionRichness orders conflicting uncertified copies of one version
// number: the copy carrying more integrity hashes is the more complete one.
func versionRichness(v VersionInfo) int {
	n := len(v.BlockHashes)
	for _, h := range v.ChunkHashes {
		n += len(h)
	}
	return n
}

// writeMetadataQuorum pushes the metadata object to all clouds and returns
// nil once n-f acknowledged.
func (m *Manager) writeMetadataQuorum(ctx context.Context, md *unitMetadata) error {
	payload, err := json.Marshal(md)
	if err != nil {
		return fmt.Errorf("depsky: encoding metadata: %w", err)
	}
	return m.writeQuorum(ctx, m.metaName(md.Unit), "meta.put", func(int) []byte { return payload })
}

// writeQuorum writes per-cloud payloads (payload(i) for cloud i) and waits
// for n-f successes. Once the verdict is known the remaining uploads are
// cancelled: the preferred quorum of n-f clouds (the one the paper's cost
// analysis charges for) holds the version, and the stragglers neither bill
// upload traffic nor keep goroutines alive.
func (m *Manager) writeQuorum(ctx context.Context, name, kind string, payload func(i int) []byte) error {
	return m.writeQuorumHooked(ctx, name, kind, payload, nil)
}

// errHedgeSkipped marks the outcome of a cloud whose upload was never
// issued because the quorum verdict arrived while its hedge gate was still
// holding it back. It only ever surfaces after the verdict is decided, so
// callers never see it.
var errHedgeSkipped = errors.New("depsky: upload gated out by the quorum verdict")

// writeQuorumHooked is writeQuorum with a per-cloud completion hook:
// onCloudDone(i) is called (from the collector goroutine) as soon as cloud
// i's upload attempt has finished, whether it succeeded, failed, was
// cancelled by the quorum verdict, or was never issued at all (hedged
// writes). The streaming pipeline uses it to recycle each cloud's frame
// buffer the moment that cloud is done with it.
//
// Under a WriteHedge policy the fan-out is preferred-set-first (Basil-style
// hedged writes): only the preferred n-f clouds — ranked by the placement
// objective, explicit preference, or tracked upload latency — upload
// immediately; the spares sit behind the hedge gate and launch only if the
// tracked percentile of the preferred set's upload latency elapses without
// a verdict, or a preferred upload fails. On a stable deployment the spare
// uploads are never issued, so the write ships (n-f)/n of the full
// fan-out's ingress bytes and PUT fees at equal durability: the paper's
// quorum math only ever promises the preferred n-f copies (a reader
// tolerating f faults among them still finds n-2f = f+1 intact shards),
// and the metadata union certifies any entry that f+1 of the n-f metadata
// responders agree on, which the preferred quorum guarantees.
//
// Cancelling ctx aborts every in-flight upload and returns ctx.Err(). The
// collector goroutine always drains all n outcomes, but after the verdict
// the losers are already cancelled (and the gated spares release without
// touching the network), so it exits promptly rather than living as long
// as the slowest cloud.
func (m *Manager) writeQuorumHooked(ctx context.Context, name, kind string, payload func(i int) []byte, onCloudDone func(i int)) error {
	n := m.N()
	pol := m.policyFor(ctx)
	op := iopolicy.PutOp(len(payload(0)))
	gate := m.newHedgeGate(pol, pol.WriteHedge, m.QuorumSize(), op)
	tr := telemetry.FromContext(ctx)
	opCtx, cancel := m.quorumCtx(ctx)
	type outcome struct {
		idx int
		err error
	}
	results := make(chan outcome, n)
	for i, c := range m.opts.Clouds {
		go func(i int, c cloud.ObjectStore) {
			if !gate.enter(opCtx, i) {
				m.recordGated(tr, kind, i, gate.hedged(i))
				results <- outcome{idx: i, err: errHedgeSkipped}
				return
			}
			start := time.Now()
			err := m.timedCloudCall(opCtx, pol, i, op, func(ctx context.Context) error {
				return c.Put(ctx, name, payload(i))
			})
			m.recordSpan(tr, kind, i, start, gate.hedged(i), err)
			results <- outcome{idx: i, err: err}
		}(i, c)
	}
	verdict := make(chan error, 1)
	go func() {
		defer cancel()
		successes, failures, decided := 0, 0, false
		for i := 0; i < n; i++ {
			o := <-results
			if onCloudDone != nil {
				onCloudDone(o.idx)
			}
			if o.err == nil {
				successes++
			} else {
				failures++
				// A failed preferred upload releases one gated spare at
				// once, so the quorum can still be assembled without
				// waiting out the hedge delay.
				gate.kick()
			}
			if decided {
				continue
			}
			switch {
			case successes >= m.QuorumSize():
				if tr != nil {
					tr.SetVerdict(time.Since(tr.Start))
				}
				verdict <- nil
				decided = true
				cancel() // quorum reached: abort the redundant uploads
			case failures > m.opts.F:
				if cerr := ctx.Err(); cerr != nil {
					verdict <- cerr
				} else {
					verdict <- fmt.Errorf("%w: %d failures out of %d clouds", ErrQuorumWrite, failures, n)
				}
				decided = true
				cancel()
			}
		}
		if !decided {
			if cerr := ctx.Err(); cerr != nil {
				verdict <- cerr
			} else {
				verdict <- fmt.Errorf("%w: only %d acks", ErrQuorumWrite, successes)
			}
		}
	}()
	return <-verdict
}

// --- public API ---

// Write stores data as the next version of unit and returns its version info.
// SCFS serializes writers per file (via locks), matching DepSky's
// single-writer register semantics. Cancelling ctx aborts the quorum
// uploads; because the metadata anchoring the version is only written after
// the blocks reach a quorum, a cancelled write never leaves a partially
// visible version.
func (m *Manager) Write(ctx context.Context, unit string, data []byte) (VersionInfo, error) {
	ctx, tr := m.opts.Tracer.Start(ctx, "write", unit)
	defer tr.Finish()
	merged := m.mergeMetadata(unit, m.readMetadataQuorum(ctx, unit))
	var next uint64 = 1
	if newest := merged.newest(); newest != nil {
		next = newest.Number + 1
	}

	blocks, info, err := m.encode(data)
	if err != nil {
		return VersionInfo{}, err
	}
	info.Number = next

	blockPayloads := make([][]byte, m.N())
	for i := range blocks {
		b := encodeBlock(info.Protocol, &blocks[i])
		blockPayloads[i] = b
		info.BlockHashes[i] = seccrypto.Hash(b)
	}

	if err := m.writeQuorum(ctx, m.blockName(unit, next), "block.put", func(i int) []byte { return blockPayloads[i] }); err != nil {
		return VersionInfo{}, err
	}
	merged.Versions = append(merged.Versions, info)
	if err := m.writeMetadataQuorum(ctx, merged); err != nil {
		return VersionInfo{}, err
	}
	return info, nil
}

// encode builds the per-cloud blocks for data according to the protocol.
func (m *Manager) encode(data []byte) ([]block, VersionInfo, error) {
	info := VersionInfo{
		DataHash:    seccrypto.Hash(data),
		Size:        len(data),
		BlockHashes: make([]string, m.N()),
		Protocol:    m.opts.Protocol,
	}
	blocks := make([]block, m.N())
	if m.opts.Protocol == ProtocolA {
		for i := range blocks {
			blocks[i] = block{Full: data, ShardIdx: i}
		}
		return blocks, info, nil
	}
	key, err := seccrypto.NewKey()
	if err != nil {
		return nil, info, err
	}
	ciphertext, err := seccrypto.Encrypt(key, data)
	if err != nil {
		return nil, info, err
	}
	shards, err := m.coder.Split(ciphertext)
	if err != nil {
		return nil, info, fmt.Errorf("depsky: erasure coding: %w", err)
	}
	shares, err := secretshare.Split(key, m.N(), m.opts.F+1, nil)
	if err != nil {
		return nil, info, fmt.Errorf("depsky: secret sharing: %w", err)
	}
	for i := range blocks {
		blocks[i] = block{
			Shard:    shards[i],
			ShardIdx: i,
			KeyX:     shares[i].X,
			KeyShare: shares[i].Data,
		}
	}
	// The ciphertext length is not stored explicitly: it is info.Size plus
	// the fixed IV prefix, which tryDecode uses to strip the shard padding.
	return blocks, info, nil
}

// Read returns the newest version of unit.
func (m *Manager) Read(ctx context.Context, unit string) ([]byte, VersionInfo, error) {
	ctx, tr := m.opts.Tracer.Start(ctx, "read", unit)
	defer tr.Finish()
	merged := m.mergeMetadata(unit, m.readMetadataQuorum(ctx, unit))
	newest := merged.newest()
	if newest == nil {
		if err := ctx.Err(); err != nil {
			return nil, VersionInfo{}, err
		}
		return nil, VersionInfo{}, ErrUnitNotFound
	}
	data, err := m.readVersionAny(ctx, unit, merged.variantsOf(newest.Number))
	return data, *newest, err
}

// ReadMatching returns the version of unit whose plaintext hash equals hash.
// This is the operation added to DepSky for SCFS's consistency anchor.
func (m *Manager) ReadMatching(ctx context.Context, unit, hash string) ([]byte, VersionInfo, error) {
	ctx, tr := m.opts.Tracer.Start(ctx, "read", unit)
	defer tr.Finish()
	merged := m.mergeMetadata(unit, m.readMetadataQuorum(ctx, unit))
	info := merged.find(hash)
	if info == nil {
		if err := ctx.Err(); err != nil {
			return nil, VersionInfo{}, err
		}
		return nil, VersionInfo{}, ErrVersionNotFound
	}
	var matching []VersionInfo
	for _, v := range merged.variantsOf(info.Number) {
		if v.DataHash == hash {
			matching = append(matching, v)
		}
	}
	data, err := m.readVersionAny(ctx, unit, matching)
	return data, *info, err
}

// readVersionAny tries each metadata variant of one version, best first,
// until one decodes and verifies end-to-end. Distinct variants only exist
// when faulty clouds rewrote their metadata copies; the honest variant's
// hashes then let the read succeed where the forged one fails integrity.
func (m *Manager) readVersionAny(ctx context.Context, unit string, variants []VersionInfo) ([]byte, error) {
	var lastErr error
	for _, v := range variants {
		data, err := m.readVersion(ctx, unit, v)
		if err == nil {
			return data, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	if lastErr == nil {
		lastErr = ErrVersionNotFound
	}
	return nil, lastErr
}

// ListVersions returns all known versions of a unit, oldest first.
func (m *Manager) ListVersions(ctx context.Context, unit string) ([]VersionInfo, error) {
	merged := m.mergeMetadata(unit, m.readMetadataQuorum(ctx, unit))
	if len(merged.Versions) == 0 {
		return nil, ctx.Err()
	}
	return merged.Versions, nil
}

// DeleteVersion removes the blocks of one version from all clouds and drops
// it from the metadata (used by the SCFS garbage collector).
func (m *Manager) DeleteVersion(ctx context.Context, unit string, number uint64) error {
	ctx, tr := m.opts.Tracer.Start(ctx, "delete", unit)
	defer tr.Finish()
	merged := m.mergeMetadata(unit, m.readMetadataQuorum(ctx, unit))
	idx := -1
	for i, v := range merged.Versions {
		if v.Number == number {
			idx = i
			break
		}
	}
	if idx < 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		return ErrVersionNotFound
	}
	removed := merged.Versions[idx]
	merged.Versions = append(merged.Versions[:idx], merged.Versions[idx+1:]...)
	if err := m.writeMetadataQuorum(ctx, merged); err != nil {
		return err
	}
	m.deleteVersionBlocks(ctx, unit, removed)
	return nil
}

// DeleteVersions removes several versions of a unit with a single metadata
// round trip (DeleteVersion costs one quorum read and one quorum write per
// call; garbage-collection sweeps delete many versions at once). It returns
// how many of the requested versions existed and were removed; absent
// numbers are skipped silently.
func (m *Manager) DeleteVersions(ctx context.Context, unit string, numbers []uint64) (int, error) {
	if len(numbers) == 0 {
		return 0, nil
	}
	ctx, tr := m.opts.Tracer.Start(ctx, "delete", unit)
	defer tr.Finish()
	doomed := make(map[uint64]bool, len(numbers))
	for _, n := range numbers {
		doomed[n] = true
	}
	merged := m.mergeMetadata(unit, m.readMetadataQuorum(ctx, unit))
	var removed []VersionInfo
	kept := merged.Versions[:0]
	for _, v := range merged.Versions {
		if doomed[v.Number] {
			removed = append(removed, v)
		} else {
			kept = append(kept, v)
		}
	}
	if len(removed) == 0 {
		return 0, nil
	}
	merged.Versions = kept
	if err := m.writeMetadataQuorum(ctx, merged); err != nil {
		return 0, err
	}
	for _, v := range removed {
		m.deleteVersionBlocks(ctx, unit, v)
	}
	return len(removed), nil
}

// DeleteUnit removes every version and the metadata of the unit.
func (m *Manager) DeleteUnit(ctx context.Context, unit string) error {
	versions, err := m.ListVersions(ctx, unit)
	if err != nil {
		return err
	}
	numbers := make([]uint64, 0, len(versions))
	for _, v := range versions {
		numbers = append(numbers, v.Number)
	}
	if _, err := m.DeleteVersions(ctx, unit, numbers); err != nil {
		return err
	}
	name := m.metaName(unit)
	var wg sync.WaitGroup
	for _, c := range m.opts.Clouds {
		wg.Add(1)
		go func(c cloud.ObjectStore) {
			defer wg.Done()
			_ = c.Delete(ctx, name)
		}(c)
	}
	wg.Wait()
	return nil
}

// readVersion fetches blocks for the given version until it can reconstruct
// and verify the value. The fan-out is first-quorum-wins: the moment enough
// verified blocks have arrived to decode the value, the remaining per-cloud
// fetches are cancelled instead of silently running on (each redundant fetch
// costs a GET fee plus the block's worth of outbound traffic at that cloud).
// Under a hedge policy only the f+1 preferred clouds are contacted up front;
// the rest launch after the tracked delay percentile or on a preferred
// cloud's failure (see dispatch.go).
func (m *Manager) readVersion(ctx context.Context, unit string, info VersionInfo) ([]byte, error) {
	if info.Chunked() {
		return m.readChunkedVersion(ctx, unit, info)
	}
	scratch := &decodeScratch{}
	defer scratch.release()
	pol := m.policyFor(ctx)
	op := m.blockOp(info.Protocol, info.Size)
	gate := m.newHedgeGate(pol, pol.Hedge, m.readNeed(info.Protocol), op)
	tr := telemetry.FromContext(ctx)
	opCtx, cancel := m.quorumCtx(ctx)
	defer cancel()
	name := m.blockName(unit, info.Number)
	type fetched struct {
		idx int
		blk *block
	}
	results := make(chan fetched, m.N())
	var wg sync.WaitGroup
	for i, c := range m.opts.Clouds {
		wg.Add(1)
		go func(i int, c cloud.ObjectStore) {
			defer wg.Done()
			if !gate.enter(opCtx, i) {
				m.recordGated(tr, "block.get", i, gate.hedged(i))
				results <- fetched{idx: i}
				return
			}
			start := time.Now()
			var data []byte
			err := m.timedCloudCall(opCtx, pol, i, op, func(ctx context.Context) error {
				var err error
				data, err = c.Get(ctx, name)
				return err
			})
			m.recordSpan(tr, "block.get", i, start, gate.hedged(i), err)
			if err != nil {
				results <- fetched{idx: i}
				return
			}
			// Discard blocks whose hash does not match the metadata (this is
			// how silently corrupting clouds are tolerated).
			if i < len(info.BlockHashes) && info.BlockHashes[i] != "" && !seccrypto.VerifyHash(data, info.BlockHashes[i]) {
				results <- fetched{idx: i}
				return
			}
			b, err := decodeBlock(data)
			if err != nil {
				results <- fetched{idx: i}
				return
			}
			results <- fetched{idx: i, blk: b}
		}(i, c)
	}
	go func() { wg.Wait(); close(results) }()

	blocks := make([]*block, m.N())
	got := 0
	for f := range results {
		if f.blk == nil {
			// An unusable response (failure, hash mismatch, bad frame)
			// releases one gated cloud so the decode can still assemble
			// enough shards without waiting out the hedge delay.
			gate.kick()
			continue
		}
		blocks[f.idx] = f.blk
		got++
		if data, err := m.tryDecode(blocks, info, scratch); err == nil {
			if tr != nil {
				tr.SetVerdict(time.Since(tr.Start))
			}
			cancel() // first quorum wins: abort the redundant fetches
			return data, nil
		} else if got >= m.readNeed(info.Protocol) {
			// Enough shards arrived but the decode still failed (a corrupt
			// or withheld share): pull in another cloud immediately.
			gate.kick()
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if got == 0 {
		return nil, ErrQuorumRead
	}
	// All responses are in; one final attempt with everything we have.
	data, err := m.tryDecode(blocks, info, scratch)
	if err != nil {
		return nil, err
	}
	return data, nil
}

// decodeScratch hands out pooled buffers that are reused across the decode
// attempts of one read (tryDecode runs once per arriving block, and a 1 MiB
// degraded read used to allocate ~5 MB across those attempts). Buffers are
// recycled by position: attempt k asks for the same sequence of sizes as
// attempt k-1, so reset() lets the next attempt reuse them in place.
type decodeScratch struct {
	bufs []([]byte)
	next int
}

// reset restarts buffer handout for a new decode attempt.
func (s *decodeScratch) reset() { s.next = 0 }

// get returns a pooled buffer of length n, reusing the buffer handed out at
// the same position of a previous attempt when it is large enough.
func (s *decodeScratch) get(n int) []byte {
	if s.next < len(s.bufs) {
		if cap(s.bufs[s.next]) >= n {
			b := s.bufs[s.next][:n]
			s.next++
			return b
		}
		stream.Buffers.Put(s.bufs[s.next])
		s.bufs[s.next] = stream.Buffers.Get(n)
		b := s.bufs[s.next]
		s.next++
		return b
	}
	b := stream.Buffers.Get(n)
	s.bufs = append(s.bufs, b)
	s.next++
	return b
}

// release returns every scratch buffer to the shared pool.
func (s *decodeScratch) release() {
	for _, b := range s.bufs {
		stream.Buffers.Put(b)
	}
	s.bufs = nil
	s.next = 0
}

// tryDecode attempts to reconstruct and verify the value from the blocks
// collected so far.
func (m *Manager) tryDecode(blocks []*block, info VersionInfo, scratch *decodeScratch) ([]byte, error) {
	scratch.reset()
	if info.Protocol == ProtocolA {
		for _, b := range blocks {
			if b == nil || b.Full == nil {
				continue
			}
			if seccrypto.Hash(b.Full) == info.DataHash {
				return b.Full, nil
			}
		}
		return nil, ErrIntegrity
	}
	// DepSky-CA: need f+1 shards and f+1 key shares.
	needed := m.opts.F + 1
	shards := make([][]byte, m.coder.TotalShards())
	var shares []secretshare.Share
	present := 0
	for _, b := range blocks {
		if b == nil || b.Shard == nil {
			continue
		}
		if b.ShardIdx >= 0 && b.ShardIdx < len(shards) {
			shards[b.ShardIdx] = b.Shard
			present++
		}
		if b.KeyShare != nil {
			shares = append(shares, secretshare.Share{X: b.KeyX, Data: b.KeyShare})
		}
	}
	if present < needed || len(shares) < needed {
		return nil, ErrQuorumRead
	}
	// Rebuild only the missing data shards (Join never reads parity), into
	// scratch buffers reused across attempts.
	missingData := 0
	shardSize := 0
	for i, s := range shards {
		if s != nil {
			shardSize = len(s)
		} else if i < m.coder.DataShards {
			missingData++
		}
	}
	if err := m.coder.ReconstructDataInto(shards, scratch.get(missingData*shardSize)); err != nil {
		return nil, fmt.Errorf("depsky: reconstructing: %w", err)
	}
	key, err := secretshare.Combine(shares, needed)
	if err != nil {
		return nil, fmt.Errorf("depsky: recovering key: %w", err)
	}
	// The ciphertext length is the plaintext length plus the IV prefix.
	// info.Size is wire-decoded metadata that is only proven honest by the
	// DataHash check at the end of this function — it must not size an
	// allocation before then. The shards actually fetched bound it: a join
	// can never yield more than DataShards full shards of ciphertext, so a
	// forged Size is rejected here for bytes instead of panicking (or OOMing)
	// make() below (the DecodeBatch bug class, metadata edition).
	cipherLen := info.Size + seccrypto.CiphertextOverhead
	if maxJoin := m.coder.DataShards * shardSize; info.Size < 0 || cipherLen < 0 || cipherLen > maxJoin {
		return nil, fmt.Errorf("%w: metadata size %d inconsistent with %d fetched shard bytes", ErrIntegrity, info.Size, maxJoin)
	}
	ciphertext := scratch.get(cipherLen)
	if err := m.coder.JoinInto(ciphertext, shards, cipherLen); err != nil {
		return nil, fmt.Errorf("depsky: joining shards: %w", err)
	}
	plaintext, err := seccrypto.DecryptInto(make([]byte, info.Size), key, ciphertext)
	if err != nil {
		return nil, fmt.Errorf("depsky: decrypting: %w", err)
	}
	if seccrypto.Hash(plaintext) != info.DataHash {
		return nil, ErrIntegrity
	}
	return plaintext, nil
}

// StorageFootprint returns how many bytes one version of the given size
// occupies across all clouds under the configured protocol (used by the cost
// model: ~1.5x for CA with f=1 versus 4x for replication). It is the byte
// axis of EstimateFootprint; see footprint.go for the full cost model
// including per-request fees.
func (m *Manager) StorageFootprint(size int) int {
	return int(m.EstimateFootprint(int64(size), false).Bytes)
}
