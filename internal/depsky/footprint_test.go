package depsky

import (
	"bytes"
	"testing"
	"time"
)

// TestFootprintWeighsChunksAgainstBlocks is the point of the cost model:
// for the same payload, the chunked layout stores roughly the same bytes
// but multiplies objects and request fees by the chunk count — exactly the
// axis StorageFootprint alone cannot see.
func TestFootprintWeighsChunksAgainstBlocks(t *testing.T) {
	const chunk = 4096
	m, _, _ := hedgeManager(t, make([]time.Duration, 4), Options{ChunkSize: chunk})

	const size = 16 * chunk
	whole := m.EstimateFootprint(size, false)
	chunked := m.EstimateFootprint(size, true)

	if whole.Objects != 3 { // one block on each of the n-f = 3 preferred clouds
		t.Fatalf("whole-object Objects = %d, want 3", whole.Objects)
	}
	if chunked.Objects != 16*3 {
		t.Fatalf("chunked Objects = %d, want 48", chunked.Objects)
	}
	if chunked.GetRequestsPerRead != 16*2 { // f+1 = 2 decoding clouds per chunk
		t.Fatalf("chunked GetRequestsPerRead = %d, want 32", chunked.GetRequestsPerRead)
	}
	if whole.GetRequestsPerRead != 2 {
		t.Fatalf("whole GetRequestsPerRead = %d, want 2", whole.GetRequestsPerRead)
	}
	if chunked.DeleteRequests != 16*4 { // deletes are best-effort on all n clouds
		t.Fatalf("chunked DeleteRequests = %d, want 64", chunked.DeleteRequests)
	}
	// Bytes stay within ~2x of each other (per-chunk shard padding only).
	if chunked.Bytes < whole.Bytes || chunked.Bytes > 2*whole.Bytes {
		t.Fatalf("chunked Bytes = %d vs whole %d: expected same order", chunked.Bytes, whole.Bytes)
	}
	// StorageFootprint remains the byte axis of the estimate.
	if got := m.StorageFootprint(size); int64(got) != whole.Bytes {
		t.Fatalf("StorageFootprint = %d, want %d", got, whole.Bytes)
	}
}

// TestVersionFootprintMatchesStoredVersion: the footprint computed from
// real version metadata agrees with the prediction for the same geometry.
func TestVersionFootprintMatchesStoredVersion(t *testing.T) {
	const chunk = 4096
	m, _, _ := hedgeManager(t, make([]time.Duration, 4), Options{ChunkSize: chunk})
	data := bytes.Repeat([]byte{0xEB}, 5*chunk+123)

	info, err := m.WriteFrom(bg, "u", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	got := m.VersionFootprint(info)
	want := m.EstimateFootprint(int64(len(data)), true)
	if got != want {
		t.Fatalf("VersionFootprint %+v != EstimateFootprint %+v", got, want)
	}

	whole, err2 := m.Write(bg, "w", data)
	if err2 != nil {
		t.Fatal(err2)
	}
	if got := m.VersionFootprint(whole); got != m.EstimateFootprint(int64(len(data)), false) {
		t.Fatalf("whole-object VersionFootprint mismatch: %+v", got)
	}
}
