package depsky

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"scfs/internal/cloud"
	"scfs/internal/cloudsim"
)

// newSkewedManager builds a 4-cloud manager where cloud `slow` has the given
// RTT and the rest are instant.
func newSkewedManager(t testing.TB, slow int, rtt time.Duration, chunkSize int) ([]*cloudsim.Provider, *Manager) {
	t.Helper()
	providers := make([]*cloudsim.Provider, 4)
	clients := make([]cloud.ObjectStore, 4)
	for i := range providers {
		opts := cloudsim.Options{Name: fmt.Sprintf("c%d", i)}
		if i == slow {
			opts.Latency = cloudsim.LatencyProfile{RTT: rtt}
		}
		providers[i] = cloudsim.NewProvider(opts)
		clients[i] = providers[i].MustClient(providers[i].CreateAccount("alice"))
	}
	m, err := New(Options{Clouds: clients, F: 1, ChunkSize: chunkSize})
	if err != nil {
		t.Fatal(err)
	}
	return providers, m
}

// waitGoroutines polls until the goroutine count drops to at most want, or
// the timeout expires; it returns the last observed count. This is the
// hand-rolled leak check: cancelled per-cloud RPCs must unwind promptly, so
// the count returns to its pre-operation level long before a multi-second
// straggler would have finished on its own.
func waitGoroutines(want int, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for {
		runtime.GC() // nudge finalizers; cancelled goroutines need no GC but this keeps counts stable
		n := runtime.NumGoroutine()
		if n <= want || time.Now().After(deadline) {
			return n
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestQuorumOpsLeaveNoStragglerGoroutines is the per-cloud goroutine-leak
// check: with one cloud a 5-second straggler, a *completed* WriteFrom and a
// completed ranged Open/read must leave no cloud RPCs running — the quorum
// verdict cancels the losers instead of letting them sleep out their
// simulated round trips.
func TestQuorumOpsLeaveNoStragglerGoroutines(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second straggler latencies")
	}
	const straggler = 5 * time.Second
	baseline := runtime.NumGoroutine()

	_, m := newSkewedManager(t, 3, straggler, 4096)
	data := bytes.Repeat([]byte("leakcheck "), 2000) // ~5 chunks

	start := time.Now()
	info, err := m.WriteFrom(context.Background(), "u", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("WriteFrom: %v", err)
	}
	if elapsed := time.Since(start); elapsed > straggler/2 {
		t.Fatalf("WriteFrom waited on the straggler: %v", elapsed)
	}

	start = time.Now()
	r, _, err := m.Open(context.Background(), "u")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if !bytes.Equal(got, data) {
		t.Fatal("read mismatch")
	}
	if elapsed := time.Since(start); elapsed > straggler/2 {
		t.Fatalf("read waited on the straggler: %v", elapsed)
	}
	_ = info

	// All straggler RPCs were cancelled by the quorum verdicts; the
	// goroutine count must return to baseline well within the straggler's
	// 5s RTT (allow a small slack for the runtime's own goroutines).
	const slack = 2
	if n := waitGoroutines(baseline+slack, 2*time.Second); n > baseline+slack {
		t.Fatalf("%d goroutines still running (baseline %d): straggler RPCs leaked", n, baseline)
	}
}

// TestCancellationIsPrompt pins the acceptance criterion: with a 5-second
// straggler profile on *every* cloud, cancelling the context returns
// ctx.Err() in well under 100ms.
func TestCancellationIsPrompt(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second straggler latencies")
	}
	providers := make([]*cloudsim.Provider, 4)
	clients := make([]cloud.ObjectStore, 4)
	for i := range providers {
		providers[i] = cloudsim.NewProvider(cloudsim.Options{
			Name:    fmt.Sprintf("c%d", i),
			Latency: cloudsim.LatencyProfile{RTT: 5 * time.Second},
		})
		clients[i] = providers[i].MustClient(providers[i].CreateAccount("alice"))
	}
	m, err := New(Options{Clouds: clients, F: 1})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := m.Read(ctx, "u")
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the fan-out park in its sleeps
	cancelled := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if lag := time.Since(cancelled); lag > 100*time.Millisecond {
			t.Fatalf("cancellation took %v, want < 100ms", lag)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Read did not return after cancellation")
	}
}

// gateStore blocks every Put until the caller's context is cancelled,
// signalling each attempt. It makes "cancelled mid-quorum-upload"
// deterministic instead of timing-dependent.
type gateStore struct {
	cloud.ObjectStore
	started chan struct{}
}

func (g *gateStore) Put(ctx context.Context, name string, data []byte) error {
	select {
	case g.started <- struct{}{}:
	default:
	}
	<-ctx.Done()
	return ctx.Err()
}

// TestCancelledWriteLeavesNoPartialVersion: a ctx cancelled while the chunk
// uploads are in flight must abort the write with ctx.Err() and leave no
// partially visible version — the metadata object never references shards
// that were not fully uploaded.
func TestCancelledWriteLeavesNoPartialVersion(t *testing.T) {
	providers, inner := testClouds(t, 4)
	gated := make([]cloud.ObjectStore, 4)
	started := make(chan struct{}, 16)
	for i, c := range inner {
		gated[i] = &gateStore{ObjectStore: c, started: started}
	}
	m, err := New(Options{Clouds: gated, F: 1, ChunkSize: 1024})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := m.WriteFrom(ctx, "u", bytes.NewReader(bytes.Repeat([]byte{7}, 5000)))
		done <- err
	}()
	<-started // at least one chunk upload is in flight
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("WriteFrom err = %v, want context.Canceled", err)
	}

	// No version may be visible, and no object may have reached any cloud.
	versions, err := m.ListVersions(context.Background(), "u")
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 0 {
		t.Fatalf("cancelled write left %d visible versions: %+v", len(versions), versions)
	}
	for i, p := range providers {
		if n := p.ObjectCount(); n != 0 {
			t.Fatalf("cloud %d stores %d objects after a cancelled write", i, n)
		}
	}
}

// TestDeadlineLongerThanQuorumSucceeds: a deadline shorter than the slowest
// cloud but longer than the quorum must not fail the operation — the quorum
// answers before the deadline and the straggler is cancelled, not waited
// for.
func TestDeadlineLongerThanQuorumSucceeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second straggler latencies")
	}
	_, m := newSkewedManager(t, 2, 5*time.Second, 4096)
	data := bytes.Repeat([]byte("deadline "), 1500)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := m.WriteFrom(ctx, "u", bytes.NewReader(data)); err != nil {
		t.Fatalf("WriteFrom under quorum-sized deadline: %v", err)
	}
	got, _, err := m.Read(ctx, "u")
	if err != nil {
		t.Fatalf("Read under quorum-sized deadline: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read mismatch")
	}
	if ctx.Err() != nil {
		t.Fatal("operations overran the deadline")
	}
}

// TestOpenReadRetriesAfterCancelledFirstRead: a cancelled first read
// through an Open'd whole-object reader must not poison the reader — a
// later read with a live context retries the fetch and succeeds.
func TestOpenReadRetriesAfterCancelledFirstRead(t *testing.T) {
	_, m := newManager(t, ProtocolCA)
	data := bytes.Repeat([]byte("retry "), 500)
	if _, err := m.Write(bg, "u", data); err != nil {
		t.Fatal(err)
	}
	r, _, err := m.Open(bg, "u") // v1 version: whole-object fetch path
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	dead, cancel := context.WithCancel(bg)
	cancel()
	buf := make([]byte, len(data))
	if _, err := r.ReadAtContext(dead, buf, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("read under dead ctx: %v, want context.Canceled", err)
	}
	n, err := r.ReadAtContext(bg, buf, 0)
	if err != nil && err != io.EOF {
		t.Fatalf("read after cancelled read: %v (transient error was latched)", err)
	}
	if n != len(data) || !bytes.Equal(buf, data) {
		t.Fatal("read after cancelled read returned wrong data")
	}
}
