package depsky

// Per-cloud resilience. Every quorum fan-out issues its per-cloud RPCs
// through cloudCall, which layers three behaviours over the bare RPC:
//
//   - Outcome recording: every attempt's verdict feeds the circuit-breaker
//     scoreboard (internal/resilience.Board), one breaker per (cloud,
//     direction). Context cancellations are ignored — quorum verdicts
//     cancel straggler RPCs constantly and say nothing about the cloud.
//   - Retry with backoff: when the operation's policy grants a retry
//     budget (Policy.Retry), transient failures (outage, throttle) are
//     retried with full-jitter exponential backoff inside that budget.
//     Suspected clouds get no budget: retrying a cloud the breaker already
//     condemned burns the budget where it is least likely to help, and the
//     quorum layer has n-1 other clouds to work with.
//   - Breaker consumption: under the default BreakerDemote mode a
//     suspected cloud is still contacted when the fan-out reaches it (the
//     quorum may need its vote — availability is never traded away), but
//     rankClouds has already pushed it to the back of the launch order, so
//     a hedged fan-out usually decides the quorum before the gate releases
//     it. BreakerFailFast skips suspected clouds without touching the
//     network (their slot counts as a failure); BreakerBypass ignores the
//     scoreboard (it is still fed).

import (
	"context"
	"errors"
	"time"

	"scfs/internal/iopolicy"
	"scfs/internal/resilience"
	"scfs/internal/telemetry"
)

// errBreakerSkipped is the outcome of a cloud that a fail-fast operation
// refused to contact because its breaker is open. It is permanent (never
// retried) and counts as that cloud's failure in the quorum math.
var errBreakerSkipped = errors.New("depsky: cloud skipped by open circuit breaker")

// retryFor converts the policy's retry knobs into a resilience budget.
func retryFor(pol iopolicy.Policy) resilience.RetryPolicy {
	return resilience.RetryPolicy{
		MaxAttempts: pol.Retry.MaxAttempts,
		Backoff: resilience.Backoff{
			Base: pol.Retry.BackoffBase,
			Max:  pol.Retry.BackoffMax,
		},
	}
}

// breakerClass maps a tracker Op onto the board's class axis: breakers are
// kept per direction (GET/PUT), matching how providers actually fail —
// a throttled ingress path says little about egress health.
func breakerClass(op iopolicy.Op) int { return int(op.Class) }

// Board exposes the circuit-breaker scoreboard (scenario assertions,
// diagnostics).
func (m *Manager) Board() *resilience.Board { return m.board }

// cloudCall issues one logical per-cloud RPC under the resilience layer:
// fn performs a single attempt against cloud i. The returned error is the
// last attempt's (or errBreakerSkipped when fail-fast refused the cloud).
// Every attempt is recorded on the scoreboard and, on success, in the
// latency tracker.
func (m *Manager) cloudCall(ctx context.Context, pol iopolicy.Policy, i int, op iopolicy.Op, fn func(context.Context) error) error {
	class := breakerClass(op)
	if pol.Breaker == iopolicy.BreakerFailFast && !m.board.Admit(i, class) {
		if m.ins != nil {
			m.ins.breakerSkip[i][class].Inc()
		}
		return errBreakerSkipped
	}
	retry := retryFor(pol)
	if retry.Enabled() && pol.Breaker != iopolicy.BreakerBypass && m.board.Suspected(i, class) {
		// No budget for a suspected cloud: one probe-like attempt only.
		retry = resilience.RetryPolicy{}
	}
	var retries *telemetry.Counter
	if m.ins != nil {
		retries = m.ins.retries[i][class]
	}
	return retry.Do(ctx, fn, func(attempt int, err error) {
		m.board.Record(i, class, err)
		if attempt > 0 {
			retries.Inc()
		}
	})
}

// timedCloudCall is cloudCall with per-attempt latency tracking: each
// successful attempt's duration feeds the tracker so hedge delays and
// fastest-first rankings keep learning through retries.
func (m *Manager) timedCloudCall(ctx context.Context, pol iopolicy.Policy, i int, op iopolicy.Op, fn func(context.Context) error) error {
	return m.cloudCall(ctx, pol, i, op, func(ctx context.Context) error {
		start := time.Now()
		err := fn(ctx)
		m.observeRPC(ctx, i, op, start, err)
		return err
	})
}
