package depsky

import (
	"bytes"
	"errors"
	"testing"
)

func TestWireRoundTripCA(t *testing.T) {
	in := &block{
		Shard:    []byte{0, 1, 2, 0xff, 4},
		ShardIdx: 3,
		KeyX:     7,
		KeyShare: []byte{9, 8, 7},
	}
	frame := encodeBlock(ProtocolCA, in)
	if want := wireHeaderLen + len(in.KeyShare) + len(in.Shard); len(frame) != want {
		t.Fatalf("frame size = %d, want %d (no inflation)", len(frame), want)
	}
	out, err := decodeBlock(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Shard, in.Shard) || out.ShardIdx != in.ShardIdx ||
		out.KeyX != in.KeyX || !bytes.Equal(out.KeyShare, in.KeyShare) || out.Full != nil {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestWireRoundTripA(t *testing.T) {
	in := &block{Full: []byte("replicated value"), ShardIdx: 2}
	frame := encodeBlock(ProtocolA, in)
	out, err := decodeBlock(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Full, in.Full) || out.ShardIdx != 2 || out.Shard != nil || out.KeyShare != nil {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestWireRoundTripEmptyPayload(t *testing.T) {
	frame := encodeBlock(ProtocolCA, &block{ShardIdx: 1, KeyX: 1, KeyShare: []byte{5}})
	out, err := decodeBlock(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Shard) != 0 || out.KeyX != 1 {
		t.Fatalf("empty payload mishandled: %+v", out)
	}
}

func TestWireRoundTripV2(t *testing.T) {
	in := &block{
		Shard:         []byte{0, 1, 2, 0xff, 4, 5},
		ShardIdx:      2,
		KeyX:          9,
		KeyShare:      []byte{1, 2, 3, 4},
		ChunkIdx:      41,
		ChunkPlainLen: 777,
	}
	frame := make([]byte, frameLenV2(len(in.KeyShare), len(in.Shard)))
	encodeBlockV2(frame, ProtocolCA, in)
	out, err := decodeBlock(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Shard, in.Shard) || out.ShardIdx != in.ShardIdx ||
		out.KeyX != in.KeyX || !bytes.Equal(out.KeyShare, in.KeyShare) ||
		out.ChunkIdx != in.ChunkIdx || out.ChunkPlainLen != in.ChunkPlainLen || out.Full != nil {
		t.Fatalf("v2 round trip mismatch: %+v", out)
	}

	// DepSky-A chunk: full replicated chunk, no key share.
	a := &block{Full: []byte("chunk bytes"), ShardIdx: 1, ChunkIdx: 0, ChunkPlainLen: 11}
	frameA := make([]byte, frameLenV2(0, len(a.Full)))
	encodeBlockV2(frameA, ProtocolA, a)
	outA, err := decodeBlock(frameA)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(outA.Full, a.Full) || outA.ChunkIdx != 0 || outA.ChunkPlainLen != 11 || outA.KeyShare != nil {
		t.Fatalf("v2 A round trip mismatch: %+v", outA)
	}
}

// TestWireV1FramesHaveNoChunk pins the compat contract: v1 frames decode
// with ChunkIdx -1 so readers can tell the layouts apart.
func TestWireV1FramesHaveNoChunk(t *testing.T) {
	out, err := decodeBlock(encodeBlock(ProtocolCA, &block{Shard: []byte{1}, KeyX: 1, KeyShare: []byte{2}}))
	if err != nil {
		t.Fatal(err)
	}
	if out.ChunkIdx != -1 || out.ChunkPlainLen != 0 {
		t.Fatalf("v1 frame decoded with chunk fields %d/%d", out.ChunkIdx, out.ChunkPlainLen)
	}
}

func TestWireRejectsMalformedV2Frames(t *testing.T) {
	in := &block{Shard: []byte{1, 2, 3}, KeyX: 1, KeyShare: []byte{4}, ChunkIdx: 0, ChunkPlainLen: 3}
	good := make([]byte, frameLenV2(1, 3))
	encodeBlockV2(good, ProtocolCA, in)
	cases := map[string][]byte{
		"short v2 header": good[:wireHeaderLenV2-1],
		"truncated body":  good[:len(good)-1],
		"oversized frame": append(append([]byte{}, good...), 0),
	}
	for name, frame := range cases {
		if _, err := decodeBlock(frame); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", name, err)
		}
	}
}

func TestWireRejectsMalformedFrames(t *testing.T) {
	good := encodeBlock(ProtocolCA, &block{Shard: []byte{1, 2, 3}, KeyX: 1, KeyShare: []byte{4}})
	cases := map[string][]byte{
		"empty":           nil,
		"short":           good[:wireHeaderLen-1],
		"bad magic":       append([]byte("XXXX"), good[4:]...),
		"bad version":     append(append([]byte{}, good[:4]...), append([]byte{99}, good[5:]...)...),
		"bad protocol":    append(append([]byte{}, good[:5]...), append([]byte{42}, good[6:]...)...),
		"truncated body":  good[:len(good)-1],
		"oversized frame": append(append([]byte{}, good...), 0),
	}
	for name, frame := range cases {
		if _, err := decodeBlock(frame); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", name, err)
		}
	}
	// JSON from the old envelope must be rejected cleanly, not misparsed.
	if _, err := decodeBlock([]byte(`{"shard":"AAEC","shard_idx":1}`)); !errors.Is(err, ErrBadFrame) {
		t.Errorf("legacy JSON: err = %v, want ErrBadFrame", err)
	}
}
