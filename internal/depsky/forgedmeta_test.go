package depsky

import (
	"bytes"
	"errors"
	"testing"
)

// TestForgedMetadataSizeBounded pins the metadata edition of the
// DecodeBatch bug class (and the untrustedalloc invariant): VersionInfo is
// JSON from possibly-corrupt clouds, so a forged Size must be rejected
// against the bytes actually fetched — before it sizes an allocation — not
// discovered by an OOM inside make(). A terabyte Size costs the attacker
// ~17 bytes of JSON; the genuine shards on the honest clouds bound what a
// join can ever produce.
func TestForgedMetadataSizeBounded(t *testing.T) {
	_, m := newManager(t, ProtocolCA)
	data := bytes.Repeat([]byte{0xAB}, 4096)
	info, err := m.Write(bg, "u", data)
	if err != nil {
		t.Fatal(err)
	}

	forged := info
	forged.Size = 1 << 40 // 1 TiB claimed, 4 KiB stored
	if _, err := m.readVersion(bg, "u", forged); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("forged Size: err = %v, want ErrIntegrity", err)
	}

	negative := info
	negative.Size = -1
	if _, err := m.readVersion(bg, "u", negative); err == nil {
		t.Fatal("negative Size: want error, got nil")
	}

	// The genuine metadata still reads back fine.
	got, err := m.readVersion(bg, "u", info)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

// TestChunkSizeWireCap: the v2 chunk geometry is attacker-chosen until
// certification, and readChunkedVersion preallocates the reassembly buffer
// from it. MaxChunkSize is the wire cap that keeps that allocation linear
// in the metadata the attacker must actually store: a single-chunk variant
// declaring a huge ChunkSize must fail validation, and the writer clamps
// its configured chunk size so it can never emit versions readers reject.
func TestChunkSizeWireCap(t *testing.T) {
	huge := VersionInfo{Number: 1, Size: 1 << 40, ChunkSize: 1 << 40, ChunkCount: 1,
		ChunkHashes: [][]string{nil}, Protocol: ProtocolCA}
	if huge.validChunking() {
		t.Fatal("ChunkSize beyond the wire cap accepted")
	}
	_, m := newChunkedManager(t, ProtocolCA, 2048)
	if _, err := m.readChunkedVersion(bg, "u", huge); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("err = %v, want ErrIntegrity", err)
	}

	atCap := VersionInfo{Number: 1, Size: MaxChunkSize, ChunkSize: MaxChunkSize, ChunkCount: 1,
		ChunkHashes: [][]string{nil}, Protocol: ProtocolCA}
	if !atCap.validChunking() {
		t.Fatal("ChunkSize at the wire cap rejected")
	}

	m.opts.ChunkSize = MaxChunkSize + 1
	if got := m.chunkSize(); got != MaxChunkSize {
		t.Fatalf("writer chunk size = %d, want clamped to %d", got, MaxChunkSize)
	}
}
