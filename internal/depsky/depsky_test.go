package depsky

import (
	"bytes"
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"math/bits"
	"testing"

	"scfs/internal/cloud"
	"scfs/internal/cloudsim"
)

// bg is the context used by tests that do not exercise cancellation.
var bg = context.Background()

// testClouds builds n zero-latency simulated providers and returns the
// providers plus object-store clients for one user.
func testClouds(t *testing.T, n int) ([]*cloudsim.Provider, []cloud.ObjectStore) {
	t.Helper()
	providers := make([]*cloudsim.Provider, n)
	clients := make([]cloud.ObjectStore, n)
	for i := 0; i < n; i++ {
		p := cloudsim.NewProvider(cloudsim.Options{Name: fmt.Sprintf("cloud-%d", i)})
		id := p.CreateAccount("alice")
		providers[i] = p
		clients[i] = p.MustClient(id)
	}
	return providers, clients
}

func newManager(t *testing.T, protocol Protocol) ([]*cloudsim.Provider, *Manager) {
	t.Helper()
	providers, clients := testClouds(t, 4)
	m, err := New(Options{Clouds: clients, F: 1, Protocol: protocol})
	if err != nil {
		t.Fatal(err)
	}
	return providers, m
}

func TestNewValidation(t *testing.T) {
	_, clients := testClouds(t, 3)
	if _, err := New(Options{Clouds: clients, F: 1}); !errors.Is(err, ErrNotEnoughClouds) {
		t.Fatalf("err = %v, want ErrNotEnoughClouds", err)
	}
	_, clients4 := testClouds(t, 4)
	m, err := New(Options{Clouds: clients4, F: 0})
	if err != nil {
		t.Fatal(err)
	}
	if m.F() != 1 {
		t.Fatalf("F defaulted to %d, want 1", m.F())
	}
	if m.N() != 4 || m.QuorumSize() != 3 {
		t.Fatalf("N=%d quorum=%d", m.N(), m.QuorumSize())
	}
}

func TestWriteReadRoundTripCA(t *testing.T) {
	_, m := newManager(t, ProtocolCA)
	for _, size := range []int{0, 1, 100, 4096, 1 << 18} {
		data := make([]byte, size)
		if _, err := rand.Read(data); err != nil {
			t.Fatal(err)
		}
		unit := fmt.Sprintf("file-%d", size)
		info, err := m.Write(bg, unit, data)
		if err != nil {
			t.Fatalf("Write(%d bytes): %v", size, err)
		}
		if info.Number != 1 || info.Size != size {
			t.Fatalf("info = %+v", info)
		}
		got, gotInfo, err := m.Read(bg, unit)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip mismatch for %d bytes", size)
		}
		if gotInfo.DataHash != info.DataHash {
			t.Fatal("hash mismatch between write and read info")
		}
	}
}

func TestWriteReadRoundTripA(t *testing.T) {
	_, m := newManager(t, ProtocolA)
	data := []byte("replicated everywhere")
	if _, err := m.Write(bg, "u", data); err != nil {
		t.Fatal(err)
	}
	got, info, err := m.Read(bg, "u")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) || info.Protocol != ProtocolA {
		t.Fatalf("got %q, protocol %v", got, info.Protocol)
	}
}

func TestVersionsAccumulateAndReadNewest(t *testing.T) {
	_, m := newManager(t, ProtocolCA)
	for i := 1; i <= 3; i++ {
		if _, err := m.Write(bg, "doc", []byte(fmt.Sprintf("version %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got, info, err := m.Read(bg, "doc")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "version 3" || info.Number != 3 {
		t.Fatalf("Read returned %q (version %d), want version 3", got, info.Number)
	}
	versions, err := m.ListVersions(bg, "doc")
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 3 {
		t.Fatalf("ListVersions returned %d, want 3", len(versions))
	}
}

func TestReadMatchingFetchesSpecificVersion(t *testing.T) {
	_, m := newManager(t, ProtocolCA)
	infos := make([]VersionInfo, 0, 3)
	for i := 1; i <= 3; i++ {
		info, err := m.Write(bg, "doc", []byte(fmt.Sprintf("version %d", i)))
		if err != nil {
			t.Fatal(err)
		}
		infos = append(infos, info)
	}
	// Fetch the middle version by its hash (the consistency-anchor path).
	got, info, err := m.ReadMatching(bg, "doc", infos[1].DataHash)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "version 2" || info.Number != 2 {
		t.Fatalf("ReadMatching returned %q (version %d)", got, info.Number)
	}
	if _, _, err := m.ReadMatching(bg, "doc", "no-such-hash"); !errors.Is(err, ErrVersionNotFound) {
		t.Fatalf("err = %v, want ErrVersionNotFound", err)
	}
}

func TestReadMissingUnit(t *testing.T) {
	_, m := newManager(t, ProtocolCA)
	if _, _, err := m.Read(bg, "ghost"); !errors.Is(err, ErrUnitNotFound) {
		t.Fatalf("err = %v, want ErrUnitNotFound", err)
	}
}

func TestToleratesOneUnavailableCloud(t *testing.T) {
	providers, m := newManager(t, ProtocolCA)
	data := []byte("must survive an outage")
	// One cloud is down during the write.
	providers[2].SetFault(cloudsim.FaultUnavailable)
	if _, err := m.Write(bg, "u", data); err != nil {
		t.Fatalf("Write with one cloud down: %v", err)
	}
	// A different cloud is down during the read.
	providers[2].SetFault(cloudsim.FaultNone)
	providers[0].SetFault(cloudsim.FaultUnavailable)
	got, _, err := m.Read(bg, "u")
	if err != nil {
		t.Fatalf("Read with one cloud down: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch after outage")
	}
}

func TestToleratesOneCorruptingCloud(t *testing.T) {
	providers, m := newManager(t, ProtocolCA)
	data := bytes.Repeat([]byte("integrity "), 1000)
	if _, err := m.Write(bg, "u", data); err != nil {
		t.Fatal(err)
	}
	providers[1].SetFault(cloudsim.FaultCorrupt)
	got, _, err := m.Read(bg, "u")
	if err != nil {
		t.Fatalf("Read with one corrupting cloud: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("corrupted data returned to the caller")
	}
}

// TestDegradedReadWithExactlyFCorruptingClouds exercises readVersion with
// exactly f clouds returning hash-mismatched blocks, for every placement of
// the corrupting clouds, at f=1 (n=4) and f=2 (n=7).
func TestDegradedReadWithExactlyFCorruptingClouds(t *testing.T) {
	for _, f := range []int{1, 2} {
		n := 3*f + 1
		providers, clients := testClouds(t, n)
		m, err := New(Options{Clouds: clients, F: f})
		if err != nil {
			t.Fatal(err)
		}
		data := bytes.Repeat([]byte("degraded-read "), 500)
		if _, err := m.Write(bg, "u", data); err != nil {
			t.Fatalf("f=%d: %v", f, err)
		}
		// Every combination of exactly f corrupting clouds, via bitmask.
		for mask := 0; mask < 1<<n; mask++ {
			if bits.OnesCount(uint(mask)) != f {
				continue
			}
			for i, p := range providers {
				if mask&(1<<i) != 0 {
					p.SetFault(cloudsim.FaultCorrupt)
				} else {
					p.SetFault(cloudsim.FaultNone)
				}
			}
			got, _, err := m.Read(bg, "u")
			if err != nil {
				t.Fatalf("f=%d mask=%b: %v", f, mask, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("f=%d mask=%b: corrupted data returned", f, mask)
			}
		}
	}
}

func TestToleratesOneCloudLosingWrites(t *testing.T) {
	providers, m := newManager(t, ProtocolCA)
	providers[3].SetFault(cloudsim.FaultLoseWrites)
	data := []byte("ack'd but dropped on one cloud")
	if _, err := m.Write(bg, "u", data); err != nil {
		t.Fatal(err)
	}
	got, _, err := m.Read(bg, "u")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch with a write-dropping cloud")
	}
}

func TestFailureThresholds(t *testing.T) {
	// This test kills two specific clouds after the fact, so it needs the
	// write to have landed on all four — disable the quorum verdict's
	// straggler cancellation to make placement deterministic.
	providers, clients := testClouds(t, 4)
	m, err := New(Options{Clouds: clients, F: 1, DisableQuorumCancel: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Write(bg, "u", []byte("data")); err != nil {
		t.Fatal(err)
	}
	// Writes need a quorum of n-f = 3 clouds: two outages block them.
	providers[0].SetFault(cloudsim.FaultUnavailable)
	providers[1].SetFault(cloudsim.FaultUnavailable)
	if _, err := m.Write(bg, "u", []byte("new")); !errors.Is(err, ErrQuorumWrite) {
		t.Fatalf("Write err = %v, want ErrQuorumWrite", err)
	}
	// Reads only need f+1 = 2 clouds (the paper: "two clouds need to be
	// accessed to recover the file data"), so they still succeed...
	got, _, err := m.Read(bg, "u")
	if err != nil {
		t.Fatalf("Read with 2 clouds down: %v", err)
	}
	if !bytes.Equal(got, []byte("data")) {
		t.Fatal("read returned wrong data")
	}
	// ...but a third outage exceeds the read threshold as well.
	providers[2].SetFault(cloudsim.FaultUnavailable)
	if _, _, err := m.Read(bg, "u"); err == nil {
		t.Fatal("Read succeeded with only one cloud reachable")
	}
}

func TestNoSingleCloudHoldsPlaintext(t *testing.T) {
	// Confidentiality: with DepSky-CA no single provider stores the value or
	// anything containing it in the clear.
	providers, m := newManager(t, ProtocolCA)
	secretPayload := bytes.Repeat([]byte("TOPSECRET"), 200)
	if _, err := m.Write(bg, "classified", secretPayload); err != nil {
		t.Fatal(err)
	}
	for i, p := range providers {
		id := p.CreateAccount("alice")
		c := p.MustClient(id)
		objs, err := c.List(bg, "")
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range objs {
			data, err := c.Get(bg, o.Name)
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Contains(data, []byte("TOPSECRET")) {
				t.Fatalf("cloud %d stores plaintext fragment in object %s", i, o.Name)
			}
			b, err := decodeBlock(data)
			if err != nil {
				continue // metadata object
			}
			if bytes.Contains(b.Shard, []byte("TOPSECRET")) || bytes.Contains(b.Full, []byte("TOPSECRET")) {
				t.Fatalf("cloud %d block contains plaintext", i)
			}
		}
	}
}

func TestDepSkyAStoresPlaintextEverywhere(t *testing.T) {
	// Contrast with the CA protocol: DepSky-A replicates the value verbatim,
	// which is why SCFS uses DepSky-CA for its CoC backend.
	providers, m := newManager(t, ProtocolA)
	if _, err := m.Write(bg, "open", []byte("PLAINVALUE")); err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, p := range providers {
		c := p.MustClient(p.CreateAccount("alice"))
		objs, _ := c.List(bg, "")
		for _, o := range objs {
			data, _ := c.Get(bg, o.Name)
			if b, err := decodeBlock(data); err == nil && bytes.Contains(b.Full, []byte("PLAINVALUE")) {
				found++
			}
		}
	}
	if found < 3 {
		t.Fatalf("expected the plaintext on at least a quorum of clouds, found %d", found)
	}
}

func TestDeleteVersionReclaimsSpace(t *testing.T) {
	// Asserts on provider 0's object count, so every write must land there:
	// disable straggler cancellation for deterministic placement.
	providers, clients := testClouds(t, 4)
	m, err := New(Options{Clouds: clients, F: 1, DisableQuorumCancel: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := m.Write(bg, "doc", bytes.Repeat([]byte{byte(i)}, 10000)); err != nil {
			t.Fatal(err)
		}
	}
	before := providers[0].ObjectCount()
	if err := m.DeleteVersion(bg, "doc", 1); err != nil {
		t.Fatal(err)
	}
	after := providers[0].ObjectCount()
	if after >= before {
		t.Fatalf("object count did not decrease: %d -> %d", before, after)
	}
	versions, _ := m.ListVersions(bg, "doc")
	if len(versions) != 2 {
		t.Fatalf("versions after delete = %d, want 2", len(versions))
	}
	if err := m.DeleteVersion(bg, "doc", 99); !errors.Is(err, ErrVersionNotFound) {
		t.Fatalf("err = %v, want ErrVersionNotFound", err)
	}
	// Newest version still readable.
	got, _, err := m.Read(bg, "doc")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 {
		t.Fatal("wrong version after GC")
	}
}

func TestDeleteUnitRemovesEverything(t *testing.T) {
	providers, m := newManager(t, ProtocolCA)
	if _, err := m.Write(bg, "doc", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := m.DeleteUnit(bg, "doc"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Read(bg, "doc"); !errors.Is(err, ErrUnitNotFound) {
		t.Fatalf("err = %v, want ErrUnitNotFound", err)
	}
	for i, p := range providers {
		if n := p.ObjectCount(); n != 0 {
			t.Fatalf("cloud %d still stores %d objects", i, n)
		}
	}
}

func TestStorageFootprint(t *testing.T) {
	_, mCA := newManager(t, ProtocolCA)
	_, mA := newManager(t, ProtocolA)
	size := 1 << 20
	ca := mCA.StorageFootprint(size)
	a := mA.StorageFootprint(size)
	// CA with f=1 stores ~1.5x the data; replication stores 4x.
	ratioCA := float64(ca) / float64(size)
	if ratioCA < 1.4 || ratioCA > 1.7 {
		t.Fatalf("CA footprint ratio = %.2f, want ~1.5", ratioCA)
	}
	if a != size*4 {
		t.Fatalf("A footprint = %d, want %d", a, size*4)
	}
}

func TestProtocolString(t *testing.T) {
	if ProtocolCA.String() != "DepSky-CA" || ProtocolA.String() != "DepSky-A" {
		t.Fatal("unexpected protocol names")
	}
}

func BenchmarkWriteCA1MB(b *testing.B) {
	providers := make([]cloud.ObjectStore, 4)
	for i := range providers {
		p := cloudsim.NewProvider(cloudsim.Options{Name: fmt.Sprintf("c%d", i)})
		providers[i] = p.MustClient(p.CreateAccount("u"))
	}
	m, err := New(Options{Clouds: providers, F: 1})
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 1<<20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Write(bg, fmt.Sprintf("u-%d", i), data); err != nil {
			b.Fatal(err)
		}
	}
}
