package depsky

import (
	"bytes"
	"testing"
	"time"

	"scfs/internal/cloudsim"
	"scfs/internal/iopolicy"
	"scfs/internal/resilience"
)

// retryPol grants every RPC a small no-delay retry budget.
func retryPol(attempts int) iopolicy.Policy {
	return iopolicy.Policy{Retry: iopolicy.Retry{MaxAttempts: attempts}}
}

// TestRetryMasksFlakesBeyondQuorum pins the reason the retry layer exists:
// with f=1 the quorum math tolerates one failed cloud per fan-out, so two
// clouds flaking at the same moment fail a write outright — unless each
// RPC retries through the flake.
func TestRetryMasksFlakesBeyondQuorum(t *testing.T) {
	m, providers, _ := hedgeManager(t, make([]time.Duration, 4), Options{})
	data := bytes.Repeat([]byte{0x21}, 8<<10)

	// Two providers fail the first Put each and then heal: more simultaneous
	// faults than f, but each transient.
	providers[0].SetFaults(cloudsim.FaultSpec{Mode: cloudsim.FaultThrottle, Ops: cloudsim.MaskPut, FirstN: 1})
	providers[1].SetFaults(cloudsim.FaultSpec{Mode: cloudsim.FaultUnavailable, Ops: cloudsim.MaskPut, FirstN: 1})
	if _, err := m.Write(bg, "no-retry", data); err == nil {
		t.Fatal("without retries a write facing 2 transient faults must fail (sanity check)")
	}

	providers[0].SetFaults(cloudsim.FaultSpec{Mode: cloudsim.FaultThrottle, Ops: cloudsim.MaskPut, FirstN: 1})
	providers[1].SetFaults(cloudsim.FaultSpec{Mode: cloudsim.FaultUnavailable, Ops: cloudsim.MaskPut, FirstN: 1})
	ctx := hedgeCtx(retryPol(3))
	if _, err := m.Write(ctx, "with-retry", data); err != nil {
		t.Fatalf("retried write failed: %v", err)
	}
	got, _, err := m.Read(ctx, "with-retry")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read back: %v", err)
	}
}

// TestRetryBudgetBoundsIssuedRPCs proves retries cannot run away: a cloud
// failing everything sees at most MaxAttempts requests per logical RPC.
func TestRetryBudgetBoundsIssuedRPCs(t *testing.T) {
	m, providers, _ := hedgeManager(t, make([]time.Duration, 4), Options{
		// Large threshold so the breaker never opens and every attempt is
		// genuinely issued (an open breaker would cut the budget to 1).
		Breakers: resilience.BreakerPolicy{FailureThreshold: 1000},
	})
	data := bytes.Repeat([]byte{0x42}, 8<<10)
	if _, err := m.Write(bg, "u", data); err != nil {
		t.Fatal(err)
	}

	providers[0].SetFault(cloudsim.FaultThrottle)
	before := providers[0].TotalRequests()
	const attempts = 3
	ctx := hedgeCtx(retryPol(attempts))
	if _, _, err := m.Read(ctx, "u"); err != nil {
		t.Fatalf("read with one throttled cloud: %v", err)
	}
	// A whole-object read issues at most 2 logical RPCs against each cloud
	// (metadata fetch + block fetch), each retried at most `attempts` times.
	if got := providers[0].TotalRequests() - before; got > 2*attempts {
		t.Fatalf("throttled cloud saw %d requests, budget allows at most %d", got, 2*attempts)
	}
}

// TestRetryNeverRetriesPermanentErrors: a missing object answers instantly
// however large the budget — not-found is the provider's healthy answer.
func TestRetryNeverRetriesPermanentErrors(t *testing.T) {
	m, providers, _ := hedgeManager(t, make([]time.Duration, 4), Options{})
	before := providers[0].TotalRequests()
	ctx := hedgeCtx(retryPol(5))
	if _, _, err := m.Read(ctx, "ghost-unit"); err == nil {
		t.Fatal("reading an absent unit should fail")
	}
	if got := providers[0].TotalRequests() - before; got > 1 {
		t.Fatalf("not-found was retried: %d requests for one metadata fetch", got)
	}
}

// openBreaker drives cloud i's GET breaker open by recording transient
// failures straight onto the scoreboard.
func openBreaker(m *Manager, i int, class iopolicy.OpClass, n int) {
	for k := 0; k < n; k++ {
		m.Board().Record(i, int(class), cloudsimUnavailable)
	}
}

var cloudsimUnavailable = func() error {
	p := cloudsim.NewProvider(cloudsim.Options{Name: "err-factory"})
	p.SetFault(cloudsim.FaultUnavailable)
	c := p.MustClient(p.CreateAccount("x"))
	_, err := c.Get(bg, "missing")
	return err
}()

// TestBreakerOpensAndDemotes: a provider that keeps failing trips its
// breaker, and subsequent fan-outs demote it out of the preferred set —
// while reads and writes keep succeeding (availability is never traded).
func TestBreakerOpensAndDemotes(t *testing.T) {
	// Cloud 0 is by far the fastest, so the tracker ranks it first; only the
	// breaker demotion can move it to the back.
	rtts := []time.Duration{time.Millisecond, 20 * time.Millisecond, 20 * time.Millisecond, 20 * time.Millisecond}
	m, providers, _ := hedgeManager(t, rtts, Options{
		Breakers: resilience.BreakerPolicy{FailureThreshold: 2, Cooldown: time.Hour},
	})
	warmTracker(m, rtts)
	data := bytes.Repeat([]byte{0x77}, 8<<10)
	if _, err := m.Write(bg, "u", data); err != nil {
		t.Fatal(err)
	}

	providers[0].SetFault(cloudsim.FaultUnavailable)
	for k := 0; k < 3; k++ {
		if _, _, err := m.Read(bg, "u"); err != nil {
			t.Fatalf("read %d with one downed cloud: %v", k, err)
		}
	}
	if !m.Board().Suspected(0, int(iopolicy.OpGet)) {
		t.Fatal("repeated failures did not open the GET breaker")
	}
	// The dispatch ranking now puts cloud 0 last regardless of latency.
	order := m.rankClouds(iopolicy.Policy{}, iopolicy.GetOp(0))
	if order[len(order)-1] != 0 {
		t.Fatalf("rankClouds = %v, want the suspected cloud demoted to last", order)
	}
	// An explicit pinned order is not second-guessed.
	pinned := m.rankClouds(iopolicy.Policy{Preference: iopolicy.Preference{Order: []int{0, 1, 2, 3}}}, iopolicy.GetOp(0))
	if pinned[0] != 0 {
		t.Fatalf("explicit order overridden: %v", pinned)
	}
	// Bypass ignores the scoreboard: the fastest cloud leads again.
	bypass := m.rankClouds(iopolicy.Policy{Breaker: iopolicy.BreakerBypass}, iopolicy.GetOp(0))
	if bypass[0] != 0 {
		t.Fatalf("bypass ranking still demoted: %v", bypass)
	}
}

// TestBreakerFailFastSkipsSuspectedCloud: under BreakerFailFast an open
// breaker means the cloud is not contacted at all — zero requests — and the
// quorum still assembles from the healthy rest.
func TestBreakerFailFastSkipsSuspectedCloud(t *testing.T) {
	m, providers, _ := hedgeManager(t, make([]time.Duration, 4), Options{
		Breakers: resilience.BreakerPolicy{FailureThreshold: 1, Cooldown: time.Hour},
	})
	data := bytes.Repeat([]byte{0x3C}, 8<<10)
	if _, err := m.Write(bg, "u", data); err != nil {
		t.Fatal(err)
	}
	openBreaker(m, 0, iopolicy.OpGet, 2)

	before := providers[0].TotalRequests()
	ctx := hedgeCtx(iopolicy.Policy{Breaker: iopolicy.BreakerFailFast})
	got, _, err := m.Read(ctx, "u")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("fail-fast read: %v", err)
	}
	if extra := providers[0].TotalRequests() - before; extra != 0 {
		t.Fatalf("suspected cloud was contacted %d times under fail-fast", extra)
	}
}

// TestBreakerRecoveryReadmitsCloud: after the cooldown a probe succeeds and
// the cloud serves traffic again.
func TestBreakerRecoveryReadmitsCloud(t *testing.T) {
	m, providers, _ := hedgeManager(t, make([]time.Duration, 4), Options{
		Breakers: resilience.BreakerPolicy{FailureThreshold: 1, Cooldown: 30 * time.Millisecond},
	})
	data := bytes.Repeat([]byte{0x9D}, 8<<10)
	if _, err := m.Write(bg, "u", data); err != nil {
		t.Fatal(err)
	}
	providers[0].SetFault(cloudsim.FaultUnavailable)
	if _, _, err := m.Read(bg, "u"); err != nil {
		t.Fatal(err)
	}
	if m.Board().State(0, int(iopolicy.OpGet)) != resilience.BreakerOpen {
		t.Fatal("breaker did not open")
	}

	providers[0].SetFault(cloudsim.FaultNone)
	time.Sleep(40 * time.Millisecond) // cooldown elapses
	if _, _, err := m.Read(bg, "u"); err != nil {
		t.Fatal(err)
	}
	// The healed cloud answered its probe; the breaker must be closed again.
	if st := m.Board().State(0, int(iopolicy.OpGet)); st != resilience.BreakerClosed {
		t.Fatalf("breaker state after successful probe = %v, want closed", st)
	}
}
