package depsky

// Cost accounting. The paper's cost analysis (§4.5) charges a version by
// its storage footprint on the preferred quorum; the chunked v2 layout adds
// a second axis the byte count misses entirely: each chunk is its own cloud
// object, so a 64 MiB streamed version creates 64x as many objects — and
// pays 64x the per-request fees on every write, read and delete — as one
// big block. Footprint folds both axes together so the garbage collector
// (and any capacity planner) can weigh "many small chunks" against "few big
// blocks" instead of seeing only bytes.

import "scfs/internal/seccrypto"

// Footprint describes the cloud-side cost of one stored version across the
// cloud-of-clouds: resident bytes, object count, and the request fees its
// lifecycle incurs.
type Footprint struct {
	// Bytes is the storage the version occupies, charged per the paper's
	// cost model: the preferred write quorum of n-f clouds for DepSky-CA
	// shards, all n clouds for DepSky-A replicas.
	Bytes int64
	// Objects is how many cloud objects the version's payload occupies
	// (chunks x charged clouds); each object keeps costing a GET fee per
	// read and a DELETE fee at reclamation.
	Objects int64
	// PutRequests is the request count the version's upload was charged
	// (payload objects plus the metadata update).
	PutRequests int64
	// GetRequestsPerRead is the request count one whole read of the version
	// issues (f+1 decoding clouds per chunk for CA, one replica for A).
	GetRequestsPerRead int64
	// DeleteRequests is the request count reclaiming the version issues
	// (deletes are best-effort against all n clouds).
	DeleteRequests int64
}

// Add accumulates other into f.
func (f *Footprint) Add(other Footprint) {
	f.Bytes += other.Bytes
	f.Objects += other.Objects
	f.PutRequests += other.PutRequests
	f.GetRequestsPerRead += other.GetRequestsPerRead
	f.DeleteRequests += other.DeleteRequests
}

// VersionFootprint computes the footprint of one stored version from its
// metadata, handling both the whole-object v1 layout and the chunked v2
// layout.
func (m *Manager) VersionFootprint(info VersionInfo) Footprint {
	chunks, fullLen, tailLen := versionChunkShape(info)
	return m.footprint(info.Protocol, chunks, fullLen, tailLen)
}

// EstimateFootprint predicts the footprint a value of the given size would
// have if written now: chunked selects the streamed v2 layout (one object
// per chunk) versus the whole-object v1 layout. The SCFS agent uses it to
// meter request-fee pressure for the garbage-collection trigger.
func (m *Manager) EstimateFootprint(size int64, chunked bool) Footprint {
	chunks, fullLen, tailLen := m.estimateChunkShape(size, chunked)
	return m.footprint(m.opts.Protocol, chunks, fullLen, tailLen)
}

// footprint charges a version of `chunks` objects (chunks-1 of fullLen
// plaintext bytes plus one of tailLen) under the protocol's dispersal: CA
// stores one erasure shard of the ciphertext on each of the preferred n-f
// clouds, A a full replica on all n. Constant-time regardless of the
// chunk count.
func (m *Manager) footprint(protocol Protocol, chunks, fullLen, tailLen int) Footprint {
	n := int64(m.N())
	q := int64(m.QuorumSize())
	bytesFor := func(plain int) int64 {
		if protocol == ProtocolA {
			return int64(plain) * n
		}
		return int64(m.coder.ShardSize(plain+seccrypto.CiphertextOverhead)) * q
	}
	fp := Footprint{Bytes: int64(chunks-1)*bytesFor(fullLen) + bytesFor(tailLen)}
	charged := q
	readers := int64(m.opts.F + 1)
	if protocol == ProtocolA {
		charged = n
		readers = 1
	}
	fp.Objects = int64(chunks) * charged
	fp.PutRequests = fp.Objects + q // payload objects + the metadata quorum write
	fp.GetRequestsPerRead = int64(chunks) * readers
	fp.DeleteRequests = int64(chunks) * n
	return fp
}
