package depsky

// Streaming data plane: chunked writes and ranged reads.
//
// The slice-based API (Write/Read) materializes the ciphertext and every
// erasure shard of a version in memory before the first byte reaches a
// cloud — ~2.5x the value size resident for DepSky-CA. The entry points in
// this file bound that: WriteFrom consumes an io.Reader in fixed-size
// chunks and overlaps encrypt → erasure-encode → per-shard hash → quorum
// upload across a small window of in-flight chunks (see internal/stream),
// and Open/OpenRange fetch — and, under faults, reconstruct — only the
// chunks covering the requested byte range, reusing the coder's cached
// decode matrices. All chunk, shard and frame buffers come from the
// process-wide stream.Buffers pool shared with the whole-object read path.

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"scfs/internal/cloud"
	"scfs/internal/iopolicy"
	"scfs/internal/seccrypto"
	"scfs/internal/secretshare"
	"scfs/internal/stream"
	"scfs/internal/telemetry"
)

// chunkSize returns the configured streamed-write chunk size, clamped to
// the wire-protocol cap (readers reject metadata declaring more, so a
// larger configured value would write unreadable versions).
func (m *Manager) chunkSize() int {
	cs := m.opts.ChunkSize
	if cs <= 0 {
		return stream.DefaultChunkSize
	}
	return min(cs, MaxChunkSize)
}

// writeWindow returns the configured bound on in-flight chunks.
func (m *Manager) writeWindow() int {
	if m.opts.WriteWindow > 0 {
		return m.opts.WriteWindow
	}
	return stream.DefaultWindow
}

// chunkName is the per-cloud object name of one chunk of one version.
func (m *Manager) chunkName(unit string, version uint64, idx int) string {
	return fmt.Sprintf("%sdsky/%s/v%d/c%d", m.opts.Prefix, unit, version, idx)
}

// encodedChunk is the output of the encode pipeline stage for one chunk:
// one framed payload per cloud plus the frame hashes recorded in the
// version metadata.
type encodedChunk struct {
	frames [][]byte
	hashes []string
}

// WriteFrom streams r as the next version of unit using the chunked v2
// layout. At most WriteWindow chunks are resident at any moment, so the
// peak memory of a write is ~3 chunk windows regardless of the stream
// length; per-shard hashing of one chunk runs concurrently with the quorum
// uploads of earlier chunks. The returned VersionInfo carries the SHA-256
// of the whole plaintext stream, computed incrementally.
//
// Like Write, WriteFrom assumes a single writer per data unit (SCFS
// serializes writers via its lock service).
//
// Cancelling ctx aborts the in-flight chunk uploads and returns ctx.Err().
// The version metadata is only written after every chunk reached its quorum,
// so a cancelled WriteFrom never anchors a version whose shards were not
// fully uploaded — the orphaned chunk objects of the aborted version are
// invisible to readers and reclaimed when the version number is reused or
// the unit is deleted.
func (m *Manager) WriteFrom(ctx context.Context, unit string, r io.Reader) (VersionInfo, error) {
	ctx, tr := m.opts.Tracer.Start(ctx, "write.stream", unit)
	defer tr.Finish()
	merged := m.mergeMetadata(unit, m.readMetadataQuorum(ctx, unit))
	var next uint64 = 1
	if newest := merged.newest(); newest != nil {
		next = newest.Number + 1
	}

	var key []byte
	var shares []secretshare.Share
	if m.opts.Protocol == ProtocolCA {
		var err error
		key, err = seccrypto.NewKey()
		if err != nil {
			return VersionInfo{}, err
		}
		shares, err = secretshare.Split(key, m.N(), m.opts.F+1, nil)
		if err != nil {
			return VersionInfo{}, fmt.Errorf("depsky: secret sharing: %w", err)
		}
	}

	var mu sync.Mutex
	var chunkHashes [][]string
	res, err := stream.Run(ctx, r,
		stream.Config{ChunkSize: m.chunkSize(), Window: m.writeWindow(), Pool: stream.Buffers},
		func(idx int, plain []byte) (encodedChunk, error) {
			return m.encodeChunk(idx, plain, key, shares)
		},
		func(idx int, ec encodedChunk) error {
			// Each cloud's frame is recycled the moment that cloud's upload
			// attempt finishes — and since the quorum verdict cancels the
			// straggling uploads, no cloud pins a frame for longer than the
			// quorum round trip (plus the cancellation delivery).
			err := m.writeQuorumHooked(ctx, m.chunkName(unit, next, idx), "chunk.put",
				func(i int) []byte { return ec.frames[i] },
				func(i int) { stream.Buffers.Put(ec.frames[i]) })
			if err != nil {
				return err
			}
			mu.Lock()
			for len(chunkHashes) <= idx {
				chunkHashes = append(chunkHashes, nil)
			}
			chunkHashes[idx] = ec.hashes
			mu.Unlock()
			return nil
		})
	if err != nil {
		return VersionInfo{}, err
	}

	info := VersionInfo{
		Number:     next,
		DataHash:   hex.EncodeToString(res.Sum256[:]),
		Size:       int(res.Size),
		Protocol:   m.opts.Protocol,
		ChunkSize:  m.chunkSize(),
		ChunkCount: res.Chunks,
	}
	info.ChunkHashes = chunkHashes[:res.Chunks]
	merged.Versions = append(merged.Versions, info)
	if err := m.writeMetadataQuorum(ctx, merged); err != nil {
		return VersionInfo{}, err
	}
	return info, nil
}

// encodeChunk builds the per-cloud v2 frames for one plaintext chunk:
// encrypt (CA), erasure-split, frame, hash. Every buffer it touches comes
// from (and returns to) the shared pool; the returned frames are pooled by
// the upload stage once all clouds are done with them.
func (m *Manager) encodeChunk(idx int, plain []byte, key []byte, shares []secretshare.Share) (encodedChunk, error) {
	n := m.N()
	ec := encodedChunk{frames: make([][]byte, n), hashes: make([]string, n)}
	if m.opts.Protocol == ProtocolA {
		for i := 0; i < n; i++ {
			b := block{Full: plain, ShardIdx: i, ChunkIdx: idx, ChunkPlainLen: len(plain)}
			frame := stream.Buffers.Get(frameLenV2(0, len(plain)))
			encodeBlockV2(frame, ProtocolA, &b)
			ec.frames[i] = frame
			ec.hashes[i] = seccrypto.Hash(frame)
		}
		return ec, nil
	}

	ctLen := len(plain) + seccrypto.CiphertextOverhead
	ciphertext := stream.Buffers.Get(ctLen)
	defer stream.Buffers.Put(ciphertext)
	if _, err := seccrypto.EncryptInto(ciphertext, key, plain); err != nil {
		return ec, err
	}
	backing := stream.Buffers.Get(m.coder.TotalShards() * m.coder.ShardSize(ctLen))
	defer stream.Buffers.Put(backing)
	shards, err := m.coder.SplitInto(ciphertext, backing)
	if err != nil {
		return ec, fmt.Errorf("depsky: erasure coding chunk %d: %w", idx, err)
	}
	for i := 0; i < n; i++ {
		b := block{
			Shard:         shards[i],
			ShardIdx:      i,
			KeyX:          shares[i].X,
			KeyShare:      shares[i].Data,
			ChunkIdx:      idx,
			ChunkPlainLen: len(plain),
		}
		frame := stream.Buffers.Get(frameLenV2(len(shares[i].Data), len(shards[i])))
		encodeBlockV2(frame, ProtocolCA, &b)
		ec.frames[i] = frame
		ec.hashes[i] = seccrypto.Hash(frame)
	}
	return ec, nil
}

// --- ranged reads ---

// Open returns a random-access reader over the newest version of unit.
// Chunked versions fetch only the chunks a read touches; v1 whole-object
// versions fall back to fetching the full value on first access. The ctx
// bounds only the metadata lookup performed here; each read through the
// returned reader carries its own context (ReadAtContext / Section).
func (m *Manager) Open(ctx context.Context, unit string) (*stream.Reader, VersionInfo, error) {
	ctx, tr := m.opts.Tracer.Start(ctx, "open", unit)
	defer tr.Finish()
	merged := m.mergeMetadata(unit, m.readMetadataQuorum(ctx, unit))
	newest := merged.newest()
	if newest == nil {
		if err := ctx.Err(); err != nil {
			return nil, VersionInfo{}, err
		}
		return nil, VersionInfo{}, ErrUnitNotFound
	}
	return m.openVersion(ctx, unit, *newest, merged.certified[newest.Number], merged.variantsOf(newest.Number)), *newest, nil
}

// OpenMatching is Open for the version whose plaintext hash equals hash
// (the read-by-hash SCFS's consistency anchor needs).
func (m *Manager) OpenMatching(ctx context.Context, unit, hash string) (*stream.Reader, VersionInfo, error) {
	ctx, tr := m.opts.Tracer.Start(ctx, "open", unit)
	defer tr.Finish()
	merged := m.mergeMetadata(unit, m.readMetadataQuorum(ctx, unit))
	info := merged.find(hash)
	if info == nil {
		if err := ctx.Err(); err != nil {
			return nil, VersionInfo{}, err
		}
		return nil, VersionInfo{}, ErrVersionNotFound
	}
	var matching []VersionInfo
	for _, v := range merged.variantsOf(info.Number) {
		if v.DataHash == hash {
			matching = append(matching, v)
		}
	}
	return m.openVersion(ctx, unit, *info, merged.certified[info.Number], matching), *info, nil
}

// ErrWholeObjectOnly is returned by OpenRangedMatching for versions the
// manager cannot serve by per-chunk ranged fetches (v1 layouts, or chunked
// entries that are uncertified or malformed): callers should fall back to
// a whole-object read path, which verifies the full value hash and can
// cache the result.
var ErrWholeObjectOnly = errors.New("depsky: version requires the whole-object read path")

// OpenRangedMatching is OpenMatching restricted to genuinely ranged
// serving. The SCFS storage backend uses it so that only reads that
// actually save memory bypass the agent's whole-object caches.
func (m *Manager) OpenRangedMatching(ctx context.Context, unit, hash string) (*stream.Reader, VersionInfo, error) {
	ctx, tr := m.opts.Tracer.Start(ctx, "open", unit)
	defer tr.Finish()
	merged := m.mergeMetadata(unit, m.readMetadataQuorum(ctx, unit))
	info := merged.find(hash)
	if info == nil {
		if err := ctx.Err(); err != nil {
			return nil, VersionInfo{}, err
		}
		return nil, VersionInfo{}, ErrVersionNotFound
	}
	if !info.Chunked() || !merged.certified[info.Number] || !info.validChunking() {
		return nil, *info, ErrWholeObjectOnly
	}
	return m.newChunkReader(ctx, &chunkFetcher{m: m, unit: unit, info: *info}), *info, nil
}

// newChunkReader wraps a fetcher in a stream.Reader configured from the
// open-time I/O policy: a readahead request becomes the reader's prefetch
// window (sized by its governor as the access pattern allows). The policy
// is also stamped on the reader's base context, so prefetches issued on the
// reader's own behalf hedge their chunk fan-outs the same way foreground
// reads do.
func (m *Manager) newChunkReader(ctx context.Context, f stream.Fetcher) *stream.Reader {
	pol := m.policyFor(ctx)
	if pol.Readahead <= 0 {
		return stream.NewReader(f, stream.Buffers)
	}
	opts := stream.ReaderOptions{
		Readahead:   pol.Readahead,
		MaxParallel: pol.Limits.MaxParallelChunks,
		//scfslint:ignore ctxdiscipline value-only base for prefetches; cancellation comes from the reader lifetime and trigger ctx
		BaseContext: iopolicy.With(context.Background(), pol),
	}
	if m.ins != nil {
		opts.Metrics = m.ins.stream
	}
	return stream.NewReaderOpts(f, stream.Buffers, opts)
}

// OpenRange returns a reader over [off, off+length) of the newest version
// of unit, fetching only the chunks covering that range. Ranges beyond the
// end are truncated. Reads through the returned reader are bounded by ctx.
func (m *Manager) OpenRange(ctx context.Context, unit string, off, length int64) (io.ReadCloser, VersionInfo, error) {
	r, info, err := m.Open(ctx, unit)
	if err != nil {
		return nil, VersionInfo{}, err
	}
	return r.Section(ctx, off, length), info, nil
}

// openVersion builds the stream.Reader for one version. Chunks are served
// individually only for certified chunked entries with consistent geometry:
// the per-chunk path has no end-to-end plaintext hash check, so its trust
// rests on the metadata's ChunkHashes, which certification pins to at
// least one correct cloud. Anything else — v1 layouts, uncertified or
// malformed entries — goes through the whole-object path, which verifies
// the full value against DataHash before serving any byte (trying every
// metadata variant, so a forged uncertified copy costs a retry, not the
// read). The ctx supplies the open-time I/O policy (readahead window,
// hedging defaults for the reader's own prefetches).
func (m *Manager) openVersion(ctx context.Context, unit string, info VersionInfo, certified bool, variants []VersionInfo) *stream.Reader {
	if info.Chunked() && certified && info.validChunking() {
		return m.newChunkReader(ctx, &chunkFetcher{m: m, unit: unit, info: info})
	}
	if len(variants) == 0 {
		variants = []VersionInfo{info}
	}
	return stream.NewReader(&wholeFetcher{m: m, unit: unit, info: info, variants: variants}, stream.Buffers)
}

// readChunkedVersion reassembles a full chunked version (the whole-object
// Read path for v2 versions) and verifies the stream hash. Chunks are
// fetched with a bounded-parallel window so the read costs
// ceil(chunks/window) round-trip times, not one per chunk.
func (m *Manager) readChunkedVersion(ctx context.Context, unit string, info VersionInfo) ([]byte, error) {
	if !info.validChunking() {
		return nil, fmt.Errorf("%w: inconsistent chunk geometry (size %d, chunk %d x %d)", ErrIntegrity, info.Size, info.ChunkSize, info.ChunkCount)
	}
	f := &chunkFetcher{m: m, unit: unit, info: info}
	out := make([]byte, info.Size)
	window := m.writeWindow()
	sem := make(chan struct{}, window)
	errs := make(chan error, info.ChunkCount)
	var wg sync.WaitGroup
	for idx := 0; idx < info.ChunkCount; idx++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				errs <- err
				return
			}
			start := idx * info.ChunkSize
			if err := f.Fetch(ctx, idx, out[start:start+info.chunkPlainLen(idx)]); err != nil {
				errs <- err
			}
		}(idx)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	if seccrypto.Hash(out) != info.DataHash {
		return nil, ErrIntegrity
	}
	return out, nil
}

// chunkFetcher decodes individual chunks of a v2 version. The secret-shared
// key is combined once on the first chunk and cached for the rest of the
// read.
type chunkFetcher struct {
	m    *Manager
	unit string
	info VersionInfo

	mu  sync.Mutex
	key []byte
}

// Size implements stream.Fetcher.
func (f *chunkFetcher) Size() int64 { return int64(f.info.Size) }

// ChunkSize implements stream.Fetcher.
func (f *chunkFetcher) ChunkSize() int { return f.info.ChunkSize }

// Close implements stream.Fetcher.
func (f *chunkFetcher) Close() error { return nil }

// cachedKey returns the version key recovered by a previous chunk, if any.
func (f *chunkFetcher) cachedKey() []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.key
}

// setKey caches the recovered version key.
func (f *chunkFetcher) setKey(key []byte) {
	f.mu.Lock()
	f.key = key
	f.mu.Unlock()
}

// Fetch implements stream.Fetcher: fan the chunk's frame reads over the
// clouds, verify each frame against the metadata hashes, and decode as soon
// as enough verified frames arrived — reconstructing missing shards for
// degraded reads. The moment a decode succeeds the remaining per-cloud
// fetches are cancelled (first quorum wins); cancelling ctx aborts the whole
// fan-out and returns ctx.Err(). Under a hedge policy (carried by ctx) only
// the f+1 preferred clouds are contacted up front, the rest after the
// tracked delay percentile or on a preferred cloud's failure.
func (f *chunkFetcher) Fetch(ctx context.Context, idx int, dst []byte) error {
	m := f.m
	info := f.info
	if idx < 0 || idx >= info.ChunkCount {
		return fmt.Errorf("depsky: chunk %d out of range (version has %d)", idx, info.ChunkCount)
	}
	if len(dst) != info.chunkPlainLen(idx) {
		return fmt.Errorf("depsky: chunk %d buffer is %d bytes, want %d", idx, len(dst), info.chunkPlainLen(idx))
	}
	var hashes []string
	if idx < len(info.ChunkHashes) {
		hashes = info.ChunkHashes[idx]
	}
	pol := m.policyFor(ctx)
	op := m.blockOp(info.Protocol, len(dst))
	gate := m.newHedgeGate(pol, pol.Hedge, m.readNeed(info.Protocol), op)
	tr := telemetry.FromContext(ctx)
	opCtx, cancel := m.quorumCtx(ctx)
	defer cancel()
	name := m.chunkName(f.unit, info.Number, idx)
	results := make(chan *block, m.N())
	var wg sync.WaitGroup
	for i, c := range m.opts.Clouds {
		wg.Add(1)
		go func(i int, c cloud.ObjectStore) {
			defer wg.Done()
			if !gate.enter(opCtx, i) {
				m.recordGated(tr, "chunk.get", i, gate.hedged(i))
				results <- nil
				return
			}
			start := time.Now()
			var data []byte
			err := m.timedCloudCall(opCtx, pol, i, op, func(ctx context.Context) error {
				var err error
				data, err = c.Get(ctx, name)
				return err
			})
			m.recordSpan(tr, "chunk.get", i, start, gate.hedged(i), err)
			if err != nil {
				results <- nil
				return
			}
			// Discard frames whose hash does not match the metadata (this
			// is how silently corrupting clouds are tolerated).
			if i < len(hashes) && hashes[i] != "" && !seccrypto.VerifyHash(data, hashes[i]) {
				results <- nil
				return
			}
			b, err := decodeBlock(data)
			if err != nil || b.ChunkIdx != idx || b.ChunkPlainLen != len(dst) {
				results <- nil
				return
			}
			if b.ShardIdx != i {
				results <- nil
				return
			}
			results <- b
		}(i, c)
	}
	go func() { wg.Wait(); close(results) }()

	scratch := &decodeScratch{}
	defer scratch.release()
	blocks := make([]*block, 0, m.N())
	got := 0
	for b := range results {
		if b == nil {
			gate.kick() // unusable response: release one gated cloud
			continue
		}
		blocks = append(blocks, b)
		got++
		if err := f.decodeChunk(idx, blocks, dst, scratch); err == nil {
			if tr != nil {
				tr.SetVerdict(time.Since(tr.Start))
			}
			cancel() // first quorum wins: abort the redundant fetches
			return nil
		} else if got >= m.readNeed(info.Protocol) {
			gate.kick() // enough frames but no decode yet: pull in another
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if got == 0 {
		return ErrQuorumRead
	}
	return f.decodeChunk(idx, blocks, dst, scratch)
}

// decodeChunk attempts to decode one chunk into dst from the verified
// frames collected so far.
func (f *chunkFetcher) decodeChunk(idx int, blocks []*block, dst []byte, scratch *decodeScratch) error {
	m := f.m
	scratch.reset()
	if f.info.Protocol == ProtocolA {
		for _, b := range blocks {
			if b.Full != nil && len(b.Full) == len(dst) {
				copy(dst, b.Full)
				return nil
			}
		}
		return ErrQuorumRead
	}

	needed := m.opts.F + 1
	shards := make([][]byte, m.coder.TotalShards())
	var shares []secretshare.Share
	present := 0
	shardSize := 0
	for _, b := range blocks {
		if b.Shard == nil || b.ShardIdx < 0 || b.ShardIdx >= len(shards) {
			continue
		}
		if shards[b.ShardIdx] == nil {
			present++
		}
		shards[b.ShardIdx] = b.Shard
		shardSize = len(b.Shard)
		if b.KeyShare != nil {
			shares = append(shares, secretshare.Share{X: b.KeyX, Data: b.KeyShare})
		}
	}
	key := f.cachedKey()
	if present < needed || (key == nil && len(shares) < needed) {
		return ErrQuorumRead
	}
	if key == nil {
		combined, err := secretshare.Combine(shares, needed)
		if err != nil {
			return fmt.Errorf("depsky: recovering key: %w", err)
		}
		key = combined
		f.setKey(key)
	}

	missingData := 0
	for i := 0; i < m.coder.DataShards; i++ {
		if shards[i] == nil {
			missingData++
		}
	}
	if err := m.coder.ReconstructDataInto(shards, scratch.get(missingData*shardSize)); err != nil {
		return fmt.Errorf("depsky: reconstructing chunk %d: %w", idx, err)
	}
	cipherLen := len(dst) + seccrypto.CiphertextOverhead
	ciphertext := scratch.get(cipherLen)
	if err := m.coder.JoinInto(ciphertext, shards, cipherLen); err != nil {
		return fmt.Errorf("depsky: joining chunk %d: %w", idx, err)
	}
	if _, err := seccrypto.DecryptInto(dst, key, ciphertext); err != nil {
		return fmt.Errorf("depsky: decrypting chunk %d: %w", idx, err)
	}
	return nil
}

// wholeFetcher adapts a whole-object-read version to the chunk interface so
// v1 (and uncertified chunked) units stay readable through Open/OpenRange:
// the full value is fetched (and verified) once, on first access, and
// served as one chunk.
type wholeFetcher struct {
	m    *Manager
	unit string
	info VersionInfo
	// variants are the metadata copies to try, best first (see
	// readVersionAny).
	variants []VersionInfo

	mu      sync.Mutex
	fetched bool
	data    []byte
}

// Size implements stream.Fetcher.
func (f *wholeFetcher) Size() int64 { return int64(f.info.Size) }

// ChunkSize implements stream.Fetcher: the whole value is one chunk.
func (f *wholeFetcher) ChunkSize() int {
	if f.info.Size == 0 {
		return 1
	}
	return f.info.Size
}

// Close implements stream.Fetcher.
func (f *wholeFetcher) Close() error { return nil }

// Fetch implements stream.Fetcher. The one whole-object fetch runs under
// the context of whichever read triggers it first; a failed fetch (a
// cancelled caller, a transient quorum shortfall) is not latched, so a
// later read with a live context retries it.
func (f *wholeFetcher) Fetch(ctx context.Context, idx int, dst []byte) error {
	if idx != 0 {
		return fmt.Errorf("depsky: whole-object version has one chunk, got request for %d", idx)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.fetched {
		data, err := f.m.readVersionAny(ctx, f.unit, f.variants)
		if err != nil {
			return err
		}
		f.data, f.fetched = data, true
	}
	if len(dst) != len(f.data) {
		return fmt.Errorf("depsky: buffer is %d bytes, value is %d", len(dst), len(f.data))
	}
	copy(dst, f.data)
	return nil
}

// DeleteVersionBlocks removes the per-cloud objects of one version,
// handling both layouts; used by DeleteVersion.
func (m *Manager) deleteVersionBlocks(ctx context.Context, unit string, info VersionInfo) {
	names := make([]string, 0, 1+info.ChunkCount)
	if info.Chunked() {
		for idx := 0; idx < info.ChunkCount; idx++ {
			names = append(names, m.chunkName(unit, info.Number, idx))
		}
	} else {
		names = append(names, m.blockName(unit, info.Number))
	}
	var wg sync.WaitGroup
	for _, c := range m.opts.Clouds {
		wg.Add(1)
		go func(c cloud.ObjectStore) {
			defer wg.Done()
			for _, name := range names {
				_ = c.Delete(ctx, name) // best effort; failures only waste space
			}
		}(c)
	}
	wg.Wait()
}
