package depsky

// Hedged dispatch. Every quorum fan-out used to contact all n clouds the
// moment it started; first-quorum-wins cancellation (PR 3) then aborted the
// losers, which bounds the latency tail but still issues every RPC — the
// straggler's request is started, billed a request fee, and only then
// cancelled. The hedge gate below delays the redundant requests instead:
// a fan-out dispatches to the preferred quorum only, and the remaining
// clouds are contacted when (a) the tracked latency percentile of the
// preferred set elapses without a verdict, or (b) a preferred cloud fails
// or returns an unusable response, whichever comes first. In the common
// case the preferred quorum answers in time and the extra RPCs are never
// issued at all. Reads (Policy.Hedge) and writes (Policy.WriteHedge) run
// the same gate; for writes the savings are ingress bytes and PUT fees at
// the spare clouds.
//
// The preferred set itself comes from the placement engine: an explicit
// preference order wins, then the placement objective (cost-first ranks by
// the per-op dollar estimate of each cloud's price card, balanced blends
// dollars with tracked latency), then the tracker's fastest-first ranking.
//
// The gate is policy-driven (iopolicy.Policy carried by the operation's
// context); with no hedge policy it is inert and dispatch stays the
// immediate full fan-out it always was.

import (
	"context"
	"time"

	"scfs/internal/iopolicy"
	"scfs/internal/resilience"
	"scfs/internal/seccrypto"
	"scfs/internal/telemetry"
)

// policyFor resolves the effective I/O policy of one operation: the
// manager's default overlaid with whatever policy the context carries.
func (m *Manager) policyFor(ctx context.Context) iopolicy.Policy {
	if pol, ok := iopolicy.FromContext(ctx); ok {
		return m.opts.Policy.Merge(pol)
	}
	return m.opts.Policy
}

// observeRPC feeds the per-cloud latency tracker and the metrics registry
// with the outcome of one RPC attempt of the given class and payload size.
// Only successes reach the tracker (and the latency histogram): failures
// return fast and would make a broken cloud look attractive. The counters
// see every attempt, split by outcome — cancellations (quorum verdicts
// cutting down stragglers) are kept apart from provider errors. A traced
// attempt attaches its trace ID to the latency bucket it lands in, linking
// the histogram's tail to the flight-recorded trace that explains it.
func (m *Manager) observeRPC(ctx context.Context, i int, op iopolicy.Op, start time.Time, err error) {
	d := time.Since(start)
	if err == nil {
		m.tracker.Observe(i, op, d)
	}
	if ins := m.ins; ins != nil {
		class := breakerClass(op)
		switch {
		case err == nil:
			ins.rpcOK[i][class].Inc()
			ins.rpcLat[i][class].ObserveExemplar(d, telemetry.FromContext(ctx).ExemplarID())
		case resilience.Ignorable(err):
			ins.rpcCancel[i][class].Inc()
		default:
			ins.rpcErr[i][class].Inc()
		}
	}
}

// Tracker exposes the per-cloud latency tracker (benchmark warm-up,
// diagnostics).
func (m *Manager) Tracker() *iopolicy.Tracker { return m.tracker }

// rankClouds orders the cloud indices for dispatching op: an explicit
// preference (a pinned Order, or Fastest) wins, then the policy's
// placement objective (evaluated by the selector over the price table),
// otherwise the tracker's fastest-first ranking. Preference beating
// Placement is what lets one latency-critical call opt out of a
// cost-first mount with WithReadPreference(PreferFastest()).
//
// Unless the policy pins an explicit Order (or bypasses the breakers),
// the circuit-breaker scoreboard then demotes suspected clouds to the
// back of the ranking: a provider the breakers condemned lands in the
// last hedge tier, where the quorum verdict usually arrives before its
// gate ever releases — graceful degradation without giving up its vote.
func (m *Manager) rankClouds(pol iopolicy.Policy, op iopolicy.Op) []int {
	n := m.N()
	if pref := pol.Preference; len(pref.Order) > 0 {
		order := make([]int, 0, n)
		used := make([]bool, n)
		for _, i := range pref.Order {
			if i >= 0 && i < n && !used[i] {
				used[i] = true
				order = append(order, i)
			}
		}
		for i := 0; i < n; i++ {
			if !used[i] {
				order = append(order, i)
			}
		}
		return order
	}
	var order []int
	switch {
	case pol.Preference.Fastest:
		order = m.tracker.Rank(op)
	case !pol.Placement.IsZero():
		order = m.selector.Rank(pol.Placement, op)
	default:
		order = m.tracker.Rank(op)
	}
	if pol.Breaker != iopolicy.BreakerBypass {
		order = m.board.Demote(order, breakerClass(op))
	}
	return order
}

// hedgeGate gates the non-preferred clouds of one fan-out. Each per-cloud
// goroutine calls enter before issuing its RPC: preferred clouds pass
// immediately, the rest block until the hedge delay elapses, a kick arrives
// (one kick releases one cloud), or the fan-out's context is cancelled by
// the quorum verdict. A disabled gate (no hedge policy) passes everyone
// immediately, reproducing the immediate full fan-out.
type hedgeGate struct {
	enabled bool
	// pos[i] is cloud i's position in the launch order.
	pos []int
	// need is how many clouds launch immediately (the preferred set).
	need int
	// hedges is how many clouds share each hedge-delay tier (see enter).
	hedges int
	delay  time.Duration
	kicks  chan struct{}

	// Per-cloud hedge counters for the op class of this fan-out (nil rows
	// with metrics disabled; counterAt tolerates both).
	fired, kicked, supp []*telemetry.Counter
}

// hedged reports whether cloud i sits behind the gate (a hedge-tier cloud
// rather than a preferred one).
func (g *hedgeGate) hedged(i int) bool {
	return g.enabled && g.pos[i] >= g.need
}

// newHedgeGate builds the gate for a fan-out of op that needs `need` usable
// responses, gated by the hedge configuration h (Policy.Hedge for reads,
// Policy.WriteHedge for writes). With hedging disabled the gate is inert.
func (m *Manager) newHedgeGate(pol iopolicy.Policy, h iopolicy.Hedge, need int, op iopolicy.Op) *hedgeGate {
	n := m.N()
	if !h.Enabled() || need >= n {
		return &hedgeGate{}
	}
	order := m.rankClouds(pol, op)
	pos := make([]int, n)
	for p, i := range order {
		pos[i] = p
	}
	hedges := pol.Limits.MaxHedges
	if hedges <= 0 || hedges > n-need {
		hedges = n - need
	}
	g := &hedgeGate{
		enabled: true,
		pos:     pos,
		need:    need,
		hedges:  hedges,
		delay:   m.tracker.HedgeDelay(op, h, order[:need]),
		kicks:   make(chan struct{}, n),
	}
	if m.ins != nil {
		class := breakerClass(op)
		g.fired = m.ins.hedgeFired[class]
		g.kicked = m.ins.hedgeKicked[class]
		g.supp = m.ins.hedgeSuppressed[class]
	}
	return g
}

// enter blocks until cloud i may issue its RPC. It returns false when the
// fan-out was decided (ctx cancelled) before i's turn came — the caller
// then reports an empty result without touching the network.
//
// Clouds beyond the preferred set are tiered: the first Limits.MaxHedges of
// them wait one hedge delay, the next tier two delays, and so on. Every
// tier has a finite timer, so even a fan-out that never cancels (quorum
// cancellation disabled) and never kicks eventually launches everything —
// hedging bounds extra load, never availability.
func (g *hedgeGate) enter(ctx context.Context, i int) bool {
	if !g.enabled || g.pos[i] < g.need {
		return ctx.Err() == nil
	}
	tier := (g.pos[i]-g.need)/g.hedges + 1
	t := time.NewTimer(time.Duration(tier) * g.delay)
	defer t.Stop()
	select {
	case <-ctx.Done():
		counterAt(g.supp, i).Inc() // verdict beat the hedge: RPC never issued
		return false
	case <-t.C:
		counterAt(g.fired, i).Inc() // hedge delay elapsed without a verdict
		return true
	case <-g.kicks:
		counterAt(g.kicked, i).Inc() // released early by a failure upstream
		return true
	}
}

// kick releases one gated cloud immediately; the collector calls it for
// every failed or unusable response so a faulty preferred cloud is replaced
// without waiting out the hedge delay.
func (g *hedgeGate) kick() {
	if !g.enabled {
		return
	}
	select {
	case g.kicks <- struct{}{}:
	default:
	}
}

// readNeed is how many usable per-cloud responses a block/chunk read of a
// version encoded with protocol p needs before a decode can possibly
// succeed: one full replica under DepSky-A, f+1 shards (each frame also
// carries a key share) under DepSky-CA.
func (m *Manager) readNeed(p Protocol) int {
	if p == ProtocolA {
		return 1
	}
	return m.opts.F + 1
}

// blockOp is the tracker Op of fetching one stored frame of a version: a
// download of roughly one erasure shard (CA) or one full replica (A). The
// size only has to land in the right tracker bucket.
func (m *Manager) blockOp(protocol Protocol, plainLen int) iopolicy.Op {
	if protocol == ProtocolA {
		return iopolicy.GetOp(plainLen)
	}
	return iopolicy.GetOp(m.coder.ShardSize(plainLen + seccrypto.CiphertextOverhead))
}

// metadataOp is the tracker Op of a metadata object fetch: a small,
// RTT-dominated download.
func metadataOp() iopolicy.Op { return iopolicy.GetOp(0) }
