package depsky

// Dollar cost model. footprint.go counts the byte and object axes of one
// stored version; this file prices them with the per-cloud rate cards of
// Options.Pricing (§4.5 of the paper argues in exactly these units: the
// cloud-of-clouds is practical because DepSky-CA's dollars stay within ~2x
// of a single cloud). Estimates charge the mean rate card across the n
// clouds — which n-f subset actually holds a version depends on the
// placement objective and the tracker state at write time, and an estimate
// that stable is worth more to the garbage collector (which ranks
// candidates by it) than one that drifts with provider weather.

import (
	"scfs/internal/pricing"
	"scfs/internal/seccrypto"
)

// Rates returns the per-cloud-index rate cards the manager prices with.
func (m *Manager) Rates() []pricing.Rates { return m.rates }

// meanRates averages the rate cards across the clouds. The rates are fixed
// at construction, so New computes this once into m.mean; a GC sweep
// pricing thousands of versions reads the cached card.
func meanRates(rates []pricing.Rates) pricing.Rates {
	var sum pricing.Rates
	n := len(rates)
	if n == 0 {
		return pricing.DefaultRates
	}
	for _, r := range rates {
		sum.StorageGBMonth += r.StorageGBMonth
		sum.PutRequest += r.PutRequest
		sum.GetRequest += r.GetRequest
		sum.DeleteRequest += r.DeleteRequest
		sum.ListRequest += r.ListRequest
		sum.EgressPerGB += r.EgressPerGB
		sum.IngressPerGB += r.IngressPerGB
	}
	f := 1 / float64(n)
	sum.StorageGBMonth *= f
	sum.PutRequest *= f
	sum.GetRequest *= f
	sum.DeleteRequest *= f
	sum.ListRequest *= f
	sum.EgressPerGB *= f
	sum.IngressPerGB *= f
	return sum
}

// VersionCost prices one stored version's lifecycle from its metadata:
// recurring storage per month, the upload it already paid, what one whole
// read costs, and what reclaiming it will cost. It is the dollar companion
// of VersionFootprint and what the garbage collector ranks reclamation
// candidates by.
func (m *Manager) VersionCost(info VersionInfo) pricing.Estimate {
	chunks, fullLen, tailLen := versionChunkShape(info)
	return m.cost(info.Protocol, chunks, fullLen, tailLen)
}

// EstimateCost predicts the lifecycle dollars a value of the given size
// would cost if written now; chunked selects the streamed v2 layout (one
// object per chunk) versus the whole-object v1 layout.
func (m *Manager) EstimateCost(size int64, chunked bool) pricing.Estimate {
	chunks, fullLen, tailLen := m.estimateChunkShape(size, chunked)
	return m.cost(m.opts.Protocol, chunks, fullLen, tailLen)
}

// versionChunkShape reduces a version's chunking to (count, full-chunk
// length, tail-chunk length) — every chunk but the last is full-size, so
// the per-chunk cost loops collapse to constant-time arithmetic.
func versionChunkShape(info VersionInfo) (chunks, fullLen, tailLen int) {
	if info.Chunked() && info.validChunking() {
		return info.ChunkCount, info.ChunkSize, info.chunkPlainLen(info.ChunkCount - 1)
	}
	return 1, info.Size, info.Size
}

// estimateChunkShape is versionChunkShape for a value not yet written.
func (m *Manager) estimateChunkShape(size int64, chunked bool) (chunks, fullLen, tailLen int) {
	if !chunked {
		return 1, int(size), int(size)
	}
	cs := m.chunkSize()
	n := int((size + int64(cs) - 1) / int64(cs))
	if n < 1 {
		n = 1
	}
	return n, cs, int(size - int64(n-1)*int64(cs))
}

// cost prices a version of `chunks` objects (chunks-1 of fullLen plaintext
// bytes plus one of tailLen) under the protocol's dispersal, mirroring
// footprint(): CA charges one erasure shard of the ciphertext on each of
// the n-f quorum clouds and f+1 readers per chunk, A a full replica on all
// n clouds and one reader. The metadata quorum write rides along as q
// request fees. Constant-time regardless of the chunk count.
func (m *Manager) cost(protocol Protocol, chunks, fullLen, tailLen int) pricing.Estimate {
	mean := m.mean
	n := int64(m.N())
	q := int64(m.QuorumSize())
	charged, readers := q, int64(m.opts.F+1)
	if protocol == ProtocolA {
		charged, readers = n, 1
	}
	perChunk := func(plain int) pricing.Estimate {
		var stored int64 // bytes per charged cloud
		if protocol == ProtocolA {
			stored = int64(plain)
		} else {
			stored = int64(m.coder.ShardSize(plain + seccrypto.CiphertextOverhead))
		}
		return pricing.Estimate{
			StoragePerMonth: float64(charged) * mean.StorageCost(stored),
			UploadOnce:      float64(charged) * mean.PutCost(stored),
			ReadOnce:        float64(readers) * mean.GetCost(stored),
			DeleteOnce:      float64(n) * mean.DeleteRequest,
		}
	}
	full := perChunk(fullLen)
	est := pricing.Estimate{
		StoragePerMonth: float64(chunks-1) * full.StoragePerMonth,
		UploadOnce:      float64(chunks-1) * full.UploadOnce,
		ReadOnce:        float64(chunks-1) * full.ReadOnce,
		DeleteOnce:      float64(chunks-1) * full.DeleteOnce,
	}
	est.Add(perChunk(tailLen))
	est.UploadOnce += float64(q) * mean.PutRequest // the metadata quorum write
	return est
}
