package depsky

import (
	"bytes"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"testing"

	"scfs/internal/cloudsim"
	"scfs/internal/seccrypto"
)

// newChunkedManager builds a 4-cloud f=1 manager with a small chunk size so
// multi-chunk paths are exercised cheaply.
func newChunkedManager(t *testing.T, protocol Protocol, chunkSize int) ([]*cloudsim.Provider, *Manager) {
	t.Helper()
	providers, clients := testClouds(t, 4)
	m, err := New(Options{Clouds: clients, F: 1, Protocol: protocol, ChunkSize: chunkSize})
	if err != nil {
		t.Fatal(err)
	}
	return providers, m
}

func randBytes(t *testing.T, n int) []byte {
	t.Helper()
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		t.Fatal(err)
	}
	return b
}

// TestWriteFromChunkBoundaries pins round-trip correctness at every chunk
// boundary: 0, 1, chunkSize-1, chunkSize, chunkSize+1 and multi-chunk.
func TestWriteFromChunkBoundaries(t *testing.T) {
	const cs = 4096
	for _, protocol := range []Protocol{ProtocolCA, ProtocolA} {
		_, m := newChunkedManager(t, protocol, cs)
		for _, size := range []int{0, 1, cs - 1, cs, cs + 1, 3*cs + 100, 5 * cs} {
			data := randBytes(t, size)
			unit := fmt.Sprintf("%s-%d", protocol, size)
			info, err := m.WriteFrom(bg, unit, bytes.NewReader(data))
			if err != nil {
				t.Fatalf("%s size %d: WriteFrom: %v", protocol, size, err)
			}
			wantChunks := (size + cs - 1) / cs
			if info.Size != size || info.ChunkSize != cs || info.ChunkCount != wantChunks {
				t.Fatalf("%s size %d: info = %+v", protocol, size, info)
			}
			if len(info.ChunkHashes) != wantChunks {
				t.Fatalf("%s size %d: %d chunk hash rows, want %d", protocol, size, len(info.ChunkHashes), wantChunks)
			}

			// Whole-object read path (Read) understands chunked versions.
			got, gotInfo, err := m.Read(bg, unit)
			if err != nil {
				t.Fatalf("%s size %d: Read: %v", protocol, size, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s size %d: Read mismatch", protocol, size)
			}
			if gotInfo.DataHash != info.DataHash {
				t.Fatalf("%s size %d: hash mismatch", protocol, size)
			}

			// Streaming read path.
			r, _, err := m.Open(bg, unit)
			if err != nil {
				t.Fatalf("%s size %d: Open: %v", protocol, size, err)
			}
			streamed, err := io.ReadAll(r)
			if err != nil {
				t.Fatalf("%s size %d: streamed read: %v", protocol, size, err)
			}
			if !bytes.Equal(streamed, data) {
				t.Fatalf("%s size %d: streamed read mismatch", protocol, size)
			}
			r.Close()
		}
	}
}

// TestOpenRangeFetchesOnlyCoveringChunks checks ranged reads return the
// right bytes and only touch the chunks covering the range.
func TestOpenRangeFetchesOnlyCoveringChunks(t *testing.T) {
	const cs = 4096
	providers, m := newChunkedManager(t, ProtocolCA, cs)
	data := randBytes(t, 8*cs+57)
	if _, err := m.WriteFrom(bg, "u", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}

	account := providers[0].CreateAccount("alice")
	getRequests := func() int64 { return providers[0].Usage(account).GetRequests }
	before := getRequests()
	var maxGets int64
	for _, c := range []struct{ off, n int64 }{
		{0, 10},
		{cs - 3, 6},
		{3 * cs, cs},
		{int64(len(data)) - 9, 9},
		{int64(len(data)) - 9, 100}, // over-long range is truncated
	} {
		r, _, err := m.OpenRange(bg, "u", c.off, c.n)
		if err != nil {
			t.Fatalf("OpenRange(%d, %d): %v", c.off, c.n, err)
		}
		got, err := io.ReadAll(r)
		if err != nil {
			t.Fatalf("range read (%d, %d): %v", c.off, c.n, err)
		}
		r.Close()
		end := c.off + c.n
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		if !bytes.Equal(got, data[c.off:end]) {
			t.Fatalf("range (%d, %d): bytes differ", c.off, c.n)
		}
		// Each covered chunk costs at most one Get per cloud, plus one for
		// the metadata read.
		maxGets += end/cs - c.off/cs + 1 + 1
	}
	// Summed over all cases (the early-return read path may leave a cloud's
	// Get in flight briefly, so per-case windows are not reliable): ranged
	// reads of an 8-chunk object must fetch far fewer than all chunks every
	// time.
	if reqs := getRequests() - before; reqs > maxGets {
		t.Fatalf("%d gets on one cloud across all ranges, want <= %d", reqs, maxGets)
	}
}

// TestStreamedDegradedReadsAllFaultPatterns exercises every <=f missing
// pattern (each single cloud down, f=1) and both byzantine fault modes, for
// ranged and full reads of a chunked version.
func TestStreamedDegradedReadsAllFaultPatterns(t *testing.T) {
	const cs = 2048
	data := make([]byte, 4*cs+33)
	for i := range data {
		data[i] = byte(i * 31)
	}
	for _, fault := range []cloudsim.FaultMode{cloudsim.FaultUnavailable, cloudsim.FaultCorrupt, cloudsim.FaultLoseWrites} {
		for down := 0; down < 4; down++ {
			providers, m := newChunkedManager(t, ProtocolCA, cs)
			if fault == cloudsim.FaultLoseWrites {
				// Lost writes must be injected before the write.
				providers[down].SetFault(fault)
			}
			if _, err := m.WriteFrom(bg, "u", bytes.NewReader(data)); err != nil {
				t.Fatalf("fault %v cloud %d: WriteFrom: %v", fault, down, err)
			}
			providers[down].SetFault(fault)

			got, _, err := m.Read(bg, "u")
			if err != nil {
				t.Fatalf("fault %v cloud %d: Read: %v", fault, down, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("fault %v cloud %d: Read mismatch", fault, down)
			}

			r, _, err := m.OpenRange(bg, "u", cs-7, 2*cs)
			if err != nil {
				t.Fatalf("fault %v cloud %d: OpenRange: %v", fault, down, err)
			}
			ranged, err := io.ReadAll(r)
			if err != nil {
				t.Fatalf("fault %v cloud %d: ranged read: %v", fault, down, err)
			}
			r.Close()
			if !bytes.Equal(ranged, data[cs-7:cs-7+2*cs]) {
				t.Fatalf("fault %v cloud %d: ranged read mismatch", fault, down)
			}
		}
	}
}

// faultAfter flips a provider into a fault mode once n bytes of the stream
// have been consumed by the writer — a cloud dying mid-upload.
type faultAfter struct {
	r        io.Reader
	n        int
	provider *cloudsim.Provider
	fault    cloudsim.FaultMode
	read     int
	tripped  bool
}

func (f *faultAfter) Read(p []byte) (int, error) {
	n, err := f.r.Read(p)
	f.read += n
	if !f.tripped && f.read > f.n {
		f.tripped = true
		f.provider.SetFault(f.fault)
	}
	return n, err
}

// TestWriteFromMidStreamCloudFailure kills exactly f clouds partway through
// a streamed write: the write must still reach a quorum and the data must
// read back intact.
func TestWriteFromMidStreamCloudFailure(t *testing.T) {
	const cs = 2048
	providers, m := newChunkedManager(t, ProtocolCA, cs)
	data := randBytes(t, 10*cs)
	src := &faultAfter{r: bytes.NewReader(data), n: 3 * cs, provider: providers[2], fault: cloudsim.FaultUnavailable}
	info, err := m.WriteFrom(bg, "u", src)
	if err != nil {
		t.Fatalf("WriteFrom with mid-stream failure: %v", err)
	}
	if info.ChunkCount != 10 {
		t.Fatalf("chunk count = %d", info.ChunkCount)
	}
	got, _, err := m.Read(bg, "u")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mismatch after mid-stream cloud failure")
	}
	// With f+1 failures mid-stream the quorum is unreachable and the write
	// must fail rather than record a bogus version.
	providers2, m2 := newChunkedManager(t, ProtocolCA, cs)
	src2 := &faultAfter{r: bytes.NewReader(data), n: 3 * cs, provider: providers2[0], fault: cloudsim.FaultUnavailable}
	providers2[1].SetFault(cloudsim.FaultUnavailable)
	if _, err := m2.WriteFrom(bg, "u2", src2); !errors.Is(err, ErrQuorumWrite) {
		t.Fatalf("err = %v, want ErrQuorumWrite", err)
	}
}

// TestV1V2Compatibility: units written whole-object (v1) stay readable
// through every read path after the upgrade, and v1/v2 versions coexist in
// one unit's history.
func TestV1V2Compatibility(t *testing.T) {
	const cs = 4096
	_, m := newChunkedManager(t, ProtocolCA, cs)
	v1Data := randBytes(t, 2*cs+11) // bigger than a chunk, written whole
	infoV1, err := m.Write(bg, "u", v1Data)
	if err != nil {
		t.Fatal(err)
	}
	if infoV1.Chunked() {
		t.Fatal("Write produced a chunked version")
	}

	// v1 versions serve ranged reads via the whole-object fallback.
	r, info, err := m.OpenRange(bg, "u", 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if info.Chunked() {
		t.Fatal("newest version should be v1")
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if !bytes.Equal(got, v1Data[100:150]) {
		t.Fatal("v1 ranged read mismatch")
	}

	// A streamed write appends a v2 version on top of the v1 history.
	v2Data := randBytes(t, 3*cs)
	infoV2, err := m.WriteFrom(bg, "u", bytes.NewReader(v2Data))
	if err != nil {
		t.Fatal(err)
	}
	if !infoV2.Chunked() || infoV2.Number != infoV1.Number+1 {
		t.Fatalf("v2 info = %+v", infoV2)
	}
	if got, _, err := m.Read(bg, "u"); err != nil || !bytes.Equal(got, v2Data) {
		t.Fatalf("Read newest after upgrade: %v", err)
	}
	// Both versions remain addressable by hash (the consistency-anchor
	// read), regardless of layout.
	if got, _, err := m.ReadMatching(bg, "u", infoV1.DataHash); err != nil || !bytes.Equal(got, v1Data) {
		t.Fatalf("ReadMatching v1: %v", err)
	}
	if got, _, err := m.ReadMatching(bg, "u", infoV2.DataHash); err != nil || !bytes.Equal(got, v2Data) {
		t.Fatalf("ReadMatching v2: %v", err)
	}
	rm, _, err := m.OpenMatching(bg, "u", infoV1.DataHash)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := io.ReadAll(rm); err != nil || !bytes.Equal(got, v1Data) {
		t.Fatalf("OpenMatching v1: %v", err)
	}
	rm.Close()
}

// TestDeleteChunkedVersionReclaimsSpace verifies chunk objects are removed
// from the clouds when a chunked version is deleted.
func TestDeleteChunkedVersionReclaimsSpace(t *testing.T) {
	const cs = 2048
	// Counts provider 0's objects, so every chunk upload must land there:
	// disable the quorum verdict's straggler cancellation.
	providers, clients := testClouds(t, 4)
	m, err := New(Options{Clouds: clients, F: 1, ChunkSize: cs, DisableQuorumCancel: true})
	if err != nil {
		t.Fatal(err)
	}
	data := randBytes(t, 4*cs)
	info, err := m.WriteFrom(bg, "u", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	countObjects := func() int {
		objs, err := providers[0].MustClient(providers[0].CreateAccount("alice")).List(bg, "dsky/u/")
		if err != nil {
			t.Fatal(err)
		}
		return len(objs)
	}
	before := countObjects()
	if before < info.ChunkCount {
		t.Fatalf("only %d objects before delete", before)
	}
	if err := m.DeleteVersion(bg, "u", info.Number); err != nil {
		t.Fatal(err)
	}
	if after := countObjects(); after != before-info.ChunkCount {
		t.Fatalf("objects %d -> %d, want %d chunk objects gone", before, after, info.ChunkCount)
	}
}

// TestReadMetadataBatch sweeps several units at once and matches the
// per-unit ListVersions results.
func TestReadMetadataBatch(t *testing.T) {
	_, m := newChunkedManager(t, ProtocolCA, 2048)
	want := make(map[string]int)
	for i := 0; i < 9; i++ {
		unit := fmt.Sprintf("u-%d", i)
		for v := 0; v <= i%3; v++ {
			if _, err := m.Write(bg, unit, randBytes(t, 128+i)); err != nil {
				t.Fatal(err)
			}
		}
		want[unit] = i%3 + 1
	}
	units := make([]string, 0, len(want))
	for u := range want {
		units = append(units, u, u) // duplicates must be tolerated
	}
	units = append(units, "missing-unit")
	got := m.ReadMetadataBatch(bg, units)
	if len(got) != len(want) {
		t.Fatalf("batch returned %d units, want %d", len(got), len(want))
	}
	for unit, versions := range got {
		if len(versions) != want[unit] {
			t.Fatalf("unit %s: %d versions, want %d", unit, len(versions), want[unit])
		}
		individual, err := m.ListVersions(bg, unit)
		if err != nil {
			t.Fatal(err)
		}
		for i := range versions {
			if versions[i].Number != individual[i].Number || versions[i].DataHash != individual[i].DataHash {
				t.Fatalf("unit %s version %d differs from ListVersions", unit, i)
			}
		}
	}
	if _, ok := got["missing-unit"]; ok {
		t.Fatal("missing unit present in batch result")
	}
}

// TestStreamedConfidentiality: no single cloud stores the plaintext of a
// streamed CA write.
func TestStreamedConfidentiality(t *testing.T) {
	const cs = 2048
	providers, m := newChunkedManager(t, ProtocolCA, cs)
	secret := bytes.Repeat([]byte("TOPSECRET-"), 700) // ~7 KiB, compressible pattern
	if _, err := m.WriteFrom(bg, "u", bytes.NewReader(secret)); err != nil {
		t.Fatal(err)
	}
	for i, p := range providers {
		id := p.CreateAccount("alice")
		objs, err := p.MustClient(id).List(bg, "dsky/u/")
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range objs {
			payload, err := p.MustClient(id).Get(bg, o.Name)
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Contains(payload, []byte("TOPSECRET-")) {
				t.Fatalf("cloud %d object %s leaks plaintext", i, o.Name)
			}
		}
	}
}

// TestRangedReadIgnoresForgedMetadataCopy pins the certification rule: the
// ranged read path trusts per-chunk hashes only from version entries found
// identical on f+1 clouds, so a single Byzantine cloud rewriting its
// metadata copy (pointing the chunk hashes at forged frames it serves)
// cannot influence what a ranged read returns.
func TestRangedReadIgnoresForgedMetadataCopy(t *testing.T) {
	const cs = 2048
	providers, clients := testClouds(t, 4)
	m, err := New(Options{Clouds: clients, F: 1, ChunkSize: cs})
	if err != nil {
		t.Fatal(err)
	}
	data := randBytes(t, 4*cs)
	info, err := m.WriteFrom(bg, "u", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}

	// Cloud 0 turns Byzantine: it rewrites its metadata copy so every chunk
	// hash points at a forged frame it serves, and stores those frames.
	evil := clients[0]
	forged := make([]byte, len(data))
	for i := range forged {
		forged[i] = 0x66
	}
	raw, err := evil.Get(bg, m.metaName("u"))
	if err != nil {
		t.Fatal(err)
	}
	var md unitMetadata
	if err := json.Unmarshal(raw, &md); err != nil {
		t.Fatal(err)
	}
	for vi := range md.Versions {
		v := &md.Versions[vi]
		if v.Number != info.Number {
			continue
		}
		for idx := 0; idx < v.ChunkCount; idx++ {
			chunk := forged[idx*cs : idx*cs+v.chunkPlainLen(idx)]
			for cloudIdx := 0; cloudIdx < 4; cloudIdx++ {
				frame := make([]byte, frameLenV2(0, len(chunk)))
				encodeBlockV2(frame, ProtocolA, &block{Full: chunk, ShardIdx: cloudIdx, ChunkIdx: idx, ChunkPlainLen: len(chunk)})
				if cloudIdx == 0 {
					if err := evil.Put(bg, m.chunkName("u", v.Number, idx), frame); err != nil {
						t.Fatal(err)
					}
				}
				v.ChunkHashes[idx][cloudIdx] = seccrypto.Hash(frame)
			}
		}
		// The forged entry claims the replication protocol so one frame
		// would suffice to decode a chunk if it were trusted.
		v.Protocol = ProtocolA
	}
	rewritten, err := json.Marshal(&md)
	if err != nil {
		t.Fatal(err)
	}
	if err := evil.Put(bg, m.metaName("u"), rewritten); err != nil {
		t.Fatal(err)
	}
	_ = providers

	r, _, err := m.OpenRange(bg, "u", 0, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if !bytes.Equal(got, data) {
		t.Fatal("ranged read served forged bytes")
	}
}

// TestOpenRangedMatchingDeclinesWholeObjectVersions: v1 versions must send
// callers to the caching whole-object path instead of a fake ranged reader.
func TestOpenRangedMatchingDeclinesWholeObjectVersions(t *testing.T) {
	_, m := newChunkedManager(t, ProtocolCA, 2048)
	info, err := m.Write(bg, "u", randBytes(t, 5000))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.OpenRangedMatching(bg, "u", info.DataHash); !errors.Is(err, ErrWholeObjectOnly) {
		t.Fatalf("err = %v, want ErrWholeObjectOnly", err)
	}
	chunked, err := m.WriteFrom(bg, "u", bytes.NewReader(randBytes(t, 5000)))
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := m.OpenRangedMatching(bg, "u", chunked.DataHash)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
}

// TestMalformedChunkGeometryFailsCleanly: metadata with inconsistent chunk
// arithmetic must produce an error, not a slice-bounds panic.
func TestMalformedChunkGeometryFailsCleanly(t *testing.T) {
	bad := VersionInfo{Number: 1, Size: 5, ChunkSize: 10, ChunkCount: 3, Protocol: ProtocolCA}
	if bad.validChunking() {
		t.Fatal("inconsistent geometry accepted")
	}
	_, m := newChunkedManager(t, ProtocolCA, 2048)
	if _, err := m.readChunkedVersion(bg, "u", bad); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("err = %v, want ErrIntegrity", err)
	}
	good := VersionInfo{Size: 25, ChunkSize: 10, ChunkCount: 3, ChunkHashes: [][]string{nil, nil, nil}}
	if !good.validChunking() {
		t.Fatal("consistent geometry rejected")
	}
}
