package depsky

// Batched metadata reads. SCFS readdir/stat bursts and the garbage
// collector need the version lists of many data units at once; issuing one
// quorum read per unit serializes tens of round trips. ReadMetadataBatch
// fans a single bounded-concurrency sweep over the units instead: at any
// moment at most metadataBatchConcurrency units are in flight, each unit
// still reading from all n clouds in parallel.

import (
	"context"
	"sync"
)

// metadataBatchConcurrency bounds how many units are fetched concurrently
// by ReadMetadataBatch (each unit fans out to all n clouds, so the number
// of in-flight requests is this times n).
const metadataBatchConcurrency = 4

// ReadMetadataBatch fetches and merges the metadata of many units in one
// bounded-concurrency quorum sweep. The result maps each unit to its known
// versions, oldest first; units with no stored metadata are absent. Order
// and duplicates in units are tolerated. Cancelling ctx aborts the
// outstanding per-unit sweeps; already-fetched units still appear in the
// result.
func (m *Manager) ReadMetadataBatch(ctx context.Context, units []string) map[string][]VersionInfo {
	out := make(map[string][]VersionInfo, len(units))
	if len(units) == 0 {
		return out
	}
	// Deduplicate so a repeated unit costs one sweep entry.
	uniq := make([]string, 0, len(units))
	seen := make(map[string]bool, len(units))
	for _, u := range units {
		if !seen[u] {
			seen[u] = true
			uniq = append(uniq, u)
		}
	}

	type result struct {
		unit     string
		versions []VersionInfo
	}
	results := make(chan result, len(uniq))
	sem := make(chan struct{}, metadataBatchConcurrency)
	var wg sync.WaitGroup
	for _, unit := range uniq {
		wg.Add(1)
		go func(unit string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}
			merged := m.mergeMetadata(unit, m.readMetadataQuorum(ctx, unit))
			results <- result{unit: unit, versions: merged.Versions}
		}(unit)
	}
	wg.Wait()
	close(results)
	for r := range results {
		if len(r.versions) > 0 {
			out[r.unit] = r.versions
		}
	}
	return out
}
