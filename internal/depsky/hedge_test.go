package depsky

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"scfs/internal/cloud"
	"scfs/internal/cloudsim"
	"scfs/internal/iopolicy"
)

// hedgeManager builds a 4-cloud manager where the clouds' RTTs are given
// per index (0 = instant), returning the providers for request accounting.
func hedgeManager(t testing.TB, rtts []time.Duration, opts Options) (*Manager, []*cloudsim.Provider, []string) {
	t.Helper()
	providers := make([]*cloudsim.Provider, len(rtts))
	clients := make([]cloud.ObjectStore, len(rtts))
	accounts := make([]string, len(rtts))
	for i, rtt := range rtts {
		providers[i] = cloudsim.NewProvider(cloudsim.Options{
			Name:    fmt.Sprintf("c%d", i),
			Latency: cloudsim.LatencyProfile{RTT: rtt},
		})
		accounts[i] = providers[i].CreateAccount("test")
		clients[i] = providers[i].MustClient(accounts[i])
	}
	opts.Clouds = clients
	if opts.F == 0 {
		opts.F = 1
	}
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return m, providers, accounts
}

// warmTracker seeds every cloud's latency series — both operation classes,
// every size bucket — so ranking and hedge delays are deterministic in
// tests regardless of which series a fan-out consults.
func warmTracker(m *Manager, rtts []time.Duration) {
	ops := []iopolicy.Op{
		iopolicy.GetOp(0), iopolicy.GetOp(1 << 20), iopolicy.GetOp(4 << 20),
		iopolicy.PutOp(0), iopolicy.PutOp(1 << 20), iopolicy.PutOp(4 << 20),
	}
	for i, rtt := range rtts {
		for k := 0; k < 20; k++ {
			for _, op := range ops {
				m.Tracker().Observe(i, op, rtt+time.Microsecond)
			}
		}
	}
}

func hedgeCtx(pol iopolicy.Policy) context.Context {
	return iopolicy.With(context.Background(), pol)
}

// TestHedgedReadSkipsStraggler is the headline behaviour: after the tracker
// has seen the straggler, a hedged read never contacts it — neither for the
// metadata quorum (the three fast clouds are a quorum of responses) nor for
// the blocks (two fast clouds decode a CA value with f=1) — and it returns
// at fast-cloud latency.
func TestHedgedReadSkipsStraggler(t *testing.T) {
	rtts := []time.Duration{0, 0, 0, 300 * time.Millisecond}
	m, providers, _ := hedgeManager(t, rtts, Options{})
	data := bytes.Repeat([]byte{0xA7}, 64<<10)
	if _, err := m.Write(bg, "u", data); err != nil {
		t.Fatal(err)
	}
	// Let the write's straggler uploads drain, then seed the tracker
	// deterministically.
	time.Sleep(350 * time.Millisecond)
	warmTracker(m, rtts)

	before := providers[3].TotalRequests()
	ctx := hedgeCtx(iopolicy.Policy{Hedge: iopolicy.Hedge{Percentile: 0.9}, Preference: iopolicy.Preference{Fastest: true}})
	start := time.Now()
	got, _, err := m.Read(ctx, "u")
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("hedged read returned wrong data")
	}
	if elapsed > 150*time.Millisecond {
		t.Fatalf("hedged read took %v; the straggler's RTT leaked into the read path", elapsed)
	}
	// Give any stray hedge a moment to surface, then check the straggler
	// was never contacted.
	time.Sleep(50 * time.Millisecond)
	if extra := providers[3].TotalRequests() - before; extra != 0 {
		t.Fatalf("straggler served %d requests during a hedged read, want 0", extra)
	}
}

// TestHedgeFiresOnlyAfterDelay pins the hedge timing: with an explicit
// preference putting a slow cloud in the preferred set and a capped hedge
// delay, the read must not succeed before the delay elapses (the decode
// needs the hedged cloud) and must not wait for the slow cloud's full RTT.
func TestHedgeFiresOnlyAfterDelay(t *testing.T) {
	const slowRTT = 400 * time.Millisecond
	const maxDelay = 60 * time.Millisecond
	rtts := []time.Duration{0, 0, 0, slowRTT}
	m, providers, _ := hedgeManager(t, rtts, Options{})
	data := bytes.Repeat([]byte{0x5E}, 32<<10)
	if _, err := m.Write(bg, "u", data); err != nil {
		t.Fatal(err)
	}
	time.Sleep(450 * time.Millisecond)
	warmTracker(m, rtts)

	// Preferred set for the block read (need f+1 = 2): the slow cloud and
	// one fast cloud. The metadata quorum (need 3) also includes cloud 1.
	// Both fan-outs stall on cloud 3 until their hedge fires at maxDelay
	// (the tracked p90 of the slow cloud, clamped down to maxDelay).
	pol := iopolicy.Policy{
		Hedge:      iopolicy.Hedge{Percentile: 0.9, MaxDelay: maxDelay},
		Preference: iopolicy.Preference{Order: []int{3, 0, 1}},
	}
	before2 := providers[2].TotalRequests()
	start := time.Now()
	got, _, err := m.Read(hedgeCtx(pol), "u")
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("wrong data")
	}
	if elapsed < maxDelay {
		t.Fatalf("read finished in %v, before the %v hedge delay — the hedge fired early", elapsed, maxDelay)
	}
	if elapsed > slowRTT {
		t.Fatalf("read took %v, the full straggler RTT: the hedge never fired", elapsed)
	}
	// The hedge actually contacted the spare cloud.
	if extra := providers[2].TotalRequests() - before2; extra == 0 {
		t.Fatal("hedge fired but the spare cloud was never contacted")
	}
}

// TestHedgeKicksImmediatelyOnFailure: a failed preferred cloud must release
// a hedge at once instead of waiting out the delay.
func TestHedgeKicksImmediatelyOnFailure(t *testing.T) {
	rtts := []time.Duration{0, 0, 0, 0}
	m, providers, _ := hedgeManager(t, rtts, Options{})
	data := bytes.Repeat([]byte{0x11}, 16<<10)
	if _, err := m.Write(bg, "u", data); err != nil {
		t.Fatal(err)
	}
	warmTracker(m, rtts)
	providers[0].SetFault(cloudsim.FaultUnavailable)

	// A huge MinDelay makes "waited for the timer" observable as a test
	// timeout; the read can only finish quickly via the failure kick.
	pol := iopolicy.Policy{
		Hedge:      iopolicy.Hedge{Percentile: 0.9, MinDelay: 10 * time.Second},
		Preference: iopolicy.Preference{Order: []int{0, 1, 2, 3}},
	}
	start := time.Now()
	got, _, err := m.Read(hedgeCtx(pol), "u")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("wrong data")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("read took %v despite failure kicks", elapsed)
	}
}

// TestHedgedChunkedRangedRead exercises the hedge gate on the streaming
// (chunked) read path, including degraded operation with a faulty preferred
// cloud.
func TestHedgedChunkedRangedRead(t *testing.T) {
	rtts := []time.Duration{0, 0, 0, 0}
	m, providers, _ := hedgeManager(t, rtts, Options{ChunkSize: 4096})
	data := bytes.Repeat([]byte{0xC3}, 10*4096+17)
	if _, err := m.WriteFrom(bg, "u", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	warmTracker(m, rtts)
	providers[1].SetFault(cloudsim.FaultCorrupt)

	pol := iopolicy.Policy{
		Hedge:      iopolicy.Hedge{Percentile: 0.9, MinDelay: 5 * time.Millisecond},
		Preference: iopolicy.Preference{Order: []int{1, 2}},
	}
	r, _, err := m.OpenRange(hedgeCtx(pol), "u", 4096+100, 2*4096)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[4096+100:4096+100+2*4096]) {
		t.Fatal("ranged hedged read returned wrong bytes")
	}
}

// TestHedgedReadsLeakNoGoroutines runs many hedged reads whose gated
// goroutines are released by the quorum verdict, and checks the goroutine
// count settles back — no timer or gate waiter outlives its fan-out.
func TestHedgedReadsLeakNoGoroutines(t *testing.T) {
	rtts := []time.Duration{0, 0, 0, 50 * time.Millisecond}
	m, _, _ := hedgeManager(t, rtts, Options{})
	data := bytes.Repeat([]byte{0x77}, 8<<10)
	if _, err := m.Write(bg, "u", data); err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond)
	warmTracker(m, rtts)

	before := runtime.NumGoroutine()
	ctx := hedgeCtx(iopolicy.Policy{Hedge: iopolicy.Hedge{Percentile: 0.95}})
	for i := 0; i < 50; i++ {
		if _, _, err := m.Read(ctx, "u"); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after hedged reads", before, runtime.NumGoroutine())
}

// TestDefaultPolicyUnchangedFanOut guards the compatibility contract: with
// no policy on the context and a zero Options.Policy, every cloud is
// contacted immediately (the pre-policy dispatch).
func TestDefaultPolicyUnchangedFanOut(t *testing.T) {
	rtts := []time.Duration{0, 0, 0, 0}
	m, providers, _ := hedgeManager(t, rtts, Options{DisableQuorumCancel: true})
	data := []byte("plain old read")
	if _, err := m.Write(bg, "u", data); err != nil {
		t.Fatal(err)
	}
	// The un-cancelled write returns at its quorum verdict while the
	// redundant uploads are still landing; let them settle before sampling
	// the baseline.
	time.Sleep(50 * time.Millisecond)
	var before int64
	for _, p := range providers {
		before += p.TotalRequests()
	}
	if _, _, err := m.Read(bg, "u"); err != nil {
		t.Fatal(err)
	}
	// With cancellation disabled the read returns at the decode verdict
	// while the redundant RPCs are still landing; let them settle before
	// counting.
	time.Sleep(50 * time.Millisecond)
	var after int64
	for _, p := range providers {
		after += p.TotalRequests()
	}
	// Metadata from all 4 clouds + blocks from all 4 clouds.
	if got := after - before; got != 8 {
		t.Fatalf("default read issued %d requests, want 8 (full fan-out)", got)
	}
}
