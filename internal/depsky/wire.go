package depsky

// Binary block framing.
//
// The per-cloud block of a data-unit version used to be a JSON object, which
// base64-inflates the erasure shard by ~33% and burns CPU marshaling on every
// write and unmarshaling on every read. Blocks are binary payloads with a
// handful of small fields, so they are framed with a compact length-prefixed
// binary envelope instead. The small metadata objects remain JSON: they are
// human-inspectable and off the hot path.
//
// Frame layout (all integers big-endian):
//
//	offset size field
//	0      4    magic "DSKB"
//	4      1    frame version (wireVersion, currently 1)
//	5      1    protocol (0 = DepSky-CA, 1 = DepSky-A)
//	6      1    flags (bit 0: key share present)
//	7      1    keyX (secret-share evaluation point; 0 when no key share)
//	8      2    shard index
//	10     4    key share length
//	14     4    payload length
//	18     …    key share bytes, then payload bytes
//
// The payload is the erasure-coded shard for DepSky-CA and the full
// replicated value for DepSky-A. Integrity is not the frame's job: the
// SHA-256 of the whole frame is recorded in the version metadata
// (VersionInfo.BlockHashes) and checked before decoding, exactly as it was
// for the JSON envelope.

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	wireMagic     = "DSKB"
	wireVersion   = 1
	wireHeaderLen = 18

	wireFlagKeyShare = 1 << 0
)

// ErrBadFrame is returned when a block frame fails structural validation
// (bad magic, unknown version, or inconsistent lengths).
var ErrBadFrame = errors.New("depsky: malformed block frame")

// encodeBlock serializes a block into the binary frame, sized exactly in one
// allocation.
func encodeBlock(p Protocol, b *block) []byte {
	payload := b.Shard
	if p == ProtocolA {
		payload = b.Full
	}
	buf := make([]byte, wireHeaderLen+len(b.KeyShare)+len(payload))
	copy(buf, wireMagic)
	buf[4] = wireVersion
	buf[5] = byte(p)
	if len(b.KeyShare) > 0 {
		buf[6] = wireFlagKeyShare
		buf[7] = b.KeyX
	}
	binary.BigEndian.PutUint16(buf[8:], uint16(b.ShardIdx))
	binary.BigEndian.PutUint32(buf[10:], uint32(len(b.KeyShare)))
	binary.BigEndian.PutUint32(buf[14:], uint32(len(payload)))
	n := copy(buf[wireHeaderLen:], b.KeyShare)
	copy(buf[wireHeaderLen+n:], payload)
	return buf
}

// decodeBlock parses a binary block frame. The returned block's byte fields
// alias data.
func decodeBlock(data []byte) (*block, error) {
	if len(data) < wireHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes, need at least %d", ErrBadFrame, len(data), wireHeaderLen)
	}
	if string(data[:4]) != wireMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	if data[4] != wireVersion {
		return nil, fmt.Errorf("%w: unknown frame version %d", ErrBadFrame, data[4])
	}
	proto := Protocol(data[5])
	if proto != ProtocolCA && proto != ProtocolA {
		return nil, fmt.Errorf("%w: unknown protocol %d", ErrBadFrame, data[5])
	}
	flags := data[6]
	keyLen := int(binary.BigEndian.Uint32(data[10:]))
	payloadLen := int(binary.BigEndian.Uint32(data[14:]))
	if keyLen < 0 || payloadLen < 0 || wireHeaderLen+keyLen+payloadLen != len(data) {
		return nil, fmt.Errorf("%w: lengths %d+%d inconsistent with frame size %d", ErrBadFrame, keyLen, payloadLen, len(data))
	}
	b := &block{ShardIdx: int(binary.BigEndian.Uint16(data[8:]))}
	if flags&wireFlagKeyShare != 0 {
		b.KeyX = data[7]
		b.KeyShare = data[wireHeaderLen : wireHeaderLen+keyLen]
	}
	payload := data[wireHeaderLen+keyLen:]
	if proto == ProtocolA {
		b.Full = payload
	} else {
		b.Shard = payload
	}
	return b, nil
}
