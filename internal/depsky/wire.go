package depsky

// Binary block framing.
//
// The per-cloud block of a data-unit version used to be a JSON object, which
// base64-inflates the erasure shard by ~33% and burns CPU marshaling on every
// write and unmarshaling on every read. Blocks are binary payloads with a
// handful of small fields, so they are framed with a compact length-prefixed
// binary envelope instead. The small metadata objects remain JSON: they are
// human-inspectable and off the hot path.
//
// v1 frame layout — one frame per cloud holding the whole version (all
// integers big-endian):
//
//	offset size field
//	0      4    magic "DSKB"
//	4      1    frame version (1)
//	5      1    protocol (0 = DepSky-CA, 1 = DepSky-A)
//	6      1    flags (bit 0: key share present)
//	7      1    keyX (secret-share evaluation point; 0 when no key share)
//	8      2    shard index
//	10     4    key share length
//	14     4    payload length
//	18     …    key share bytes, then payload bytes
//
// v2 frame layout — the chunked streaming format. A version written through
// the streaming pipeline (Manager.WriteFrom) is cut into fixed-size
// plaintext chunks; each chunk is encrypted, erasure-coded and framed
// independently, and each cloud stores one v2 frame per chunk under the
// object name "<prefix>dsky/<unit>/v<version>/c<chunk>". The header extends
// v1 with the chunk coordinates:
//
//	offset size field
//	0      4    magic "DSKB"
//	4      1    frame version (2)
//	5      1    protocol (0 = DepSky-CA, 1 = DepSky-A)
//	6      1    flags (bit 0: key share present)
//	7      1    keyX (secret-share evaluation point; 0 when no key share)
//	8      2    shard index
//	10     4    key share length
//	14     4    payload length
//	18     4    chunk index
//	22     4    chunk plaintext length (bytes of original data in this chunk)
//	26     …    key share bytes, then payload bytes
//
// The chunk count, the chunk size and the per-chunk per-cloud frame hashes
// live in the version metadata (VersionInfo.ChunkSize, ChunkCount and
// ChunkHashes), not in the frames: the writer does not know the total chunk
// count when the first frames are uploaded, and readers always hold the
// metadata before they touch a frame. Every chunk frame carries the version
// key share so a ranged read of any single chunk can recover the encryption
// key from f+1 clouds without extra round trips.
//
// The payload is the erasure-coded shard of the chunk ciphertext for
// DepSky-CA and the full (replicated) chunk for DepSky-A. Integrity is not
// the frame's job: the SHA-256 of the whole frame is recorded in the version
// metadata (VersionInfo.BlockHashes for v1, VersionInfo.ChunkHashes for v2)
// and checked before decoding, exactly as it was for the JSON envelope.
// Readers still accept v1 frames, so units written before the upgrade stay
// readable.

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	wireMagic     = "DSKB"
	wireVersion   = 1
	wireVersion2  = 2
	wireHeaderLen = 18
	// wireHeaderLenV2 adds chunk index and chunk plaintext length.
	wireHeaderLenV2 = 26

	wireFlagKeyShare = 1 << 0
)

// ErrBadFrame is returned when a block frame fails structural validation
// (bad magic, unknown version, or inconsistent lengths).
var ErrBadFrame = errors.New("depsky: malformed block frame")

// encodeBlock serializes a block into the v1 binary frame, sized exactly in
// one allocation.
func encodeBlock(p Protocol, b *block) []byte {
	payload := b.Shard
	if p == ProtocolA {
		payload = b.Full
	}
	buf := make([]byte, wireHeaderLen+len(b.KeyShare)+len(payload))
	copy(buf, wireMagic)
	buf[4] = wireVersion
	buf[5] = byte(p)
	if len(b.KeyShare) > 0 {
		buf[6] = wireFlagKeyShare
		buf[7] = b.KeyX
	}
	binary.BigEndian.PutUint16(buf[8:], uint16(b.ShardIdx))
	binary.BigEndian.PutUint32(buf[10:], uint32(len(b.KeyShare)))
	binary.BigEndian.PutUint32(buf[14:], uint32(len(payload)))
	n := copy(buf[wireHeaderLen:], b.KeyShare)
	copy(buf[wireHeaderLen+n:], payload)
	return buf
}

// frameLenV2 returns the exact frame size for a v2 block, so callers can
// draw the destination from a pool.
func frameLenV2(keyShareLen, payloadLen int) int {
	return wireHeaderLenV2 + keyShareLen + payloadLen
}

// encodeBlockV2 serializes a chunked block into dst, which must have exactly
// frameLenV2(len(b.KeyShare), len(payload)) bytes. The payload is b.Shard
// for DepSky-CA and b.Full for DepSky-A.
func encodeBlockV2(dst []byte, p Protocol, b *block) {
	payload := b.Shard
	if p == ProtocolA {
		payload = b.Full
	}
	if len(dst) != frameLenV2(len(b.KeyShare), len(payload)) {
		panic(fmt.Sprintf("depsky: v2 frame buffer is %d bytes, need %d", len(dst), frameLenV2(len(b.KeyShare), len(payload))))
	}
	copy(dst, wireMagic)
	dst[4] = wireVersion2
	dst[5] = byte(p)
	dst[6] = 0
	dst[7] = 0
	if len(b.KeyShare) > 0 {
		dst[6] = wireFlagKeyShare
		dst[7] = b.KeyX
	}
	binary.BigEndian.PutUint16(dst[8:], uint16(b.ShardIdx))
	binary.BigEndian.PutUint32(dst[10:], uint32(len(b.KeyShare)))
	binary.BigEndian.PutUint32(dst[14:], uint32(len(payload)))
	binary.BigEndian.PutUint32(dst[18:], uint32(b.ChunkIdx))
	binary.BigEndian.PutUint32(dst[22:], uint32(b.ChunkPlainLen))
	n := copy(dst[wireHeaderLenV2:], b.KeyShare)
	copy(dst[wireHeaderLenV2+n:], payload)
}

// decodeBlock parses a v1 or v2 block frame. The returned block's byte
// fields alias data.
func decodeBlock(data []byte) (*block, error) {
	if len(data) < wireHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes, need at least %d", ErrBadFrame, len(data), wireHeaderLen)
	}
	if string(data[:4]) != wireMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	version := data[4]
	headerLen := wireHeaderLen
	switch version {
	case wireVersion:
	case wireVersion2:
		headerLen = wireHeaderLenV2
		if len(data) < headerLen {
			return nil, fmt.Errorf("%w: %d bytes, need at least %d for a v2 frame", ErrBadFrame, len(data), headerLen)
		}
	default:
		return nil, fmt.Errorf("%w: unknown frame version %d", ErrBadFrame, version)
	}
	proto := Protocol(data[5])
	if proto != ProtocolCA && proto != ProtocolA {
		return nil, fmt.Errorf("%w: unknown protocol %d", ErrBadFrame, data[5])
	}
	flags := data[6]
	keyLen := int(binary.BigEndian.Uint32(data[10:]))
	payloadLen := int(binary.BigEndian.Uint32(data[14:]))
	if keyLen < 0 || payloadLen < 0 || headerLen+keyLen+payloadLen != len(data) {
		return nil, fmt.Errorf("%w: lengths %d+%d inconsistent with frame size %d", ErrBadFrame, keyLen, payloadLen, len(data))
	}
	b := &block{ShardIdx: int(binary.BigEndian.Uint16(data[8:])), ChunkIdx: -1}
	if version == wireVersion2 {
		b.ChunkIdx = int(binary.BigEndian.Uint32(data[18:]))
		b.ChunkPlainLen = int(binary.BigEndian.Uint32(data[22:]))
	}
	if flags&wireFlagKeyShare != 0 {
		b.KeyX = data[7]
		b.KeyShare = data[headerLen : headerLen+keyLen]
	}
	payload := data[headerLen+keyLen:]
	if proto == ProtocolA {
		b.Full = payload
	} else {
		b.Shard = payload
	}
	return b, nil
}
