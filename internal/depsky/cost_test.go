package depsky

import (
	"bytes"
	"testing"
	"time"

	"scfs/internal/pricing"
)

// costManager builds a 4-cloud manager with instant clouds, a small chunk
// size and the bundled price table.
func costManager(t *testing.T, chunkSize int) *Manager {
	t.Helper()
	m, _, _ := hedgeManager(t, []time.Duration{0, 0, 0, 0}, Options{
		ChunkSize: chunkSize,
		Pricing:   pricing.Table{Default: pricing.DefaultRates},
	})
	return m
}

func TestEstimateCostAxes(t *testing.T) {
	m := costManager(t, 4096)
	const size = 16 * 4096
	whole := m.EstimateCost(size, false)
	chunked := m.EstimateCost(size, true)
	if whole.StoragePerMonth <= 0 || whole.UploadOnce <= 0 || whole.ReadOnce <= 0 {
		t.Fatalf("whole-object estimate has zero axes: %+v", whole)
	}
	// Same bytes, same recurring storage (modulo per-chunk shard padding).
	if chunked.StoragePerMonth < whole.StoragePerMonth {
		t.Fatalf("chunked storage %.3e below whole-object %.3e", chunked.StoragePerMonth, whole.StoragePerMonth)
	}
	// The fee axes must discriminate: a 16-chunk version pays ~16x the
	// request fees of one blob on upload and per read. This is what lets
	// the GC rank fee-heavy versions above big cheap blobs of equal size.
	if chunked.UploadOnce < 4*whole.UploadOnce {
		t.Fatalf("chunked upload fees %.3e do not reflect per-object PUTs (whole %.3e)", chunked.UploadOnce, whole.UploadOnce)
	}
	// (Egress scales with bytes and is equal on both; the per-object GET
	// fees on top still separate them clearly.)
	if chunked.ReadOnce < 2*whole.ReadOnce {
		t.Fatalf("chunked read fees %.3e do not reflect per-object GETs (whole %.3e)", chunked.ReadOnce, whole.ReadOnce)
	}
	// The GC's per-byte ranking value (storage + one read) must therefore
	// be strictly higher for the chunk-heavy version.
	bytesOf := func(e pricing.Estimate) float64 { return e.StoragePerMonth + e.ReadOnce }
	if bytesOf(chunked) <= bytesOf(whole) {
		t.Fatalf("chunk-heavy version must out-value an equal-size blob: %.3e vs %.3e", bytesOf(chunked), bytesOf(whole))
	}
}

func TestVersionCostMatchesEstimate(t *testing.T) {
	m := costManager(t, 4096)
	data := bytes.Repeat([]byte{0x7A}, 10*4096)
	info, err := m.WriteFrom(bg, "u", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	got := m.VersionCost(info)
	want := m.EstimateCost(int64(len(data)), true)
	if got != want {
		t.Fatalf("VersionCost %+v != EstimateCost %+v for the version just written", got, want)
	}
	// A zero-value pricing table still yields sane (DefaultRates-priced)
	// numbers rather than zeros.
	m2, _, _ := hedgeManager(t, []time.Duration{0, 0, 0, 0}, Options{})
	if est := m2.EstimateCost(1<<20, false); est.StoragePerMonth <= 0 {
		t.Fatalf("zero table must price with DefaultRates: %+v", est)
	}
}
