// Package scenario is the chaos-scenario harness of SCFS: a driver that
// replays named fault scenarios — provider outages mid-write, gray
// failures, corrupting clouds, flapping providers, breaker recovery —
// against a real mounted scfs instance backed by simulated clouds, and
// asserts the invariants the paper's design promises under each:
//
//   - Availability: client operations keep succeeding while up to f clouds
//     misbehave arbitrarily.
//   - Consistency: whatever a read returns is a complete, integrity-checked
//     version some write produced — never a torn or corrupted mix.
//   - Resource hygiene: a fault burst leaks no goroutines and the retry
//     layer's extra requests stay inside the configured budgets (faults
//     must not balloon the dollar cost of the workload).
//
// Scenarios are data (see All): each names its fault schedule, mount
// configuration, and assertions, and the Run harness wraps every scenario
// with the invariants that always hold — the goroutine-leak check and a
// cost-accounting probe on the degraded mount. The package is exercised by
// `go test ./internal/scenario/...`, which CI runs with -race; scenarios
// marked Long are skipped in -short mode.
package scenario

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"scfs"
	"scfs/internal/cloudsim"
	"scfs/internal/coord"
	"scfs/internal/smr"
)

//scfslint:ignore ctxdiscipline chaos-harness root context; scenarios are the outermost caller
var bg = context.Background()

// counterSum sums every counter of the snapshot whose fully qualified name
// starts with prefix — e.g. counterSum(s, `breaker_open_total{cloud="c0"`)
// totals one cloud's breaker trips across op classes.
func counterSum(s scfs.MetricsSnapshot, prefix string) int64 {
	var sum int64
	for name, v := range s.Counters {
		if strings.HasPrefix(name, prefix) {
			sum += v
		}
	}
	return sum
}

// Env is the deployment a scenario runs against: a mounted scfs instance
// over four simulated clouds (f=1) whose fault schedules the scenario
// scripts via the providers.
type Env struct {
	FS        *scfs.FS
	Providers []*cloudsim.Provider
	// Shards holds the replica groups of a scenario-built coordination
	// plane (see Scenario.Coord), one slice per shard; nil for scenarios
	// using the default built-in coordination.
	Shards [][]*smr.Replica

	stopCoord func()
}

// Requests snapshots every provider's served-request counter; diff two
// snapshots to bound how much traffic a fault phase generated.
func (e *Env) Requests() []int64 {
	out := make([]int64, len(e.Providers))
	for i, p := range e.Providers {
		out[i] = p.TotalRequests()
	}
	return out
}

// Scenario is one named chaos experiment.
type Scenario struct {
	// Name identifies the scenario (kebab-case; used as the subtest name).
	Name string
	// Description is one sentence of what is injected and what must hold.
	Description string
	// Long marks scenarios skipped in -short mode (CI's chaos job runs the
	// short subset under -race; `go test ./internal/scenario/` runs all).
	Long bool
	// RTTs gives each cloud a fixed round-trip latency (nil = instant).
	RTTs []time.Duration
	// Mount appends mount options (breaker tuning, default I/O policy).
	Mount []scfs.Option
	// Coord optionally builds the coordination plane the mount runs on —
	// e.g. a sharded set of BFT replica groups whose members the scenario
	// then crashes. The returned stop tears the plane down; the harness
	// calls it after unmount and before the goroutine-leak check, so a
	// plane that strands replica or client goroutines fails the scenario.
	Coord func(t *testing.T) (svc coord.Service, shards [][]*smr.Replica, stop func())
	// Run scripts the faults and asserts the scenario's own invariants.
	Run func(t *testing.T, env *Env)
}

// Run executes one scenario under the harness-level invariants: the mount
// is built fresh, the scenario runs, cost accounting must still answer on
// the (possibly degraded) mount, and after unmount the process must return
// to its goroutine baseline — a fault burst that strands fan-out goroutines
// fails here even if every operation succeeded.
func Run(t *testing.T, s Scenario) {
	if s.Long && testing.Short() {
		t.Skip("long scenario skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()

	env := newEnv(t, s)
	s.Run(t, env)

	// The dollar ledger must stay available and sane on a degraded mount:
	// chaos that silently duplicated uploads would surface as runaway
	// objects here.
	report, err := env.FS.CostReport(bg)
	if err != nil {
		t.Fatalf("CostReport on post-scenario mount: %v", err)
	}
	if report.Files > 0 && report.CloudObjects <= 0 {
		t.Fatalf("cost report lost the cloud footprint: %+v", report)
	}

	// One Stats() call must still tell the whole story of the run: which
	// clouds served RPCs and what the workload cost in dollars. A scenario
	// whose faults silently disabled instrumentation fails here.
	stats := env.FS.Stats()
	if stats.Telemetry.Total("rpc_total") == 0 {
		t.Fatal("telemetry recorded no RPCs over a full chaos scenario")
	}
	var dollars float64
	for _, ps := range stats.Spend {
		dollars += ps.Dollars
	}
	if dollars <= 0 {
		t.Fatalf("metered spend is empty after a workload: %+v", stats.Spend)
	}

	if err := env.FS.Close(bg); err != nil {
		t.Fatalf("unmount after scenario: %v", err)
	}
	if env.stopCoord != nil {
		env.stopCoord()
		env.stopCoord = nil
	}
	waitGoroutineBaseline(t, baseline)
}

// newEnv builds the scenario's deployment: four simulated clouds (f=1)
// with the scenario's latency profile, mounted with a local disk cache.
func newEnv(t *testing.T, s Scenario) *Env {
	t.Helper()
	providers := make([]*cloudsim.Provider, 4)
	stores := make([]scfs.ObjectStore, 4)
	for i := range providers {
		o := cloudsim.Options{Name: fmt.Sprintf("c%d", i), Seed: int64(i + 1)}
		if i < len(s.RTTs) {
			o.Latency = cloudsim.LatencyProfile{RTT: s.RTTs[i]}
		}
		providers[i] = cloudsim.NewProvider(o)
		stores[i] = providers[i].MustClient(providers[i].CreateAccount("user"))
	}
	opts := append([]scfs.Option{
		scfs.WithClouds(stores...),
		scfs.WithDiskCache(t.TempDir(), 0),
		scfs.WithStreamThreshold(8 << 10),
		scfs.WithMetrics(),
	}, s.Mount...)
	env := &Env{Providers: providers}
	if s.Coord != nil {
		svc, shards, stop := s.Coord(t)
		env.Shards, env.stopCoord = shards, stop
		opts = append(opts, scfs.WithCoordination(svc))
		// Safety net for scenarios aborted by t.Fatal before the harness's
		// ordered teardown: the plane still comes down with the subtest.
		t.Cleanup(func() {
			if env.stopCoord != nil {
				env.stopCoord()
			}
		})
	}
	m, err := scfs.New(bg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	env.FS = m
	return env
}

// waitGoroutineBaseline polls until the goroutine count settles back to (or
// below) the pre-scenario baseline, with slack for runtime housekeeping.
// Fan-out goroutines parked on hedge gates or hung RPCs show up here.
func waitGoroutineBaseline(t *testing.T, baseline int) {
	t.Helper()
	const slack = 3
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d goroutines, baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
