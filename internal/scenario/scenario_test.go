package scenario

import "testing"

// TestScenarios replays every named chaos scenario against a fresh mount.
// CI runs this with -race; Long scenarios are skipped under -short.
func TestScenarios(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) { Run(t, s) })
	}
}
