package scenario

// The named scenarios. Each scripts one failure pattern the paper's design
// claims to survive and asserts what "survive" means for it. They share the
// standard deployment of newEnv: four simulated clouds, f=1, streaming
// above 8 KiB so large reads and writes actually fan out to the clouds
// instead of being absorbed by the local cache.

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scfs"
	"scfs/internal/cloudsim"
	"scfs/internal/coord"
	"scfs/internal/depspace"
	"scfs/internal/metashard"
	"scfs/internal/smr"
)

// payload builds deterministic, seed-tagged file contents.
func payload(seed byte, n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = seed + byte(i%97)
	}
	return data
}

// mustWrite / mustRead are the availability assertions: under every
// scenario's faults, client operations must keep succeeding.
func mustWrite(t *testing.T, env *Env, path string, data []byte, opts ...scfs.CallOption) {
	t.Helper()
	if err := scfs.WriteFile(bg, env.FS, path, data, opts...); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
}

func mustRead(t *testing.T, env *Env, path string, want []byte, opts ...scfs.CallOption) {
	t.Helper()
	got, err := scfs.ReadFile(bg, env.FS, path, opts...)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read %s: got %d bytes, want %d (content mismatch)", path, len(got), len(want))
	}
}

// All returns the chaos scenarios, each runnable with Run.
func All() []Scenario {
	return []Scenario{
		providerOutageMidWrite(),
		grayFailureSequentialScan(),
		fCorruptingClouds(),
		flappingProvider(),
		breakerRecovery(),
		shardOutageMetadataStorm(),
	}
}

// providerOutageMidWrite: a cloud accepts the first requests of a chunked
// upload and then goes dark between chunks. The write must complete on the
// surviving quorum, the read-back must match, and the outage must not leave
// a torn half-version behind (exactly one stored version per file).
func providerOutageMidWrite() Scenario {
	const chunk = 1 << 20
	return Scenario{
		Name: "provider-outage-mid-write",
		Description: "one cloud dies between chunks of a streamed upload; " +
			"the write completes on the quorum and no partial version exists",
		Run: func(t *testing.T, env *Env) {
			warm := payload(0x10, 2*chunk+300)
			mustWrite(t, env, "/warm.bin", warm)

			// c0 serves two more requests of the upload, then everything
			// it is asked fails: an outage striking mid-write.
			env.Providers[0].SetFaults(cloudsim.FaultSpec{
				Mode: cloudsim.FaultUnavailable, AfterN: 2,
			})
			mid := payload(0x33, 3*chunk+11)
			mustWrite(t, env, "/mid.bin", mid)
			mustRead(t, env, "/mid.bin", mid)
			// Files written before the outage stay readable through it.
			mustRead(t, env, "/warm.bin", warm)

			// The outage heals; the version written during it is still the
			// one read afterwards.
			env.Providers[0].ClearFaults()
			mustRead(t, env, "/mid.bin", mid)

			// No torn versions: two files, one complete version each. A
			// retry loop that re-uploaded chunks into fresh versions (or a
			// failed fan-out that committed metadata anyway) shows up here.
			report, err := env.FS.CostReport(bg)
			if err != nil {
				t.Fatal(err)
			}
			if report.Files != 2 || report.Versions != 2 {
				t.Fatalf("stored %d versions across %d files, want exactly 2/2",
					report.Versions, report.Files)
			}
		},
	}
}

// grayFailureSequentialScan: a provider turns gray — no errors, just a
// ~500x latency inflation — during a sequential scan. Hedged, readahead
// reads must route around it: the scan returns correct bytes in a small
// fraction of the time a scan serialized behind the gray cloud would take.
func grayFailureSequentialScan() Scenario {
	const chunk = 1 << 20
	rtt := 2 * time.Millisecond
	return Scenario{
		Name: "gray-failure-sequential-scan",
		Description: "a cloud inflates read latency 500x without erroring; " +
			"a hedged sequential scan completes near healthy speed",
		RTTs: []time.Duration{rtt, rtt, rtt, rtt},
		Run: func(t *testing.T, env *Env) {
			data := payload(0x5E, 3*chunk+77)
			mustWrite(t, env, "/scan.bin", data)

			// c1 goes gray for reads: struck requests take ~1s each.
			env.Providers[1].SetFaults(cloudsim.FaultSpec{
				Mode: cloudsim.FaultSlow, Ops: cloudsim.MaskReads, LatencyFactor: 500,
			})

			var sink bytes.Buffer
			start := time.Now()
			n, err := scfs.ReadFileTo(bg, env.FS, "/scan.bin", &sink,
				scfs.WithHedge(0.9),
				scfs.WithHedgeDelayBounds(2*time.Millisecond, 30*time.Millisecond),
				scfs.WithReadahead(2),
			)
			elapsed := time.Since(start)
			if err != nil {
				t.Fatalf("scan under gray failure: %v", err)
			}
			if n != int64(len(data)) || !bytes.Equal(sink.Bytes(), data) {
				t.Fatalf("scan returned %d/%d correct bytes", n, len(data))
			}
			// Serialized behind the gray cloud the scan would take >= 3s
			// (three chunk fetches at ~1s each). Hedging must keep it far
			// below that.
			if elapsed > 1500*time.Millisecond {
				t.Fatalf("gray cloud dominated the scan: %v elapsed", elapsed)
			}
		},
	}
}

// fCorruptingClouds: f clouds return silently corrupted payloads on every
// read. The integrity layer must discard their answers and serve correct
// data from the rest, for streamed files and small inline ones alike.
func fCorruptingClouds() Scenario {
	return Scenario{
		Name: "f-corrupting-clouds",
		Description: "f=1 cloud corrupts every read; integrity checks " +
			"discard it and reads stay correct",
		Run: func(t *testing.T, env *Env) {
			big := payload(0x71, 64<<10)
			small := payload(0x72, 512)
			mustWrite(t, env, "/doc.bin", big)
			mustWrite(t, env, "/note.txt", small)

			env.Providers[3].SetFaults(cloudsim.FaultSpec{
				Mode: cloudsim.FaultCorrupt, Ops: cloudsim.MaskGet,
			})
			mustRead(t, env, "/doc.bin", big)
			mustRead(t, env, "/note.txt", small)

			// Writing through a corrupting cloud works too, and what was
			// written reads back intact while the corruption continues.
			during := payload(0x73, 32<<10)
			mustWrite(t, env, "/during.bin", during)
			mustRead(t, env, "/during.bin", during)
		},
	}
}

// flappingProvider: one cloud fails roughly half its requests at random,
// indefinitely. A retry-budgeted workload must see every operation succeed,
// and the flapping cloud's request count must stay inside the budget (the
// dollar bound: retries may at most multiply that cloud's traffic by the
// attempt budget, never run away).
func flappingProvider() Scenario {
	const rounds = 15
	return Scenario{
		Name: "flapping-provider",
		Description: "one cloud fails ~45% of requests; a retry-budgeted " +
			"workload fully succeeds with per-cloud traffic inside budget",
		Long: true, // probabilistic and iteration-heavy: full runs only
		Run: func(t *testing.T, env *Env) {
			if err := env.FS.Mkdir(bg, "/flap"); err != nil {
				t.Fatal(err)
			}
			env.Providers[2].SetFaults(cloudsim.FaultSpec{
				Mode: cloudsim.FaultUnavailable, Probability: 0.45,
			})
			retry := []scfs.CallOption{
				scfs.WithRetry(3),
				scfs.WithRetryBackoff(time.Millisecond, 4*time.Millisecond),
			}
			before := env.Requests()
			files := make(map[string][]byte, rounds)
			for i := 0; i < rounds; i++ {
				path := fmt.Sprintf("/flap/f%02d.bin", i)
				data := payload(byte(i), 12<<10)
				files[path] = data
				mustWrite(t, env, path, data, retry...)
				mustRead(t, env, path, data, retry...)
			}
			// Everything remains readable after the storm.
			env.Providers[2].ClearFaults()
			for path, data := range files {
				mustRead(t, env, path, data)
			}
			// Budget bound: the flapping cloud saw at most MaxAttempts times
			// the traffic of the busiest healthy cloud (plus slack for the
			// final verification pass).
			delta := env.Requests()
			var maxHealthy int64
			for i := range delta {
				d := delta[i] - before[i]
				if i != 2 && d > maxHealthy {
					maxHealthy = d
				}
			}
			if flapped := delta[2] - before[2]; flapped > 3*maxHealthy+10 {
				t.Fatalf("flapping cloud served %d requests, healthy max %d: retry budget not honored",
					flapped, maxHealthy)
			}
		},
	}
}

// shardOutageMetadataStorm: the mount's coordination runs on two BFT-
// replicated metadata shards; mid-storm, the leader replica of one shard
// crashes. The surviving 3-of-4 quorum must view-change and keep that shard
// serving — every session's metadata ops succeed, cross-shard listings stay
// complete, both shards demonstrably executed commands, and tearing the
// plane down leaks nothing.
func shardOutageMetadataStorm() Scenario {
	const (
		shards   = 2
		dirs     = 8
		sessions = 16
		ops      = 24 // per session
	)
	var groups [][]*smr.Replica
	return Scenario{
		Name: "shard-outage-metadata-storm",
		Description: "a metadata shard loses its leader replica mid-storm; " +
			"the quorum view-changes and every session's ops still succeed",
		// The storm runs fully instrumented: the flight recorder must retain
		// the outage's evidence (view-change-crossing ops) as exemplars even
		// though hundreds of healthy ops finish afterwards.
		Mount: []scfs.Option{scfs.WithTracing(64), scfs.WithFlightRecorder()},
		Coord: func(t *testing.T) (coord.Service, [][]*smr.Replica, func()) {
			var stops []func()
			services := make([]coord.Service, shards)
			groups = make([][]*smr.Replica, shards)
			for i := range services {
				cfg := smr.Config{ReplicaIDs: []int{0, 1, 2, 3}, Model: smr.ByzantineFaults}
				net := smr.NewNetwork()
				net.SetDelay(50 * time.Microsecond)
				for _, id := range cfg.ReplicaIDs {
					r, err := smr.NewReplica(id, cfg, smr.NewBatchApplication(depspace.NewSpace()), net)
					if err != nil {
						t.Fatal(err)
					}
					r.Start()
					groups[i] = append(groups[i], r)
					stops = append(stops, r.Stop)
				}
				cli := smr.NewClient(fmt.Sprintf("chaos-shard-%d", i), cfg, net)
				stops = append(stops, cli.Close)
				// The requester must match the mount's principal ("user"):
				// metadata tuples are ACL'd to their owner.
				services[i] = coord.NewDepSpaceService(depspace.NewClient(smr.NewCoalescer(cli), "user", nil))
				stops = append(stops, net.Close)
			}
			svc, err := metashard.New(services, metashard.WithSubtreePartition())
			if err != nil {
				t.Fatal(err)
			}
			return svc, groups, func() {
				for _, stop := range stops {
					stop()
				}
			}
		},
		Run: func(t *testing.T, env *Env) {
			for d := 0; d < dirs; d++ {
				if err := env.FS.Mkdir(bg, fmt.Sprintf("/d%d", d)); err != nil {
					t.Fatal(err)
				}
				mustWrite(t, env, fmt.Sprintf("/d%d/seed.bin", d), payload(byte(d), 600))
			}
			// Both shards must own part of the namespace, or crashing one
			// would prove nothing about the other's independence.
			seeded := make([]uint64, shards)
			for i, g := range env.Shards {
				if _, seeded[i] = g[0].Progress(); seeded[i] == 0 {
					t.Fatalf("shard %d executed nothing during seeding: partition is one-sided", i)
				}
			}

			// The storm: sessions hammer stat/readdir/create across every
			// directory. Once half the ops are in, shard 1's current leader
			// (replica 0, view 0) crashes; the remaining replicas must
			// suspect it, view-change, and resume — no client ever errors.
			var done atomic.Int64
			var crashOnce sync.Once
			var wg sync.WaitGroup
			for s := 0; s < sessions; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					for i := 0; i < ops; i++ {
						if done.Add(1) == sessions*ops/2 {
							crashOnce.Do(func() { env.Shards[1][0].Stop() })
						}
						dir := fmt.Sprintf("/d%d", (s+i)%dirs)
						var err error
						switch {
						case i%8 == 0:
							err = scfs.WriteFile(bg, env.FS,
								fmt.Sprintf("%s/s%d-%d.bin", dir, s, i), payload(byte(s), 600))
						case i%8 == 1:
							_, err = env.FS.ReadDir(bg, dir)
						default:
							_, err = env.FS.Stat(bg, dir+"/seed.bin")
						}
						if err != nil {
							t.Errorf("session %d op %d (%s): %v", s, i, dir, err)
							return
						}
					}
				}(s)
			}
			wg.Wait()
			if t.Failed() {
				for i, g := range env.Shards {
					for _, r := range g {
						view, exec := r.Progress()
						t.Logf("shard %d replica %d: view=%d lastExec=%d", i, r.ID(), view, exec)
					}
				}
				return
			}

			// The crashed shard made progress after losing its leader, under
			// a new view: the outage was survived, not routed around.
			view, _ := env.Shards[1][1].Progress()
			if view == 0 {
				t.Fatalf("shard 1 never view-changed after its leader crashed (view=%d)", view)
			}

			// The flight recorder holds the outage's evidence: operations
			// whose smr invocations were in flight across the view change are
			// flagged and retained as exemplars — still quotable here, after
			// hundreds of healthy post-crash ops churned the recency ring.
			// (This replaces counting executions on the survivors: a retained
			// view-change trace proves ops crossed the outage *and* completed.)
			fr := env.FS.FlightRecorder()
			var vcTrace, retransmitted *scfs.Trace
			for _, class := range fr.Classes() {
				for _, tr := range fr.Flagged(class) {
					if !tr.CrossedViewChange() {
						continue
					}
					for _, sp := range tr.Spans() {
						if sp.Name != "smr.invoke" || !sp.ViewChange {
							continue
						}
						vcTrace = tr
						if sp.Retries > 0 {
							retransmitted = tr
						}
					}
				}
			}
			if vcTrace == nil {
				t.Fatalf("flight recorder retained no view-change-crossing trace; stats: %+v", fr.Stats())
			}
			if retransmitted == nil {
				t.Fatalf("no retained exemplar shows the outage's retransmissions: %v", vcTrace.Describe())
			}

			// Cross-shard consistency after the storm: the merged root lists
			// every directory, and each directory holds its seed plus the
			// three files every session created in it.
			root, err := env.FS.ReadDir(bg, "/")
			if err != nil {
				t.Fatal(err)
			}
			if len(root) != dirs {
				t.Fatalf("root lists %d entries after the storm, want %d", len(root), dirs)
			}
			for d := 0; d < dirs; d++ {
				ents, err := env.FS.ReadDir(bg, fmt.Sprintf("/d%d", d))
				if err != nil {
					t.Fatal(err)
				}
				want := 1 + sessions*ops/8/dirs
				if len(ents) != want {
					t.Fatalf("/d%d lists %d entries, want %d", d, len(ents), want)
				}
			}
		},
	}
}

// breakerRecovery: a provider goes down long enough to trip its breakers,
// a fail-fast workload then runs without contacting it at all, and after
// the outage ends the cooldown's probe readmits it — traffic resumes
// against the healed cloud without any operator intervention.
func breakerRecovery() Scenario {
	return Scenario{
		Name: "breaker-recovery",
		Description: "an outage trips the breakers, fail-fast ops skip the " +
			"dead cloud entirely, and the post-cooldown probe readmits it",
		Mount: []scfs.Option{
			scfs.WithBreakerPolicy(scfs.BreakerPolicy{
				FailureThreshold: 2,
				Cooldown:         150 * time.Millisecond,
			}),
		},
		Run: func(t *testing.T, env *Env) {
			steady := payload(0x2B, 12<<10)
			mustWrite(t, env, "/steady.bin", steady)

			// Outage: every request to c0 fails. Full-fan-out writes keep
			// succeeding on the quorum while the failures trip c0's GET and
			// PUT breakers.
			env.Providers[0].SetFault(cloudsim.FaultUnavailable)
			for i := 0; i < 3; i++ {
				mustWrite(t, env, fmt.Sprintf("/outage%d.bin", i), payload(byte(i), 12<<10))
			}

			// The failures must have tripped c0's breakers — telemetry, not
			// inference, says so.
			if trips := counterSum(env.FS.Stats().Telemetry, `breaker_open_total{cloud="c0"`); trips < 1 {
				t.Fatalf("outage tripped no breaker for c0 (breaker_open_total = %d)", trips)
			}

			// Breakers open: fail-fast operations must not touch c0 at all —
			// neither at the provider nor in the RPC counters (the skips land
			// on their own counter instead).
			before := env.Providers[0].TotalRequests()
			beforeTel := env.FS.Stats().Telemetry
			for i := 0; i < 4; i++ {
				data := payload(byte(0x40+i), 12<<10)
				path := fmt.Sprintf("/open%d.bin", i)
				mustWrite(t, env, path, data, scfs.WithBreaker(scfs.BreakerFailFast))
				mustRead(t, env, path, data, scfs.WithBreaker(scfs.BreakerFailFast))
			}
			afterTel := env.FS.Stats().Telemetry
			if extra := env.Providers[0].TotalRequests() - before; extra != 0 {
				t.Fatalf("fail-fast ops sent %d requests to a cloud with open breakers", extra)
			}
			const c0RPCs = `rpc_total{cloud="c0"`
			if d := counterSum(afterTel, c0RPCs) - counterSum(beforeTel, c0RPCs); d != 0 {
				t.Fatalf("fail-fast phase recorded %d RPC attempts against c0", d)
			}
			const c0Skips = `rpc_breaker_skipped_total{cloud="c0"`
			if d := counterSum(afterTel, c0Skips) - counterSum(beforeTel, c0Skips); d == 0 {
				t.Fatal("fail-fast phase recorded no breaker skips for c0")
			}

			// Recovery: the outage ends and fail-fast traffic keeps flowing.
			// Poll against a deadline instead of guessing a settle time —
			// once the cooldown elapses, some operation's probe readmits c0
			// and its request counter moves again with no change in client
			// behaviour.
			env.Providers[0].SetFault(cloudsim.FaultNone)
			before = env.Providers[0].TotalRequests()
			deadline := time.Now().Add(10 * time.Second)
			for i := 0; env.Providers[0].TotalRequests() == before; i++ {
				if time.Now().After(deadline) {
					t.Fatal("healed cloud never readmitted: breaker probe did not close it")
				}
				data := payload(byte(0x60+i%32), 12<<10)
				path := fmt.Sprintf("/healed%d.bin", i)
				mustWrite(t, env, path, data, scfs.WithBreaker(scfs.BreakerFailFast))
				mustRead(t, env, path, data, scfs.WithBreaker(scfs.BreakerFailFast))
				time.Sleep(20 * time.Millisecond)
			}
			// The readmission is a recorded breaker transition, not an
			// accident: a successful probe moved some c0 breaker back to
			// closed.
			if rec := counterSum(env.FS.Stats().Telemetry, `breaker_recovered_total{cloud="c0"`); rec < 1 {
				t.Fatalf("c0 serves requests again but no breaker recovery was recorded (%d)", rec)
			}
			// And the pre-outage file is still intact.
			mustRead(t, env, "/steady.bin", steady)
		},
	}
}
