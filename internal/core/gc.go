package core

import (
	"context"
	"sync"

	"scfs/internal/fsmeta"
	"scfs/internal/storage"
)

// Garbage collection (§2.5.3): SCFS keeps every version of every file (and
// files removed by the user) until the garbage collector reclaims them. The
// collector runs at each agent, in the background, driven by two parameters
// set at mount time: the number of written bytes W that triggers a run and
// the number of versions V to keep per file.

// maybeStartGC launches a background collection when the bytes written — or
// the cloud objects created, a proxy for per-request fee pressure — since
// the previous run exceed the configured triggers. The two triggers weigh
// the two axes of the cloud cost model: a workload streaming many chunked
// versions can accumulate thousands of fee-bearing objects while staying
// under any byte budget.
func (a *Agent) maybeStartGC() {
	byteTrigger := a.opts.GC.TriggerBytes
	objTrigger := a.opts.GC.TriggerObjects
	if byteTrigger <= 0 && objTrigger <= 0 {
		return
	}
	a.mu.Lock()
	due := (byteTrigger > 0 && a.bytesSinceGC >= byteTrigger) ||
		(objTrigger > 0 && a.objectsSinceGC >= objTrigger)
	if a.closed || a.gcRunning || !due {
		a.mu.Unlock()
		return
	}
	a.gcRunning = true
	a.bytesSinceGC = 0
	a.objectsSinceGC = 0
	a.mu.Unlock()

	a.addStat(func(s *Stats) { s.GCsTriggered++ })
	go func() {
		defer func() {
			a.mu.Lock()
			a.gcRunning = false
			a.mu.Unlock()
		}()
		// Background collections run under the agent's lifetime context:
		// they outlive the close() that triggered them but not the mount.
		_, _ = a.Collect(a.baseCtx)
	}()
}

// GCReport summarizes one garbage-collection run.
type GCReport struct {
	// FilesScanned is the number of metadata records examined.
	FilesScanned int
	// VersionsDeleted is the number of old versions removed from the cloud.
	VersionsDeleted int
	// FilesPurged is the number of deleted files whose data and metadata
	// were reclaimed.
	FilesPurged int
	// ReclaimedBytes is the cloud storage freed by the run (best-effort
	// estimate; 0 when the backend cannot attribute bytes).
	ReclaimedBytes int64
	// ReclaimedObjects counts the cloud objects removed. Chunked versions
	// free one object per chunk per charged cloud, so this is the
	// request-fee axis of the reclaim: fewer surviving objects mean fewer
	// GET fees per future read and fewer storage-class minimums.
	ReclaimedObjects int64
	// ReclaimedDollars is the recurring storage spend, in $/month, the run
	// stopped accruing (priced by the backend's rate table; 0 when the
	// backend cannot attribute dollars). The sweep issues deletions in
	// descending dollars-per-byte order, so a run cut short still reclaims
	// the most valuable candidates first.
	ReclaimedDollars float64
}

// Collect runs one synchronous garbage collection pass over the files owned
// by this agent's user: old versions beyond the configured keep-count are
// deleted from the cloud storage, and files previously removed by the user
// have their remaining versions and metadata erased.
//
// The pass first walks the metadata to decide what dies, then deletes. When
// the backend supports batched sweeps (the CoC backend resolves every
// file's versions with one bounded-concurrency metadata sweep instead of
// one quorum read per deleted version), all deletions go out as one batch.
func (a *Agent) Collect(ctx context.Context) (GCReport, error) {
	var report GCReport
	entries, err := a.listSubtree(ctx, "/")
	if err != nil {
		return report, err
	}
	keep := a.opts.GC.KeepVersions

	// Phase 1: scan metadata, gathering doomed versions per file.
	doomed := make(map[string][]string)
	var purged, trimmed []*fsmeta.Metadata
	for _, md := range entries {
		if md.Owner != a.opts.User || md.IsDir() {
			continue
		}
		report.FilesScanned++
		if md.Deleted {
			for _, v := range md.Versions {
				doomed[md.FileID] = append(doomed[md.FileID], v.Hash)
			}
			purged = append(purged, md)
			continue
		}
		removed := md.TrimVersions(keep)
		if len(removed) == 0 {
			continue
		}
		for _, v := range removed {
			doomed[md.FileID] = append(doomed[md.FileID], v.Hash)
		}
		trimmed = append(trimmed, md)
	}

	// Phase 2: delete the doomed versions from the cloud.
	sweep := a.sweepVersions(ctx, doomed)
	report.VersionsDeleted = sweep.Deleted
	report.ReclaimedBytes = sweep.ReclaimedBytes
	report.ReclaimedObjects = sweep.ReclaimedObjects
	report.ReclaimedDollars = sweep.ReclaimedDollars

	// Phase 3: apply the metadata updates.
	for _, md := range purged {
		if err := a.deleteMetadata(ctx, md.Path); err != nil {
			return report, err
		}
		report.FilesPurged++
	}
	for _, md := range trimmed {
		if err := a.putMetadata(ctx, md); err != nil {
			return report, err
		}
	}
	if err := a.flushPNS(ctx); err != nil {
		return report, err
	}
	return report, nil
}

// sweepVersions deletes the given fileID -> hashes and returns what was
// reclaimed, preferring the backend's batched sweep (which also attributes
// the freed bytes and objects).
func (a *Agent) sweepVersions(ctx context.Context, doomed map[string][]string) storage.SweepStats {
	if len(doomed) == 0 {
		return storage.SweepStats{}
	}
	if sweeper, ok := a.opts.Storage.(storage.VersionSweeper); ok {
		return sweeper.DeleteVersionsBatch(ctx, doomed)
	}
	var stats storage.SweepStats
	var mu sync.Mutex
	var wg sync.WaitGroup
	// Bounded fan-out: a namespace-wide sweep can doom thousands of
	// versions, and unbounded goroutines would fire them all at the cloud
	// at once.
	sem := make(chan struct{}, 4)
	for fileID, hashes := range doomed {
		for _, hash := range hashes {
			wg.Add(1)
			go func(fileID, hash string) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if err := a.opts.Storage.DeleteVersion(ctx, fileID, hash); err == nil {
					mu.Lock()
					stats.Deleted++
					mu.Unlock()
				}
			}(fileID, hash)
		}
	}
	wg.Wait()
	return stats
}
