package core

import (
	"context"
	"sync"

	"scfs/internal/fsmeta"
	"scfs/internal/storage"
)

// Garbage collection (§2.5.3): SCFS keeps every version of every file (and
// files removed by the user) until the garbage collector reclaims them. The
// collector runs at each agent, in the background, driven by two parameters
// set at mount time: the number of written bytes W that triggers a run and
// the number of versions V to keep per file.

// maybeStartGC launches a background collection when the number of bytes
// written since the previous run exceeds the configured trigger.
func (a *Agent) maybeStartGC() {
	if a.opts.GC.TriggerBytes <= 0 {
		return
	}
	a.mu.Lock()
	if a.closed || a.gcRunning || a.bytesSinceGC < a.opts.GC.TriggerBytes {
		a.mu.Unlock()
		return
	}
	a.gcRunning = true
	a.bytesSinceGC = 0
	a.mu.Unlock()

	a.addStat(func(s *Stats) { s.GCsTriggered++ })
	go func() {
		defer func() {
			a.mu.Lock()
			a.gcRunning = false
			a.mu.Unlock()
		}()
		// Background collections run under the agent's lifetime context:
		// they outlive the close() that triggered them but not the mount.
		_, _ = a.Collect(a.baseCtx)
	}()
}

// GCReport summarizes one garbage-collection run.
type GCReport struct {
	// FilesScanned is the number of metadata records examined.
	FilesScanned int
	// VersionsDeleted is the number of old versions removed from the cloud.
	VersionsDeleted int
	// FilesPurged is the number of deleted files whose data and metadata
	// were reclaimed.
	FilesPurged int
}

// Collect runs one synchronous garbage collection pass over the files owned
// by this agent's user: old versions beyond the configured keep-count are
// deleted from the cloud storage, and files previously removed by the user
// have their remaining versions and metadata erased.
//
// The pass first walks the metadata to decide what dies, then deletes. When
// the backend supports batched sweeps (the CoC backend resolves every
// file's versions with one bounded-concurrency metadata sweep instead of
// one quorum read per deleted version), all deletions go out as one batch.
func (a *Agent) Collect(ctx context.Context) (GCReport, error) {
	var report GCReport
	entries, err := a.listSubtree(ctx, "/")
	if err != nil {
		return report, err
	}
	keep := a.opts.GC.KeepVersions

	// Phase 1: scan metadata, gathering doomed versions per file.
	doomed := make(map[string][]string)
	var purged, trimmed []*fsmeta.Metadata
	for _, md := range entries {
		if md.Owner != a.opts.User || md.IsDir() {
			continue
		}
		report.FilesScanned++
		if md.Deleted {
			for _, v := range md.Versions {
				doomed[md.FileID] = append(doomed[md.FileID], v.Hash)
			}
			purged = append(purged, md)
			continue
		}
		removed := md.TrimVersions(keep)
		if len(removed) == 0 {
			continue
		}
		for _, v := range removed {
			doomed[md.FileID] = append(doomed[md.FileID], v.Hash)
		}
		trimmed = append(trimmed, md)
	}

	// Phase 2: delete the doomed versions from the cloud.
	report.VersionsDeleted = a.sweepVersions(ctx, doomed)

	// Phase 3: apply the metadata updates.
	for _, md := range purged {
		if err := a.deleteMetadata(ctx, md.Path); err != nil {
			return report, err
		}
		report.FilesPurged++
	}
	for _, md := range trimmed {
		if err := a.putMetadata(ctx, md); err != nil {
			return report, err
		}
	}
	if err := a.flushPNS(ctx); err != nil {
		return report, err
	}
	return report, nil
}

// sweepVersions deletes the given fileID -> hashes and returns how many
// versions were removed, preferring the backend's batched sweep.
func (a *Agent) sweepVersions(ctx context.Context, doomed map[string][]string) int {
	if len(doomed) == 0 {
		return 0
	}
	if sweeper, ok := a.opts.Storage.(storage.VersionSweeper); ok {
		return sweeper.DeleteVersionsBatch(ctx, doomed)
	}
	deleted := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	// Bounded fan-out: a namespace-wide sweep can doom thousands of
	// versions, and unbounded goroutines would fire them all at the cloud
	// at once.
	sem := make(chan struct{}, 4)
	for fileID, hashes := range doomed {
		for _, hash := range hashes {
			wg.Add(1)
			go func(fileID, hash string) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if err := a.opts.Storage.DeleteVersion(ctx, fileID, hash); err == nil {
					mu.Lock()
					deleted++
					mu.Unlock()
				}
			}(fileID, hash)
		}
	}
	wg.Wait()
	return deleted
}
