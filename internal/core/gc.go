package core

import (
	"sync"
)

// Garbage collection (§2.5.3): SCFS keeps every version of every file (and
// files removed by the user) until the garbage collector reclaims them. The
// collector runs at each agent, in the background, driven by two parameters
// set at mount time: the number of written bytes W that triggers a run and
// the number of versions V to keep per file.

// maybeStartGC launches a background collection when the number of bytes
// written since the previous run exceeds the configured trigger.
func (a *Agent) maybeStartGC() {
	if a.opts.GC.TriggerBytes <= 0 {
		return
	}
	a.mu.Lock()
	if a.closed || a.gcRunning || a.bytesSinceGC < a.opts.GC.TriggerBytes {
		a.mu.Unlock()
		return
	}
	a.gcRunning = true
	a.bytesSinceGC = 0
	a.mu.Unlock()

	a.addStat(func(s *Stats) { s.GCsTriggered++ })
	go func() {
		defer func() {
			a.mu.Lock()
			a.gcRunning = false
			a.mu.Unlock()
		}()
		_, _ = a.Collect()
	}()
}

// GCReport summarizes one garbage-collection run.
type GCReport struct {
	// FilesScanned is the number of metadata records examined.
	FilesScanned int
	// VersionsDeleted is the number of old versions removed from the cloud.
	VersionsDeleted int
	// FilesPurged is the number of deleted files whose data and metadata
	// were reclaimed.
	FilesPurged int
}

// Collect runs one synchronous garbage collection pass over the files owned
// by this agent's user: old versions beyond the configured keep-count are
// deleted from the cloud storage, and files previously removed by the user
// have their remaining versions and metadata erased.
func (a *Agent) Collect() (GCReport, error) {
	var report GCReport
	entries, err := a.listSubtree("/")
	if err != nil {
		return report, err
	}
	keep := a.opts.GC.KeepVersions
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, md := range entries {
		if md.Owner != a.opts.User || md.IsDir() {
			continue
		}
		report.FilesScanned++
		if md.Deleted {
			// Purge every version, then the metadata itself.
			for _, v := range md.Versions {
				wg.Add(1)
				go func(fileID, hash string) {
					defer wg.Done()
					if err := a.opts.Storage.DeleteVersion(fileID, hash); err == nil {
						mu.Lock()
						report.VersionsDeleted++
						mu.Unlock()
					}
				}(md.FileID, v.Hash)
			}
			wg.Wait()
			if err := a.deleteMetadata(md.Path); err != nil {
				return report, err
			}
			report.FilesPurged++
			continue
		}
		removed := md.TrimVersions(keep)
		if len(removed) == 0 {
			continue
		}
		for _, v := range removed {
			wg.Add(1)
			go func(fileID, hash string) {
				defer wg.Done()
				if err := a.opts.Storage.DeleteVersion(fileID, hash); err == nil {
					mu.Lock()
					report.VersionsDeleted++
					mu.Unlock()
				}
			}(md.FileID, v.Hash)
		}
		wg.Wait()
		if err := a.putMetadata(md); err != nil {
			return report, err
		}
	}
	if err := a.flushPNS(); err != nil {
		return report, err
	}
	return report, nil
}
