package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"scfs/internal/coord"
	"scfs/internal/fsapi"
	"scfs/internal/fsmeta"
	"scfs/internal/storage"
)

// The metadata service of the SCFS agent (§2.5.1): it resolves metadata
// either from the short-lived metadata cache, from the user's private name
// space (for non-shared files, §2.7), or from the coordination service, and
// writes updates back to the right place.

// coordACL builds the coordination-service ACL for a metadata record so that
// the coordination service (not the agent) enforces access control (§2.6).
func coordACL(md *fsmeta.Metadata) coord.ACL {
	return coord.ACL{Owner: md.Owner, Readers: md.Readers(), Writers: md.Writers()}
}

// getMetadata returns the metadata of path from cache, PNS or the
// coordination service. It returns fsapi.ErrNotExist when the path has no
// live metadata (missing or marked deleted).
func (a *Agent) getMetadata(ctx context.Context, path string, useCache bool) (*fsmeta.Metadata, error) {
	path = fsmeta.Clean(path)
	if path == "/" {
		return a.rootMetadata(), nil
	}
	// 1. Short-lived metadata cache.
	if useCache {
		if raw, ok := a.metaCache.Get(path); ok {
			md, err := fsmeta.Decode(raw)
			if err == nil {
				if md.Deleted {
					return nil, fsapi.ErrNotExist
				}
				return md, nil
			}
		}
	}
	// 2. Private name space (local, no network access).
	a.mu.Lock()
	pns := a.pns
	a.mu.Unlock()
	if pns != nil {
		if md := pns.Get(path); md != nil {
			if md.Deleted {
				return nil, fsapi.ErrNotExist
			}
			return md, nil
		}
	}
	// 3. Coordination service.
	if a.opts.Coordination == nil {
		return nil, fsapi.ErrNotExist
	}
	rec, err := a.opts.Coordination.GetMetadata(ctx, path)
	if errors.Is(err, coord.ErrNotFound) {
		return nil, fsapi.ErrNotExist
	}
	if errors.Is(err, coord.ErrDenied) {
		return nil, fsapi.ErrPermission
	}
	if err != nil {
		return nil, fmt.Errorf("core: reading metadata of %q: %w", path, err)
	}
	md, err := fsmeta.Decode(rec.Value)
	if err != nil {
		return nil, fmt.Errorf("core: corrupt metadata for %q: %w", path, err)
	}
	a.metaCache.Put(path, rec.Value)
	if md.Deleted {
		return nil, fsapi.ErrNotExist
	}
	return md, nil
}

// rootMetadata synthesizes the metadata of the mount root.
func (a *Agent) rootMetadata() *fsmeta.Metadata {
	return &fsmeta.Metadata{Path: "/", Type: fsapi.TypeDir, Owner: a.opts.User, Ctime: a.clk.Now(), Mtime: a.clk.Now()}
}

// putMetadata stores (or replaces) the metadata of a path in the right place
// and refreshes the metadata cache.
func (a *Agent) putMetadata(ctx context.Context, md *fsmeta.Metadata) error {
	path := fsmeta.Clean(md.Path)
	raw, err := md.Encode()
	if err != nil {
		return err
	}
	if a.isShared(md) {
		if _, err := a.opts.Coordination.PutMetadata(ctx, path, raw, coordACL(md)); err != nil {
			if errors.Is(err, coord.ErrDenied) {
				return fsapi.ErrPermission
			}
			return fmt.Errorf("core: writing metadata of %q: %w", path, err)
		}
		// If the entry used to be private, drop it from the PNS.
		a.mu.Lock()
		if a.pns != nil && a.pns.Get(path) != nil {
			a.pns.Remove(path)
			a.pnsDirty = true
		}
		a.mu.Unlock()
	} else {
		a.mu.Lock()
		a.pns.Put(md)
		a.pnsDirty = true
		a.mu.Unlock()
	}
	a.metaCache.Put(path, raw)
	return nil
}

// deleteMetadata removes the metadata of a path from wherever it lives.
func (a *Agent) deleteMetadata(ctx context.Context, path string) error {
	path = fsmeta.Clean(path)
	a.metaCache.Invalidate(path)
	a.mu.Lock()
	if a.pns != nil && a.pns.Get(path) != nil {
		a.pns.Remove(path)
		a.pnsDirty = true
		a.mu.Unlock()
		return nil
	}
	a.mu.Unlock()
	if a.opts.Coordination == nil {
		return nil
	}
	if err := a.opts.Coordination.DeleteMetadata(ctx, path); err != nil && !errors.Is(err, coord.ErrNotFound) {
		return fmt.Errorf("core: deleting metadata of %q: %w", path, err)
	}
	return nil
}

// listMetadata returns the live metadata of the direct children of dir,
// merging the coordination service and the PNS views.
func (a *Agent) listMetadata(ctx context.Context, dir string) ([]*fsmeta.Metadata, error) {
	dir = fsmeta.Clean(dir)
	seen := make(map[string]*fsmeta.Metadata)
	if a.opts.Coordination != nil {
		prefix := dir
		if prefix != "/" {
			prefix += "/"
		}
		recs, err := a.opts.Coordination.ListMetadata(ctx, prefix)
		if err != nil {
			return nil, fmt.Errorf("core: listing %q: %w", dir, err)
		}
		for _, r := range recs {
			md, err := fsmeta.Decode(r.Value)
			if err != nil {
				continue
			}
			// Warm the metadata cache with every record the listing already
			// paid for: the readdir-then-stat-each-entry burst (ls -l) then
			// costs one coordination round trip instead of one per entry.
			a.metaCache.Put(md.Path, r.Value)
			if md.Deleted {
				continue
			}
			if md.Parent() == dir {
				seen[md.Path] = md
			}
		}
	}
	a.mu.Lock()
	pns := a.pns
	a.mu.Unlock()
	if pns != nil {
		for _, md := range pns.List(dir) {
			if !md.Deleted {
				seen[md.Path] = md
			}
		}
	}
	out := make([]*fsmeta.Metadata, 0, len(seen))
	for _, md := range seen {
		out = append(out, md)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// listSubtree returns every live entry under prefix (excluding prefix itself),
// used by rename and by the garbage collector.
func (a *Agent) listSubtree(ctx context.Context, prefix string) ([]*fsmeta.Metadata, error) {
	prefix = fsmeta.Clean(prefix)
	seen := make(map[string]*fsmeta.Metadata)
	if a.opts.Coordination != nil {
		p := prefix
		if p != "/" {
			p += "/"
		}
		recs, err := a.opts.Coordination.ListMetadata(ctx, p)
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			if md, err := fsmeta.Decode(r.Value); err == nil {
				seen[md.Path] = md
			}
		}
	}
	a.mu.Lock()
	pns := a.pns
	a.mu.Unlock()
	if pns != nil {
		for _, md := range pns.ListPrefix(prefix) {
			if md.Path != prefix {
				seen[md.Path] = md
			}
		}
	}
	out := make([]*fsmeta.Metadata, 0, len(seen))
	for _, md := range seen {
		out = append(out, md)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// --- private name space lifecycle ---

// pnsKey is the coordination-service key of the user's PNS tuple.
func (a *Agent) pnsKey() string { return "pns:" + a.opts.User }

// loadPNS fetches the user's private name space at mount time (§2.7): the
// PNS tuple is read (and locked) in the coordination service when one is
// available, then the serialized name space is fetched from the cloud.
func (a *Agent) loadPNS(ctx context.Context) error {
	if a.opts.Coordination != nil {
		// Lock the PNS to prevent two agents logged in as the same user from
		// corrupting it.
		if err := a.opts.Coordination.TryLock(ctx, a.pnsKey(), a.opts.AgentID, a.opts.LockTTL); err != nil {
			if errors.Is(err, coord.ErrLockHeld) {
				return fmt.Errorf("core: private name space of %q is locked by another agent: %w", a.opts.User, fsapi.ErrLocked)
			}
			return err
		}
	}
	data, err := a.opts.PNSStorage.ReadPNS(ctx, a.opts.User)
	if errors.Is(err, storage.ErrPNSNotFound) {
		a.pns = fsmeta.NewPNS(a.opts.User)
		return nil
	}
	if err != nil {
		return fmt.Errorf("core: loading private name space: %w", err)
	}
	pns, err := fsmeta.DecodePNS(data)
	if err != nil {
		return fmt.Errorf("core: decoding private name space: %w", err)
	}
	a.pns = pns
	return nil
}

// flushPNS uploads the private name space if it changed since the last flush.
func (a *Agent) flushPNS(ctx context.Context) error {
	a.mu.Lock()
	if a.pns == nil || !a.pnsDirty {
		a.mu.Unlock()
		return nil
	}
	data, err := a.pns.Encode()
	dirtyCleared := err == nil
	if dirtyCleared {
		a.pnsDirty = false
	}
	a.mu.Unlock()
	if err != nil {
		return err
	}
	if err := a.opts.PNSStorage.WritePNS(ctx, a.opts.User, data); err != nil {
		a.mu.Lock()
		a.pnsDirty = true
		a.mu.Unlock()
		return fmt.Errorf("core: flushing private name space: %w", err)
	}
	a.addStat(func(s *Stats) { s.CloudWrites++; s.CloudBytesUp += int64(len(data)) })
	return nil
}
